// Minimal dense fp32 tensor used by the model executor.
//
// Intentionally small: row-major contiguous storage, up to 4 dimensions,
// owning (heap) or non-owning (view) semantics. The model code addresses
// tensors through typed helpers (at2/at3) rather than generic strides.
#ifndef CA_TENSOR_TENSOR_H_
#define CA_TENSOR_TENSOR_H_

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ca {

class Tensor {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Tensor() = default;

  // Owning constructors; contents zero-initialised.
  explicit Tensor(std::vector<std::size_t> shape);
  static Tensor Zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }
  // Gaussian(0, scale) initialisation (model weight init).
  static Tensor Randn(std::vector<std::size_t> shape, Rng& rng, float scale = 1.0f);

  // Non-owning view over external storage. Caller guarantees lifetime.
  static Tensor View(float* data, std::vector<std::size_t> shape);
  static Tensor ConstView(const float* data, std::vector<std::size_t> shape);

  std::size_t rank() const { return rank_; }
  std::size_t dim(std::size_t i) const {
    CA_CHECK_LT(i, rank_);
    return shape_[i];
  }
  std::size_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::span<float> span() { return {data_, numel_}; }
  std::span<const float> span() const { return {data_, numel_}; }

  float& operator[](std::size_t i) {
    CA_CHECK_LT(i, numel_);
    return data_[i];
  }
  float operator[](std::size_t i) const {
    CA_CHECK_LT(i, numel_);
    return data_[i];
  }

  // 2-D indexing: (row, col).
  float& at2(std::size_t r, std::size_t c) {
    CA_CHECK_EQ(rank_, 2U);
    return data_[r * shape_[1] + c];
  }
  float at2(std::size_t r, std::size_t c) const {
    CA_CHECK_EQ(rank_, 2U);
    return data_[r * shape_[1] + c];
  }

  // 3-D indexing: (i, j, k).
  float& at3(std::size_t i, std::size_t j, std::size_t k) {
    CA_CHECK_EQ(rank_, 3U);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at3(std::size_t i, std::size_t j, std::size_t k) const {
    CA_CHECK_EQ(rank_, 3U);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  // Pointer to row r of a 2-D tensor.
  float* row(std::size_t r) {
    CA_CHECK_EQ(rank_, 2U);
    CA_CHECK_LT(r, shape_[0]);
    return data_ + r * shape_[1];
  }
  const float* row(std::size_t r) const {
    CA_CHECK_EQ(rank_, 2U);
    CA_CHECK_LT(r, shape_[0]);
    return data_ + r * shape_[1];
  }

  void Fill(float v);
  void CopyFrom(const Tensor& src);
  Tensor Clone() const;

  std::string ShapeString() const;

 private:
  std::shared_ptr<float[]> storage_;  // null for views
  float* data_ = nullptr;
  std::array<std::size_t, kMaxRank> shape_ = {0, 0, 0, 0};
  std::size_t rank_ = 0;
  std::size_t numel_ = 0;

  void SetShape(const std::vector<std::size_t>& shape);
};

// True iff every element differs by at most atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-4f, float atol = 1e-5f);

// Max absolute elementwise difference.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace ca

#endif  // CA_TENSOR_TENSOR_H_
