#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/parallel_for.h"

// The matmul row kernels have AVX2+FMA variants selected at runtime (the
// build stays plain -O2/-mno-avx compatible; the `target` attribute compiles
// just these functions for the wider ISA). Dispatch is per matmul call and
// identical for serial and pooled execution, so the parallel == serial
// bitwise contract (DESIGN.md §9) is unaffected: on one machine every run
// takes the same code path. Across machines the SIMD lane grouping changes
// the rounding of reductions, which the cross-kernel tests absorb with
// tolerances; the scalar fallback remains the portable reference.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CA_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace ca {

namespace {

// Rows per parallel chunk: aim for ~4 chunks per worker (plus the caller)
// so stragglers balance, but never fewer rows than makes a task worthwhile.
std::size_t RowGrain(ThreadPool* pool, std::size_t rows) {
  if (pool == nullptr) {
    return rows;
  }
  return std::max<std::size_t>(1, rows / (4 * (pool->num_threads() + 1)));
}

// One output row of a[m,k] @ b[n,k]^T, j blocked 4-wide: the four
// independent dot products share every a-row load, quadrupling the
// arithmetic per byte streamed from `a`.
void MatMulTransposedBRow(const float* arow, const Tensor& b, float* orow, std::size_t k,
                          std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float* b0 = b.row(j);
    const float* b1 = b.row(j + 1);
    const float* b2 = b.row(j + 2);
    const float* b3 = b.row(j + 3);
    float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
    float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
    float s20 = 0.0f, s21 = 0.0f, s22 = 0.0f, s23 = 0.0f;
    float s30 = 0.0f, s31 = 0.0f, s32 = 0.0f, s33 = 0.0f;
    std::size_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float a0 = arow[kk];
      const float a1 = arow[kk + 1];
      const float a2 = arow[kk + 2];
      const float a3 = arow[kk + 3];
      s00 += a0 * b0[kk];
      s01 += a1 * b0[kk + 1];
      s02 += a2 * b0[kk + 2];
      s03 += a3 * b0[kk + 3];
      s10 += a0 * b1[kk];
      s11 += a1 * b1[kk + 1];
      s12 += a2 * b1[kk + 2];
      s13 += a3 * b1[kk + 3];
      s20 += a0 * b2[kk];
      s21 += a1 * b2[kk + 1];
      s22 += a2 * b2[kk + 2];
      s23 += a3 * b2[kk + 3];
      s30 += a0 * b3[kk];
      s31 += a1 * b3[kk + 1];
      s32 += a2 * b3[kk + 2];
      s33 += a3 * b3[kk + 3];
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      s00 += av * b0[kk];
      s10 += av * b1[kk];
      s20 += av * b2[kk];
      s30 += av * b3[kk];
    }
    orow[j] = (s00 + s01) + (s02 + s03);
    orow[j + 1] = (s10 + s11) + (s12 + s13);
    orow[j + 2] = (s20 + s21) + (s22 + s23);
    orow[j + 3] = (s30 + s31) + (s32 + s33);
  }
  for (; j < n; ++j) {
    orow[j] = DotUnchecked(arow, b.row(j), k);
  }
}

// One output row of a[m,k] @ b[k,n]: orow = sum_kk arow[kk] * b.row(kk).
void MatMulRow(const float* arow, const Tensor& b, float* orow, std::size_t k, std::size_t n) {
  std::memset(orow, 0, n * sizeof(float));
  for (std::size_t kk = 0; kk < k; ++kk) {
    AxpyUnchecked(arow[kk], b.row(kk), orow, n);
  }
}

#ifdef CA_KERNELS_X86

__attribute__((target("avx2,fma"))) inline float HorizontalSum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

__attribute__((target("avx2,fma"))) void MatMulTransposedBRowAvx2(const float* arow,
                                                                  const Tensor& b, float* orow,
                                                                  std::size_t k, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float* b0 = b.row(j);
    const float* b1 = b.row(j + 1);
    const float* b2 = b.row(j + 2);
    const float* b3 = b.row(j + 3);
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t kk = 0;
    for (; kk + 8 <= k; kk += 8) {
      const __m256 va = _mm256_loadu_ps(arow + kk);
      acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + kk), acc0);
      acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + kk), acc1);
      acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + kk), acc2);
      acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + kk), acc3);
    }
    float s0 = HorizontalSum8(acc0);
    float s1 = HorizontalSum8(acc1);
    float s2 = HorizontalSum8(acc2);
    float s3 = HorizontalSum8(acc3);
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      s0 += av * b0[kk];
      s1 += av * b1[kk];
      s2 += av * b2[kk];
      s3 += av * b3[kk];
    }
    orow[j] = s0;
    orow[j + 1] = s1;
    orow[j + 2] = s2;
    orow[j + 3] = s3;
  }
  for (; j < n; ++j) {
    const float* brow = b.row(j);
    __m256 acc = _mm256_setzero_ps();
    std::size_t kk = 0;
    for (; kk + 8 <= k; kk += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk), _mm256_loadu_ps(brow + kk), acc);
    }
    float s = HorizontalSum8(acc);
    for (; kk < k; ++kk) {
      s += arow[kk] * brow[kk];
    }
    orow[j] = s;
  }
}

__attribute__((target("avx2,fma"))) void MatMulRowAvx2(const float* arow, const Tensor& b,
                                                       float* orow, std::size_t k,
                                                       std::size_t n) {
  std::memset(orow, 0, n * sizeof(float));
  for (std::size_t kk = 0; kk < k; ++kk) {
    const __m256 va = _mm256_set1_ps(arow[kk]);
    const float* brow = b.row(kk);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 acc =
          _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + j), _mm256_loadu_ps(orow + j));
      _mm256_storeu_ps(orow + j, acc);
    }
    const float av = arow[kk];
    for (; j < n; ++j) {
      orow[j] += av * brow[j];
    }
  }
}

#endif  // CA_KERNELS_X86

// Row-kernel signature shared by the scalar and SIMD variants.
using RowKernel = void (*)(const float*, const Tensor&, float*, std::size_t, std::size_t);

bool CpuHasAvx2Fma() {
#ifdef CA_KERNELS_X86
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
#else
  return false;
#endif
}

RowKernel PickMatMulRowKernel() {
#ifdef CA_KERNELS_X86
  if (CpuHasAvx2Fma()) {
    return &MatMulRowAvx2;
  }
#endif
  return &MatMulRow;
}

RowKernel PickMatMulTransposedBRowKernel() {
#ifdef CA_KERNELS_X86
  if (CpuHasAvx2Fma()) {
    return &MatMulTransposedBRowAvx2;
  }
#endif
  return &MatMulTransposedBRow;
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor& out, ThreadPool* pool) {
  CA_CHECK_EQ(a.rank(), 2U);
  CA_CHECK_EQ(b.rank(), 2U);
  CA_CHECK_EQ(out.rank(), 2U);
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  CA_CHECK_EQ(b.dim(0), k);
  CA_CHECK_EQ(out.dim(0), m);
  CA_CHECK_EQ(out.dim(1), n);
  // ikj loop order: streams through b and out rows. Branch-free over the
  // values of `a` (a zero-skip here is a per-element mispredict on dense
  // activations and makes the kernel's timing value-dependent). Each output
  // row is reduced in the same kk order no matter how rows are chunked, so
  // parallel == serial bitwise.
  const RowKernel kernel = PickMatMulRowKernel();
  ParallelFor(pool, 0, m, RowGrain(pool, m), [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      kernel(a.row(i), b, out.row(i), k, n);
    }
  });
}

void MatMulTransposedB(const Tensor& a, const Tensor& b, Tensor& out, ThreadPool* pool) {
  CA_CHECK_EQ(a.rank(), 2U);
  CA_CHECK_EQ(b.rank(), 2U);
  CA_CHECK_EQ(out.rank(), 2U);
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  CA_CHECK_EQ(b.dim(1), k);
  CA_CHECK_EQ(out.dim(0), m);
  CA_CHECK_EQ(out.dim(1), n);
  const RowKernel kernel = PickMatMulTransposedBRowKernel();
  ParallelFor(pool, 0, m, RowGrain(pool, m), [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      kernel(a.row(i), b, out.row(i), k, n);
    }
  });
}

void SoftmaxRow(std::span<float> row) {
  float max_v = -INFINITY;
  for (const float v : row) {
    max_v = std::max(max_v, v);
  }
  float sum = 0.0f;
  for (float& v : row) {
    v = std::exp(v - max_v);
    sum += v;
  }
  const float inv = 1.0f / sum;
  for (float& v : row) {
    v *= inv;
  }
}

void SoftmaxRows(Tensor& t) {
  CA_CHECK_EQ(t.rank(), 2U);
  const std::size_t rows = t.dim(0);
  const std::size_t cols = t.dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    SoftmaxRow({t.row(r), cols});
  }
}

void RmsNormRows(const Tensor& x, std::span<const float> weight, Tensor& out, float eps) {
  CA_CHECK_EQ(x.rank(), 2U);
  const std::size_t rows = x.dim(0);
  const std::size_t cols = x.dim(1);
  CA_CHECK_EQ(weight.size(), cols);
  CA_CHECK_EQ(out.dim(0), rows);
  CA_CHECK_EQ(out.dim(1), cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = x.row(r);
    float* o = out.row(r);
    const float ss = DotUnchecked(in, in, cols);
    const float inv_rms = 1.0f / std::sqrt(ss / static_cast<float>(cols) + eps);
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] = in[c] * inv_rms * weight[c];
    }
  }
}

void SiluInPlace(Tensor& t) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const float x = t[i];
    t[i] = x / (1.0f + std::exp(-x));
  }
}

void Add(const Tensor& a, const Tensor& b, Tensor& out) {
  CA_CHECK_EQ(a.numel(), b.numel());
  CA_CHECK_EQ(a.numel(), out.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    po[i] = pa[i] + pb[i];
  }
}

void AddInPlace(Tensor& a, const Tensor& b) {
  CA_CHECK_EQ(a.numel(), b.numel());
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    pa[i] += pb[i];
  }
}

void MulInPlace(Tensor& a, const Tensor& b) {
  CA_CHECK_EQ(a.numel(), b.numel());
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    pa[i] *= pb[i];
  }
}

float Dot(std::span<const float> a, std::span<const float> b) {
  CA_CHECK_EQ(a.size(), b.size());
  return DotUnchecked(a.data(), b.data(), a.size());
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  CA_CHECK_EQ(x.size(), y.size());
  AxpyUnchecked(alpha, x.data(), y.data(), x.size());
}

float LogSumExp(std::span<const float> row) {
  float max_v = -INFINITY;
  for (const float v : row) {
    max_v = std::max(max_v, v);
  }
  float sum = 0.0f;
  for (const float v : row) {
    sum += std::exp(v - max_v);
  }
  return max_v + std::log(sum);
}

}  // namespace ca
