#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace ca {

void MatMul(const Tensor& a, const Tensor& b, Tensor& out) {
  CA_CHECK_EQ(a.rank(), 2U);
  CA_CHECK_EQ(b.rank(), 2U);
  CA_CHECK_EQ(out.rank(), 2U);
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  CA_CHECK_EQ(b.dim(0), k);
  CA_CHECK_EQ(out.dim(0), m);
  CA_CHECK_EQ(out.dim(1), n);
  out.Fill(0.0f);
  // ikj loop order: streams through b and out rows; adequate for the model
  // sizes used here (d_model <= 512).
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b.row(kk);
      for (std::size_t j = 0; j < n; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void MatMulTransposedB(const Tensor& a, const Tensor& b, Tensor& out) {
  CA_CHECK_EQ(a.rank(), 2U);
  CA_CHECK_EQ(b.rank(), 2U);
  CA_CHECK_EQ(out.rank(), 2U);
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  CA_CHECK_EQ(b.dim(1), k);
  CA_CHECK_EQ(out.dim(0), m);
  CA_CHECK_EQ(out.dim(1), n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      orow[j] = Dot({arow, k}, {b.row(j), k});
    }
  }
}

void SoftmaxRow(std::span<float> row) {
  float max_v = -INFINITY;
  for (const float v : row) {
    max_v = std::max(max_v, v);
  }
  float sum = 0.0f;
  for (float& v : row) {
    v = std::exp(v - max_v);
    sum += v;
  }
  const float inv = 1.0f / sum;
  for (float& v : row) {
    v *= inv;
  }
}

void SoftmaxRows(Tensor& t) {
  CA_CHECK_EQ(t.rank(), 2U);
  const std::size_t rows = t.dim(0);
  const std::size_t cols = t.dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    SoftmaxRow({t.row(r), cols});
  }
}

void RmsNormRows(const Tensor& x, std::span<const float> weight, Tensor& out, float eps) {
  CA_CHECK_EQ(x.rank(), 2U);
  const std::size_t rows = x.dim(0);
  const std::size_t cols = x.dim(1);
  CA_CHECK_EQ(weight.size(), cols);
  CA_CHECK_EQ(out.dim(0), rows);
  CA_CHECK_EQ(out.dim(1), cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = x.row(r);
    float* o = out.row(r);
    float ss = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      ss += in[c] * in[c];
    }
    const float inv_rms = 1.0f / std::sqrt(ss / static_cast<float>(cols) + eps);
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] = in[c] * inv_rms * weight[c];
    }
  }
}

void SiluInPlace(Tensor& t) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const float x = t[i];
    t[i] = x / (1.0f + std::exp(-x));
  }
}

void Add(const Tensor& a, const Tensor& b, Tensor& out) {
  CA_CHECK_EQ(a.numel(), b.numel());
  CA_CHECK_EQ(a.numel(), out.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    po[i] = pa[i] + pb[i];
  }
}

void AddInPlace(Tensor& a, const Tensor& b) {
  CA_CHECK_EQ(a.numel(), b.numel());
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    pa[i] += pb[i];
  }
}

void MulInPlace(Tensor& a, const Tensor& b) {
  CA_CHECK_EQ(a.numel(), b.numel());
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    pa[i] *= pb[i];
  }
}

float Dot(std::span<const float> a, std::span<const float> b) {
  CA_CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  CA_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

float LogSumExp(std::span<const float> row) {
  float max_v = -INFINITY;
  for (const float v : row) {
    max_v = std::max(max_v, v);
  }
  float sum = 0.0f;
  for (const float v : row) {
    sum += std::exp(v - max_v);
  }
  return max_v + std::log(sum);
}

}  // namespace ca
