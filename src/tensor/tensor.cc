#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace ca {

void Tensor::SetShape(const std::vector<std::size_t>& shape) {
  CA_CHECK_LE(shape.size(), kMaxRank);
  CA_CHECK_GT(shape.size(), 0U);
  rank_ = shape.size();
  numel_ = 1;
  for (std::size_t i = 0; i < rank_; ++i) {
    shape_[i] = shape[i];
    numel_ *= shape[i];
  }
}

Tensor::Tensor(std::vector<std::size_t> shape) {
  SetShape(shape);
  storage_ = std::make_shared<float[]>(numel_);  // value-initialized (zeros)
  data_ = storage_.get();
}

Tensor Tensor::Randn(std::vector<std::size_t> shape, Rng& rng, float scale) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel_; ++i) {
    t.data_[i] = static_cast<float>(rng.NextGaussian()) * scale;
  }
  return t;
}

Tensor Tensor::View(float* data, std::vector<std::size_t> shape) {
  Tensor t;
  t.SetShape(shape);
  t.data_ = data;
  return t;
}

Tensor Tensor::ConstView(const float* data, std::vector<std::size_t> shape) {
  // The const_cast is contained: callers receiving a ConstView by const
  // reference cannot mutate through it.
  return View(const_cast<float*>(data), std::move(shape));
}

void Tensor::Fill(float v) { std::fill(data_, data_ + numel_, v); }

void Tensor::CopyFrom(const Tensor& src) {
  CA_CHECK_EQ(numel_, src.numel_);
  std::memcpy(data_, src.data_, numel_ * sizeof(float));
}

Tensor Tensor::Clone() const {
  std::vector<std::size_t> shape(shape_.begin(), shape_.begin() + rank_);
  Tensor t(shape);
  t.CopyFrom(*this);
  return t;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.numel() != b.numel()) {
    return false;
  }
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (diff > atol + rtol * std::fabs(b[i])) {
      return false;
    }
  }
  return true;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CA_CHECK_EQ(a.numel(), b.numel());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace ca
