// Bump-allocated scratch memory for the model's forward pass.
//
// A forward pass used to heap-allocate five fresh activation tensors per
// attention block per layer (and four more per FFN block); at decode time
// that is dozens of malloc/free pairs per generated token. ScratchArena
// replaces them with pointer-bump allocations out of slabs that persist
// across forward passes, so the steady-state allocation count per token is
// zero.
//
// Lifetime rules (see DESIGN.md §9):
//  * Alloc2d / AllocSpan return UNINITIALISED memory — the caller must fully
//    overwrite it (every kernel fed from the arena writes its entire
//    output).
//  * Every pointer handed out stays valid until the next Reset(): growth
//    appends a new slab instead of reallocating, so outstanding views are
//    never invalidated mid-pass.
//  * Reset() invalidates everything at once and coalesces the slabs, so the
//    next pass runs from a single right-sized slab.
//  * Not thread-safe; use one arena per thread (the transformer keeps a
//    thread_local one).
#ifndef CA_TENSOR_ARENA_H_
#define CA_TENSOR_ARENA_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace ca {

class ScratchArena {
 public:
  ScratchArena() = default;

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Uninitialised [rows, cols] tensor view backed by arena memory.
  Tensor Alloc2d(std::size_t rows, std::size_t cols);

  // Uninitialised span of n floats backed by arena memory.
  std::span<float> AllocSpan(std::size_t n);

  // Invalidates every outstanding allocation; retains (and coalesces) the
  // capacity for the next pass.
  void Reset();

  // Total floats reserved across slabs.
  std::size_t capacity() const;

 private:
  struct Slab {
    std::unique_ptr<float[]> data;
    std::size_t size = 0;
  };

  float* AllocRaw(std::size_t n);

  std::vector<Slab> slabs_;  // slabs_.back() is the active bump slab
  std::size_t used_ = 0;     // floats consumed from the active slab
};

}  // namespace ca

#endif  // CA_TENSOR_ARENA_H_
