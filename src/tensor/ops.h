// Dense kernels for the model executor: matmul, softmax, rmsnorm, silu,
// elementwise ops. All operate on fp32 row-major tensors.
#ifndef CA_TENSOR_OPS_H_
#define CA_TENSOR_OPS_H_

#include <cstddef>
#include <span>

#include "src/tensor/tensor.h"

namespace ca {

// out[m,n] = a[m,k] @ b[k,n]. out must be preallocated and distinct from
// both inputs.
void MatMul(const Tensor& a, const Tensor& b, Tensor& out);

// out[m,n] = a[m,k] @ b[n,k]^T  (b given row-major as [n,k]; this is the
// layout of projection weight matrices and of K against Q).
void MatMulTransposedB(const Tensor& a, const Tensor& b, Tensor& out);

// In-place numerically-stable softmax over the last dimension of a 2-D
// tensor (each row independently).
void SoftmaxRows(Tensor& t);

// In-place softmax of a single contiguous row.
void SoftmaxRow(std::span<float> row);

// RMSNorm: out[i] = x[i] / rms(x) * weight[i] over the last dim of each row.
void RmsNormRows(const Tensor& x, std::span<const float> weight, Tensor& out, float eps = 1e-5f);

// SiLU (x * sigmoid(x)), elementwise in place.
void SiluInPlace(Tensor& t);

// out = a + b elementwise.
void Add(const Tensor& a, const Tensor& b, Tensor& out);
// a += b elementwise.
void AddInPlace(Tensor& a, const Tensor& b);
// a *= b elementwise.
void MulInPlace(Tensor& a, const Tensor& b);

// Dot product of two length-n float spans.
float Dot(std::span<const float> a, std::span<const float> b);

// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

// log(sum(exp(row))) for a contiguous row, numerically stable.
float LogSumExp(std::span<const float> row);

}  // namespace ca

#endif  // CA_TENSOR_OPS_H_
