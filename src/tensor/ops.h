// Dense kernels for the model executor: matmul, softmax, rmsnorm, silu,
// elementwise ops. All operate on fp32 row-major tensors.
//
// The matmuls optionally run data-parallel over output rows on a ThreadPool
// (see src/common/parallel_for.h). Each output row is produced entirely by
// one task with a fixed reduction order, so parallel results are
// bitwise-identical to serial (`pool == nullptr`) ones — the serial path
// stays the reference the tests compare against.
#ifndef CA_TENSOR_OPS_H_
#define CA_TENSOR_OPS_H_

#include <cstddef>
#include <span>

#include "src/common/thread_pool.h"
#include "src/tensor/tensor.h"

namespace ca {

// out[m,n] = a[m,k] @ b[k,n]. out must be preallocated and distinct from
// both inputs. Parallel over rows of `out` when pool != nullptr.
void MatMul(const Tensor& a, const Tensor& b, Tensor& out, ThreadPool* pool = nullptr);

// out[m,n] = a[m,k] @ b[n,k]^T  (b given row-major as [n,k]; this is the
// layout of projection weight matrices and of K against Q). Parallel over
// rows of `out` when pool != nullptr.
void MatMulTransposedB(const Tensor& a, const Tensor& b, Tensor& out, ThreadPool* pool = nullptr);

// In-place numerically-stable softmax over the last dimension of a 2-D
// tensor (each row independently).
void SoftmaxRows(Tensor& t);

// In-place softmax of a single contiguous row.
void SoftmaxRow(std::span<float> row);

// RMSNorm: out[i] = x[i] / rms(x) * weight[i] over the last dim of each row.
void RmsNormRows(const Tensor& x, std::span<const float> weight, Tensor& out, float eps = 1e-5f);

// SiLU (x * sigmoid(x)), elementwise in place.
void SiluInPlace(Tensor& t);

// out = a + b elementwise.
void Add(const Tensor& a, const Tensor& b, Tensor& out);
// a += b elementwise.
void AddInPlace(Tensor& a, const Tensor& b);
// a *= b elementwise.
void MulInPlace(Tensor& a, const Tensor& b);

// Unchecked hot-loop primitives. Four-accumulator unrolled loops: the
// independent partial sums give the compiler ILP/SLP headroom while keeping
// a deterministic, input-shape-only reduction order.
//
// sum(a[i] * b[i]) over n contiguous floats.
inline float DotUnchecked(const float* a, const float* b, std::size_t n) {
  float acc0 = 0.0f;
  float acc1 = 0.0f;
  float acc2 = 0.0f;
  float acc3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) {
    acc0 += a[i] * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

// y[i] += alpha * x[i] over n contiguous floats.
inline void AxpyUnchecked(float alpha, const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

// Dot product of two length-n float spans.
float Dot(std::span<const float> a, std::span<const float> b);

// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

// log(sum(exp(row))) for a contiguous row, numerically stable.
float LogSumExp(std::span<const float> row);

}  // namespace ca

#endif  // CA_TENSOR_OPS_H_
