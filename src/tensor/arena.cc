#include "src/tensor/arena.h"

#include <algorithm>

#include "src/common/check.h"

namespace ca {

namespace {

// Minimum slab size (floats): 16 KiB, enough for a whole decode-step's
// activations on the mini presets so the common case is a single slab.
constexpr std::size_t kMinSlabFloats = 4096;

}  // namespace

float* ScratchArena::AllocRaw(std::size_t n) {
  CA_CHECK_GT(n, 0U);
  if (slabs_.empty() || slabs_.back().size - used_ < n) {
    // Grow geometrically; earlier slabs stay alive so outstanding views
    // survive until Reset().
    const std::size_t next_size = std::max({n, capacity() * 2, kMinSlabFloats});
    Slab slab;
    slab.data = std::make_unique<float[]>(next_size);
    slab.size = next_size;
    slabs_.push_back(std::move(slab));
    used_ = 0;
  }
  float* out = slabs_.back().data.get() + used_;
  used_ += n;
  return out;
}

Tensor ScratchArena::Alloc2d(std::size_t rows, std::size_t cols) {
  return Tensor::View(AllocRaw(rows * cols), {rows, cols});
}

std::span<float> ScratchArena::AllocSpan(std::size_t n) {
  return {AllocRaw(n), n};
}

void ScratchArena::Reset() {
  if (slabs_.size() > 1) {
    const std::size_t total = capacity();
    slabs_.clear();
    Slab slab;
    slab.data = std::make_unique<float[]>(total);
    slab.size = total;
    slabs_.push_back(std::move(slab));
  }
  used_ = 0;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Slab& slab : slabs_) {
    total += slab.size;
  }
  return total;
}

}  // namespace ca
