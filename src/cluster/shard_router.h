// ShardRouter: sharded cluster serving (DESIGN.md §16).
//
// One router fronts N in-process shards, each a full serving stack —
// CachedAttentionEngine (own AttentionStore) + ServingLoop. Shards share no
// memory: every interaction goes through the request/reply structs of
// src/serve and the export/import records of src/store, so a shard can
// later move behind a transport without touching this layer's contracts.
//
//   Routing.   Sessions map to shards through a consistent-hash ring
//   (virtual nodes), and the first accepted turn pins the session to its
//   shard. Pins — not the ring — are authoritative afterwards: the paper's
//   economics (§4, Figure 1) come from KV locality across turns, so an
//   existing session never moves for load reasons. New sessions are the
//   mobile capacity: when the ring owner's queue is full, TrySubmit routes
//   a *new* session to the least-loaded shard and pins it there
//   (overflow); an *existing* session is shed instead — a shed turn beats
//   a cold-start on a foreign shard.
//
//   Migration / drain.  DrainShard removes the shard from the ring (new
//   sessions stop arriving), waits for its accepted jobs to finish, then
//   moves every live session to its new ring owner via the engine's
//   ExportSession/ImportSession (KV payload + token history). Turns
//   submitted for those sessions mid-drain are accepted and parked — the
//   pins keep pointing at the draining shard for the whole drain, so no
//   turn can reach the new owner early. The re-pins to the migration
//   targets, a sweep of every pin the migration could not move, and the
//   park-flush (in submission order) all land in the one critical section
//   that retires the shard, so a drain under live traffic loses nothing,
//   per-session submission order holds end-to-end, and replies stay
//   bitwise-identical (a session whose KV could not travel recomputes from
//   its migrated history, which yields the same replies by the engine's
//   determinism contract; a session whose migration failed outright is
//   unpinned and restarts fresh via the ring — served, never wedged).
//
//   Whole-shard failure.  PR 3's tier-health machine extends to the shard
//   level: a shard whose store has every configured tier quarantined can
//   no longer cache anything — PollHealth (called inline every
//   health_poll_every routed jobs) auto-drains it, marking it
//   kQuarantined. Sessions resume elsewhere from their histories.
//
// Thread safety: Submit/TrySubmit/TakeReplies/DrainShard/PollHealth may be
// called from any thread. Lock order is cluster.Drain → cluster.Router →
// serve.ServingLoop → core.Engine; the router mutex is held across the
// loop submission so drain's park-then-flush window is race-free.
#ifndef CA_CLUSTER_SHARD_ROUTER_H_
#define CA_CLUSTER_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/cluster/hash_ring.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/core/cached_attention.h"
#include "src/obs/metrics.h"
#include "src/serve/serving_loop.h"

namespace ca {

// Shard lifecycle: healthy shards serve; a draining shard is mid-handoff
// (its sessions are being exported); drained/quarantined shards are out of
// the ring for good — kDrained by operator intent, kQuarantined because the
// shard's store lost every tier.
enum class ShardHealth : std::uint8_t { kHealthy, kDraining, kDrained, kQuarantined };

std::string_view ShardHealthName(ShardHealth health);

struct ClusterOptions {
  std::size_t num_shards = 4;
  std::size_t vnodes_per_shard = 64;
  // Applied to every shard's ServingLoop (max_queue_depth is the per-shard
  // backpressure that feeds router-level overflow/shedding).
  ServerOptions server;
  // Base engine options for every shard. Durable stores are rejected
  // (CHECK): per-shard journal paths need explicit operator layout. A
  // non-empty disk_path is suffixed ".shard<i>" so shards never collide on
  // one backing file.
  EngineOptions engine;
  // Per-shard override hook (heterogeneous fleets, per-shard fault
  // injection in tests). Null = every shard uses `engine`.
  std::function<EngineOptions(std::size_t shard)> engine_options_fn;
  // Test-only fault injection on the migration path: return true to make
  // the drain's move of `session` off `from` fail. The drain then sweeps
  // the session's pin and it restarts fresh via the ring (clean-miss
  // recompute). Null = no injected faults.
  std::function<bool(SessionId session, ShardId from)> migration_fault_fn;
  // Overflow-to-least-loaded for new sessions on TrySubmit rejection.
  bool overflow_new_sessions = true;
  // Run PollHealth inline every N routed jobs (0 disables the inline poll;
  // PollHealth stays callable explicitly).
  std::size_t health_poll_every = 64;
};

// Point-in-time view of one shard (introspection + the cluster_demo report).
struct ShardStatus {
  ShardHealth health = ShardHealth::kHealthy;
  std::size_t queue_depth = 0;
  std::size_t sessions_resident = 0;
  std::uint64_t jobs_routed = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t jobs_overflowed_in = 0;   // new sessions overflow-placed here
  std::uint64_t sessions_migrated_out = 0;
  std::uint64_t sessions_migrated_in = 0;
};

class ShardRouter {
 public:
  // `model` must outlive the router. All shards (engines + loops) start
  // immediately.
  ShardRouter(const Transformer* model, ClusterOptions options);
  ~ShardRouter();  // implies Shutdown()

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  const ClusterOptions& options() const { return options_; }
  std::size_t shard_count() const { return shards_.size(); }

  // Enqueues one turn on the session's shard; always accepted while the
  // router is up (CA_CHECKs on empty input / Submit-after-Shutdown, like
  // ServingLoop::Submit). Returns a router-global JobId; replies come back
  // through TakeReplies in this id order.
  JobId Submit(ServeRequest request) CA_EXCLUDES(mutex_);

  // Backpressure intake: nullopt when the router is shut down, the input
  // is empty, or the target shard's queue is full and overflow could not
  // place the request (see the routing policy above). While the target
  // shard drains, parked intake counts against the same max_queue_depth
  // cap — a long drain under pressure sheds here instead of accumulating
  // unbounded parked work (Submit stays unconditional).
  std::optional<JobId> TrySubmit(ServeRequest request) CA_EXCLUDES(mutex_);

  // Blocks until every routed job has been served. Quiescent-point API like
  // ServingLoop::WaitIdle; must not run concurrently with DrainShard (a
  // drain parks accepted jobs that no loop has seen yet).
  void WaitIdle();

  // Drains every shard and joins. Idempotent; called by the destructor.
  void Shutdown();

  // Completed turns in global JobId (= acceptance) order; clears the
  // internal buffers. Call at a quiescent point (after WaitIdle/Shutdown).
  std::vector<ServeReply> TakeReplies() CA_EXCLUDES(mutex_);

  // Moves every live session off `shard` (protocol in the file header) and
  // retires it as kDrained. Fails with kInvalidArgument for an unknown
  // shard, kFailedPrecondition when the shard is not healthy or is the last
  // healthy shard. Serialized against itself and PollHealth.
  Status DrainShard(ShardId shard) CA_EXCLUDES(drain_mutex_);

  // Whole-shard failure sweep: auto-drains (as kQuarantined) every healthy
  // shard whose store has all configured tiers quarantined. Returns the
  // number of shards retired.
  std::size_t PollHealth() CA_EXCLUDES(drain_mutex_);

  // Ends a session fleet-wide: drops its engine state on its pinned shard
  // and erases the router's pin and turn counter, so a long-running router
  // does not grow an entry per session ever seen. The next turn for the
  // same id starts a fresh session (turn_index 1) placed by the ring.
  // Per-session quiescent API like CachedAttentionEngine::EndSession: must
  // not race with in-flight or parked turns for the same session (it is
  // serialized against drains internally). No-op for sessions the router
  // has never accepted.
  void EndSession(SessionId session) CA_EXCLUDES(drain_mutex_, mutex_);

  // Current placement for a session: its pin, or the ring owner it would
  // get if it arrived now.
  ShardId ShardOf(SessionId session) const CA_EXCLUDES(mutex_);

  ShardStatus shard_status(ShardId shard) const CA_EXCLUDES(mutex_);

  // Quiescent introspection (tests, demo reporting): the shard's engine.
  // Same contract as CachedAttentionEngine::store().
  const CachedAttentionEngine& shard_engine(ShardId shard) const {
    return *shards_[shard]->engine;
  }

  // Republishes per-shard gauges ("cluster.sessions_resident{shard=i}",
  // queue depths) and each shard's engine/store stats. Quiescent-point API.
  void PublishMetrics(MetricsRegistry* registry = nullptr) const;

 private:
  struct Shard {
    std::unique_ptr<CachedAttentionEngine> engine;
    std::unique_ptr<ServingLoop> loop;
    // Mutable shard state below is guarded by the router mutex (annotation
    // lives on ShardRouter; this struct is private to it).
    ShardHealth health = ShardHealth::kHealthy;
    std::uint64_t jobs_routed = 0;
    std::uint64_t jobs_shed = 0;
    std::uint64_t jobs_overflowed_in = 0;
    std::uint64_t sessions_migrated_out = 0;
    std::uint64_t sessions_migrated_in = 0;
    // Cached registry handles (labels: {"shard", "<i>"}).
    Counter* routed_counter = nullptr;
    Counter* shed_counter = nullptr;
    Counter* overflowed_counter = nullptr;
    Counter* migrated_out_counter = nullptr;
    Counter* migrated_in_counter = nullptr;
    Gauge* resident_gauge = nullptr;
    Gauge* depth_gauge = nullptr;
  };

  // Router-global identity of one accepted turn.
  struct GlobalJob {
    JobId job = 0;
    std::uint32_t turn_index = 0;
  };
  // A turn accepted while its session's shard was draining: parked until
  // the drain re-pins the session, then flushed in acceptance order.
  struct ParkedJob {
    GlobalJob id;
    ServeRequest request;
  };

  // Routing core shared by Submit/TrySubmit/park-flush: sends `request` to
  // `shard`'s loop under the router mutex and records the id mapping.
  void SubmitToShardLocked(ShardId shard, GlobalJob id, ServeRequest request)
      CA_REQUIRES(mutex_);
  // Healthy shard with the shortest queue, excluding `exclude`; nullopt if
  // none exists.
  std::optional<ShardId> LeastLoadedShardLocked(ShardId exclude) const CA_REQUIRES(mutex_);
  std::size_t HealthyCountLocked() const CA_REQUIRES(mutex_);
  // Drain body; terminal is kDrained (operator) or kQuarantined (health).
  Status DrainInternal(ShardId shard, ShardHealth terminal) CA_REQUIRES(drain_mutex_)
      CA_EXCLUDES(mutex_);
  // Moves one session from `from` to its new ring owner; returns the
  // target on success, nullopt on failure. Deliberately does NOT touch
  // pins_ — the caller (DrainInternal) applies every re-pin inside the
  // same critical section that flushes the parked turns, otherwise a turn
  // submitted after the re-pin would overtake this session's parked turns.
  std::optional<ShardId> MigrateSession(ShardId from, SessionId session)
      CA_EXCLUDES(mutex_);
  // True when every configured store tier of the shard is quarantined.
  bool ShardStoreDead(const Shard& shard) const;
  void MaybeInlinePollHealth() CA_EXCLUDES(mutex_);

  const Transformer* model_;  // unguarded: set in ctor, immutable after
  ClusterOptions options_;    // unguarded: set in ctor, immutable after

  // Serializes drains (operator DrainShard, PollHealth auto-drain) against
  // each other; never held by the submission path. Ordered before mutex_.
  mutable Mutex drain_mutex_{"cluster.Drain"};
  mutable Mutex mutex_{"cluster.Router"};
  // The vector itself is fixed at construction (stable Shard addresses);
  // mutable Shard fields follow the router mutex, see Shard above.
  // unguarded: container immutable after ctor.
  std::vector<std::unique_ptr<Shard>> shards_;
  ConsistentHashRing ring_ CA_GUARDED_BY(mutex_);
  // Authoritative session placement once a session has been accepted.
  // Entries die with the session (EndSession) or with their shard (the
  // drain sweep); a pin never outlives the shard it points at.
  std::unordered_map<SessionId, ShardId> pins_ CA_GUARDED_BY(mutex_);
  std::unordered_map<SessionId, std::uint32_t> turns_submitted_ CA_GUARDED_BY(mutex_);
  // Per shard: loop-local JobId -> router-global identity, consumed by
  // TakeReplies.
  std::vector<std::unordered_map<JobId, GlobalJob>> job_maps_ CA_GUARDED_BY(mutex_);
  std::vector<std::vector<ParkedJob>> parked_ CA_GUARDED_BY(mutex_);
  JobId next_job_id_ CA_GUARDED_BY(mutex_) = 1;
  bool accepting_ CA_GUARDED_BY(mutex_) = true;
  std::uint64_t routed_since_poll_ CA_GUARDED_BY(mutex_) = 0;
  bool joined_ = false;  // unguarded: Shutdown idempotence, main thread only

  HistogramMetric* drain_seconds_hist_;  // unguarded: set in ctor, immutable after
};

}  // namespace ca

#endif  // CA_CLUSTER_SHARD_ROUTER_H_
