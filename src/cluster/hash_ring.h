// Consistent-hash ring with virtual nodes (DESIGN.md §16).
//
// Sessions map to shards through `vnodes_per_shard` hashed points per shard
// on a 64-bit ring: ShardFor(session) walks clockwise from the session's
// hash to the first point. A membership change moves only the keys whose
// arc changed owner — about K/N of the keyspace when one of N shards leaves
// — which is what preserves KV locality through rebalancing (vLLM and
// Pensieve route stateful sessions to the instance holding their cache;
// PAPERS.md). Virtual nodes smooth the per-shard load imbalance from
// O(sqrt(N)) arcs to O(sqrt(N * vnodes)).
//
// The ring is a pure placement function: deterministic (fixed mix hash, no
// RNG), no ownership of shards, no session state. Pinning decisions that
// override the ring (overflow placement, post-migration residency) live in
// the ShardRouter.
#ifndef CA_CLUSTER_HASH_RING_H_
#define CA_CLUSTER_HASH_RING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/store/types.h"

namespace ca {

using ShardId = std::uint32_t;

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(std::size_t vnodes_per_shard = 64);

  // Adding an existing shard or removing an absent one is a no-op.
  void AddShard(ShardId shard);
  void RemoveShard(ShardId shard);

  bool Contains(ShardId shard) const { return shards_.count(shard) != 0; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t vnodes_per_shard() const { return vnodes_; }
  std::vector<ShardId> Shards() const { return {shards_.begin(), shards_.end()}; }

  // Owning shard for the session: first ring point clockwise of the
  // session's hash. CHECK-fails on an empty ring.
  ShardId ShardFor(SessionId session) const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, ShardId> points_;  // ring position -> shard
  std::set<ShardId> shards_;
};

}  // namespace ca

#endif  // CA_CLUSTER_HASH_RING_H_
