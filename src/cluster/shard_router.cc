#include "src/cluster/shard_router.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace ca {

std::string_view ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDraining:
      return "draining";
    case ShardHealth::kDrained:
      return "drained";
    case ShardHealth::kQuarantined:
      return "quarantined";
  }
  return "?";
}

ShardRouter::ShardRouter(const Transformer* model, ClusterOptions options)
    : model_(model), options_(std::move(options)), ring_(options_.vnodes_per_shard) {
  CA_CHECK(model_ != nullptr);
  CA_CHECK_GT(options_.num_shards, 0UL);
  MetricsRegistry& reg = MetricsRegistry::Global();
  drain_seconds_hist_ = &reg.GetHistogram("cluster.drain_seconds");
  shards_.reserve(options_.num_shards);
  job_maps_.resize(options_.num_shards);
  parked_.resize(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    EngineOptions eopts =
        options_.engine_options_fn ? options_.engine_options_fn(i) : options_.engine;
    CA_CHECK(!eopts.store.durable)
        << "sharded serving over durable stores needs per-shard journal paths";
    if (!eopts.store.disk_path.empty()) {
      eopts.store.disk_path += ".shard" + std::to_string(i);
    }
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<CachedAttentionEngine>(model_, std::move(eopts));
    shard->loop = std::make_unique<ServingLoop>(shard->engine.get(), options_.server);
    const MetricLabels labels = {{"shard", std::to_string(i)}};
    shard->routed_counter = &reg.GetCounter("cluster.jobs_routed", labels);
    shard->shed_counter = &reg.GetCounter("cluster.jobs_shed", labels);
    shard->overflowed_counter = &reg.GetCounter("cluster.jobs_overflowed", labels);
    shard->migrated_out_counter = &reg.GetCounter("cluster.sessions_migrated_out", labels);
    shard->migrated_in_counter = &reg.GetCounter("cluster.sessions_migrated_in", labels);
    shard->resident_gauge = &reg.GetGauge("cluster.sessions_resident", labels);
    shard->depth_gauge = &reg.GetGauge("cluster.queue_depth", labels);
    shards_.push_back(std::move(shard));
    MutexLock lock(mutex_);
    ring_.AddShard(static_cast<ShardId>(i));
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

void ShardRouter::SubmitToShardLocked(ShardId shard, GlobalJob id, ServeRequest request) {
  Shard& s = *shards_[shard];
  // Accepted work is never dropped: parked-job flushes and Submit both take
  // the unbounded intake (backpressure already happened at acceptance).
  const JobId local = s.loop->Submit(std::move(request));
  job_maps_[shard].emplace(local, id);
  ++s.jobs_routed;
  s.routed_counter->Add(1);
}

std::optional<ShardId> ShardRouter::LeastLoadedShardLocked(ShardId exclude) const {
  std::optional<ShardId> best;
  std::size_t best_depth = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == exclude || shards_[i]->health != ShardHealth::kHealthy) {
      continue;
    }
    const std::size_t depth = shards_[i]->loop->queue_depth();
    if (!best.has_value() || depth < best_depth) {
      best = static_cast<ShardId>(i);
      best_depth = depth;
    }
  }
  return best;
}

std::size_t ShardRouter::HealthyCountLocked() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->health == ShardHealth::kHealthy ? 1 : 0;
  }
  return n;
}

JobId ShardRouter::Submit(ServeRequest request) {
  CA_CHECK(!request.input.empty()) << "empty turn submitted";
  JobId id = 0;
  {
    MutexLock lock(mutex_);
    CA_CHECK(accepting_) << "Submit after Shutdown";
    const SessionId session = request.session;
    const auto pin = pins_.find(session);
    ShardId target = pin != pins_.end() ? pin->second : ring_.ShardFor(session);
    const GlobalJob gid{next_job_id_++, ++turns_submitted_[session]};
    CA_TRACE_INSTANT("cluster.route", "session", session, "shard", target);
    if (shards_[target]->health == ShardHealth::kDraining) {
      parked_[target].push_back(ParkedJob{gid, std::move(request)});
    } else {
      pins_[session] = target;
      SubmitToShardLocked(target, gid, std::move(request));
    }
    id = gid.job;
  }
  MaybeInlinePollHealth();
  return id;
}

std::optional<JobId> ShardRouter::TrySubmit(ServeRequest request) {
  if (request.input.empty()) {
    return std::nullopt;
  }
  std::optional<JobId> id;
  {
    MutexLock lock(mutex_);
    if (!accepting_) {
      return std::nullopt;
    }
    const SessionId session = request.session;
    const auto pin = pins_.find(session);
    const bool is_new = pin == pins_.end();
    ShardId target = is_new ? ring_.ShardFor(session) : pin->second;
    if (shards_[target]->health == ShardHealth::kDraining) {
      // Parked intake bypasses the loop's own queue cap, so the cap applies
      // here too: a long drain under pressure sheds instead of accumulating
      // unbounded parked work. (Submit parks unconditionally — accepted
      // work is never dropped.)
      if (options_.server.max_queue_depth != 0 &&
          parked_[target].size() >= options_.server.max_queue_depth) {
        shards_[target]->jobs_shed += 1;
        shards_[target]->shed_counter->Add(1);
        return std::nullopt;
      }
      // Accepted but parked: the drain in progress flushes these to the
      // session's post-migration shard in acceptance order.
      const GlobalJob gid{next_job_id_++, ++turns_submitted_[session]};
      parked_[target].push_back(ParkedJob{gid, std::move(request)});
      id = gid.job;
    } else {
      auto local = shards_[target]->loop->TrySubmit(request);
      if (!local.has_value() && is_new && options_.overflow_new_sessions) {
        // A new session has no KV anywhere yet — it is the mobile capacity.
        // Existing sessions stay put: a shed turn beats a cold-start on a
        // foreign shard.
        if (const auto alt = LeastLoadedShardLocked(target); alt.has_value()) {
          local = shards_[*alt]->loop->TrySubmit(request);
          if (local.has_value()) {
            shards_[*alt]->jobs_overflowed_in += 1;
            shards_[*alt]->overflowed_counter->Add(1);
            target = *alt;
          }
        }
      }
      if (!local.has_value()) {
        shards_[target]->jobs_shed += 1;
        shards_[target]->shed_counter->Add(1);
        return std::nullopt;
      }
      const GlobalJob gid{next_job_id_++, ++turns_submitted_[session]};
      CA_TRACE_INSTANT("cluster.route", "session", session, "shard", target);
      pins_[session] = target;
      job_maps_[target].emplace(*local, gid);
      shards_[target]->jobs_routed += 1;
      shards_[target]->routed_counter->Add(1);
      id = gid.job;
    }
  }
  MaybeInlinePollHealth();
  return id;
}

void ShardRouter::WaitIdle() {
  for (const auto& shard : shards_) {
    shard->loop->WaitIdle();
  }
}

void ShardRouter::Shutdown() {
  if (joined_) {
    return;
  }
  joined_ = true;
  // No drain may be mid-flight while the loops go down (a drain flushes
  // parked jobs through Submit, which needs open intake).
  MutexLock drain_lock(drain_mutex_);
  {
    MutexLock lock(mutex_);
    accepting_ = false;
  }
  for (const auto& shard : shards_) {
    shard->loop->Shutdown();
  }
}

std::vector<ServeReply> ShardRouter::TakeReplies() {
  std::vector<ServeReply> out;
  MutexLock lock(mutex_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (ServeReply& reply : shards_[i]->loop->TakeReplies()) {
      const auto it = job_maps_[i].find(reply.job);
      CA_CHECK(it != job_maps_[i].end())
          << "shard " << i << " completed job " << reply.job << " the router never routed";
      reply.job = it->second.job;
      reply.turn_index = it->second.turn_index;
      job_maps_[i].erase(it);
      out.push_back(std::move(reply));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ServeReply& a, const ServeReply& b) { return a.job < b.job; });
  return out;
}

std::optional<ShardId> ShardRouter::MigrateSession(ShardId from, SessionId session) {
  CA_TRACE_SPAN("cluster.migrate", "session", session, "from", from);
  Shard& src = *shards_[from];
  if (options_.migration_fault_fn && options_.migration_fault_fn(session, from)) {
    CA_LOG(Warn) << "session " << session << ": injected migration fault";
    return std::nullopt;
  }
  auto snapshot = src.engine->ExportSession(session);
  if (!snapshot.ok()) {
    // LiveSessions listed it, the loop is idle and routing parks this
    // session's turns, so only a concurrent EndSession can race us here.
    CA_LOG(Warn) << "session " << session << " vanished mid-drain: " << snapshot.status();
    return std::nullopt;
  }
  ShardId target;
  {
    MutexLock lock(mutex_);
    target = ring_.ShardFor(session);  // the drained shard already left the ring
  }
  const Status imported = shards_[target]->engine->ImportSession(*std::move(snapshot));
  if (!imported.ok()) {
    // kAlreadyExists would mean the session lives on two shards — routing
    // violated its own invariant. Keep the source copy; the drain sweep
    // unpins the session so it restarts fresh via the ring.
    CA_LOG(Error) << "session " << session << " import into shard " << target
                  << " failed: " << imported;
    return std::nullopt;
  }
  src.engine->EndSession(session);
  MutexLock lock(mutex_);
  src.sessions_migrated_out += 1;
  src.migrated_out_counter->Add(1);
  shards_[target]->sessions_migrated_in += 1;
  shards_[target]->migrated_in_counter->Add(1);
  return target;
}

Status ShardRouter::DrainInternal(ShardId shard, ShardHealth terminal) {
  CA_TRACE_SPAN("cluster.drain", "shard", shard);
  const std::uint64_t start_ns = TraceNowNs();
  if (shard >= shards_.size()) {
    return InvalidArgumentError("unknown shard " + std::to_string(shard));
  }
  Shard& src = *shards_[shard];
  {
    MutexLock lock(mutex_);
    if (src.health != ShardHealth::kHealthy) {
      return FailedPreconditionError("shard " + std::to_string(shard) + " is " +
                                     std::string(ShardHealthName(src.health)));
    }
    if (HealthyCountLocked() < 2) {
      return FailedPreconditionError("shard " + std::to_string(shard) +
                                     " is the last healthy shard");
    }
    // From here on: new sessions stop hashing to this shard, and turns for
    // its pinned sessions are accepted but parked.
    src.health = ShardHealth::kDraining;
    ring_.RemoveShard(shard);
  }
  // Everything the shard already accepted finishes first (per-session FIFO:
  // a migrated session can never have a turn still in flight here when its
  // next turn starts on the target shard).
  src.loop->WaitIdle();
  // Export/import only — the re-pins are recorded here and applied below,
  // atomically with the park-flush. Re-pinning any earlier would let a turn
  // submitted after the re-pin reach the target shard while earlier turns
  // for the same session still sit parked (per-session order violation).
  std::vector<std::pair<SessionId, ShardId>> repins;
  for (const SessionId session : src.engine->LiveSessions()) {
    if (const auto target = MigrateSession(shard, session); target.has_value()) {
      repins.emplace_back(session, *target);
    }
  }
  // Retire the shard's loop for good (graceful: it is idle) and flush its
  // async saves before the engine goes quiet.
  src.loop->Shutdown();
  {
    // Terminal-state flip, re-pins, pin sweep and park-flush in ONE
    // critical section: a turn routed after the flip must see its session's
    // new pin, and a parked turn must reach the loop before it —
    // per-session submission order is the bitwise-identity contract.
    MutexLock lock(mutex_);
    src.health = terminal;
    for (const auto& [session, target] : repins) {
      pins_[session] = target;
    }
    // Sweep every pin still pointing at the retired shard (failed export or
    // import, EndSession raced the drain): left in place it would route the
    // session's next turn to a shut-down loop forever. Unpinned, the
    // session restarts fresh via the ring on its next turn.
    for (auto it = pins_.begin(); it != pins_.end();) {
      it = it->second == shard ? pins_.erase(it) : std::next(it);
    }
    std::vector<ParkedJob> parked = std::move(parked_[shard]);
    parked_[shard].clear();
    for (ParkedJob& job : parked) {
      const SessionId session = job.request.session;
      // Post-sweep a pin can only name a healthy shard, and the ring holds
      // only healthy shards — both routes are safe to submit to.
      const auto pin = pins_.find(session);
      const ShardId target = pin != pins_.end() ? pin->second : ring_.ShardFor(session);
      pins_[session] = target;
      SubmitToShardLocked(target, job.id, std::move(job.request));
    }
  }
  drain_seconds_hist_->Observe(static_cast<double>(TraceNowNs() - start_ns) * 1e-9);
  CA_LOG(Info) << "shard " << shard << " drained (" << ShardHealthName(terminal) << "): "
               << repins.size() << " session(s) migrated";
  return Status::Ok();
}

Status ShardRouter::DrainShard(ShardId shard) {
  MutexLock drain_lock(drain_mutex_);
  return DrainInternal(shard, ShardHealth::kDrained);
}

bool ShardRouter::ShardStoreDead(const Shard& shard) const {
  const StoreConfig& store = shard.engine->options().store;
  bool any_tier = false;
  const auto dead = [&](Tier tier, std::uint64_t capacity) {
    if (capacity == 0) {
      return true;  // never configured — does not count
    }
    any_tier = true;
    return shard.engine->StoreTierHealth(tier) == TierHealth::kQuarantined;
  };
  const bool all_dead = dead(Tier::kHbm, store.hbm_capacity) &
                        dead(Tier::kDram, store.dram_capacity) &
                        dead(Tier::kDisk, store.disk_capacity);
  return any_tier && all_dead;
}

std::size_t ShardRouter::PollHealth() {
  MutexLock drain_lock(drain_mutex_);
  std::size_t retired = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    {
      MutexLock lock(mutex_);
      if (shards_[i]->health != ShardHealth::kHealthy) {
        continue;
      }
    }
    if (!ShardStoreDead(*shards_[i])) {
      continue;
    }
    // PR 3's tier machine, one level up: a store with every tier
    // quarantined can never cache again — move the sessions somewhere that
    // can. They carry their histories; replies stay identical (recompute).
    CA_LOG(Warn) << "shard " << i << " store lost every tier; auto-draining";
    const Status drained = DrainInternal(static_cast<ShardId>(i), ShardHealth::kQuarantined);
    if (drained.ok()) {
      ++retired;
    } else {
      CA_LOG(Error) << "auto-drain of shard " << i << " failed: " << drained;
    }
  }
  return retired;
}

void ShardRouter::MaybeInlinePollHealth() {
  if (options_.health_poll_every == 0) {
    return;
  }
  {
    MutexLock lock(mutex_);
    if (++routed_since_poll_ < options_.health_poll_every) {
      return;
    }
    routed_since_poll_ = 0;
  }
  PollHealth();
}

void ShardRouter::EndSession(SessionId session) {
  // Serialized behind drain_mutex_ so a concurrent drain cannot migrate
  // the session mid-end and resurrect its pin from the re-pin list.
  MutexLock drain_lock(drain_mutex_);
  std::optional<ShardId> pinned;
  {
    MutexLock lock(mutex_);
    const auto pin = pins_.find(session);
    if (pin != pins_.end()) {
      pinned = pin->second;
      pins_.erase(pin);
    }
    turns_submitted_.erase(session);
  }
  if (pinned.has_value()) {
    // The engine outlives its loop, so this is safe even for a shard that
    // was drained after the session last ran on it.
    shards_[*pinned]->engine->EndSession(session);
  }
}

ShardId ShardRouter::ShardOf(SessionId session) const {
  MutexLock lock(mutex_);
  const auto pin = pins_.find(session);
  return pin != pins_.end() ? pin->second : ring_.ShardFor(session);
}

ShardStatus ShardRouter::shard_status(ShardId shard) const {
  CA_CHECK_LT(shard, shards_.size());
  MutexLock lock(mutex_);
  const Shard& s = *shards_[shard];
  ShardStatus status;
  status.health = s.health;
  status.queue_depth = s.loop->queue_depth();
  status.sessions_resident = s.engine->LiveSessions().size();
  status.jobs_routed = s.jobs_routed;
  status.jobs_shed = s.jobs_shed;
  status.jobs_overflowed_in = s.jobs_overflowed_in;
  status.sessions_migrated_out = s.sessions_migrated_out;
  status.sessions_migrated_in = s.sessions_migrated_in;
  return status;
}

void ShardRouter::PublishMetrics(MetricsRegistry* registry) const {
  for (const auto& shard : shards_) {
    shard->resident_gauge->Set(static_cast<double>(shard->engine->LiveSessions().size()));
    shard->depth_gauge->Set(static_cast<double>(shard->loop->queue_depth()));
    shard->engine->PublishMetrics(registry);
  }
}

}  // namespace ca
