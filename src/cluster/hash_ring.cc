#include "src/cluster/hash_ring.h"

#include "src/common/check.h"

namespace ca {
namespace {

// splitmix64 finalizer: full-avalanche mixing so sequential session ids and
// (shard, replica) pairs spread uniformly over the ring. Deterministic by
// construction — ring placement must not depend on process state.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Domain separation between ring points and session keys: without the salt,
// PointFor(0, r) == Mix64(r) == the hash of session id r, so every session
// id below vnodes_per_shard would land exactly on one of shard 0's points
// and the whole small-id range would route to shard 0.
constexpr std::uint64_t kPointSalt = 0x9AE16A3B2F90404FULL;

std::uint64_t PointFor(ShardId shard, std::size_t replica) {
  return Mix64(kPointSalt ^ ((static_cast<std::uint64_t>(shard) << 32) |
                             static_cast<std::uint64_t>(replica)));
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(std::size_t vnodes_per_shard)
    : vnodes_(vnodes_per_shard) {
  CA_CHECK_GT(vnodes_, 0UL);
}

void ConsistentHashRing::AddShard(ShardId shard) {
  if (!shards_.insert(shard).second) {
    return;
  }
  for (std::size_t replica = 0; replica < vnodes_; ++replica) {
    // Collisions between 64-bit points are vanishingly rare; keep the first
    // owner so Add/Remove of another shard restores the exact prior map.
    points_.emplace(PointFor(shard, replica), shard);
  }
}

void ConsistentHashRing::RemoveShard(ShardId shard) {
  if (shards_.erase(shard) == 0) {
    return;
  }
  for (auto it = points_.begin(); it != points_.end();) {
    it = it->second == shard ? points_.erase(it) : std::next(it);
  }
}

ShardId ConsistentHashRing::ShardFor(SessionId session) const {
  CA_CHECK(!points_.empty()) << "ShardFor on an empty ring";
  const auto it = points_.lower_bound(Mix64(session));
  return it == points_.end() ? points_.begin()->second : it->second;
}

}  // namespace ca
