#include "src/sim/timing_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace ca {

TimingModel::TimingModel(ModelDescriptor model, HardwareConfig hw)
    : model_(std::move(model)), hw_(hw) {
  CA_CHECK_GT(model_.params, 0.0);
  CA_CHECK_GT(model_.n_layers, 0U);
  CA_CHECK_GT(model_.num_gpus, 0U);
}

SimTime TimingModel::PrefillTime(std::uint64_t tokens) const {
  if (tokens == 0) {
    return 0;
  }
  const double flops = 2.0 * model_.params * static_cast<double>(tokens);
  const double available =
      hw_.gpu_peak_flops * static_cast<double>(model_.num_gpus) * hw_.prefill_efficiency;
  return FromSeconds(flops / available * hw_.prefill_overhead);
}

SimTime TimingModel::DecodeIterTime(std::size_t batch, std::uint64_t avg_context_tokens) const {
  if (batch == 0) {
    return 0;
  }
  const double bw =
      hw_.hbm_bandwidth * static_cast<double>(model_.num_gpus) * hw_.decode_efficiency;
  // Stream the (fp16) weights once per iteration...
  const double weight_bytes = model_.params * 2.0;
  // ...plus every active sequence's KV cache.
  const double kv_bytes = static_cast<double>(batch) * static_cast<double>(avg_context_tokens) *
                          static_cast<double>(model_.kv_bytes_per_token);
  return FromSeconds((weight_bytes + kv_bytes) / bw);
}

SimTime TimingModel::HostToHbm(std::uint64_t bytes) const {
  return TransferTime(bytes, hw_.pcie_bandwidth);
}

SimTime TimingModel::HbmToHost(std::uint64_t bytes) const {
  return TransferTime(bytes, hw_.pcie_bandwidth);
}

SimTime TimingModel::DiskToDram(std::uint64_t bytes) const {
  return TransferTime(bytes, hw_.ssd_read_bandwidth);
}

SimTime TimingModel::DramToDisk(std::uint64_t bytes) const {
  return TransferTime(bytes, hw_.ssd_write_bandwidth);
}

SimTime TimingModel::OverlappedPrefill(std::uint64_t hist_tokens, std::uint64_t new_tokens,
                                       std::size_t read_buffer_layers, bool preload) const {
  return OverlappedPrefillAtBandwidth(hist_tokens, new_tokens, read_buffer_layers, preload,
                                      hw_.pcie_bandwidth);
}

SimTime TimingModel::OverlappedPrefillAtBandwidth(std::uint64_t hist_tokens,
                                                  std::uint64_t new_tokens,
                                                  std::size_t read_buffer_layers, bool preload,
                                                  double load_bandwidth) const {
  const SimTime t_load = TransferTime(KvBytes(hist_tokens), load_bandwidth);
  const SimTime t_pref = PrefillTime(new_tokens);
  if (t_load == 0) {
    return t_pref;
  }
  if (!preload) {
    return t_load + t_pref;
  }
  const auto layers = static_cast<SimTime>(model_.n_layers);
  const SimTime per_layer_load = t_load / layers;
  const SimTime per_layer_pref = t_pref / layers;
  // Head start granted by the read buffer: `b` layers of KV were loaded
  // while the previous job was still executing (Fig. 6c / 7b).
  const SimTime head_start =
      std::min<SimTime>(static_cast<SimTime>(read_buffer_layers) * per_layer_load, t_load);
  // Pipeline completion: max over layers of load-finish + remaining compute.
  const SimTime end_compute_bound = t_pref + std::max<SimTime>(0, per_layer_load - head_start);
  const SimTime end_load_bound = t_load + per_layer_pref - head_start;
  return std::max({t_pref, end_compute_bound, end_load_bound});
}

std::uint64_t TimingModel::PerfectReadBufferBytes(std::uint64_t hist_tokens,
                                                  std::uint64_t new_tokens) const {
  const SimTime t_load = HostToHbm(KvBytes(hist_tokens));
  const SimTime t_pref = PrefillTime(new_tokens);
  if (t_load <= t_pref) {
    return 0;
  }
  return static_cast<std::uint64_t>(hw_.pcie_bandwidth * ToSeconds(t_load - t_pref));
}

SimTime TimingModel::SaveStall(std::uint64_t bytes_to_save, SimTime overlappable,
                               std::uint64_t write_buffer_bytes) const {
  const std::uint64_t unbuffered =
      bytes_to_save > write_buffer_bytes ? bytes_to_save - write_buffer_bytes : 0;
  const SimTime write_time = HbmToHost(unbuffered);
  return std::max<SimTime>(0, write_time - overlappable);
}

}  // namespace ca
