// Multi-node fleet simulation (DESIGN.md §16): the ShardRouter's routing,
// backpressure and drain policies at fleet scales the real CPU runtime
// cannot reach.
//
// Each node is one inference instance with its own capacity-only
// AttentionStore; the router mirror reuses the *same* ConsistentHashRing as
// src/cluster and the same policy decisions — pin-on-first-accept,
// overflow-to-least-loaded for new sessions only, shed existing sessions on
// a full queue, drain-by-migration to the new ring owner. Migration charges
// real time: KV bytes over a serialized node-to-node channel
// (net_bandwidth), with the migrated session blocked until its transfer
// lands. KV payloads travel between node stores through the same
// ExportRecord/ImportRecord API the live router uses.
#ifndef CA_SIM_MULTI_NODE_H_
#define CA_SIM_MULTI_NODE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cluster/hash_ring.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/model/config.h"
#include "src/sim/event_queue.h"
#include "src/sim/hardware.h"
#include "src/sim/timing_model.h"
#include "src/store/attention_store.h"
#include "src/workload/sharegpt.h"

namespace ca {

struct MultiNodeOptions {
  std::size_t nodes = 16;
  std::size_t vnodes_per_shard = 64;
  ModelDescriptor model = ModelDescriptor::Llama13B();
  HardwareConfig hw = HardwareConfig::A100Node();
  StoreConfig store;  // per-node tiers (capacity-only)

  // Per-node backpressure: turns beyond this many queued are shed (existing
  // sessions) or overflowed (new sessions). 0 = unbounded.
  std::size_t max_queue_depth = 0;
  bool overflow_new_sessions = true;

  // Node-to-node link for migrations, bytes/s (serialized channel).
  double net_bandwidth = 10e9;

  // Scheduled drain (0 disables): at `drain_at`, `drain_node` leaves the
  // ring and its sessions migrate to their new ring owners.
  SimTime drain_at = 0;
  ShardId drain_node = 0;

  // §3.2.1 read-buffer depth for the overlapped partial prefill.
  std::size_t read_buffer_layers = 16;
};

struct NodePerf {
  std::uint64_t jobs_routed = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t jobs_overflowed_in = 0;
  std::uint64_t sessions_migrated_in = 0;
  std::uint64_t sessions_migrated_out = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  SimTime busy = 0;  // node compute time
};

struct MultiNodeMetrics {
  std::vector<NodePerf> nodes;
  std::uint64_t turns = 0;        // turns served fleet-wide
  std::uint64_t shed = 0;         // turns rejected fleet-wide
  std::uint64_t migrations = 0;   // sessions moved by the drain
  SimTime migration_time = 0;     // summed per-session transfer time
  SimTime makespan = 0;
  Samples ttft_s;

  double hit_rate() const {
    std::uint64_t h = 0;
    std::uint64_t total = 0;
    for (const NodePerf& n : nodes) {
      h += n.hits;
      total += n.hits + n.misses;
    }
    return total == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(total);
  }
  double shed_rate() const {
    const std::uint64_t accepted = turns + shed;
    return accepted == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(accepted);
  }
  // Max/min served-jobs ratio over nodes that served anything (the ring
  // balance the hash_ring tests bound analytically, observed end to end).
  double load_balance_ratio() const;
};

class MultiNodeSim {
 public:
  // `workload` must have arrival times assigned (AssignArrivals).
  MultiNodeSim(MultiNodeOptions options, std::vector<SessionTrace> workload);

  MultiNodeMetrics Run();

 private:
  struct Node {
    std::unique_ptr<AttentionStore> store;
    SimTime busy_until = 0;
    std::size_t queue_depth = 0;  // accepted turns not yet finished
    bool draining = false;
    NodePerf perf;
  };
  struct SessionState {
    const SessionTrace* trace = nullptr;
    std::uint32_t next_turn = 0;
    std::uint64_t history_tokens = 0;
    SimTime available_at = 0;  // migration transfer still in flight before this
    bool turn_in_flight = false;
  };

  void OnTurnArrival(SessionId session);
  void ServeTurn(ShardId node_id, SessionId session);
  void FinishTurn(ShardId node_id, SessionId session, std::uint32_t a_tokens);
  void ScheduleNextTurn(SessionId session, SimTime completed_at);
  void DrainNode(ShardId node_id);
  void MigrateSession(ShardId from, SessionId session);

  MultiNodeOptions options_;
  std::vector<SessionTrace> workload_;
  std::unordered_map<SessionId, SessionState> sessions_;

  EventQueue events_;
  TimingModel timing_;
  std::vector<Node> nodes_;
  ConsistentHashRing ring_;
  std::unordered_map<SessionId, ShardId> pins_;
  SimTime migration_channel_busy_until_ = 0;

  MultiNodeMetrics metrics_;
};

}  // namespace ca

#endif  // CA_SIM_MULTI_NODE_H_
