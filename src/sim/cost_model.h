// AWS on-demand cost model (§4.2 "Inference cost"): $5/hour per A100 GPU,
// $0.0088/hour/GB of DRAM, $0.000082/hour/GB of SSD.
#ifndef CA_SIM_COST_MODEL_H_
#define CA_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/common/units.h"

namespace ca {

struct PricingConfig {
  double gpu_per_hour = 5.0;
  double dram_per_gb_hour = 0.0088;
  double ssd_per_gb_hour = 0.000082;
};

struct CostBreakdown {
  double gpu = 0.0;
  double dram = 0.0;
  double ssd = 0.0;

  double total() const { return gpu + dram + ssd; }
  double storage() const { return dram + ssd; }
  double storage_fraction() const { return total() == 0.0 ? 0.0 : storage() / total(); }
};

// `gpu_time` is accumulated GPU busy time (across the job), multiplied by
// the number of GPUs serving the model; storage is rented for the full
// workload duration `wall_time`.
CostBreakdown ComputeCost(const PricingConfig& pricing, std::size_t num_gpus, SimTime gpu_time,
                          std::uint64_t dram_bytes, std::uint64_t ssd_bytes, SimTime wall_time);

}  // namespace ca

#endif  // CA_SIM_COST_MODEL_H_
