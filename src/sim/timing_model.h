// Analytic timing model for one model on one hardware node.
//
// Prefill is compute-bound: t = 2 * params * tokens / (flops * gpus * eff).
// Decode is bandwidth-bound: every iteration streams the weights plus the
// batch's KV caches from HBM.
// KV movement uses the byte sizes from ModelDescriptor and the configured
// link bandwidths.
//
// The layer-wise pre-loading overlap (§3.2.1, Figs. 6-7) has the closed
// form derived from the per-layer pipeline: with L layers, per-layer load
// time pl = T_load/L, per-layer compute pc = T_pref/L and a read buffer
// giving a head start hs (the buffer holds `b` layers, so hs = b*pl, plus
// it removes the wait for the previous job's execution-buffer release):
//   t_end = max(T_pref,  T_pref + pl - hs,  T_load + pc - hs)
// which degrades to T_load + T_pref when pre-loading is disabled.
#ifndef CA_SIM_TIMING_MODEL_H_
#define CA_SIM_TIMING_MODEL_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/model/config.h"
#include "src/sim/hardware.h"

namespace ca {

class TimingModel {
 public:
  TimingModel(ModelDescriptor model, HardwareConfig hw);

  const ModelDescriptor& model() const { return model_; }
  const HardwareConfig& hw() const { return hw_; }

  // KV cache bytes for `tokens` tokens.
  std::uint64_t KvBytes(std::uint64_t tokens) const {
    return tokens * model_.kv_bytes_per_token;
  }

  // --- raw phase costs -------------------------------------------------

  // Compute time to prefill `tokens` prompt tokens (one sequence or summed
  // across a batch; the model is linear in tokens).
  SimTime PrefillTime(std::uint64_t tokens) const;

  // One decode iteration for a batch of `batch` sequences with mean context
  // length `avg_context_tokens`.
  SimTime DecodeIterTime(std::size_t batch, std::uint64_t avg_context_tokens) const;

  // --- KV transfers ------------------------------------------------------

  SimTime HostToHbm(std::uint64_t bytes) const;  // DRAM -> HBM over PCIe
  SimTime HbmToHost(std::uint64_t bytes) const;  // HBM -> DRAM over PCIe
  SimTime DiskToDram(std::uint64_t bytes) const;
  SimTime DramToDisk(std::uint64_t bytes) const;

  // --- overlap schemes ---------------------------------------------------

  // Wall time of a CachedAttention partial prefill: load the KV of
  // `hist_tokens` from host memory while computing `new_tokens`.
  // `read_buffer_layers` sizes the HBM read buffer (0 = PL-B0); pass
  // `preload=false` for the NO-PL baseline (§4.3.2).
  SimTime OverlappedPrefill(std::uint64_t hist_tokens, std::uint64_t new_tokens,
                            std::size_t read_buffer_layers, bool preload) const;

  // Same pipeline but loading at an explicit bandwidth. Used for
  // disk-resident KV caches, which stream disk -> DRAM -> HBM at
  // min(SSD read, PCIe) bandwidth while the new tokens prefill.
  SimTime OverlappedPrefillAtBandwidth(std::uint64_t hist_tokens, std::uint64_t new_tokens,
                                       std::size_t read_buffer_layers, bool preload,
                                       double load_bandwidth) const;

  // Read-buffer bytes needed for perfect overlap:
  // S_buf = B * (T_load*L_hist - T_pref*L_new)  (§3.2.1).
  std::uint64_t PerfectReadBufferBytes(std::uint64_t hist_tokens,
                                       std::uint64_t new_tokens) const;

  // Stall charged after a job finishes for writing back `bytes_to_save` of
  // KV, when `overlappable` of computation ran concurrently and the HBM
  // write buffer absorbs `write_buffer_bytes` (§3.2.2). With async saving
  // the stall is usually zero; the synchronous baseline passes
  // overlappable=0 and write_buffer_bytes=0.
  SimTime SaveStall(std::uint64_t bytes_to_save, SimTime overlappable,
                    std::uint64_t write_buffer_bytes) const;

 private:
  ModelDescriptor model_;
  HardwareConfig hw_;
};

}  // namespace ca

#endif  // CA_SIM_TIMING_MODEL_H_
