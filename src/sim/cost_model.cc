#include "src/sim/cost_model.h"

namespace ca {

CostBreakdown ComputeCost(const PricingConfig& pricing, std::size_t num_gpus, SimTime gpu_time,
                          std::uint64_t dram_bytes, std::uint64_t ssd_bytes, SimTime wall_time) {
  CostBreakdown cost;
  const double gpu_hours =
      ToSeconds(gpu_time) / 3600.0 * static_cast<double>(num_gpus);
  cost.gpu = gpu_hours * pricing.gpu_per_hour;
  const double wall_hours = ToSeconds(wall_time) / 3600.0;
  const double dram_gb = static_cast<double>(dram_bytes) / 1e9;
  const double ssd_gb = static_cast<double>(ssd_bytes) / 1e9;
  cost.dram = dram_gb * wall_hours * pricing.dram_per_gb_hour;
  cost.ssd = ssd_gb * wall_hours * pricing.ssd_per_gb_hour;
  return cost;
}

}  // namespace ca
