#include "src/sim/cluster_sim.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace ca {

namespace {

// Cap on simultaneously outstanding prefetch transfers; keeps the event
// queue bounded while still saturating the single SSD channel.
constexpr std::size_t kMaxOutstandingFetches = 8;

}  // namespace

ClusterSim::ClusterSim(SimOptions options, std::vector<SessionTrace> workload)
    : options_(std::move(options)),
      workload_(std::move(workload)),
      timing_(options_.model, options_.hw),
      store_(options_.store),
      prefetcher_(&store_) {
  CA_CHECK(!workload_.empty());
  sessions_.resize(workload_.size());
  for (std::size_t i = 0; i < workload_.size(); ++i) {
    CA_CHECK_EQ(workload_[i].id, static_cast<SessionId>(i)) << "session ids must be dense";
    sessions_[i].trace = &workload_[i];
    total_turns_ += workload_[i].turns.size();
  }
}

SchedulerHints ClusterSim::CurrentHints() {
  const std::size_t window = EvictionWindowLength(store_, AvgSessionKvBytes());
  return queue_.HintsForWindow(window);
}

std::uint64_t ClusterSim::AvgSessionKvBytes() const {
  const std::uint64_t used = store_.UsedBytes(Tier::kHbm) + store_.UsedBytes(Tier::kDram) +
                             store_.UsedBytes(Tier::kDisk);
  const std::size_t count = store_.RecordCount();
  if (count == 0) {
    // Cold store: assume a mid-size session (1K tokens).
    return timing_.KvBytes(1024);
  }
  return used / count;
}

std::pair<std::uint64_t, bool> ClusterSim::ClampHistory(SessionState& state,
                                                        std::uint32_t new_tokens) {
  const std::uint64_t window = options_.model.context_window;
  std::uint64_t hist = state.history_tokens;
  bool truncated = false;
  if (hist + new_tokens > window) {
    truncated = true;
    // Keep the most recent (1 - ratio) fraction of the window for history.
    const auto keep = static_cast<std::uint64_t>(
        static_cast<double>(window) * (1.0 - options_.truncation_ratio));
    hist = std::min(hist, keep);
    if (hist + new_tokens > window) {
      // Very long new input: history gives way entirely.
      hist = window > new_tokens ? window - new_tokens : 0;
    }
  }
  state.history_tokens = hist;
  return {hist, truncated};
}

void ClusterSim::OnTurnArrival(SessionId session) {
  SessionState& state = sessions_[session];
  const SessionTrace& trace = *state.trace;
  CA_CHECK_LT(state.next_turn, trace.turns.size());
  const Turn& turn = trace.turns[state.next_turn];

  Job job;
  job.id = next_job_id_++;
  job.session = session;
  job.arrival = events_.now();
  job.turn_index = state.next_turn + 1;
  job.new_tokens = turn.q_tokens;
  job.decode_tokens = std::max<std::uint32_t>(1, turn.a_tokens);
  // history_tokens is clamped at dispatch (truncation point); stash the raw
  // value here.
  job.history_tokens = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(state.history_tokens, UINT32_MAX));
  queue_.Push(job);

  SchedulePrefetch();
  WorkerWake();
}

void ClusterSim::SchedulePrefetch() {
  if (options_.mode != EngineMode::kCachedAttention || !options_.prefetch_enabled) {
    return;
  }
  if (outstanding_fetches_ >= kMaxOutstandingFetches) {
    return;
  }
  const auto upcoming = queue_.SessionSnapshot();
  const PrefetchPlan plan = prefetcher_.Plan(upcoming, AvgSessionKvBytes());
  ++metrics_.prefetch_plans;
  for (const SessionId session : plan.to_fetch) {
    if (outstanding_fetches_ >= kMaxOutstandingFetches) {
      break;
    }
    const auto info = store_.GetInfo(session);
    if (!info.has_value() || info->tier != Tier::kDisk) {
      continue;
    }
    if (fetch_in_flight_.count(session) > 0) {
      continue;  // already on the SSD channel
    }
    ++metrics_.prefetch_planned;
    // Serialise on the SSD channel.
    const SimTime start = std::max(disk_busy_until_, events_.now());
    const SimTime done = start + timing_.DiskToDram(info->bytes);
    disk_busy_until_ = done;
    ++outstanding_fetches_;
    fetch_in_flight_.insert(session);
    events_.ScheduleAt(done, [this, session] {
      --outstanding_fetches_;
      fetch_in_flight_.erase(session);
      if (store_.Lookup(session) == Tier::kDisk) {
        const SchedulerHints hints = CurrentHints();
        if (store_.Promote(session, events_.now(), hints).ok()) {
          ++metrics_.prefetch_promoted;
        }
        store_.MaintainDramBuffer(events_.now(), hints);
      } else {
        ++metrics_.prefetch_stale;
      }
      SchedulePrefetch();
    });
  }
}

void ClusterSim::WorkerWake() {
  if (worker_busy_) {
    return;
  }
  // Prefill priority: admit a waiting job if a batch slot is free.
  if (!queue_.empty() && batch_.size() < options_.model.max_batch) {
    auto job = queue_.Pop();
    CA_CHECK(job.has_value());
    StartPrefill(*job);
    return;
  }
  if (!batch_.empty()) {
    RunDecodeIteration();
    return;
  }
  // Idle; next arrival will wake us.
}

void ClusterSim::StartPrefill(Job job) {
  worker_busy_ = true;
  SessionState& state = sessions_[job.session];
  auto [hist, truncated] = ClampHistory(state, job.new_tokens);
  job.history_tokens = static_cast<std::uint32_t>(hist);
  if (truncated && measuring_) {
    ++metrics_.truncation_events;
  }

  SimTime duration = 0;
  std::uint64_t computed = 0;

  if (options_.mode == EngineMode::kRecompute) {
    // RE always recomputes the (possibly truncated) history plus new input.
    computed = hist + job.new_tokens;
    duration = timing_.PrefillTime(computed);
  } else {
    // OF baseline: a coupled-PE KV cache is invalidated by truncation.
    if (truncated && !options_.decoupled_pe) {
      store_.Remove(job.session);
    }
    const auto record = store_.Access(job.session, events_.now());
    if (record.has_value()) {
      // Reuse the cached KV; with decoupled PE a too-long cache is truncated
      // in place (still valid). Cached tokens never exceed history here.
      const std::uint64_t cached = std::min<std::uint64_t>(record->token_count, hist);
      const std::uint64_t missing_hist = hist - cached;
      computed = missing_hist + job.new_tokens;
      if (record->tier == Tier::kDisk) {
        // Prefetch missed: the KV streams disk -> DRAM -> HBM layer by
        // layer at min(SSD, PCIe) bandwidth, overlapped with the prefill
        // of the new tokens; the SSD channel is busy meanwhile.
        const double bw =
            std::min(options_.hw.ssd_read_bandwidth, options_.hw.pcie_bandwidth);
        duration = timing_.OverlappedPrefillAtBandwidth(cached, computed,
                                                        options_.read_buffer_layers,
                                                        options_.layerwise_preload, bw);
        disk_busy_until_ = std::max(disk_busy_until_, events_.now() + duration);
      } else {
        // DRAM (PCIe load) or HBM (already resident: nothing to load).
        const std::uint64_t load_tokens = record->tier == Tier::kHbm ? 0 : cached;
        duration = timing_.OverlappedPrefill(load_tokens, computed,
                                             options_.read_buffer_layers,
                                             options_.layerwise_preload);
      }
    } else {
      computed = hist + job.new_tokens;
      duration = timing_.PrefillTime(computed);
    }
  }

  const SimTime start = events_.now();
  events_.ScheduleAt(start + duration, [this, job, start, duration, computed] {
    FinishPrefill(job, start, duration, computed);
  });
}

void ClusterSim::FinishPrefill(const Job& job, SimTime start, SimTime duration,
                               std::uint64_t computed_tokens) {
  (void)start;
  if (measuring_) {
    metrics_.prefill_busy += duration;
    metrics_.ttft_s.Add(ToSeconds(events_.now() - job.arrival));
    metrics_.prompt_tokens += job.history_tokens + job.new_tokens;
    metrics_.computed_tokens += computed_tokens;
  }

  ActiveJob active;
  active.job = job;
  active.context_tokens = job.history_tokens + job.new_tokens;
  active.remaining_decode = job.decode_tokens;
  active.prefill_done = events_.now();
  batch_.push_back(active);
  batch_ctx_sum_ += active.context_tokens;

  worker_busy_ = false;
  WorkerWake();
}

void ClusterSim::RunDecodeIteration() {
  worker_busy_ = true;
  const std::size_t batch = batch_.size();
  const std::uint64_t avg_ctx = batch_ctx_sum_ / batch;
  const SimTime duration = timing_.DecodeIterTime(batch, avg_ctx);
  events_.ScheduleAt(events_.now() + duration, [this, duration] {
    if (measuring_) {
      metrics_.decode_busy += duration;
      metrics_.decoded_tokens += batch_.size();
    }
    // Advance every active job by one token.
    std::vector<ActiveJob> finished;
    for (auto it = batch_.begin(); it != batch_.end();) {
      it->context_tokens += 1;
      batch_ctx_sum_ += 1;
      CA_CHECK_GT(it->remaining_decode, 0U);
      it->remaining_decode -= 1;
      if (it->remaining_decode == 0) {
        batch_ctx_sum_ -= it->context_tokens;
        finished.push_back(*it);
        it = batch_.erase(it);
      } else {
        ++it;
      }
    }
    worker_busy_ = false;
    for (const ActiveJob& done : finished) {
      FinishTurn(done);
    }
    WorkerWake();
  });
}

void ClusterSim::FinishTurn(const ActiveJob& done) {
  SessionState& state = sessions_[done.job.session];
  state.history_tokens = done.context_tokens;
  state.next_turn += 1;

  if (options_.mode == EngineMode::kCachedAttention) {
    // Save the session's full KV cache (asynchronously overlapped with the
    // decode that just ran; the synchronous baseline blocks for the full
    // write, §3.2.2).
    const std::uint64_t save_bytes = timing_.KvBytes(done.context_tokens);
    SimTime stall;
    if (options_.async_save) {
      const SimTime overlappable = events_.now() - done.prefill_done;
      stall = timing_.SaveStall(save_bytes, overlappable, options_.write_buffer_bytes);
    } else {
      stall = timing_.HbmToHost(save_bytes);
    }
    if (stall > 0) {
      if (measuring_) {
        metrics_.save_stall += stall;
      }
      // The write-back blocks the worker. Stalls serialise on the PCIe
      // write channel, so extend any stall already in flight.
      const SimTime stall_end = std::max(events_.now(), pcie_write_busy_until_) + stall;
      pcie_write_busy_until_ = stall_end;
      worker_busy_ = true;
      ++worker_blocks_;
      events_.ScheduleAt(stall_end, [this] {
        if (--worker_blocks_ == 0) {
          worker_busy_ = false;
          WorkerWake();
        }
      });
    }
    const SchedulerHints hints = CurrentHints();
    const Status put = store_.Put(done.job.session, save_bytes, done.context_tokens, {},
                                  events_.now(), hints);
    if (!put.ok()) {
      CA_LOG(Debug) << "KV of session " << done.job.session << " dropped: " << put;
    }
    store_.MaintainDramBuffer(events_.now(), hints);
    if (options_.store.ttl > 0 && !ttl_sweep_scheduled_) {
      ttl_sweep_scheduled_ = true;
      events_.ScheduleAfter(options_.ttl_sweep_interval, [this] { SweepTtl(); });
    }
  }

  ++completed_turns_;
  if (measuring_) {
    ++metrics_.turns;
  } else if (completed_turns_ >= options_.warmup_turns) {
    // This turn was the last of the warmup; measurement starts now.
    ResetMeasurement();
  }

  // Schedule the user's next turn after their think time.
  const SessionTrace& trace = *state.trace;
  if (state.next_turn < trace.turns.size()) {
    const SimTime think = trace.think_times[state.next_turn];
    const SessionId session = done.job.session;
    events_.ScheduleAfter(think, [this, session] { OnTurnArrival(session); });
  }
}

void ClusterSim::SweepTtl() {
  store_.ExpireTtl(events_.now());
  if (completed_turns_ < total_turns_) {
    events_.ScheduleAfter(options_.ttl_sweep_interval, [this] { SweepTtl(); });
  } else {
    ttl_sweep_scheduled_ = false;
  }
}

void ClusterSim::ResetMeasurement() {
  measuring_ = true;
  measure_start_ = events_.now();
  store_.ResetStats();
}

SimMetrics ClusterSim::Run() {
  // Seed arrival events for every session's first turn.
  for (const SessionTrace& trace : workload_) {
    if (trace.turns.empty()) {
      continue;
    }
    const SessionId session = trace.id;
    events_.ScheduleAt(trace.arrival, [this, session] { OnTurnArrival(session); });
  }
  if (options_.warmup_turns == 0) {
    measuring_ = true;
    measure_start_ = 0;
  }
  events_.Run();
  CA_CHECK_EQ(completed_turns_, total_turns_) << "simulation ended with pending work";

  metrics_.makespan = events_.now() - measure_start_;
  metrics_.store = store_.stats();
  metrics_.cost = ComputeCost(options_.pricing, options_.model.num_gpus, metrics_.gpu_time(),
                              store_.CapacityBytes(Tier::kDram), store_.CapacityBytes(Tier::kDisk),
                              metrics_.makespan);
  return metrics_;
}

}  // namespace ca
