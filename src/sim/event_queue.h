// Discrete-event simulation core: a time-ordered queue of callbacks with a
// deterministic tie-break (FIFO by schedule order).
#ifndef CA_SIM_EVENT_QUEUE_H_
#define CA_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/check.h"
#include "src/common/units.h"

namespace ca {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // Schedules `cb` at absolute time `when` (>= now).
  void ScheduleAt(SimTime when, Callback cb) {
    CA_CHECK_GE(when, now_);
    queue_.push(Event{when, next_seq_++, std::move(cb)});
  }

  // Schedules `cb` after `delay`.
  void ScheduleAfter(SimTime delay, Callback cb) {
    CA_CHECK_GE(delay, 0);
    ScheduleAt(now_ + delay, std::move(cb));
  }

  // Runs events until the queue drains (or `max_events` fire). Returns the
  // number of events executed.
  std::size_t Run(std::size_t max_events = SIZE_MAX) {
    std::size_t fired = 0;
    while (!queue_.empty() && fired < max_events) {
      // Copy out before pop: the callback may schedule new events.
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      ev.cb();
      ++fired;
    }
    return fired;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;

    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ca

#endif  // CA_SIM_EVENT_QUEUE_H_
