// End-to-end serving simulation (§4.2's testbed as a discrete-event model).
//
// One inference instance (the model sharded over its num_gpus GPUs) serves
// conversation turns with continuous batching (max_batch slots, prefill
// priority: a newly admitted job prefills before decode iterations resume,
// matching the paper's observation that prefilling blocks decoding).
// AttentionStore holds inactive sessions' KV caches in DRAM/disk;
// scheduler-aware fetching and eviction use the live job queue.
//
// Modes:
//  * kRecompute       — the RE baseline: discard KV at turn end, re-prefill
//                       the whole history next turn.
//  * kCachedAttention — save KV to AttentionStore, reuse on hit. The
//                       decoupled_pe flag selects §3.4 behaviour (true) or
//                       the OF baseline (false: context-window overflow
//                       invalidates the stored KV cache).
#ifndef CA_SIM_CLUSTER_SIM_H_
#define CA_SIM_CLUSTER_SIM_H_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/model/config.h"
#include "src/sched/batcher.h"
#include "src/sched/job_queue.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/hardware.h"
#include "src/sim/timing_model.h"
#include "src/store/attention_store.h"
#include "src/store/prefetcher.h"
#include "src/workload/sharegpt.h"

namespace ca {

enum class EngineMode { kRecompute, kCachedAttention };

struct SimOptions {
  EngineMode mode = EngineMode::kCachedAttention;
  ModelDescriptor model = ModelDescriptor::Llama13B();
  HardwareConfig hw = HardwareConfig::A100Node();
  StoreConfig store;  // tiers, capacities, policy, TTL

  // §3.2 overlap schemes.
  bool layerwise_preload = true;
  std::size_t read_buffer_layers = 16;
  bool async_save = true;
  std::uint64_t write_buffer_bytes = GiB(1);

  // §3.4: decoupled positional encoding. False = OF baseline (overflow
  // invalidates saved KV). Ignored in kRecompute mode.
  bool decoupled_pe = true;
  // Fraction of the context window dropped on overflow (paper: 0.5).
  double truncation_ratio = 0.5;

  // Scheduler-aware prefetching only exists with the scheduler-aware
  // policy; LRU/FIFO have no future knowledge (§4.3.3).
  bool prefetch_enabled = true;

  // Turns completed before measurement starts (paper: first 10K of 52K).
  std::size_t warmup_turns = 0;

  // Interval of TTL expiration sweeps (when store.ttl > 0).
  SimTime ttl_sweep_interval = kMinute;

  // Cost model.
  PricingConfig pricing;
};

struct SimMetrics {
  // Post-warmup ("measured") turns.
  std::uint64_t turns = 0;
  std::uint64_t truncation_events = 0;

  Samples ttft_s;                       // time to first token, seconds
  std::uint64_t prompt_tokens = 0;      // full prompts served (hist + new)
  std::uint64_t computed_tokens = 0;    // prompt tokens actually prefilled
  std::uint64_t decoded_tokens = 0;

  SimTime prefill_busy = 0;             // GPU time in prefill (incl. load gaps)
  SimTime decode_busy = 0;              // GPU time in decode iterations
  SimTime save_stall = 0;               // GPU time stalled on KV write-back
  SimTime makespan = 0;                 // wall time of the measured window

  StoreStats store;

  // Prefetch pipeline observability.
  std::uint64_t prefetch_plans = 0;           // Plan() invocations
  std::uint64_t prefetch_planned = 0;         // sessions planned in total
  std::uint64_t prefetch_promoted = 0;        // fetches that promoted in time
  std::uint64_t prefetch_stale = 0;           // fetch completed after dispatch/move

  SimTime gpu_time() const { return prefill_busy + decode_busy + save_stall; }
  double mean_ttft_s() const { return ttft_s.mean(); }
  // Prompt-token prefilling throughput (tokens/s): full prompt tokens
  // delivered per second of prefill GPU time. CachedAttention "serves"
  // historical tokens from the cache, so the same formula rewards it
  // exactly as the paper's Fig. 15 does.
  double prefill_throughput() const {
    const double t = ToSeconds(prefill_busy);
    return t == 0.0 ? 0.0 : static_cast<double>(prompt_tokens) / t;
  }
  // End-to-end token throughput over the measured window.
  double token_throughput() const {
    const double t = ToSeconds(makespan);
    return t == 0.0 ? 0.0
                    : static_cast<double>(prompt_tokens + decoded_tokens) / t;
  }

  CostBreakdown cost;
};

class ClusterSim {
 public:
  // `workload` must have arrival times assigned (AssignArrivals).
  ClusterSim(SimOptions options, std::vector<SessionTrace> workload);

  // Runs the full workload to completion and returns measured metrics.
  SimMetrics Run();

 private:
  struct SessionState {
    const SessionTrace* trace = nullptr;
    std::uint32_t next_turn = 0;
    // Logical conversation history (token text), already truncation-clamped.
    std::uint64_t history_tokens = 0;
  };

  struct ActiveJob {
    Job job;
    std::uint64_t context_tokens = 0;   // current tokens in HBM for this job
    std::uint32_t remaining_decode = 0;
    SimTime prefill_done = 0;
    std::uint64_t session_kv_tokens = 0;  // KV length at turn end (for save)
  };

  // --- event handlers ----------------------------------------------------
  void OnTurnArrival(SessionId session);
  void WorkerWake();
  void StartPrefill(Job job);
  void FinishPrefill(const Job& job, SimTime start, SimTime duration,
                     std::uint64_t computed_tokens);
  void RunDecodeIteration();
  void FinishTurn(const ActiveJob& done);
  void SweepTtl();
  void SchedulePrefetch();

  // --- helpers ------------------------------------------------------------
  SchedulerHints CurrentHints();
  std::uint64_t AvgSessionKvBytes() const;
  // Applies context-window truncation to the session for an incoming turn
  // with `new_tokens`; returns effective history and whether truncation
  // happened.
  std::pair<std::uint64_t, bool> ClampHistory(SessionState& state, std::uint32_t new_tokens);
  void ResetMeasurement();

  SimOptions options_;
  std::vector<SessionTrace> workload_;
  std::vector<SessionState> sessions_;

  EventQueue events_;
  TimingModel timing_;
  AttentionStore store_;
  Prefetcher prefetcher_;
  JobQueue queue_;

  // Worker (one inference instance).
  bool worker_busy_ = false;
  std::vector<ActiveJob> batch_;
  std::uint64_t batch_ctx_sum_ = 0;

  // Disk fetch channel (serialised SSD reads for prefetching).
  SimTime disk_busy_until_ = 0;
  std::size_t outstanding_fetches_ = 0;
  std::unordered_set<SessionId> fetch_in_flight_;

  // PCIe write channel for KV save stalls (serialised; §3.2.2).
  SimTime pcie_write_busy_until_ = 0;
  std::size_t worker_blocks_ = 0;

  JobId next_job_id_ = 1;
  std::size_t completed_turns_ = 0;
  std::size_t total_turns_ = 0;
  bool measuring_ = false;
  SimTime measure_start_ = 0;
  bool ttl_sweep_scheduled_ = false;

  SimMetrics metrics_;
};

// Convenience: build workload + options, run both CA and RE, used by several
// benches. Implemented in harness code (bench/harness).

}  // namespace ca

#endif  // CA_SIM_CLUSTER_SIM_H_
