#include "src/sim/multi_node.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace ca {

double MultiNodeMetrics::load_balance_ratio() const {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  for (const NodePerf& n : nodes) {
    if (n.jobs_routed == 0) {
      continue;
    }
    hi = std::max(hi, n.jobs_routed);
    lo = lo == 0 ? n.jobs_routed : std::min(lo, n.jobs_routed);
  }
  return lo == 0 ? 0.0 : static_cast<double>(hi) / static_cast<double>(lo);
}

MultiNodeSim::MultiNodeSim(MultiNodeOptions options, std::vector<SessionTrace> workload)
    : options_(std::move(options)),
      workload_(std::move(workload)),
      timing_(options_.model, options_.hw),
      ring_(options_.vnodes_per_shard) {
  CA_CHECK_GT(options_.nodes, 0UL);
  CA_CHECK(!options_.store.real_payloads) << "the fleet sim models capacity only";
  nodes_.resize(options_.nodes);
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    nodes_[i].store = std::make_unique<AttentionStore>(options_.store);
    ring_.AddShard(static_cast<ShardId>(i));
  }
  metrics_.nodes.resize(options_.nodes);
  for (const SessionTrace& trace : workload_) {
    SessionState state;
    state.trace = &trace;
    sessions_.emplace(trace.id, state);
  }
}

MultiNodeMetrics MultiNodeSim::Run() {
  for (const SessionTrace& trace : workload_) {
    if (trace.turns.empty()) {
      continue;
    }
    const SessionId session = trace.id;
    events_.ScheduleAt(trace.arrival, [this, session] { OnTurnArrival(session); });
  }
  if (options_.drain_at > 0) {
    const ShardId node = options_.drain_node;
    events_.ScheduleAt(options_.drain_at, [this, node] { DrainNode(node); });
  }
  events_.Run();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    metrics_.nodes[i] = nodes_[i].perf;
  }
  return metrics_;
}

void MultiNodeSim::OnTurnArrival(SessionId session) {
  SessionState& state = sessions_.at(session);
  const auto pin = pins_.find(session);
  const bool is_new = pin == pins_.end();
  ShardId target = is_new ? ring_.ShardFor(session) : pin->second;
  // Backpressure mirror of ShardRouter::TrySubmit: a full queue sheds
  // existing sessions (their KV is already local) and overflows new ones to
  // the least-loaded node.
  const bool full = options_.max_queue_depth > 0 &&
                    nodes_[target].queue_depth >= options_.max_queue_depth;
  if (full && is_new && options_.overflow_new_sessions) {
    std::optional<ShardId> best;
    std::size_t best_depth = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i == target || nodes_[i].draining) {
        continue;
      }
      if (!best.has_value() || nodes_[i].queue_depth < best_depth) {
        best = static_cast<ShardId>(i);
        best_depth = nodes_[i].queue_depth;
      }
    }
    if (best.has_value() && best_depth < options_.max_queue_depth) {
      target = *best;
      nodes_[target].perf.jobs_overflowed_in += 1;
    } else {
      ++metrics_.shed;
      nodes_[target].perf.jobs_shed += 1;
      // A shed turn is lost, not retried: skip to the session's next turn.
      state.next_turn += 1;
      ScheduleNextTurn(session, events_.now());
      return;
    }
  } else if (full) {
    ++metrics_.shed;
    nodes_[target].perf.jobs_shed += 1;
    state.next_turn += 1;
    ScheduleNextTurn(session, events_.now());
    return;
  }
  pins_[session] = target;
  ServeTurn(target, session);
}

void MultiNodeSim::ServeTurn(ShardId node_id, SessionId session) {
  Node& node = nodes_[node_id];
  SessionState& state = sessions_.at(session);
  const Turn& turn = state.trace->turns[state.next_turn];
  node.queue_depth += 1;
  node.perf.jobs_routed += 1;
  state.turn_in_flight = true;

  const auto record = node.store->Access(session, events_.now());
  SimTime prefill;
  if (record.has_value() && state.history_tokens > 0) {
    node.perf.hits += 1;
    // Cached history streams in while the new tokens prefill (§3.2.1).
    const double bw = record->tier == Tier::kDisk
                          ? std::min(options_.hw.ssd_read_bandwidth, options_.hw.pcie_bandwidth)
                          : options_.hw.pcie_bandwidth;
    prefill = timing_.OverlappedPrefillAtBandwidth(state.history_tokens, turn.q_tokens,
                                                   options_.read_buffer_layers, true, bw);
  } else {
    node.perf.misses += state.history_tokens > 0 ? 1 : 0;
    prefill = timing_.PrefillTime(state.history_tokens + turn.q_tokens);
  }
  const std::uint64_t ctx = state.history_tokens + turn.q_tokens;
  const SimTime decode =
      static_cast<SimTime>(turn.a_tokens) * timing_.DecodeIterTime(1, ctx + turn.a_tokens / 2);
  // Single-server FIFO per node: service starts once the node frees up and
  // any in-flight migration of this session has landed.
  const SimTime start = std::max({events_.now(), node.busy_until, state.available_at});
  const SimTime done = start + prefill + decode;
  metrics_.ttft_s.Add(ToSeconds(start - events_.now() + prefill));
  node.busy_until = done;
  node.perf.busy += prefill + decode;
  const std::uint32_t a_tokens = turn.a_tokens;
  events_.ScheduleAt(done, [this, node_id, session, a_tokens] {
    FinishTurn(node_id, session, a_tokens);
  });
}

void MultiNodeSim::FinishTurn(ShardId node_id, SessionId session, std::uint32_t a_tokens) {
  Node& node = nodes_[node_id];
  SessionState& state = sessions_.at(session);
  const Turn& turn = state.trace->turns[state.next_turn];
  state.history_tokens += turn.q_tokens + a_tokens;
  state.next_turn += 1;
  state.turn_in_flight = false;
  node.queue_depth -= 1;
  ++metrics_.turns;

  const Status saved =
      node.store->Put(session, timing_.KvBytes(state.history_tokens), state.history_tokens, {},
                      events_.now(), SchedulerHints{});
  if (!saved.ok()) {
    CA_LOG(Debug) << "sim KV save for session " << session << " dropped: " << saved;
  }
  // A turn that was already in flight when its node started draining
  // finishes here (the real router's WaitIdle), then the session moves.
  if (node.draining) {
    MigrateSession(node_id, session);
  }
  ScheduleNextTurn(session, events_.now());
  metrics_.makespan = std::max(metrics_.makespan, events_.now());
}

void MultiNodeSim::ScheduleNextTurn(SessionId session, SimTime completed_at) {
  SessionState& state = sessions_.at(session);
  if (state.next_turn >= state.trace->turns.size()) {
    return;
  }
  const SimTime think =
      state.next_turn < state.trace->think_times.size() ? state.trace->think_times[state.next_turn]
                                                        : 0;
  const SimTime when = std::max(completed_at, events_.now()) + std::max<SimTime>(think, 0);
  events_.ScheduleAt(when, [this, session] { OnTurnArrival(session); });
}

void MultiNodeSim::DrainNode(ShardId node_id) {
  CA_CHECK_LT(node_id, nodes_.size());
  Node& node = nodes_[node_id];
  if (node.draining || ring_.shard_count() < 2) {
    return;
  }
  node.draining = true;
  ring_.RemoveShard(node_id);
  // Sessions with a turn in flight migrate when that turn finishes
  // (FinishTurn), mirroring the router's WaitIdle-before-export.
  std::vector<SessionId> resident;
  for (const auto& [session, shard] : pins_) {
    if (shard == node_id && !sessions_.at(session).turn_in_flight) {
      resident.push_back(session);
    }
  }
  for (const SessionId session : resident) {
    MigrateSession(node_id, session);
  }
}

void MultiNodeSim::MigrateSession(ShardId from, SessionId session) {
  const ShardId target = ring_.ShardFor(session);
  SessionState& state = sessions_.at(session);
  // KV payload rides the serialized node-to-node channel; the session is
  // unavailable until its transfer lands.
  auto exported = nodes_[from].store->ExportRecord(session);
  if (exported.ok()) {
    const SimTime transfer = static_cast<SimTime>(
        static_cast<double>(exported->bytes) / options_.net_bandwidth * kSecond);
    migration_channel_busy_until_ =
        std::max(migration_channel_busy_until_, events_.now()) + transfer;
    state.available_at = std::max(state.available_at, migration_channel_busy_until_);
    metrics_.migration_time += transfer;
    const Status imported =
        nodes_[target].store->ImportRecord(*exported, events_.now(), SchedulerHints{});
    if (!imported.ok()) {
      CA_LOG(Debug) << "sim KV import for session " << session << " dropped: " << imported;
    }
    nodes_[from].store->Remove(session);
  }
  // History always moves (it is metadata-sized); without the record the
  // target recomputes, exactly like the live router.
  pins_[session] = target;
  nodes_[from].perf.sessions_migrated_out += 1;
  nodes_[target].perf.sessions_migrated_in += 1;
  ++metrics_.migrations;
}

}  // namespace ca
