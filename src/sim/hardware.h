// Hardware description for the cluster simulator. Defaults model the
// paper's testbed: NVIDIA A100-80GB GPUs on PCIe Gen4 x16 (~26 GB/s
// effective, §2.4), 128 GB host DRAM and 10 TB of SSD (<5 GB/s, §2.4).
#ifndef CA_SIM_HARDWARE_H_
#define CA_SIM_HARDWARE_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"

namespace ca {

struct HardwareConfig {
  std::string name = "A100-80GB node";

  // --- per-GPU ---
  double gpu_peak_flops = 312e12;            // A100 fp16 dense peak
  double hbm_bandwidth = 2.0e12;             // bytes/s (A100-80GB: ~2039 GB/s)
  std::uint64_t hbm_capacity = GiB(80);

  // --- interconnect / host ---
  double pcie_bandwidth = 26e9;              // effective host<->GPU (paper §2.4)
  double ssd_read_bandwidth = 4.8e9;         // disk -> DRAM (paper: "less than 5 GB/s")
  double ssd_write_bandwidth = 3.0e9;        // DRAM -> disk

  // --- efficiency factors (calibration knobs) ---
  // Fraction of peak flops achieved during prefill. 0.59 calibrates
  // LLaMA-65B prefill of 2K tokens to ~360 ms on 4 GPUs (§2.4).
  double prefill_efficiency = 0.59;
  // Fraction of HBM bandwidth achieved while streaming weights in decode.
  double decode_efficiency = 0.85;
  // Serving-stack inefficiency multiplier applied to prefill compute time.
  // 1.0 models an ideal (flash-attention-class) kernel stack calibrated to
  // §2.4's 360 ms figure; eager PyTorch/Transformers stacks of the paper's
  // era are ~3-5x slower on long prompts, which is what pushes the paper's
  // GPU-time ratios (Fig. 16) up. See bench/ablation_prefill_overhead.
  double prefill_overhead = 1.0;

  static HardwareConfig A100Node() { return HardwareConfig{}; }
};

}  // namespace ca

#endif  // CA_SIM_HARDWARE_H_
