// Continuous batching bookkeeping (Orca-style, §4.1 "Continuous batching is
// enabled through experiments"): a worker holds up to `max_batch` jobs; jobs
// join as slots free up and leave individually when their decode finishes.
#ifndef CA_SCHED_BATCHER_H_
#define CA_SCHED_BATCHER_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/sched/job.h"

namespace ca {

class ContinuousBatcher {
 public:
  explicit ContinuousBatcher(std::size_t max_batch);

  std::size_t max_batch() const { return max_batch_; }
  std::size_t active() const { return active_.size(); }
  std::size_t free_slots() const { return max_batch_ - active_.size(); }
  bool HasSlot() const { return active_.size() < max_batch_; }
  bool empty() const { return active_.empty(); }

  // Admits a job with `remaining` decode iterations left.
  void Admit(const Job& job, std::uint32_t remaining);

  // Advances every active job by one decode iteration; returns the jobs that
  // completed (and releases their slots).
  std::vector<Job> StepIteration();

  // Jobs currently decoding.
  std::vector<JobId> ActiveJobs() const;

 private:
  struct Slot {
    Job job;
    std::uint32_t remaining = 0;
  };

  std::size_t max_batch_;
  std::unordered_map<JobId, Slot> active_;
};

}  // namespace ca

#endif  // CA_SCHED_BATCHER_H_
