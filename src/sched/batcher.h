// Continuous batching bookkeeping (Orca-style, §4.1 "Continuous batching is
// enabled through experiments"): a worker holds up to `max_batch` jobs; jobs
// join as slots free up and leave individually when their decode finishes.
//
// Completion and listing order are deterministic (admission order), so
// serving traces and multi-worker replays are reproducible across
// platforms/libc++s — the internal unordered_map's iteration order never
// leaks out.
#ifndef CA_SCHED_BATCHER_H_
#define CA_SCHED_BATCHER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sched/job.h"

namespace ca {

class ContinuousBatcher {
 public:
  explicit ContinuousBatcher(std::size_t max_batch);

  std::size_t max_batch() const { return max_batch_; }
  std::size_t active() const { return active_.size(); }
  std::size_t free_slots() const { return max_batch_ - active_.size(); }
  bool HasSlot() const { return active_.size() < max_batch_; }
  bool empty() const { return active_.empty(); }

  // Admits a job with `remaining` decode iterations left; returns false when
  // the batch is full (the caller sheds load or leaves the job queued — an
  // overloaded server must never abort). Admitting a job that is already
  // active is a programming error and still CA_CHECKs.
  bool TryAdmit(const Job& job, std::uint32_t remaining);

  // Checked convenience over TryAdmit: aborts when the batch is full. Only
  // for callers that have verified HasSlot() (e.g. the simulator's paced
  // admission); serving paths use TryAdmit.
  void Admit(const Job& job, std::uint32_t remaining);

  // Advances every active job by one decode iteration; returns the jobs that
  // completed, in admission order (and releases their slots).
  std::vector<Job> StepIteration();

  // Jobs currently decoding, in admission order.
  std::vector<JobId> ActiveJobs() const;

 private:
  struct Slot {
    Job job;
    std::uint32_t remaining = 0;
    // Monotonic admission sequence number; orders completions and listings.
    std::uint64_t admitted_seq = 0;
  };

  std::size_t max_batch_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<JobId, Slot> active_;
};

}  // namespace ca

#endif  // CA_SCHED_BATCHER_H_
