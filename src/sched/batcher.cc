#include "src/sched/batcher.h"

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ca {

namespace {

Gauge& ActiveGauge() {
  static Gauge& gauge = MetricsRegistry::Global().GetGauge("sched.batch_active");
  return gauge;
}

}  // namespace

ContinuousBatcher::ContinuousBatcher(std::size_t max_batch) : max_batch_(max_batch) {
  CA_CHECK_GT(max_batch, 0U);
}

void ContinuousBatcher::Admit(const Job& job, std::uint32_t remaining) {
  CA_CHECK(HasSlot()) << "batch full";
  CA_CHECK_EQ(active_.count(job.id), 0U) << "job " << job.id << " already active";
  CA_TRACE_INSTANT("sched.batch_admit", "job", job.id, "session", job.session);
  active_.emplace(job.id, Slot{.job = job, .remaining = remaining});
  ActiveGauge().Set(static_cast<double>(active_.size()));
}

std::vector<Job> ContinuousBatcher::StepIteration() {
  std::vector<Job> done;
  for (auto it = active_.begin(); it != active_.end();) {
    Slot& slot = it->second;
    if (slot.remaining > 0) {
      --slot.remaining;
    }
    if (slot.remaining == 0) {
      done.push_back(slot.job);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  if (!done.empty()) {
    ActiveGauge().Set(static_cast<double>(active_.size()));
  }
  return done;
}

std::vector<JobId> ContinuousBatcher::ActiveJobs() const {
  std::vector<JobId> out;
  out.reserve(active_.size());
  for (const auto& [id, slot] : active_) {
    out.push_back(id);
  }
  return out;
}

}  // namespace ca
