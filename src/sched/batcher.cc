#include "src/sched/batcher.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ca {

namespace {

Gauge& ActiveGauge() {
  static Gauge& gauge = MetricsRegistry::Global().GetGauge("sched.batch_active");
  return gauge;
}

}  // namespace

ContinuousBatcher::ContinuousBatcher(std::size_t max_batch) : max_batch_(max_batch) {
  CA_CHECK_GT(max_batch, 0U);
}

bool ContinuousBatcher::TryAdmit(const Job& job, std::uint32_t remaining) {
  if (!HasSlot()) {
    return false;
  }
  CA_CHECK_EQ(active_.count(job.id), 0U) << "job " << job.id << " already active";
  CA_TRACE_INSTANT("sched.batch_admit", "job", job.id, "session", job.session);
  active_.emplace(job.id,
                  Slot{.job = job, .remaining = remaining, .admitted_seq = next_seq_++});
  ActiveGauge().Set(static_cast<double>(active_.size()));
  return true;
}

void ContinuousBatcher::Admit(const Job& job, std::uint32_t remaining) {
  CA_CHECK(TryAdmit(job, remaining)) << "batch full";
}

std::vector<Job> ContinuousBatcher::StepIteration() {
  std::vector<std::pair<std::uint64_t, Job>> done;
  for (auto it = active_.begin(); it != active_.end();) {
    Slot& slot = it->second;
    if (slot.remaining > 0) {
      --slot.remaining;
    }
    if (slot.remaining == 0) {
      done.emplace_back(slot.admitted_seq, slot.job);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  if (!done.empty()) {
    ActiveGauge().Set(static_cast<double>(active_.size()));
  }
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Job> out;
  out.reserve(done.size());
  for (auto& [seq, job] : done) {
    out.push_back(job);
  }
  return out;
}

std::vector<JobId> ContinuousBatcher::ActiveJobs() const {
  std::vector<std::pair<std::uint64_t, JobId>> order;
  order.reserve(active_.size());
  for (const auto& [id, slot] : active_) {
    order.emplace_back(slot.admitted_seq, id);
  }
  std::sort(order.begin(), order.end());
  std::vector<JobId> out;
  out.reserve(order.size());
  for (const auto& [seq, id] : order) {
    out.push_back(id);
  }
  return out;
}

}  // namespace ca
