// Inference job: one conversation turn submitted to the serving system.
#ifndef CA_SCHED_JOB_H_
#define CA_SCHED_JOB_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/store/types.h"

namespace ca {

using JobId = std::uint64_t;

struct Job {
  JobId id = 0;
  SessionId session = kInvalidSession;
  SimTime arrival = 0;
  // 1-based turn number within the conversation session.
  std::uint32_t turn_index = 0;
  // Tokens the user typed this turn (q_j).
  std::uint32_t new_tokens = 0;
  // Historical tokens of the session before this turn (sum of q_1 a_1 ...).
  // This is the text the *recompute* baseline must re-prefill, and the KV
  // length CachedAttention hopes to find in AttentionStore.
  std::uint32_t history_tokens = 0;
  // Response length to decode this turn (a_j).
  std::uint32_t decode_tokens = 0;

  // Prompt length a conventional engine prefills (history + new input).
  std::uint32_t full_prompt_tokens() const { return history_tokens + new_tokens; }
};

}  // namespace ca

#endif  // CA_SCHED_JOB_H_
