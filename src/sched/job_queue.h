// FIFO job queue with look-ahead snapshots.
//
// The queue is the source of the scheduler hints that drive AttentionStore's
// scheduler-aware fetching and eviction: "the job scheduler maintains a job
// queue, thus having the full knowledge of waiting jobs" (§3.3.1).
#ifndef CA_SCHED_JOB_QUEUE_H_
#define CA_SCHED_JOB_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sched/job.h"
#include "src/store/types.h"

namespace ca {

class JobQueue {
 public:
  void Push(Job job);

  // Pops the head job (FIFO order).
  std::optional<Job> Pop();

  // Pops the first job (scanning from the head) for which `runnable` returns
  // true; the relative order of the remaining jobs is preserved. Because the
  // scan starts at the head, the popped job is always the *earliest* waiting
  // job of its session — which is what lets a multi-worker serving loop skip
  // sessions that are already being served without ever reordering two jobs
  // of the same session (per-session FIFO).
  std::optional<Job> PopFirstRunnable(const std::function<bool(const Job&)>& runnable);

  // True when PopFirstRunnable would succeed (same head-first scan, no pop).
  bool HasRunnable(const std::function<bool(const Job&)>& runnable) const;

  const Job* Peek() const;
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  // Session of every waiting job, head first (the look-ahead view).
  std::vector<SessionId> SessionSnapshot() const;

  // Sessions of the first `window_len` waiting jobs, head first — the
  // look-ahead window a serving loop republishes into the engine
  // (CachedAttentionEngine::SetQueueHint) and feeds to the §3.3.1
  // prefetcher. HintsForWindow(n) == BuildHints(WindowSnapshot(n), n).
  std::vector<SessionId> WindowSnapshot(std::size_t window_len) const;

  // Hints over the first `window_len` waiting jobs (look-ahead eviction
  // window). Sessions keep their earliest queue position.
  SchedulerHints HintsForWindow(std::size_t window_len) const;

 private:
  std::deque<Job> jobs_;
  // Enqueue timestamps parallel to jobs_ (Job itself stays a plain value
  // type); Pop() observes head wait time into the registry histogram.
  std::deque<std::uint64_t> enqueue_ns_;

  // Registry handles (DESIGN.md §11), interned once per queue.
  Gauge* depth_gauge_ = &MetricsRegistry::Global().GetGauge("sched.queue_depth");
  HistogramMetric* wait_hist_ =
      &MetricsRegistry::Global().GetHistogram("sched.queue_wait_seconds");
};

}  // namespace ca

#endif  // CA_SCHED_JOB_QUEUE_H_
