// FIFO job queue with look-ahead snapshots.
//
// The queue is the source of the scheduler hints that drive AttentionStore's
// scheduler-aware fetching and eviction: "the job scheduler maintains a job
// queue, thus having the full knowledge of waiting jobs" (§3.3.1).
#ifndef CA_SCHED_JOB_QUEUE_H_
#define CA_SCHED_JOB_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sched/job.h"
#include "src/store/types.h"

namespace ca {

class JobQueue {
 public:
  void Push(Job job);

  // Pops the head job (FIFO order).
  std::optional<Job> Pop();

  const Job* Peek() const;
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  // Session of every waiting job, head first (the look-ahead view).
  std::vector<SessionId> SessionSnapshot() const;

  // Hints over the first `window_len` waiting jobs (look-ahead eviction
  // window). Sessions keep their earliest queue position.
  SchedulerHints HintsForWindow(std::size_t window_len) const;

 private:
  std::deque<Job> jobs_;
  // Enqueue timestamps parallel to jobs_ (Job itself stays a plain value
  // type); Pop() observes head wait time into the registry histogram.
  std::deque<std::uint64_t> enqueue_ns_;

  // Registry handles (DESIGN.md §11), interned once per queue.
  Gauge* depth_gauge_ = &MetricsRegistry::Global().GetGauge("sched.queue_depth");
  HistogramMetric* wait_hist_ =
      &MetricsRegistry::Global().GetHistogram("sched.queue_wait_seconds");
};

}  // namespace ca

#endif  // CA_SCHED_JOB_QUEUE_H_
