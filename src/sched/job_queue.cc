#include "src/sched/job_queue.h"

#include <algorithm>

#include "src/obs/trace.h"

namespace ca {

void JobQueue::Push(Job job) {
  CA_TRACE_INSTANT("sched.enqueue", "job", job.id, "session", job.session);
  jobs_.push_back(job);
  enqueue_ns_.push_back(TraceNowNs());
  depth_gauge_->Set(static_cast<double>(jobs_.size()));
}

std::optional<Job> JobQueue::Pop() {
  if (jobs_.empty()) {
    return std::nullopt;
  }
  Job job = jobs_.front();
  jobs_.pop_front();
  const std::uint64_t queued_at = enqueue_ns_.front();
  enqueue_ns_.pop_front();
  const double waited = static_cast<double>(TraceNowNs() - queued_at) * 1e-9;
  wait_hist_->Observe(waited);
  depth_gauge_->Set(static_cast<double>(jobs_.size()));
  CA_TRACE_INSTANT("sched.dequeue", "job", job.id, "session", job.session);
  return job;
}

std::optional<Job> JobQueue::PopFirstRunnable(
    const std::function<bool(const Job&)>& runnable) {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!runnable(jobs_[i])) {
      continue;
    }
    Job job = jobs_[i];
    jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
    const std::uint64_t queued_at = enqueue_ns_[i];
    enqueue_ns_.erase(enqueue_ns_.begin() + static_cast<std::ptrdiff_t>(i));
    const double waited = static_cast<double>(TraceNowNs() - queued_at) * 1e-9;
    wait_hist_->Observe(waited);
    depth_gauge_->Set(static_cast<double>(jobs_.size()));
    CA_TRACE_INSTANT("sched.dequeue", "job", job.id, "session", job.session);
    return job;
  }
  return std::nullopt;
}

bool JobQueue::HasRunnable(const std::function<bool(const Job&)>& runnable) const {
  for (const Job& job : jobs_) {
    if (runnable(job)) {
      return true;
    }
  }
  return false;
}

const Job* JobQueue::Peek() const { return jobs_.empty() ? nullptr : &jobs_.front(); }

std::vector<SessionId> JobQueue::SessionSnapshot() const {
  std::vector<SessionId> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    out.push_back(j.session);
  }
  return out;
}

std::vector<SessionId> JobQueue::WindowSnapshot(std::size_t window_len) const {
  std::vector<SessionId> out;
  const std::size_t n = std::min(window_len, jobs_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(jobs_[i].session);
  }
  return out;
}

SchedulerHints JobQueue::HintsForWindow(std::size_t window_len) const {
  SchedulerHints hints;
  const std::size_t n = std::min(window_len, jobs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    hints.next_use_index.emplace(jobs_[i].session, i);
  }
  return hints;
}

}  // namespace ca
