#include "src/sched/job_queue.h"

#include <algorithm>

namespace ca {

void JobQueue::Push(Job job) { jobs_.push_back(job); }

std::optional<Job> JobQueue::Pop() {
  if (jobs_.empty()) {
    return std::nullopt;
  }
  Job job = jobs_.front();
  jobs_.pop_front();
  return job;
}

const Job* JobQueue::Peek() const { return jobs_.empty() ? nullptr : &jobs_.front(); }

std::vector<SessionId> JobQueue::SessionSnapshot() const {
  std::vector<SessionId> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    out.push_back(j.session);
  }
  return out;
}

SchedulerHints JobQueue::HintsForWindow(std::size_t window_len) const {
  SchedulerHints hints;
  const std::size_t n = std::min(window_len, jobs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    hints.next_use_index.emplace(jobs_[i].session, i);
  }
  return hints;
}

}  // namespace ca
