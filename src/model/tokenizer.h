// Byte-level tokenizer: one token per byte, matching the mini models'
// 256-entry vocabulary. Keeps the examples self-contained without shipping a
// learned vocabulary.
#ifndef CA_MODEL_TOKENIZER_H_
#define CA_MODEL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/model/transformer.h"

namespace ca {

class ByteTokenizer {
 public:
  static constexpr std::size_t kVocabSize = 256;

  std::vector<TokenId> Encode(std::string_view text) const;
  std::string Decode(const std::vector<TokenId>& tokens) const;
};

}  // namespace ca

#endif  // CA_MODEL_TOKENIZER_H_
