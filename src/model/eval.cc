#include "src/model/eval.h"

#include <cmath>

#include "src/common/check.h"
#include "src/tensor/ops.h"

namespace ca {

double ContinuationNll(const Transformer& model, std::span<const TokenId> continuation,
                       KvCache& cache) {
  CA_CHECK_GE(continuation.size(), 2U) << "need at least one (context, target) pair";
  // Forward all tokens at once; logits row i predicts continuation[i+1].
  const Tensor logits = model.Forward(continuation, cache);
  const std::size_t vocab = model.config().vocab_size;
  double total_nll = 0.0;
  const std::size_t pairs = continuation.size() - 1;
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::span<const float> row{logits.row(i), vocab};
    const double lse = LogSumExp(row);
    const TokenId target = continuation[i + 1];
    total_nll += lse - static_cast<double>(row[static_cast<std::size_t>(target)]);
  }
  return total_nll / static_cast<double>(pairs);
}

double NllToPerplexity(double nll) { return std::exp(nll); }

TokenId PredictNext(const Transformer& model, std::span<const TokenId> probe, KvCache& cache) {
  CA_CHECK_GT(probe.size(), 0U);
  const Tensor logits = model.Forward(probe, cache);
  return model.Argmax(logits, logits.dim(0) - 1);
}

double ArgmaxAgreement(const Transformer& model, const Tensor& logits_a, const Tensor& logits_b) {
  CA_CHECK_EQ(logits_a.dim(0), logits_b.dim(0));
  const std::size_t rows = logits_a.dim(0);
  std::size_t agree = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (model.Argmax(logits_a, r) == model.Argmax(logits_b, r)) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(rows);
}

}  // namespace ca
