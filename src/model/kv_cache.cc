#include "src/model/kv_cache.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace ca {

namespace {

constexpr std::uint32_t kMagic = 0x43414b56;  // "CAKV"

struct SerializedHeader {
  std::uint32_t magic;
  std::uint32_t pe_mode;
  std::uint32_t n_layers;
  std::uint32_t kv_dim;
  std::uint64_t seq_len;
};

}  // namespace

KvCache::KvCache(const ModelConfig& config, PeMode pe_mode)
    : pe_mode_(pe_mode), kv_dim_(config.kv_dim()), k_(config.n_layers), v_(config.n_layers) {
  config.Validate();
}

std::size_t KvCache::seq_len() const {
  if (k_.empty()) {
    return 0;
  }
  return k_[0].size() / kv_dim_;
}

std::size_t KvCache::layer_len(std::size_t layer) const {
  CA_CHECK_LT(layer, k_.size());
  return k_[layer].size() / kv_dim_;
}

namespace {

// Appends one row with explicitly geometric capacity growth. libstdc++
// already doubles on insert, but the 2x policy is a guarantee we rely on
// (prefill must not be O(n^2) reallocation), not an implementation detail
// to inherit silently.
void AppendRow(std::vector<float>& dst, std::span<const float> row) {
  if (dst.size() + row.size() > dst.capacity()) {
    dst.reserve(std::max(dst.size() + row.size(), 2 * dst.capacity()));
  }
  dst.insert(dst.end(), row.begin(), row.end());
}

}  // namespace

void KvCache::Append(std::size_t layer, std::span<const float> k, std::span<const float> v) {
  CA_CHECK_LT(layer, k_.size());
  CA_CHECK_EQ(k.size(), kv_dim_);
  CA_CHECK_EQ(v.size(), kv_dim_);
  AppendRow(k_[layer], k);
  AppendRow(v_[layer], v);
}

void KvCache::Reserve(std::size_t total_tokens) {
  const std::size_t floats = total_tokens * kv_dim_;
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    if (k_[layer].capacity() < floats) {
      k_[layer].reserve(floats);
    }
    if (v_[layer].capacity() < floats) {
      v_[layer].reserve(floats);
    }
  }
}

std::span<const float> KvCache::LayerK(std::size_t layer) const {
  CA_CHECK_LT(layer, k_.size());
  return {k_[layer].data(), k_[layer].size()};
}

std::span<const float> KvCache::LayerV(std::size_t layer) const {
  CA_CHECK_LT(layer, v_.size());
  return {v_[layer].data(), v_[layer].size()};
}

std::span<const float> KvCache::K(std::size_t layer, std::size_t token) const {
  CA_CHECK_LT(layer, k_.size());
  CA_CHECK_LT(token, layer_len(layer));
  return {k_[layer].data() + token * kv_dim_, kv_dim_};
}

std::span<const float> KvCache::V(std::size_t layer, std::size_t token) const {
  CA_CHECK_LT(layer, v_.size());
  CA_CHECK_LT(token, layer_len(layer));
  return {v_[layer].data() + token * kv_dim_, kv_dim_};
}

std::span<float> KvCache::MutableK(std::size_t layer, std::size_t token) {
  CA_CHECK_LT(layer, k_.size());
  CA_CHECK_LT(token, layer_len(layer));
  return {k_[layer].data() + token * kv_dim_, kv_dim_};
}

void KvCache::TruncateFront(std::size_t n_tokens) {
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    const std::size_t len = layer_len(layer);
    const std::size_t drop = std::min(n_tokens, len);
    k_[layer].erase(k_[layer].begin(),
                    k_[layer].begin() + static_cast<std::ptrdiff_t>(drop * kv_dim_));
    v_[layer].erase(v_[layer].begin(),
                    v_[layer].begin() + static_cast<std::ptrdiff_t>(drop * kv_dim_));
  }
}

void KvCache::DiscardTokens(std::span<const std::size_t> discard) {
  if (discard.empty()) {
    return;
  }
  const std::size_t len = seq_len();
  std::vector<bool> keep(len, true);
  for (const std::size_t idx : discard) {
    if (idx < len) {
      keep[idx] = false;
    }
  }
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    CA_CHECK_EQ(layer_len(layer), len) << "DiscardTokens mid-forward";
    std::vector<float> new_k;
    std::vector<float> new_v;
    new_k.reserve(k_[layer].size());
    new_v.reserve(v_[layer].size());
    for (std::size_t t = 0; t < len; ++t) {
      if (!keep[t]) {
        continue;
      }
      const float* kp = k_[layer].data() + t * kv_dim_;
      const float* vp = v_[layer].data() + t * kv_dim_;
      new_k.insert(new_k.end(), kp, kp + kv_dim_);
      new_v.insert(new_v.end(), vp, vp + kv_dim_);
    }
    k_[layer] = std::move(new_k);
    v_[layer] = std::move(new_v);
  }
}

void KvCache::Clear() {
  for (auto& layer : k_) {
    layer.clear();
  }
  for (auto& layer : v_) {
    layer.clear();
  }
}

std::uint64_t KvCache::byte_size() const {
  std::uint64_t bytes = 0;
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    bytes += (k_[layer].size() + v_[layer].size()) * sizeof(float);
  }
  return bytes;
}

KvCache KvCache::Clone() const { return *this; }

std::vector<std::uint8_t> KvCache::Serialize() const {
  const std::size_t len = seq_len();
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    CA_CHECK_EQ(layer_len(layer), len) << "Serialize mid-forward";
  }
  SerializedHeader header{
      .magic = kMagic,
      .pe_mode = static_cast<std::uint32_t>(pe_mode_),
      .n_layers = static_cast<std::uint32_t>(k_.size()),
      .kv_dim = static_cast<std::uint32_t>(kv_dim_),
      .seq_len = len,
  };
  std::vector<std::uint8_t> out(sizeof(header) + byte_size());
  std::memcpy(out.data(), &header, sizeof(header));
  std::size_t off = sizeof(header);
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    // Empty layers have a null data(); memcpy forbids null even with size 0.
    const std::size_t k_bytes = k_[layer].size() * sizeof(float);
    if (k_bytes > 0) {
      std::memcpy(out.data() + off, k_[layer].data(), k_bytes);
    }
    off += k_bytes;
    const std::size_t v_bytes = v_[layer].size() * sizeof(float);
    if (v_bytes > 0) {
      std::memcpy(out.data() + off, v_[layer].data(), v_bytes);
    }
    off += v_bytes;
  }
  CA_CHECK_EQ(off, out.size());
  return out;
}

Result<KvCache> KvCache::Deserialize(const ModelConfig& config,
                                     std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(SerializedHeader)) {
    return InvalidArgumentError("KV cache buffer shorter than header");
  }
  SerializedHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kMagic) {
    return InvalidArgumentError("bad KV cache magic");
  }
  if (header.n_layers != config.n_layers || header.kv_dim != config.kv_dim()) {
    return InvalidArgumentError("KV cache shape does not match model config");
  }
  const std::size_t row_floats = header.kv_dim;
  const std::size_t expected =
      sizeof(header) + 2ULL * header.n_layers * header.seq_len * row_floats * sizeof(float);
  if (bytes.size() != expected) {
    return InvalidArgumentError("KV cache buffer size mismatch");
  }
  KvCache cache(config, static_cast<PeMode>(header.pe_mode));
  std::size_t off = sizeof(header);
  const std::size_t layer_floats = header.seq_len * row_floats;
  for (std::size_t layer = 0; layer < header.n_layers && layer_floats > 0; ++layer) {
    cache.k_[layer].resize(layer_floats);
    std::memcpy(cache.k_[layer].data(), bytes.data() + off, layer_floats * sizeof(float));
    off += layer_floats * sizeof(float);
    cache.v_[layer].resize(layer_floats);
    std::memcpy(cache.v_[layer].data(), bytes.data() + off, layer_floats * sizeof(float));
    off += layer_floats * sizeof(float);
  }
  return cache;
}

}  // namespace ca
