#include "src/model/kv_cache.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace ca {

namespace {

constexpr std::uint32_t kMagic = 0x43414b56;  // "CAKV"

struct SerializedHeader {
  std::uint32_t magic;
  std::uint32_t pe_mode;
  std::uint32_t n_layers;
  std::uint32_t kv_dim;
  std::uint64_t seq_len;
};

static_assert(sizeof(SerializedHeader) == KvCache::kSerializedHeaderBytes,
              "wire header size drifted from KvCache::kSerializedHeaderBytes");

}  // namespace

KvCache::KvCache(const ModelConfig& config, PeMode pe_mode)
    : pe_mode_(pe_mode), kv_dim_(config.kv_dim()), k_(config.n_layers), v_(config.n_layers) {
  config.Validate();
}

std::size_t KvCache::seq_len() const {
  if (k_.empty()) {
    return 0;
  }
  return k_[0].size() / kv_dim_;
}

std::size_t KvCache::layer_len(std::size_t layer) const {
  CA_CHECK_LT(layer, k_.size());
  return k_[layer].size() / kv_dim_;
}

namespace {

// Appends one row with explicitly geometric capacity growth. libstdc++
// already doubles on insert, but the 2x policy is a guarantee we rely on
// (prefill must not be O(n^2) reallocation), not an implementation detail
// to inherit silently.
void AppendRow(std::vector<float>& dst, std::span<const float> row) {
  if (dst.size() + row.size() > dst.capacity()) {
    dst.reserve(std::max(dst.size() + row.size(), 2 * dst.capacity()));
  }
  dst.insert(dst.end(), row.begin(), row.end());
}

}  // namespace

void KvCache::Append(std::size_t layer, std::span<const float> k, std::span<const float> v) {
  CA_CHECK_LT(layer, k_.size());
  CA_CHECK_EQ(k.size(), kv_dim_);
  CA_CHECK_EQ(v.size(), kv_dim_);
  AppendRow(k_[layer], k);
  AppendRow(v_[layer], v);
}

void KvCache::Reserve(std::size_t total_tokens) {
  const std::size_t floats = total_tokens * kv_dim_;
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    if (k_[layer].capacity() < floats) {
      k_[layer].reserve(floats);
    }
    if (v_[layer].capacity() < floats) {
      v_[layer].reserve(floats);
    }
  }
}

std::span<const float> KvCache::LayerK(std::size_t layer) const {
  CA_CHECK_LT(layer, k_.size());
  return {k_[layer].data(), k_[layer].size()};
}

std::span<const float> KvCache::LayerV(std::size_t layer) const {
  CA_CHECK_LT(layer, v_.size());
  return {v_[layer].data(), v_[layer].size()};
}

std::span<const float> KvCache::K(std::size_t layer, std::size_t token) const {
  CA_CHECK_LT(layer, k_.size());
  CA_CHECK_LT(token, layer_len(layer));
  return {k_[layer].data() + token * kv_dim_, kv_dim_};
}

std::span<const float> KvCache::V(std::size_t layer, std::size_t token) const {
  CA_CHECK_LT(layer, v_.size());
  CA_CHECK_LT(token, layer_len(layer));
  return {v_[layer].data() + token * kv_dim_, kv_dim_};
}

std::span<float> KvCache::MutableK(std::size_t layer, std::size_t token) {
  CA_CHECK_LT(layer, k_.size());
  CA_CHECK_LT(token, layer_len(layer));
  return {k_[layer].data() + token * kv_dim_, kv_dim_};
}

void KvCache::TruncateFront(std::size_t n_tokens) {
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    const std::size_t len = layer_len(layer);
    const std::size_t drop = std::min(n_tokens, len);
    k_[layer].erase(k_[layer].begin(),
                    k_[layer].begin() + static_cast<std::ptrdiff_t>(drop * kv_dim_));
    v_[layer].erase(v_[layer].begin(),
                    v_[layer].begin() + static_cast<std::ptrdiff_t>(drop * kv_dim_));
  }
}

void KvCache::DiscardTokens(std::span<const std::size_t> discard) {
  if (discard.empty()) {
    return;
  }
  const std::size_t len = seq_len();
  std::vector<bool> keep(len, true);
  for (const std::size_t idx : discard) {
    if (idx < len) {
      keep[idx] = false;
    }
  }
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    CA_CHECK_EQ(layer_len(layer), len) << "DiscardTokens mid-forward";
    std::vector<float> new_k;
    std::vector<float> new_v;
    new_k.reserve(k_[layer].size());
    new_v.reserve(v_[layer].size());
    for (std::size_t t = 0; t < len; ++t) {
      if (!keep[t]) {
        continue;
      }
      const float* kp = k_[layer].data() + t * kv_dim_;
      const float* vp = v_[layer].data() + t * kv_dim_;
      new_k.insert(new_k.end(), kp, kp + kv_dim_);
      new_v.insert(new_v.end(), vp, vp + kv_dim_);
    }
    k_[layer] = std::move(new_k);
    v_[layer] = std::move(new_v);
  }
}

void KvCache::Clear() {
  for (auto& layer : k_) {
    layer.clear();
  }
  for (auto& layer : v_) {
    layer.clear();
  }
}

std::uint64_t KvCache::byte_size() const {
  std::uint64_t bytes = 0;
  for (std::size_t layer = 0; layer < k_.size(); ++layer) {
    bytes += (k_[layer].size() + v_[layer].size()) * sizeof(float);
  }
  return bytes;
}

KvCache KvCache::Clone() const { return *this; }

KvCache::Serializer::Serializer(const KvCache& cache) {
  const std::size_t len = cache.seq_len();
  for (std::size_t layer = 0; layer < cache.k_.size(); ++layer) {
    CA_CHECK_EQ(cache.layer_len(layer), len) << "Serialize mid-forward";
  }
  const SerializedHeader header{
      .magic = kMagic,
      .pe_mode = static_cast<std::uint32_t>(cache.pe_mode_),
      .n_layers = static_cast<std::uint32_t>(cache.k_.size()),
      .kv_dim = static_cast<std::uint32_t>(cache.kv_dim_),
      .seq_len = len,
  };
  std::memcpy(header_.data(), &header, sizeof(header));
  segments_.reserve(1 + 2 * cache.k_.size());
  segments_.push_back(Segment{.data = header_.data(), .len = header_.size()});
  total_ = header_.size();
  for (std::size_t layer = 0; layer < cache.k_.size(); ++layer) {
    // Empty layers have a null data(); skip them so Fill never touches a
    // null segment pointer.
    if (const std::size_t k_bytes = cache.k_[layer].size() * sizeof(float); k_bytes > 0) {
      segments_.push_back(Segment{
          .data = reinterpret_cast<const std::uint8_t*>(cache.k_[layer].data()), .len = k_bytes});
      total_ += k_bytes;
    }
    if (const std::size_t v_bytes = cache.v_[layer].size() * sizeof(float); v_bytes > 0) {
      segments_.push_back(Segment{
          .data = reinterpret_cast<const std::uint8_t*>(cache.v_[layer].data()), .len = v_bytes});
      total_ += v_bytes;
    }
  }
  CA_CHECK_EQ(total_, cache.SerializedSize());
}

void KvCache::Serializer::Fill(std::span<std::uint8_t> dest) {
  std::size_t off = 0;
  while (off < dest.size()) {
    CA_CHECK_LT(seg_, segments_.size()) << "Fill past the serialized payload";
    const Segment& s = segments_[seg_];
    if (seg_off_ == s.len) {
      ++seg_;
      seg_off_ = 0;
      continue;
    }
    const std::size_t take = std::min(dest.size() - off, s.len - seg_off_);
    std::memcpy(dest.data() + off, s.data + seg_off_, take);
    off += take;
    seg_off_ += take;
  }
}

void KvCache::SerializeInto(std::span<std::uint8_t> out) const {
  Serializer cursor(*this);
  CA_CHECK_EQ(out.size(), cursor.size()) << "SerializeInto buffer size mismatch";
  cursor.Fill(out);
}

std::vector<std::uint8_t> KvCache::Serialize() const {
  std::vector<std::uint8_t> out(SerializedSize());
  SerializeInto(out);
  return out;
}

void KvCache::StreamingDeserializer::Reset() {
  header_have_ = 0;
  cache_.reset();
  error_ = Status::Ok();
  segments_.clear();
  seg_ = 0;
  seg_off_ = 0;
  expected_total_ = 0;
  consumed_ = 0;
}

void KvCache::StreamingDeserializer::ParseHeader() {
  SerializedHeader header;
  std::memcpy(&header, header_.data(), sizeof(header));
  if (header.magic != kMagic) {
    error_ = InvalidArgumentError("bad KV cache magic");
    return;
  }
  if (header.n_layers != config_->n_layers || header.kv_dim != config_->kv_dim()) {
    error_ = InvalidArgumentError("KV cache shape does not match model config");
    return;
  }
  // A cache can never legitimately exceed the model's context window; a
  // garbage length must not drive the tensor allocation below. (Reachable
  // only with checksum verification disabled — a verified stream never
  // presents a damaged header.)
  if (header.seq_len > config_->context_window) {
    error_ = InvalidArgumentError("KV cache seq_len exceeds the context window");
    return;
  }
  expected_total_ =
      sizeof(header) + 2ULL * header.n_layers * header.seq_len * header.kv_dim * sizeof(float);
  cache_ = std::make_unique<KvCache>(*config_, static_cast<PeMode>(header.pe_mode));
  const std::size_t layer_floats = header.seq_len * header.kv_dim;
  if (layer_floats == 0) {
    return;
  }
  segments_.reserve(2ULL * header.n_layers);
  for (std::size_t layer = 0; layer < header.n_layers; ++layer) {
    cache_->k_[layer].resize(layer_floats);
    segments_.push_back(Segment{.data = reinterpret_cast<std::uint8_t*>(cache_->k_[layer].data()),
                                .len = layer_floats * sizeof(float)});
    cache_->v_[layer].resize(layer_floats);
    segments_.push_back(Segment{.data = reinterpret_cast<std::uint8_t*>(cache_->v_[layer].data()),
                                .len = layer_floats * sizeof(float)});
  }
}

void KvCache::StreamingDeserializer::Consume(std::span<const std::uint8_t> chunk) {
  consumed_ += chunk.size();
  if (!error_.ok()) {
    return;  // swallow the rest; Finish() reports the first failure
  }
  while (!chunk.empty()) {
    if (header_have_ < kSerializedHeaderBytes) {
      const std::size_t take = std::min(chunk.size(), kSerializedHeaderBytes - header_have_);
      std::memcpy(header_.data() + header_have_, chunk.data(), take);
      header_have_ += take;
      chunk = chunk.subspan(take);
      if (header_have_ == kSerializedHeaderBytes) {
        ParseHeader();
        if (!error_.ok()) {
          return;
        }
      }
      continue;
    }
    if (seg_ >= segments_.size()) {
      error_ = InvalidArgumentError("KV cache buffer size mismatch");
      return;
    }
    Segment& s = segments_[seg_];
    if (seg_off_ == s.len) {
      ++seg_;
      seg_off_ = 0;
      continue;
    }
    const std::size_t take = std::min(chunk.size(), s.len - seg_off_);
    std::memcpy(s.data + seg_off_, chunk.data(), take);
    seg_off_ += take;
    chunk = chunk.subspan(take);
  }
}

Result<KvCache> KvCache::StreamingDeserializer::Finish() {
  if (!error_.ok()) {
    return error_;
  }
  if (header_have_ < kSerializedHeaderBytes) {
    return InvalidArgumentError("KV cache buffer shorter than header");
  }
  if (consumed_ != expected_total_) {
    return InvalidArgumentError("KV cache buffer size mismatch");
  }
  CA_CHECK(cache_ != nullptr);
  KvCache out = std::move(*cache_);
  cache_.reset();
  return out;
}

Result<KvCache> KvCache::Deserialize(const ModelConfig& config,
                                     std::span<const std::uint8_t> bytes) {
  StreamingDeserializer cursor(config);
  cursor.Consume(bytes);
  return cursor.Finish();
}

KvCache::TokenMajorSerializer::TokenMajorSerializer(const KvCache& cache, std::size_t token_begin,
                                                    std::size_t token_end)
    : cache_(&cache), begin_(token_begin), end_(token_end) {
  const std::size_t len = cache.seq_len();
  for (std::size_t layer = 0; layer < cache.k_.size(); ++layer) {
    CA_CHECK_EQ(cache.layer_len(layer), len) << "Serialize mid-forward";
  }
  CA_CHECK_LE(token_begin, token_end);
  CA_CHECK_LE(token_end, len);
  total_ = static_cast<std::uint64_t>(token_end - token_begin) * cache.token_major_bytes_per_token();
  Reset();
}

void KvCache::TokenMajorSerializer::Fill(std::span<std::uint8_t> dest) {
  const std::size_t row_bytes = cache_->kv_dim_ * sizeof(float);
  const std::size_t rows_per_token = 2 * cache_->k_.size();
  std::size_t off = 0;
  while (off < dest.size()) {
    CA_CHECK_LT(token_, end_) << "Fill past the serialized payload";
    if (row_off_ == row_bytes) {
      row_off_ = 0;
      if (++row_ == rows_per_token) {
        row_ = 0;
        ++token_;
        continue;
      }
    }
    const std::size_t layer = row_ / 2;
    const std::vector<float>& plane = (row_ % 2 == 0) ? cache_->k_[layer] : cache_->v_[layer];
    const auto* row = reinterpret_cast<const std::uint8_t*>(plane.data()) +
                      token_ * row_bytes;
    const std::size_t take = std::min(dest.size() - off, row_bytes - row_off_);
    std::memcpy(dest.data() + off, row + row_off_, take);
    off += take;
    row_off_ += take;
  }
  // Normalise so the past-the-end check above fires only on a true overrun.
  if (row_off_ == row_bytes && row_ + 1 == rows_per_token) {
    row_ = 0;
    row_off_ = 0;
    ++token_;
  }
}

std::vector<std::uint8_t> KvCache::SerializeTokenMajor() const {
  std::vector<std::uint8_t> out(seq_len() * token_major_bytes_per_token());
  TokenMajorSerializer cursor(*this, 0, seq_len());
  cursor.Fill(out);
  return out;
}

KvCache::TokenMajorDeserializer::TokenMajorDeserializer(const ModelConfig& config, PeMode pe_mode,
                                                        std::size_t seq_len)
    : config_(&config), pe_mode_(pe_mode), seq_len_(seq_len) {
  Reset();
}

void KvCache::TokenMajorDeserializer::Reset() {
  error_ = Status::Ok();
  consumed_ = 0;
  token_ = 0;
  row_ = 0;
  row_off_ = 0;
  if (seq_len_ > config_->context_window) {
    // Same guard as ParseHeader: a garbage token count must not drive the
    // tensor allocation.
    error_ = InvalidArgumentError("KV cache seq_len exceeds the context window");
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<KvCache>(*config_, pe_mode_);
  expected_total_ = static_cast<std::uint64_t>(seq_len_) * cache_->token_major_bytes_per_token();
  const std::size_t layer_floats = seq_len_ * config_->kv_dim();
  for (std::size_t layer = 0; layer < cache_->k_.size(); ++layer) {
    cache_->k_[layer].resize(layer_floats);
    cache_->v_[layer].resize(layer_floats);
  }
}

void KvCache::TokenMajorDeserializer::Consume(std::span<const std::uint8_t> chunk) {
  consumed_ += chunk.size();
  if (!error_.ok()) {
    return;  // swallow the rest; Finish() reports the first failure
  }
  const std::size_t row_bytes = config_->kv_dim() * sizeof(float);
  const std::size_t rows_per_token = 2 * cache_->k_.size();
  while (!chunk.empty()) {
    if (token_ >= seq_len_) {
      error_ = InvalidArgumentError("KV cache buffer size mismatch");
      return;
    }
    if (row_off_ == row_bytes) {
      row_off_ = 0;
      if (++row_ == rows_per_token) {
        row_ = 0;
        ++token_;
        continue;
      }
    }
    const std::size_t layer = row_ / 2;
    std::vector<float>& plane = (row_ % 2 == 0) ? cache_->k_[layer] : cache_->v_[layer];
    auto* row = reinterpret_cast<std::uint8_t*>(plane.data()) + token_ * row_bytes;
    const std::size_t take = std::min(chunk.size(), row_bytes - row_off_);
    std::memcpy(row + row_off_, chunk.data(), take);
    row_off_ += take;
    chunk = chunk.subspan(take);
  }
}

Result<KvCache> KvCache::TokenMajorDeserializer::Finish() {
  if (!error_.ok()) {
    return error_;
  }
  if (consumed_ != expected_total_) {
    return InvalidArgumentError("KV cache buffer size mismatch");
  }
  CA_CHECK(cache_ != nullptr);
  KvCache out = std::move(*cache_);
  cache_.reset();
  return out;
}

}  // namespace ca
