// Model configuration.
//
// Two kinds of model descriptions coexist:
//  * ModelConfig — an executable mini-transformer configuration (run on CPU
//    by src/model; used for all numerical-fidelity experiments).
//  * ModelDescriptor — a paper-scale model described by its sizing constants
//    (params, layers, KV bytes/token, context window). These are never
//    executed; the discrete-event simulator uses them for timing/capacity
//    arithmetic, with constants taken from the paper (§2.4, §4.2).
#ifndef CA_MODEL_CONFIG_H_
#define CA_MODEL_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace ca {

// Positional-encoding handling for the KV cache (paper §3.4).
enum class PeMode {
  // CachedAttention: K cached *before* RoPE; positions re-embedded at load,
  // so truncated caches stay valid.
  kDecoupled,
  // Conventional engines: K cached *after* RoPE at its original position.
  // Truncating such a cache scrambles positional information (the paper's
  // NKVT baseline).
  kCoupled,
};

struct ModelConfig {
  std::string name = "mini";
  std::size_t vocab_size = 256;
  std::size_t d_model = 128;
  std::size_t n_layers = 4;
  std::size_t n_heads = 8;
  std::size_t n_kv_heads = 4;  // GQA when < n_heads
  std::size_t d_ff = 256;
  std::size_t context_window = 256;
  float rope_theta = 10000.0f;
  // Compute threads for the forward pass (matmuls, per-head attention).
  // 1 = fully serial on the calling thread — the bit-exact reference; any
  // other value produces bitwise-identical outputs (see DESIGN.md §9's
  // determinism contract) but overlaps the work across a thread pool owned
  // by the Transformer.
  std::size_t num_threads = 1;

  // Returns a copy with num_threads = n (convenience for tests/benches).
  ModelConfig WithThreads(std::size_t n) const {
    ModelConfig c = *this;
    c.num_threads = n;
    return c;
  }

  std::size_t head_dim() const { return d_model / n_heads; }
  std::size_t kv_dim() const { return n_kv_heads * head_dim(); }
  std::size_t q_dim() const { return n_heads * head_dim(); }
  // GQA group size: query heads per KV head.
  std::size_t gqa_group() const { return n_heads / n_kv_heads; }
  // Bytes of fp32 KV cache per token across all layers.
  std::uint64_t kv_bytes_per_token() const {
    return static_cast<std::uint64_t>(2 * n_layers * kv_dim()) * sizeof(float);
  }

  // Checks divisibility invariants; aborts on a malformed config.
  void Validate() const;

  // Executable presets.
  static ModelConfig Mini();       // 4L/8H/GQA4, d=128: default test model
  static ModelConfig MiniGqa1();   // MHA variant (n_kv_heads == n_heads)
  static ModelConfig MiniLong();   // longer context window for overflow tests
  static ModelConfig Tiny();       // 2L/4H, d=64: fastest, for property sweeps
};

// Paper-scale model described only by its serving-relevant constants.
struct ModelDescriptor {
  std::string name;
  double params = 0;                     // parameter count
  std::size_t n_layers = 0;              // transformer layers
  std::uint64_t kv_bytes_per_token = 0;  // fp16 KV footprint (paper §4.2)
  std::size_t context_window = 0;        // tokens
  std::size_t num_gpus = 1;              // GPUs the paper runs it on
  std::size_t max_batch = 24;            // continuous-batching slots (paper §4.1)

  // Per-layer KV bytes for one token (layer-wise transfer granularity).
  std::uint64_t kv_bytes_per_token_layer() const { return kv_bytes_per_token / n_layers; }

  // Paper testbed presets (§4.1): KV bytes/token 2.5 MB (65B), 0.78 MB (13B),
  // 0.31 MB (70B, GQA 8), 0.12 MB (Falcon-40B, GQA 16).
  static ModelDescriptor Llama13B();
  static ModelDescriptor Llama65B();
  static ModelDescriptor Llama70B();
  static ModelDescriptor Falcon40B();
  static ModelDescriptor Mistral7B();
  static ModelDescriptor Opt13B();  // 2K context window family (§2.4)

  // The four models of the end-to-end evaluation, in paper order.
  static std::vector<ModelDescriptor> EvaluationSuite();
};

}  // namespace ca

#endif  // CA_MODEL_CONFIG_H_
