// Rotary positional embedding (RoPE, Su et al.), the relative positional
// encoding used by LLaMA/Mistral/Falcon. CachedAttention's decoupled-PE
// scheme (§3.4) relies on applying RoPE *after* loading cached K vectors, at
// their current (possibly shifted) positions.
#ifndef CA_MODEL_ROPE_H_
#define CA_MODEL_ROPE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace ca {

// Precomputed per-dimension inverse frequencies for one head.
class RopeTable {
 public:
  RopeTable(std::size_t head_dim, float theta);

  std::size_t head_dim() const { return head_dim_; }

  // Rotates `vec` (one head, length head_dim) in place to encode position
  // `pos`. Pairs (2i, 2i+1) are rotated by pos * inv_freq[i].
  void Apply(std::span<float> vec, std::size_t pos) const;

  // Rotates every head of a packed multi-head vector (length
  // n_heads*head_dim) in place at position `pos`.
  void ApplyAllHeads(std::span<float> packed, std::size_t pos) const;

  // Inverse rotation (used only in tests to verify Apply is orthonormal).
  void ApplyInverse(std::span<float> vec, std::size_t pos) const;

 private:
  std::size_t head_dim_;
  std::vector<float> inv_freq_;  // head_dim/2 entries
};

}  // namespace ca

#endif  // CA_MODEL_ROPE_H_
