#include "src/model/transformer.h"

#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/tensor/ops.h"

namespace ca {

Transformer::Transformer(ModelConfig config, std::uint64_t seed)
    : config_(std::move(config)), rope_(config_.head_dim(), config_.rope_theta) {
  config_.Validate();
  Rng rng(seed);
  const auto d = config_.d_model;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  embedding_ = Tensor::Randn({config_.vocab_size, d}, rng, scale);
  rms_final_ = Tensor({d});
  rms_final_.Fill(1.0f);
  lm_head_ = Tensor::Randn({config_.vocab_size, d}, rng, scale);
  layers_.reserve(config_.n_layers);
  for (std::size_t l = 0; l < config_.n_layers; ++l) {
    LayerWeights w;
    w.rms_att = Tensor({d});
    w.rms_att.Fill(1.0f);
    w.wq = Tensor::Randn({config_.q_dim(), d}, rng, scale);
    w.wk = Tensor::Randn({config_.kv_dim(), d}, rng, scale);
    w.wv = Tensor::Randn({config_.kv_dim(), d}, rng, scale);
    w.wo = Tensor::Randn({d, config_.q_dim()}, rng, scale);
    w.rms_ffn = Tensor({d});
    w.rms_ffn.Fill(1.0f);
    w.w1 = Tensor::Randn({config_.d_ff, d}, rng, scale);
    w.w2 = Tensor::Randn({d, config_.d_ff}, rng, scale);
    w.w3 = Tensor::Randn({config_.d_ff, d}, rng, scale);
    layers_.push_back(std::move(w));
  }
}

void Transformer::AttentionBlock(std::size_t layer, Tensor& x, KvCache& cache,
                                 std::size_t history_len,
                                 AttentionObserver* observer) const {
  const auto& w = layers_[layer];
  const std::size_t n = x.dim(0);
  const std::size_t d = config_.d_model;
  const std::size_t head_dim = config_.head_dim();
  const std::size_t n_heads = config_.n_heads;
  const std::size_t kv_dim = config_.kv_dim();
  const std::size_t group = config_.gqa_group();
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));

  Tensor xn({n, d});
  RmsNormRows(x, w.rms_att.span(), xn);

  Tensor q({n, config_.q_dim()});
  Tensor k({n, kv_dim});
  Tensor v({n, kv_dim});
  MatMulTransposedB(xn, w.wq, q);
  MatMulTransposedB(xn, w.wk, k);
  MatMulTransposedB(xn, w.wv, v);

  // Append this token batch's KV rows to the cache. In coupled mode K is
  // rotated to its absolute position *before* caching (conventional
  // engines); in decoupled mode it is cached raw (§3.4).
  CA_CHECK_EQ(cache.layer_len(layer), history_len);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t pos = history_len + t;
    if (cache.pe_mode() == PeMode::kCoupled) {
      rope_.ApplyAllHeads({k.row(t), kv_dim}, pos);
    }
    cache.Append(layer, {k.row(t), kv_dim}, {v.row(t), kv_dim});
  }

  // Materialise position-encoded K for the whole (history + new) context.
  // Decoupled mode embeds position = current index here — this is the
  // re-embedding step that makes truncated caches valid.
  const std::size_t total = history_len + n;
  Tensor k_eff({total, kv_dim});
  for (std::size_t t = 0; t < total; ++t) {
    const auto src = cache.K(layer, t);
    std::memcpy(k_eff.row(t), src.data(), kv_dim * sizeof(float));
    if (cache.pe_mode() == PeMode::kDecoupled) {
      rope_.ApplyAllHeads({k_eff.row(t), kv_dim}, t);
    }
  }

  // Rotate Q at its absolute position (both modes).
  for (std::size_t t = 0; t < n; ++t) {
    rope_.ApplyAllHeads({q.row(t), config_.q_dim()}, history_len + t);
  }

  // Per-head causal attention. attn_out packs heads like Q.
  Tensor attn_out({n, config_.q_dim()});
  attn_out.Fill(0.0f);
  std::vector<float> scores(total);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t ctx = history_len + t + 1;  // causal horizon
    for (std::size_t h = 0; h < n_heads; ++h) {
      const std::size_t kv_h = h / group;
      const std::span<const float> qh{q.row(t) + h * head_dim, head_dim};
      for (std::size_t j = 0; j < ctx; ++j) {
        const std::span<const float> kh{k_eff.row(j) + kv_h * head_dim, head_dim};
        scores[j] = Dot(qh, kh) * inv_sqrt_d;
      }
      SoftmaxRow({scores.data(), ctx});
      if (observer != nullptr) {
        observer->OnAttention(layer, h, history_len + t, {scores.data(), ctx});
      }
      const std::span<float> oh{attn_out.row(t) + h * head_dim, head_dim};
      for (std::size_t j = 0; j < ctx; ++j) {
        const auto vh = cache.V(layer, j).subspan(kv_h * head_dim, head_dim);
        Axpy(scores[j], vh, oh);
      }
    }
  }

  Tensor proj({n, d});
  MatMulTransposedB(attn_out, w.wo, proj);
  AddInPlace(x, proj);
}

void Transformer::FfnBlock(std::size_t layer, Tensor& x) const {
  const auto& w = layers_[layer];
  const std::size_t n = x.dim(0);
  Tensor xn({n, config_.d_model});
  RmsNormRows(x, w.rms_ffn.span(), xn);
  Tensor gate({n, config_.d_ff});
  Tensor up({n, config_.d_ff});
  MatMulTransposedB(xn, w.w1, gate);
  MatMulTransposedB(xn, w.w3, up);
  SiluInPlace(gate);
  MulInPlace(gate, up);
  Tensor down({n, config_.d_model});
  MatMulTransposedB(gate, w.w2, down);
  AddInPlace(x, down);
}

Tensor Transformer::Forward(std::span<const TokenId> tokens, KvCache& cache,
                            AttentionObserver* observer) const {
  CA_CHECK_GT(tokens.size(), 0U);
  CA_CHECK_EQ(cache.n_layers(), config_.n_layers);
  CA_CHECK_EQ(cache.kv_dim(), config_.kv_dim());
  const std::size_t history_len = cache.seq_len();
  CA_CHECK_LE(history_len + tokens.size(), config_.context_window)
      << "context overflow must be handled by the engine before Forward";

  const std::size_t n = tokens.size();
  const std::size_t d = config_.d_model;
  Tensor x({n, d});
  for (std::size_t t = 0; t < n; ++t) {
    const auto id = tokens[t];
    CA_CHECK_GE(id, 0);
    CA_CHECK_LT(static_cast<std::size_t>(id), config_.vocab_size);
    std::memcpy(x.row(t), embedding_.row(static_cast<std::size_t>(id)), d * sizeof(float));
  }

  for (std::size_t layer = 0; layer < config_.n_layers; ++layer) {
    AttentionBlock(layer, x, cache, history_len, observer);
    FfnBlock(layer, x);
  }

  Tensor xn({n, d});
  RmsNormRows(x, rms_final_.span(), xn);
  Tensor logits({n, config_.vocab_size});
  MatMulTransposedB(xn, lm_head_, logits);
  return logits;
}

TokenId Transformer::Argmax(const Tensor& logits, std::size_t row) const {
  const float* r = logits.row(row);
  std::size_t best = 0;
  for (std::size_t i = 1; i < config_.vocab_size; ++i) {
    if (r[i] > r[best]) {
      best = i;
    }
  }
  return static_cast<TokenId>(best);
}

std::vector<TokenId> Transformer::Generate(std::span<const TokenId> prompt,
                                           std::size_t max_new_tokens, KvCache& cache) const {
  std::vector<TokenId> out;
  out.reserve(max_new_tokens);
  TokenId next;
  if (!prompt.empty()) {
    const Tensor logits = Forward(prompt, cache);
    next = Argmax(logits, logits.dim(0) - 1);
  } else {
    CA_CHECK_GT(cache.seq_len(), 0U) << "Generate needs a prompt or a warm cache";
    // Re-derive the next token from the last cached position by decoding a
    // BOS-like token 0; callers normally pass a prompt.
    const TokenId bos[] = {0};
    const Tensor logits = Forward(bos, cache);
    next = Argmax(logits, 0);
  }
  for (std::size_t i = 0; i < max_new_tokens; ++i) {
    out.push_back(next);
    if (cache.seq_len() + 1 > config_.context_window) {
      break;  // engine-level truncation is responsible for longer runs
    }
    const TokenId tok[] = {next};
    const Tensor logits = Forward(tok, cache);
    next = Argmax(logits, 0);
  }
  return out;
}

}  // namespace ca
