#include "src/model/transformer.h"

#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/obs/trace.h"
#include "src/tensor/ops.h"

namespace ca {

namespace {

// Scratch reused across forward passes: steady-state decode allocates
// nothing. One arena per thread because engines may serve sessions from
// several threads through one shared Transformer.
ScratchArena& ThreadScratch() {
  static thread_local ScratchArena arena;
  return arena;
}

// Per-worker score buffer for the attention loop (sized to the longest
// context seen by that thread).
std::vector<float>& ThreadScores(std::size_t total) {
  static thread_local std::vector<float> scores;
  if (scores.size() < total) {
    scores.resize(total);
  }
  return scores;
}

}  // namespace

Transformer::Transformer(ModelConfig config, std::uint64_t seed)
    : config_(std::move(config)), rope_(config_.head_dim(), config_.rope_theta) {
  config_.Validate();
  Rng rng(seed);
  const auto d = config_.d_model;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  embedding_ = Tensor::Randn({config_.vocab_size, d}, rng, scale);
  rms_final_ = Tensor({d});
  rms_final_.Fill(1.0f);
  lm_head_ = Tensor::Randn({config_.vocab_size, d}, rng, scale);
  layers_.reserve(config_.n_layers);
  for (std::size_t l = 0; l < config_.n_layers; ++l) {
    LayerWeights w;
    w.rms_att = Tensor({d});
    w.rms_att.Fill(1.0f);
    w.wq = Tensor::Randn({config_.q_dim(), d}, rng, scale);
    w.wk = Tensor::Randn({config_.kv_dim(), d}, rng, scale);
    w.wv = Tensor::Randn({config_.kv_dim(), d}, rng, scale);
    w.wo = Tensor::Randn({d, config_.q_dim()}, rng, scale);
    w.rms_ffn = Tensor({d});
    w.rms_ffn.Fill(1.0f);
    w.w1 = Tensor::Randn({config_.d_ff, d}, rng, scale);
    w.w2 = Tensor::Randn({d, config_.d_ff}, rng, scale);
    w.w3 = Tensor::Randn({config_.d_ff, d}, rng, scale);
    layers_.push_back(std::move(w));
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
  }
}

void Transformer::AttentionBlock(std::size_t layer, Tensor& x, KvCache& cache,
                                 std::size_t history_len, ScratchArena& scratch,
                                 AttentionObserver* observer) const {
  const auto& w = layers_[layer];
  const std::size_t n = x.dim(0);
  const std::size_t d = config_.d_model;
  const std::size_t head_dim = config_.head_dim();
  const std::size_t n_heads = config_.n_heads;
  const std::size_t kv_dim = config_.kv_dim();
  const std::size_t group = config_.gqa_group();
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));

  Tensor xn = scratch.Alloc2d(n, d);
  RmsNormRows(x, w.rms_att.span(), xn);

  Tensor q = scratch.Alloc2d(n, config_.q_dim());
  Tensor k = scratch.Alloc2d(n, kv_dim);
  Tensor v = scratch.Alloc2d(n, kv_dim);
  MatMulTransposedB(xn, w.wq, q, pool());
  MatMulTransposedB(xn, w.wk, k, pool());
  MatMulTransposedB(xn, w.wv, v, pool());

  // Append this token batch's KV rows to the cache. In coupled mode K is
  // rotated to its absolute position *before* caching (conventional
  // engines); in decoupled mode it is cached raw (§3.4). Forward() reserved
  // history + n tokens, so these appends never reallocate the layer storage
  // and the LayerK/LayerV spans below stay stable.
  CA_CHECK_EQ(cache.layer_len(layer), history_len);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t pos = history_len + t;
    if (cache.pe_mode() == PeMode::kCoupled) {
      rope_.ApplyAllHeads({k.row(t), kv_dim}, pos);
    }
    cache.Append(layer, {k.row(t), kv_dim}, {v.row(t), kv_dim});
  }

  // K rows the attention dot products read, position-encoded:
  //  * coupled — the cache already holds post-RoPE K; read it in place (no
  //    per-step copy of the whole history);
  //  * decoupled — re-embed position = current index into a reused scratch
  //    buffer. This is the §3.4 re-embedding step that makes truncated
  //    caches valid; it must materialise because the cached rows stay raw.
  const std::size_t total = history_len + n;
  const float* k_src;
  if (cache.pe_mode() == PeMode::kCoupled) {
    k_src = cache.LayerK(layer).data();
  } else {
    Tensor k_eff = scratch.Alloc2d(total, kv_dim);
    const float* k_raw = cache.LayerK(layer).data();
    ParallelFor(pool(), 0, total, /*grain=*/32,
                [&](std::size_t row_begin, std::size_t row_end) {
                  for (std::size_t t = row_begin; t < row_end; ++t) {
                    float* row = k_eff.row(t);
                    std::memcpy(row, k_raw + t * kv_dim, kv_dim * sizeof(float));
                    rope_.ApplyAllHeads({row, kv_dim}, t);
                  }
                });
    k_src = k_eff.data();
  }

  // Rotate Q at its absolute position (both modes).
  for (std::size_t t = 0; t < n; ++t) {
    rope_.ApplyAllHeads({q.row(t), config_.q_dim()}, history_len + t);
  }

  // Per-head causal attention, parallel over (query, head) work items.
  // Every item owns its attn_out slice and reduces over the context in a
  // fixed j order, so any thread count is bitwise-identical to serial. With
  // an observer attached the loop stays serial: observers see distributions
  // in the documented (query-major, head-minor) order and may accumulate
  // floats, where ordering matters.
  Tensor attn_out = scratch.Alloc2d(n, config_.q_dim());
  const float* v_base = cache.LayerV(layer).data();
  ThreadPool* attn_pool = observer == nullptr ? pool() : nullptr;
  ParallelFor(attn_pool, 0, n * n_heads, /*grain=*/std::max<std::size_t>(1, n_heads / 2),
              [&](std::size_t item_begin, std::size_t item_end) {
                std::vector<float>& scores = ThreadScores(total);
                for (std::size_t item = item_begin; item < item_end; ++item) {
                  const std::size_t t = item / n_heads;
                  const std::size_t h = item % n_heads;
                  const std::size_t ctx = history_len + t + 1;  // causal horizon
                  const std::size_t kv_off = (h / group) * head_dim;
                  const float* qh = q.row(t) + h * head_dim;
                  for (std::size_t j = 0; j < ctx; ++j) {
                    scores[j] = DotUnchecked(qh, k_src + j * kv_dim + kv_off, head_dim) *
                                inv_sqrt_d;
                  }
                  SoftmaxRow({scores.data(), ctx});
                  if (observer != nullptr) {
                    observer->OnAttention(layer, h, history_len + t, {scores.data(), ctx});
                  }
                  float* oh = attn_out.row(t) + h * head_dim;
                  std::memset(oh, 0, head_dim * sizeof(float));
                  for (std::size_t j = 0; j < ctx; ++j) {
                    AxpyUnchecked(scores[j], v_base + j * kv_dim + kv_off, oh, head_dim);
                  }
                }
              });

  Tensor proj = scratch.Alloc2d(n, d);
  MatMulTransposedB(attn_out, w.wo, proj, pool());
  AddInPlace(x, proj);
}

void Transformer::FfnBlock(std::size_t layer, Tensor& x, ScratchArena& scratch) const {
  const auto& w = layers_[layer];
  const std::size_t n = x.dim(0);
  Tensor xn = scratch.Alloc2d(n, config_.d_model);
  RmsNormRows(x, w.rms_ffn.span(), xn);
  Tensor gate = scratch.Alloc2d(n, config_.d_ff);
  Tensor up = scratch.Alloc2d(n, config_.d_ff);
  MatMulTransposedB(xn, w.w1, gate, pool());
  MatMulTransposedB(xn, w.w3, up, pool());
  SiluInPlace(gate);
  MulInPlace(gate, up);
  Tensor down = scratch.Alloc2d(n, config_.d_model);
  MatMulTransposedB(gate, w.w2, down, pool());
  AddInPlace(x, down);
}

Tensor Transformer::Forward(std::span<const TokenId> tokens, KvCache& cache,
                            AttentionObserver* observer) const {
  CA_CHECK_GT(tokens.size(), 0U);
  CA_CHECK_EQ(cache.n_layers(), config_.n_layers);
  CA_CHECK_EQ(cache.kv_dim(), config_.kv_dim());
  const std::size_t history_len = cache.seq_len();
  CA_CHECK_LE(history_len + tokens.size(), config_.context_window)
      << "context overflow must be handled by the engine before Forward";

  const std::size_t n = tokens.size();
  const std::size_t d = config_.d_model;

  // The compute span of the §3.2 overlap timelines: preload spans (store
  // promotions) and async-save spans show up concurrent with these.
  CA_TRACE_SPAN("model.forward", "tokens", n, "history", history_len);

  // Grow the cache once for the whole pass (prefill would otherwise pay
  // per-append vector regrowth), and reclaim the scratch of the previous
  // pass. x is arena-backed too: it dies with the pass.
  cache.Reserve(history_len + n);
  ScratchArena& scratch = ThreadScratch();
  scratch.Reset();

  Tensor x = scratch.Alloc2d(n, d);
  for (std::size_t t = 0; t < n; ++t) {
    const auto id = tokens[t];
    CA_CHECK_GE(id, 0);
    CA_CHECK_LT(static_cast<std::size_t>(id), config_.vocab_size);
    std::memcpy(x.row(t), embedding_.row(static_cast<std::size_t>(id)), d * sizeof(float));
  }

  for (std::size_t layer = 0; layer < config_.n_layers; ++layer) {
    AttentionBlock(layer, x, cache, history_len, scratch, observer);
    FfnBlock(layer, x, scratch);
  }

  Tensor xn = scratch.Alloc2d(n, d);
  RmsNormRows(x, rms_final_.span(), xn);
  // The logits outlive the pass (they are the return value), so they own
  // their storage instead of borrowing the arena's.
  Tensor logits({n, config_.vocab_size});
  MatMulTransposedB(xn, lm_head_, logits, pool());
  return logits;
}

TokenId Transformer::Argmax(const Tensor& logits, std::size_t row) const {
  const float* r = logits.row(row);
  std::size_t best = 0;
  for (std::size_t i = 1; i < config_.vocab_size; ++i) {
    if (r[i] > r[best]) {
      best = i;
    }
  }
  return static_cast<TokenId>(best);
}

std::vector<TokenId> Transformer::Generate(std::span<const TokenId> prompt,
                                           std::size_t max_new_tokens, KvCache& cache) const {
  std::vector<TokenId> out;
  out.reserve(max_new_tokens);
  TokenId next;
  if (!prompt.empty()) {
    const Tensor logits = Forward(prompt, cache);
    next = Argmax(logits, logits.dim(0) - 1);
  } else {
    CA_CHECK_GT(cache.seq_len(), 0U) << "Generate needs a prompt or a warm cache";
    // Re-derive the next token from the last cached position by decoding a
    // BOS-like token 0; callers normally pass a prompt.
    const TokenId bos[] = {0};
    const Tensor logits = Forward(bos, cache);
    next = Argmax(logits, 0);
  }
  for (std::size_t i = 0; i < max_new_tokens; ++i) {
    out.push_back(next);
    if (cache.seq_len() + 1 > config_.context_window) {
      break;  // engine-level truncation is responsible for longer runs
    }
    const TokenId tok[] = {next};
    const Tensor logits = Forward(tok, cache);
    next = Argmax(logits, 0);
  }
  return out;
}

}  // namespace ca
