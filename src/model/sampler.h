// Token sampling strategies over a logits row.
#ifndef CA_MODEL_SAMPLER_H_
#define CA_MODEL_SAMPLER_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/model/transformer.h"
#include "src/tensor/tensor.h"

namespace ca {

// Temperature + top-k sampler. temperature == 0 degenerates to argmax.
class Sampler {
 public:
  Sampler(float temperature, std::size_t top_k, std::uint64_t seed)
      : temperature_(temperature), top_k_(top_k), rng_(seed) {
    CA_CHECK_GE(temperature, 0.0f);
  }

  TokenId Sample(const Tensor& logits, std::size_t row) {
    CA_CHECK_EQ(logits.rank(), 2U);
    const std::size_t vocab = logits.dim(1);
    const float* r = logits.row(row);
    if (temperature_ == 0.0f) {
      return static_cast<TokenId>(std::max_element(r, r + vocab) - r);
    }
    // Rank tokens by logit, keep top-k.
    std::vector<std::size_t> idx(vocab);
    for (std::size_t i = 0; i < vocab; ++i) {
      idx[i] = i;
    }
    const std::size_t k = top_k_ == 0 ? vocab : std::min(top_k_, vocab);
    std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                      [r](std::size_t a, std::size_t b) { return r[a] > r[b]; });
    // Softmax over the kept logits at the given temperature.
    std::vector<double> p(k);
    const double max_logit = r[idx[0]];
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      p[i] = std::exp((r[idx[i]] - max_logit) / temperature_);
      sum += p[i];
    }
    double u = rng_.NextDouble() * sum;
    for (std::size_t i = 0; i < k; ++i) {
      u -= p[i];
      if (u <= 0.0) {
        return static_cast<TokenId>(idx[i]);
      }
    }
    return static_cast<TokenId>(idx[k - 1]);
  }

 private:
  float temperature_;
  std::size_t top_k_;
  Rng rng_;
};

}  // namespace ca

#endif  // CA_MODEL_SAMPLER_H_
