// Executable mini-transformer (LLaMA-style: RMSNorm, RoPE, GQA attention,
// SwiGLU FFN). Runs on the CPU in fp32.
//
// The forward pass consumes an external KvCache, which lets the engine layer
// (src/core) implement both CachedAttention (reuse a cache loaded from
// AttentionStore) and the recomputation baseline (fresh cache every turn)
// with identical numerics.
#ifndef CA_MODEL_TRANSFORMER_H_
#define CA_MODEL_TRANSFORMER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/model/config.h"
#include "src/model/kv_cache.h"
#include "src/model/rope.h"
#include "src/tensor/arena.h"
#include "src/tensor/tensor.h"

namespace ca {

using TokenId = std::int32_t;

// Observes attention distributions during a forward pass. Used by the KV
// compression policies (src/model/compression.h) to accumulate the
// attention mass each cached token receives.
class AttentionObserver {
 public:
  virtual ~AttentionObserver() = default;
  // Called once per (layer, head, query). `probs` covers cached positions
  // 0..ctx-1 and sums to 1.
  virtual void OnAttention(std::size_t layer, std::size_t head, std::size_t query_pos,
                           std::span<const float> probs) = 0;
};

// Per-layer weight set. All projection matrices are stored [out_dim, in_dim]
// and applied as y = x W^T.
struct LayerWeights {
  Tensor rms_att;  // [d_model]
  Tensor wq;       // [q_dim, d_model]
  Tensor wk;       // [kv_dim, d_model]
  Tensor wv;       // [kv_dim, d_model]
  Tensor wo;       // [d_model, q_dim]
  Tensor rms_ffn;  // [d_model]
  Tensor w1;       // [d_ff, d_model]  gate
  Tensor w2;       // [d_model, d_ff]  down
  Tensor w3;       // [d_ff, d_model]  up
};

class Transformer {
 public:
  // Deterministic random initialisation from `seed`. When
  // config.num_threads > 1 the instance owns a ThreadPool of
  // num_threads - 1 workers (the calling thread participates, so the
  // configured count is the true parallel width); outputs are
  // bitwise-identical to num_threads == 1 (DESIGN.md §9).
  Transformer(ModelConfig config, std::uint64_t seed);

  const ModelConfig& config() const { return config_; }

  // Creates a KV cache compatible with this model.
  KvCache MakeCache(PeMode pe_mode) const { return KvCache(config_, pe_mode); }

  // Runs the model over `tokens`, appending their KV entries to `cache`
  // (which may already hold historical tokens — that is the CachedAttention
  // partial prefill). Returns logits of shape [tokens.size(), vocab].
  //
  // Token positions are cache.seq_len() .. cache.seq_len()+n-1, i.e. the
  // current post-truncation indices, which is exactly the decoupled-PE
  // re-embedding of §3.4. An optional observer receives every attention
  // distribution (for KV compression importance scoring).
  Tensor Forward(std::span<const TokenId> tokens, KvCache& cache,
                 AttentionObserver* observer = nullptr) const;

  // Greedy decodes `max_new_tokens` continuations after `prompt` (prompt may
  // be empty if cache already holds context). Returns generated tokens.
  std::vector<TokenId> Generate(std::span<const TokenId> prompt, std::size_t max_new_tokens,
                                KvCache& cache) const;

  // Argmax over the logits row `row`.
  TokenId Argmax(const Tensor& logits, std::size_t row) const;

  // --- weight access (training / checkpoint loading) ---------------------
  const RopeTable& rope() const { return rope_; }
  Tensor& mutable_embedding() { return embedding_; }
  const Tensor& embedding() const { return embedding_; }
  Tensor& mutable_lm_head() { return lm_head_; }
  const Tensor& lm_head() const { return lm_head_; }
  Tensor& mutable_rms_final() { return rms_final_; }
  const Tensor& rms_final() const { return rms_final_; }
  LayerWeights& mutable_layer(std::size_t i) { return layers_[i]; }
  const LayerWeights& layer(std::size_t i) const { return layers_[i]; }

 private:
  void AttentionBlock(std::size_t layer, Tensor& x, KvCache& cache, std::size_t history_len,
                      ScratchArena& scratch, AttentionObserver* observer) const;
  void FfnBlock(std::size_t layer, Tensor& x, ScratchArena& scratch) const;

  // Compute pool for the forward pass; null when num_threads == 1. Safe to
  // share across concurrent Forward calls (ParallelFor waits only on its
  // own chunks).
  ThreadPool* pool() const { return pool_.get(); }

  ModelConfig config_;
  RopeTable rope_;
  Tensor embedding_;   // [vocab, d_model]
  Tensor rms_final_;   // [d_model]
  Tensor lm_head_;     // [vocab, d_model]
  std::vector<LayerWeights> layers_;
  std::unique_ptr<ThreadPool> pool_;  // created in ctor, workers = num_threads - 1
};

}  // namespace ca

#endif  // CA_MODEL_TRANSFORMER_H_
