// KV cache for the executable mini-transformer.
//
// Layout: per transformer layer, two contiguous fp32 arrays K and V of shape
// [seq_len, kv_dim]. The positional-encoding mode decides what K rows hold:
//  * PeMode::kDecoupled (CachedAttention) — K is stored pre-RoPE. Positions
//    are re-embedded by the attention kernel at load time, so TruncateFront
//    keeps the cache valid (§3.4).
//  * PeMode::kCoupled (conventional) — K is stored post-RoPE at the position
//    each token had when it was computed. TruncateFront on such a cache
//    produces the paper's NKVT corruption.
//
// The cache serialises to a flat byte buffer so AttentionStore can move it
// across memory/disk tiers without knowing the tensor layout.
#ifndef CA_MODEL_KV_CACHE_H_
#define CA_MODEL_KV_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/model/config.h"

namespace ca {

class KvCache {
 public:
  KvCache(const ModelConfig& config, PeMode pe_mode);

  PeMode pe_mode() const { return pe_mode_; }
  std::size_t n_layers() const { return k_.size(); }
  std::size_t kv_dim() const { return kv_dim_; }

  // Number of cached tokens (uniform across layers once a forward pass
  // completes).
  std::size_t seq_len() const;
  // Tokens appended so far to a specific layer (mid-forward they differ).
  std::size_t layer_len(std::size_t layer) const;

  bool empty() const { return seq_len() == 0; }

  // Appends one token's K and V rows (each kv_dim floats) to `layer`.
  void Append(std::size_t layer, std::span<const float> k, std::span<const float> v);

  // Pre-sizes every layer's storage for `total_tokens` tokens (no-op if
  // already that large). Called by the forward pass with history + new so a
  // prefill appends into storage grown once up front instead of paying
  // vector regrowth copies mid-pass; also keeps LayerK/LayerV spans stable
  // across the Appends of one forward.
  void Reserve(std::size_t total_tokens);

  // Row accessors.
  std::span<const float> K(std::size_t layer, std::size_t token) const;
  std::span<const float> V(std::size_t layer, std::size_t token) const;
  std::span<float> MutableK(std::size_t layer, std::size_t token);

  // Whole-layer accessors for the attention hot loop: token t's row occupies
  // [t * kv_dim(), (t + 1) * kv_dim()). Bounds-checked once per layer
  // instead of once per (token, head) like K()/V().
  std::span<const float> LayerK(std::size_t layer) const;
  std::span<const float> LayerV(std::size_t layer) const;

  // Drops the oldest `n_tokens` tokens from every layer. With kDecoupled
  // this is the paper's KV cache truncation; with kCoupled it deliberately
  // reproduces NKVT's positional corruption (kept for the baseline).
  void TruncateFront(std::size_t n_tokens);

  // Keeps only tokens whose index is NOT in `discard` (token-discarding-list
  // support for KV compression schemes, §3.4). Indices refer to current
  // positions; out-of-range entries are ignored.
  void DiscardTokens(std::span<const std::size_t> discard);

  // Removes all cached tokens.
  void Clear();

  // fp32 byte footprint of the cached tensors (excludes header).
  std::uint64_t byte_size() const;

  KvCache Clone() const;

  // Flat-buffer serialisation (header + raw fp32 data).
  std::vector<std::uint8_t> Serialize() const;
  static Result<KvCache> Deserialize(const ModelConfig& config,
                                     std::span<const std::uint8_t> bytes);

  // --- zero-copy serialisation (DESIGN.md §14) -------------------------

  // Wire size of the header (4x u32 + u64; static_assert'd in kv_cache.cc).
  static constexpr std::size_t kSerializedHeaderBytes = 24;

  // Exact Serialize() output size without materialising the buffer.
  std::uint64_t SerializedSize() const { return kSerializedHeaderBytes + byte_size(); }

  // Serialize() into a caller-owned buffer of exactly SerializedSize() bytes.
  void SerializeInto(std::span<std::uint8_t> out) const;

  // Cursor over the serialized wire form. Fill() produces successive byte
  // windows straight out of the cache's tensors (plus a small header copy),
  // so the engine's save path hands this to the store and the KV bytes land
  // directly in tier block memory — no staging vector. The cache must stay
  // alive and unmodified while a Serializer reads it.
  class Serializer {
   public:
    explicit Serializer(const KvCache& cache);

    std::uint64_t size() const { return total_; }
    void Reset() {
      seg_ = 0;
      seg_off_ = 0;
    }
    // Produces the next dest.size() bytes of the wire form.
    void Fill(std::span<std::uint8_t> dest);

   private:
    struct Segment {
      const std::uint8_t* data = nullptr;
      std::size_t len = 0;
    };

    std::array<std::uint8_t, kSerializedHeaderBytes> header_ = {};
    std::vector<Segment> segments_;  // header, then per layer K, V
    std::uint64_t total_ = 0;
    std::size_t seg_ = 0;
    std::size_t seg_off_ = 0;
  };

  // --- token-major wire form (prefix sharing, DESIGN.md §17) -----------
  //
  // Alternative headerless layout used by the store's shared-prefix chunks:
  // for token t, for layer l: the K row then the V row (kv_dim floats each).
  // Byte offset t * token_major_bytes_per_token() is therefore a token
  // boundary, which is what lets the store split a payload into fixed
  // token-count chunks and dedup them across sessions. Shape (pe_mode,
  // n_layers, kv_dim, seq_len) travels out of band via the store's record
  // metadata, not a header.

  // Bytes one token occupies in the token-major form (2 rows per layer).
  static std::uint64_t TokenMajorBytesPerToken(const ModelConfig& config) {
    return static_cast<std::uint64_t>(2 * config.n_layers * config.kv_dim()) * sizeof(float);
  }
  std::uint64_t token_major_bytes_per_token() const {
    return static_cast<std::uint64_t>(2 * k_.size() * kv_dim_) * sizeof(float);
  }

  // Restartable cursor over the token-major bytes of tokens
  // [token_begin, token_end). Same lifetime contract as Serializer: the
  // cache must stay alive and unmodified while the cursor reads it.
  class TokenMajorSerializer {
   public:
    TokenMajorSerializer(const KvCache& cache, std::size_t token_begin, std::size_t token_end);

    std::uint64_t size() const { return total_; }
    void Reset() {
      token_ = begin_;
      row_ = 0;
      row_off_ = 0;
    }
    // Produces the next dest.size() bytes of the token-major form.
    void Fill(std::span<std::uint8_t> dest);

   private:
    const KvCache* cache_;
    std::size_t begin_ = 0;
    std::size_t end_ = 0;
    std::uint64_t total_ = 0;
    std::size_t token_ = 0;
    std::size_t row_ = 0;      // in [0, 2 * n_layers): K row, V row per layer
    std::size_t row_off_ = 0;  // bytes already emitted of the current row
  };

  // Materialised token-major form of the whole cache (async save path).
  std::vector<std::uint8_t> SerializeTokenMajor() const;

  // Streaming inverse of the token-major form. seq_len arrives out of band
  // (the store's record token count); Consume takes arbitrary chunking and
  // Finish() validates the byte count and yields the cache.
  class TokenMajorDeserializer {
   public:
    TokenMajorDeserializer(const ModelConfig& config, PeMode pe_mode, std::size_t seq_len);

    void Reset();
    void Consume(std::span<const std::uint8_t> chunk);
    // Consumes the built cache; the deserializer is spent afterwards
    // (Reset() before reuse).
    Result<KvCache> Finish();

   private:
    const ModelConfig* config_;
    PeMode pe_mode_;
    std::size_t seq_len_ = 0;
    // unique_ptr for the same incomplete-type reason as StreamingDeserializer.
    std::unique_ptr<KvCache> cache_;
    Status error_ = Status::Ok();
    std::uint64_t expected_total_ = 0;
    std::uint64_t consumed_ = 0;
    std::size_t token_ = 0;
    std::size_t row_ = 0;
    std::size_t row_off_ = 0;
  };

  // Incremental inverse: chunks of the wire form arrive in byte order (any
  // chunking) via Consume; Finish() validates and yields the cache. Once the
  // header has been consumed and validated, payload bytes are copied
  // straight into the final tensor storage — no whole-payload staging
  // buffer. Errors (bad magic, shape mismatch, over/undershoot) are
  // remembered; subsequent chunks are swallowed and Finish() reports the
  // first failure. Reset() restarts a fresh pass (the store's read-retry
  // loop replays the stream).
  class StreamingDeserializer {
   public:
    explicit StreamingDeserializer(const ModelConfig& config) : config_(&config) {}

    void Reset();
    void Consume(std::span<const std::uint8_t> chunk);
    // Consumes the built cache; the deserializer is spent afterwards
    // (Reset() before reuse).
    Result<KvCache> Finish();

   private:
    void ParseHeader();

    struct Segment {
      std::uint8_t* data = nullptr;
      std::size_t len = 0;
    };

    const ModelConfig* config_;
    std::array<std::uint8_t, kSerializedHeaderBytes> header_ = {};
    std::size_t header_have_ = 0;
    // unique_ptr, not optional: KvCache is still incomplete inside its own
    // nested class, and optional needs the complete type.
    std::unique_ptr<KvCache> cache_;
    Status error_ = Status::Ok();
    std::vector<Segment> segments_;  // per layer K, V (into cache_'s tensors)
    std::size_t seg_ = 0;
    std::size_t seg_off_ = 0;
    std::uint64_t expected_total_ = 0;
    std::uint64_t consumed_ = 0;
  };

 private:
  PeMode pe_mode_;
  std::size_t kv_dim_;
  // Indexed [layer]; each holds layer_len * kv_dim floats.
  std::vector<std::vector<float>> k_;
  std::vector<std::vector<float>> v_;
};

}  // namespace ca

#endif  // CA_MODEL_KV_CACHE_H_
