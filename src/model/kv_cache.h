// KV cache for the executable mini-transformer.
//
// Layout: per transformer layer, two contiguous fp32 arrays K and V of shape
// [seq_len, kv_dim]. The positional-encoding mode decides what K rows hold:
//  * PeMode::kDecoupled (CachedAttention) — K is stored pre-RoPE. Positions
//    are re-embedded by the attention kernel at load time, so TruncateFront
//    keeps the cache valid (§3.4).
//  * PeMode::kCoupled (conventional) — K is stored post-RoPE at the position
//    each token had when it was computed. TruncateFront on such a cache
//    produces the paper's NKVT corruption.
//
// The cache serialises to a flat byte buffer so AttentionStore can move it
// across memory/disk tiers without knowing the tensor layout.
#ifndef CA_MODEL_KV_CACHE_H_
#define CA_MODEL_KV_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/model/config.h"

namespace ca {

class KvCache {
 public:
  KvCache(const ModelConfig& config, PeMode pe_mode);

  PeMode pe_mode() const { return pe_mode_; }
  std::size_t n_layers() const { return k_.size(); }
  std::size_t kv_dim() const { return kv_dim_; }

  // Number of cached tokens (uniform across layers once a forward pass
  // completes).
  std::size_t seq_len() const;
  // Tokens appended so far to a specific layer (mid-forward they differ).
  std::size_t layer_len(std::size_t layer) const;

  bool empty() const { return seq_len() == 0; }

  // Appends one token's K and V rows (each kv_dim floats) to `layer`.
  void Append(std::size_t layer, std::span<const float> k, std::span<const float> v);

  // Pre-sizes every layer's storage for `total_tokens` tokens (no-op if
  // already that large). Called by the forward pass with history + new so a
  // prefill appends into storage grown once up front instead of paying
  // vector regrowth copies mid-pass; also keeps LayerK/LayerV spans stable
  // across the Appends of one forward.
  void Reserve(std::size_t total_tokens);

  // Row accessors.
  std::span<const float> K(std::size_t layer, std::size_t token) const;
  std::span<const float> V(std::size_t layer, std::size_t token) const;
  std::span<float> MutableK(std::size_t layer, std::size_t token);

  // Whole-layer accessors for the attention hot loop: token t's row occupies
  // [t * kv_dim(), (t + 1) * kv_dim()). Bounds-checked once per layer
  // instead of once per (token, head) like K()/V().
  std::span<const float> LayerK(std::size_t layer) const;
  std::span<const float> LayerV(std::size_t layer) const;

  // Drops the oldest `n_tokens` tokens from every layer. With kDecoupled
  // this is the paper's KV cache truncation; with kCoupled it deliberately
  // reproduces NKVT's positional corruption (kept for the baseline).
  void TruncateFront(std::size_t n_tokens);

  // Keeps only tokens whose index is NOT in `discard` (token-discarding-list
  // support for KV compression schemes, §3.4). Indices refer to current
  // positions; out-of-range entries are ignored.
  void DiscardTokens(std::span<const std::size_t> discard);

  // Removes all cached tokens.
  void Clear();

  // fp32 byte footprint of the cached tensors (excludes header).
  std::uint64_t byte_size() const;

  KvCache Clone() const;

  // Flat-buffer serialisation (header + raw fp32 data).
  std::vector<std::uint8_t> Serialize() const;
  static Result<KvCache> Deserialize(const ModelConfig& config,
                                     std::span<const std::uint8_t> bytes);

 private:
  PeMode pe_mode_;
  std::size_t kv_dim_;
  // Indexed [layer]; each holds layer_len * kv_dim floats.
  std::vector<std::vector<float>> k_;
  std::vector<std::vector<float>> v_;
};

}  // namespace ca

#endif  // CA_MODEL_KV_CACHE_H_
