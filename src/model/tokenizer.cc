#include "src/model/tokenizer.h"

#include "src/common/check.h"

namespace ca {

std::vector<TokenId> ByteTokenizer::Encode(std::string_view text) const {
  std::vector<TokenId> out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<TokenId>(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ByteTokenizer::Decode(const std::vector<TokenId>& tokens) const {
  std::string out;
  out.reserve(tokens.size());
  for (const TokenId t : tokens) {
    CA_CHECK_GE(t, 0);
    CA_CHECK_LT(static_cast<std::size_t>(t), kVocabSize);
    out.push_back(static_cast<char>(static_cast<unsigned char>(t)));
  }
  return out;
}

}  // namespace ca
