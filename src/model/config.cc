#include "src/model/config.h"

#include "src/common/check.h"

namespace ca {

void ModelConfig::Validate() const {
  CA_CHECK_GT(n_heads, 0U);
  CA_CHECK_GT(n_kv_heads, 0U);
  CA_CHECK_EQ(d_model % n_heads, 0U) << "d_model must divide into heads";
  CA_CHECK_EQ(n_heads % n_kv_heads, 0U) << "GQA requires n_heads % n_kv_heads == 0";
  CA_CHECK_EQ(head_dim() % 2, 0U) << "RoPE requires even head_dim";
  CA_CHECK_GT(vocab_size, 0U);
  CA_CHECK_GT(context_window, 0U);
  CA_CHECK_GT(num_threads, 0U) << "num_threads = 1 is the serial reference";
}

ModelConfig ModelConfig::Mini() {
  ModelConfig c;
  c.name = "mini";
  c.vocab_size = 256;
  c.d_model = 128;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 4;
  c.d_ff = 256;
  c.context_window = 256;
  return c;
}

ModelConfig ModelConfig::MiniGqa1() {
  ModelConfig c = Mini();
  c.name = "mini-mha";
  c.n_kv_heads = c.n_heads;
  return c;
}

ModelConfig ModelConfig::MiniLong() {
  ModelConfig c = Mini();
  c.name = "mini-long";
  c.context_window = 512;
  return c;
}

ModelConfig ModelConfig::Tiny() {
  ModelConfig c;
  c.name = "tiny";
  c.vocab_size = 64;
  c.d_model = 64;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 128;
  c.context_window = 128;
  return c;
}

namespace {
constexpr double kBillion = 1e9;
}  // namespace

ModelDescriptor ModelDescriptor::Llama13B() {
  return ModelDescriptor{
      .name = "LLaMA-13B",
      .params = 13 * kBillion,
      .n_layers = 40,
      // 2 (K,V) * 40 layers * 5120 dim * 2 bytes = 0.78 MiB/token.
      .kv_bytes_per_token = 819200,
      .context_window = 4096,
      .num_gpus = 2,
      .max_batch = 24,
  };
}

ModelDescriptor ModelDescriptor::Llama65B() {
  return ModelDescriptor{
      .name = "LLaMA-65B",
      .params = 65 * kBillion,
      .n_layers = 80,
      // 2 * 80 * 8192 * 2 bytes = 2.5 MiB/token (paper: 2.5 MB, 2K context).
      .kv_bytes_per_token = 2621440,
      .context_window = 2048,
      .num_gpus = 4,
      .max_batch = 24,
  };
}

ModelDescriptor ModelDescriptor::Llama70B() {
  return ModelDescriptor{
      .name = "LLaMA-70B",
      .params = 70 * kBillion,
      .n_layers = 80,
      // GQA factor 8: 2 * 80 * (8 kv heads * 128) * 2 bytes = 0.31 MiB/token.
      .kv_bytes_per_token = 327680,
      .context_window = 4096,
      .num_gpus = 4,
      .max_batch = 24,
  };
}

ModelDescriptor ModelDescriptor::Falcon40B() {
  return ModelDescriptor{
      .name = "Falcon-40B",
      .params = 40 * kBillion,
      .n_layers = 60,
      // Paper: 0.12 MB/token with GQA factor 16.
      .kv_bytes_per_token = 125829,
      .context_window = 2048,
      .num_gpus = 4,
      .max_batch = 24,
  };
}

ModelDescriptor ModelDescriptor::Mistral7B() {
  return ModelDescriptor{
      .name = "Mistral-7B",
      .params = 7 * kBillion,
      .n_layers = 32,
      // GQA 4: 2 * 32 * (8 kv heads * 128) * 2 bytes = 0.125 MiB/token.
      .kv_bytes_per_token = 131072,
      .context_window = 32768,
      .num_gpus = 1,
      .max_batch = 24,
  };
}

ModelDescriptor ModelDescriptor::Opt13B() {
  return ModelDescriptor{
      .name = "OPT-13B",
      .params = 13 * kBillion,
      .n_layers = 40,
      .kv_bytes_per_token = 819200,
      .context_window = 2048,
      .num_gpus = 2,
      .max_batch = 24,
  };
}

std::vector<ModelDescriptor> ModelDescriptor::EvaluationSuite() {
  return {Llama13B(), Llama65B(), Llama70B(), Falcon40B()};
}

}  // namespace ca
