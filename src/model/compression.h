// KV cache compression via token-discarding lists (TDL).
//
// §3.4 (end): "CachedAttention also allows for selective preservation of
// certain KV cache for compression, e.g., the initial tokens with important
// scores [attention sinks] or important tokens [H2O/Scissorhands]. ... a
// given KV cache compression technique essentially provides a methodology
// for creating a token discarding list (TDL) ... CachedAttention
// straightforwardly complies with the TDL, discarding the KV cache
// associated with the TDL within the AttentionStore."
//
// Decoupled positional encoding is what makes this composable: after
// discarding arbitrary middle tokens, the survivors re-embed at contiguous
// positions 0..n'-1 (exactly how StreamingLLM/H2O re-index), so the
// compressed cache stays valid.
#ifndef CA_MODEL_COMPRESSION_H_
#define CA_MODEL_COMPRESSION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/model/kv_cache.h"
#include "src/model/transformer.h"

namespace ca {

enum class CompressionPolicy {
  kNone,
  // Keep the first `sink_tokens` (attention sinks) and the most recent
  // `recent_tokens`; discard the middle (StreamingLLM-style).
  kAttentionSink,
  // Keep sinks + recents, plus the middle tokens with the highest
  // accumulated attention mass (H2O-style heavy hitters).
  kImportance,
  // Keep sinks + recents, plus uniformly random middle tokens. A control
  // baseline: any importance signal should beat it.
  kRandom,
};

struct CompressionConfig {
  CompressionPolicy policy = CompressionPolicy::kNone;
  std::size_t sink_tokens = 4;
  std::size_t recent_tokens = 32;
  // Fraction of the *middle* region (between sinks and recents) to keep
  // under kImportance / kRandom. kAttentionSink keeps none of it.
  double middle_keep_ratio = 0.25;
  std::uint64_t seed = 1;  // for kRandom
};

// Accumulates, for every cached position, the total attention probability
// mass it receives (summed over layers, heads and query positions).
class AttentionMassAccumulator final : public AttentionObserver {
 public:
  void OnAttention(std::size_t layer, std::size_t head, std::size_t query_pos,
                   std::span<const float> probs) override;

  // Mass per cached position (index = current position). Positions beyond
  // the longest observed context have zero mass.
  const std::vector<float>& mass() const { return mass_; }
  void Reset() { mass_.clear(); }

 private:
  std::vector<float> mass_;
};

// Builds the token-discarding list for a cache of `seq_len` tokens.
// `importance` (mass per position) is required for kImportance and may be
// shorter than seq_len (missing entries count as zero mass). Returned
// indices are current positions, strictly increasing.
std::vector<std::size_t> BuildTokenDiscardList(const CompressionConfig& config,
                                               std::size_t seq_len,
                                               std::span<const float> importance);

// Convenience: applies the policy directly to a cache. Returns the number
// of discarded tokens.
std::size_t CompressCache(const CompressionConfig& config, KvCache& cache,
                          std::span<const float> importance);

}  // namespace ca

#endif  // CA_MODEL_COMPRESSION_H_
