#include "src/model/checkpoint.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/common/check.h"

namespace ca {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x43414d43;  // "CAMC"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t vocab_size;
  std::uint32_t d_model;
  std::uint32_t n_layers;
  std::uint32_t n_heads;
  std::uint32_t n_kv_heads;
  std::uint32_t d_ff;
  std::uint32_t context_window;
  std::uint32_t tensor_count;
  std::uint64_t payload_bytes;
  std::uint32_t payload_crc;
};

// Collects every weight tensor in a fixed, documented order.
std::vector<const Tensor*> WeightList(const Transformer& model) {
  std::vector<const Tensor*> out = {&model.embedding(), &model.lm_head(), &model.rms_final()};
  for (std::size_t l = 0; l < model.config().n_layers; ++l) {
    const LayerWeights& w = model.layer(l);
    out.push_back(&w.rms_att);
    out.push_back(&w.wq);
    out.push_back(&w.wk);
    out.push_back(&w.wv);
    out.push_back(&w.wo);
    out.push_back(&w.rms_ffn);
    out.push_back(&w.w1);
    out.push_back(&w.w2);
    out.push_back(&w.w3);
  }
  return out;
}

std::vector<Tensor*> MutableWeightList(Transformer& model) {
  std::vector<Tensor*> out = {&model.mutable_embedding(), &model.mutable_lm_head(),
                              &model.mutable_rms_final()};
  for (std::size_t l = 0; l < model.config().n_layers; ++l) {
    LayerWeights& w = model.mutable_layer(l);
    out.push_back(&w.rms_att);
    out.push_back(&w.wq);
    out.push_back(&w.wk);
    out.push_back(&w.wv);
    out.push_back(&w.wo);
    out.push_back(&w.rms_ffn);
    out.push_back(&w.w1);
    out.push_back(&w.w2);
    out.push_back(&w.w3);
  }
  return out;
}

class FileCloser {
 public:
  explicit FileCloser(std::FILE* f) : f_(f) {}
  ~FileCloser() {
    if (f_ != nullptr) {
      std::fclose(f_);
    }
  }
  FileCloser(const FileCloser&) = delete;
  FileCloser& operator=(const FileCloser&) = delete;

 private:
  std::FILE* f_;
};

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size) {
  // Bitwise CRC-32C (Castagnoli). Slow but dependency-free; checkpoints are
  // small.
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82F63B78U : 0U);
      }
      table[i] = crc;
    }
    return table;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFU;
}

Status SaveCheckpoint(const Transformer& model, const std::string& path) {
  const auto weights = WeightList(model);
  std::uint64_t payload_bytes = 0;
  for (const Tensor* t : weights) {
    payload_bytes += t->numel() * sizeof(float);
  }
  // CRC over the concatenated payload.
  std::uint32_t crc = 0xFFFFFFFFU;
  // Compute incrementally by chaining Crc32c over a running buffer would
  // need a streaming variant; instead assemble the payload (trained minis
  // are a few MB).
  std::vector<std::uint8_t> payload;
  payload.reserve(payload_bytes);
  for (const Tensor* t : weights) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(t->data());
    payload.insert(payload.end(), bytes, bytes + t->numel() * sizeof(float));
  }
  crc = Crc32c(payload.data(), payload.size());

  const ModelConfig& c = model.config();
  Header header{.magic = kCheckpointMagic,
                .version = kVersion,
                .vocab_size = static_cast<std::uint32_t>(c.vocab_size),
                .d_model = static_cast<std::uint32_t>(c.d_model),
                .n_layers = static_cast<std::uint32_t>(c.n_layers),
                .n_heads = static_cast<std::uint32_t>(c.n_heads),
                .n_kv_heads = static_cast<std::uint32_t>(c.n_kv_heads),
                .d_ff = static_cast<std::uint32_t>(c.d_ff),
                .context_window = static_cast<std::uint32_t>(c.context_window),
                .tensor_count = static_cast<std::uint32_t>(weights.size()),
                .payload_bytes = payload_bytes,
                .payload_crc = crc};

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  FileCloser closer(f);
  if (std::fwrite(&header, sizeof(header), 1, f) != 1 ||
      (payload.size() > 0 && std::fwrite(payload.data(), 1, payload.size(), f) != payload.size())) {
    return IoError("short write to " + path);
  }
  return Status::Ok();
}

Status LoadCheckpoint(Transformer& model, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  FileCloser closer(f);
  Header header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    return IoError("short read (header) from " + path);
  }
  if (header.magic != kCheckpointMagic) {
    return InvalidArgumentError(path + " is not a checkpoint");
  }
  if (header.version != kVersion) {
    return InvalidArgumentError("unsupported checkpoint version");
  }
  const ModelConfig& c = model.config();
  if (header.vocab_size != c.vocab_size || header.d_model != c.d_model ||
      header.n_layers != c.n_layers || header.n_heads != c.n_heads ||
      header.n_kv_heads != c.n_kv_heads || header.d_ff != c.d_ff) {
    return InvalidArgumentError("checkpoint architecture does not match the model");
  }
  std::vector<std::uint8_t> payload(header.payload_bytes);
  if (std::fread(payload.data(), 1, payload.size(), f) != payload.size()) {
    return IoError("short read (payload) from " + path);
  }
  if (Crc32c(payload.data(), payload.size()) != header.payload_crc) {
    return IoError("checkpoint payload CRC mismatch (corrupt file?)");
  }
  auto weights = MutableWeightList(model);
  if (weights.size() != header.tensor_count) {
    return InvalidArgumentError("checkpoint tensor count mismatch");
  }
  std::size_t offset = 0;
  for (Tensor* t : weights) {
    const std::size_t bytes = t->numel() * sizeof(float);
    if (offset + bytes > payload.size()) {
      return InvalidArgumentError("checkpoint payload too small");
    }
    std::memcpy(t->data(), payload.data() + offset, bytes);
    offset += bytes;
  }
  if (offset != payload.size()) {
    return InvalidArgumentError("checkpoint payload has trailing bytes");
  }
  return Status::Ok();
}

}  // namespace ca
