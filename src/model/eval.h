// Evaluation helpers for the positional-encoding fidelity experiments
// (paper Tables 1 and 2): perplexity of a continuation given cached context,
// and next-token agreement against a reference method.
#ifndef CA_MODEL_EVAL_H_
#define CA_MODEL_EVAL_H_

#include <span>
#include <vector>

#include "src/model/kv_cache.h"
#include "src/model/transformer.h"

namespace ca {

// Mean negative log-likelihood (nats/token) of `continuation` under the
// model, with `cache` holding the preceding context. The cache is advanced
// over the continuation as a side effect.
double ContinuationNll(const Transformer& model, std::span<const TokenId> continuation,
                       KvCache& cache);

// exp(nll): perplexity.
double NllToPerplexity(double nll);

// Greedy next-token prediction given cached context plus `probe` tokens.
// The cache is advanced over the probe.
TokenId PredictNext(const Transformer& model, std::span<const TokenId> probe, KvCache& cache);

// Fraction of positions where the two logits tensors agree on the argmax.
double ArgmaxAgreement(const Transformer& model, const Tensor& logits_a, const Tensor& logits_b);

}  // namespace ca

#endif  // CA_MODEL_EVAL_H_
