#include "src/model/rope.h"

#include <cmath>

#include "src/common/check.h"

namespace ca {

RopeTable::RopeTable(std::size_t head_dim, float theta) : head_dim_(head_dim) {
  CA_CHECK_EQ(head_dim % 2, 0U);
  inv_freq_.resize(head_dim / 2);
  for (std::size_t i = 0; i < inv_freq_.size(); ++i) {
    inv_freq_[i] = std::pow(theta, -2.0f * static_cast<float>(i) / static_cast<float>(head_dim));
  }
}

void RopeTable::Apply(std::span<float> vec, std::size_t pos) const {
  CA_CHECK_EQ(vec.size(), head_dim_);
  const auto p = static_cast<float>(pos);
  for (std::size_t i = 0; i < inv_freq_.size(); ++i) {
    const float angle = p * inv_freq_[i];
    const float c = std::cos(angle);
    const float s = std::sin(angle);
    const float x = vec[2 * i];
    const float y = vec[2 * i + 1];
    vec[2 * i] = x * c - y * s;
    vec[2 * i + 1] = x * s + y * c;
  }
}

void RopeTable::ApplyAllHeads(std::span<float> packed, std::size_t pos) const {
  CA_CHECK_EQ(packed.size() % head_dim_, 0U);
  for (std::size_t off = 0; off < packed.size(); off += head_dim_) {
    Apply(packed.subspan(off, head_dim_), pos);
  }
}

void RopeTable::ApplyInverse(std::span<float> vec, std::size_t pos) const {
  CA_CHECK_EQ(vec.size(), head_dim_);
  const auto p = static_cast<float>(pos);
  for (std::size_t i = 0; i < inv_freq_.size(); ++i) {
    const float angle = p * inv_freq_[i];
    const float c = std::cos(angle);
    const float s = std::sin(angle);
    const float x = vec[2 * i];
    const float y = vec[2 * i + 1];
    vec[2 * i] = x * c + y * s;
    vec[2 * i + 1] = -x * s + y * c;
  }
}

}  // namespace ca
