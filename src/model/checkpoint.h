// Transformer weight checkpointing: a flat binary format with a shape table
// and CRC so trained models can be persisted and reloaded (the trained-LM
// fixtures cache their weights this way instead of retraining per process).
#ifndef CA_MODEL_CHECKPOINT_H_
#define CA_MODEL_CHECKPOINT_H_

#include <string>

#include "src/common/status.h"
#include "src/model/transformer.h"

namespace ca {

// Writes every weight tensor of `model` to `path`. The model config's
// structural fields are stored for validation at load time.
Status SaveCheckpoint(const Transformer& model, const std::string& path);

// Loads weights from `path` into `model`. Fails (without modifying the
// model) if the file's architecture or checksum does not match.
Status LoadCheckpoint(Transformer& model, const std::string& path);

// CRC-32C over a byte range (Castagnoli polynomial, bitwise; used by the
// checkpoint and KV serialization formats).
std::uint32_t Crc32c(const void* data, std::size_t size);

}  // namespace ca

#endif  // CA_MODEL_CHECKPOINT_H_
