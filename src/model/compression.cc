#include "src/model/compression.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace ca {

void AttentionMassAccumulator::OnAttention(std::size_t layer, std::size_t head,
                                           std::size_t query_pos, std::span<const float> probs) {
  (void)layer;
  (void)head;
  (void)query_pos;
  if (mass_.size() < probs.size()) {
    mass_.resize(probs.size(), 0.0f);
  }
  for (std::size_t j = 0; j < probs.size(); ++j) {
    mass_[j] += probs[j];
  }
}

std::vector<std::size_t> BuildTokenDiscardList(const CompressionConfig& config,
                                               std::size_t seq_len,
                                               std::span<const float> importance) {
  std::vector<std::size_t> discard;
  if (config.policy == CompressionPolicy::kNone) {
    return discard;
  }
  const std::size_t sinks = std::min(config.sink_tokens, seq_len);
  const std::size_t recents = std::min(config.recent_tokens, seq_len - sinks);
  const std::size_t middle_begin = sinks;
  const std::size_t middle_end = seq_len - recents;
  if (middle_begin >= middle_end) {
    return discard;  // nothing between sinks and recents
  }
  const std::size_t middle = middle_end - middle_begin;

  switch (config.policy) {
    case CompressionPolicy::kNone:
      break;
    case CompressionPolicy::kAttentionSink: {
      discard.reserve(middle);
      for (std::size_t i = middle_begin; i < middle_end; ++i) {
        discard.push_back(i);
      }
      break;
    }
    case CompressionPolicy::kImportance: {
      const auto keep =
          static_cast<std::size_t>(config.middle_keep_ratio * static_cast<double>(middle));
      // Rank middle positions by accumulated attention mass, descending.
      std::vector<std::size_t> order(middle);
      std::iota(order.begin(), order.end(), middle_begin);
      auto mass_of = [&](std::size_t pos) {
        return pos < importance.size() ? importance[pos] : 0.0f;
      };
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return mass_of(a) > mass_of(b);
      });
      discard.assign(order.begin() + static_cast<std::ptrdiff_t>(std::min(keep, middle)),
                     order.end());
      std::sort(discard.begin(), discard.end());
      break;
    }
    case CompressionPolicy::kRandom: {
      const auto keep =
          static_cast<std::size_t>(config.middle_keep_ratio * static_cast<double>(middle));
      std::vector<std::size_t> order(middle);
      std::iota(order.begin(), order.end(), middle_begin);
      Rng rng(config.seed);
      // Fisher-Yates shuffle, then discard everything after the kept prefix.
      for (std::size_t i = middle; i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextBounded(i)]);
      }
      discard.assign(order.begin() + static_cast<std::ptrdiff_t>(std::min(keep, middle)),
                     order.end());
      std::sort(discard.begin(), discard.end());
      break;
    }
  }
  return discard;
}

std::size_t CompressCache(const CompressionConfig& config, KvCache& cache,
                          std::span<const float> importance) {
  const auto discard = BuildTokenDiscardList(config, cache.seq_len(), importance);
  if (!discard.empty()) {
    CA_CHECK(cache.pe_mode() == PeMode::kDecoupled)
        << "TDL compression requires decoupled positional encoding";
    cache.DiscardTokens(discard);
  }
  return discard.size();
}

}  // namespace ca
