// Multi-threaded serving runtime (§4.1): the layer that turns the engine +
// scheduler building blocks into a concurrent serving system.
//
//   JobQueue  ──►  per-worker ContinuousBatcher  ──►  CachedAttentionEngine
//
// A ServingLoop owns one FIFO JobQueue fed by Submit/TrySubmit. N worker
// threads each run a ContinuousBatcher: they admit runnable jobs from the
// queue into their batch (TryAdmit — a full batch leaves jobs queued, it
// never aborts), serve every admitted job's turn through
// CachedAttentionEngine::Converse, and retire the batch through
// StepIteration (whose admission-order completions keep multi-worker traces
// reproducible). Per-session ordering is enforced globally: a session with
// a turn in flight is skipped by every worker's admission scan, and because
// the scan is head-first, two queued jobs of the same session can never run
// concurrently or out of submission order — which is exactly the property
// that makes an N-worker run's replies bitwise identical to a 1-worker run.
//
// A background refresh thread continuously republishes the queue's
// look-ahead window into the engine (SetQueueHint, feeding the §3.3.2
// scheduler-aware eviction) and drives PrefetchSessions over the same
// window, so §3.3.1 disk→DRAM promotion genuinely overlaps the workers'
// compute (the engine mutex is free during prefill/decode).
//
// Shutdown protocol (graceful drain): close intake, serve every accepted
// job to completion (active batches finish, then the queue drains), flush
// the engine's async write stream, join all threads. Accepted work is never
// dropped; load shedding happens only at intake (TrySubmit).
#ifndef CA_SERVE_SERVING_LOOP_H_
#define CA_SERVE_SERVING_LOOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/core/cached_attention.h"
#include "src/obs/metrics.h"
#include "src/sched/batcher.h"
#include "src/sched/job.h"
#include "src/sched/job_queue.h"

namespace ca {

// One conversation turn submitted to the loop.
struct ServeRequest {
  SessionId session = kInvalidSession;
  std::vector<TokenId> input;          // user tokens this turn (non-empty)
  std::size_t max_reply_tokens = 16;   // greedy-decode budget
};

// Outcome of one served turn.
struct ServeReply {
  JobId job = 0;
  SessionId session = kInvalidSession;
  std::uint32_t turn_index = 0;  // 1-based per-session submission index
  Status status = Status::Ok();  // non-OK: the engine rejected the turn
  TurnResult turn;               // reply tokens + per-turn accounting
};

struct ServerOptions {
  std::size_t num_workers = 4;
  // Continuous-batch capacity per worker (slots a worker serves per round).
  std::size_t max_batch_per_worker = 4;
  // TrySubmit sheds load once this many jobs are waiting (0 = never shed;
  // Submit is always unbounded — the queue grows under overload).
  std::size_t max_queue_depth = 0;
  // Look-ahead window (jobs) republished into the engine as scheduler hints
  // and offered to the prefetcher.
  std::size_t hint_window = 64;
  // Idle cadence of the hint/prefetch refresh thread. While promotions are
  // landing the thread loops without sleeping to stay ahead of the workers.
  std::uint64_t refresh_interval_us = 200;
  // Drive CachedAttentionEngine::PrefetchSessions off the live queue
  // snapshot (§3.3.1 look-ahead promotion overlapping serving).
  bool prefetch = true;
};

class ServingLoop {
 public:
  // `engine` must outlive the loop. Worker and refresh threads start
  // immediately.
  ServingLoop(CachedAttentionEngine* engine, ServerOptions options);
  ~ServingLoop();  // implies Shutdown()

  ServingLoop(const ServingLoop&) = delete;
  ServingLoop& operator=(const ServingLoop&) = delete;

  const ServerOptions& options() const { return options_; }

  // Enqueues one turn; always accepted while intake is open (the queue
  // grows under overload — an overloaded server sheds via TrySubmit, it
  // never aborts). Submission order per session is service order.
  // CA_CHECKs on empty input or Submit-after-Shutdown (programmer errors).
  JobId Submit(ServeRequest request) CA_EXCLUDES(mutex_);

  // Backpressure intake: returns nullopt (and counts serve.jobs_rejected)
  // when intake is closed, the input is empty, or max_queue_depth is set
  // and reached.
  std::optional<JobId> TrySubmit(ServeRequest request) CA_EXCLUDES(mutex_);

  // Blocks until every accepted job has been served. Intake stays open.
  void WaitIdle() CA_EXCLUDES(mutex_);

  // Graceful drain: closes intake, serves every accepted job, flushes the
  // engine's async saves, joins all threads. Idempotent; called by the
  // destructor. Not thread-safe against itself.
  void Shutdown() CA_EXCLUDES(mutex_);

  // Completed turns in JobId (= submission) order; clears the internal
  // buffer. Call at a quiescent point (after WaitIdle or Shutdown) to see
  // every accepted job exactly once.
  std::vector<ServeReply> TakeReplies() CA_EXCLUDES(mutex_);

  std::size_t queue_depth() const CA_EXCLUDES(mutex_);
  bool accepting() const CA_EXCLUDES(mutex_);

 private:
  JobId EnqueueLocked(ServeRequest&& request) CA_REQUIRES(mutex_);
  void WorkerLoop(std::size_t worker_index) CA_EXCLUDES(mutex_);
  void RefreshLoop() CA_EXCLUDES(mutex_);
  // Serves one admitted job end to end and records its reply.
  void ServeJob(const Job& job, ServeRequest request) CA_EXCLUDES(mutex_);

  CachedAttentionEngine* engine_;   // unguarded: set in ctor, immutable after
  ServerOptions options_;          // unguarded: set in ctor, immutable after

  mutable Mutex mutex_{"serve.ServingLoop"};
  CondVar work_available_;  // workers: new job / session freed / stopping
  CondVar idle_;            // WaitIdle/Shutdown: completed_ caught up
  JobQueue queue_ CA_GUARDED_BY(mutex_);
  // Input payloads keyed by job id (Job itself stays the sched-layer value
  // type with token *counts*; the real tokens ride here).
  std::unordered_map<JobId, ServeRequest> payloads_ CA_GUARDED_BY(mutex_);
  // Sessions with a turn currently being served by some worker.
  std::unordered_set<SessionId> in_flight_sessions_ CA_GUARDED_BY(mutex_);
  std::unordered_map<SessionId, std::uint32_t> turns_submitted_ CA_GUARDED_BY(mutex_);
  std::vector<ServeReply> replies_ CA_GUARDED_BY(mutex_);
  JobId next_job_id_ CA_GUARDED_BY(mutex_) = 1;
  std::uint64_t accepted_ CA_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ CA_GUARDED_BY(mutex_) = 0;
  bool accepting_ CA_GUARDED_BY(mutex_) = true;
  bool stopping_ CA_GUARDED_BY(mutex_) = false;

  std::atomic<bool> refresh_stop_{false};
  bool joined_ = false;  // unguarded: Shutdown idempotence, main thread only
  std::vector<std::thread> workers_;  // unguarded: written in ctor, joined in Shutdown
  std::thread refresh_thread_;        // unguarded: written in ctor, joined in Shutdown

  // Cached registry handles (DESIGN.md §11); the handles are set in the
  // ctor and immutable after, and the metrics they point at lock themselves.
  Counter* accepted_counter_;          // unguarded: set in ctor, immutable after
  Counter* rejected_counter_;          // unguarded: set in ctor, immutable after
  Counter* completed_counter_;         // unguarded: set in ctor, immutable after
  Counter* failed_counter_;            // unguarded: set in ctor, immutable after
  HistogramMetric* turn_seconds_hist_; // unguarded: set in ctor, immutable after
  Gauge* inflight_gauge_;              // unguarded: set in ctor, immutable after
};

}  // namespace ca

#endif  // CA_SERVE_SERVING_LOOP_H_
