#include "src/serve/serving_loop.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace ca {

ServingLoop::ServingLoop(CachedAttentionEngine* engine, ServerOptions options)
    : engine_(engine), options_(options) {
  CA_CHECK(engine_ != nullptr);
  CA_CHECK_GT(options_.num_workers, 0U);
  CA_CHECK_GT(options_.max_batch_per_worker, 0U);
  auto& registry = MetricsRegistry::Global();
  accepted_counter_ = &registry.GetCounter("serve.jobs_accepted");
  rejected_counter_ = &registry.GetCounter("serve.jobs_rejected");
  completed_counter_ = &registry.GetCounter("serve.jobs_completed");
  failed_counter_ = &registry.GetCounter("serve.jobs_failed");
  turn_seconds_hist_ = &registry.GetHistogram("serve.turn_seconds");
  inflight_gauge_ = &registry.GetGauge("serve.sessions_in_flight");
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  refresh_thread_ = std::thread([this] { RefreshLoop(); });
}

ServingLoop::~ServingLoop() { Shutdown(); }

JobId ServingLoop::EnqueueLocked(ServeRequest&& request) {
  const JobId id = next_job_id_++;
  Job job;
  job.id = id;
  job.session = request.session;
  job.arrival = static_cast<SimTime>(TraceNowNs());
  job.turn_index = ++turns_submitted_[request.session];
  job.new_tokens = static_cast<std::uint32_t>(request.input.size());
  job.decode_tokens = static_cast<std::uint32_t>(request.max_reply_tokens);
  payloads_.emplace(id, std::move(request));
  queue_.Push(job);
  ++accepted_;
  accepted_counter_->Add();
  return id;
}

JobId ServingLoop::Submit(ServeRequest request) {
  CA_CHECK(!request.input.empty()) << "empty turn input";
  JobId id;
  {
    MutexLock lock(mutex_);
    CA_CHECK(accepting_) << "Submit after Shutdown";
    id = EnqueueLocked(std::move(request));
  }
  work_available_.NotifyOne();
  return id;
}

std::optional<JobId> ServingLoop::TrySubmit(ServeRequest request) {
  if (request.input.empty()) {
    rejected_counter_->Add();
    return std::nullopt;
  }
  JobId id;
  {
    MutexLock lock(mutex_);
    const bool over_depth =
        options_.max_queue_depth > 0 && queue_.size() >= options_.max_queue_depth;
    if (!accepting_ || over_depth) {
      rejected_counter_->Add();
      CA_TRACE_INSTANT("serve.shed", "session", request.session, "depth",
                       queue_.size());
      return std::nullopt;
    }
    id = EnqueueLocked(std::move(request));
  }
  work_available_.NotifyOne();
  return id;
}

void ServingLoop::WorkerLoop(std::size_t worker_index) {
  Tracer::Get().SetThreadName("serve-worker-" + std::to_string(worker_index));
  ContinuousBatcher batcher(options_.max_batch_per_worker);
  for (;;) {
    // One round: admit every runnable job the batch has room for.
    std::vector<std::pair<Job, ServeRequest>> round;
    {
      MutexLock lock(mutex_);
      work_available_.Wait(mutex_, [this] {
        mutex_.AssertHeld();
        if (stopping_ && queue_.empty()) {
          return true;
        }
        return queue_.HasRunnable([this](const Job& j) {
          mutex_.AssertHeld();
          return in_flight_sessions_.count(j.session) == 0;
        });
      });
      if (stopping_ && queue_.empty()) {
        CA_CHECK(batcher.empty());
        return;
      }
      while (batcher.HasSlot()) {
        std::optional<Job> job = queue_.PopFirstRunnable([this](const Job& j) {
          mutex_.AssertHeld();
          return in_flight_sessions_.count(j.session) == 0;
        });
        if (!job.has_value()) {
          break;
        }
        // Marking the session in flight *inside* the scan loop makes a
        // second queued job of the same session non-runnable immediately,
        // so one round can never hold two turns of one conversation.
        in_flight_sessions_.insert(job->session);
        auto payload_it = payloads_.find(job->id);
        CA_CHECK(payload_it != payloads_.end());
        const bool admitted = batcher.TryAdmit(*job, /*remaining=*/1);
        CA_CHECK(admitted);  // HasSlot() held the loop open
        round.emplace_back(*job, std::move(payload_it->second));
        payloads_.erase(payload_it);
      }
      inflight_gauge_->Set(static_cast<double>(in_flight_sessions_.size()));
    }
    if (round.empty()) {
      continue;  // another worker won the race; wait again
    }
    {
      // Serve the batch in admission order; each job's turn runs end to end
      // on this worker (the real path batches at turn granularity — see
      // DESIGN.md §12 — while the simulator models per-token iteration).
      CA_TRACE_SPAN("serve.batch", "worker", worker_index, "jobs", round.size());
      for (auto& [job, request] : round) {
        ServeJob(job, std::move(request));
      }
    }
    const std::vector<Job> retired = batcher.StepIteration();
    CA_CHECK_EQ(retired.size(), round.size());
    for (std::size_t i = 0; i < retired.size(); ++i) {
      // StepIteration's admission-order contract is what keeps serving
      // traces deterministic; hold it to the jobs we actually served.
      CA_CHECK_EQ(retired[i].id, round[i].first.id);
    }
  }
}

void ServingLoop::ServeJob(const Job& job, ServeRequest request) {
  ServeReply reply;
  reply.job = job.id;
  reply.session = job.session;
  reply.turn_index = job.turn_index;
  const std::uint64_t start_ns = TraceNowNs();
  {
    CA_TRACE_SPAN("serve.turn", "job", job.id, "session", job.session, "turn",
                  job.turn_index);
    Result<TurnResult> result =
        engine_->Converse(job.session, request.input, request.max_reply_tokens);
    if (result.ok()) {
      reply.turn = std::move(*result);
    } else {
      reply.status = result.status();
      failed_counter_->Add();
    }
  }
  turn_seconds_hist_->Observe(static_cast<double>(TraceNowNs() - start_ns) * 1e-9);
  completed_counter_->Add();
  {
    MutexLock lock(mutex_);
    in_flight_sessions_.erase(job.session);
    inflight_gauge_->Set(static_cast<double>(in_flight_sessions_.size()));
    replies_.push_back(std::move(reply));
    ++completed_;
  }
  // Freeing the session may make its next queued turn runnable on any
  // worker; the last completion also releases WaitIdle/Shutdown waiters.
  work_available_.NotifyAll();
  idle_.NotifyAll();
}

void ServingLoop::RefreshLoop() {
  Tracer::Get().SetThreadName("serve-refresh");
  while (!refresh_stop_.load(std::memory_order_acquire)) {
    std::vector<SessionId> window;
    {
      MutexLock lock(mutex_);
      window = queue_.WindowSnapshot(options_.hint_window);
    }
    std::size_t promoted = 0;
    if (!window.empty()) {
      CA_TRACE_SPAN("serve.refresh", "window", window.size());
      // Republish the look-ahead window (JobQueue::HintsForWindow's view)
      // so the store's scheduler-aware eviction sees the live queue, then
      // drive §3.3.1 promotion over the same window. The engine mutex is
      // free during the workers' prefill/decode, so this I/O overlaps
      // their compute.
      engine_->SetQueueHint(window);
      if (options_.prefetch) {
        promoted = engine_->PrefetchSessions(window);
      }
    }
    if (promoted == 0) {
      // Nothing promoted (or nothing queued): idle-pace the loop.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.refresh_interval_us));
    }
  }
}

void ServingLoop::WaitIdle() {
  MutexLock lock(mutex_);
  idle_.Wait(mutex_, [this] {
    mutex_.AssertHeld();
    return completed_ == accepted_;
  });
}

void ServingLoop::Shutdown() {
  if (joined_) {
    return;
  }
  {
    MutexLock lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  work_available_.NotifyAll();
  {
    MutexLock lock(mutex_);
    idle_.Wait(mutex_, [this] {
      mutex_.AssertHeld();
      return completed_ == accepted_;
    });
  }
  // Every job is done and the queue is empty: wake any worker still parked
  // so it observes (stopping_ && empty) and exits.
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  refresh_stop_.store(true, std::memory_order_release);
  refresh_thread_.join();
  engine_->Flush();
  joined_ = true;
}

std::vector<ServeReply> ServingLoop::TakeReplies() {
  MutexLock lock(mutex_);
  std::vector<ServeReply> out = std::move(replies_);
  replies_.clear();
  std::sort(out.begin(), out.end(),
            [](const ServeReply& a, const ServeReply& b) { return a.job < b.job; });
  return out;
}

std::size_t ServingLoop::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

bool ServingLoop::accepting() const {
  MutexLock lock(mutex_);
  return accepting_;
}

}  // namespace ca
