#include "src/train/markov_data.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace ca {

MarkovCorpus::MarkovCorpus(std::size_t vocab, std::size_t branching, std::uint64_t seed)
    : vocab_(vocab), branching_(std::min(branching, vocab)) {
  CA_CHECK_GE(vocab, 2U);
  CA_CHECK_GE(branching_, 1U);
  Rng rng(seed);
  const std::size_t states = vocab_ * vocab_;
  successors_.resize(states);
  cum_probs_.resize(states);
  for (std::size_t s = 0; s < states; ++s) {
    // Pick `branching` distinct successors.
    std::vector<TokenId>& succ = successors_[s];
    while (succ.size() < branching_) {
      const auto cand = static_cast<TokenId>(rng.NextBounded(vocab_));
      if (std::find(succ.begin(), succ.end(), cand) == succ.end()) {
        succ.push_back(cand);
      }
    }
    // Zipf-ish weights 1/(k+1), normalised, accumulated.
    std::vector<double>& cum = cum_probs_[s];
    cum.resize(branching_);
    double total = 0.0;
    for (std::size_t k = 0; k < branching_; ++k) {
      total += 1.0 / static_cast<double>(k + 1);
    }
    double acc = 0.0;
    for (std::size_t k = 0; k < branching_; ++k) {
      acc += 1.0 / static_cast<double>(k + 1) / total;
      cum[k] = acc;
    }
    cum.back() = 1.0;
  }
}

std::vector<TokenId> MarkovCorpus::Sample(std::size_t length, Rng& rng) const {
  std::vector<TokenId> out;
  out.reserve(length);
  TokenId prev2 = static_cast<TokenId>(rng.NextBounded(vocab_));
  TokenId prev1 = static_cast<TokenId>(rng.NextBounded(vocab_));
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t s = StateIndex(prev2, prev1);
    const double u = rng.NextDouble();
    const auto& cum = cum_probs_[s];
    std::size_t k = 0;
    while (k + 1 < cum.size() && u > cum[k]) {
      ++k;
    }
    const TokenId next = successors_[s][k];
    out.push_back(next);
    prev2 = prev1;
    prev1 = next;
  }
  return out;
}

double MarkovCorpus::TransitionProb(TokenId prev2, TokenId prev1, TokenId next) const {
  const std::size_t s = StateIndex(prev2, prev1);
  const auto& succ = successors_[s];
  const auto& cum = cum_probs_[s];
  for (std::size_t k = 0; k < succ.size(); ++k) {
    if (succ[k] == next) {
      return k == 0 ? cum[0] : cum[k] - cum[k - 1];
    }
  }
  return 0.0;
}

double MarkovCorpus::EstimateEntropy(std::size_t sample_tokens, Rng& rng) const {
  const std::vector<TokenId> seq = Sample(sample_tokens + 2, rng);
  double nll = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 2; i < seq.size(); ++i) {
    const double p = TransitionProb(seq[i - 2], seq[i - 1], seq[i]);
    CA_CHECK_GT(p, 0.0);
    nll -= std::log(p);
    ++count;
  }
  return nll / static_cast<double>(count);
}

TokenId MarkovCorpus::BestNext(TokenId prev2, TokenId prev1) const {
  // Weights are decreasing in k, so the first successor is the mode.
  return successors_[StateIndex(prev2, prev1)][0];
}

}  // namespace ca
