#include "src/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/tensor/ops.h"

namespace ca {

namespace {

// dW += dy^T @ x for y = x W^T (W is [out, in], x is [T, in], dy is [T, out]).
void AccumulateWeightGrad(const Tensor& dy, const Tensor& x, Tensor& dw) {
  const std::size_t t_len = x.dim(0);
  const std::size_t in = x.dim(1);
  const std::size_t out = dy.dim(1);
  CA_CHECK_EQ(dy.dim(0), t_len);
  CA_CHECK_EQ(dw.dim(0), out);
  CA_CHECK_EQ(dw.dim(1), in);
  for (std::size_t t = 0; t < t_len; ++t) {
    const float* dyr = dy.row(t);
    const float* xr = x.row(t);
    for (std::size_t o = 0; o < out; ++o) {
      const float d = dyr[o];
      if (d == 0.0f) {
        continue;
      }
      float* dwr = dw.row(o);
      for (std::size_t i = 0; i < in; ++i) {
        dwr[i] += d * xr[i];
      }
    }
  }
}

// Forward rmsnorm that also returns the per-row inverse RMS.
void RmsNormForward(const Tensor& x, std::span<const float> w, Tensor& out,
                    std::vector<float>& inv_rms, float eps = 1e-5f) {
  const std::size_t rows = x.dim(0);
  const std::size_t cols = x.dim(1);
  inv_rms.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = x.row(r);
    float ss = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      ss += in[c] * in[c];
    }
    const float ir = 1.0f / std::sqrt(ss / static_cast<float>(cols) + eps);
    inv_rms[r] = ir;
    float* o = out.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] = in[c] * ir * w[c];
    }
  }
}

// Backward of y = rmsnorm(x) * w:
//   dx_j += ir * w_j * dy_j - ir^3 / n * x_j * sum_i(dy_i * w_i * x_i)
//   dw_j += dy_j * x_j * ir
void RmsNormBackward(const Tensor& x, std::span<const float> w, const std::vector<float>& inv_rms,
                     const Tensor& dy, Tensor& dx, Tensor& dw) {
  const std::size_t rows = x.dim(0);
  const std::size_t cols = x.dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x.row(r);
    const float* dyr = dy.row(r);
    float* dxr = dx.row(r);
    float* dwr = dw.data();
    const float ir = inv_rms[r];
    float s = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      s += dyr[c] * w[c] * xr[c];
    }
    const float k = ir * ir * ir * s / static_cast<float>(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      dxr[c] += ir * w[c] * dyr[c] - k * xr[c];
      dwr[c] += dyr[c] * xr[c] * ir;
    }
  }
}

}  // namespace

Trainer::Trainer(Transformer* model, TrainConfig config)
    : model_(model), config_(config), batch_rng_(config.data_seed) {
  CA_CHECK(model != nullptr);
  const ModelConfig& mc = model_->config();
  g_embedding_ = Tensor({mc.vocab_size, mc.d_model});
  g_lm_head_ = Tensor({mc.vocab_size, mc.d_model});
  g_rms_final_ = Tensor({mc.d_model});
  g_layers_.resize(mc.n_layers);
  for (auto& g : g_layers_) {
    g.rms_att = Tensor({mc.d_model});
    g.wq = Tensor({mc.q_dim(), mc.d_model});
    g.wk = Tensor({mc.kv_dim(), mc.d_model});
    g.wv = Tensor({mc.kv_dim(), mc.d_model});
    g.wo = Tensor({mc.d_model, mc.q_dim()});
    g.rms_ffn = Tensor({mc.d_model});
    g.w1 = Tensor({mc.d_ff, mc.d_model});
    g.w2 = Tensor({mc.d_model, mc.d_ff});
    g.w3 = Tensor({mc.d_ff, mc.d_model});
  }
  for (Tensor* p : Parameters()) {
    std::vector<std::size_t> shape;
    for (std::size_t i = 0; i < p->rank(); ++i) {
      shape.push_back(p->dim(i));
    }
    adam_m_.emplace_back(shape);
    adam_v_.emplace_back(shape);
  }
}

std::vector<Tensor*> Trainer::Parameters() {
  std::vector<Tensor*> out = {&model_->mutable_embedding(), &model_->mutable_lm_head(),
                              &model_->mutable_rms_final()};
  for (std::size_t l = 0; l < model_->config().n_layers; ++l) {
    LayerWeights& w = model_->mutable_layer(l);
    out.push_back(&w.rms_att);
    out.push_back(&w.wq);
    out.push_back(&w.wk);
    out.push_back(&w.wv);
    out.push_back(&w.wo);
    out.push_back(&w.rms_ffn);
    out.push_back(&w.w1);
    out.push_back(&w.w2);
    out.push_back(&w.w3);
  }
  return out;
}

std::vector<Tensor*> Trainer::Gradients() {
  std::vector<Tensor*> out = {&g_embedding_, &g_lm_head_, &g_rms_final_};
  for (auto& g : g_layers_) {
    out.push_back(&g.rms_att);
    out.push_back(&g.wq);
    out.push_back(&g.wk);
    out.push_back(&g.wv);
    out.push_back(&g.wo);
    out.push_back(&g.rms_ffn);
    out.push_back(&g.w1);
    out.push_back(&g.w2);
    out.push_back(&g.w3);
  }
  return out;
}

void Trainer::ZeroGrads() {
  for (Tensor* g : Gradients()) {
    g->Fill(0.0f);
  }
}

double Trainer::ForwardBackward(std::span<const TokenId> seq) {
  const ModelConfig& mc = model_->config();
  CA_CHECK_GE(seq.size(), 2U);
  const std::size_t t_len = seq.size() - 1;  // positions with a target
  const std::size_t d = mc.d_model;
  const std::size_t qd = mc.q_dim();
  const std::size_t kd = mc.kv_dim();
  const std::size_t hd = mc.head_dim();
  const std::size_t n_heads = mc.n_heads;
  const std::size_t group = mc.gqa_group();
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));
  const RopeTable& rope = model_->rope();

  // --- forward with tape -------------------------------------------------
  struct LayerTape {
    Tensor a_in;            // [T, d] input to attention block
    Tensor att_xn;          // [T, d]
    std::vector<float> att_ir;
    Tensor q_r, k_r, v;     // [T, qd] / [T, kd] / [T, kd] (q,k post-rope)
    Tensor probs;           // [H, T, T] causal attention weights
    Tensor attn_o;          // [T, qd] concatenated head outputs
    Tensor f_in;            // [T, d] input to FFN block
    Tensor ffn_xn;          // [T, d]
    std::vector<float> ffn_ir;
    Tensor g, u, h_act;     // [T, d_ff]
  };
  std::vector<LayerTape> tape(mc.n_layers);

  Tensor x({t_len, d});
  for (std::size_t t = 0; t < t_len; ++t) {
    const auto id = static_cast<std::size_t>(seq[t]);
    CA_CHECK_LT(id, mc.vocab_size);
    std::memcpy(x.row(t), model_->embedding().row(id), d * sizeof(float));
  }

  for (std::size_t l = 0; l < mc.n_layers; ++l) {
    LayerTape& tp = tape[l];
    const LayerWeights& w = model_->layer(l);
    tp.a_in = x.Clone();
    tp.att_xn = Tensor({t_len, d});
    RmsNormForward(tp.a_in, w.rms_att.span(), tp.att_xn, tp.att_ir);

    tp.q_r = Tensor({t_len, qd});
    tp.k_r = Tensor({t_len, kd});
    tp.v = Tensor({t_len, kd});
    MatMulTransposedB(tp.att_xn, w.wq, tp.q_r);
    MatMulTransposedB(tp.att_xn, w.wk, tp.k_r);
    MatMulTransposedB(tp.att_xn, w.wv, tp.v);
    for (std::size_t t = 0; t < t_len; ++t) {
      rope.ApplyAllHeads({tp.q_r.row(t), qd}, t);
      rope.ApplyAllHeads({tp.k_r.row(t), kd}, t);
    }

    tp.probs = Tensor({n_heads, t_len, t_len});
    tp.attn_o = Tensor({t_len, qd});
    std::vector<float> scores(t_len);
    for (std::size_t h = 0; h < n_heads; ++h) {
      const std::size_t kvh = h / group;
      for (std::size_t t = 0; t < t_len; ++t) {
        const std::span<const float> qh{tp.q_r.row(t) + h * hd, hd};
        for (std::size_t j = 0; j <= t; ++j) {
          scores[j] = Dot(qh, {tp.k_r.row(j) + kvh * hd, hd}) * inv_sqrt_hd;
        }
        SoftmaxRow({scores.data(), t + 1});
        float* prow = &tp.probs.at3(h, t, 0);
        std::memcpy(prow, scores.data(), (t + 1) * sizeof(float));
        const std::span<float> oh{tp.attn_o.row(t) + h * hd, hd};
        for (std::size_t j = 0; j <= t; ++j) {
          Axpy(prow[j], {tp.v.row(j) + kvh * hd, hd}, oh);
        }
      }
    }

    Tensor attn_proj({t_len, d});
    MatMulTransposedB(tp.attn_o, w.wo, attn_proj);
    AddInPlace(x, attn_proj);

    tp.f_in = x.Clone();
    tp.ffn_xn = Tensor({t_len, d});
    RmsNormForward(tp.f_in, w.rms_ffn.span(), tp.ffn_xn, tp.ffn_ir);
    tp.g = Tensor({t_len, mc.d_ff});
    tp.u = Tensor({t_len, mc.d_ff});
    MatMulTransposedB(tp.ffn_xn, w.w1, tp.g);
    MatMulTransposedB(tp.ffn_xn, w.w3, tp.u);
    tp.h_act = tp.g.Clone();
    SiluInPlace(tp.h_act);
    MulInPlace(tp.h_act, tp.u);
    Tensor down({t_len, d});
    MatMulTransposedB(tp.h_act, w.w2, down);
    AddInPlace(x, down);
  }

  Tensor final_xn({t_len, d});
  std::vector<float> final_ir;
  RmsNormForward(x, model_->rms_final().span(), final_xn, final_ir);
  Tensor logits({t_len, mc.vocab_size});
  MatMulTransposedB(final_xn, model_->lm_head(), logits);

  // Softmax + cross-entropy; dlogits = p - onehot.
  double loss = 0.0;
  Tensor dlogits({t_len, mc.vocab_size});
  for (std::size_t t = 0; t < t_len; ++t) {
    const std::span<const float> row{logits.row(t), mc.vocab_size};
    const float lse = LogSumExp(row);
    const auto target = static_cast<std::size_t>(seq[t + 1]);
    CA_CHECK_LT(target, mc.vocab_size);
    loss += lse - row[target];
    float* dr = dlogits.row(t);
    for (std::size_t v2 = 0; v2 < mc.vocab_size; ++v2) {
      dr[v2] = std::exp(row[v2] - lse);
    }
    dr[target] -= 1.0f;
  }

  // --- backward ----------------------------------------------------------
  // lm head: logits = final_xn @ lm_head^T.
  Tensor d_final_xn({t_len, d});
  MatMul(dlogits, model_->lm_head(), d_final_xn);
  AccumulateWeightGrad(dlogits, final_xn, g_lm_head_);

  Tensor dx({t_len, d});
  {
    Tensor d_rms_w({d});
    RmsNormBackward(x, model_->rms_final().span(), final_ir, d_final_xn, dx, d_rms_w);
    AddInPlace(g_rms_final_, d_rms_w);
  }

  for (std::size_t li = mc.n_layers; li > 0; --li) {
    const std::size_t l = li - 1;
    LayerTape& tp = tape[l];
    const LayerWeights& w = model_->layer(l);
    LayerGrads& g = g_layers_[l];

    // FFN block: x_out = f_in + (silu(g)*u) @ w2^T.
    Tensor d_h(
        {t_len, mc.d_ff});
    MatMul(dx, w.w2, d_h);  // d(h_act)
    AccumulateWeightGrad(dx, tp.h_act, g.w2);
    // h_act = silu(g) * u.
    Tensor d_g({t_len, mc.d_ff});
    Tensor d_u({t_len, mc.d_ff});
    for (std::size_t i = 0; i < d_h.numel(); ++i) {
      const float gv = tp.g[i];
      const float sig = 1.0f / (1.0f + std::exp(-gv));
      const float silu = gv * sig;
      d_u[i] = d_h[i] * silu;
      d_g[i] = d_h[i] * tp.u[i] * (sig * (1.0f + gv * (1.0f - sig)));
    }
    Tensor d_ffn_xn({t_len, d});
    MatMul(d_g, w.w1, d_ffn_xn);
    AccumulateWeightGrad(d_g, tp.ffn_xn, g.w1);
    {
      Tensor tmp({t_len, d});
      MatMul(d_u, w.w3, tmp);
      AddInPlace(d_ffn_xn, tmp);
    }
    AccumulateWeightGrad(d_u, tp.ffn_xn, g.w3);
    // Residual: d(f_in) = dx (pass-through) + rmsnorm backward of d_ffn_xn.
    Tensor d_f_in = dx.Clone();
    {
      Tensor d_rms_w({d});
      RmsNormBackward(tp.f_in, w.rms_ffn.span(), tp.ffn_ir, d_ffn_xn, d_f_in, d_rms_w);
      AddInPlace(g.rms_ffn, d_rms_w);
    }

    // Attention block: f_in = a_in + attn_o @ wo^T.
    Tensor d_attn_o({t_len, qd});
    MatMul(d_f_in, w.wo, d_attn_o);
    AccumulateWeightGrad(d_f_in, tp.attn_o, g.wo);

    Tensor d_q_r({t_len, qd});
    Tensor d_k_r({t_len, kd});
    Tensor d_v({t_len, kd});
    std::vector<float> dp(t_len);
    std::vector<float> ds(t_len);
    for (std::size_t h = 0; h < n_heads; ++h) {
      const std::size_t kvh = h / group;
      for (std::size_t t = 0; t < t_len; ++t) {
        const float* prow = &tp.probs.at3(h, t, 0);
        const std::span<const float> doh{d_attn_o.row(t) + h * hd, hd};
        // dp and dv.
        for (std::size_t j = 0; j <= t; ++j) {
          dp[j] = Dot(doh, {tp.v.row(j) + kvh * hd, hd});
          Axpy(prow[j], doh, {d_v.row(j) + kvh * hd, hd});
        }
        // Softmax backward.
        float dot_pp = 0.0f;
        for (std::size_t j = 0; j <= t; ++j) {
          dot_pp += prow[j] * dp[j];
        }
        for (std::size_t j = 0; j <= t; ++j) {
          ds[j] = prow[j] * (dp[j] - dot_pp) * inv_sqrt_hd;
        }
        // Score backward into q_r / k_r.
        const std::span<const float> qh{tp.q_r.row(t) + h * hd, hd};
        const std::span<float> dqh{d_q_r.row(t) + h * hd, hd};
        for (std::size_t j = 0; j <= t; ++j) {
          Axpy(ds[j], {tp.k_r.row(j) + kvh * hd, hd}, dqh);
          Axpy(ds[j], qh, {d_k_r.row(j) + kvh * hd, hd});
        }
      }
    }
    // RoPE backward: rotation is orthonormal, so the gradient maps back
    // through the inverse rotation.
    for (std::size_t t = 0; t < t_len; ++t) {
      for (std::size_t off = 0; off < qd; off += hd) {
        rope.ApplyInverse({d_q_r.row(t) + off, hd}, t);
      }
      for (std::size_t off = 0; off < kd; off += hd) {
        rope.ApplyInverse({d_k_r.row(t) + off, hd}, t);
      }
    }

    Tensor d_att_xn({t_len, d});
    MatMul(d_q_r, w.wq, d_att_xn);
    AccumulateWeightGrad(d_q_r, tp.att_xn, g.wq);
    {
      Tensor tmp({t_len, d});
      MatMul(d_k_r, w.wk, tmp);
      AddInPlace(d_att_xn, tmp);
      MatMul(d_v, w.wv, tmp);
      AddInPlace(d_att_xn, tmp);
    }
    AccumulateWeightGrad(d_k_r, tp.att_xn, g.wk);
    AccumulateWeightGrad(d_v, tp.att_xn, g.wv);

    Tensor d_a_in = d_f_in.Clone();
    {
      Tensor d_rms_w({d});
      RmsNormBackward(tp.a_in, w.rms_att.span(), tp.att_ir, d_att_xn, d_a_in, d_rms_w);
      AddInPlace(g.rms_att, d_rms_w);
    }
    dx = std::move(d_a_in);
  }

  // Embedding gradient.
  for (std::size_t t = 0; t < t_len; ++t) {
    const auto id = static_cast<std::size_t>(seq[t]);
    Axpy(1.0f, {dx.row(t), d}, {g_embedding_.row(id), d});
  }

  return loss;
}

void Trainer::AdamUpdate(double scale) {
  const auto params = Parameters();
  const auto grads = Gradients();
  // Scale gradients to the mean and clip by global norm.
  double norm_sq = 0.0;
  for (Tensor* g : grads) {
    for (std::size_t i = 0; i < g->numel(); ++i) {
      (*g)[i] = static_cast<float>((*g)[i] * scale);
      norm_sq += static_cast<double>((*g)[i]) * (*g)[i];
    }
  }
  float clip_factor = 1.0f;
  if (config_.grad_clip > 0.0f) {
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.grad_clip) {
      clip_factor = static_cast<float>(config_.grad_clip / norm);
    }
  }

  ++adam_t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(adam_t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(adam_t_));
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    Tensor& g = *grads[p];
    Tensor& m = adam_m_[p];
    Tensor& v = adam_v_[p];
    for (std::size_t i = 0; i < w.numel(); ++i) {
      const float gi = g[i] * clip_factor;
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * gi;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * gi * gi;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.adam_eps);
    }
  }
}

double Trainer::Step(const std::vector<std::vector<TokenId>>& batch) {
  CA_CHECK(!batch.empty());
  ZeroGrads();
  double loss = 0.0;
  std::size_t tokens = 0;
  for (const auto& seq : batch) {
    loss += ForwardBackward(seq);
    tokens += seq.size() - 1;
  }
  AdamUpdate(1.0 / static_cast<double>(tokens));
  return loss / static_cast<double>(tokens);
}

double Trainer::EvalLoss(const std::vector<std::vector<TokenId>>& batch) {
  double loss = 0.0;
  std::size_t tokens = 0;
  for (const auto& seq : batch) {
    CA_CHECK_GE(seq.size(), 2U);
    KvCache cache = model_->MakeCache(PeMode::kDecoupled);
    const Tensor logits = model_->Forward(std::span<const TokenId>(seq.data(), seq.size() - 1),
                                          cache);
    for (std::size_t t = 0; t + 1 < seq.size(); ++t) {
      const std::span<const float> row{logits.row(t), model_->config().vocab_size};
      loss += LogSumExp(row) - row[static_cast<std::size_t>(seq[t + 1])];
    }
    tokens += seq.size() - 1;
  }
  return loss / static_cast<double>(tokens);
}

double Trainer::Train(const MarkovCorpus& corpus) {
  double tail_loss = 0.0;
  std::size_t tail_steps = 0;
  const std::size_t tail_start = config_.steps - std::max<std::size_t>(1, config_.steps / 10);
  for (std::size_t step = 0; step < config_.steps; ++step) {
    std::vector<std::vector<TokenId>> batch;
    batch.reserve(config_.batch_size);
    for (std::size_t b = 0; b < config_.batch_size; ++b) {
      batch.push_back(corpus.Sample(config_.seq_len + 1, batch_rng_));
    }
    const double loss = Step(batch);
    if (step >= tail_start) {
      tail_loss += loss;
      ++tail_steps;
    }
  }
  return tail_loss / static_cast<double>(tail_steps);
}

Transformer TrainMiniLm(const ModelConfig& config, const MarkovCorpus& corpus,
                        const TrainConfig& train_config, std::uint64_t weight_seed) {
  Transformer model(config, weight_seed);
  Trainer trainer(&model, train_config);
  (void)trainer.Train(corpus);
  return model;
}

}  // namespace ca
