// Canonical trained mini language model shared by the fidelity tests and
// the Table-1/2 benches. Trains once per process on first use (~20 s) on an
// order-2 Markov corpus; see trainer.h for why a *trained* model is needed
// to reproduce the paper's CA ~= TT >> NKVT result.
#ifndef CA_TRAIN_TRAINED_LM_H_
#define CA_TRAIN_TRAINED_LM_H_

#include "src/model/transformer.h"
#include "src/train/markov_data.h"

namespace ca {

struct TrainedLm {
  ModelConfig config;
  MarkovCorpus corpus;
  Transformer model;
  double train_loss = 0.0;  // tail-mean training loss (nats/token)
};

// The canonical setup: vocab 16, d_model 64, 2 layers, GQA 2, context 128;
// Markov(branching 4). Deterministic.
const TrainedLm& GetTrainedLm();

}  // namespace ca

#endif  // CA_TRAIN_TRAINED_LM_H_
