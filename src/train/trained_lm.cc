#include "src/train/trained_lm.h"

#include <cstdlib>

#include "src/common/logging.h"
#include "src/model/checkpoint.h"
#include "src/train/trainer.h"

namespace ca {

namespace {

// Trained weights are cached on disk so each process (test binary, bench
// binary) does not retrain the same deterministic model. Delete the file to
// force retraining.
std::string CachePath() {
  const char* override_path = std::getenv("CA_TRAINED_LM_CACHE");
  return override_path != nullptr ? override_path : "/tmp/ca_trained_mini_lm_v1.ckpt";
}

ModelConfig CanonicalConfig() {
  ModelConfig config;
  config.name = "mini-trained";
  config.vocab_size = 16;
  config.d_model = 64;
  config.n_layers = 2;
  config.n_heads = 4;
  config.n_kv_heads = 2;
  config.d_ff = 128;
  config.context_window = 128;
  return config;
}

}  // namespace

const TrainedLm& GetTrainedLm() {
  static const TrainedLm* instance = [] {
    const ModelConfig config = CanonicalConfig();
    MarkovCorpus corpus(config.vocab_size, 4, 21);
    Transformer model(config, 31);
    const std::string cache = CachePath();
    if (LoadCheckpoint(model, cache).ok()) {
      // Re-measure the loss on held-out samples (the checkpoint stores only
      // weights).
      TrainConfig eval_config;
      Trainer eval(&model, eval_config);
      Rng rng(4096);
      std::vector<std::vector<TokenId>> held_out;
      for (int i = 0; i < 8; ++i) {
        held_out.push_back(corpus.Sample(49, rng));
      }
      const double loss = eval.EvalLoss(held_out);
      CA_LOG(Info) << "loaded canonical mini LM from " << cache << " (eval loss " << loss
                   << ")";
      return new TrainedLm{config, std::move(corpus), std::move(model), loss};  // NOLINT(naked-new): leaky singleton
    }
    TrainConfig tc;
    tc.steps = 350;
    tc.batch_size = 8;
    tc.seq_len = 48;
    tc.lr = 3e-3f;
    CA_LOG(Info) << "training canonical mini LM (" << tc.steps << " steps)...";
    Trainer trainer(&model, tc);
    const double loss = trainer.Train(corpus);
    CA_LOG(Info) << "canonical mini LM trained; tail loss " << loss << " nats/token";
    const Status saved = SaveCheckpoint(model, cache);
    if (!saved.ok()) {
      CA_LOG(Warn) << "could not cache trained weights: " << saved;
    }
    return new TrainedLm{config, std::move(corpus), std::move(model), loss};  // NOLINT(naked-new): leaky singleton
  }();
  return *instance;
}

}  // namespace ca
