// Synthetic training corpus with *local* statistical structure: an order-2
// Markov chain over the token alphabet, with sparse high-probability
// transitions. A model trained on it learns recency-local attention —
// mirroring the locality of natural language that makes the paper's KV
// truncation benign — and its ground-truth entropy gives a reference floor
// for perplexity measurements (Table 1 proxy).
#ifndef CA_TRAIN_MARKOV_DATA_H_
#define CA_TRAIN_MARKOV_DATA_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/model/transformer.h"

namespace ca {

class MarkovCorpus {
 public:
  // Builds a random order-2 chain over `vocab` tokens; each (prev2, prev1)
  // state has `branching` possible successors with Zipf-ish weights.
  MarkovCorpus(std::size_t vocab, std::size_t branching, std::uint64_t seed);

  std::size_t vocab() const { return vocab_; }

  // Samples a fresh sequence of `length` tokens.
  std::vector<TokenId> Sample(std::size_t length, Rng& rng) const;

  // Ground-truth probability of `next` given the two preceding tokens.
  double TransitionProb(TokenId prev2, TokenId prev1, TokenId next) const;

  // Entropy (nats/token) of the chain under its stationary behaviour,
  // estimated by sampling. exp(entropy) lower-bounds any model's PPL.
  double EstimateEntropy(std::size_t sample_tokens, Rng& rng) const;

  // Most likely successor of a state (the Bayes-optimal greedy prediction).
  TokenId BestNext(TokenId prev2, TokenId prev1) const;

 private:
  std::size_t StateIndex(TokenId prev2, TokenId prev1) const {
    return static_cast<std::size_t>(prev2) * vocab_ + static_cast<std::size_t>(prev1);
  }

  std::size_t vocab_;
  std::size_t branching_;
  // Per state: successor ids and cumulative probabilities.
  std::vector<std::vector<TokenId>> successors_;
  std::vector<std::vector<double>> cum_probs_;
};

}  // namespace ca

#endif  // CA_TRAIN_MARKOV_DATA_H_
