// Training substrate: manual backpropagation + Adam for the mini
// transformer.
//
// The paper evaluates positional-encoding fidelity (Tables 1-2) on
// pretrained LLaMA checkpoints, which are not available here. This trainer
// is the substitution: it fits the mini model on a corpus with local
// statistical structure (MarkovCorpus) so that — like a real LM — its
// attention is recency-structured, making KV-cache truncation benign (CA ~=
// TT) while naive truncation of position-embedded caches (NKVT) is
// catastrophic.
//
// Implementation notes: full-sequence forward with an activation tape, exact
// gradients for rmsnorm / RoPE / causal softmax attention (incl. GQA) /
// SwiGLU, verified against finite differences in trainer_test.cc.
#ifndef CA_TRAIN_TRAINER_H_
#define CA_TRAIN_TRAINER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/model/transformer.h"
#include "src/train/markov_data.h"

namespace ca {

struct TrainConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float adam_eps = 1e-8f;
  float grad_clip = 1.0f;  // global-norm clip; 0 disables
  std::size_t batch_size = 8;
  std::size_t seq_len = 48;  // tokens per training sequence
  std::size_t steps = 300;
  std::uint64_t data_seed = 1234;
};

class Trainer {
 public:
  Trainer(Transformer* model, TrainConfig config);

  // One optimisation step on `batch` (each sequence seq_len+1 tokens: the
  // first seq_len are inputs, the last seq_len are targets). Returns the
  // mean loss in nats/token.
  double Step(const std::vector<std::vector<TokenId>>& batch);

  // Loss only, no parameter update.
  double EvalLoss(const std::vector<std::vector<TokenId>>& batch);

  // Convenience loop: samples batches from `corpus` and trains for
  // config.steps steps. Returns the mean loss over the final 10% of steps.
  double Train(const MarkovCorpus& corpus);

  // Accumulates gradients for one sequence into the internal buffers and
  // returns its summed (not mean) loss. Exposed for the gradient-check
  // test.
  double ForwardBackward(std::span<const TokenId> seq);
  void ZeroGrads();

  // Flat views over parameters and gradients (same order), for tests.
  std::vector<Tensor*> Parameters();
  std::vector<Tensor*> Gradients();

 private:
  struct LayerGrads {
    Tensor rms_att, wq, wk, wv, wo, rms_ffn, w1, w2, w3;
  };

  void AdamUpdate(double scale);

  Transformer* model_;
  TrainConfig config_;
  Rng batch_rng_;

  // Gradient buffers mirroring the model weights.
  Tensor g_embedding_, g_lm_head_, g_rms_final_;
  std::vector<LayerGrads> g_layers_;
  // Adam moments, in Parameters() order.
  std::vector<Tensor> adam_m_, adam_v_;
  std::uint64_t adam_t_ = 0;
};

// Trains a fresh model of `config` on a MarkovCorpus and returns it.
// Convenience for tests/benches that need "a trained mini LM".
Transformer TrainMiniLm(const ModelConfig& config, const MarkovCorpus& corpus,
                        const TrainConfig& train_config, std::uint64_t weight_seed);

}  // namespace ca

#endif  // CA_TRAIN_TRAINER_H_
