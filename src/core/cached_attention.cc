#include "src/core/cached_attention.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace ca {

namespace {

// Wall-clock timestamp in SimTime units (ns) for TTL / recency bookkeeping
// on the real path.
SimTime WallNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

CachedAttentionEngine::CachedAttentionEngine(const Transformer* model, EngineOptions options)
    : model_(model), options_(std::move(options)), store_([this] {
        StoreConfig c = options_.store;
        c.real_payloads = true;
        return c;
      }()) {
  CA_CHECK(model_ != nullptr);
  if (options_.async_save) {
    write_stream_ = std::make_unique<ThreadPool>(1);
  }
}

CachedAttentionEngine::~CachedAttentionEngine() { Flush(); }

void CachedAttentionEngine::Flush() {
  if (write_stream_ != nullptr) {
    write_stream_->Wait();
  }
}

void CachedAttentionEngine::SetQueueHint(std::vector<SessionId> upcoming) {
  MutexLock lock(mutex_);
  queue_hint_ = std::move(upcoming);
}

SchedulerHints CachedAttentionEngine::CurrentHintsLocked() const {
  SchedulerHints hints;
  for (std::size_t i = 0; i < queue_hint_.size(); ++i) {
    hints.next_use_index.emplace(queue_hint_[i], i);
  }
  return hints;
}

void CachedAttentionEngine::WaitForPendingSave(SessionId session) {
  MutexLock lock(mutex_);
  save_done_.Wait(mutex_, [&] {
    mutex_.AssertHeld();
    return pending_saves_.count(session) == 0;
  });
}

std::vector<TokenId> CachedAttentionEngine::SessionHistory(SessionId session) const {
  MutexLock lock(mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? std::vector<TokenId>{} : it->second.history;
}

void CachedAttentionEngine::EndSession(SessionId session) {
  WaitForPendingSave(session);
  MutexLock lock(mutex_);
  sessions_.erase(session);
  store_.Remove(session);
}

Status CachedAttentionEngine::PrepareCache(SessionId session, SessionState& state,
                                           std::size_t incoming_tokens, KvCache& cache,
                                           TurnResult& result) {
  const std::size_t window = model_->config().context_window;
  if (incoming_tokens >= window) {
    return InvalidArgumentError("turn input (" + std::to_string(incoming_tokens) +
                                " tokens) does not fit the context window");
  }

  // --- context-window management (§3.4) -------------------------------
  std::size_t drop = 0;
  if (state.history.size() + incoming_tokens > window) {
    result.truncated = true;
    // Drop the configured fraction of the window, or more if the new input
    // still would not fit.
    drop = static_cast<std::size_t>(options_.truncation_ratio * static_cast<double>(window));
    const std::size_t overflow = state.history.size() + incoming_tokens - window;
    drop = std::min(std::max(drop, overflow), state.history.size());
  }

  const std::size_t pre_drop_history = state.history.size();
  bool recompute = !options_.reuse_kv;
  bool cache_loaded = false;

  if (options_.reuse_kv) {
    if (result.truncated && options_.overflow_policy == OverflowPolicy::kInvalidate) {
      WaitForPendingSave(session);
      MutexLock lock(mutex_);
      store_.Remove(session);
    }
    if (result.truncated && options_.overflow_policy == OverflowPolicy::kTokenTruncate) {
      // TT: truncation operates on token text; the stored KV (embedded at
      // old positions in a conventional engine) is unusable — recompute.
      recompute = true;
    } else {
      WaitForPendingSave(session);
      std::optional<KvRecordInfo> info;
      {
        MutexLock lock(mutex_);
        info = store_.Access(session, WallNow());
      }
      if (info.has_value()) {
        // Miss-equivalent degradation (DESIGN.md §10): the KV cache is soft
        // state, so a fault anywhere on the load path — tier I/O failure,
        // checksum mismatch, undeserializable payload — costs a recompute of
        // the history, never the turn.
        bool payload_ok = false;
        std::vector<std::uint8_t> payload;
        {
          MutexLock lock(mutex_);
          auto read = store_.ReadPayload(session);
          if (read.ok()) {
            payload = std::move(*read);
            payload_ok = true;
          } else {
            CA_LOG(Warn) << "session " << session
                         << " KV load degraded to a miss: " << read.status();
          }
        }
        std::optional<KvCache> loaded_cache;
        if (payload_ok) {
          auto loaded = KvCache::Deserialize(model_->config(), payload);
          if (loaded.ok()) {
            loaded_cache = std::move(*loaded);
          } else {
            // The bytes came back checksum-clean but do not parse: a
            // poisoned payload. Drop it so the miss is consistent.
            CA_LOG(Warn) << "session " << session
                         << " KV payload undeserializable, dropped: " << loaded.status();
            MutexLock lock(mutex_);
            store_.Remove(session);
          }
        }
        if (!loaded_cache.has_value()) {
          ++stats_.cache_load_faults;
          recompute = true;
        } else if (loaded_cache->seq_len() != pre_drop_history) {
          CA_LOG(Warn) << "session " << session << " cache holds " << loaded_cache->seq_len()
                       << " tokens, history is " << pre_drop_history << "; recomputing";
          recompute = true;
        } else {
          cache = std::move(*loaded_cache);
          // KV cache truncation (valid for decoupled PE; deliberately
          // corrupting for the coupled-PE NKVT baseline).
          if (drop > 0) {
            cache.TruncateFront(drop);
          }
          cache_loaded = true;
          result.cache_hit = true;
          result.hit_tier = info->tier;
        }
      } else {
        recompute = true;
      }
    }
  }

  if (drop > 0) {
    state.history.erase(state.history.begin(),
                        state.history.begin() + static_cast<std::ptrdiff_t>(drop));
  }

  if (cache_loaded) {
    result.reused_tokens = cache.seq_len();
    return Status::Ok();
  }

  // Miss / recompute path: rebuild the history KV from the token text.
  (void)recompute;
  CA_CHECK_EQ(cache.seq_len(), 0U);
  if (!state.history.empty()) {
    (void)model_->Forward(state.history, cache);
    result.computed_tokens += state.history.size();
  }
  return Status::Ok();
}

Result<Tensor> CachedAttentionEngine::ForwardTurn(SessionId session,
                                                  std::span<const TokenId> tokens) {
  CA_CHECK(!tokens.empty());
  SessionState* state_ptr;
  {
    // Map access under the lock; the per-session state stays valid (node
    // stability) and is only mutated by this serving thread.
    MutexLock lock(mutex_);
    state_ptr = &sessions_[session];
  }
  SessionState& state = *state_ptr;
  TurnResult result;
  const auto start = std::chrono::steady_clock::now();

  KvCache cache = model_->MakeCache(pe_mode());
  CA_RETURN_IF_ERROR(PrepareCache(session, state, tokens.size(), cache, result));

  Tensor logits = model_->Forward(tokens, cache);
  result.computed_tokens += tokens.size();
  result.prompt_tokens = state.history.size() + tokens.size();
  result.prefill_seconds = SecondsSince(start);

  state.history.insert(state.history.end(), tokens.begin(), tokens.end());
  if (options_.reuse_kv) {
    SaveCache(session, cache);
  }

  stats_.turns += 1;
  stats_.prompt_tokens += result.prompt_tokens;
  stats_.computed_tokens += result.computed_tokens;
  stats_.reused_tokens += result.reused_tokens;
  stats_.truncations += result.truncated ? 1 : 0;
  stats_.prefill_seconds += result.prefill_seconds;
  return logits;
}

Result<TurnResult> CachedAttentionEngine::Converse(SessionId session,
                                                   std::span<const TokenId> user_tokens,
                                                   std::size_t max_reply_tokens) {
  CA_CHECK(!user_tokens.empty());
  SessionState* state_ptr;
  {
    MutexLock lock(mutex_);
    state_ptr = &sessions_[session];
  }
  SessionState& state = *state_ptr;
  TurnResult result;
  const auto start = std::chrono::steady_clock::now();

  KvCache cache = model_->MakeCache(pe_mode());
  CA_RETURN_IF_ERROR(PrepareCache(session, state, user_tokens.size(), cache, result));

  // Importance scoring for the kImportance compression policy accumulates
  // the attention mass every cached token receives during this turn.
  AttentionMassAccumulator mass;
  AttentionObserver* observer =
      options_.compression.policy == CompressionPolicy::kImportance ? &mass : nullptr;

  // Prefill only the new input; the history is already in the cache.
  Tensor logits = model_->Forward(user_tokens, cache, observer);
  result.computed_tokens += user_tokens.size();
  result.prompt_tokens = state.history.size() + user_tokens.size();
  result.prefill_seconds = SecondsSince(start);

  // Greedy decode, capped by the remaining window.
  const std::size_t window = model_->config().context_window;
  const std::size_t room = window - cache.seq_len();
  const std::size_t budget = std::min(max_reply_tokens, room);
  TokenId next = model_->Argmax(logits, logits.dim(0) - 1);
  for (std::size_t i = 0; i < budget; ++i) {
    result.reply.push_back(next);
    if (i + 1 == budget) {
      break;  // last token needs no further forward
    }
    const TokenId tok[] = {next};
    const Tensor step = model_->Forward(tok, cache, observer);
    next = model_->Argmax(step, 0);
  }

  // The reply's final token was sampled but (deliberately) not forwarded, so
  // the cache covers history + input + reply[0..n-2]. Forward it now so the
  // saved KV matches the full visible history.
  if (!result.reply.empty() && cache.seq_len() < window) {
    const TokenId tok[] = {result.reply.back()};
    (void)model_->Forward(tok, cache, observer);
  } else if (!result.reply.empty()) {
    // No room to embed the last reply token; drop it from the visible
    // history so text and KV stay aligned.
    result.reply.pop_back();
  }

  state.history.insert(state.history.end(), user_tokens.begin(), user_tokens.end());
  state.history.insert(state.history.end(), result.reply.begin(), result.reply.end());
  CA_CHECK_EQ(state.history.size(), cache.seq_len());

  if (options_.reuse_kv) {
    result.compressed_tokens = MaybeCompress(state, cache, mass.mass());
    SaveCache(session, cache);
  }

  stats_.turns += 1;
  stats_.prompt_tokens += result.prompt_tokens;
  stats_.computed_tokens += result.computed_tokens;
  stats_.reused_tokens += result.reused_tokens;
  stats_.truncations += result.truncated ? 1 : 0;
  stats_.compressed_tokens += result.compressed_tokens;
  stats_.prefill_seconds += result.prefill_seconds;
  return result;
}

std::size_t CachedAttentionEngine::MaybeCompress(SessionState& state, KvCache& cache,
                                                 std::span<const float> importance) {
  if (options_.compression.policy == CompressionPolicy::kNone ||
      cache.pe_mode() != PeMode::kDecoupled) {
    return 0;
  }
  const auto discard =
      BuildTokenDiscardList(options_.compression, cache.seq_len(), importance);
  if (discard.empty()) {
    return 0;
  }
  cache.DiscardTokens(discard);
  // Keep the visible token history aligned with the cache: drop the same
  // positions (discard indices are strictly increasing).
  std::vector<TokenId> kept;
  kept.reserve(state.history.size() - discard.size());
  std::size_t next_discard = 0;
  for (std::size_t i = 0; i < state.history.size(); ++i) {
    if (next_discard < discard.size() && discard[next_discard] == i) {
      ++next_discard;
      continue;
    }
    kept.push_back(state.history[i]);
  }
  state.history = std::move(kept);
  CA_CHECK_EQ(state.history.size(), cache.seq_len());
  return discard.size();
}

void CachedAttentionEngine::SaveCache(SessionId session, const KvCache& cache) {
  if (cache.seq_len() == 0) {
    return;
  }
  // Serialize now: the cache buffer is only valid during this turn.
  std::vector<std::uint8_t> payload = cache.Serialize();
  const std::uint64_t tokens = cache.seq_len();
  // Invoked with mutex_ held (both below call sites lock first).
  auto do_put = [this, session, tokens](const std::vector<std::uint8_t>& bytes) {
    mutex_.AssertHeld();
    const SchedulerHints hints = CurrentHintsLocked();
    const Status s = store_.Put(session, bytes.size(), tokens, bytes, WallNow(), hints);
    if (!s.ok()) {
      CA_LOG(Debug) << "KV save for session " << session << " dropped: " << s;
    }
  };
  if (write_stream_ == nullptr) {
    MutexLock lock(mutex_);
    do_put(payload);
    return;
  }
  // Asynchronous write stream (§3.2.2): the save overlaps the caller's next
  // work; readers of this session block in WaitForPendingSave until it
  // lands.
  {
    MutexLock lock(mutex_);
    pending_saves_.insert(session);
  }
  write_stream_->Submit([this, session, do_put, payload = std::move(payload)] {
    {
      MutexLock lock(mutex_);
      do_put(payload);
      pending_saves_.erase(session);
    }
    save_done_.NotifyAll();
  });
}

}  // namespace ca
