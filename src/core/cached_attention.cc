#include "src/core/cached_attention.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"
#include "src/store/prefetcher.h"

namespace ca {

namespace {

// Wall-clock timestamp in SimTime units (ns) for TTL / recency bookkeeping
// on the real path. Uses the observability clock so engine timestamps and
// trace spans share one timeline (and so src/core stays clean under the
// no-raw-clock lint rule).
SimTime WallNow() { return static_cast<SimTime>(TraceNowNs()); }

double SecondsSince(std::uint64_t start_ns) {
  return static_cast<double>(TraceNowNs() - start_ns) * 1e-9;
}

// Adapters marrying the model-layer serialisation cursors to the store's
// zero-copy payload protocol. The model cannot depend on the store (layering
// DAG) and vice versa, so the glue lives here in core.
class SerializerSource final : public PayloadSource {
 public:
  explicit SerializerSource(KvCache::Serializer& serializer) : serializer_(serializer) {}

  std::uint64_t size() const override { return serializer_.size(); }
  void Reset() override { serializer_.Reset(); }
  void Fill(std::span<std::uint8_t> dest) override { serializer_.Fill(dest); }

 private:
  KvCache::Serializer& serializer_;
};

class DeserializerSink final : public PayloadSink {
 public:
  explicit DeserializerSink(KvCache::StreamingDeserializer& deserializer)
      : deserializer_(deserializer) {}

  void Reset() override { deserializer_.Reset(); }
  void Consume(std::span<const std::uint8_t> chunk) override { deserializer_.Consume(chunk); }

 private:
  KvCache::StreamingDeserializer& deserializer_;
};

// Token-major counterparts (prefix sharing, DESIGN.md §17).
class TokenMajorSource final : public PayloadSource {
 public:
  explicit TokenMajorSource(KvCache::TokenMajorSerializer& serializer)
      : serializer_(&serializer) {}

  std::uint64_t size() const override { return serializer_->size(); }
  void Reset() override { serializer_->Reset(); }
  void Fill(std::span<std::uint8_t> dest) override { serializer_->Fill(dest); }

 private:
  KvCache::TokenMajorSerializer* serializer_;
};

// ChunkedPayloadSource over the live cache: PutShared pulls exactly the
// token ranges it misses on, each served by a fresh TokenMajorSerializer
// cursor — dedup hits cost no serialization at all.
class CacheChunkSource final : public ChunkedPayloadSource {
 public:
  explicit CacheChunkSource(const KvCache& cache) : cache_(&cache) {}

  std::uint64_t total_tokens() const override { return cache_->seq_len(); }
  std::uint64_t bytes_per_token() const override { return cache_->token_major_bytes_per_token(); }
  PayloadSource& Range(std::uint64_t token_begin, std::uint64_t token_end) override {
    serializer_.emplace(*cache_, static_cast<std::size_t>(token_begin),
                        static_cast<std::size_t>(token_end));
    source_.emplace(*serializer_);
    return *source_;
  }

 private:
  const KvCache* cache_;
  std::optional<KvCache::TokenMajorSerializer> serializer_;
  std::optional<TokenMajorSource> source_;
};

class TokenMajorSink final : public PayloadSink {
 public:
  explicit TokenMajorSink(KvCache::TokenMajorDeserializer& deserializer)
      : deserializer_(&deserializer) {}

  void Reset() override { deserializer_->Reset(); }
  void Consume(std::span<const std::uint8_t> chunk) override { deserializer_->Consume(chunk); }

 private:
  KvCache::TokenMajorDeserializer* deserializer_;
};

// --- durable user-meta blob ---------------------------------------------
//
// v1 (pre-sharing engines): the raw host-endian TokenId history, nothing
// else. v2 (written only when prefix sharing is configured) prepends a
// two-byte header so the purity bit survives a restart:
//   [u8 version=2][u8 kv_pure][raw TokenId history bytes]
// Decoding sniffs the version by exact length against the record's token
// count — the two layouts differ by exactly 2 bytes, so a blob can never
// satisfy both checks.
constexpr std::uint8_t kHistoryMetaV2 = 2;

std::vector<std::uint8_t> EncodeHistoryMetaV2(std::span<const TokenId> history, bool kv_pure) {
  std::vector<std::uint8_t> blob(2 + history.size() * sizeof(TokenId));
  blob[0] = kHistoryMetaV2;
  blob[1] = kv_pure ? 1 : 0;
  std::memcpy(blob.data() + 2, history.data(), history.size() * sizeof(TokenId));
  return blob;
}

struct DecodedHistoryMeta {
  std::vector<TokenId> history;
  bool kv_pure = false;
};

std::optional<DecodedHistoryMeta> DecodeHistoryMeta(const std::vector<std::uint8_t>& meta,
                                                    std::uint64_t token_count) {
  if (meta.empty() || token_count == 0) {
    return std::nullopt;
  }
  DecodedHistoryMeta out;
  const std::uint64_t history_bytes = token_count * sizeof(TokenId);
  if (meta.size() == 2 + history_bytes && meta[0] == kHistoryMetaV2 && meta[1] <= 1) {
    out.kv_pure = meta[1] == 1;
    out.history.resize(token_count);
    std::memcpy(out.history.data(), meta.data() + 2, history_bytes);
    return out;
  }
  if (meta.size() == history_bytes) {
    // v1: no purity bit persisted; assume impure so the restored session
    // never feeds unverifiable rows into the shared prefix index (the next
    // full recompute restores purity and with it dedup eligibility).
    out.kv_pure = false;
    out.history.resize(token_count);
    std::memcpy(out.history.data(), meta.data(), history_bytes);
    return out;
  }
  return std::nullopt;
}

// The engine always stores real payloads: capacity-only mode exists for the
// simulator, not the execution path.
StoreConfig PatchedStoreConfig(const EngineOptions& options) {
  StoreConfig c = options.store;
  c.real_payloads = true;
  return c;
}

}  // namespace

CachedAttentionEngine::CachedAttentionEngine(const Transformer* model, EngineOptions options)
    : CachedAttentionEngine(StoreTag(), model, options,
                            AttentionStore(PatchedStoreConfig(options))) {}

Result<std::unique_ptr<CachedAttentionEngine>> CachedAttentionEngine::Create(
    const Transformer* model, EngineOptions options) {
  CA_ASSIGN_OR_RETURN(AttentionStore store, AttentionStore::Open(PatchedStoreConfig(options)));
  auto engine = std::make_unique<CachedAttentionEngine>(StoreTag(), model, std::move(options),
                                                        std::move(store));
  CA_RETURN_IF_ERROR(engine->RestoreSessions());
  return engine;
}

CachedAttentionEngine::CachedAttentionEngine(StoreTag, const Transformer* model,
                                             EngineOptions options, AttentionStore store)
    : model_(model), options_(std::move(options)), store_(std::move(store)) {
  CA_CHECK(model_ != nullptr);
  auto& registry = MetricsRegistry::Global();
  turns_counter_ = &registry.GetCounter("engine.turns");
  load_fault_counter_ = &registry.GetCounter("engine.cache_load_faults");
  prefill_seconds_hist_ = &registry.GetHistogram("engine.prefill_seconds");
  if (options_.async_save) {
    write_stream_ = std::make_unique<ThreadPool>(1);
    write_stream_->Submit([] { Tracer::Get().SetThreadName("kv-save-stream"); });
  }
}

CachedAttentionEngine::~CachedAttentionEngine() { Flush(); }

Status CachedAttentionEngine::RestoreSessions() {
  if (!options_.store.durable) {
    return Status::Ok();
  }
  MutexLock lock(mutex_);
  std::size_t restored = 0;
  std::size_t dropped = 0;
  // Recovery only resurrects the disk tier (memory tiers died with the old
  // process), so every recovered record lives there.
  for (const SessionId id : store_.SessionsInTier(Tier::kDisk)) {
    const auto info = store_.GetInfo(id);
    CA_CHECK(info.has_value());
    const std::vector<std::uint8_t>* meta = store_.UserMeta(id);
    std::optional<DecodedHistoryMeta> decoded =
        meta != nullptr ? DecodeHistoryMeta(*meta, info->token_count) : std::nullopt;
    if (!decoded.has_value()) {
      // KV bytes without a believable token history cannot serve a turn
      // (PrepareCache needs the text to detect length mismatches). Soft
      // state: drop to a clean miss.
      store_.Remove(id);
      ++dropped;
      continue;
    }
    SessionState& state = sessions_[id];
    state.history = std::move(decoded->history);
    state.kv_pure = decoded->kv_pure;
    ++restored;
  }
  if (restored > 0 || dropped > 0) {
    CA_LOG(Info) << "restored " << restored << " session(s) from the durable store"
                 << (dropped > 0 ? " (" + std::to_string(dropped) + " dropped: no usable history)"
                                 : "");
  }
  return Status::Ok();
}

void CachedAttentionEngine::Flush() {
  if (write_stream_ != nullptr) {
    write_stream_->Wait();
  }
}

void CachedAttentionEngine::SetQueueHint(std::vector<SessionId> upcoming) {
  MutexLock lock(mutex_);
  queue_hint_ = std::move(upcoming);
}

SchedulerHints CachedAttentionEngine::CurrentHintsLocked() const {
  SchedulerHints hints;
  for (std::size_t i = 0; i < queue_hint_.size(); ++i) {
    hints.next_use_index.emplace(queue_hint_[i], i);
  }
  return hints;
}

void CachedAttentionEngine::WaitForPendingSave(SessionId session) {
  MutexLock lock(mutex_);
  save_done_.Wait(mutex_, [&] {
    mutex_.AssertHeld();
    return pending_saves_.count(session) == 0;
  });
}

std::vector<TokenId> CachedAttentionEngine::SessionHistory(SessionId session) const {
  MutexLock lock(mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? std::vector<TokenId>{} : it->second.history;
}

void CachedAttentionEngine::EndSession(SessionId session) {
  WaitForPendingSave(session);
  MutexLock lock(mutex_);
  sessions_.erase(session);
  store_.Remove(session);
}

std::vector<SessionId> CachedAttentionEngine::LiveSessions() const {
  MutexLock lock(mutex_);
  std::vector<SessionId> out;
  out.reserve(sessions_.size());
  for (const auto& [id, state] : sessions_) {
    out.push_back(id);
  }
  return out;
}

Result<SessionSnapshot> CachedAttentionEngine::ExportSession(SessionId session) {
  CA_TRACE_SPAN("engine.export_session", "session", session);
  // Async-save fence: an in-flight save on the write stream holds the
  // turn's payload + history, and ExportRecord would otherwise snapshot the
  // PREVIOUS turn's record while the history below is already current — a
  // token_count/history mismatch the importer would reject (and rightly
  // so). Draining first makes the record and the history the same turn's.
  // The store lookup cannot race a re-queued save either: the router's
  // drain protocol stops submissions before exporting.
  WaitForPendingSave(session);
  MutexLock lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return NotFoundError("session " + std::to_string(session) + " is not live");
  }
  SessionSnapshot snap;
  snap.session = session;
  snap.history = it->second.history;
  snap.kv_pure = it->second.kv_pure;
  auto exported = store_.ExportRecord(session);
  if (exported.ok()) {
    snap.record = *std::move(exported);
  } else {
    // The payload is unreadable (fault) or was never stored (dropped save):
    // migrate the history alone and let the importer recompute — the same
    // degradation as a cache-load fault, so replies stay identical.
    CA_LOG(Warn) << "session " << session
                 << " migrates history-only: " << exported.status();
  }
  return snap;
}

Status CachedAttentionEngine::ImportSession(SessionSnapshot snapshot) {
  CA_TRACE_SPAN("engine.import_session", "session", snapshot.session);
  if (snapshot.session == kInvalidSession || snapshot.history.empty()) {
    return InvalidArgumentError("session snapshot is empty");
  }
  MutexLock lock(mutex_);
  if (sessions_.find(snapshot.session) != sessions_.end()) {
    return AlreadyExistsError("session " + std::to_string(snapshot.session) +
                              " is already live here");
  }
  if (snapshot.record.has_value()) {
    // A record whose token count disagrees with the history would poison
    // the next turn's prefix reuse; treat it like a failed import.
    Status imported = snapshot.record->token_count == snapshot.history.size()
                          ? store_.ImportRecord(*snapshot.record, WallNow(), CurrentHintsLocked())
                          : FailedPreconditionError("record covers " +
                                                    std::to_string(snapshot.record->token_count) +
                                                    " tokens but the history has " +
                                                    std::to_string(snapshot.history.size()));
    if (!imported.ok()) {
      CA_LOG(Warn) << "session " << snapshot.session
                   << " KV import failed (next turn recomputes): " << imported;
    }
  }
  SessionState& state = sessions_[snapshot.session];
  state.history = std::move(snapshot.history);
  state.kv_pure = snapshot.kv_pure;
  return Status::Ok();
}

TierHealth CachedAttentionEngine::StoreTierHealth(Tier tier) const {
  MutexLock lock(mutex_);
  return store_.tier_health(tier);
}

Status CachedAttentionEngine::PrepareCache(SessionId session, SessionState& state,
                                           std::size_t incoming_tokens, KvCache& cache,
                                           TurnResult& result) {
  const std::size_t window = model_->config().context_window;
  if (incoming_tokens >= window) {
    return InvalidArgumentError("turn input (" + std::to_string(incoming_tokens) +
                                " tokens) does not fit the context window");
  }

  // --- context-window management (§3.4) -------------------------------
  CA_TRACE_SPAN("engine.prepare_cache", "session", session, "history",
                state.history.size());
  std::size_t drop = 0;
  if (state.history.size() + incoming_tokens > window) {
    result.truncated = true;
    CA_TRACE_INSTANT("engine.overflow", "session", session, "policy",
                     static_cast<int>(options_.overflow_policy));
    // Drop the configured fraction of the window, or more if the new input
    // still would not fit.
    drop = static_cast<std::size_t>(options_.truncation_ratio * static_cast<double>(window));
    const std::size_t overflow = state.history.size() + incoming_tokens - window;
    drop = std::min(std::max(drop, overflow), state.history.size());
  }

  const std::size_t pre_drop_history = state.history.size();
  bool recompute = !options_.reuse_kv;
  bool cache_loaded = false;

  if (options_.reuse_kv) {
    if (result.truncated && options_.overflow_policy == OverflowPolicy::kInvalidate) {
      WaitForPendingSave(session);
      MutexLock lock(mutex_);
      store_.Remove(session);
    }
    if (result.truncated && options_.overflow_policy == OverflowPolicy::kTokenTruncate) {
      // TT: truncation operates on token text; the stored KV (embedded at
      // old positions in a conventional engine) is unusable — recompute.
      recompute = true;
    } else {
      WaitForPendingSave(session);
      CA_TRACE_SPAN("store.lookup", "session", session);
      std::optional<KvRecordInfo> info;
      {
        MutexLock lock(mutex_);
        info = store_.Access(session, WallNow());
      }
      if (info.has_value()) {
        // Miss-equivalent degradation (DESIGN.md §10): the KV cache is soft
        // state, so a fault anywhere on the load path — tier I/O failure,
        // checksum mismatch, undeserializable payload — costs a recompute of
        // the history, never the turn.
        // Zero-copy load: the store streams tier bytes straight into the
        // deserializer (memory tiers hand over arena spans), which parses
        // into the final tensor storage — no staging payload vector. On any
        // non-OK read the half-built deserializer state is simply never
        // Finish()ed, which is the discard the sink contract requires.
        bool payload_ok = false;
        // Shared records (PutShared) carry headerless token-major bytes; the
        // shape travels out of band (record token count + engine PE mode).
        // Private records keep the legacy self-describing wire form.
        KvCache::StreamingDeserializer deserializer(model_->config());
        std::optional<KvCache::TokenMajorDeserializer> tm_deserializer;
        if (info->shared) {
          tm_deserializer.emplace(model_->config(), pe_mode(),
                                  static_cast<std::size_t>(info->token_count));
        }
        {
          DeserializerSink legacy_sink(deserializer);
          std::optional<TokenMajorSink> tm_sink;
          if (tm_deserializer.has_value()) {
            tm_sink.emplace(*tm_deserializer);
          }
          PayloadSink& sink =
              tm_sink.has_value() ? static_cast<PayloadSink&>(*tm_sink) : legacy_sink;
          MutexLock lock(mutex_);
          const Status read = store_.ReadPayloadInto(session, sink);
          if (read.ok()) {
            payload_ok = true;
          } else {
            CA_LOG(Warn) << "session " << session
                         << " KV load degraded to a miss: " << read;
          }
        }
        std::optional<KvCache> loaded_cache;
        if (payload_ok) {
          auto loaded = tm_deserializer.has_value() ? tm_deserializer->Finish()
                                                    : deserializer.Finish();
          if (loaded.ok()) {
            loaded_cache = std::move(*loaded);
          } else {
            // The bytes came back checksum-clean but do not parse: a
            // poisoned payload. Drop it so the miss is consistent.
            CA_LOG(Warn) << "session " << session
                         << " KV payload undeserializable, dropped: " << loaded.status();
            MutexLock lock(mutex_);
            store_.Remove(session);
          }
        }
        if (!loaded_cache.has_value()) {
          result.cache_load_fault = true;
          load_fault_counter_->Add();
          CA_TRACE_INSTANT("engine.cache_load_fault", "session", session);
          recompute = true;
        } else if (loaded_cache->seq_len() != pre_drop_history) {
          CA_LOG(Warn) << "session " << session << " cache holds " << loaded_cache->seq_len()
                       << " tokens, history is " << pre_drop_history << "; recomputing";
          recompute = true;
        } else {
          cache = std::move(*loaded_cache);
          // KV cache truncation (valid for decoupled PE; deliberately
          // corrupting for the coupled-PE NKVT baseline).
          if (drop > 0) {
            cache.TruncateFront(drop);
            // The surviving rows attended over the dropped context; a fresh
            // prefill of the truncated history would not reproduce them, so
            // this cache must stay out of the shared prefix index.
            state.kv_pure = false;
          }
          cache_loaded = true;
          result.cache_hit = true;
          result.hit_tier = info->tier;
        }
      } else {
        recompute = true;
      }
    }
  }

  if (drop > 0) {
    state.history.erase(state.history.begin(),
                        state.history.begin() + static_cast<std::ptrdiff_t>(drop));
  }

  if (cache_loaded) {
    result.reused_tokens = cache.seq_len();
    return Status::Ok();
  }

  // Miss / recompute path: rebuild the history KV from the token text. A
  // full recompute is by definition the pure prefill of the visible
  // history, so it restores the session's sharing eligibility.
  (void)recompute;
  state.kv_pure = true;
  CA_CHECK_EQ(cache.seq_len(), 0U);
  if (!state.history.empty()) {
    CA_TRACE_SPAN("engine.prefill_history", "tokens", state.history.size());
    (void)model_->Forward(state.history, cache);
    result.computed_tokens += state.history.size();
  }
  return Status::Ok();
}

Result<Tensor> CachedAttentionEngine::ForwardTurn(SessionId session,
                                                  std::span<const TokenId> tokens) {
  CA_CHECK(!tokens.empty());
  SessionState* state_ptr;
  {
    // Map access under the lock; the per-session state stays valid (node
    // stability) and is only mutated by this serving thread.
    MutexLock lock(mutex_);
    state_ptr = &sessions_[session];
  }
  SessionState& state = *state_ptr;
  TurnResult result;
  CA_TRACE_SPAN("engine.forward_turn", "session", session, "tokens", tokens.size());
  const std::uint64_t start_ns = TraceNowNs();

  KvCache cache = model_->MakeCache(pe_mode());
  CA_RETURN_IF_ERROR(PrepareCache(session, state, tokens.size(), cache, result));

  Tensor logits = [&] {
    CA_TRACE_SPAN("engine.prefill", "tokens", tokens.size());
    return model_->Forward(tokens, cache);
  }();
  result.computed_tokens += tokens.size();
  result.prompt_tokens = state.history.size() + tokens.size();
  result.prefill_seconds = SecondsSince(start_ns);

  state.history.insert(state.history.end(), tokens.begin(), tokens.end());
  if (options_.reuse_kv) {
    SaveCache(session, cache, state);
  }

  AccumulateTurnStats(result);
  return logits;
}

Result<TurnResult> CachedAttentionEngine::Converse(SessionId session,
                                                   std::span<const TokenId> user_tokens,
                                                   std::size_t max_reply_tokens) {
  CA_CHECK(!user_tokens.empty());
  SessionState* state_ptr;
  {
    MutexLock lock(mutex_);
    state_ptr = &sessions_[session];
  }
  SessionState& state = *state_ptr;
  TurnResult result;
  CA_TRACE_SPAN("engine.turn", "session", session, "input", user_tokens.size());
  const std::uint64_t start_ns = TraceNowNs();

  KvCache cache = model_->MakeCache(pe_mode());
  CA_RETURN_IF_ERROR(PrepareCache(session, state, user_tokens.size(), cache, result));

  // Importance scoring for the kImportance compression policy accumulates
  // the attention mass every cached token receives during this turn.
  AttentionMassAccumulator mass;
  AttentionObserver* observer =
      options_.compression.policy == CompressionPolicy::kImportance ? &mass : nullptr;

  // Prefill only the new input; the history is already in the cache.
  Tensor logits = [&] {
    CA_TRACE_SPAN("engine.prefill", "tokens", user_tokens.size());
    return model_->Forward(user_tokens, cache, observer);
  }();
  result.computed_tokens += user_tokens.size();
  result.prompt_tokens = state.history.size() + user_tokens.size();
  result.prefill_seconds = SecondsSince(start_ns);

  // Greedy decode, capped by the remaining window.
  const std::size_t window = model_->config().context_window;
  const std::size_t room = window - cache.seq_len();
  const std::size_t budget = std::min(max_reply_tokens, room);
  {
    CA_TRACE_SPAN("engine.decode", "budget", budget);
    TokenId next = model_->Argmax(logits, logits.dim(0) - 1);
    for (std::size_t i = 0; i < budget; ++i) {
      result.reply.push_back(next);
      if (i + 1 == budget) {
        break;  // last token needs no further forward
      }
      const TokenId tok[] = {next};
      const Tensor step = model_->Forward(tok, cache, observer);
      next = model_->Argmax(step, 0);
    }

    // The reply's final token was sampled but (deliberately) not forwarded,
    // so the cache covers history + input + reply[0..n-2]. Forward it now so
    // the saved KV matches the full visible history.
    if (!result.reply.empty() && cache.seq_len() < window) {
      const TokenId tok[] = {result.reply.back()};
      (void)model_->Forward(tok, cache, observer);
    } else if (!result.reply.empty()) {
      // No room to embed the last reply token; drop it from the visible
      // history so text and KV stay aligned.
      result.reply.pop_back();
    }
  }

  state.history.insert(state.history.end(), user_tokens.begin(), user_tokens.end());
  state.history.insert(state.history.end(), result.reply.begin(), result.reply.end());
  CA_CHECK_EQ(state.history.size(), cache.seq_len());

  if (options_.reuse_kv) {
    result.compressed_tokens = MaybeCompress(state, cache, mass.mass());
    SaveCache(session, cache, state);
  }

  AccumulateTurnStats(result);
  return result;
}

void CachedAttentionEngine::AccumulateTurnStats(const TurnResult& result) {
  {
    MutexLock lock(mutex_);
    stats_.turns += 1;
    stats_.prompt_tokens += result.prompt_tokens;
    stats_.computed_tokens += result.computed_tokens;
    stats_.reused_tokens += result.reused_tokens;
    stats_.truncations += result.truncated ? 1 : 0;
    stats_.compressed_tokens += result.compressed_tokens;
    stats_.cache_load_faults += result.cache_load_fault ? 1 : 0;
    stats_.prefill_seconds += result.prefill_seconds;
  }
  turns_counter_->Add();
  prefill_seconds_hist_->Observe(result.prefill_seconds);
}

EngineStats CachedAttentionEngine::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t CachedAttentionEngine::MaybeCompress(SessionState& state, KvCache& cache,
                                                 std::span<const float> importance) {
  if (options_.compression.policy == CompressionPolicy::kNone ||
      cache.pe_mode() != PeMode::kDecoupled) {
    return 0;
  }
  const auto discard =
      BuildTokenDiscardList(options_.compression, cache.seq_len(), importance);
  if (discard.empty()) {
    return 0;
  }
  cache.DiscardTokens(discard);
  // The kept rows were computed attending over the discarded ones: not the
  // pure prefill of the compressed history, so no prefix sharing for this
  // cache (SaveCache falls back to the private payload path).
  state.kv_pure = false;
  // Keep the visible token history aligned with the cache: drop the same
  // positions (discard indices are strictly increasing).
  std::vector<TokenId> kept;
  kept.reserve(state.history.size() - discard.size());
  std::size_t next_discard = 0;
  for (std::size_t i = 0; i < state.history.size(); ++i) {
    if (next_discard < discard.size() && discard[next_discard] == i) {
      ++next_discard;
      continue;
    }
    kept.push_back(state.history[i]);
  }
  state.history = std::move(kept);
  CA_CHECK_EQ(state.history.size(), cache.seq_len());
  return discard.size();
}

void CachedAttentionEngine::SaveCache(SessionId session, const KvCache& cache,
                                      const SessionState& state) {
  if (cache.seq_len() == 0) {
    return;
  }
  const std::span<const TokenId> history(state.history);
  const std::uint64_t tokens = cache.seq_len();
  // Prefix sharing (DESIGN.md §17): pure caches go through PutShared in
  // token-major form so identical history prefixes dedup across sessions.
  // Impure caches (KV-truncated / compressed rows) and compression-enabled
  // engines (purity flips turn to turn; keep the formats uniform) fall back
  // to the private whole-payload path — replies stay bitwise-identical
  // either way, sharing only changes where the bytes live.
  const bool share = options_.store.share_prefixes && state.kv_pure &&
                     options_.compression.policy == CompressionPolicy::kNone;
  // Durable stores persist the visible token history next to the payload so
  // a restarted process can rebuild the session (RestoreSessions). Sharing
  // engines write the v2 blob (purity bit + history); everything else keeps
  // the raw v1 TokenId bytes. The journal treats the blob as opaque.
  std::vector<std::uint8_t> meta_storage;
  std::span<const std::uint8_t> user_meta;
  if (options_.store.durable) {
    CA_CHECK_EQ(history.size(), cache.seq_len());
    if (options_.store.share_prefixes) {
      meta_storage = EncodeHistoryMetaV2(history, state.kv_pure);
      user_meta = meta_storage;
    } else {
      user_meta = std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(history.data()),
          history.size() * sizeof(TokenId));
    }
  }
  if (write_stream_ == nullptr) {
    // Synchronous save: the serializer cursor feeds the store's zero-copy
    // Put, so the KV bytes go tensors → tier block memory in one pass with
    // the checksum folded in along the way — no staging vector. The shared
    // path goes one better: ranges the prefix index already holds are never
    // serialized at all.
    MutexLock lock(mutex_);
    const SchedulerHints hints = CurrentHintsLocked();
    Status s = Status::Ok();
    if (share) {
      CacheChunkSource source(cache);
      const std::span<const std::uint32_t> token_bits(
          reinterpret_cast<const std::uint32_t*>(history.data()), history.size());
      CA_TRACE_SPAN("engine.save", "session", session, "tokens", tokens);
      s = store_.PutShared(session, token_bits, source, WallNow(), hints, user_meta);
    } else {
      KvCache::Serializer serializer(cache);
      SerializerSource source(serializer);
      CA_TRACE_SPAN("engine.save", "session", session, "bytes", source.size());
      s = store_.Put(session, tokens, source, WallNow(), hints, user_meta);
    }
    if (!s.ok()) {
      CA_LOG(Debug) << "KV save for session " << session << " dropped: " << s;
    }
    return;
  }
  // Serialize now: the cache buffer is only valid during this turn, and the
  // async stream outlives it, so the payload must be materialised before it
  // crosses threads. (The store side still moves vector → tier zero-copy.)
  // The history and meta blobs are copied for the same reason; the shared
  // path needs the history as PutShared's token argument.
  std::vector<std::uint8_t> payload = share ? cache.SerializeTokenMajor() : cache.Serialize();
  std::vector<std::uint8_t> meta_copy(user_meta.begin(), user_meta.end());
  std::vector<TokenId> history_copy =
      share ? std::vector<TokenId>(history.begin(), history.end()) : std::vector<TokenId>{};
  const std::uint64_t bytes_per_token = cache.token_major_bytes_per_token();
  // Invoked with mutex_ held (the stream task below locks first).
  auto do_put = [this, session, tokens, share, bytes_per_token](
                    const std::vector<std::uint8_t>& bytes,
                    const std::vector<std::uint8_t>& meta,
                    const std::vector<TokenId>& hist) {
    mutex_.AssertHeld();
    const SchedulerHints hints = CurrentHintsLocked();
    Status s = Status::Ok();
    if (share) {
      SpanChunkSource source(bytes, bytes_per_token);
      const std::span<const std::uint32_t> token_bits(
          reinterpret_cast<const std::uint32_t*>(hist.data()), hist.size());
      s = store_.PutShared(session, token_bits, source, WallNow(), hints, meta);
    } else {
      s = store_.Put(session, bytes.size(), tokens, bytes, WallNow(), hints, meta);
    }
    if (!s.ok()) {
      CA_LOG(Debug) << "KV save for session " << session << " dropped: " << s;
    }
  };
  // Asynchronous write stream (§3.2.2): the save overlaps the caller's next
  // work; readers of this session block in WaitForPendingSave until it
  // lands. The flow link ties the serving thread's enqueue to the save span
  // on the kv-save-stream thread, so the trace shows the §3.2 overlap of
  // async saves with the next decode.
  const std::uint64_t flow =
      Tracer::Get().enabled() ? Tracer::Get().NextFlowId() : 0;
  CA_TRACE_FLOW_BEGIN("engine.save.async", flow);
  {
    MutexLock lock(mutex_);
    pending_saves_.insert(session);
  }
  write_stream_->Submit([this, session, flow, do_put, payload = std::move(payload),
                         meta_copy = std::move(meta_copy),
                         history_copy = std::move(history_copy)] {
    {
      CA_TRACE_SPAN("engine.save.async", "session", session, "bytes", payload.size());
      CA_TRACE_FLOW_END("engine.save.async", flow);
      MutexLock lock(mutex_);
      do_put(payload, meta_copy, history_copy);
      pending_saves_.erase(session);
    }
    save_done_.NotifyAll();
  });
}

std::size_t CachedAttentionEngine::PrefetchSessions(std::span<const SessionId> upcoming) {
  if (upcoming.empty()) {
    return 0;
  }
  CA_TRACE_SPAN("engine.prefetch", "sessions", upcoming.size());
  MutexLock lock(mutex_);
  // S_kv estimate: running average record size across the store (the paper's
  // per-session KV size input to L_pw = C_mem / S_kv).
  const std::size_t records = store_.RecordCount();
  if (records == 0) {
    return 0;
  }
  std::uint64_t total_bytes = 0;
  for (const Tier tier : {Tier::kHbm, Tier::kDram, Tier::kDisk}) {
    total_bytes += store_.UsedBytes(tier);
  }
  const std::uint64_t avg_bytes = std::max<std::uint64_t>(1, total_bytes / records);
  const SchedulerHints hints = CurrentHintsLocked();
  // Restore the DRAM free-space fetch buffer first (§3.3.1): serving Puts
  // fill DRAM to capacity, and without free bytes the prefetch window
  // L_pw = C_mem / S_kv collapses to zero.
  if (options_.store.dram_buffer > 0) {
    store_.MaintainDramBuffer(WallNow(), hints);
  }
  Prefetcher prefetcher(&store_);
  const PrefetchPlan plan = prefetcher.Plan(upcoming, avg_bytes);
  if (plan.to_fetch.empty()) {
    return 0;
  }
  return prefetcher.Execute(plan, WallNow(), hints);
}

void CachedAttentionEngine::PublishMetrics(MetricsRegistry* registry) const {
  MetricsRegistry& reg = registry != nullptr ? *registry : MetricsRegistry::Global();
  EngineStats snapshot;
  {
    MutexLock lock(mutex_);
    snapshot = stats_;
    store_.PublishMetrics(&reg);
  }
  const auto gauge = [&reg](std::string_view name, double v) { reg.GetGauge(name).Set(v); };
  gauge("engine_stats.turns", static_cast<double>(snapshot.turns));
  gauge("engine_stats.prompt_tokens", static_cast<double>(snapshot.prompt_tokens));
  gauge("engine_stats.computed_tokens", static_cast<double>(snapshot.computed_tokens));
  gauge("engine_stats.reused_tokens", static_cast<double>(snapshot.reused_tokens));
  gauge("engine_stats.truncations", static_cast<double>(snapshot.truncations));
  gauge("engine_stats.compressed_tokens", static_cast<double>(snapshot.compressed_tokens));
  gauge("engine_stats.cache_load_faults", static_cast<double>(snapshot.cache_load_faults));
  gauge("engine_stats.prefill_seconds", snapshot.prefill_seconds);
  gauge("engine_stats.reuse_fraction", snapshot.reuse_fraction());
}

}  // namespace ca
