// CachedAttentionEngine: the paper's attention mechanism on the real
// (CPU) execution path.
//
// A conversation session is served turn by turn. At each turn the engine
//   1. applies context-window management (§3.4): on overflow it truncates
//      either the token text (TT / recompute baselines) or the KV cache
//      directly (valid under decoupled PE; deliberately corrupting under
//      coupled PE — the NKVT baseline; or invalidating the cache entirely —
//      the OF baseline);
//   2. looks the session's KV cache up in AttentionStore and, on a hit,
//      prefills only the new tokens (CachedAttention) — on a miss or in
//      recompute mode it prefills the whole history;
//   3. decodes a reply, then saves the session's KV cache back to
//      AttentionStore (synchronously or on the asynchronous write stream).
//
// All baselines of §4.3.5 are expressible through EngineOptions, which is
// what the Table-1/2 fidelity benches rely on.
#ifndef CA_CORE_CACHED_ATTENTION_H_
#define CA_CORE_CACHED_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/model/compression.h"
#include "src/model/kv_cache.h"
#include "src/model/transformer.h"
#include "src/obs/metrics.h"
#include "src/store/attention_store.h"

namespace ca {

// What happens to a session's saved KV cache when the context window
// overflows.
enum class OverflowPolicy {
  // Truncate the token text and recompute from scratch (the paper's TT and
  // the RE baseline's behaviour).
  kTokenTruncate,
  // Truncate the KV cache directly; valid only with decoupled PE (§3.4).
  kKvTruncate,
  // Truncate a *coupled*-PE KV cache directly: positions scramble. This is
  // the NKVT baseline of §4.3.5 and exists to reproduce its failure.
  kNaiveKvTruncate,
  // Invalidate the saved cache and recompute (the OF baseline of §4.3.4).
  kInvalidate,
};

struct EngineOptions {
  // Reuse KV caches across turns (CachedAttention). False = recompute (RE).
  bool reuse_kv = true;
  OverflowPolicy overflow_policy = OverflowPolicy::kKvTruncate;
  // Fraction of the context window dropped on overflow (paper: 0.5).
  double truncation_ratio = 0.5;
  // AttentionStore configuration; real_payloads is forced on.
  StoreConfig store;
  // Save KV caches on a background write stream (§3.2.2's async saving).
  bool async_save = false;
  // KV cache compression (token-discarding list, §3.4 end). Applied to the
  // session cache at the end of each turn; requires decoupled PE. The
  // kImportance policy scores tokens by the attention mass they received
  // during the current turn.
  CompressionConfig compression;
};

// Per-turn outcome and accounting.
struct TurnResult {
  std::vector<TokenId> reply;
  std::uint64_t prompt_tokens = 0;    // history + new input
  std::uint64_t computed_tokens = 0;  // prompt tokens actually prefilled
  std::uint64_t reused_tokens = 0;    // prompt tokens served from the cache
  std::uint64_t compressed_tokens = 0;  // tokens discarded by the TDL policy
  bool cache_hit = false;
  Tier hit_tier = Tier::kNone;
  bool truncated = false;
  // A saved KV cache failed to load (I/O fault, corruption, poisoned
  // payload) and the turn degraded to a full recompute (DESIGN.md §10).
  bool cache_load_fault = false;
  double prefill_seconds = 0.0;       // wall-clock prefill (TTFT proxy)
};

// Cumulative engine statistics.
struct EngineStats {
  std::uint64_t turns = 0;
  std::uint64_t prompt_tokens = 0;
  std::uint64_t computed_tokens = 0;
  std::uint64_t reused_tokens = 0;
  std::uint64_t truncations = 0;
  std::uint64_t compressed_tokens = 0;
  // Store faults degraded to a recompute (DESIGN.md §10): a saved KV cache
  // failed to load back (I/O error, corruption, poisoned payload) and the
  // turn fell through to a full prefill instead of erroring out.
  std::uint64_t cache_load_faults = 0;
  double prefill_seconds = 0.0;

  double reuse_fraction() const {
    return prompt_tokens == 0
               ? 0.0
               : static_cast<double>(reused_tokens) / static_cast<double>(prompt_tokens);
  }
};

// A serialized session for shard migration (DESIGN.md §16): the visible
// token history plus — when the KV payload was exportable — the store
// record. A snapshot without a record imports as history-only: the target
// engine recomputes the KV on the session's next turn (the same degradation
// path as a cache-load fault, so replies stay bitwise-identical) instead of
// failing the migration.
struct SessionSnapshot {
  SessionId session = kInvalidSession;
  std::vector<TokenId> history;
  std::optional<ExportedRecord> record;
  // Whether the snapshotted KV rows are the pure prefill of `history`
  // (DESIGN.md §17). Impure caches (KV-truncated or TDL-compressed rows)
  // must never enter the cross-session prefix index on the importing shard.
  bool kv_pure = true;
};

class CachedAttentionEngine {
 private:
  // Passkey for the store-injecting constructor below: the constructor is
  // public so make_unique can reach it, but only class members can mint the
  // tag — construction with a caller-built store stays behind Create().
  struct StoreTag {
    explicit StoreTag() = default;
  };

 public:
  // `model` must outlive the engine.
  //
  // This constructor serves ephemeral stores only; it CHECK-fails when
  // `options.store.durable` is set (a durable open can fail, so it needs
  // the fallible factory below).
  CachedAttentionEngine(const Transformer* model, EngineOptions options);

  // Fallible construction path. For ephemeral stores this is equivalent to
  // the constructor; for durable stores (options.store.durable) it opens —
  // and, after an unclean death, recovers — the on-disk tier, then rebuilds
  // the per-session token histories from the user-meta blobs the engine
  // persists alongside each KV payload. Recovered sessions resume exactly
  // where they left off (bitwise-identical replies under greedy decode);
  // sessions whose metadata or payload did not survive are clean misses.
  // Fails (kFailedPrecondition / kInvalidArgument / kIoError) when the
  // durable open cannot be satisfied — see AttentionStore::Open.
  static Result<std::unique_ptr<CachedAttentionEngine>> Create(const Transformer* model,
                                                               EngineOptions options);

  // Store-injecting constructor backing both the public constructor and
  // Create(); the StoreTag passkey keeps it out of public reach.
  CachedAttentionEngine(StoreTag, const Transformer* model, EngineOptions options,
                        AttentionStore store);

  ~CachedAttentionEngine();

  CachedAttentionEngine(const CachedAttentionEngine&) = delete;
  CachedAttentionEngine& operator=(const CachedAttentionEngine&) = delete;

  const Transformer& model() const { return *model_; }
  const EngineOptions& options() const { return options_; }
  // Point-in-time snapshot of the cumulative stats. Safe to call from any
  // thread, including while other threads are inside Converse/ForwardTurn
  // (accumulation happens under the engine mutex — see the stats_ contract
  // note below).
  EngineStats stats() const CA_EXCLUDES(mutex_);
  // Quiescent introspection only: callers must Flush() first and must not
  // race with Converse/ForwardTurn, since the returned reference bypasses
  // the engine mutex that guards the store during serving.
  const AttentionStore& store() const CA_NO_THREAD_SAFETY_ANALYSIS { return store_; }

  // Serves one conversation turn: appends `user_tokens`, decodes up to
  // `max_reply_tokens` greedily, persists the KV cache for the next turn.
  //
  // Concurrency contract: any number of threads may call Converse (or
  // ForwardTurn) concurrently as long as no two of them serve the *same*
  // session at the same time — per-session state is mutated lock-free by
  // the serving thread, while everything cross-session (store, pending
  // saves, hints, cumulative stats) is guarded by the engine mutex. The
  // serving runtime (src/serve) enforces the per-session exclusivity.
  Result<TurnResult> Converse(SessionId session, std::span<const TokenId> user_tokens,
                              std::size_t max_reply_tokens);

  // Lower-level variant used by the fidelity experiments: runs the prefill
  // for `tokens` (history reuse rules apply) and returns the logits of all
  // new positions. Advances the session without decoding a reply.
  Result<Tensor> ForwardTurn(SessionId session, std::span<const TokenId> tokens);

  // Applications that maintain a job queue can feed it here so the
  // scheduler-aware policy and prefetcher see future accesses.
  void SetQueueHint(std::vector<SessionId> upcoming) CA_EXCLUDES(mutex_);

  // Scheduler-aware pre-loading (§3.3.1): plans a prefetch window over
  // `upcoming` (head first) and promotes the planned disk-resident KV
  // caches into DRAM. Safe to call from a background thread while another
  // thread serves turns — the engine mutex is held for the store mutations,
  // which the compute phase of Converse/ForwardTurn never holds, so the
  // promotion I/O genuinely overlaps computation (the overlap the
  // "preload" trace spans make visible). Returns promoted-session count.
  std::size_t PrefetchSessions(std::span<const SessionId> upcoming) CA_EXCLUDES(mutex_);

  // Waits for all asynchronous saves to land.
  void Flush();

  // Current full token history of a session (post-truncation).
  std::vector<TokenId> SessionHistory(SessionId session) const CA_EXCLUDES(mutex_);

  // Sessions with live engine state, in unspecified order.
  std::vector<SessionId> LiveSessions() const CA_EXCLUDES(mutex_);

  // --- Migration (DESIGN.md §16) ----------------------------------------
  // Must not race with a turn for the same session; the shard router's
  // drain protocol (WaitIdle before export, re-pin before new submissions)
  // enforces that, mirroring the serving runtime's per-session exclusivity.

  // Serializes a session for migration to another engine: waits for its
  // pending async save, then snapshots the token history together with the
  // exported store record. A session whose KV payload cannot be read
  // exports history-only (the importer recomputes); kNotFound for unknown
  // sessions. The session stays live here until EndSession.
  Result<SessionSnapshot> ExportSession(SessionId session) CA_EXCLUDES(mutex_);

  // Installs a migrated session. kAlreadyExists if the session is already
  // live here (a session lives on exactly one shard). A snapshot whose
  // record fails to import (target store full, faulted, corrupt in
  // transit) still installs the history — the next turn recomputes.
  Status ImportSession(SessionSnapshot snapshot) CA_EXCLUDES(mutex_);

  // Thread-safe view of the underlying store's tier health (the shard
  // router's whole-shard failure detection polls this).
  TierHealth StoreTierHealth(Tier tier) const CA_EXCLUDES(mutex_);

  // Drops a session's state (and stored KV).
  void EndSession(SessionId session) CA_EXCLUDES(mutex_);

  // Republishes the cumulative EngineStats and the store's StoreStats into
  // the metrics registry as "engine_stats.*" / "store_stats.*" gauges
  // (DESIGN.md §11). Call from a quiescent point (e.g. after Flush); the
  // hot-path counters ("engine.turns", "store.hits{tier=...}") are
  // maintained live and need no republishing.
  void PublishMetrics(MetricsRegistry* registry = nullptr) const CA_EXCLUDES(mutex_);

 private:
  struct SessionState {
    std::vector<TokenId> history;  // token text, already truncation-clamped
    // True while the session's KV rows equal a from-scratch prefill of
    // `history` under the current PE mode. KV truncation drops front rows
    // whose context the survivors already attended over, and TDL
    // compression discards interior rows — both leave rows that a fresh
    // prefill of the visible history would not reproduce, so such caches
    // are excluded from cross-session prefix sharing (they would poison
    // the dedup index for sessions with genuinely identical prefixes). A
    // full recompute restores purity.
    bool kv_pure = true;
  };

  // Rebuilds sessions_ from the recovered store's user-meta blobs (token
  // histories saved by SaveCache in durable mode). Records whose blob is
  // missing or inconsistent with the record's token count are removed from
  // the store — a recompute miss, never a wrong answer.
  Status RestoreSessions() CA_EXCLUDES(mutex_);

  // Prepares the KV cache for a turn: handles overflow, loads from the
  // store or recomputes. On return `cache` holds exactly the history
  // prefix; `result` has hit/truncation accounting filled in.
  Status PrepareCache(SessionId session, SessionState& state, std::size_t incoming_tokens,
                      KvCache& cache, TurnResult& result) CA_EXCLUDES(mutex_);

  // Applies the configured TDL compression to the cache and the session's
  // visible history. Returns the number of discarded tokens.
  std::size_t MaybeCompress(SessionState& state, KvCache& cache,
                            std::span<const float> importance);

  // Single accumulation point for the per-turn counters (Converse and
  // ForwardTurn both funnel through here, so no field — compressed_tokens
  // included — can silently diverge between the two paths) and the live
  // registry handles. Locks the engine mutex: turns finishing on different
  // worker threads serialize their accounting here.
  void AccumulateTurnStats(const TurnResult& result) CA_EXCLUDES(mutex_);

  // Persists the turn's KV cache. `state.history` is the session's full
  // visible token text, already aligned with the cache (history.size() ==
  // cache.seq_len()). Durable stores persist it as the record's user-meta
  // blob so Create() can rebuild the session after a restart; ephemeral
  // stores ignore it. When prefix sharing is on and the cache is pure
  // (state.kv_pure, no compression), the save goes through PutShared in
  // token-major form so identical prefixes dedup across sessions;
  // otherwise it falls back to the private whole-payload Put.
  void SaveCache(SessionId session, const KvCache& cache, const SessionState& state)
      CA_EXCLUDES(mutex_);
  void WaitForPendingSave(SessionId session) CA_EXCLUDES(mutex_);
  SchedulerHints CurrentHintsLocked() const CA_REQUIRES(mutex_);
  PeMode pe_mode() const {
    return options_.overflow_policy == OverflowPolicy::kNaiveKvTruncate ? PeMode::kCoupled
                                                                        : PeMode::kDecoupled;
  }

  const Transformer* model_;  // unguarded: set in ctor, immutable after
  EngineOptions options_;     // unguarded: set in ctor, immutable after

  // mutex_ serializes everything the asynchronous write stream shares with
  // the serving thread: the store, the pending-save set and the scheduler
  // hints. The sessions_ *map* is also guarded (insert/erase/lookup race
  // with SessionHistory); the per-session state a lookup returns is only
  // ever mutated by the thread serving that session's turn.
  mutable Mutex mutex_{"core.Engine"};
  CondVar save_done_;
  AttentionStore store_ CA_GUARDED_BY(mutex_);
  std::unordered_map<SessionId, SessionState> sessions_ CA_GUARDED_BY(mutex_);
  std::unordered_set<SessionId> pending_saves_ CA_GUARDED_BY(mutex_);
  std::vector<SessionId> queue_hint_ CA_GUARDED_BY(mutex_);
  // Non-null iff async_save; created in ctor, reset only in the dtor
  // after the stream drains.
  // unguarded: lifecycle above — never reassigned while workers run.
  std::unique_ptr<ThreadPool> write_stream_;

  // Turn accounting. Contract change (serving-runtime PR): Converse may run
  // on many worker threads concurrently, so accumulation happens under
  // mutex_ via AccumulateTurnStats and readers get a snapshot through
  // stats(). The old "written only by the serving thread" assumption was a
  // data race the header merely asserted away.
  EngineStats stats_ CA_GUARDED_BY(mutex_);

  // Live metrics handles (global registry; cached here because registration
  // is a map lookup — DESIGN.md §11).
  Counter* turns_counter_;                 // unguarded: set in ctor, immutable after
  Counter* load_fault_counter_;            // unguarded: set in ctor, immutable after
  HistogramMetric* prefill_seconds_hist_;  // unguarded: set in ctor, immutable after
};

}  // namespace ca

#endif  // CA_CORE_CACHED_ATTENTION_H_
