// CA_CHECK family: invariant assertions that abort with a diagnostic.
// These are always on (including release builds); invariant violations in a
// caching system silently corrupt data, so we pay the branch.
#ifndef CA_COMMON_CHECK_H_
#define CA_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ca::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& extra) {
  std::cerr << "CA_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) {
    std::cerr << " (" << extra << ")";
  }
  std::cerr << std::endl;
  std::abort();
}

// Stream sink used by CA_CHECK to collect an optional trailing message.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace ca::internal

#define CA_CHECK(cond)                                                       \
  if (cond) {                                                                \
  } else /* NOLINT(readability-braces-around-statements) */                                                        \
    ::ca::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define CA_CHECK_EQ(a, b) CA_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define CA_CHECK_NE(a, b) CA_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define CA_CHECK_LT(a, b) CA_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define CA_CHECK_LE(a, b) CA_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define CA_CHECK_GT(a, b) CA_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define CA_CHECK_GE(a, b) CA_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "

#define CA_CHECK_OK(expr)                                         \
  do {                                                            \
    const ::ca::Status ca_check_status_ = (expr);                 \
    CA_CHECK(ca_check_status_.ok()) << ca_check_status_;          \
  } while (false)

#endif  // CA_COMMON_CHECK_H_
