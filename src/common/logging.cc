#include "src/common/logging.h"

#include <iostream>

namespace ca {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, std::string_view file, int line, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(min_level())) {
    return;
  }
  // Strip directories for readability.
  const std::size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file.remove_prefix(slash + 1);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[" << LogLevelName(level) << " " << file << ":" << line << "] " << message
            << std::endl;
}

}  // namespace ca
