// Runtime lock-order (deadlock) detection for ca::Mutex (DESIGN.md §13).
//
// The detector maintains a process-global directed graph over live Mutex
// instances: an edge A→B means "some thread acquired B while holding A".
// Before an acquisition blocks, the acquiring thread adds the edges from
// every lock it currently holds to the lock it wants; if a new edge would
// close a cycle, the process aborts with a report naming every edge on the
// cycle and the source locations that created them. This is a lock-*order*
// checker, not a deadlock *finder*: it fires on the second inconsistent
// ordering even when the interleaving happened not to deadlock, which is
// exactly what makes ABBA bugs reproducible in tests.
//
// Internals deliberately use raw std::mutex (the detector cannot instrument
// itself) and a leaky singleton (mutexes with static storage duration may
// be locked during program teardown).
#include "src/common/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

namespace ca {

namespace internal {

std::atomic<bool> g_deadlock_detect{false};
std::atomic<bool> g_deadlock_seen{false};

namespace {

struct LockSite {
  const char* file = "?";
  unsigned line = 0;
};

struct HeldLock {
  const Mutex* mu = nullptr;
  LockSite site;
};

// Held-lock stack of the calling thread (outermost first). Trivially
// destructible contents; empty at thread exit in any correct program.
thread_local std::vector<HeldLock> t_held;  // NOLINT(cert-err58-cpp)

struct Edge {
  const Mutex* to = nullptr;
  LockSite holder_site;   // where `from` was acquired by the offending thread
  LockSite acquire_site;  // where `to` was acquired while holding `from`
};

struct LockOrderGraph {
  std::mutex mu;  // raw: the detector cannot instrument itself
  std::unordered_map<const Mutex*, std::vector<Edge>> edges;

  static LockOrderGraph& Get() {
    static LockOrderGraph* graph = new LockOrderGraph();  // NOLINT(naked-new): leaky singleton
    return *graph;
  }

  // True if a path to→…→target exists. Fills `path` with the edges walked.
  bool PathExists(const Mutex* from, const Mutex* target, std::vector<const Edge*>& path) {
    const auto it = edges.find(from);
    if (it == edges.end()) {
      return false;
    }
    for (const Edge& e : it->second) {
      path.push_back(&e);
      if (e.to == target || PathExists(e.to, target, path)) {
        return true;
      }
      path.pop_back();
    }
    return false;
  }
};

std::string Describe(const Mutex* mu) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%p", static_cast<const void*>(mu));
  std::string out = buf;
  if (mu->name() != nullptr) {
    out += " \"";
    out += mu->name();
    out += '"';
  }
  return out;
}

std::string Describe(const LockSite& site) {
  return std::string(site.file) + ":" + std::to_string(site.line);
}

[[noreturn]] void ReportCycle(const Mutex* held, const LockSite& held_site, const Mutex* acquiring,
                              const LockSite& acquire_site, const std::vector<const Edge*>& path) {
  std::string report =
      "CA deadlock detector: lock-order cycle detected (would deadlock under "
      "an adversarial interleaving)\n";
  report += "  acquiring " + Describe(acquiring) + " at " + Describe(acquire_site) +
            " while holding " + Describe(held) + " (locked at " + Describe(held_site) +
            ") — i.e. " + Describe(held) + " -> " + Describe(acquiring) + "\n";
  report += "  but the reverse order is already on record:\n";
  const Mutex* from = acquiring;
  for (const Edge* e : path) {
    report += "    " + Describe(from) + " (locked at " + Describe(e->holder_site) + ") -> " +
              Describe(e->to) + " (locked at " + Describe(e->acquire_site) + ")\n";
    from = e->to;
  }
  report +=
      "  fix: acquire these mutexes in one canonical order everywhere "
      "(see the lock-order list in src/common/mutex.h)\n";
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void DeadlockOnAcquire(const Mutex* mu, const std::source_location& loc) {
  const LockSite site{loc.file_name(), loc.line()};
  // Re-acquiring a lock this thread already holds is a guaranteed
  // self-deadlock on a non-recursive mutex: report it as a 1-cycle.
  for (const HeldLock& held : t_held) {
    if (held.mu == mu) {
      const Edge self{mu, held.site, site};
      ReportCycle(mu, held.site, mu, site, {&self});
    }
  }
  if (!t_held.empty()) {
    LockOrderGraph& graph = LockOrderGraph::Get();
    std::lock_guard<std::mutex> g(graph.mu);
    for (const HeldLock& held : t_held) {
      std::vector<Edge>& out = graph.edges[held.mu];
      bool known = false;
      for (const Edge& e : out) {
        if (e.to == mu) {
          known = true;
          break;
        }
      }
      if (known) {
        continue;
      }
      // New edge held.mu → mu: a path mu →…→ held.mu would now be a cycle.
      std::vector<const Edge*> path;
      if (graph.PathExists(mu, held.mu, path)) {
        ReportCycle(held.mu, held.site, mu, site, path);
      }
      out.push_back(Edge{mu, held.site, site});
    }
  }
  t_held.push_back(HeldLock{mu, site});
}

void DeadlockOnRelease(const Mutex* mu) {
  // Innermost-first scan: locks are overwhelmingly released LIFO.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void DeadlockOnDestroy(const Mutex* mu) {
  LockOrderGraph& graph = LockOrderGraph::Get();
  std::lock_guard<std::mutex> g(graph.mu);
  graph.edges.erase(mu);
  for (auto& [from, out] : graph.edges) {
    for (std::size_t i = 0; i < out.size();) {
      if (out[i].to == mu) {
        out[i] = out.back();
        out.pop_back();
      } else {
        ++i;
      }
    }
  }
}

namespace {

// CA_DEADLOCK_DETECT=1 in the environment (or the CA_DEADLOCK_DETECT cmake
// option, which defines CA_DEADLOCK_DETECT_DEFAULT_ON) turns detection on
// from process start, so whole test suites run under it without code
// changes: CA_DEADLOCK_DETECT=1 ctest ...
const bool g_env_init = [] {
#if defined(CA_DEADLOCK_DETECT_DEFAULT_ON)
  SetDeadlockDetectEnabled(true);
#else
  const char* v = std::getenv("CA_DEADLOCK_DETECT");  // NOLINT(concurrency-mt-unsafe)
  if (v != nullptr && v[0] == '1') {
    SetDeadlockDetectEnabled(true);
  }
#endif
  return true;
}();

}  // namespace

}  // namespace internal

void SetDeadlockDetectEnabled(bool on) {
  if (on) {
    internal::g_deadlock_seen.store(true, std::memory_order_relaxed);
  }
  internal::g_deadlock_detect.store(on, std::memory_order_relaxed);
}

bool DeadlockDetectEnabled() {
  return internal::g_deadlock_detect.load(std::memory_order_relaxed);
}

}  // namespace ca
