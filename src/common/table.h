// ASCII table printer used by the benchmark harness to emit the rows of each
// paper table/figure in a uniform, diffable format.
#ifndef CA_COMMON_TABLE_H_
#define CA_COMMON_TABLE_H_

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ca {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience formatting helpers.
  static std::string Num(double v, int precision = 2);
  static std::string Percent(double fraction, int precision = 1);  // 0.85 -> "85.0%"
  static std::string Speedup(double x, int precision = 1);         // 6.8 -> "6.8x"

  void Print(std::ostream& os) const;
  std::string ToString() const;
  // Comma-separated dump (for plotting scripts).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ca

#endif  // CA_COMMON_TABLE_H_
