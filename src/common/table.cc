#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace ca {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  CA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::Speedup(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, x);
  return buf;
}

void Table::Print(std::ostream& os) const { os << ToString(); }

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_sep = [&] {
    os << '+';
    for (const auto w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_sep();
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

}  // namespace ca
