// Byte and time units. The simulator uses an integer nanosecond clock
// (SimTime) and double seconds only at presentation boundaries.
#ifndef CA_COMMON_UNITS_H_
#define CA_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace ca {

// --- Bytes -----------------------------------------------------------------

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kTiB = 1024ULL * kGiB;

constexpr std::uint64_t KiB(std::uint64_t n) { return n * kKiB; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n * kMiB; }
constexpr std::uint64_t GiB(std::uint64_t n) { return n * kGiB; }
constexpr std::uint64_t TiB(std::uint64_t n) { return n * kTiB; }

// Human-readable byte count, e.g. "2.5 GiB".
std::string FormatBytes(std::uint64_t bytes);

// --- Time ------------------------------------------------------------------

// Simulation timestamps and durations, in integer nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }
constexpr double ToMilliseconds(SimTime t) { return static_cast<double>(t) / kMillisecond; }
constexpr SimTime FromSeconds(double s) { return static_cast<SimTime>(s * kSecond); }
constexpr SimTime FromMilliseconds(double ms) { return static_cast<SimTime>(ms * kMillisecond); }

// Human-readable duration, e.g. "361.2 ms".
std::string FormatDuration(SimTime t);

// Duration of transferring `bytes` at `bytes_per_second`.
constexpr SimTime TransferTime(std::uint64_t bytes, double bytes_per_second) {
  return static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_second * kSecond);
}

}  // namespace ca

#endif  // CA_COMMON_UNITS_H_
