// Fixed-size worker pool. Used by the real-execution path for the
// asynchronous KV-cache save stream and the disk I/O threads (the paper's
// "separate IO threads migrate data between the host memory and the disks").
#ifndef CA_COMMON_THREAD_POOL_H_
#define CA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ca {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }
  std::size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace ca

#endif  // CA_COMMON_THREAD_POOL_H_
