// Fixed-size worker pool. Used by the real-execution path for the
// asynchronous KV-cache save stream and the disk I/O threads (the paper's
// "separate IO threads migrate data between the host memory and the disks").
#ifndef CA_COMMON_THREAD_POOL_H_
#define CA_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace ca {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) CA_EXCLUDES(mutex_);

  // Blocks until every submitted task has finished executing.
  void Wait() CA_EXCLUDES(mutex_);

  std::size_t num_threads() const { return threads_.size(); }
  std::size_t pending() const CA_EXCLUDES(mutex_);

 private:
  void WorkerLoop() CA_EXCLUDES(mutex_);

  mutable Mutex mutex_{"common.ThreadPool"};
  CondVar task_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ CA_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;  // unguarded: written only in ctor, joined in dtor
  std::size_t in_flight_ CA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ CA_GUARDED_BY(mutex_) = false;
};

}  // namespace ca

#endif  // CA_COMMON_THREAD_POOL_H_
