#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "src/common/check.h"

namespace ca {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::Add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const { return std::accumulate(values_.begin(), values_.end(), 0.0); }

double Samples::min() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

// Mutates the sort cache through `mutable` members even though callers see
// a const method — the single-threaded-access contract in the header exists
// because of this line; external serialization (e.g. HistogramMetric's
// mutex) is what makes concurrent registry snapshots sound.
void Samples::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::Quantile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  CA_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q;
  EnsureSorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  CA_CHECK_GT(hi, lo);
  CA_CHECK_GT(buckets, 0U);
}

void Histogram::Add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

double Histogram::CdfAt(double x) const {
  if (total_ == 0) {
    return 0.0;
  }
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bucket_hi(i) <= x) {
      below += counts_[i];
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::ToAsciiArt(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                                 static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.1f, %10.1f) %8llu ", bucket_lo(i), bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

}  // namespace ca
