// Non-cryptographic content hashing.
//
// Fnv1a64 is the integrity checksum of the store's fault-tolerance layer
// (DESIGN.md §10): AttentionStore stamps every saved payload and verifies it
// on read, so a torn write or short read is detected and degraded to a cache
// miss instead of being fed into attention. FNV-1a is not collision-proof
// against an adversary; it only needs to catch accidental corruption.
#ifndef CA_COMMON_HASH_H_
#define CA_COMMON_HASH_H_

#include <cstdint>
#include <span>

namespace ca {

inline std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace ca

#endif  // CA_COMMON_HASH_H_
