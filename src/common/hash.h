// Non-cryptographic content hashing.
//
// Two hashes live here, both for the store's fault-tolerance layer
// (DESIGN.md §10, §14): AttentionStore stamps every saved payload and
// verifies it on read, so a torn write or short read is detected and
// degraded to a cache miss instead of being fed into attention. Neither is
// collision-proof against an adversary; they only need to catch accidental
// corruption.
//
//  * Fnv1a64 — the original byte-serial FNV-1a. Kept as the reference
//    implementation and for small keys, but its xor-multiply chain is a
//    strict serial dependency (~1 byte per multiply latency, <1 GB/s), which
//    is what collapsed BM_StorePayloadRoundTrip after PR3.
//  * ChunkedHash64 / Checksum64 — the store's payload checksum: eight
//    independent 64-bit FNV-1a lanes over interleaved 8-byte words, so the
//    multiplies of one 64-byte group pipeline instead of serializing. The
//    bulk loop is runtime-dispatched like the matmul kernels in
//    src/tensor/ops.cc, but by measurement rather than by ISA flag: AVX2
//    has no 64-bit vector multiply, so on cores with strong scalar imul
//    throughput the 8 pipelined scalar chains beat the decomposed vector
//    multiply — the first use runs a one-shot shootout over a scratch
//    buffer and keeps the faster kernel (same digest either way).
//
// ChunkedHash64 is chunk-boundary invariant: splitting the input into any
// sequence of Update() calls yields the digest of the concatenation. That is
// what lets the store hash per-block during the write loop (cache-hot bytes)
// and verify with one-shot Checksum64 on read.
#ifndef CA_COMMON_HASH_H_
#define CA_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace ca {

inline std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Incremental, instruction-parallel 64-bit content hash (see file comment).
class ChunkedHash64 {
 public:
  // Bytes per lane group: 8 lanes x 8-byte words.
  static constexpr std::size_t kGroupBytes = 64;
  static constexpr std::size_t kLanes = 8;

  ChunkedHash64() { Reset(); }

  void Reset();

  // Feeds the next `chunk` of the message. Group boundaries are global byte
  // positions, so any split into Update calls digests identically.
  void Update(std::span<const std::uint8_t> chunk);

  // Digest of everything fed so far. Does not mutate state: more Update
  // calls may follow and Finalize may be called again.
  std::uint64_t Finalize() const;

  std::uint64_t total_bytes() const { return total_len_; }

 private:
  std::array<std::uint64_t, kLanes> lanes_;
  std::array<std::uint8_t, kGroupBytes> pending_;
  std::size_t pending_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// One-shot convenience over ChunkedHash64 (the read-side verifier).
std::uint64_t Checksum64(std::span<const std::uint8_t> bytes);

// Exposed for tests: true when the boot-time shootout selected the AVX2
// bulk kernel (implies ChunkedHashAvx2Available()).
bool ChunkedHashUsesAvx2();

// True when this CPU can run the AVX2 bulk kernel at all, regardless of
// which kernel the shootout picked. Gates the forced-AVX2 test/bench rows.
bool ChunkedHashAvx2Available();

namespace internal {
// Test seam: digest `bytes` forcing the scalar (use_avx2=false) or AVX2
// bulk kernel. The two must be bitwise identical wherever AVX2 exists;
// requesting AVX2 on a CPU without it falls back to scalar.
std::uint64_t ChecksumWithKernel(std::span<const std::uint8_t> bytes, bool use_avx2);
}  // namespace internal

}  // namespace ca

#endif  // CA_COMMON_HASH_H_
