// Streaming statistics and fixed-bucket histograms used by the metrics
// pipeline and the benchmark harness.
#ifndef CA_COMMON_STATS_H_
#define CA_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ca {

// Welford running mean/variance plus min/max/sum.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void Merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Reservoir of samples with exact quantiles. Keeps everything; the workloads
// in this repo produce at most a few hundred thousand samples per metric.
//
// Thread-safety contract: NOT internally synchronized, and not even
// const-reader safe — Quantile()/p50()/p95()/p99() lazily (re)build the
// mutable sort cache (EnsureSorted), so two concurrent const readers, or a
// reader racing Add(), are a data race. Callers that share a Samples across
// threads must serialize *all* access externally; the metrics registry does
// exactly that by wrapping Samples behind HistogramMetric's per-handle
// mutex (src/obs/metrics.h), which is how registry snapshots may read
// histograms while workload threads are still observing into them.
class Samples {
 public:
  void Add(double x);

  std::size_t count() const { return values_.size(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  // q in [0, 1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  // Fraction of samples with value < x (bucket resolution).
  double CdfAt(double x) const;

  std::string ToAsciiArt(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ca

#endif  // CA_COMMON_STATS_H_
