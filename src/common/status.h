// Lightweight Status / Result error-handling types.
//
// Fallible APIs in this codebase return ca::Status (no payload) or
// ca::Result<T> (payload or error). Invariant violations use CA_CHECK
// (see check.h) and abort; Status is reserved for errors a caller can
// plausibly handle (capacity exhausted, missing session, I/O failure).
#ifndef CA_COMMON_STATUS_H_
#define CA_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ca {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kInternal,
  kIoError,
  kDataLoss,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl::*Error.
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status DataLossError(std::string message);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace ca

// Propagates a non-OK status to the caller.
#define CA_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::ca::Status ca_status_tmp_ = (expr);         \
    if (!ca_status_tmp_.ok()) {                   \
      return ca_status_tmp_;                      \
    }                                             \
  } while (false)

#define CA_INTERNAL_CONCAT_IMPL(a, b) a##b
#define CA_INTERNAL_CONCAT(a, b) CA_INTERNAL_CONCAT_IMPL(a, b)

// Assigns the value of a Result<T> expression or propagates its error.
#define CA_ASSIGN_OR_RETURN(lhs, expr) \
  CA_ASSIGN_OR_RETURN_IMPL(CA_INTERNAL_CONCAT(ca_result_tmp_, __LINE__), lhs, expr)

#define CA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) {                               \
    return tmp.status();                         \
  }                                              \
  lhs = std::move(tmp).value()

#endif  // CA_COMMON_STATUS_H_
