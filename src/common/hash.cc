#include "src/common/hash.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CA_HASH_X86 1
#include <immintrin.h>
#endif

namespace ca {

namespace {

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
// Lane seed spreader (golden-ratio odd constant) so permuting lane contents
// changes the digest even for symmetric inputs.
constexpr std::uint64_t kLaneSeed = 0x9E3779B97F4A7C15ULL;

inline std::uint64_t LoadU64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

// Bulk kernel: fold `n_groups` 64-byte groups at `p` into the 8 lanes.
using GroupKernel = void (*)(const std::uint8_t* p, std::size_t n_groups, std::uint64_t* lanes);

// Portable kernel. The eight xor-multiply chains are independent, so the
// compiler keeps all accumulators in registers and the 3-cycle multiplies
// pipeline across lanes instead of serializing like byte-wise FNV-1a.
void FoldGroupsScalar(const std::uint8_t* p, std::size_t n_groups, std::uint64_t* lanes) {
  std::uint64_t l0 = lanes[0], l1 = lanes[1], l2 = lanes[2], l3 = lanes[3];
  std::uint64_t l4 = lanes[4], l5 = lanes[5], l6 = lanes[6], l7 = lanes[7];
  for (std::size_t g = 0; g < n_groups; ++g, p += ChunkedHash64::kGroupBytes) {
    l0 = (l0 ^ LoadU64(p + 0)) * kFnvPrime;
    l1 = (l1 ^ LoadU64(p + 8)) * kFnvPrime;
    l2 = (l2 ^ LoadU64(p + 16)) * kFnvPrime;
    l3 = (l3 ^ LoadU64(p + 24)) * kFnvPrime;
    l4 = (l4 ^ LoadU64(p + 32)) * kFnvPrime;
    l5 = (l5 ^ LoadU64(p + 40)) * kFnvPrime;
    l6 = (l6 ^ LoadU64(p + 48)) * kFnvPrime;
    l7 = (l7 ^ LoadU64(p + 56)) * kFnvPrime;
  }
  lanes[0] = l0;
  lanes[1] = l1;
  lanes[2] = l2;
  lanes[3] = l3;
  lanes[4] = l4;
  lanes[5] = l5;
  lanes[6] = l6;
  lanes[7] = l7;
}

#ifdef CA_HASH_X86

// AVX2 has no 64-bit vector multiply, so (a * prime) mod 2^64 is decomposed
// into 32-bit halves. With prime = 0x100'000001B3 (hi = 0x100, lo = 0x1B3):
//   a * prime = a_lo*lo + ((a_lo*hi + a_hi*lo) << 32)
//             = mul_epu32(a, lo) + (((a_lo << 8) + mul_epu32(a>>32, lo)) << 32)
// exploiting hi == 2^8. Digest-identical to FoldGroupsScalar (asserted by
// ChunkedHashTest.ScalarAndAvx2KernelsAgree).
__attribute__((target("avx2"))) void FoldGroupsAvx2(const std::uint8_t* p, std::size_t n_groups,
                                                    std::uint64_t* lanes) {
  const __m256i prime_lo = _mm256_set1_epi64x(static_cast<long long>(kFnvPrime & 0xFFFFFFFFULL));
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
  __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes + 4));
  for (std::size_t g = 0; g < n_groups; ++g, p += ChunkedHash64::kGroupBytes) {
    a = _mm256_xor_si256(a, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
    b = _mm256_xor_si256(b, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32)));
    const __m256i a_lo = _mm256_and_si256(a, mask32);
    const __m256i b_lo = _mm256_and_si256(b, mask32);
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i a_hi_prod =
        _mm256_add_epi64(_mm256_slli_epi64(a_lo, 8), _mm256_mul_epu32(a_hi, prime_lo));
    const __m256i b_hi_prod =
        _mm256_add_epi64(_mm256_slli_epi64(b_lo, 8), _mm256_mul_epu32(b_hi, prime_lo));
    a = _mm256_add_epi64(_mm256_mul_epu32(a, prime_lo), _mm256_slli_epi64(a_hi_prod, 32));
    b = _mm256_add_epi64(_mm256_mul_epu32(b, prime_lo), _mm256_slli_epi64(b_hi_prod, 32));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), a);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes + 4), b);
}

#endif  // CA_HASH_X86

bool CpuHasAvx2() {
#ifdef CA_HASH_X86
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

#ifdef CA_HASH_X86
// One-shot shootout (the Linux kernel picks its raid6 kernel the same way):
// fold a 64 KiB scratch with each candidate, keep the faster. Which side
// wins is genuinely microarchitecture-dependent — the AVX2 fold spends ~6
// vector ops per 64-bit multiply (no vpmullq in the ISA) while the scalar
// fold's eight independent imul chains pipeline at 1/cycle — so a
// compile-time or cpuid-only choice would be wrong on some hosts. Both
// kernels produce identical digests, so the pick is invisible to callers.
GroupKernel MeasureFasterKernel(GroupKernel a, GroupKernel b) {
  constexpr std::size_t kScratchBytes = 64 * 1024;
  constexpr std::size_t kScratchGroups = kScratchBytes / ChunkedHash64::kGroupBytes;
  constexpr int kReps = 8;
  std::vector<std::uint8_t> scratch(kScratchBytes);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    scratch[i] = static_cast<std::uint8_t>(i * 131U + 7U);
  }
  std::uint64_t lanes[ChunkedHash64::kLanes] = {};
  const auto time_one = [&](GroupKernel k) {
    k(scratch.data(), kScratchGroups, lanes);  // warm-up: page-in + i-cache
    auto best = std::chrono::steady_clock::duration::max();
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      k(scratch.data(), kScratchGroups, lanes);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, t1 - t0);
    }
    return best;
  };
  return time_one(b) < time_one(a) ? b : a;
}
#endif  // CA_HASH_X86

GroupKernel PickGroupKernel() {
#ifdef CA_HASH_X86
  if (CpuHasAvx2()) {
    return MeasureFasterKernel(&FoldGroupsScalar, &FoldGroupsAvx2);
  }
#endif
  return &FoldGroupsScalar;
}

GroupKernel ActiveGroupKernel() {
  static const GroupKernel kernel = PickGroupKernel();
  return kernel;
}

}  // namespace

namespace internal {

std::uint64_t ChecksumWithKernel(std::span<const std::uint8_t> bytes, bool use_avx2) {
  GroupKernel kernel = &FoldGroupsScalar;
#ifdef CA_HASH_X86
  if (use_avx2 && CpuHasAvx2()) {
    kernel = &FoldGroupsAvx2;
  }
#else
  (void)use_avx2;
#endif
  // Mirror of ChunkedHash64 over an explicit kernel (whole buffer, so no
  // pending-buffer handling is needed: full groups + a byte-serial tail).
  std::array<std::uint64_t, ChunkedHash64::kLanes> lanes;
  for (std::size_t i = 0; i < ChunkedHash64::kLanes; ++i) {
    lanes[i] = kFnvBasis ^ (kLaneSeed * (i + 1));
  }
  const std::size_t groups = bytes.size() / ChunkedHash64::kGroupBytes;
  if (groups > 0) {
    kernel(bytes.data(), groups, lanes.data());
  }
  std::uint64_t h = kFnvBasis;
  for (const std::uint64_t lane : lanes) {
    h = (h ^ lane) * kFnvPrime;
  }
  std::uint64_t tail = kFnvBasis;
  for (std::size_t i = groups * ChunkedHash64::kGroupBytes; i < bytes.size(); ++i) {
    tail = (tail ^ bytes[i]) * kFnvPrime;
  }
  h = (h ^ tail) * kFnvPrime;
  h = (h ^ static_cast<std::uint64_t>(bytes.size())) * kFnvPrime;
  h ^= h >> 33;
  h *= 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  return h;
}

}  // namespace internal

bool ChunkedHashUsesAvx2() {
#ifdef CA_HASH_X86
  return ActiveGroupKernel() == &FoldGroupsAvx2;
#else
  return false;
#endif
}

bool ChunkedHashAvx2Available() { return CpuHasAvx2(); }

void ChunkedHash64::Reset() {
  for (std::size_t i = 0; i < kLanes; ++i) {
    lanes_[i] = kFnvBasis ^ (kLaneSeed * (i + 1));
  }
  pending_len_ = 0;
  total_len_ = 0;
}

void ChunkedHash64::Update(std::span<const std::uint8_t> chunk) {
  total_len_ += chunk.size();
  const std::uint8_t* p = chunk.data();
  std::size_t n = chunk.size();
  if (pending_len_ > 0) {
    const std::size_t take = std::min(n, kGroupBytes - pending_len_);
    std::memcpy(pending_.data() + pending_len_, p, take);
    pending_len_ += take;
    p += take;
    n -= take;
    if (pending_len_ < kGroupBytes) {
      return;
    }
    ActiveGroupKernel()(pending_.data(), 1, lanes_.data());
    pending_len_ = 0;
  }
  const std::size_t groups = n / kGroupBytes;
  if (groups > 0) {
    ActiveGroupKernel()(p, groups, lanes_.data());
    p += groups * kGroupBytes;
    n -= groups * kGroupBytes;
  }
  if (n > 0) {
    std::memcpy(pending_.data(), p, n);
    pending_len_ = n;
  }
}

std::uint64_t ChunkedHash64::Finalize() const {
  // Fold the lanes, then the (< kGroupBytes) tail byte-serially, then the
  // total length, so "same bytes, different split" collides but "same bytes
  // plus trailing zeros" does not.
  std::uint64_t h = kFnvBasis;
  for (const std::uint64_t lane : lanes_) {
    h = (h ^ lane) * kFnvPrime;
  }
  std::uint64_t tail = kFnvBasis;
  for (std::size_t i = 0; i < pending_len_; ++i) {
    tail = (tail ^ pending_[i]) * kFnvPrime;
  }
  h = (h ^ tail) * kFnvPrime;
  h = (h ^ total_len_) * kFnvPrime;
  // Final avalanche: FNV's last multiply barely stirs the high bits.
  h ^= h >> 33;
  h *= 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  return h;
}

std::uint64_t Checksum64(std::span<const std::uint8_t> bytes) {
  ChunkedHash64 hash;
  hash.Update(bytes);
  return hash.Finalize();
}

}  // namespace ca
