// Clang thread-safety-analysis annotations (no-ops on other compilers).
//
// These macros let the compiler prove lock discipline at build time: a
// member declared CA_GUARDED_BY(mu) may only be touched while `mu` is held,
// a function declared CA_REQUIRES(mu) may only be called with `mu` held, and
// so on. The build enables `-Wthread-safety -Werror=thread-safety` whenever
// the compiler is Clang, so violations are compile errors there; GCC builds
// compile the annotations away.
//
// The analysis only understands annotated lock types, so concurrency-bearing
// code uses ca::Mutex / ca::MutexLock / ca::CondVar (src/common/mutex.h)
// rather than the std primitives directly.
#ifndef CA_COMMON_THREAD_ANNOTATIONS_H_
#define CA_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// On classes: marks a type as a lock ("capability").
#define CA_CAPABILITY(x) CA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// On classes: an RAII object that acquires a capability in its constructor
// and releases it in its destructor.
#define CA_SCOPED_CAPABILITY CA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// On data members: the member may only be accessed while `x` is held.
#define CA_GUARDED_BY(x) CA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// On pointer members: the pointed-to data is protected by `x`.
#define CA_PT_GUARDED_BY(x) CA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// On functions: the caller must hold the listed capabilities.
#define CA_REQUIRES(...) CA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// On functions: the function acquires / releases the listed capabilities.
#define CA_ACQUIRE(...) CA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define CA_RELEASE(...) CA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// On functions: the caller must NOT hold the listed capabilities (guards
// against self-deadlock on non-reentrant mutexes).
#define CA_EXCLUDES(...) CA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// On functions: asserts (to the analysis, not at runtime) that the
// capability is held. Used inside lambdas invoked under a lock the analysis
// cannot see across the call boundary.
#define CA_ASSERT_CAPABILITY(x) CA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// On functions: returns a reference to the given capability.
#define CA_RETURN_CAPABILITY(x) CA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use must carry a
// comment justifying why the access is safe.
#define CA_NO_THREAD_SAFETY_ANALYSIS CA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CA_COMMON_THREAD_ANNOTATIONS_H_
