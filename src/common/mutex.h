// Annotated wrappers over the std synchronization primitives.
//
// Clang's thread-safety analysis only tracks lock operations whose types
// carry capability attributes; libstdc++'s std::mutex does not. These thin
// wrappers add the attributes (zero overhead: every method is an inline
// forward) so CA_GUARDED_BY / CA_REQUIRES contracts are machine-checked on
// Clang builds. See src/common/thread_annotations.h.
//
// Runtime lock-order (deadlock) detection (DESIGN.md §13): every Lock/Unlock
// additionally carries a branch-gated hook into a process-global lock-order
// graph. When detection is enabled (SetDeadlockDetectEnabled, the
// CA_DEADLOCK_DETECT cmake option, or the CA_DEADLOCK_DETECT=1 environment
// variable) each acquisition records "every lock currently held by this
// thread → the lock being acquired" edges, keyed by mutex instance and
// labeled with the acquiring call sites (std::source_location, so call sites
// need no changes). A cycle — the classic A→B on one thread, B→A on another
// — aborts immediately with a readable report naming both acquisition sites,
// *before* blocking, so an actual deadlock is reported instead of hung.
// When detection is disabled (the default) the cost per Lock is one relaxed
// atomic load and an untaken branch (benchmarked: BM_MutexLockDetectDisabled).
//
// Canonical lock order across the system (outermost first; acquiring
// leftward while holding rightward is a cycle waiting for its second thread):
//
//   ServingLoop::mutex_  →  CachedAttentionEngine::mutex_
//     →  PooledBlockStorage::mutex_ / FaultInjectingBlockStorage::mutex_
//   CachedAttentionEngine::mutex_  →  MetricsRegistry::mu_ (PublishMetrics)
//   Tracer::mu_  →  Tracer::ThreadBuffer::mu (registration/export)
//   any module lock  →  HistogramMetric::mu_ / trace ThreadBuffer::mu (leaves)
//
// ThreadPool::mutex_ is never held while a task body runs, so task bodies
// may take any lock above. New nesting must point down this list; the
// detector enforces it at runtime.
#ifndef CA_COMMON_MUTEX_H_
#define CA_COMMON_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <source_location>
#include <utility>

#include "src/common/thread_annotations.h"

namespace ca {

class Mutex;

namespace internal {

// Branch gate for the lock-order detector. `g_deadlock_detect` is the live
// on/off switch read on every Lock; `g_deadlock_seen` latches once detection
// has ever been on, keeping the release/destroy bookkeeping active so
// held-lock stacks and the graph never go stale across a disable.
extern std::atomic<bool> g_deadlock_detect;
extern std::atomic<bool> g_deadlock_seen;

// Records held→acquiring edges and aborts with a cycle report on inversion.
// Called before the underlying lock blocks.
void DeadlockOnAcquire(const Mutex* mu, const std::source_location& loc);
// Pops `mu` from the calling thread's held-lock stack (tolerates absence:
// detection may have been enabled mid-hold).
void DeadlockOnRelease(const Mutex* mu);
// Removes `mu`'s node and edges so a later allocation at the same address
// cannot inherit them.
void DeadlockOnDestroy(const Mutex* mu);

}  // namespace internal

// Runtime switch for lock-order detection. Enabling is sticky in one sense:
// release-side bookkeeping stays on for the process lifetime so the detector
// can be re-enabled without stale state. Thread-safe.
void SetDeadlockDetectEnabled(bool on);
bool DeadlockDetectEnabled();

// Annotated std::mutex.
class CA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // Optional static name shown in lock-order cycle reports
  // ("CachedAttentionEngine::mutex_"). `name` must outlive the mutex.
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  ~Mutex() {
    if (internal::g_deadlock_seen.load(std::memory_order_relaxed)) {
      internal::DeadlockOnDestroy(this);
    }
  }

  void Lock(const std::source_location& loc = std::source_location::current()) CA_ACQUIRE() {
    if (internal::g_deadlock_detect.load(std::memory_order_relaxed)) [[unlikely]] {
      internal::DeadlockOnAcquire(this, loc);
    }
    mu_.lock();
  }
  void Unlock() CA_RELEASE() {
    mu_.unlock();
    if (internal::g_deadlock_seen.load(std::memory_order_relaxed)) [[unlikely]] {
      internal::DeadlockOnRelease(this);
    }
  }

  // Tells the analysis (not the runtime) that this mutex is held. Use inside
  // lambdas that are only ever invoked with the lock held, where the
  // analysis cannot see the acquisition across the call boundary.
  void AssertHeld() const CA_ASSERT_CAPABILITY(this) {}

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  const char* const name_ = nullptr;
  std::mutex mu_;
};

// RAII lock for ca::Mutex (the annotated std::lock_guard). The implicit
// std::source_location parameter labels this acquisition in lock-order
// cycle reports.
class CA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu,
                     const std::source_location& loc = std::source_location::current())
      CA_ACQUIRE(mu)
      : mu_(&mu) {
    mu_->Lock(loc);
  }
  ~MutexLock() CA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable usable with ca::Mutex. Wait() must be called with the
// mutex held (enforced by the analysis); it atomically releases the mutex
// while blocked and re-holds it on return, exactly like
// std::condition_variable::wait. The lock-order detector keeps the mutex on
// the waiter's held stack across the wait — correct for ordering purposes,
// since a blocked waiter acquires nothing and holds the mutex again the
// moment Wait returns.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) CA_REQUIRES(mu) {
    // Adopt the already-held mutex into a unique_lock for the wait, then
    // release the unique_lock's ownership so the caller's (annotated)
    // holding of `mu` stays accurate.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ca

#endif  // CA_COMMON_MUTEX_H_
