// Annotated wrappers over the std synchronization primitives.
//
// Clang's thread-safety analysis only tracks lock operations whose types
// carry capability attributes; libstdc++'s std::mutex does not. These thin
// wrappers add the attributes (zero overhead: every method is an inline
// forward) so CA_GUARDED_BY / CA_REQUIRES contracts are machine-checked on
// Clang builds. See src/common/thread_annotations.h.
#ifndef CA_COMMON_MUTEX_H_
#define CA_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "src/common/thread_annotations.h"

namespace ca {

// Annotated std::mutex.
class CA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CA_ACQUIRE() { mu_.lock(); }
  void Unlock() CA_RELEASE() { mu_.unlock(); }

  // Tells the analysis (not the runtime) that this mutex is held. Use inside
  // lambdas that are only ever invoked with the lock held, where the
  // analysis cannot see the acquisition across the call boundary.
  void AssertHeld() const CA_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for ca::Mutex (the annotated std::lock_guard).
class CA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CA_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() CA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable usable with ca::Mutex. Wait() must be called with the
// mutex held (enforced by the analysis); it atomically releases the mutex
// while blocked and re-holds it on return, exactly like
// std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) CA_REQUIRES(mu) {
    // Adopt the already-held mutex into a unique_lock for the wait, then
    // release the unique_lock's ownership so the caller's (annotated)
    // holding of `mu` stays accurate.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ca

#endif  // CA_COMMON_MUTEX_H_
