// Minimal leveled logger. Thread-safe at line granularity.
//
// Usage: CA_LOG(Info) << "fetched " << n << " blocks";
// Level is filtered by Logger::set_min_level (default Info); tests and
// benches lower it to Warn to keep output clean.
#ifndef CA_COMMON_LOGGING_H_
#define CA_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string_view>

namespace ca {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);

class Logger {
 public:
  static Logger& Get();

  // Atomic: tests and benches flip the level while worker threads (the
  // async save stream, ParallelFor helpers) are concurrently logging.
  void set_min_level(LogLevel level) { min_level_.store(level, std::memory_order_relaxed); }
  LogLevel min_level() const { return min_level_.load(std::memory_order_relaxed); }

  void Write(LogLevel level, std::string_view file, int line, std::string_view message);

 private:
  Logger() = default;
  std::atomic<LogLevel> min_level_{LogLevel::kInfo};
  std::mutex mutex_;
};

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { Logger::Get().Write(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ca

#define CA_LOG(level) ::ca::internal::LogLine(::ca::LogLevel::k##level, __FILE__, __LINE__)

#endif  // CA_COMMON_LOGGING_H_
