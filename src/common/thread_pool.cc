#include "src/common/thread_pool.h"

#include "src/common/check.h"

namespace ca {

ThreadPool::ThreadPool(std::size_t num_threads) {
  CA_CHECK_GT(num_threads, 0U);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    CA_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  all_done_.Wait(mutex_, [this] {
    mutex_.AssertHeld();
    return queue_.empty() && in_flight_ == 0;
  });
}

std::size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      task_available_.Wait(mutex_, [this] {
        mutex_.AssertHeld();
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.NotifyAll();
      }
    }
  }
}

}  // namespace ca
