#include "src/common/units.h"

#include <array>
#include <cstdio>

namespace ca {

std::string FormatBytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < kSuffix.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kSuffix[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kSuffix[idx]);
  }
  return buf;
}

std::string FormatDuration(SimTime t) {
  char buf[32];
  const double abs_t = static_cast<double>(t < 0 ? -t : t);
  if (abs_t < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%ld ns", static_cast<long>(t));
  } else if (abs_t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f us", static_cast<double>(t) / kMicrosecond);
  } else if (abs_t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(t) / kMillisecond);
  } else if (abs_t < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(t) / kSecond);
  } else if (abs_t < kHour) {
    std::snprintf(buf, sizeof(buf), "%.2f min", static_cast<double>(t) / kMinute);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f h", static_cast<double>(t) / kHour);
  }
  return buf;
}

}  // namespace ca
