// Data-parallel index loop on top of ThreadPool.
//
// ParallelFor splits [begin, end) into contiguous chunks of at most `grain`
// indices and runs `fn(chunk_begin, chunk_end)` for each chunk, using the
// pool's workers *and* the calling thread. It blocks until every chunk has
// finished, and only its own chunks — concurrent ParallelFor calls may share
// one pool without waiting on each other's work (unlike ThreadPool::Wait).
//
// Determinism contract: chunk boundaries only partition the index space;
// every index is visited exactly once and each fn invocation iterates its
// chunk in ascending order on a single thread. A kernel whose per-index
// computation does not depend on the chunk boundaries (e.g. one output row
// per index, reduced in a fixed order) therefore produces bitwise-identical
// results for any pool size, including pool == nullptr (fully serial, on the
// calling thread, in one chunk-sized step at a time).
#ifndef CA_COMMON_PARALLEL_FOR_H_
#define CA_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "src/common/thread_pool.h"

namespace ca {

// Runs fn(chunk_begin, chunk_end) over disjoint chunks covering
// [begin, end), each chunk at most `grain` indices (grain 0 is treated as
// 1). With a null pool, or a range that fits in a single chunk, fn runs
// inline on the calling thread. fn must not throw (this codebase is
// exception-free; workers would terminate).
void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace ca

#endif  // CA_COMMON_PARALLEL_FOR_H_
