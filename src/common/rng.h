// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component (workload generator, arrival process, model
// weight init) takes an explicit Rng so experiments are reproducible and
// independent streams can be derived per component via Fork().
#ifndef CA_COMMON_RNG_H_
#define CA_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace ca {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f; }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for our bounds (<< 2^32).
    return NextU64() % bound;
  }

  // Uniform integer in [lo, hi].
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    const double u1 = 1.0 - NextDouble();  // avoid log(0)
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate) {
    const double u = 1.0 - NextDouble();
    return -std::log(u) / rate;
  }

  // Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Derives an independent child stream.
  Rng Fork() { return Rng(NextU64()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace ca

#endif  // CA_COMMON_RNG_H_
