#include "src/common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/common/mutex.h"
// NOLINT(include-layering): deliberate back-edge — trace.h is header-only,
// so chunk spans cost no ca_common -> ca_obs link dependency (DESIGN.md §11).
#include "src/obs/trace.h"  // NOLINT(include-layering)

namespace ca {

namespace {

// Shared between the caller and its helper tasks. Heap-allocated and
// reference-counted because helper tasks can outlive the ParallelFor call:
// a task that reaches the front of the pool's queue after every chunk has
// already been claimed simply finds no work, but it still touches the state
// to discover that.
struct ParallelForState {
  // unguarded: the four fields below are written once before any task is
  // submitted and read-only while workers run.
  std::size_t end = 0;       // unguarded: see above
  std::size_t grain = 1;     // unguarded: see above
  std::size_t n_chunks = 0;  // unguarded: see above
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;  // unguarded: see above

  std::atomic<std::size_t> next_chunk_begin{0};

  Mutex mutex;
  CondVar all_done;
  std::size_t chunks_done CA_GUARDED_BY(mutex) = 0;

  // Claims and runs chunks until none remain. Returns true if it completed
  // the final outstanding chunk. `fn` is guaranteed live here: a chunk can
  // only be claimed before the caller observed chunks_done == n_chunks.
  bool RunChunks() {
    std::size_t completed = 0;
    for (;;) {
      const std::size_t chunk_begin = next_chunk_begin.fetch_add(grain);
      if (chunk_begin >= end) {
        break;
      }
      (*fn)(chunk_begin, std::min(end, chunk_begin + grain));
      ++completed;
    }
    if (completed == 0) {
      return false;
    }
    MutexLock lock(mutex);
    chunks_done += completed;
    return chunks_done == n_chunks;
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n_chunks = (end - begin - 1) / grain + 1;
  if (pool == nullptr || n_chunks == 1) {
    for (std::size_t b = begin; b < end; b += grain) {
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->end = end;
  state->grain = grain;
  state->n_chunks = n_chunks;
  state->fn = &fn;
  state->next_chunk_begin.store(begin);

  // Span on the calling thread; helper work is parented to it with an
  // explicit flow link (one per call, not per chunk, so tracing stays cheap
  // relative to the kernels it observes). flow == 0 when tracing is off,
  // which makes every helper-side trace call a no-op.
  CA_TRACE_SPAN("parallel_for", "chunks", n_chunks);
  const std::uint64_t flow =
      Tracer::Get().enabled() ? Tracer::Get().NextFlowId() : 0;
  CA_TRACE_FLOW_BEGIN("parallel_for.fanout", flow);

  // One helper per worker, capped by the number of chunks beyond the one the
  // calling thread will take itself.
  const std::size_t helpers = std::min(pool->num_threads(), n_chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool->Submit([state, flow] {
      CA_TRACE_SPAN("parallel_for.worker");
      CA_TRACE_FLOW_END("parallel_for.fanout", flow);
      if (state->RunChunks()) {
        state->all_done.NotifyAll();
      }
    });
  }

  // The calling thread participates instead of idling, then blocks until the
  // helpers have drained the chunks they claimed.
  const bool finished_last = state->RunChunks();
  if (finished_last) {
    state->all_done.NotifyAll();
  }
  MutexLock lock(state->mutex);
  state->all_done.Wait(state->mutex, [&state] {
    state->mutex.AssertHeld();
    return state->chunks_done == state->n_chunks;
  });
}

}  // namespace ca
