#include "src/workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace ca {

Status SaveTraceCsv(const std::vector<SessionTrace>& sessions, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "session_id,arrival_ns,turn_index,q_tokens,a_tokens,think_ns\n");
  for (const SessionTrace& s : sessions) {
    for (std::size_t j = 0; j < s.turns.size(); ++j) {
      std::fprintf(f, "%" PRIu64 ",%" PRId64 ",%zu,%u,%u,%" PRId64 "\n", s.id, s.arrival, j,
                   s.turns[j].q_tokens, s.turns[j].a_tokens, s.think_times[j]);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

Result<std::vector<SessionTrace>> LoadTraceCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return IoError("cannot open " + path + " for reading");
  }
  char line[256];
  // Header.
  if (std::fgets(line, sizeof(line), f) == nullptr) {
    std::fclose(f);
    return IoError("empty trace file " + path);
  }
  // Sessions appear grouped in file order but we tolerate any order.
  std::map<SessionId, SessionTrace> by_id;
  std::size_t line_no = 1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    std::uint64_t session = 0;
    std::int64_t arrival = 0;
    std::size_t turn_index = 0;
    unsigned q = 0;
    unsigned a = 0;
    std::int64_t think = 0;
    const int got = std::sscanf(line, "%" SCNu64 ",%" SCNd64 ",%zu,%u,%u,%" SCNd64, &session,
                                &arrival, &turn_index, &q, &a, &think);
    if (got != 6) {
      std::fclose(f);
      return IoError("malformed trace line " + std::to_string(line_no) + " in " + path);
    }
    SessionTrace& trace = by_id[session];
    trace.id = session;
    trace.arrival = arrival;
    if (trace.turns.size() <= turn_index) {
      trace.turns.resize(turn_index + 1);
      trace.think_times.resize(turn_index + 1, 0);
    }
    trace.turns[turn_index] = Turn{.q_tokens = q, .a_tokens = a};
    trace.think_times[turn_index] = think;
  }
  std::fclose(f);
  std::vector<SessionTrace> out;
  out.reserve(by_id.size());
  for (auto& [id, trace] : by_id) {
    out.push_back(std::move(trace));
  }
  return out;
}

}  // namespace ca
