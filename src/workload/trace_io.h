// CSV persistence for workload traces so experiments can be re-run on
// identical inputs or inspected with external tooling.
//
// Format: one row per turn:
//   session_id,arrival_ns,turn_index,q_tokens,a_tokens,think_ns
#ifndef CA_WORKLOAD_TRACE_IO_H_
#define CA_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workload/sharegpt.h"

namespace ca {

Status SaveTraceCsv(const std::vector<SessionTrace>& sessions, const std::string& path);

Result<std::vector<SessionTrace>> LoadTraceCsv(const std::string& path);

}  // namespace ca

#endif  // CA_WORKLOAD_TRACE_IO_H_
