// Synthetic ShareGPT-like multi-turn conversation workload.
//
// The real ShareGPT dump is not shipped here; instead the generator
// reproduces the published marginals the paper's experiments depend on
// (§2.3, Fig. 2, §4.2):
//   * 73% of conversations are multi-turn; mean 5.75 turns per session,
//     long tail to ~40 turns.
//   * 47% / 30% of sessions exceed 2K / 4K total tokens; tail to ~32K.
//   * per-turn new input is a small fraction of the accumulated history
//     (>99% historical tokens by turn ~10, Fig. 4a).
// Turn counts use a shifted geometric mixture; per-turn question/answer
// lengths use lognormals. Defaults were calibrated against those targets
// (see workload_test.cc for the enforced tolerance bands).
#ifndef CA_WORKLOAD_SHAREGPT_H_
#define CA_WORKLOAD_SHAREGPT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/store/types.h"

namespace ca {

// One conversation turn: the user question and the assistant answer lengths
// in tokens.
struct Turn {
  std::uint32_t q_tokens = 0;
  std::uint32_t a_tokens = 0;

  std::uint32_t total() const { return q_tokens + a_tokens; }
};

// A full conversation session trace.
struct SessionTrace {
  SessionId id = kInvalidSession;
  // Arrival of the session's first turn (assigned by the arrival process).
  SimTime arrival = 0;
  std::vector<Turn> turns;
  // User think time before each turn j >= 1 (seconds after the previous
  // response completed). think_times.size() == turns.size(); entry 0 unused.
  std::vector<SimTime> think_times;

  std::uint32_t total_tokens() const {
    std::uint32_t sum = 0;
    for (const Turn& t : turns) {
      sum += t.total();
    }
    return sum;
  }
};

struct ShareGptConfig {
  // Probability a conversation is single-turn (paper: 27%).
  double single_turn_prob = 0.27;
  // Multi-turn sessions have 2 + Geometric(p) turns.
  double extra_turn_geometric_p = 0.154;  // mean extra turns ~5.5 -> E[turns] ~= 5.75
  std::uint32_t max_turns = 40;

  // Question length ~ LogNormal(mu, sigma) tokens (clamped to >= 4).
  double q_log_mean = 5.0;   // median ~148 tokens
  double q_log_sigma = 1.6;  // questions carry the heavy tail (pasted code/documents)
  // Answer length ~ LogNormal(mu, sigma) tokens (ShareGPT answers average
  // ~200-250 tokens).
  double a_log_mean = 4.9;   // median ~134 tokens
  double a_log_sigma = 0.6;
  // Per-session verbosity multiplier ~ LogNormal(0, sigma), applied to every
  // turn of the session. Verbose conversations stay verbose, which is what
  // produces the heavy session-length tail of Fig. 2b without inflating the
  // mean per-turn answer length.
  double verbosity_log_sigma = 0.5;
  std::uint32_t max_turn_tokens = 4096;

  // User think time between turns ~ Exponential(mean). This is not published
  // in the paper; 60 s is our assumption (see DESIGN.md) — it controls how
  // long a session stays inactive between turns.
  double think_time_mean_s = 15.0;
};

class ShareGptGenerator {
 public:
  ShareGptGenerator(ShareGptConfig config, std::uint64_t seed);

  // Generates `n` session traces with ids 0..n-1 (arrival times are left at
  // zero; use an ArrivalProcess to assign them).
  std::vector<SessionTrace> Generate(std::size_t n);

  // Generates a single session trace.
  SessionTrace GenerateSession(SessionId id);

 private:
  std::uint32_t SampleTurnCount(double verbosity);
  std::uint32_t SampleLogNormal(double log_mean, double log_sigma, std::uint32_t lo,
                                std::uint32_t hi);

  ShareGptConfig config_;
  Rng rng_;
};

// Aggregate statistics over a workload (used by tests and Fig. 2).
struct WorkloadSummary {
  std::size_t sessions = 0;
  std::size_t total_turns = 0;
  double mean_turns = 0.0;
  double multi_turn_fraction = 0.0;
  double frac_sessions_over_2k = 0.0;
  double frac_sessions_over_4k = 0.0;
  double mean_session_tokens = 0.0;
};

WorkloadSummary Summarize(const std::vector<SessionTrace>& sessions);

// Shared-prefix population (DESIGN.md §17): fleets of sessions that all open
// on the same system prompt — the workload where cross-session KV dedup pays
// off. SharedPrefixPrompt materialises a deterministic common prompt: the
// same (prefix_tokens, vocab, seed) always yields the same token ids, so
// every session (and every node of a cluster) opens on a bitwise-identical
// prefix. Token ids are int32 to match the model layer's TokenId without a
// dependency on it.
std::vector<std::int32_t> SharedPrefixPrompt(std::size_t prefix_tokens, std::size_t vocab,
                                             std::uint64_t seed);

// Folds a common prompt of `prefix_tokens` into each session's first turn so
// workload summaries and trace CSVs account for the extra prefill. Returns
// the number of sessions adjusted (sessions without turns are skipped).
std::size_t ApplySharedPrefix(std::vector<SessionTrace>& sessions, std::uint32_t prefix_tokens);

}  // namespace ca

#endif  // CA_WORKLOAD_SHAREGPT_H_
