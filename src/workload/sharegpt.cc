#include "src/workload/sharegpt.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace ca {

ShareGptGenerator::ShareGptGenerator(ShareGptConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  CA_CHECK(config.single_turn_prob >= 0.0 && config.single_turn_prob <= 1.0);
  CA_CHECK(config.extra_turn_geometric_p > 0.0 && config.extra_turn_geometric_p <= 1.0);
}

std::uint32_t ShareGptGenerator::SampleTurnCount(double verbosity) {
  if (rng_.NextBool(config_.single_turn_prob)) {
    return 1;
  }
  // 2 + Geometric(p) counting failures before the first success. Verbose
  // sessions also run longer (turn count scales with e^verbosity); the base
  // mean is deflated by E[e^v] = e^{sigma^2/2} so the overall mean matches
  // the paper's 5.75 turns/session.
  const double sigma = config_.verbosity_log_sigma;
  const double base_mean = (1.0 - config_.extra_turn_geometric_p) /
                           config_.extra_turn_geometric_p / std::exp(sigma * sigma / 2.0);
  const double mean_extra = base_mean * std::exp(verbosity);
  const double p = 1.0 / (1.0 + mean_extra);
  std::uint32_t turns = 2;
  while (turns < config_.max_turns && !rng_.NextBool(p)) {
    ++turns;
  }
  return turns;
}

std::uint32_t ShareGptGenerator::SampleLogNormal(double log_mean, double log_sigma,
                                                 std::uint32_t lo, std::uint32_t hi) {
  const double v = std::exp(log_mean + log_sigma * rng_.NextGaussian());
  const double clamped = std::clamp(v, static_cast<double>(lo), static_cast<double>(hi));
  return static_cast<std::uint32_t>(clamped);
}

SessionTrace ShareGptGenerator::GenerateSession(SessionId id) {
  SessionTrace trace;
  trace.id = id;
  // Session-level verbosity shifts every turn's lengths (and the turn count)
  // coherently.
  const double verbosity = config_.verbosity_log_sigma * rng_.NextGaussian();
  const std::uint32_t turns = SampleTurnCount(verbosity);
  trace.turns.reserve(turns);
  trace.think_times.reserve(turns);
  for (std::uint32_t j = 0; j < turns; ++j) {
    Turn turn;
    turn.q_tokens = SampleLogNormal(config_.q_log_mean + verbosity, config_.q_log_sigma, 4,
                                    config_.max_turn_tokens);
    turn.a_tokens = SampleLogNormal(config_.a_log_mean + verbosity, config_.a_log_sigma, 4,
                                    config_.max_turn_tokens);
    trace.turns.push_back(turn);
    trace.think_times.push_back(
        j == 0 ? 0 : FromSeconds(rng_.NextExponential(1.0 / config_.think_time_mean_s)));
  }
  return trace;
}

std::vector<SessionTrace> ShareGptGenerator::Generate(std::size_t n) {
  std::vector<SessionTrace> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(GenerateSession(static_cast<SessionId>(i)));
  }
  return out;
}

std::vector<std::int32_t> SharedPrefixPrompt(std::size_t prefix_tokens, std::size_t vocab,
                                             std::uint64_t seed) {
  CA_CHECK(vocab > 0);
  Rng rng(seed);
  std::vector<std::int32_t> prompt(prefix_tokens);
  for (auto& t : prompt) {
    t = static_cast<std::int32_t>(rng.NextBounded(vocab));
  }
  return prompt;
}

std::size_t ApplySharedPrefix(std::vector<SessionTrace>& sessions, std::uint32_t prefix_tokens) {
  std::size_t adjusted = 0;
  for (SessionTrace& s : sessions) {
    if (s.turns.empty()) {
      continue;
    }
    s.turns.front().q_tokens += prefix_tokens;
    ++adjusted;
  }
  return adjusted;
}

WorkloadSummary Summarize(const std::vector<SessionTrace>& sessions) {
  WorkloadSummary s;
  s.sessions = sessions.size();
  if (sessions.empty()) {
    return s;
  }
  std::size_t multi = 0;
  std::size_t over2k = 0;
  std::size_t over4k = 0;
  double token_sum = 0.0;
  for (const SessionTrace& t : sessions) {
    s.total_turns += t.turns.size();
    if (t.turns.size() > 1) {
      ++multi;
    }
    const std::uint32_t tokens = t.total_tokens();
    token_sum += tokens;
    if (tokens > 2048) {
      ++over2k;
    }
    if (tokens > 4096) {
      ++over4k;
    }
  }
  const double n = static_cast<double>(sessions.size());
  s.mean_turns = static_cast<double>(s.total_turns) / n;
  s.multi_turn_fraction = static_cast<double>(multi) / n;
  s.frac_sessions_over_2k = static_cast<double>(over2k) / n;
  s.frac_sessions_over_4k = static_cast<double>(over4k) / n;
  s.mean_session_tokens = token_sum / n;
  return s;
}

}  // namespace ca
