#include "src/workload/arrivals.h"

#include "src/common/check.h"

namespace ca {

PoissonArrivals::PoissonArrivals(double rate_per_second, std::uint64_t seed)
    : rate_(rate_per_second), rng_(seed) {
  CA_CHECK_GT(rate_per_second, 0.0);
}

SimTime PoissonArrivals::Next(SimTime now) {
  const double gap_s = rng_.NextExponential(rate_);
  const SimTime gap = FromSeconds(gap_s);
  return now + (gap > 0 ? gap : 1);
}

void AssignArrivals(std::vector<SessionTrace>& sessions, double rate_per_second,
                    std::uint64_t seed, SimTime start) {
  PoissonArrivals arrivals(rate_per_second, seed);
  SimTime t = start;
  for (SessionTrace& s : sessions) {
    t = arrivals.Next(t);
    s.arrival = t;
  }
}

}  // namespace ca
