// Session arrival process. The paper generates request arrival times from a
// Poisson distribution (λ sessions per second, §4.1); exponential
// inter-arrival gaps implement that here.
#ifndef CA_WORKLOAD_ARRIVALS_H_
#define CA_WORKLOAD_ARRIVALS_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/workload/sharegpt.h"

namespace ca {

class PoissonArrivals {
 public:
  // `rate_per_second` = λ, the expected number of new sessions per second.
  PoissonArrivals(double rate_per_second, std::uint64_t seed);

  // Next arrival timestamp strictly after `now`.
  SimTime Next(SimTime now);

  double rate_per_second() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
};

// Stamps each trace's first-turn arrival with consecutive Poisson arrivals
// starting at `start`.
void AssignArrivals(std::vector<SessionTrace>& sessions, double rate_per_second,
                    std::uint64_t seed, SimTime start = 0);

}  // namespace ca

#endif  // CA_WORKLOAD_ARRIVALS_H_
