// Metrics registry (DESIGN.md §11): named counters, gauges and histograms
// with label support and text/JSON snapshot export.
//
// Before this layer every module kept private counter structs (EngineStats,
// StoreStats) with no shared registry and no export; the registry gives the
// whole stack one namespace of metrics that tools (examples/obs_inspector)
// and tests can snapshot uniformly. The private structs remain the
// low-overhead source of truth on their hot paths and are *republished*
// into the registry (CachedAttentionEngine::PublishMetrics,
// AttentionStore::PublishMetrics).
//
// Handles: GetCounter/GetGauge/GetHistogram intern the (name, labels) pair
// under the registry mutex and return a reference that stays valid for the
// registry's lifetime. Hot paths must cache the reference (registration is
// a map lookup; the returned handle's Add/Set/Observe are one relaxed
// atomic or one uncontended mutex). Labels distinguish streams of one
// logical metric, e.g. GetCounter("store.hits", {{"tier", "dram"}}).
//
// Thread safety: every handle operation and Snapshot() are thread-safe;
// snapshots taken while writers are active see each metric atomically
// (counters/gauges are single atomics; histograms lock per-handle, which is
// what makes reading their Samples safe — see the contract note in
// src/common/stats.h).
#ifndef CA_OBS_METRICS_H_
#define CA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/common/thread_annotations.h"

namespace ca {

// One (key, value) metric label. Keys and values are plain strings; the
// registry sorts labels so {"a=1","b=2"} and {"b=2","a=1"} intern to the
// same metric.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  // Republishing hook for pre-existing cumulative stats structs; regular
  // instrumentation should only ever Add.
  void Set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time level (queue depth, bytes resident, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution metric: Welford moments (RunningStat) plus exact quantiles
// (Samples), both from src/common/stats.h, serialized behind a per-handle
// mutex so snapshot readers never race sample writers.
class HistogramMetric {
 public:
  void Observe(double v) CA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    stat_.Add(v);
    samples_.Add(v);
  }

  struct View {
    std::size_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  View Snapshot() const CA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"obs.HistogramMetric"};
  RunningStat stat_ CA_GUARDED_BY(mu_);
  Samples samples_ CA_GUARDED_BY(mu_);
};

// A full point-in-time copy of the registry, ordered by metric key.
struct MetricsSnapshot {
  struct CounterSample {
    std::string key;  // "name{label=value,...}" (no braces when unlabeled)
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string key;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string key;
    HistogramMetric::View view;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Human-readable aligned dump (one metric per line).
  std::string ToText() const;
  // JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry all built-in instrumentation publishes to. Tests
  // may construct private registries instead.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, const MetricLabels& labels = {})
      CA_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name, const MetricLabels& labels = {}) CA_EXCLUDES(mu_);
  HistogramMetric& GetHistogram(std::string_view name, const MetricLabels& labels = {})
      CA_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const CA_EXCLUDES(mu_);

  // Canonical "name{k=v,...}" key (labels sorted by key). Exposed for tests.
  static std::string EncodeKey(std::string_view name, const MetricLabels& labels);

  // Drops every registered metric. Outstanding handles dangle — only for
  // tests that own the registry's full lifecycle.
  void ResetForTesting() CA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"obs.MetricsRegistry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ CA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ CA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_ CA_GUARDED_BY(mu_);
};

}  // namespace ca

#endif  // CA_OBS_METRICS_H_
