#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace ca {

namespace {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendJsonNumber(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

HistogramMetric::View HistogramMetric::Snapshot() const {
  MutexLock lock(mu_);
  View v;
  v.count = stat_.count();
  v.sum = stat_.sum();
  v.mean = stat_.mean();
  v.min = stat_.min();
  v.max = stat_.max();
  v.p50 = samples_.p50();
  v.p95 = samples_.p95();
  v.p99 = samples_.p99();
  return v;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // NOLINT(naked-new): leaky singleton
  return *registry;
}

std::string MetricsRegistry::EncodeKey(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  if (labels.empty()) {
    return key;
  }
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      key += ',';
    }
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, const MetricLabels& labels) {
  const std::string key = EncodeKey(name, labels);
  MutexLock lock(mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, const MetricLabels& labels) {
  const std::string key = EncodeKey(name, labels);
  MutexLock lock(mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(std::string_view name,
                                               const MetricLabels& labels) {
  const std::string key = EncodeKey(name, labels);
  MutexLock lock(mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snap.counters.push_back({key, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snap.gauges.push_back({key, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, histogram] : histograms_) {
    snap.histograms.push_back({key, histogram->Snapshot()});
  }
  return snap;
}

void MetricsRegistry::ResetForTesting() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsSnapshot::ToText() const {
  std::size_t width = 0;
  for (const auto& c : counters) {
    width = std::max(width, c.key.size());
  }
  for (const auto& g : gauges) {
    width = std::max(width, g.key.size());
  }
  for (const auto& h : histograms) {
    width = std::max(width, h.key.size());
  }
  std::string out;
  char buf[256];
  const int w = static_cast<int>(width);
  for (const auto& c : counters) {
    std::snprintf(buf, sizeof(buf), "%-*s  %llu\n", w, c.key.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    std::snprintf(buf, sizeof(buf), "%-*s  %.6g\n", w, g.key.c_str(), g.value);
    out += buf;
  }
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-*s  count=%zu mean=%.6g min=%.6g max=%.6g p50=%.6g p95=%.6g p99=%.6g\n", w,
                  h.key.c_str(), h.view.count, h.view.mean, h.view.min, h.view.max, h.view.p50,
                  h.view.p95, h.view.p99);
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    AppendJsonEscaped(out, counters[i].key);
    out += "\":";
    out += std::to_string(counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    AppendJsonEscaped(out, gauges[i].key);
    out += "\":";
    AppendJsonNumber(out, gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    const auto& h = histograms[i];
    out += '"';
    AppendJsonEscaped(out, h.key);
    out += "\":{\"count\":";
    out += std::to_string(h.view.count);
    out += ",\"sum\":";
    AppendJsonNumber(out, h.view.sum);
    out += ",\"mean\":";
    AppendJsonNumber(out, h.view.mean);
    out += ",\"min\":";
    AppendJsonNumber(out, h.view.min);
    out += ",\"max\":";
    AppendJsonNumber(out, h.view.max);
    out += ",\"p50\":";
    AppendJsonNumber(out, h.view.p50);
    out += ",\"p95\":";
    AppendJsonNumber(out, h.view.p95);
    out += ",\"p99\":";
    AppendJsonNumber(out, h.view.p99);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace ca
