// Span tracer with Chrome trace-event export (DESIGN.md §11).
//
// The paper's headline mechanisms are *timing overlaps* — layer-wise
// pre-loading hidden behind computation (§3.2.1) and asynchronous saving
// hidden behind decode (§3.2.2). The tracer makes those overlaps visible:
// RAII spans on every interesting code path (engine turns, store I/O,
// prefetcher preloads, the async save stream) are exported as Chrome
// trace-event JSON, so one conversation turn can be opened in
// chrome://tracing or https://ui.perfetto.dev and the preload/compute and
// save/decode concurrency inspected on a real timeline.
//
// Usage:
//   CA_TRACE_SPAN("prefill", "tokens", n);             // RAII scope
//   CA_TRACE_INSTANT("store.retry", "tier", "disk");   // point event
//   CA_TRACE_COUNTER("queue_depth", depth);            // counter track
//   const std::uint64_t flow = Tracer::Get().NextFlowId();
//   CA_TRACE_FLOW_BEGIN("save", flow);   // producer thread
//   CA_TRACE_FLOW_END("save", flow);     // consumer thread (links arrows)
//
// Overhead contract (DESIGN.md §11): tracing is compiled in but branch
// gated. When disabled (the default) every macro costs one relaxed atomic
// load plus a zeroed span object; argument expressions are NOT evaluated
// (they sit in the untaken branch of a conditional expression). The
// BM_TraceSpanDisabled micro-benchmark and the BM_TransformerDecodeStep
// trajectory in BENCH_kernels.json hold this under 1% on the decode path.
// Tracing never perturbs results: replies are bitwise identical with
// tracing on vs. off (ObsTest.RepliesBitwiseIdenticalTracingOnVsOff).
//
// Threading: events are recorded into per-thread buffers (registered on
// first use, guarded by a per-buffer mutex that is uncontended in steady
// state); export merges and time-sorts all buffers and may run concurrently
// with recording. Cross-thread causality (e.g. the async-save stream) is
// expressed with explicit flow links, not guessed from timestamps.
//
// This header is deliberately header-only so the lowest layers
// (src/common/parallel_for.cc) can emit spans without a ca_common -> ca_obs
// link cycle; the metrics registry (src/obs/metrics.h) builds on ca_common
// normally.
#ifndef CA_OBS_TRACE_H_
#define CA_OBS_TRACE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace ca {

// Monotonic nanosecond clock. All wall-clock timing in src/core and
// src/store goes through this (enforced by the `no-raw-clock` lint rule) so
// every measured duration shares the tracer's timebase and shows up at the
// right place on an exported timeline.
inline std::uint64_t TraceNowNs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// One recorded trace event, in Chrome trace-event vocabulary: ph is the
// event phase — 'X' complete span, 'i' instant, 'C' counter, 's'/'f' flow
// start/finish. `args` holds pre-rendered JSON object members ("" if none).
struct TraceEvent {
  char ph = 'X';
  std::uint32_t tid = 0;
  const char* name = nullptr;  // static string (never freed)
  const char* cat = "ca";      // static string
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // 'X' only
  std::uint64_t flow_id = 0; // 's'/'f' only
  std::string args;
};

namespace internal {

// --- inline JSON arg rendering (only runs when tracing is enabled) --------

inline void TraceJsonEscape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline void TraceAppendValue(std::string& out, std::string_view v) {
  out += '"';
  TraceJsonEscape(out, v);
  out += '"';
}
inline void TraceAppendValue(std::string& out, const char* v) {
  TraceAppendValue(out, std::string_view(v));
}
inline void TraceAppendValue(std::string& out, const std::string& v) {
  TraceAppendValue(out, std::string_view(v));
}
inline void TraceAppendValue(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}
template <typename T>
  requires std::is_integral_v<T>
inline void TraceAppendValue(std::string& out, T v) {
  out += std::to_string(v);
}

inline void TraceAppendArgs(std::string&) {}

template <typename V, typename... Rest>
inline void TraceAppendArgs(std::string& out, const char* key, const V& value, Rest&&... rest) {
  if (!out.empty()) {
    out += ',';
  }
  out += '"';
  out += key;  // keys are static identifiers; no escaping needed
  out += "\":";
  TraceAppendValue(out, value);
  TraceAppendArgs(out, std::forward<Rest>(rest)...);
}

}  // namespace internal

// Process-wide tracer singleton. Disabled by default; Enable()/Disable()
// bracket the workload of interest, ExportChromeJson() afterwards.
class Tracer {
 public:
  static Tracer& Get() {
    static Tracer* tracer = new Tracer();  // NOLINT(naked-new): leaky singleton
    return *tracer;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  void Enable() { SetEnabled(true); }
  void Disable() { SetEnabled(false); }

  // Monotonically increasing, never 0 (0 marks "no flow" in TraceEvent).
  std::uint64_t NextFlowId() { return next_flow_id_.fetch_add(1, std::memory_order_relaxed); }

  // Appends an event to the calling thread's buffer. Cheap: one uncontended
  // mutex acquisition plus a vector push. Buffers are bounded
  // (kMaxEventsPerThread); overflow drops the event and counts it.
  void Record(TraceEvent event) CA_EXCLUDES(mu_) {
    ThreadBuffer& buf = LocalBuffer();
    event.tid = buf.tid;
    MutexLock lock(buf.mu);
    if (buf.events.size() >= kMaxEventsPerThread) {
      ++buf.dropped;
      return;
    }
    buf.events.push_back(std::move(event));
  }

  template <typename... Args>
  void RecordInstant(const char* name, Args&&... args) {
    TraceEvent e;
    e.ph = 'i';
    e.name = name;
    e.ts_ns = TraceNowNs();
    internal::TraceAppendArgs(e.args, std::forward<Args>(args)...);
    Record(std::move(e));
  }

  void RecordCounter(const char* name, double value) {
    TraceEvent e;
    e.ph = 'C';
    e.name = name;
    e.ts_ns = TraceNowNs();
    internal::TraceAppendArgs(e.args, "value", value);
    Record(std::move(e));
  }

  void RecordFlow(char ph, const char* name, std::uint64_t flow_id) {
    TraceEvent e;
    e.ph = ph;
    e.name = name;
    e.cat = "flow";
    e.ts_ns = TraceNowNs();
    e.flow_id = flow_id;
    Record(std::move(e));
  }

  // Names the calling thread's track in the exported trace.
  void SetThreadName(std::string name) {
    ThreadBuffer& buf = LocalBuffer();
    MutexLock lock(buf.mu);
    buf.name = std::move(name);
  }

  // Drops all recorded events (buffers and thread registrations survive, so
  // held thread-local pointers stay valid).
  void Clear() CA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (const auto& buf : buffers_) {
      MutexLock buf_lock(buf->mu);
      buf->events.clear();
      buf->dropped = 0;
    }
  }

  std::size_t event_count() const CA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::size_t n = 0;
    for (const auto& buf : buffers_) {
      MutexLock buf_lock(buf->mu);
      n += buf->events.size();
    }
    return n;
  }

  std::size_t dropped_count() const CA_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::size_t n = 0;
    for (const auto& buf : buffers_) {
      MutexLock buf_lock(buf->mu);
      n += buf->dropped;
    }
    return n;
  }

  // Copies every recorded event, merged across threads and sorted by
  // timestamp. Test/introspection surface; ExportChromeJson builds on it.
  std::vector<TraceEvent> SnapshotEvents() const CA_EXCLUDES(mu_) {
    std::vector<TraceEvent> out;
    MutexLock lock(mu_);
    for (const auto& buf : buffers_) {
      MutexLock buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
    return out;
  }

  // Chrome trace-event JSON (the {"traceEvents": [...]} object form).
  // Timestamps are microseconds relative to the earliest recorded event so
  // viewers open at t=0 instead of hours of steady_clock uptime.
  std::string ExportChromeJson() const {
    const std::vector<TraceEvent> events = SnapshotEvents();
    const std::uint64_t t0 = events.empty() ? 0 : events.front().ts_ns;
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"cachedattention\"}}";
    {
      MutexLock lock(mu_);
      for (const auto& buf : buffers_) {
        MutexLock buf_lock(buf->mu);
        out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
        out += std::to_string(buf->tid);
        out += ",\"args\":{\"name\":\"";
        internal::TraceJsonEscape(out, buf->name);
        out += "\"}}";
      }
    }
    char num[48];
    for (const TraceEvent& e : events) {
      out += ",{\"name\":\"";
      internal::TraceJsonEscape(out, e.name == nullptr ? "?" : e.name);
      out += "\",\"cat\":\"";
      internal::TraceJsonEscape(out, e.cat == nullptr ? "ca" : e.cat);
      out += "\",\"ph\":\"";
      out += e.ph;
      out += "\",\"pid\":1,\"tid\":";
      out += std::to_string(e.tid);
      std::snprintf(num, sizeof(num), ",\"ts\":%.3f",
                    static_cast<double>(e.ts_ns - t0) / 1000.0);
      out += num;
      if (e.ph == 'X') {
        std::snprintf(num, sizeof(num), ",\"dur\":%.3f", static_cast<double>(e.dur_ns) / 1000.0);
        out += num;
      }
      if (e.ph == 's' || e.ph == 'f') {
        out += ",\"id\":";
        out += std::to_string(e.flow_id);
        if (e.ph == 'f') {
          out += ",\"bp\":\"e\"";  // bind to the enclosing slice
        }
      }
      if (e.ph == 'i') {
        out += ",\"s\":\"t\"";  // thread-scoped instant
      }
      if (!e.args.empty()) {
        out += ",\"args\":{";
        out += e.args;
        out += '}';
      }
      out += '}';
    }
    out += "]}";
    return out;
  }

  Status ExportChromeJsonToFile(const std::string& path) const {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f.is_open()) {
      return IoError("cannot open trace output file " + path);
    }
    const std::string json = ExportChromeJson();
    f.write(json.data(), static_cast<std::streamsize>(json.size()));
    f.flush();
    if (!f.good()) {
      return IoError("short write to trace output file " + path);
    }
    return Status::Ok();
  }

 private:
  // Generous bound: a multi-turn inspector run records a few thousand
  // events; runaway instrumentation hits the cap instead of eating RAM.
  static constexpr std::size_t kMaxEventsPerThread = 1U << 20;

  struct ThreadBuffer {
    mutable Mutex mu{"obs.Tracer.ThreadBuffer"};
    std::vector<TraceEvent> events CA_GUARDED_BY(mu);
    std::size_t dropped CA_GUARDED_BY(mu) = 0;
    std::uint32_t tid = 0;  // unguarded: written once at registration
    std::string name CA_GUARDED_BY(mu);
  };

  Tracer() = default;

  ThreadBuffer& LocalBuffer() CA_EXCLUDES(mu_) {
    thread_local ThreadBuffer* tl_buffer = nullptr;
    if (tl_buffer == nullptr) {
      auto buf = std::make_unique<ThreadBuffer>();
      MutexLock lock(mu_);
      buf->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
      {
        MutexLock buf_lock(buf->mu);
        buf->name = "thread-" + std::to_string(buf->tid);
      }
      tl_buffer = buf.get();
      buffers_.push_back(std::move(buf));
    }
    return *tl_buffer;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_flow_id_{1};
  mutable Mutex mu_{"obs.Tracer"};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ CA_GUARDED_BY(mu_);
};

// RAII span. Default-constructed spans are inert; Begin() arms them (the
// CA_TRACE_SPAN macro only calls Begin when tracing is enabled, so argument
// expressions cost nothing while tracing is off).
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  template <typename... Args>
  void Begin(const char* name, Args&&... args) {
    name_ = name;
    args_.clear();
    internal::TraceAppendArgs(args_, std::forward<Args>(args)...);
    start_ns_ = TraceNowNs();
  }

  // Closes the span early (also called by the destructor). Records even if
  // tracing was disabled mid-span, so scopes always pair up.
  void End() {
    if (start_ns_ == 0) {
      return;
    }
    TraceEvent e;
    e.ph = 'X';
    e.name = name_;
    e.ts_ns = start_ns_;
    e.dur_ns = TraceNowNs() - start_ns_;
    e.args = std::move(args_);
    start_ns_ = 0;
    Tracer::Get().Record(std::move(e));
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::string args_;
};

}  // namespace ca

#define CA_OBS_CONCAT_INNER_(a, b) a##b
#define CA_OBS_CONCAT_(a, b) CA_OBS_CONCAT_INNER_(a, b)

// RAII span covering the rest of the enclosing scope. Arguments after the
// name are key/value pairs: CA_TRACE_SPAN("prefill", "tokens", n).
#define CA_TRACE_SPAN(...)                                                  \
  ::ca::TraceSpan CA_OBS_CONCAT_(ca_trace_span_, __LINE__);                 \
  (::ca::Tracer::Get().enabled()                                            \
       ? CA_OBS_CONCAT_(ca_trace_span_, __LINE__).Begin(__VA_ARGS__)        \
       : void(0))

#define CA_TRACE_INSTANT(...)                                               \
  (::ca::Tracer::Get().enabled() ? ::ca::Tracer::Get().RecordInstant(__VA_ARGS__) : void(0))

#define CA_TRACE_COUNTER(name, value)                                       \
  (::ca::Tracer::Get().enabled()                                            \
       ? ::ca::Tracer::Get().RecordCounter((name), static_cast<double>(value)) \
       : void(0))

// Explicit cross-thread causality: call FLOW_BEGIN on the producing thread
// and FLOW_END (same name + id) inside the consuming span. `id` from
// Tracer::NextFlowId(); id 0 (the disabled-tracing value) records nothing.
#define CA_TRACE_FLOW_BEGIN(name, id)                                       \
  ((id) != 0 && ::ca::Tracer::Get().enabled()                               \
       ? ::ca::Tracer::Get().RecordFlow('s', (name), (id))                  \
       : void(0))

#define CA_TRACE_FLOW_END(name, id)                                         \
  ((id) != 0 && ::ca::Tracer::Get().enabled()                               \
       ? ::ca::Tracer::Get().RecordFlow('f', (name), (id))                  \
       : void(0))

#endif  // CA_OBS_TRACE_H_
