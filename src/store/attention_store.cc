#include "src/store/attention_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace ca {

namespace {

// Process-unique backing-file path for stores configured without an explicit
// disk_path (see StoreConfig::disk_path).
std::string UniqueDiskPath() {
  static std::atomic<std::uint64_t> counter{0};
  return "/tmp/ca_attention_store." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".blocks";
}

// Wraps a tier storage in the fault injector when the config asks for it.
std::unique_ptr<BlockStorage> MaybeInjectFaults(std::unique_ptr<BlockStorage> storage,
                                                const FaultConfig& fault) {
  if (!fault.enabled()) {
    return storage;
  }
  return std::make_unique<FaultInjectingBlockStorage>(std::move(storage), fault);
}

// True for error codes that mean the device (or the data on it) is broken,
// as opposed to transiently busy or merely full.
bool IsPermanentIoFailure(StatusCode code) {
  return code == StatusCode::kIoError || code == StatusCode::kInternal ||
         code == StatusCode::kDataLoss;
}

// Folds the checksum in while the payload streams towards the device, so
// the hash touches each block while it is still cache-hot from the fill —
// no separate whole-payload hashing pass (DESIGN.md §14). Hashing happens
// BEFORE any fault decorator or device can damage the bytes: the recorded
// checksum always covers the producer's clean payload.
class HashingSource final : public PayloadSource {
 public:
  HashingSource(PayloadSource& inner, bool enabled) : inner_(inner), enabled_(enabled) {}

  std::uint64_t size() const override { return inner_.size(); }
  void Reset() override {
    inner_.Reset();
    hash_.Reset();
  }
  void Fill(std::span<std::uint8_t> dest) override {
    inner_.Fill(dest);
    if (enabled_) {
      hash_.Update(dest);
    }
  }

  std::uint64_t digest() const { return enabled_ ? hash_.Finalize() : 0; }

 private:
  PayloadSource& inner_;
  const bool enabled_;
  ChunkedHash64 hash_;
};

// Read-side twin: hashes the chunks as they stream past on their way to the
// consumer, so the verification costs no second pass over the payload.
class HashingSink final : public PayloadSink {
 public:
  HashingSink(PayloadSink& inner, bool enabled) : inner_(inner), enabled_(enabled) {}

  void Reset() override {
    inner_.Reset();
    hash_.Reset();
  }
  void Consume(std::span<const std::uint8_t> chunk) override {
    if (enabled_) {
      hash_.Update(chunk);
    }
    inner_.Consume(chunk);
  }

  std::uint64_t digest() const { return enabled_ ? hash_.Finalize() : 0; }

 private:
  PayloadSink& inner_;
  const bool enabled_;
  ChunkedHash64 hash_;
};

// --- prefix-sharing helpers (DESIGN.md §17) --------------------------------

// Chain key of a chunk: mixes the parent chunk's chain key with the hash of
// this chunk's token contents, so equal keys can only collide across
// *different* prefixes by hash accident — which the index probe then rules
// out by comparing parent identity and raw tokens.
constexpr std::uint64_t kChainSeed = 0x9E3779B97F4A7C15ULL;

std::uint64_t ChainKey(std::uint64_t parent_key, std::span<const std::uint32_t> tokens) {
  const std::span<const std::uint8_t> token_bytes(
      reinterpret_cast<const std::uint8_t*>(tokens.data()), tokens.size() * sizeof(std::uint32_t));
  const std::uint64_t pair[2] = {parent_key, Fnv1a64(token_bytes)};
  return Fnv1a64(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(pair), sizeof pair));
}

// Chunk descriptor persisted as the chunk record's user_meta (the store is
// its own caller for hidden chunk records), so durable recovery can rebuild
// the registry and prefix index from replayed records alone.
// Layout: [u32 magic][u64 chain key][u64 parent id][u32 n][u32 tokens...].
constexpr std::uint32_t kChunkMetaMagic = 0x48434143;  // "CACH"

std::vector<std::uint8_t> EncodeChunkMeta(std::uint64_t key, SessionId parent,
                                          std::span<const std::uint32_t> tokens) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 8 + 8 + 4 + tokens.size() * sizeof(std::uint32_t));
  const auto raw = [&out](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), bytes, bytes + n);
  };
  raw(&kChunkMetaMagic, sizeof kChunkMetaMagic);
  raw(&key, sizeof key);
  raw(&parent, sizeof parent);
  const auto n = static_cast<std::uint32_t>(tokens.size());
  raw(&n, sizeof n);
  raw(tokens.data(), tokens.size() * sizeof(std::uint32_t));
  return out;
}

bool DecodeChunkMeta(std::span<const std::uint8_t> meta, std::uint64_t& key, SessionId& parent,
                     std::vector<std::uint32_t>& tokens) {
  constexpr std::size_t kHeader = 4 + 8 + 8 + 4;
  if (meta.size() < kHeader) {
    return false;
  }
  std::uint32_t magic = 0;
  std::uint32_t n = 0;
  std::memcpy(&magic, meta.data(), sizeof magic);
  std::memcpy(&key, meta.data() + 4, sizeof key);
  std::memcpy(&parent, meta.data() + 12, sizeof parent);
  std::memcpy(&n, meta.data() + 20, sizeof n);
  if (magic != kChunkMetaMagic || meta.size() != kHeader + n * sizeof(std::uint32_t)) {
    return false;
  }
  tokens.resize(n);
  std::memcpy(tokens.data(), meta.data() + kHeader, n * sizeof(std::uint32_t));
  return true;
}

}  // namespace

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kHbm:
      return "HBM";
    case Tier::kDram:
      return "DRAM";
    case Tier::kDisk:
      return "disk";
    case Tier::kNone:
      return "none";
  }
  return "?";
}

std::string_view TierHealthName(TierHealth health) {
  switch (health) {
    case TierHealth::kHealthy:
      return "healthy";
    case TierHealth::kDegraded:
      return "degraded";
    case TierHealth::kQuarantined:
      return "quarantined";
  }
  return "?";
}

AttentionStore::AttentionStore(StoreConfig config)
    : AttentionStore(std::move(config), /*defer_disk=*/false) {
  CA_CHECK(!config_.durable) << "durable stores must be created through AttentionStore::Open";
}

AttentionStore::AttentionStore(StoreConfig config, bool defer_disk)
    : config_(std::move(config)), policy_(MakeEvictionPolicy(config_.eviction_policy)) {
  CA_CHECK_GT(config_.block_bytes, 0ULL);
  auto& registry = MetricsRegistry::Global();
  for (const Tier tier : {Tier::kHbm, Tier::kDram, Tier::kDisk}) {
    hit_counters_[static_cast<std::size_t>(tier)] = &registry.GetCounter(
        "store.hits", {{"tier", std::string(TierName(tier))}});
  }
  miss_counter_ = &registry.GetCounter("store.misses");
  if (config_.disk_path.empty()) {
    config_.disk_path = UniqueDiskPath();
  }
  if (config_.real_payloads) {
    if (config_.hbm_capacity > 0) {
      storages_[static_cast<std::size_t>(Tier::kHbm)] = MaybeInjectFaults(
          std::make_unique<MemoryBlockStorage>(config_.hbm_capacity, config_.block_bytes),
          config_.hbm_fault);
    }
    if (config_.dram_capacity > 0) {
      storages_[static_cast<std::size_t>(Tier::kDram)] = MaybeInjectFaults(
          std::make_unique<MemoryBlockStorage>(config_.dram_capacity, config_.block_bytes),
          config_.dram_fault);
    }
    if (config_.disk_capacity > 0 && !defer_disk) {
      DiskIoOptions io;
      io.mode = config_.disk_io_mode;
      io.direct_io = config_.disk_direct_io;
      auto disk =
          FileBlockStorage::Open(config_.disk_path, config_.disk_capacity, config_.block_bytes,
                                 io);
      if (disk.ok()) {
        storages_[static_cast<std::size_t>(Tier::kDisk)] =
            MaybeInjectFaults(std::move(*disk), config_.disk_fault);
      } else {
        // The KV cache is soft state: a store without its disk tier serves
        // fewer hits, it does not crash the serving process.
        CA_LOG(Error) << "disk tier disabled, serving from remaining tiers only: "
                      << disk.status();
        tier_health_[static_cast<std::size_t>(Tier::kDisk)].health = TierHealth::kQuarantined;
        ++stats_.tiers_disabled;
      }
    }
  }
}

Result<AttentionStore> AttentionStore::Open(StoreConfig config) {
  if (!config.durable) {
    return AttentionStore(std::move(config), /*defer_disk=*/false);
  }
  if (!config.real_payloads) {
    return InvalidArgumentError("durable stores require real_payloads");
  }
  if (config.disk_path.empty()) {
    return InvalidArgumentError(
        "durable stores require an explicit stable disk_path: the auto-unique default "
        "embeds the pid and cannot be re-found after a restart");
  }
  if (config.disk_capacity < config.block_bytes) {
    return InvalidArgumentError("durable stores need a disk tier (disk_capacity >= block_bytes)");
  }
  AttentionStore store(std::move(config), /*defer_disk=*/true);
  CA_RETURN_IF_ERROR(store.OpenDurable());
  return store;
}

namespace {

// Identity stamped into a fresh journal/payload pair so a mismatched pair
// (one file replaced or restored from elsewhere) is detected at Open.
std::uint64_t FreshStoreId() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t mix[3] = {TraceNowNs(), static_cast<std::uint64_t>(::getpid()),
                                counter.fetch_add(1)};
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(mix);
  return Checksum64(std::span<const std::uint8_t>(bytes, sizeof mix)) | 1;  // never 0
}

}  // namespace

Status AttentionStore::OpenDurable() {
  MetaStore::Options mopts;
  mopts.fsync = config_.meta_fsync;
  mopts.fsync_every_n = config_.meta_fsync_every_n;
  mopts.compact_threshold_bytes = config_.meta_compact_threshold;
  mopts.fault = config_.meta_fault;
  CA_ASSIGN_OR_RETURN(meta_, MetaStore::Open(config_.disk_path + ".meta", config_.block_bytes,
                                             FreshStoreId(), std::move(mopts)));
  DiskIoOptions io;
  io.mode = config_.disk_io_mode;
  io.direct_io = config_.disk_direct_io;
  io.persist = true;
  io.reuse_existing = meta_->recovered_existing();
  io.store_id = meta_->store_id();
  io.crash = config_.meta_fault.crash;
  io.crash_after_block_writes = config_.disk_crash_after_block_writes;
  auto disk =
      FileBlockStorage::Open(config_.disk_path, config_.disk_capacity, config_.block_bytes, io);
  if (!disk.ok()) {
    // Unlike the ephemeral constructor, a durable open refuses to guess: a
    // payload file that is missing or does not match the journal's identity
    // means the pair was split, and silently serving an empty store would
    // hide that from the operator.
    return disk.status();
  }
  storages_[static_cast<std::size_t>(Tier::kDisk)] =
      MaybeInjectFaults(std::move(*disk), config_.disk_fault);
  return RecoverFromJournal();
}

Status AttentionStore::RecoverFromJournal() {
  const std::uint64_t start_ns = TraceNowNs();
  recovery_stats_ = meta_->recovery_stats();
  BlockStorage* disk = Storage(Tier::kDisk);
  CA_CHECK(disk != nullptr);

  // Adopt in insert order so next_insert_seq_ and FIFO-ish policies see the
  // same relative ages an uninterrupted store would.
  std::vector<const MetaRecord*> candidates;
  candidates.reserve(meta_->live().size());
  for (const auto& [id, rec] : meta_->live()) {
    candidates.push_back(&rec);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const MetaRecord* a, const MetaRecord* b) { return a->insert_seq < b->insert_seq; });

  std::vector<SessionId> dropped;
  for (const MetaRecord* rec : candidates) {
    BlockExtent extent{.blocks = rec->blocks, .byte_length = rec->bytes};
    Status adopted = rec->bytes == 0 ? FailedPreconditionError("journaled record is empty")
                                     : disk->AdoptExtent(extent);
    if (adopted.ok() && config_.recover_verify_payloads) {
      std::vector<std::uint8_t> data(rec->bytes);
      Status read = disk->ReadInto(extent, data);
      if (read.ok() && config_.verify_checksums && Checksum64(data) != rec->checksum) {
        read = DataLossError("recovered payload failed checksum verification");
      }
      if (!read.ok()) {
        disk->Free(extent);
        adopted = std::move(read);
      }
    }
    if (!adopted.ok()) {
      // Dangling record: the journal references blocks that no longer line
      // up with the payload file (torn write, reused blocks, external
      // damage). A clean miss, never corruption.
      CA_LOG(Warn) << "recovery dropped session " << rec->session << ": " << adopted;
      ++recovery_stats_.records_reconciled_missing;
      dropped.push_back(rec->session);
      continue;
    }
    KvRecord record{.session = rec->session,
                    .tier = Tier::kDisk,
                    .bytes = rec->bytes,
                    .block_bytes = RoundToBlocks(rec->bytes),
                    .token_count = rec->token_count,
                    .last_access = rec->last_access,
                    .insert_seq = rec->insert_seq,
                    .extent = std::move(extent),
                    .checksum = rec->checksum,
                    .user_meta = rec->user_meta,
                    .shared_format = rec->shared_format,
                    .chunk_refs = rec->chunk_refs};
    used_bytes_[static_cast<std::size_t>(Tier::kDisk)] += record.block_bytes;
    next_insert_seq_ = std::max(next_insert_seq_, rec->insert_seq + 1);
    records_.emplace(rec->session, std::move(record));
    ++recovery_stats_.records_recovered;
  }
  for (const SessionId session : dropped) {
    const Status erased = meta_->Erase(session);
    if (!erased.ok()) {
      CA_LOG(Warn) << "journal erase of dropped session " << session << " failed: " << erased;
    }
  }
  // Rebuild the sharing state (chunk registry, prefix index, derived
  // refcounts) from the recovered records before compacting, so the
  // snapshot already excludes anything this pass reconciles away.
  RecoverSharedState();
  // One compaction so the next open replays a snapshot, not history.
  const Status compacted = meta_->Compact();
  if (!compacted.ok()) {
    CA_LOG(Warn) << "post-recovery journal compaction failed: " << compacted;
  }
  recovery_stats_.replay_ns = meta_->recovery_stats().replay_ns + (TraceNowNs() - start_ns);
  CheckInvariants();
  return Status::Ok();
}

const std::vector<std::uint8_t>* AttentionStore::UserMeta(SessionId session) const {
  const auto it = records_.find(session);
  return it == records_.end() ? nullptr : &it->second.user_meta;
}

void AttentionStore::JournalUpsert(const KvRecord& record,
                                   std::span<const std::uint8_t> user_meta,
                                   bool keep_existing_user_meta) {
  if (meta_ == nullptr) {
    return;
  }
  MetaRecord rec;
  rec.session = record.session;
  rec.tier = record.tier;
  rec.bytes = record.bytes;
  rec.token_count = record.token_count;
  rec.last_access = record.last_access;
  rec.insert_seq = record.insert_seq;
  rec.checksum = record.checksum;
  rec.shared_format = record.shared_format;
  rec.chunk_refs = record.chunk_refs;
  if (record.tier == Tier::kDisk) {
    rec.blocks = record.extent.blocks;
  }
  if (keep_existing_user_meta) {
    if (const std::vector<std::uint8_t>* existing = meta_->UserMeta(record.session)) {
      rec.user_meta = *existing;
    }
  } else {
    rec.user_meta.assign(user_meta.begin(), user_meta.end());
  }
  const Status s = meta_->Upsert(std::move(rec));
  if (!s.ok()) {
    // Journal loss degrades the next recovery (stale entries reconcile to
    // misses through checksums and block-ownership), it never blocks serving.
    CA_LOG(Warn) << "metadata journal append failed for session " << record.session << ": " << s;
  }
}

void AttentionStore::JournalErase(SessionId session) {
  if (meta_ == nullptr) {
    return;
  }
  const Status s = meta_->Erase(session);
  if (!s.ok()) {
    CA_LOG(Warn) << "metadata journal erase failed for session " << session << ": " << s;
  }
}

void AttentionStore::JournalAccessMaybe(KvRecord& record) {
  if (meta_ == nullptr || config_.access_journal_every_n == 0) {
    return;
  }
  if (++record.accesses_since_journal < config_.access_journal_every_n) {
    return;
  }
  record.accesses_since_journal = 0;
  ++stats_.access_checkpoints;
  const Status s = meta_->Access(record.session, record.last_access);
  if (!s.ok()) {
    CA_LOG(Warn) << "access checkpoint append failed for session " << record.session << ": " << s;
  }
}

// --- prefix sharing internals (DESIGN.md §17) ------------------------------

void AttentionStore::RefChunk(SessionId chunk_id) { ++chunks_.at(chunk_id).refcount; }

void AttentionStore::UnrefChunk(SessionId chunk_id) {
  const auto cit = chunks_.find(chunk_id);
  CA_CHECK(cit != chunks_.end()) << "unref of unknown chunk " << chunk_id;
  SharedChunk& chunk = cit->second;
  CA_CHECK_GT(chunk.refcount, 0U) << "chunk " << chunk_id << " refcount underflow";
  if (--chunk.refcount > 0) {
    return;
  }
  // Last reference gone: free the hidden chunk record and unindex it.
  const auto rit = records_.find(chunk_id);
  CA_CHECK(rit != records_.end()) << "chunk " << chunk_id << " registry/record split";
  if (rit->second.tier != Tier::kNone) {
    (void)MoveRecord(rit->second, Tier::kNone);
  }
  records_.erase(rit);
  JournalErase(chunk_id);
  const auto idx = prefix_index_.find(chunk.key);
  CA_CHECK(idx != prefix_index_.end());
  auto& bucket = idx->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), chunk_id), bucket.end());
  if (bucket.empty()) {
    prefix_index_.erase(idx);
  }
  chunks_.erase(cit);
  ++stats_.chunks_freed;
}

void AttentionStore::DropRecord(SessionId session) {
  const auto it = records_.find(session);
  if (it == records_.end()) {
    return;
  }
  const std::vector<SessionId> refs = std::move(it->second.chunk_refs);
  if (it->second.tier != Tier::kNone) {
    (void)MoveRecord(it->second, Tier::kNone);
  }
  records_.erase(it);
  JournalErase(session);
  for (const SessionId ref : refs) {
    UnrefChunk(ref);
  }
}

void AttentionStore::DropChunkReferrers(SessionId chunk_id, std::uint64_t StoreStats::* reason) {
  std::vector<SessionId> referrers;
  for (const auto& [id, r] : records_) {
    if (!IsChunkId(id) &&
        std::find(r.chunk_refs.begin(), r.chunk_refs.end(), chunk_id) != r.chunk_refs.end()) {
      referrers.push_back(id);
    }
  }
  for (const SessionId id : referrers) {
    DropRecord(id);
    ++(stats_.*reason);
  }
  // The last DropRecord unrefs the chunk to zero, which frees it. A chunk
  // that survives here has references not backed by any table — only
  // in-flight pins can cause that, and pinned chunks are never offered as
  // victims nor resident in a purged tier while pinned.
  CA_CHECK(records_.find(chunk_id) == records_.end())
      << "chunk " << chunk_id << " survived its referrer cascade";
}

void AttentionStore::RecoverSharedState() {
  // 1. Rebuild the chunk registry + prefix index from recovered chunk
  //    records. An undecodable descriptor loses only that chunk (and, below,
  //    its referrers) — a clean miss, never corruption.
  std::vector<SessionId> bad_chunks;
  for (const auto& [id, r] : records_) {
    if (!IsChunkId(id)) {
      continue;
    }
    std::uint64_t key = 0;
    SessionId parent = kInvalidSession;
    std::vector<std::uint32_t> tokens;
    if (!DecodeChunkMeta(r.user_meta, key, parent, tokens) || tokens.size() != r.token_count) {
      bad_chunks.push_back(id);
      continue;
    }
    next_chunk_id_ = std::max(next_chunk_id_, (id & ~kChunkSessionBit) + 1);
    prefix_index_[key].push_back(id);
    chunks_.emplace(id, SharedChunk{key, parent, std::move(tokens), 0});
  }
  const auto raw_free = [this](SessionId id) {
    auto it = records_.find(id);
    CA_CHECK(it != records_.end());
    if (it->second.tier != Tier::kNone) {
      (void)MoveRecord(it->second, Tier::kNone);
    }
    records_.erase(it);
    JournalErase(id);
    ++recovery_stats_.records_reconciled_missing;
  };
  for (const SessionId id : bad_chunks) {
    CA_LOG(Warn) << "recovery dropped chunk " << id << ": undecodable descriptor";
    raw_free(id);
  }
  // 2. A session whose block table references a missing chunk lost part of
  //    its prefix; drop it whole (refcounts are not derived yet, so this is
  //    a raw free, not DropRecord).
  std::vector<SessionId> bad_sessions;
  for (const auto& [id, r] : records_) {
    if (IsChunkId(id)) {
      continue;
    }
    for (const SessionId ref : r.chunk_refs) {
      if (chunks_.find(ref) == chunks_.end()) {
        bad_sessions.push_back(id);
        break;
      }
    }
  }
  for (const SessionId id : bad_sessions) {
    CA_LOG(Warn) << "recovery dropped session " << id << ": block table references a lost chunk";
    raw_free(id);
  }
  // 3. Derive refcounts from the surviving tables — the journal never
  //    stores them, so replay can neither double-free nor leak.
  for (const auto& [id, r] : records_) {
    if (IsChunkId(id)) {
      continue;
    }
    for (const SessionId ref : r.chunk_refs) {
      ++chunks_.at(ref).refcount;
    }
  }
  // 4. Chunks with zero surviving referrers are garbage from the crash
  //    window (e.g. the referrer's upsert never hit the journal).
  std::vector<SessionId> orphans;
  for (const auto& [id, chunk] : chunks_) {
    if (chunk.refcount == 0) {
      orphans.push_back(id);
    }
  }
  for (const SessionId id : orphans) {
    CA_LOG(Info) << "recovery garbage-collected orphan chunk " << id;
    const SharedChunk chunk = chunks_.at(id);
    raw_free(id);
    auto& bucket = prefix_index_.at(chunk.key);
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    if (bucket.empty()) {
      prefix_index_.erase(chunk.key);
    }
    chunks_.erase(id);
  }
}

AttentionStore::TierList AttentionStore::EnabledTiers() const {
  TierList tiers;
  for (const Tier t : {Tier::kHbm, Tier::kDram, Tier::kDisk}) {
    if (TierEnabled(t)) {
      tiers.tiers[tiers.count++] = t;
    }
  }
  return tiers;
}

Tier AttentionStore::NextSlowerTier(Tier tier) const {
  const auto idx = static_cast<std::size_t>(tier);
  for (std::size_t i = idx + 1; i < kNumTiers; ++i) {
    if (TierEnabled(static_cast<Tier>(i))) {
      return static_cast<Tier>(i);
    }
  }
  return Tier::kNone;
}

std::uint64_t AttentionStore::RoundToBlocks(std::uint64_t bytes) const {
  const std::uint64_t blocks = (bytes + config_.block_bytes - 1) / config_.block_bytes;
  return blocks * config_.block_bytes;
}

std::uint64_t AttentionStore::CapacityBytes(Tier tier) const {
  switch (tier) {
    case Tier::kHbm:
      return config_.hbm_capacity / config_.block_bytes * config_.block_bytes;
    case Tier::kDram:
      return config_.dram_capacity / config_.block_bytes * config_.block_bytes;
    case Tier::kDisk:
      return config_.disk_capacity / config_.block_bytes * config_.block_bytes;
    case Tier::kNone:
      return 0;
  }
  return 0;
}

std::uint64_t AttentionStore::UsedBytes(Tier tier) const {
  if (tier == Tier::kNone) {
    return 0;
  }
  return used_bytes_[static_cast<std::size_t>(tier)];
}

std::uint64_t AttentionStore::FreeBytes(Tier tier) const {
  return CapacityBytes(tier) - UsedBytes(tier);
}

TierHealth AttentionStore::tier_health(Tier tier) const {
  if (tier == Tier::kNone) {
    return TierHealth::kHealthy;
  }
  return tier_health_[static_cast<std::size_t>(tier)].health;
}

BlockStorage* AttentionStore::Storage(Tier tier) {
  if (tier == Tier::kNone) {
    return nullptr;
  }
  return storages_[static_cast<std::size_t>(tier)].get();
}

const BlockStorage* AttentionStore::Storage(Tier tier) const {
  if (tier == Tier::kNone) {
    return nullptr;
  }
  return storages_[static_cast<std::size_t>(tier)].get();
}

void AttentionStore::CheckInvariants() const {
  std::array<std::uint64_t, kNumTiers> tier_bytes = {0, 0, 0};
  std::array<std::uint64_t, kNumTiers> tier_blocks = {0, 0, 0};
  for (const auto& [id, r] : records_) {
    CA_CHECK_EQ(id, r.session) << "record keyed under the wrong session";
    CA_CHECK(r.tier != Tier::kNone) << "session " << id << " has a record without a tier";
    CA_CHECK(TierEnabled(r.tier)) << "session " << id << " resides in disabled tier "
                                  << TierName(r.tier);
    CA_CHECK_GT(r.bytes, 0ULL) << "session " << id << " has an empty record";
    CA_CHECK_EQ(r.block_bytes, RoundToBlocks(r.bytes))
        << "session " << id << " block charge does not match its block-rounded size";
    if (config_.real_payloads) {
      CA_CHECK(!r.extent.empty()) << "session " << id << " lost its payload extent";
      CA_CHECK_EQ(r.extent.byte_length, r.bytes)
          << "session " << id << " extent length drifted from its logical size";
      CA_CHECK_EQ(r.extent.blocks.size() * config_.block_bytes, r.block_bytes)
          << "session " << id << " extent block count does not match its block charge";
    } else {
      CA_CHECK(r.extent.empty()) << "session " << id << " owns an extent without payloads";
    }
    tier_bytes[static_cast<std::size_t>(r.tier)] += r.block_bytes;
    tier_blocks[static_cast<std::size_t>(r.tier)] += r.extent.blocks.size();
  }
  // Prefix sharing (DESIGN.md §17): registry/records 1:1, every table entry
  // resolves, refcounts equal the number of referencing tables (plus
  // in-flight pins), and the index holds each chunk exactly once.
  std::size_t chunk_records = 0;
  std::unordered_map<SessionId, std::uint32_t> derived_refs;
  for (const auto& [id, r] : records_) {
    if (IsChunkId(id)) {
      ++chunk_records;
      const auto cit = chunks_.find(id);
      CA_CHECK(cit != chunks_.end()) << "chunk record " << id << " missing from the registry";
      CA_CHECK_EQ(r.token_count, cit->second.tokens.size())
          << "chunk " << id << " token count drifted from its descriptor";
      CA_CHECK(r.chunk_refs.empty()) << "chunk " << id << " owns a block table";
      const auto idx = prefix_index_.find(cit->second.key);
      CA_CHECK(idx != prefix_index_.end()) << "chunk " << id << " missing from the prefix index";
      CA_CHECK_EQ(std::count(idx->second.begin(), idx->second.end(), id), 1)
          << "chunk " << id << " indexed other than exactly once";
    } else {
      for (const SessionId ref : r.chunk_refs) {
        CA_CHECK(IsChunkId(ref)) << "session " << id << " block table holds a non-chunk id";
        CA_CHECK(records_.find(ref) != records_.end())
            << "session " << id << " block table references freed chunk " << ref;
        ++derived_refs[ref];
      }
    }
  }
  CA_CHECK_EQ(chunk_records, chunks_.size()) << "chunk registry drifted from chunk records";
  for (const SessionId pin : pinned_chunks_) {
    ++derived_refs[pin];
  }
  for (const auto& [id, chunk] : chunks_) {
    CA_CHECK_GT(chunk.refcount, 0U) << "zero-ref chunk " << id << " leaked";
    const auto dit = derived_refs.find(id);
    CA_CHECK(dit != derived_refs.end() && dit->second == chunk.refcount)
        << "chunk " << id << " refcount drifted from its referencing tables";
  }
  std::size_t indexed = 0;
  for (const auto& [key, bucket] : prefix_index_) {
    CA_CHECK(!bucket.empty()) << "empty prefix-index bucket leaked";
    indexed += bucket.size();
    for (const SessionId id : bucket) {
      const auto cit = chunks_.find(id);
      CA_CHECK(cit != chunks_.end() && cit->second.key == key)
          << "prefix index entry " << id << " does not match its chunk";
    }
  }
  CA_CHECK_EQ(indexed, chunks_.size()) << "prefix index size drifted from the chunk registry";
  for (const Tier tier : {Tier::kHbm, Tier::kDram, Tier::kDisk}) {
    const auto idx = static_cast<std::size_t>(tier);
    CA_CHECK_LE(used_bytes_[idx], CapacityBytes(tier))
        << TierName(tier) << " holds more than its capacity";
    CA_CHECK_EQ(used_bytes_[idx], tier_bytes[idx])
        << "used_bytes drifted from the records resident in " << TierName(tier);
    if (const BlockStorage* storage = Storage(tier); storage != nullptr) {
      CA_CHECK_EQ(storage->UsedBlocks(), tier_blocks[idx])
          << TierName(tier) << " allocator blocks drifted from the resident extents";
    }
  }
  if (meta_ != nullptr) {
    // Durable mode: the journal's live table must mirror records_ exactly
    // (last_access excluded — Access refreshes are not journaled).
    CA_CHECK_EQ(meta_->live().size(), records_.size())
        << "journal live table size drifted from the record map";
    for (const auto& [id, r] : records_) {
      const auto mit = meta_->live().find(id);
      CA_CHECK(mit != meta_->live().end()) << "session " << id << " missing from the journal";
      const MetaRecord& m = mit->second;
      CA_CHECK(m.tier == r.tier) << "session " << id << " journal tier drifted";
      CA_CHECK_EQ(m.bytes, r.bytes) << "session " << id << " journal size drifted";
      CA_CHECK_EQ(m.token_count, r.token_count)
          << "session " << id << " journal token count drifted";
      CA_CHECK_EQ(m.insert_seq, r.insert_seq) << "session " << id << " journal seq drifted";
      CA_CHECK_EQ(m.checksum, r.checksum) << "session " << id << " journal checksum drifted";
      CA_CHECK(m.user_meta == r.user_meta)
          << "session " << id << " journal user_meta drifted from the record copy";
      CA_CHECK(m.shared_format == r.shared_format)
          << "session " << id << " journal shared-format flag drifted";
      CA_CHECK(m.chunk_refs == r.chunk_refs)
          << "session " << id << " journal block table drifted from the record copy";
      if (r.tier == Tier::kDisk) {
        CA_CHECK(m.blocks == r.extent.blocks)
            << "session " << id << " journal extent drifted from the disk extent";
      } else {
        CA_CHECK(m.blocks.empty())
            << "session " << id << " journals a disk extent while memory-resident";
      }
    }
  }
}

void AttentionStore::CorruptUsedBytesForTesting(Tier tier, std::int64_t delta) {
  CA_CHECK(tier != Tier::kNone);
  auto& used = used_bytes_[static_cast<std::size_t>(tier)];
  used = static_cast<std::uint64_t>(static_cast<std::int64_t>(used) + delta);
}

void AttentionStore::MaybeAudit() const {
  if (config_.audit) {
    CheckInvariants();
  }
}

// --- tier health machine ---------------------------------------------------

void AttentionStore::RecordTierSuccess(Tier tier) {
  auto& h = tier_health_[static_cast<std::size_t>(tier)];
  if (h.health == TierHealth::kQuarantined) {
    return;  // quarantine is sticky for the process lifetime
  }
  h.consecutive_permanent = 0;
  if (h.health == TierHealth::kDegraded) {
    CA_LOG(Info) << TierName(tier) << " tier recovered: degraded -> healthy";
    h.health = TierHealth::kHealthy;
  }
}

void AttentionStore::RecordTierFault(Tier tier, const Status& status) {
  const bool permanent = IsPermanentIoFailure(status.code());
  if (status.code() == StatusCode::kUnavailable) {
    ++stats_.transient_io_faults;
  } else if (permanent) {
    ++stats_.permanent_io_faults;
  } else {
    return;  // e.g. kResourceExhausted: the pool is full, not broken
  }
  auto& h = tier_health_[static_cast<std::size_t>(tier)];
  if (h.health == TierHealth::kQuarantined) {
    return;
  }
  if (permanent) {
    ++h.consecutive_permanent;
    if (h.consecutive_permanent >= config_.quarantine_after) {
      MarkQuarantined(tier, status);
      return;
    }
  }
  if (h.health != TierHealth::kDegraded) {
    CA_LOG(Warn) << TierName(tier) << " tier degraded: " << status;
    h.health = TierHealth::kDegraded;
  }
}

void AttentionStore::MarkQuarantined(Tier tier, const Status& cause) {
  auto& h = tier_health_[static_cast<std::size_t>(tier)];
  if (h.health == TierHealth::kQuarantined) {
    return;
  }
  CA_LOG(Warn) << TierName(tier) << " tier quarantined after " << h.consecutive_permanent
               << " consecutive permanent I/O failures: " << cause;
  CA_TRACE_INSTANT("store.quarantine", "tier", TierName(tier));
  h.health = TierHealth::kQuarantined;
  ++stats_.tiers_quarantined;
  // Record-dropping is deferred: callers may hold references into records_
  // mid-mutation. PurgeQuarantined() runs before the mutation's audit.
  quarantine_pending_ = true;
}

void AttentionStore::PurgeQuarantined() {
  if (!quarantine_pending_) {
    return;
  }
  quarantine_pending_ = false;
  for (const Tier tier : {Tier::kHbm, Tier::kDram, Tier::kDisk}) {
    if (tier_health_[static_cast<std::size_t>(tier)].health != TierHealth::kQuarantined) {
      continue;
    }
    // Snapshot residents first: DropRecord/DropChunkReferrers mutate the
    // map (and an earlier cascade may already have freed a later entry).
    // Allocator-only frees throughout — safe on a dead device.
    std::vector<SessionId> resident;
    for (const auto& [id, r] : records_) {
      if (r.tier == tier) {
        resident.push_back(id);
      }
    }
    for (const SessionId id : resident) {
      if (records_.find(id) == records_.end()) {
        continue;  // freed by an earlier referrer cascade
      }
      if (IsChunkId(id)) {
        // A dead chunk is a miss for every referrer, wherever they reside.
        DropChunkReferrers(id, &StoreStats::fault_evictions);
      } else {
        DropRecord(id);
        ++stats_.fault_evictions;
      }
    }
  }
}

// --- retrying tier I/O -----------------------------------------------------

Result<AttentionStore::WriteReceipt> AttentionStore::WriteWithRetry(BlockStorage& storage,
                                                                    PayloadSource& source,
                                                                    Tier tier) {
  const std::uint64_t start_ns = TraceNowNs();
  std::uint64_t backoff_us = config_.io_retry_backoff_us;
  for (std::uint32_t attempt = 0;; ++attempt) {
    source.Reset();
    HashingSource hashed(source, config_.verify_checksums);
    auto extent = storage.WriteZeroCopy(hashed);
    if (extent.ok()) {
      RecordTierSuccess(tier);
      auto& io = stats_.tier_io[static_cast<std::size_t>(tier)];
      io.write_bytes += extent->byte_length;
      io.write_ns += TraceNowNs() - start_ns;
      return WriteReceipt{.extent = std::move(*extent), .checksum = hashed.digest()};
    }
    if (extent.status().code() == StatusCode::kUnavailable && attempt < config_.io_retries) {
      ++stats_.io_retries;
      CA_TRACE_INSTANT("store.io_retry", "tier", TierName(tier), "attempt", attempt + 1);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us *= 2;
      }
      continue;
    }
    RecordTierFault(tier, extent.status());
    return extent.status();
  }
}

Status AttentionStore::ReadVerifiedInto(BlockStorage& storage, const KvRecord& record, Tier tier,
                                        std::span<std::uint8_t> out) {
  const std::uint64_t start_ns = TraceNowNs();
  std::uint64_t backoff_us = config_.io_retry_backoff_us;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const Status read = storage.ReadInto(record.extent, out);
    if (read.ok()) {
      if (!config_.verify_checksums || Checksum64(out) == record.checksum) {
        RecordTierSuccess(tier);
        auto& io = stats_.tier_io[static_cast<std::size_t>(tier)];
        io.read_bytes += out.size();
        io.read_ns += TraceNowNs() - start_ns;
        return Status::Ok();
      }
      // Corrupt bytes read back "successfully": a torn write or short read.
      // Retrying cannot help (the damage is persistent or the next read is
      // equally suspect); the payload must never reach attention.
      ++stats_.corrupt_payloads;
      CA_TRACE_INSTANT("store.corrupt_payload", "session", record.session, "tier",
                       TierName(tier));
      const Status corrupt =
          DataLossError("session " + std::to_string(record.session) +
                        " payload failed checksum verification in " +
                        std::string(TierName(tier)));
      RecordTierFault(tier, corrupt);
      return corrupt;
    }
    if (read.code() == StatusCode::kUnavailable && attempt < config_.io_retries) {
      ++stats_.io_retries;
      CA_TRACE_INSTANT("store.io_retry", "tier", TierName(tier), "attempt", attempt + 1);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us *= 2;
      }
      continue;
    }
    RecordTierFault(tier, read);
    return read;
  }
}

Status AttentionStore::ReadVerifiedStream(BlockStorage& storage, const KvRecord& record,
                                          Tier tier, PayloadSink& sink) {
  const std::uint64_t start_ns = TraceNowNs();
  std::uint64_t backoff_us = config_.io_retry_backoff_us;
  for (std::uint32_t attempt = 0;; ++attempt) {
    HashingSink hashed(sink, config_.verify_checksums);
    hashed.Reset();  // retries replay the pass; the consumer restarts too
    const Status read = storage.ReadZeroCopy(record.extent, hashed);
    if (read.ok()) {
      if (!config_.verify_checksums || hashed.digest() == record.checksum) {
        RecordTierSuccess(tier);
        auto& io = stats_.tier_io[static_cast<std::size_t>(tier)];
        io.read_bytes += record.bytes;
        io.read_ns += TraceNowNs() - start_ns;
        return Status::Ok();
      }
      // Same verdict as ReadVerifiedInto — but the sink has already seen
      // the torn bytes (single-pass streaming); the non-OK return obliges
      // the caller to discard whatever it built.
      ++stats_.corrupt_payloads;
      CA_TRACE_INSTANT("store.corrupt_payload", "session", record.session, "tier",
                       TierName(tier));
      const Status corrupt =
          DataLossError("session " + std::to_string(record.session) +
                        " payload failed checksum verification in " +
                        std::string(TierName(tier)));
      RecordTierFault(tier, corrupt);
      return corrupt;
    }
    if (read.code() == StatusCode::kUnavailable && attempt < config_.io_retries) {
      ++stats_.io_retries;
      CA_TRACE_INSTANT("store.io_retry", "tier", TierName(tier), "attempt", attempt + 1);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us *= 2;
      }
      continue;
    }
    RecordTierFault(tier, read);
    return read;
  }
}

// --- lookup ----------------------------------------------------------------

Tier AttentionStore::Lookup(SessionId session) const {
  const auto it = records_.find(session);
  return it == records_.end() ? Tier::kNone : it->second.tier;
}

std::optional<KvRecordInfo> AttentionStore::GetInfo(SessionId session) const {
  const auto it = records_.find(session);
  if (it == records_.end()) {
    return std::nullopt;
  }
  const KvRecord& r = it->second;
  std::uint64_t payload_bytes = r.bytes;
  for (const SessionId ref : r.chunk_refs) {
    payload_bytes += records_.at(ref).bytes;
  }
  return KvRecordInfo{.session = r.session,
                      .tier = r.tier,
                      .bytes = r.bytes,
                      .token_count = r.token_count,
                      .last_access = r.last_access,
                      .shared = r.shared_format,
                      .payload_bytes = payload_bytes};
}

std::optional<KvRecordInfo> AttentionStore::Access(SessionId session, SimTime now) {
  ++stats_.lookups;
  const auto it = records_.find(session);
  if (it == records_.end()) {
    ++stats_.misses;
    miss_counter_->Add();
    CA_TRACE_INSTANT("store.miss", "session", session);
    return std::nullopt;
  }
  KvRecord& r = it->second;
  switch (r.tier) {
    case Tier::kHbm:
      ++stats_.hbm_hits;
      break;
    case Tier::kDram:
      ++stats_.dram_hits;
      break;
    case Tier::kDisk:
      ++stats_.disk_hits;
      break;
    case Tier::kNone:
      CA_CHECK(false) << "record without tier";
  }
  hit_counters_[static_cast<std::size_t>(r.tier)]->Add();
  CA_TRACE_INSTANT("store.hit", "session", session, "tier", TierName(r.tier));
  r.last_access = now;
  // A hit on the session is a hit on every chunk its prefix lives in: keep
  // shared blocks recency-warm so LRU-ish policies do not evict a block the
  // hottest sessions still reference.
  for (const SessionId ref : r.chunk_refs) {
    if (const auto cit = records_.find(ref); cit != records_.end()) {
      cit->second.last_access = now;
    }
  }
  JournalAccessMaybe(r);
  return GetInfo(session);
}

std::optional<SessionId> AttentionStore::PickVictim(Tier tier, SessionId exclude,
                                                    const SchedulerHints& hints) {
  // Chunks referenced by `exclude` are as untouchable as `exclude` itself:
  // evicting one would cascade-drop the excluded session's record while a
  // caller may hold a reference into it.
  const std::vector<SessionId>* exclude_refs = nullptr;
  if (const auto eit = records_.find(exclude);
      eit != records_.end() && !eit->second.chunk_refs.empty()) {
    exclude_refs = &eit->second.chunk_refs;
  }
  std::vector<VictimView> candidates;
  for (const auto& [id, r] : records_) {
    if (r.tier != tier || id == exclude) {
      continue;
    }
    std::uint32_t shared_refs = 0;
    if (IsChunkId(id)) {
      if (std::find(pinned_chunks_.begin(), pinned_chunks_.end(), id) != pinned_chunks_.end()) {
        continue;  // in-flight pin: refcount cannot drain through referrers
      }
      if (exclude_refs != nullptr &&
          std::find(exclude_refs->begin(), exclude_refs->end(), id) != exclude_refs->end()) {
        continue;
      }
      shared_refs = chunks_.at(id).refcount;
    }
    candidates.push_back(VictimView{.session = id,
                                    .last_access = r.last_access,
                                    .insert_seq = r.insert_seq,
                                    .bytes = r.bytes,
                                    .shared_refs = shared_refs});
  }
  if (candidates.empty()) {
    return std::nullopt;
  }
  return policy_->PickVictim(candidates, hints);
}

Status AttentionStore::MoveRecord(KvRecord& record, Tier target) {
  const Tier source = record.tier;
  CA_CHECK(source != target);
  CA_TRACE_SPAN("store.move", "session", record.session, "from", TierName(source),
                "to", TierName(target), "bytes", record.bytes);
  // Move payload bytes first (real mode); accounting follows only once the
  // bytes are safely at the target, so a failure rolls back completely.
  if (config_.real_payloads && !record.extent.empty()) {
    BlockStorage* src_storage = Storage(source);
    CA_CHECK(src_storage != nullptr);
    if (target == Tier::kNone) {
      src_storage->Free(record.extent);
    } else {
      BlockStorage* dst_storage = Storage(target);
      CA_CHECK(dst_storage != nullptr);
      std::vector<std::uint8_t> data(record.bytes);
      const Status read = ReadVerifiedInto(*src_storage, record, source, data);
      if (!read.ok()) {
        if (read.code() == StatusCode::kUnavailable) {
          return read;  // transient: record untouched, retryable later
        }
        // Source payload unrecoverable: release the record (see contract in
        // the header) — the caller erases the map entry.
        src_storage->Free(record.extent);
        used_bytes_[static_cast<std::size_t>(source)] -= record.block_bytes;
        record.tier = Tier::kNone;
        return read;
      }
      SpanSource bytes(data);
      auto receipt = WriteWithRetry(*dst_storage, bytes, target);
      if (!receipt.ok()) {
        return receipt.status();  // nothing mutated: full rollback
      }
      src_storage->Free(record.extent);
      record.extent = std::move(receipt->extent);
      record.checksum = receipt->checksum;
    }
  }
  if (source != Tier::kNone) {
    used_bytes_[static_cast<std::size_t>(source)] -= record.block_bytes;
  }
  if (target != Tier::kNone) {
    used_bytes_[static_cast<std::size_t>(target)] += record.block_bytes;
  }
  record.tier = target;
  return Status::Ok();
}

bool AttentionStore::EnsureRoom(Tier tier, std::uint64_t needed, SessionId exclude, SimTime now,
                                const SchedulerHints& hints) {
  if (needed > CapacityBytes(tier)) {
    return false;
  }
  while (FreeBytes(tier) < needed) {
    const auto victim = PickVictim(tier, exclude, hints);
    if (!victim.has_value()) {
      return false;
    }
    const std::uint64_t victim_block_bytes = records_.at(*victim).block_bytes;
    const Tier down = NextSlowerTier(tier);
    bool demoted = false;
    bool move_failed = false;
    if (down != Tier::kNone && EnsureRoom(down, victim_block_bytes, exclude, now, hints)) {
      // Revalidate: the recursive call may have cascade-dropped the victim
      // (a session whose shared chunk was evicted from the lower tier).
      const auto vit = records_.find(*victim);
      if (vit == records_.end()) {
        continue;
      }
      KvRecord& r = vit->second;
      const Status moved = MoveRecord(r, down);
      if (moved.ok()) {
        demoted = true;
        ++stats_.demotions;
        stats_.bytes_demoted += r.bytes;
        JournalUpsert(r, {}, /*keep_existing_user_meta=*/true);
      } else {
        ++stats_.failed_moves;
        move_failed = true;
      }
    }
    if (!demoted) {
      // Nowhere below, or the demotion I/O failed. Room must still be made,
      // so the victim leaves the system — soft state, the cost is a miss.
      if (IsChunkId(*victim)) {
        // Evicting a shared chunk makes every referencing session a
        // consistent miss; the cascade drives the refcount to zero and
        // frees the chunk itself.
        DropChunkReferrers(*victim, move_failed ? &StoreStats::fault_evictions
                                                : &StoreStats::evictions_out);
      } else {
        if (move_failed) {
          ++stats_.fault_evictions;
        } else {
          ++stats_.evictions_out;
        }
        DropRecord(*victim);
      }
    }
  }
  return true;
}

Status AttentionStore::Put(SessionId session, std::uint64_t bytes, std::uint64_t token_count,
                           std::span<const std::uint8_t> payload, SimTime now,
                           const SchedulerHints& hints, std::span<const std::uint8_t> user_meta) {
  if (config_.real_payloads) {
    CA_CHECK_EQ(payload.size(), bytes) << "real-payload store requires the payload";
    SpanSource source(payload);
    return PutImpl(session, bytes, token_count, &source, now, hints, user_meta);
  }
  CA_CHECK(payload.empty()) << "payload passed to capacity-only store";
  return PutImpl(session, bytes, token_count, nullptr, now, hints, user_meta);
}

Status AttentionStore::Put(SessionId session, std::uint64_t token_count, PayloadSource& payload,
                           SimTime now, const SchedulerHints& hints,
                           std::span<const std::uint8_t> user_meta) {
  CA_CHECK(config_.real_payloads) << "zero-copy Put on capacity-only store";
  return PutImpl(session, payload.size(), token_count, &payload, now, hints, user_meta);
}

Status AttentionStore::PutImpl(SessionId session, std::uint64_t bytes, std::uint64_t token_count,
                               PayloadSource* payload, SimTime now, const SchedulerHints& hints,
                               std::span<const std::uint8_t> user_meta) {
  CA_CHECK_GT(bytes, 0ULL);
  CA_TRACE_SPAN("store.put", "session", session, "bytes", bytes);

  // Updating an existing record: release its old residency first so its own
  // space counts as free for the new placement. The original insertion
  // sequence is preserved so FIFO order reflects first insertion, not the
  // latest update.
  const auto it = records_.find(session);
  const bool existed = it != records_.end();
  std::uint64_t insert_seq = next_insert_seq_;
  if (existed) {
    insert_seq = it->second.insert_seq;
    DropRecord(session);  // also unrefs shared chunks if the old record had any
  } else {
    ++next_insert_seq_;
  }

  const std::uint64_t block_bytes = RoundToBlocks(bytes);
  // Built lazily: the hot path (placement succeeds on the first tier) must
  // not pay for formatting a failure message it never returns.
  std::optional<Status> failure;
  for (const Tier tier : EnabledTiers()) {
    // A tier picked up-front can be quarantined by I/O failures while this
    // very Put makes room or tries a faster tier; re-check before using it.
    if (!TierEnabled(tier)) {
      continue;
    }
    if (!EnsureRoom(tier, block_bytes, session, now, hints)) {
      continue;
    }
    if (!TierEnabled(tier)) {
      continue;
    }
    KvRecord record{.session = session,
                    .tier = Tier::kNone,
                    .bytes = bytes,
                    .block_bytes = block_bytes,
                    .token_count = token_count,
                    .last_access = now,
                    .insert_seq = insert_seq,
                    .extent = {},
                    .checksum = 0,
                    .user_meta = {user_meta.begin(), user_meta.end()}};
    if (config_.real_payloads) {
      auto receipt = WriteWithRetry(*Storage(tier), *payload, tier);
      if (!receipt.ok()) {
        // A failed save is a future miss, never an abort: degrade to the
        // next slower tier (or drop the record entirely below).
        ++stats_.failed_puts;
        failure = receipt.status();
        continue;
      }
      record.extent = std::move(receipt->extent);
      record.checksum = receipt->checksum;
    }
    used_bytes_[static_cast<std::size_t>(tier)] += block_bytes;
    record.tier = tier;
    const auto [rit, inserted] = records_.emplace(session, std::move(record));
    CA_CHECK(inserted);
    JournalUpsert(rit->second, user_meta, /*keep_existing_user_meta=*/false);
    if (existed) {
      ++stats_.updates;
    } else {
      ++stats_.inserts;
    }
    PurgeQuarantined();
    MaybeAudit();
    return Status::Ok();
  }
  // The record (if any) was released up-front; a failed re-Put must leave
  // the journal agreeing that the session is gone.
  if (existed) {
    JournalErase(session);
  }
  PurgeQuarantined();
  MaybeAudit();
  return failure.has_value()
             ? *failure
             : ResourceExhaustedError("KV cache of session " + std::to_string(session) +
                                      " fits in no tier");
}

Result<AttentionStore::Placement> AttentionStore::PlacePayload(std::uint64_t bytes,
                                                               PayloadSource& source,
                                                               SessionId exclude, SimTime now,
                                                               const SchedulerHints& hints) {
  const std::uint64_t block_bytes = RoundToBlocks(bytes);
  std::optional<Status> failure;
  for (const Tier tier : EnabledTiers()) {
    // Same re-check discipline as PutImpl: making room can quarantine the
    // very tier this iteration picked.
    if (!TierEnabled(tier)) {
      continue;
    }
    if (!EnsureRoom(tier, block_bytes, exclude, now, hints)) {
      continue;
    }
    if (!TierEnabled(tier)) {
      continue;
    }
    auto receipt = WriteWithRetry(*Storage(tier), source, tier);
    if (!receipt.ok()) {
      ++stats_.failed_puts;
      failure = receipt.status();
      continue;
    }
    return Placement{.tier = tier,
                     .extent = std::move(receipt->extent),
                     .checksum = receipt->checksum};
  }
  return failure.has_value() ? *failure : ResourceExhaustedError("payload fits in no tier");
}

Status AttentionStore::PutShared(SessionId session, std::span<const std::uint32_t> tokens,
                                 ChunkedPayloadSource& payload, SimTime now,
                                 const SchedulerHints& hints,
                                 std::span<const std::uint8_t> user_meta) {
  CA_CHECK(config_.share_prefixes) << "PutShared on a store without share_prefixes";
  CA_CHECK(config_.real_payloads) << "PutShared on capacity-only store";
  CA_CHECK(!IsChunkId(session)) << "session ids must not carry the chunk bit";
  CA_CHECK(!tokens.empty()) << "PutShared requires a non-empty token history";
  CA_CHECK_EQ(tokens.size(), payload.total_tokens())
      << "token history disagrees with the payload's token count";
  const std::uint64_t bpt = payload.bytes_per_token();
  CA_CHECK_GT(bpt, 0ULL);
  CA_TRACE_SPAN("store.put_shared", "session", session, "tokens", tokens.size());

  const std::uint64_t total_tokens = tokens.size();
  const std::uint64_t chunk_tokens = std::max<std::uint32_t>(config_.share_chunk_tokens, 1);
  // Tail-nonempty rule: the session's own record always keeps >= 1 token,
  // so every record has bytes > 0 and a real extent (store invariant).
  std::uint64_t n_full = total_tokens / chunk_tokens;
  if (n_full > 0 && total_tokens % chunk_tokens == 0) {
    --n_full;
  }

  // Snapshot the pre-existing record's identity up-front: chunk-placement
  // evictions below could in principle touch it (it is exclude-protected,
  // but the insert_seq must survive the explicit release either way).
  const auto old_it = records_.find(session);
  const bool existed = old_it != records_.end();
  const std::uint64_t insert_seq = existed ? old_it->second.insert_seq : next_insert_seq_++;

  // Walk the chunk chain: match-or-create. Each matched/created chunk is
  // refcounted AND pinned immediately, so room-making for later chunks can
  // neither free a fresh chunk (no referrer table exists yet) nor evict a
  // matched one.
  std::vector<SessionId> new_refs;
  new_refs.reserve(n_full);
  SessionId parent = kInvalidSession;
  std::uint64_t parent_key = kChainSeed;
  std::uint64_t tail_begin = 0;
  for (std::uint64_t c = 0; c < n_full; ++c) {
    const std::span<const std::uint32_t> span = tokens.subspan(c * chunk_tokens, chunk_tokens);
    const std::uint64_t key = ChainKey(parent_key, span);
    ++stats_.prefix_lookups;
    SessionId chunk_id = kInvalidSession;
    if (const auto idx = prefix_index_.find(key); idx != prefix_index_.end()) {
      for (const SessionId cand : idx->second) {
        const SharedChunk& cc = chunks_.at(cand);
        if (cc.parent == parent && cc.tokens.size() == span.size() &&
            std::equal(cc.tokens.begin(), cc.tokens.end(), span.begin())) {
          chunk_id = cand;
          break;
        }
      }
    }
    if (chunk_id != kInvalidSession) {
      ++stats_.prefix_hits;
      stats_.shared_bytes_saved += chunk_tokens * bpt;
    } else {
      PayloadSource& source = payload.Range(c * chunk_tokens, (c + 1) * chunk_tokens);
      auto placed = PlacePayload(chunk_tokens * bpt, source, session, now, hints);
      if (!placed.ok()) {
        // The chunk fits nowhere: fold the rest of the prefix into the
        // session's private tail and stop deduplicating here.
        break;
      }
      chunk_id = kChunkSessionBit | next_chunk_id_++;
      KvRecord record{.session = chunk_id,
                      .tier = placed->tier,
                      .bytes = chunk_tokens * bpt,
                      .block_bytes = RoundToBlocks(chunk_tokens * bpt),
                      .token_count = chunk_tokens,
                      .last_access = now,
                      .insert_seq = next_insert_seq_++,
                      .extent = std::move(placed->extent),
                      .checksum = placed->checksum,
                      .user_meta = EncodeChunkMeta(key, parent, span)};
      used_bytes_[static_cast<std::size_t>(placed->tier)] += record.block_bytes;
      const auto [rit, inserted] = records_.emplace(chunk_id, std::move(record));
      CA_CHECK(inserted);
      JournalUpsert(rit->second, rit->second.user_meta, /*keep_existing_user_meta=*/false);
      chunks_.emplace(chunk_id, SharedChunk{key, parent, {span.begin(), span.end()}, 0});
      prefix_index_[key].push_back(chunk_id);
      ++stats_.chunks_created;
    }
    RefChunk(chunk_id);
    pinned_chunks_.push_back(chunk_id);
    new_refs.push_back(chunk_id);
    parent = chunk_id;
    parent_key = key;
    tail_begin = (c + 1) * chunk_tokens;
  }

  // Release the old record now (decrefs its old table); its former chunks
  // that this save re-matched stay alive through the references taken above.
  if (existed) {
    DropRecord(session);
  }

  // Private tail: the divergent remainder (plus any chunks that found no
  // room). Always >= 1 token by the tail-nonempty rule.
  const std::uint64_t tail_bytes = (total_tokens - tail_begin) * bpt;
  PayloadSource& tail_source = payload.Range(tail_begin, total_tokens);
  auto placed = PlacePayload(tail_bytes, tail_source, session, now, hints);
  if (!placed.ok()) {
    // Nothing to keep: un-reference (and thereby free any freshly created)
    // chunks, and make the journal agree the session is gone.
    pinned_chunks_.clear();
    for (const SessionId ref : new_refs) {
      UnrefChunk(ref);
    }
    if (existed) {
      JournalErase(session);
    }
    ++stats_.failed_puts;
    PurgeQuarantined();
    MaybeAudit();
    return placed.status();
  }
  KvRecord record{.session = session,
                  .tier = placed->tier,
                  .bytes = tail_bytes,
                  .block_bytes = RoundToBlocks(tail_bytes),
                  .token_count = total_tokens,
                  .last_access = now,
                  .insert_seq = insert_seq,
                  .extent = std::move(placed->extent),
                  .checksum = placed->checksum,
                  .user_meta = {user_meta.begin(), user_meta.end()},
                  .shared_format = true,
                  .chunk_refs = std::move(new_refs)};
  used_bytes_[static_cast<std::size_t>(placed->tier)] += record.block_bytes;
  const auto [rit, inserted] = records_.emplace(session, std::move(record));
  CA_CHECK(inserted);
  JournalUpsert(rit->second, user_meta, /*keep_existing_user_meta=*/false);
  if (existed) {
    ++stats_.updates;
  } else {
    ++stats_.inserts;
  }
  ++stats_.shared_puts;
  pinned_chunks_.clear();
  PurgeQuarantined();
  MaybeAudit();
  return Status::Ok();
}

Status AttentionStore::ReadPieceInto(const KvRecord& record, std::span<std::uint8_t> out) {
  BlockStorage* storage = Storage(record.tier);
  CA_CHECK(storage != nullptr);
  return ReadVerifiedInto(*storage, record, record.tier, out);
}

Result<std::vector<std::uint8_t>> AttentionStore::ReadPayload(SessionId session) {
  CA_CHECK(config_.real_payloads) << "ReadPayload on capacity-only store";
  CA_TRACE_SPAN("store.read_payload", "session", session);
  const auto it = records_.find(session);
  if (it == records_.end()) {
    return NotFoundError("session " + std::to_string(session));
  }
  KvRecord& r = it->second;
  // Collect via the streaming read path with reserve + insert instead of a
  // value-initialized vector: resize() would memset the whole payload (a
  // full extra memory pass per MiB-scale read) before the copy overwrites
  // it, while insert() from the streamed chunks copies straight into
  // uninitialized capacity.
  struct VectorSink final : PayloadSink {
    std::vector<std::uint8_t> data;
    void Reset() override { data.clear(); }
    void Consume(std::span<const std::uint8_t> chunk) override {
      data.insert(data.end(), chunk.begin(), chunk.end());
    }
  };
  VectorSink sink;
  if (!r.chunk_refs.empty()) {
    // Shared record: delegate to the piece-wise path (it owns the failure
    // semantics — a permanent chunk failure cascades to every referrer).
    std::uint64_t total = r.bytes;
    for (const SessionId ref : r.chunk_refs) {
      total += records_.at(ref).bytes;
    }
    sink.data.reserve(total);
    const Status read = ReadPayloadInto(session, sink);
    if (read.ok()) {
      return std::move(sink.data);
    }
    return read;
  }
  BlockStorage* storage = Storage(r.tier);
  CA_CHECK(storage != nullptr);
  sink.data.reserve(r.bytes);
  const Status read = ReadVerifiedStream(*storage, r, r.tier, sink);
  if (read.ok()) {
    return std::move(sink.data);
  }
  ++stats_.failed_reads;
  if (read.code() != StatusCode::kUnavailable) {
    // Permanent failure or corruption: the payload is untrustworthy. Drop
    // the record so this miss is consistent on every subsequent lookup.
    DropRecord(session);
    ++stats_.fault_evictions;
  }
  PurgeQuarantined();
  MaybeAudit();
  return read;
}

Status AttentionStore::ReadPayloadInto(SessionId session, PayloadSink& sink) {
  CA_CHECK(config_.real_payloads) << "ReadPayloadInto on capacity-only store";
  CA_TRACE_SPAN("store.read_payload", "session", session, "zero_copy", 1);
  const auto it = records_.find(session);
  if (it == records_.end()) {
    return NotFoundError("session " + std::to_string(session));
  }
  KvRecord& r = it->second;
  if (!r.chunk_refs.empty()) {
    // Shared record: the logical payload is the concatenation of its chunk
    // payloads followed by the private tail. Each piece is read and
    // verified against its OWN checksum into a staging buffer before the
    // sink sees it (ReadVerifiedStream's retry semantics would Reset the
    // outer sink mid-stream, and a later piece's corruption must not leak
    // earlier pieces' bytes as "complete").
    sink.Reset();
    std::vector<std::uint8_t> staging;
    const auto read_piece = [&](const KvRecord& piece) {
      if (staging.size() < piece.bytes) {
        staging.resize(piece.bytes);
      }
      return ReadPieceInto(piece, std::span<std::uint8_t>(staging.data(), piece.bytes));
    };
    // Iterate over a copy of the table: the failure paths mutate records_.
    const std::vector<SessionId> refs = r.chunk_refs;
    for (const SessionId ref : refs) {
      KvRecord& chunk = records_.at(ref);
      const Status piece = read_piece(chunk);
      if (!piece.ok()) {
        ++stats_.failed_reads;
        if (piece.code() != StatusCode::kUnavailable) {
          // The shared block is untrustworthy: every referencing session
          // must miss consistently from now on, not just this one.
          DropChunkReferrers(ref, &StoreStats::fault_evictions);
        }
        PurgeQuarantined();
        MaybeAudit();
        return piece;
      }
      chunk.last_access = r.last_access;
      sink.Consume(std::span<const std::uint8_t>(staging.data(), chunk.bytes));
    }
    const Status tail = read_piece(r);
    if (!tail.ok()) {
      ++stats_.failed_reads;
      if (tail.code() != StatusCode::kUnavailable) {
        DropRecord(session);
        ++stats_.fault_evictions;
      }
      PurgeQuarantined();
      MaybeAudit();
      return tail;
    }
    sink.Consume(std::span<const std::uint8_t>(staging.data(), r.bytes));
    return Status::Ok();
  }
  BlockStorage* storage = Storage(r.tier);
  CA_CHECK(storage != nullptr);
  const Status read = ReadVerifiedStream(*storage, r, r.tier, sink);
  if (read.ok()) {
    return read;
  }
  ++stats_.failed_reads;
  if (read.code() != StatusCode::kUnavailable) {
    // Same drop-on-permanent-failure semantics as ReadPayload; the caller
    // additionally discards whatever the sink consumed before the verdict.
    DropRecord(session);
    ++stats_.fault_evictions;
  }
  PurgeQuarantined();
  MaybeAudit();
  return read;
}

Result<ExportedRecord> AttentionStore::ExportRecord(SessionId session) {
  CA_TRACE_SPAN("store.export", "session", session);
  if (records_.find(session) == records_.end()) {
    return NotFoundError("session " + std::to_string(session));
  }
  // Read the payload before snapshotting the metadata: a permanent read
  // failure drops the record (ReadPayload semantics), so the record lookup
  // below is only valid after a clean read.
  std::vector<std::uint8_t> payload;
  if (config_.real_payloads) {
    auto read = ReadPayload(session);
    if (!read.ok()) {
      return read.status();
    }
    payload = *std::move(read);
  }
  const KvRecord& r = records_.at(session);
  ExportedRecord out;
  out.session = session;
  out.token_count = r.token_count;
  out.last_access = r.last_access;
  out.user_meta = r.user_meta;
  out.shared_format = r.shared_format;
  if (!r.chunk_refs.empty()) {
    // Shared record: the snapshot is the materialized full payload (chunks
    // + tail), self-contained by design — the importing store knows nothing
    // of this store's chunk registry. The per-record checksum covers only
    // the tail, so stamp a fresh one over the assembled bytes.
    out.bytes = payload.size();
    out.checksum = config_.verify_checksums ? Checksum64(payload) : 0;
  } else {
    out.bytes = r.bytes;
    out.checksum = r.checksum;
  }
  out.payload = std::move(payload);
  ++stats_.exports;
  return out;
}

Status AttentionStore::ImportRecord(const ExportedRecord& record, SimTime now,
                                    const SchedulerHints& hints) {
  CA_TRACE_SPAN("store.import", "session", record.session, "bytes", record.bytes);
  if (record.session == kInvalidSession || record.bytes == 0) {
    return InvalidArgumentError("exported record is empty");
  }
  if (records_.find(record.session) != records_.end()) {
    return AlreadyExistsError("session " + std::to_string(record.session) +
                              " already resident; import never overwrites");
  }
  Status placed;
  if (config_.real_payloads) {
    if (record.payload.size() != record.bytes) {
      return InvalidArgumentError("exported payload size disagrees with its metadata");
    }
    // Re-verify on the importing side: the checksum was stamped over the
    // clean pre-transport bytes, so damage between export and import
    // surfaces here, before any block is written.
    if (config_.verify_checksums && record.checksum != 0 &&
        Checksum64(record.payload) != record.checksum) {
      ++stats_.corrupt_payloads;
      return DataLossError("session " + std::to_string(record.session) +
                           " import payload failed checksum re-verification");
    }
    SpanSource source(record.payload);
    placed = PutImpl(record.session, record.bytes, record.token_count, &source, now, hints,
                     record.user_meta);
  } else {
    placed = PutImpl(record.session, record.bytes, record.token_count, nullptr, now, hints,
                     record.user_meta);
  }
  if (placed.ok()) {
    if (record.shared_format) {
      // The imported record is private (no chunk table survives transport)
      // but its payload is token-major; preserve the flag so the engine's
      // load path parses it with the right deserializer. Re-journal so the
      // durable mirror agrees.
      KvRecord& r = records_.at(record.session);
      r.shared_format = true;
      JournalUpsert(r, {}, /*keep_existing_user_meta=*/true);
      MaybeAudit();
    }
    ++stats_.imports;
  }
  return placed;
}

Status AttentionStore::Promote(SessionId session, SimTime now, const SchedulerHints& hints) {
  // The §3.3.1 preload span: in overlap traces these run concurrent with
  // model.forward spans on the serving thread.
  CA_TRACE_SPAN("store.promote", "session", session);
  const auto it = records_.find(session);
  if (it == records_.end()) {
    return NotFoundError("session " + std::to_string(session));
  }
  KvRecord& r = it->second;
  if (r.tier != Tier::kDisk) {
    return FailedPreconditionError("session not on disk");
  }
  if (!TierEnabled(Tier::kDram)) {
    return FailedPreconditionError("DRAM tier disabled");
  }
  if (!EnsureRoom(Tier::kDram, r.block_bytes, session, now, hints)) {
    PurgeQuarantined();
    MaybeAudit();
    return ResourceExhaustedError("no DRAM room to promote session " + std::to_string(session));
  }
  const Status moved = MoveRecord(r, Tier::kDram);
  if (!moved.ok()) {
    ++stats_.failed_moves;
    if (r.tier == Tier::kNone) {  // source payload unrecoverable: record released
      DropRecord(session);
      ++stats_.fault_evictions;
    }
    PurgeQuarantined();
    MaybeAudit();
    return moved;
  }
  ++stats_.promotions;
  stats_.bytes_promoted += r.bytes;
  JournalUpsert(r, {}, /*keep_existing_user_meta=*/true);
  PurgeQuarantined();
  MaybeAudit();
  return Status::Ok();
}

Status AttentionStore::Demote(SessionId session, SimTime now, const SchedulerHints& hints) {
  CA_TRACE_SPAN("store.demote", "session", session);
  const auto it = records_.find(session);
  if (it == records_.end()) {
    return NotFoundError("session " + std::to_string(session));
  }
  KvRecord& r = it->second;
  const Tier down = NextSlowerTier(r.tier);
  if (down == Tier::kNone) {
    return FailedPreconditionError("no slower tier");
  }
  if (!EnsureRoom(down, r.block_bytes, session, now, hints)) {
    PurgeQuarantined();
    MaybeAudit();
    return ResourceExhaustedError("no room below");
  }
  const Status moved = MoveRecord(r, down);
  if (!moved.ok()) {
    ++stats_.failed_moves;
    if (r.tier == Tier::kNone) {  // source payload unrecoverable: record released
      DropRecord(session);
      ++stats_.fault_evictions;
    }
    PurgeQuarantined();
    MaybeAudit();
    return moved;
  }
  ++stats_.demotions;
  stats_.bytes_demoted += r.bytes;
  JournalUpsert(r, {}, /*keep_existing_user_meta=*/true);
  PurgeQuarantined();
  MaybeAudit();
  return Status::Ok();
}

std::size_t AttentionStore::MaintainDramBuffer(SimTime now, const SchedulerHints& hints) {
  if (!TierEnabled(Tier::kDram) || config_.dram_buffer == 0) {
    return 0;
  }
  std::size_t demoted = 0;
  while (FreeBytes(Tier::kDram) < config_.dram_buffer) {
    const auto victim = PickVictim(Tier::kDram, kInvalidSession, hints);
    if (!victim.has_value()) {
      break;
    }
    const std::uint64_t victim_block_bytes = records_.at(*victim).block_bytes;
    const Tier down = NextSlowerTier(Tier::kDram);
    bool moved_down = false;
    bool move_failed = false;
    if (down != Tier::kNone && EnsureRoom(down, victim_block_bytes, kInvalidSession, now, hints)) {
      // Revalidate: room-making below can cascade-drop the victim (shared
      // chunk eviction drops its referrers).
      const auto vit = records_.find(*victim);
      if (vit == records_.end()) {
        ++demoted;
        continue;
      }
      KvRecord& r = vit->second;
      const Status moved = MoveRecord(r, down);
      if (moved.ok()) {
        moved_down = true;
        ++stats_.demotions;
        stats_.bytes_demoted += r.bytes;
        JournalUpsert(r, {}, /*keep_existing_user_meta=*/true);
      } else {
        ++stats_.failed_moves;
        move_failed = true;
      }
    }
    if (!moved_down) {
      if (IsChunkId(*victim)) {
        DropChunkReferrers(*victim, move_failed ? &StoreStats::fault_evictions
                                                : &StoreStats::evictions_out);
      } else {
        if (move_failed) {
          ++stats_.fault_evictions;
        } else {
          ++stats_.evictions_out;
        }
        DropRecord(*victim);
      }
    }
    ++demoted;
  }
  PurgeQuarantined();
  if (config_.audit && TierEnabled(Tier::kDram)) {
    // §3.3.1 postcondition: the free-space buffer is restored unless DRAM
    // holds nothing left to demote (session records or shared chunks).
    bool dram_empty = true;
    for (const auto& [id, r] : records_) {
      if (r.tier == Tier::kDram) {
        dram_empty = false;
        break;
      }
    }
    CA_CHECK(FreeBytes(Tier::kDram) >= config_.dram_buffer || dram_empty)
        << "DRAM buffer not maintained although demotable records remain";
  }
  MaybeAudit();
  return demoted;
}

void AttentionStore::Remove(SessionId session) {
  if (records_.find(session) == records_.end()) {
    return;
  }
  DropRecord(session);
  MaybeAudit();
}

std::size_t AttentionStore::ExpireTtl(SimTime now) {
  if (config_.ttl <= 0) {
    return 0;
  }
  // Sessions only: a chunk's lifetime is its refcount — it dies with its
  // last referrer (and Access keeps referenced chunks recency-warm anyway).
  std::vector<SessionId> expired;
  for (const auto& [id, r] : records_) {
    if (!IsChunkId(id) && now - r.last_access > config_.ttl) {
      expired.push_back(id);
    }
  }
  for (const SessionId id : expired) {
    DropRecord(id);
  }
  stats_.ttl_expirations += expired.size();
  MaybeAudit();
  return expired.size();
}

std::vector<SessionId> AttentionStore::SessionsInTier(Tier tier) const {
  std::vector<SessionId> out;
  for (const auto& [id, r] : records_) {
    if (r.tier == tier && !IsChunkId(id)) {
      out.push_back(id);
    }
  }
  return out;
}

void AttentionStore::EraseRecord(SessionId session) { records_.erase(session); }

void AttentionStore::PublishMetrics(MetricsRegistry* registry) const {
  MetricsRegistry& reg = registry != nullptr ? *registry : MetricsRegistry::Global();
  const auto gauge = [&reg](std::string_view name, double v) { reg.GetGauge(name).Set(v); };
  gauge("store_stats.lookups", static_cast<double>(stats_.lookups));
  gauge("store_stats.misses", static_cast<double>(stats_.misses));
  gauge("store_stats.inserts", static_cast<double>(stats_.inserts));
  gauge("store_stats.updates", static_cast<double>(stats_.updates));
  gauge("store_stats.exports", static_cast<double>(stats_.exports));
  gauge("store_stats.imports", static_cast<double>(stats_.imports));
  gauge("store_stats.demotions", static_cast<double>(stats_.demotions));
  gauge("store_stats.promotions", static_cast<double>(stats_.promotions));
  gauge("store_stats.evictions_out", static_cast<double>(stats_.evictions_out));
  gauge("store_stats.ttl_expirations", static_cast<double>(stats_.ttl_expirations));
  gauge("store_stats.bytes_demoted", static_cast<double>(stats_.bytes_demoted));
  gauge("store_stats.bytes_promoted", static_cast<double>(stats_.bytes_promoted));
  gauge("store_stats.io_retries", static_cast<double>(stats_.io_retries));
  gauge("store_stats.transient_io_faults", static_cast<double>(stats_.transient_io_faults));
  gauge("store_stats.permanent_io_faults", static_cast<double>(stats_.permanent_io_faults));
  gauge("store_stats.corrupt_payloads", static_cast<double>(stats_.corrupt_payloads));
  gauge("store_stats.failed_puts", static_cast<double>(stats_.failed_puts));
  gauge("store_stats.failed_reads", static_cast<double>(stats_.failed_reads));
  gauge("store_stats.failed_moves", static_cast<double>(stats_.failed_moves));
  gauge("store_stats.fault_evictions", static_cast<double>(stats_.fault_evictions));
  gauge("store_stats.tiers_quarantined", static_cast<double>(stats_.tiers_quarantined));
  gauge("store_stats.tiers_disabled", static_cast<double>(stats_.tiers_disabled));
  gauge("store_stats.shared_puts", static_cast<double>(stats_.shared_puts));
  gauge("store_stats.prefix_lookups", static_cast<double>(stats_.prefix_lookups));
  gauge("store_stats.prefix_hits", static_cast<double>(stats_.prefix_hits));
  gauge("store_stats.chunks_created", static_cast<double>(stats_.chunks_created));
  gauge("store_stats.chunks_freed", static_cast<double>(stats_.chunks_freed));
  gauge("store_stats.shared_bytes_saved", static_cast<double>(stats_.shared_bytes_saved));
  gauge("store_stats.access_checkpoints", static_cast<double>(stats_.access_checkpoints));
  reg.GetGauge("store_stats.hits", {{"tier", "HBM"}}).Set(static_cast<double>(stats_.hbm_hits));
  reg.GetGauge("store_stats.hits", {{"tier", "DRAM"}})
      .Set(static_cast<double>(stats_.dram_hits));
  reg.GetGauge("store_stats.hits", {{"tier", "disk"}})
      .Set(static_cast<double>(stats_.disk_hits));
  for (const Tier tier : {Tier::kHbm, Tier::kDram, Tier::kDisk}) {
    const MetricLabels labels = {{"tier", std::string(TierName(tier))}};
    reg.GetGauge("store.used_bytes", labels).Set(static_cast<double>(UsedBytes(tier)));
    reg.GetGauge("store.capacity_bytes", labels)
        .Set(static_cast<double>(CapacityBytes(tier)));
    const StoreStats::TierIo& io = stats_.tier_io[static_cast<std::size_t>(tier)];
    reg.GetGauge("store.io_write_bytes", labels).Set(static_cast<double>(io.write_bytes));
    reg.GetGauge("store.io_read_bytes", labels).Set(static_cast<double>(io.read_bytes));
    reg.GetGauge("store.io_write_bytes_per_sec", labels).Set(io.write_bytes_per_sec());
    reg.GetGauge("store.io_read_bytes_per_sec", labels).Set(io.read_bytes_per_sec());
  }
  reg.GetGauge("store.records").Set(static_cast<double>(RecordCount()));
  reg.GetGauge("store.chunks").Set(static_cast<double>(ChunkCount()));
  if (meta_ != nullptr) {
    const RecoveryStats& rs = recovery_stats_;
    gauge("store_recovery.journal_entries_replayed",
          static_cast<double>(rs.journal_entries_replayed));
    gauge("store_recovery.records_recovered", static_cast<double>(rs.records_recovered));
    gauge("store_recovery.records_discarded_volatile",
          static_cast<double>(rs.records_discarded_volatile));
    gauge("store_recovery.records_discarded_torn",
          static_cast<double>(rs.records_discarded_torn));
    gauge("store_recovery.torn_tail_bytes", static_cast<double>(rs.torn_tail_bytes));
    gauge("store_recovery.records_conflict_dropped",
          static_cast<double>(rs.records_conflict_dropped));
    gauge("store_recovery.records_reconciled_missing",
          static_cast<double>(rs.records_reconciled_missing));
    gauge("store_recovery.replay_ns", static_cast<double>(rs.replay_ns));
    gauge("store_recovery.journal_bytes", static_cast<double>(meta_->journal_bytes()));
  }
}

}  // namespace ca
