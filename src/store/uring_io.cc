#include "src/store/uring_io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define CA_HAVE_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ca {

#ifdef CA_HAVE_URING

namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

inline unsigned LoadAcquire(const unsigned* p) { return __atomic_load_n(p, __ATOMIC_ACQUIRE); }
inline void StoreRelease(unsigned* p, unsigned v) { __atomic_store_n(p, v, __ATOMIC_RELEASE); }

}  // namespace

std::unique_ptr<UringQueue> UringQueue::TryCreate(unsigned entries) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int ring_fd = SysUringSetup(entries, &params);
  if (ring_fd < 0) {
    return nullptr;  // ENOSYS / EPERM (seccomp) / EMFILE: caller falls back
  }
  auto q = std::unique_ptr<UringQueue>(
      // NOLINT(naked-new, cppcoreguidelines-owning-memory, modernize-make-unique): private ctor
      new UringQueue());  // NOLINT(naked-new)
  q->ring_fd_ = ring_fd;
  q->sq_entries_ = params.sq_entries;
  q->cq_entries_ = params.cq_entries;

  q->sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  q->cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && q->cq_ring_bytes_ > q->sq_ring_bytes_) {
    q->sq_ring_bytes_ = q->cq_ring_bytes_;
  }
  q->sq_ring_ = ::mmap(nullptr, q->sq_ring_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
  if (q->sq_ring_ == MAP_FAILED) {
    q->sq_ring_ = nullptr;
    return nullptr;
  }
  if (single_mmap) {
    q->cq_ring_ = q->sq_ring_;
    q->cq_ring_bytes_ = 0;  // owned by the sq mapping
  } else {
    q->cq_ring_ = ::mmap(nullptr, q->cq_ring_bytes_, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
    if (q->cq_ring_ == MAP_FAILED) {
      q->cq_ring_ = nullptr;
      return nullptr;
    }
  }
  q->sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  q->sqes_ = ::mmap(nullptr, q->sqes_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                    ring_fd, IORING_OFF_SQES);
  if (q->sqes_ == MAP_FAILED) {
    q->sqes_ = nullptr;
    return nullptr;
  }

  auto* sq_base = static_cast<std::uint8_t*>(q->sq_ring_);
  q->sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  q->sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  q->sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  q->sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  auto* cq_base = static_cast<std::uint8_t*>(q->cq_ring_);
  q->cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  q->cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  q->cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  q->cqes_ = cq_base + params.cq_off.cqes;
  return q;
}

UringQueue::~UringQueue() {
  if (sqes_ != nullptr) {
    ::munmap(sqes_, sqes_bytes_);
  }
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) {
    ::munmap(sq_ring_, sq_ring_bytes_);
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
  }
}

Status UringQueue::SubmitBatch(int fd, std::span<const Op> ops) {
  auto* sqes = static_cast<io_uring_sqe*>(sqes_);
  unsigned tail = *sq_tail_;  // single producer: plain read of our own tail
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const unsigned idx = tail & sq_mask_;
    io_uring_sqe& sqe = sqes[idx];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = op.write ? IORING_OP_WRITEV : IORING_OP_READV;
    sqe.fd = fd;
    sqe.off = op.offset;
    sqe.addr = reinterpret_cast<std::uint64_t>(op.iov);
    sqe.len = op.iov_count;
    sqe.user_data = i;
    sq_array_[idx] = idx;
    ++tail;
  }
  StoreRelease(sq_tail_, tail);

  // Submit (a signal can interrupt mid-batch; the kernel reports how many
  // SQEs it consumed, the rest stay queued for the next enter).
  const auto n = static_cast<unsigned>(ops.size());
  unsigned submitted = 0;
  while (submitted < n) {
    const int ret = SysUringEnter(ring_fd_, n - submitted, 0, 0);
    if (ret < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(std::string("io_uring_enter: ") + std::strerror(errno));
    }
    submitted += static_cast<unsigned>(ret);
  }
  // Reap all n completions.
  unsigned completed = 0;
  Status failure = Status::Ok();
  while (completed < n) {
    unsigned head = *cq_head_;  // single consumer: plain read of our own head
    if (head == LoadAcquire(cq_tail_)) {
      const int ret = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (ret < 0 && errno != EINTR) {
        return IoError(std::string("io_uring_enter(wait): ") + std::strerror(errno));
      }
      continue;
    }
    const auto* cqe = reinterpret_cast<const io_uring_cqe*>(
        static_cast<const std::uint8_t*>(cqes_) + (head & cq_mask_) * sizeof(io_uring_cqe));
    const std::uint64_t op_index = cqe->user_data;
    const int res = cqe->res;
    StoreRelease(cq_head_, head + 1);
    ++completed;
    if (!failure.ok()) {
      continue;  // keep draining; report the first failure
    }
    if (op_index >= ops.size()) {
      failure = IoError("io_uring completion for unknown submission");
    } else if (res < 0) {
      failure = IoError(std::string("io_uring ") + (ops[op_index].write ? "writev" : "readv") +
                        ": " + std::strerror(-res));
    } else if (static_cast<std::uint64_t>(res) != ops[op_index].expected_bytes) {
      failure = IoError("io_uring short transfer: " + std::to_string(res) + " of " +
                        std::to_string(ops[op_index].expected_bytes) + " bytes");
    }
  }
  return failure;
}

Status UringQueue::SubmitAndWait(int fd, std::span<const Op> ops) {
  std::size_t done = 0;
  while (done < ops.size()) {
    const std::size_t batch = std::min<std::size_t>(ops.size() - done, sq_entries_);
    CA_RETURN_IF_ERROR(SubmitBatch(fd, ops.subspan(done, batch)));
    done += batch;
  }
  return Status::Ok();
}

#else  // !CA_HAVE_URING

std::unique_ptr<UringQueue> UringQueue::TryCreate(unsigned /*entries*/) { return nullptr; }
UringQueue::~UringQueue() = default;
Status UringQueue::SubmitAndWait(int /*fd*/, std::span<const Op> /*ops*/) {
  return IoError("io_uring not available on this platform");
}
Status UringQueue::SubmitBatch(int /*fd*/, std::span<const Op> /*ops*/) {
  return IoError("io_uring not available on this platform");
}

#endif  // CA_HAVE_URING

}  // namespace ca
