// Deterministic fault injection for tier storage (DESIGN.md §10).
//
// FaultInjectingBlockStorage decorates any BlockStorage and injects a
// seeded, reproducible stream of I/O faults:
//   * transient failures   — kUnavailable; a retry may succeed (the store's
//     bounded-backoff retry loop exists for exactly these);
//   * permanent failures   — kIoError; retrying is pointless (dead device);
//   * fail-after-N         — every read/write from op #N on fails
//     permanently, modelling a device dying mid-run;
//   * corruption           — the operation "succeeds" but the payload is
//     damaged: torn writes flip a byte before it reaches the device, short
//     reads zero the tail of the returned buffer. Only the store's
//     per-extent checksum can catch these.
//
// Determinism: all decisions come from one seeded Rng consumed in operation
// order, so a single-threaded test replays the exact same fault sequence
// for the same seed. (Under concurrency the interleaving — not the injector
// — is the source of nondeterminism.) Free and UsedBlocks never fault:
// they are metadata operations that survive a failed device.
#ifndef CA_STORE_FAULT_INJECTION_H_
#define CA_STORE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/store/block_storage.h"

namespace ca {

struct FaultConfig {
  std::uint64_t seed = 1;

  // Per-operation fault probabilities in [0, 1]. Checked in the order
  // permanent → transient → corrupt; at most one fault fires per op.
  double read_transient_p = 0.0;   // kUnavailable
  double write_transient_p = 0.0;  // kUnavailable
  double read_permanent_p = 0.0;   // kIoError
  double write_permanent_p = 0.0;  // kIoError
  double read_corrupt_p = 0.0;     // short read: returned tail zeroed
  double write_corrupt_p = 0.0;    // torn write: stored byte flipped

  // When > 0, operation #N and every one after it fails with kIoError
  // (device death schedules; counted across the storage's lifetime).
  std::uint64_t fail_reads_after = 0;
  std::uint64_t fail_writes_after = 0;

  // Crash-schedule switch (DESIGN.md §15). Once frozen, the injector stops
  // rolling faults and passes every operation straight through: after the
  // simulated SIGKILL the device is no longer there to fail in interesting
  // ways, and injected faults would make the in-memory store diverge from
  // the pinned on-disk state in ways a real crash cannot.
  std::shared_ptr<CrashSwitch> crash;

  bool enabled() const {
    return read_transient_p > 0 || write_transient_p > 0 || read_permanent_p > 0 ||
           write_permanent_p > 0 || read_corrupt_p > 0 || write_corrupt_p > 0 ||
           fail_reads_after > 0 || fail_writes_after > 0;
  }
};

struct FaultInjectionStats {
  std::uint64_t reads = 0;   // Read calls observed
  std::uint64_t writes = 0;  // Write calls observed
  std::uint64_t transient_faults = 0;
  std::uint64_t permanent_faults = 0;
  std::uint64_t corruptions = 0;

  std::uint64_t faults() const { return transient_faults + permanent_faults + corruptions; }
};

class FaultInjectingBlockStorage final : public BlockStorage {
 public:
  FaultInjectingBlockStorage(std::unique_ptr<BlockStorage> inner, FaultConfig config);

  Result<BlockExtent> Write(std::span<const std::uint8_t> bytes) override CA_EXCLUDES(mutex_);
  Result<BlockExtent> WriteZeroCopy(PayloadSource& source) override CA_EXCLUDES(mutex_);
  Result<std::vector<std::uint8_t>> Read(const BlockExtent& extent) override CA_EXCLUDES(mutex_);
  Status ReadInto(const BlockExtent& extent, std::span<std::uint8_t> out) override
      CA_EXCLUDES(mutex_);
  Status ReadZeroCopy(const BlockExtent& extent, PayloadSink& sink) override CA_EXCLUDES(mutex_);
  // Never faults: adoption is a metadata operation (recovery must see the
  // allocator's true state, DESIGN.md §15).
  Status AdoptExtent(const BlockExtent& extent) override;
  void Free(BlockExtent& extent) override;
  std::uint64_t UsedBlocks() const override;
  std::uint64_t block_bytes() const override;

  FaultInjectionStats fault_stats() const CA_EXCLUDES(mutex_);

 private:
  enum class Outcome { kOk, kTransient, kPermanent, kCorrupt };

  // Draws the next outcome for a read/write; `corrupt_pos` receives the
  // deterministic corruption site when the outcome is kCorrupt.
  Outcome NextOutcome(bool is_read, std::uint64_t* corrupt_pos) CA_EXCLUDES(mutex_);

  std::unique_ptr<BlockStorage> inner_;  // unguarded: set in ctor, immutable after
  const FaultConfig config_;

  mutable Mutex mutex_{"store.FaultInjecting"};
  Rng rng_ CA_GUARDED_BY(mutex_);
  FaultInjectionStats stats_ CA_GUARDED_BY(mutex_);
};

}  // namespace ca

#endif  // CA_STORE_FAULT_INJECTION_H_
