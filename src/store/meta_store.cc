#include "src/store/meta_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace ca {

namespace {

// Journal superblock, 64 bytes at offset 0. Host-endian: journal and
// payload are a local pair, never shipped across architectures.
// Layout: [0] magic u32, [4] version u32, [8] block_bytes u64,
// [16] store_id u64, [24] Fnv1a64 over [0,24), [32..64) zero.
constexpr std::uint64_t kSuperblockBytes = 64;
constexpr std::uint64_t kSuperblockPayloadBytes = 24;
constexpr std::uint32_t kJournalMagic = 0x4A4D4143;  // "CAMJ"
// v2: upsert bodies carry shared_format + the block table (chunk_refs), and
// the access-checkpoint entry kind exists (S1/DESIGN.md §17).
constexpr std::uint32_t kJournalVersion = 2;

// Entry frame: [u32 body_len][u64 Fnv1a64(body)][body].
constexpr std::uint64_t kFrameHeaderBytes = 12;
// Body size sanity bound — anything larger is a corrupt length field, not a
// real entry (records are session-sized, far below this).
constexpr std::uint64_t kMaxEntryBytes = 256ULL * 1024 * 1024;

constexpr std::uint8_t kEntryUpsert = 1;
constexpr std::uint8_t kEntryErase = 2;
// Coarse last_access checkpoint: [u64 session][i64 last_access]. Purely a
// recency refresh — never creates or resurrects a record.
constexpr std::uint8_t kEntryAccess = 3;

class ByteWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void I64(std::int64_t v) { Raw(&v, sizeof v); }
  void Bytes(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  std::vector<std::uint8_t>& data() { return buf_; }

 private:
  void Raw(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), bytes, bytes + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::uint8_t U8() { return Read<std::uint8_t>(); }
  std::uint32_t U32() { return Read<std::uint32_t>(); }
  std::uint64_t U64() { return Read<std::uint64_t>(); }
  std::int64_t I64() { return Read<std::int64_t>(); }

  bool Bytes(std::size_t n, std::vector<std::uint8_t>& out) {
    if (buf_.size() - off_ < n) {
      ok_ = false;
      return false;
    }
    out.assign(buf_.begin() + static_cast<std::ptrdiff_t>(off_),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_ + n));
    off_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && off_ == buf_.size(); }

 private:
  template <typename T>
  T Read() {
    T v{};
    if (!ok_ || buf_.size() - off_ < sizeof(T)) {
      ok_ = false;
      return v;
    }
    std::memcpy(&v, buf_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

void EncodeUpsert(const MetaRecord& rec, ByteWriter& w) {
  w.U8(kEntryUpsert);
  w.U64(rec.session);
  w.U8(static_cast<std::uint8_t>(rec.tier));
  w.U64(rec.bytes);
  w.U64(rec.token_count);
  w.I64(rec.last_access);
  w.U64(rec.insert_seq);
  w.U64(rec.checksum);
  w.U32(static_cast<std::uint32_t>(rec.blocks.size()));
  for (const BlockId b : rec.blocks) {
    w.U32(b);
  }
  w.U32(static_cast<std::uint32_t>(rec.user_meta.size()));
  w.Bytes(rec.user_meta);
  w.U8(rec.shared_format ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(rec.chunk_refs.size()));
  for (const SessionId ref : rec.chunk_refs) {
    w.U64(ref);
  }
}

// Decodes an upsert body after its type byte; false on any malformation.
bool DecodeUpsert(ByteReader& r, MetaRecord& rec) {
  rec.session = r.U64();
  const std::uint8_t tier = r.U8();
  rec.bytes = r.U64();
  rec.token_count = r.U64();
  rec.last_access = r.I64();
  rec.insert_seq = r.U64();
  rec.checksum = r.U64();
  const std::uint32_t n_blocks = r.U32();
  if (!r.ok() || tier > static_cast<std::uint8_t>(Tier::kNone)) {
    return false;
  }
  rec.tier = static_cast<Tier>(tier);
  rec.blocks.clear();
  rec.blocks.reserve(n_blocks);
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    rec.blocks.push_back(r.U32());
  }
  const std::uint32_t meta_len = r.U32();
  if (!r.ok() || !r.Bytes(meta_len, rec.user_meta)) {
    return false;
  }
  const std::uint8_t shared = r.U8();
  const std::uint32_t n_refs = r.U32();
  if (!r.ok() || shared > 1) {
    return false;
  }
  rec.shared_format = shared != 0;
  rec.chunk_refs.clear();
  rec.chunk_refs.reserve(n_refs);
  for (std::uint32_t i = 0; i < n_refs; ++i) {
    rec.chunk_refs.push_back(r.U64());
  }
  return r.AtEnd();
}

Status PwriteAll(int fd, const std::uint8_t* data, std::uint64_t n, std::uint64_t offset) {
  std::uint64_t written = 0;
  while (written < n) {
    const ssize_t r =
        ::pwrite(fd, data + written, n - written, static_cast<off_t>(offset + written));
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(std::string("journal pwrite: ") + std::strerror(errno));
    }
    written += static_cast<std::uint64_t>(r);
  }
  return Status::Ok();
}

void PutU32At(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void PutU64At(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }
std::uint32_t GetU32At(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t GetU64At(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

void FillSuperblock(std::uint8_t* sb, std::uint64_t block_bytes, std::uint64_t store_id) {
  std::memset(sb, 0, kSuperblockBytes);
  PutU32At(sb, kJournalMagic);
  PutU32At(sb + 4, kJournalVersion);
  PutU64At(sb + 8, block_bytes);
  PutU64At(sb + 16, store_id);
  PutU64At(sb + 24,
           Fnv1a64(std::span<const std::uint8_t>(sb, kSuperblockPayloadBytes)));
}

}  // namespace

MetaStore::MetaStore(std::string path, int fd, std::uint64_t block_bytes, Options options)
    : path_(std::move(path)), fd_(fd), block_bytes_(block_bytes), options_(std::move(options)) {}

MetaStore::~MetaStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<MetaStore>> MetaStore::Open(std::string path, std::uint64_t block_bytes,
                                                   std::uint64_t fresh_store_id, Options options) {
  // A stale snapshot tmp is an abandoned compaction (crash before rename):
  // the journal file is authoritative, the tmp is garbage.
  ::unlink((path + ".tmp").c_str());

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return IoError("cannot open journal " + path + ": " + std::strerror(errno));
  }
  std::unique_ptr<MetaStore> store(
      // NOLINT(cppcoreguidelines-owning-memory, modernize-make-unique): private ctor
      new MetaStore(std::move(path), fd, block_bytes, std::move(options)));  // NOLINT(naked-new)
  CA_RETURN_IF_ERROR(store->Replay());
  if (!store->recovered_existing_) {
    store->store_id_ = fresh_store_id;
    std::uint8_t sb[kSuperblockBytes];
    FillSuperblock(sb, block_bytes, fresh_store_id);
    CA_RETURN_IF_ERROR(PwriteAll(fd, sb, kSuperblockBytes, 0));
    if (::ftruncate(fd, static_cast<off_t>(kSuperblockBytes)) != 0) {
      return IoError(std::string("journal ftruncate: ") + std::strerror(errno));
    }
    store->journal_bytes_ = kSuperblockBytes;
    if (store->options_.fsync != MetaFsyncPolicy::kNone && ::fdatasync(fd) != 0) {
      return IoError(std::string("journal fdatasync: ") + std::strerror(errno));
    }
  }
  return store;
}

Status MetaStore::Replay() {
  const std::uint64_t start_ns = TraceNowNs();
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    return IoError(std::string("journal lseek: ") + std::strerror(errno));
  }
  const auto size = static_cast<std::uint64_t>(end);
  if (size < kSuperblockBytes) {
    // Empty file, or a crash tore the superblock write itself: nothing was
    // ever journaled, so this is a fresh store (Open stamps the header).
    if (size > 0) {
      recovery_stats_.torn_tail_bytes += size;
    }
    recovered_existing_ = false;
    return Status::Ok();
  }

  std::vector<std::uint8_t> data(size);
  std::uint64_t got = 0;
  while (got < size) {
    const ssize_t n = ::pread(fd_, data.data() + got, size - got, static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(std::string("journal pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return IoError("journal pread: unexpected EOF");
    }
    got += static_cast<std::uint64_t>(n);
  }

  const std::span<const std::uint8_t> head(data.data(), kSuperblockPayloadBytes);
  if (Fnv1a64(head) != GetU64At(data.data() + 24)) {
    // A corrupt superblock means the journal's identity is gone and the
    // payload pairing cannot be re-established. The KV cache is soft state:
    // start fresh (everything becomes a clean miss) rather than refuse to
    // serve. Version/size mismatches below, by contrast, are configuration
    // errors and DO fail the open.
    CA_LOG(Warn) << path_ << ": journal superblock corrupt; discarding "
                 << size << " bytes and starting fresh";
    recovery_stats_.torn_tail_bytes += size;
    recovered_existing_ = false;
    return Status::Ok();
  }
  if (GetU32At(data.data()) != kJournalMagic) {
    return FailedPreconditionError(path_ + ": not a CachedAttention metadata journal");
  }
  if (GetU32At(data.data() + 4) != kJournalVersion) {
    return FailedPreconditionError(
        path_ + ": journal format version " + std::to_string(GetU32At(data.data() + 4)) +
        ", this build writes " + std::to_string(kJournalVersion));
  }
  if (GetU64At(data.data() + 8) != block_bytes_) {
    return FailedPreconditionError(
        path_ + ": journal written with block_bytes=" + std::to_string(GetU64At(data.data() + 8)) +
        ", store configured with " + std::to_string(block_bytes_));
  }
  store_id_ = GetU64At(data.data() + 16);
  recovered_existing_ = true;

  // Replay entries in order; ownership conflicts resolve newest-wins.
  std::unordered_map<BlockId, SessionId> owner;
  std::uint64_t off = kSuperblockBytes;
  bool torn = false;
  while (off < size) {
    if (size - off < kFrameHeaderBytes) {
      torn = true;
      break;
    }
    const std::uint64_t body_len = GetU32At(data.data() + off);
    const std::uint64_t body_sum = GetU64At(data.data() + off + 4);
    if (body_len == 0 || body_len > kMaxEntryBytes || size - off - kFrameHeaderBytes < body_len) {
      torn = true;
      break;
    }
    const std::span<const std::uint8_t> body(data.data() + off + kFrameHeaderBytes, body_len);
    if (Fnv1a64(body) != body_sum) {
      torn = true;
      break;
    }
    ByteReader r(body);
    const std::uint8_t type = r.U8();
    if (type == kEntryUpsert) {
      MetaRecord rec;
      if (!DecodeUpsert(r, rec)) {
        torn = true;
        break;
      }
      ApplyUpsert(std::move(rec), owner);
    } else if (type == kEntryErase) {
      const SessionId session = r.U64();
      if (!r.ok() || !r.AtEnd()) {
        torn = true;
        break;
      }
      ApplyErase(session, owner);
    } else if (type == kEntryAccess) {
      const SessionId session = r.U64();
      const std::int64_t last_access = r.I64();
      if (!r.ok() || !r.AtEnd()) {
        torn = true;
        break;
      }
      // Recency refresh only: a checkpoint for a session that was since
      // erased (or never upserted) is simply stale, not damage.
      const auto it = live_.find(session);
      if (it != live_.end()) {
        it->second.last_access = last_access;
      }
    } else {
      torn = true;
      break;
    }
    ++recovery_stats_.journal_entries_replayed;
    off += kFrameHeaderBytes + body_len;
  }
  if (torn) {
    // Crash mid-append: everything from the first unreadable frame on is
    // discarded as a clean miss, and the file is cut back so the next
    // append starts at a valid frame boundary.
    recovery_stats_.records_discarded_torn += 1;
    recovery_stats_.torn_tail_bytes += size - off;
    if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
      return IoError(std::string("journal ftruncate: ") + std::strerror(errno));
    }
  }
  journal_bytes_ = off;

  // Memory-tier finals died with the process.
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->second.tier != Tier::kDisk) {
      ++recovery_stats_.records_discarded_volatile;
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
  recovery_stats_.replay_ns += TraceNowNs() - start_ns;
  return Status::Ok();
}

void MetaStore::ApplyUpsert(MetaRecord record, std::unordered_map<BlockId, SessionId>& owner) {
  ApplyErase(record.session, owner);
  // A newer entry claiming an older record's blocks means those blocks were
  // freed and rewritten after the older entry was journaled: the older
  // payload is gone, so the older record is dropped (a clean miss).
  std::vector<SessionId> losers;
  for (const BlockId b : record.blocks) {
    const auto it = owner.find(b);
    if (it != owner.end()) {
      losers.push_back(it->second);
    }
  }
  std::sort(losers.begin(), losers.end());
  losers.erase(std::unique(losers.begin(), losers.end()), losers.end());
  for (const SessionId loser : losers) {
    ApplyErase(loser, owner);
    ++recovery_stats_.records_conflict_dropped;
  }
  for (const BlockId b : record.blocks) {
    owner[b] = record.session;
  }
  live_[record.session] = std::move(record);
}

void MetaStore::ApplyErase(SessionId session, std::unordered_map<BlockId, SessionId>& owner) {
  const auto it = live_.find(session);
  if (it == live_.end()) {
    return;
  }
  for (const BlockId b : it->second.blocks) {
    const auto o = owner.find(b);
    if (o != owner.end() && o->second == session) {
      owner.erase(o);
    }
  }
  live_.erase(it);
}

const std::vector<std::uint8_t>* MetaStore::UserMeta(SessionId session) const {
  const auto it = live_.find(session);
  return it == live_.end() ? nullptr : &it->second.user_meta;
}

bool MetaStore::Frozen() const {
  return options_.fault.armed() &&
         options_.fault.crash->frozen.load(std::memory_order_relaxed);
}

Status MetaStore::Upsert(MetaRecord record) {
  ByteWriter w;
  EncodeUpsert(record, w);
  live_[record.session] = std::move(record);
  CA_RETURN_IF_ERROR(AppendFrame(w.data()));
  return MaybeCompact();
}

Status MetaStore::Access(SessionId session, std::int64_t last_access) {
  const auto it = live_.find(session);
  if (it == live_.end()) {
    return Status::Ok();
  }
  it->second.last_access = last_access;
  ByteWriter w;
  w.U8(kEntryAccess);
  w.U64(session);
  w.I64(last_access);
  CA_RETURN_IF_ERROR(AppendFrame(w.data()));
  return MaybeCompact();
}

Status MetaStore::Erase(SessionId session) {
  const auto it = live_.find(session);
  if (it == live_.end()) {
    return Status::Ok();
  }
  live_.erase(it);
  ByteWriter w;
  w.U8(kEntryErase);
  w.U64(session);
  CA_RETURN_IF_ERROR(AppendFrame(w.data()));
  return MaybeCompact();
}

Status MetaStore::AppendFrame(std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + body.size());
  PutU32At(frame.data(), static_cast<std::uint32_t>(body.size()));
  PutU64At(frame.data() + 4, Fnv1a64(body));
  std::memcpy(frame.data() + kFrameHeaderBytes, body.data(), body.size());

  ++appends_;
  const MetaFaultConfig& f = options_.fault;
  if (Frozen()) {
    return Status::Ok();  // post-crash: the entry never reaches the file
  }
  if (f.armed() && f.crash_after_appends > 0 && appends_ >= f.crash_after_appends) {
    // Simulated SIGKILL mid-append: a prefix of the frame lands torn.
    const std::uint64_t torn =
        std::min<std::uint64_t>(frame.size(), f.torn_append_bytes);
    f.crash->frozen.store(true, std::memory_order_relaxed);
    CA_RETURN_IF_ERROR(PwriteAll(fd_, frame.data(), torn, journal_bytes_));
    journal_bytes_ += torn;
    return Status::Ok();
  }
  CA_RETURN_IF_ERROR(PwriteAll(fd_, frame.data(), frame.size(), journal_bytes_));
  journal_bytes_ += frame.size();
  return MaybeFsync();
}

Status MetaStore::MaybeFsync() {
  const bool sync =
      options_.fsync == MetaFsyncPolicy::kAlways ||
      (options_.fsync == MetaFsyncPolicy::kEveryN && options_.fsync_every_n > 0 &&
       appends_ % options_.fsync_every_n == 0);
  if (!sync) {
    return Status::Ok();
  }
  ++fsyncs_;
  const MetaFaultConfig& f = options_.fault;
  if (f.armed() && f.crash_after_fsyncs > 0 && fsyncs_ >= f.crash_after_fsyncs) {
    // SIGKILL at the fsync boundary: the appended bytes are in the page
    // cache (an in-process restart still sees them) but were never forced
    // to media.
    f.crash->frozen.store(true, std::memory_order_relaxed);
    return Status::Ok();
  }
  if (::fdatasync(fd_) != 0) {
    return IoError(std::string("journal fdatasync: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status MetaStore::MaybeCompact() {
  if (journal_bytes_ <= options_.compact_threshold_bytes) {
    return Status::Ok();
  }
  return Compact();
}

Status MetaStore::Compact() {
  if (Frozen()) {
    return Status::Ok();
  }
  ++compactions_;
  CA_TRACE_SPAN("meta.compact", "records", live_.size(), "journal_bytes", journal_bytes_);

  std::vector<std::uint8_t> snapshot(kSuperblockBytes);
  FillSuperblock(snapshot.data(), block_bytes_, store_id_);
  for (const auto& [session, rec] : live_) {
    ByteWriter w;
    EncodeUpsert(rec, w);
    std::uint8_t header[kFrameHeaderBytes];
    PutU32At(header, static_cast<std::uint32_t>(w.data().size()));
    PutU64At(header + 4, Fnv1a64(w.data()));
    snapshot.insert(snapshot.end(), header, header + kFrameHeaderBytes);
    snapshot.insert(snapshot.end(), w.data().begin(), w.data().end());
  }

  const std::string tmp = path_ + ".tmp";
  const int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    return IoError("cannot open " + tmp + ": " + std::strerror(errno));
  }
  Status written = PwriteAll(tfd, snapshot.data(), snapshot.size(), 0);
  if (written.ok() && options_.fsync != MetaFsyncPolicy::kNone && ::fdatasync(tfd) != 0) {
    written = IoError(std::string("snapshot fdatasync: ") + std::strerror(errno));
  }
  if (!written.ok()) {
    ::close(tfd);
    ::unlink(tmp.c_str());
    return written;
  }

  const MetaFaultConfig& f = options_.fault;
  if (f.armed() && f.crash_on_compact > 0 && compactions_ >= f.crash_on_compact) {
    // SIGKILL between snapshot write and rename: the old journal is still
    // the journal; the orphaned tmp is unlinked by the next Open.
    f.crash->frozen.store(true, std::memory_order_relaxed);
    ::close(tfd);
    return Status::Ok();
  }

  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const Status s = IoError("rename " + tmp + ": " + std::strerror(errno));
    ::close(tfd);
    ::unlink(tmp.c_str());
    return s;
  }
  ::close(fd_);
  fd_ = tfd;
  journal_bytes_ = snapshot.size();
  return Status::Ok();
}

}  // namespace ca
