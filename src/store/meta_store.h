// MetaStore: the journaled metadata layer behind a durable AttentionStore
// (DESIGN.md §15).
//
// The disk tier's payload file persists bytes, but every KvRecord — tier,
// extent, checksum — lives in process memory, so an unclean death used to
// discard the whole warm tier. MetaStore fixes that: every record mutation
// (put/promote/demote/evict/erase) appends one length-prefixed,
// FNV-checksummed entry to an append-only journal, and Open() replays the
// journal to rebuild the record table after a restart. Records whose final
// journaled tier was a memory tier died with the process and are dropped as
// clean misses; a torn journal tail (crash mid-append) is detected by the
// frame checksum, counted, and truncated away — recovery never guesses.
//
// The journal is bounded by compaction: when it outgrows
// compact_threshold_bytes, the live table is rewritten into "<path>.tmp",
// flushed, and atomically rename()d over the journal, so a crash during
// compaction leaves either the old journal (rename never happened) or the
// complete new snapshot — never a mix. A stale "<path>.tmp" found at Open
// is an abandoned compaction and is unlinked.
//
// Block-reuse conflicts: after a crash window the payload device may have
// reassigned blocks a stale journal entry still references. Replay resolves
// ownership in journal order — a newer entry claiming a block drops the
// older record (its payload is gone) — and AttentionStore's per-extent
// checksums backstop anything replay cannot see.
//
// Thread safety: none. MetaStore is driven by AttentionStore under the
// caller's serialization contract (the engine mutex), exactly like the
// record table it mirrors.
#ifndef CA_STORE_META_STORE_H_
#define CA_STORE_META_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/store/block_allocator.h"
#include "src/store/types.h"

namespace ca {

// When journal appends are forced to media. The in-process kill-restart
// model (CrashSwitch) never loses the page cache, so kNone is enough for
// the tests; surviving power loss needs kEveryN or kAlways.
enum class MetaFsyncPolicy : std::uint8_t {
  kNone = 0,    // page cache only: survives process death, not power loss
  kEveryN = 1,  // fdatasync every fsync_every_n appends
  kAlways = 2,  // fdatasync every append (slowest, power-loss durable)
};

// Seeded crash schedule for the journal's own fault points (tests;
// DESIGN.md §15). Each trigger freezes the shared CrashSwitch, after which
// no bytes from any holder reach any file.
struct MetaFaultConfig {
  std::shared_ptr<CrashSwitch> crash;
  // Crash on append #N: the entry lands torn after torn_append_bytes bytes
  // (default: the whole frame lands, everything later is lost).
  std::uint64_t crash_after_appends = 0;
  std::uint64_t torn_append_bytes = ~0ULL;
  // Crash at fdatasync #N, before the sync reaches the device.
  std::uint64_t crash_after_fsyncs = 0;
  // Crash during compaction #N, after the snapshot is written but before
  // the atomic rename — the old journal must win.
  std::uint64_t crash_on_compact = 0;

  bool armed() const { return crash != nullptr; }
};

// One journaled record: the durable subset of AttentionStore's KvRecord
// plus an opaque caller blob (the engine journals the serialized token
// history there so recovered sessions replay bitwise-identically).
struct MetaRecord {
  SessionId session = kInvalidSession;
  Tier tier = Tier::kNone;
  std::uint64_t bytes = 0;
  std::uint64_t token_count = 0;
  std::int64_t last_access = 0;
  std::uint64_t insert_seq = 0;
  std::uint64_t checksum = 0;
  std::vector<BlockId> blocks;  // disk-tier extent; empty for memory tiers
  std::vector<std::uint8_t> user_meta;
  // Prefix sharing (DESIGN.md §17): PutShared records carry their ordered
  // block table (shared-chunk record ids). Refcounts are deliberately NOT
  // journaled — recovery re-derives them from the surviving tables, so a
  // replayed journal can neither double-free nor leak a shared chunk.
  bool shared_format = false;
  std::vector<SessionId> chunk_refs;
};

// What recovery did, surfaced through AttentionStore::recovery_stats() and
// the metrics registry (store_recovery.* gauges).
struct RecoveryStats {
  std::uint64_t journal_entries_replayed = 0;
  std::uint64_t records_recovered = 0;          // adopted + serving again
  std::uint64_t records_discarded_volatile = 0; // final tier was memory: died with process
  std::uint64_t records_discarded_torn = 0;     // lost to the torn journal tail
  std::uint64_t torn_tail_bytes = 0;
  std::uint64_t records_conflict_dropped = 0;   // blocks re-claimed by a newer record
  std::uint64_t records_reconciled_missing = 0; // extent/checksum disagreed with device
  std::uint64_t replay_ns = 0;
};

class MetaStore {
 public:
  struct Options {
    MetaFsyncPolicy fsync = MetaFsyncPolicy::kNone;
    std::uint32_t fsync_every_n = 64;
    std::uint64_t compact_threshold_bytes = MiB(1);
    MetaFaultConfig fault;
  };

  // Opens (creating if absent) the journal at `path` and replays it.
  // A journal written by a different format version or block size fails
  // with kFailedPrecondition; an unreadable file with kIoError. A fresh
  // journal is stamped with `fresh_store_id` (pairs it with the payload
  // file); a replayed one keeps its stored id — read it back via store_id().
  static Result<std::unique_ptr<MetaStore>> Open(std::string path, std::uint64_t block_bytes,
                                                 std::uint64_t fresh_store_id, Options options);
  ~MetaStore();

  MetaStore(const MetaStore&) = delete;
  MetaStore& operator=(const MetaStore&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t store_id() const { return store_id_; }
  // True when Open replayed an existing journal (the payload file must then
  // be reused, not truncated).
  bool recovered_existing() const { return recovered_existing_; }
  std::uint64_t journal_bytes() const { return journal_bytes_; }

  // The replayed/live record table. After AttentionStore recovery this
  // mirrors the in-memory record map exactly (CheckInvariants cross-checks).
  const std::unordered_map<SessionId, MetaRecord>& live() const { return live_; }
  const std::vector<std::uint8_t>* UserMeta(SessionId session) const;
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // Journals one mutation. The in-memory mirror is updated even when the
  // append fails (or the crash switch is frozen): the mirror tracks intent,
  // the file tracks what a restart will see.
  Status Upsert(MetaRecord record);
  Status Erase(SessionId session);

  // Coarse last_access checkpoint (S1 bugfix): a small frame that refreshes
  // only the session's recency, so post-recovery LRU order tracks real
  // access order instead of the last full upsert. Replay ignores
  // checkpoints for unknown sessions (an erase may follow the access in
  // the same journal).
  Status Access(SessionId session, std::int64_t last_access);

  // Rewrites the journal as a snapshot of live(). Called automatically past
  // compact_threshold_bytes; callable explicitly (recovery compacts once so
  // replay work is not repeated on the next open).
  Status Compact();

 private:
  MetaStore(std::string path, int fd, std::uint64_t block_bytes, Options options);

  // Replays superblock + entries from byte 0; truncates a torn tail.
  Status Replay();
  void ApplyUpsert(MetaRecord record, std::unordered_map<BlockId, SessionId>& owner);
  void ApplyErase(SessionId session, std::unordered_map<BlockId, SessionId>& owner);

  Status AppendFrame(std::span<const std::uint8_t> body);
  Status MaybeFsync();
  Status MaybeCompact();
  bool Frozen() const;

  const std::string path_;
  int fd_;  // swapped by Compact (rename replaces the journal file)
  const std::uint64_t block_bytes_;
  const Options options_;

  std::uint64_t store_id_ = 0;
  bool recovered_existing_ = false;
  std::uint64_t journal_bytes_ = 0;  // append offset == current file size
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t compactions_ = 0;

  std::unordered_map<SessionId, MetaRecord> live_;
  RecoveryStats recovery_stats_;
};

}  // namespace ca

#endif  // CA_STORE_META_STORE_H_
