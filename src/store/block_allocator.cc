#include "src/store/block_allocator.h"

#include <algorithm>

#include "src/common/check.h"

namespace ca {

BlockAllocator::BlockAllocator(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
    : block_bytes_(block_bytes), total_blocks_(capacity_bytes / block_bytes) {
  CA_CHECK_GT(block_bytes, 0ULL);
  free_list_.reserve(total_blocks_);
  // Hand out low block ids first: push high ids so pop_back yields low ones.
  for (std::uint64_t i = total_blocks_; i > 0; --i) {
    free_list_.push_back(static_cast<BlockId>(i - 1));
  }
  allocated_.assign(total_blocks_, false);
}

Result<std::vector<BlockId>> BlockAllocator::Allocate(std::uint64_t n) {
  if (n > free_list_.size()) {
    return ResourceExhaustedError("block allocator: " + std::to_string(n) + " blocks requested, " +
                                  std::to_string(free_list_.size()) + " free");
  }
  std::vector<BlockId> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const BlockId id = free_list_.back();
    free_list_.pop_back();
    allocated_[id] = true;
    out.push_back(id);
  }
  return out;
}

Status BlockAllocator::AllocateSpecific(std::span<const BlockId> blocks) {
  for (const BlockId id : blocks) {
    if (id >= total_blocks_) {
      return FailedPreconditionError("block " + std::to_string(id) + " out of range (pool has " +
                                     std::to_string(total_blocks_) + " blocks)");
    }
    if (allocated_[id]) {
      return FailedPreconditionError("block " + std::to_string(id) + " already allocated");
    }
  }
  // A block repeated within the request passes the scan above; catch it
  // while marking and unwind so the failure claims nothing.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (allocated_[blocks[i]]) {
      for (std::size_t j = 0; j < i; ++j) {
        allocated_[blocks[j]] = false;
      }
      return FailedPreconditionError("block " + std::to_string(blocks[i]) +
                                     " repeated in request");
    }
    allocated_[blocks[i]] = true;
  }
  // free_list_ ∩ allocated_ is exactly the set just marked.
  std::erase_if(free_list_, [this](BlockId id) { return allocated_[id]; });
  return Status::Ok();
}

void BlockAllocator::Free(std::span<const BlockId> blocks) {
  for (const BlockId id : blocks) {
    CA_CHECK_LT(id, total_blocks_);
    CA_CHECK(allocated_[id]) << "double free of block " << id;
    allocated_[id] = false;
    free_list_.push_back(id);
  }
}

}  // namespace ca
