#include "src/store/eviction_policy.h"

#include "src/common/check.h"

namespace ca {

std::optional<SessionId> LruPolicy::PickVictim(std::span<const VictimView> candidates,
                                               const SchedulerHints& hints) {
  (void)hints;  // history-only policy
  CA_CHECK(!candidates.empty());
  const VictimView* best = &candidates[0];
  for (const auto& c : candidates) {
    if (c.last_access < best->last_access) {
      best = &c;
    }
  }
  return best->session;
}

std::optional<SessionId> FifoPolicy::PickVictim(std::span<const VictimView> candidates,
                                                const SchedulerHints& hints) {
  (void)hints;  // history-only policy
  CA_CHECK(!candidates.empty());
  const VictimView* best = &candidates[0];
  for (const auto& c : candidates) {
    if (c.insert_seq < best->insert_seq) {
      best = &c;
    }
  }
  return best->session;
}

std::optional<SessionId> SchedulerAwarePolicy::PickVictim(std::span<const VictimView> candidates,
                                                          const SchedulerHints& hints) {
  CA_CHECK(!candidates.empty());
  // Pass 1: sessions with no queued job — LRU among them.
  const VictimView* best_unqueued = nullptr;
  for (const auto& c : candidates) {
    if (hints.InWindow(c.session)) {
      continue;
    }
    if (best_unqueued == nullptr || c.last_access < best_unqueued->last_access) {
      best_unqueued = &c;
    }
  }
  if (best_unqueued != nullptr) {
    return best_unqueued->session;
  }
  // Pass 2: everything is in the window; evict the tail (furthest next use).
  const VictimView* tail = &candidates[0];
  std::size_t tail_use = hints.NextUse(tail->session);
  for (const auto& c : candidates) {
    const std::size_t use = hints.NextUse(c.session);
    if (use > tail_use) {
      tail = &c;
      tail_use = use;
    }
  }
  return tail->session;
}

std::optional<SessionId> DedupAwarePolicy::PickVictim(std::span<const VictimView> candidates,
                                                      const SchedulerHints& hints) {
  (void)hints;  // refcount + history policy
  CA_CHECK(!candidates.empty());
  const VictimView* best = &candidates[0];
  for (const auto& c : candidates) {
    if (c.shared_refs != best->shared_refs ? c.shared_refs < best->shared_refs
                                           : c.last_access < best->last_access) {
      best = &c;
    }
  }
  return best->session;
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(std::string_view name) {
  if (name == "lru" || name == "LRU") {
    return std::make_unique<LruPolicy>();
  }
  if (name == "fifo" || name == "FIFO") {
    return std::make_unique<FifoPolicy>();
  }
  if (name == "scheduler-aware" || name == "CA") {
    return std::make_unique<SchedulerAwarePolicy>();
  }
  if (name == "dedup-aware") {
    return std::make_unique<DedupAwarePolicy>();
  }
  CA_CHECK(false) << "unknown eviction policy: " << name;
  return nullptr;
}

}  // namespace ca
