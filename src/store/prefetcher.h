// Scheduler-aware KV cache fetching (§3.3.1).
//
// The prefetcher inspects the waiting jobs inside a look-ahead prefetching
// window whose length is bounded by the DRAM capacity available for
// prefetching: L_pw = C_mem / S_kv (paper formula). Disk-resident sessions
// inside the window are planned for promotion to DRAM; executing a plan item
// is left to the caller (the simulator charges SSD transfer time first; the
// real engine copies the bytes through the store).
#ifndef CA_STORE_PREFETCHER_H_
#define CA_STORE_PREFETCHER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/store/attention_store.h"
#include "src/store/types.h"

namespace ca {

struct PrefetchPlan {
  // Sessions to fetch disk -> DRAM, in queue order.
  std::vector<SessionId> to_fetch;
  // Window length that was applied.
  std::size_t window_len = 0;
};

class Prefetcher {
 public:
  explicit Prefetcher(AttentionStore* store) : store_(store) {}

  // Builds a plan for the given queue snapshot (session of each waiting job,
  // head first). `avg_session_kv_bytes` is S_kv, the running average KV size
  // of a session; it sizes the look-ahead window.
  PrefetchPlan Plan(std::span<const SessionId> upcoming, std::uint64_t avg_session_kv_bytes) const;

  // Executes a plan synchronously through the store (real-execution mode).
  // Returns the number of sessions successfully promoted.
  std::size_t Execute(const PrefetchPlan& plan, SimTime now, const SchedulerHints& hints);

 private:
  AttentionStore* store_;
};

// Builds SchedulerHints from a queue snapshot: for every session, the index
// of its first waiting job, truncated to `window_len` entries (the
// look-ahead *eviction* window of §3.3.2, sized (C_mem + C_disk) / S_kv).
SchedulerHints BuildHints(std::span<const SessionId> upcoming, std::size_t window_len);

// Paper formula for the eviction window length.
std::size_t EvictionWindowLength(const AttentionStore& store,
                                 std::uint64_t avg_session_kv_bytes);

}  // namespace ca

#endif  // CA_STORE_PREFETCHER_H_
