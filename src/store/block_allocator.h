// Fixed-size block allocator. The paper (§4.1) manages host memory and disks
// "in the form of blocks to improve storage utilization, similar to vLLM";
// this allocator provides that: a capacity-bounded pool of equal-size blocks
// with O(1) allocate/free via a free list.
#ifndef CA_STORE_BLOCK_ALLOCATOR_H_
#define CA_STORE_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace ca {

using BlockId = std::uint32_t;

class BlockAllocator {
 public:
  BlockAllocator(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

  std::uint64_t block_bytes() const { return block_bytes_; }
  std::uint64_t total_blocks() const { return total_blocks_; }
  std::uint64_t free_blocks() const { return free_list_.size(); }
  std::uint64_t used_blocks() const { return total_blocks_ - free_blocks(); }
  std::uint64_t capacity_bytes() const { return total_blocks_ * block_bytes_; }
  std::uint64_t free_bytes() const { return free_blocks() * block_bytes_; }
  std::uint64_t used_bytes() const { return used_blocks() * block_bytes_; }

  // Number of blocks needed to hold `bytes`.
  std::uint64_t BlocksFor(std::uint64_t bytes) const {
    return (bytes + block_bytes_ - 1) / block_bytes_;
  }

  // Allocates `n` blocks; fails with kResourceExhausted if unavailable
  // (allocating zero blocks succeeds with an empty list).
  Result<std::vector<BlockId>> Allocate(std::uint64_t n);

  // Claims exactly `blocks` (recovery re-attaches extents that survived a
  // restart; DESIGN.md §15). Fails with kFailedPrecondition — claiming
  // nothing — if any block is out of range, already allocated, or repeated
  // within the request.
  Status AllocateSpecific(std::span<const BlockId> blocks);

  // Returns blocks to the free list. Double-free aborts.
  void Free(std::span<const BlockId> blocks);

 private:
  std::uint64_t block_bytes_;
  std::uint64_t total_blocks_;
  std::vector<BlockId> free_list_;
  std::vector<bool> allocated_;  // double-free / invalid-free detection
};

}  // namespace ca

#endif  // CA_STORE_BLOCK_ALLOCATOR_H_
