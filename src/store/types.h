// Shared vocabulary types for AttentionStore.
#ifndef CA_STORE_TYPES_H_
#define CA_STORE_TYPES_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace ca {

// Shared kill-switch for crash-schedule fault injection (DESIGN.md §15).
// Test-only: when a seeded schedule fires, `frozen` flips to true and every
// layer holding the switch (metadata journal, payload device) silently stops
// letting bytes reach its file — the in-memory store keeps running, but the
// on-disk state is pinned at the instant of the simulated SIGKILL.
// Abandoning the store object and re-Open()ing the same paths is then
// equivalent to a real kill-restart, minus the process churn (so the
// kill-restart tests run in-process under ASan/TSan with no leaks).
struct CrashSwitch {
  std::atomic<bool> frozen{false};
};

using SessionId = std::uint64_t;
inline constexpr SessionId kInvalidSession = std::numeric_limits<SessionId>::max();

// Storage hierarchy, fastest first. kNone means "not cached anywhere".
enum class Tier : std::uint8_t { kHbm = 0, kDram = 1, kDisk = 2, kNone = 3 };

inline constexpr std::size_t kNumTiers = 3;

std::string_view TierName(Tier tier);

// Per-tier health (DESIGN.md §10). A tier degrades on any I/O fault and
// recovers on the next clean operation; repeated *permanent* faults
// quarantine it — the tier leaves placement for the rest of the process
// lifetime and its records are dropped (each one a future miss, never an
// error). A tier whose backing storage cannot even be created starts out
// quarantined.
enum class TierHealth : std::uint8_t { kHealthy = 0, kDegraded = 1, kQuarantined = 2 };

std::string_view TierHealthName(TierHealth health);

// Scheduler hints: for each session with a waiting job, the queue position
// of its *next* use. Sessions absent from the map have no visible future
// use (the scheduler-aware policies treat them as the best eviction
// candidates, mirroring Belady within the look-ahead window).
struct SchedulerHints {
  std::unordered_map<SessionId, std::size_t> next_use_index;

  static constexpr std::size_t kNoFutureUse = std::numeric_limits<std::size_t>::max();

  std::size_t NextUse(SessionId session) const {
    const auto it = next_use_index.find(session);
    return it == next_use_index.end() ? kNoFutureUse : it->second;
  }
  bool InWindow(SessionId session) const {
    return next_use_index.find(session) != next_use_index.end();
  }
};

// Aggregate store statistics. A "lookup" is one per conversation turn; hits
// split by the tier the KV cache was found in (§4.3.3 reports DRAM vs disk
// hit rates separately).
struct StoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hbm_hits = 0;
  std::uint64_t dram_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t exports = 0;         // records serialized for migration
  std::uint64_t imports = 0;         // migrated records installed
  std::uint64_t demotions = 0;       // moved to a slower tier
  std::uint64_t promotions = 0;      // prefetched to a faster tier
  std::uint64_t evictions_out = 0;   // dropped from the system entirely
  std::uint64_t ttl_expirations = 0;

  std::uint64_t bytes_demoted = 0;
  std::uint64_t bytes_promoted = 0;

  // --- fault tolerance (DESIGN.md §10) ---------------------------------
  // Every injected or real I/O fault must be visible here: degradation is
  // only acceptable when it is observable.
  std::uint64_t io_retries = 0;          // transient errors retried with backoff
  std::uint64_t transient_io_faults = 0; // ops still failing after all retries
  std::uint64_t permanent_io_faults = 0; // non-retryable I/O failures (incl. checksum)
  std::uint64_t corrupt_payloads = 0;    // checksum mismatches detected on read
  std::uint64_t failed_puts = 0;         // Put tier-writes that failed (per tier tried)
  std::uint64_t failed_reads = 0;        // ReadPayload calls degraded to a miss
  std::uint64_t failed_moves = 0;        // promotions/demotions that failed & rolled back
  std::uint64_t fault_evictions = 0;     // records dropped because of faults
  std::uint64_t tiers_quarantined = 0;   // health transitions into kQuarantined
  std::uint64_t tiers_disabled = 0;      // tiers unusable from construction

  std::uint64_t io_faults() const { return transient_io_faults + permanent_io_faults; }

  // --- cross-session prefix sharing (DESIGN.md §17) --------------------
  std::uint64_t shared_puts = 0;        // PutShared calls that placed a record
  std::uint64_t prefix_lookups = 0;     // chunk-boundary prefix-index probes
  std::uint64_t prefix_hits = 0;        // probes that matched an existing chunk
  std::uint64_t chunks_created = 0;     // new shared chunk records written
  std::uint64_t chunks_freed = 0;       // chunk records freed at refcount zero
  std::uint64_t shared_bytes_saved = 0; // payload bytes deduplicated (not written)
  std::uint64_t access_checkpoints = 0; // coarse last_access frames journaled

  double prefix_hit_rate() const {
    return prefix_lookups == 0
               ? 0.0
               : static_cast<double>(prefix_hits) / static_cast<double>(prefix_lookups);
  }

  // --- per-tier I/O throughput (DESIGN.md §14) --------------------------
  // Wall time is accumulated per successful transfer *including* its retry
  // backoffs, so the derived rate is the effective bandwidth the engine
  // actually observed, not the device's best case.
  struct TierIo {
    std::uint64_t write_bytes = 0;
    std::uint64_t write_ns = 0;
    std::uint64_t read_bytes = 0;
    std::uint64_t read_ns = 0;

    double write_bytes_per_sec() const {
      return write_ns == 0 ? 0.0
                           : static_cast<double>(write_bytes) * 1e9 / static_cast<double>(write_ns);
    }
    double read_bytes_per_sec() const {
      return read_ns == 0 ? 0.0
                          : static_cast<double>(read_bytes) * 1e9 / static_cast<double>(read_ns);
    }
  };
  std::array<TierIo, kNumTiers> tier_io = {};

  std::uint64_t hits() const { return hbm_hits + dram_hits + disk_hits; }
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(lookups);
  }
  double dram_hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hbm_hits + dram_hits) / static_cast<double>(lookups);
  }
  double disk_hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(disk_hits) / static_cast<double>(lookups);
  }
};

}  // namespace ca

#endif  // CA_STORE_TYPES_H_
