// Shared vocabulary types for AttentionStore.
#ifndef CA_STORE_TYPES_H_
#define CA_STORE_TYPES_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace ca {

using SessionId = std::uint64_t;
inline constexpr SessionId kInvalidSession = std::numeric_limits<SessionId>::max();

// Storage hierarchy, fastest first. kNone means "not cached anywhere".
enum class Tier : std::uint8_t { kHbm = 0, kDram = 1, kDisk = 2, kNone = 3 };

inline constexpr std::size_t kNumTiers = 3;

std::string_view TierName(Tier tier);

// Scheduler hints: for each session with a waiting job, the queue position
// of its *next* use. Sessions absent from the map have no visible future
// use (the scheduler-aware policies treat them as the best eviction
// candidates, mirroring Belady within the look-ahead window).
struct SchedulerHints {
  std::unordered_map<SessionId, std::size_t> next_use_index;

  static constexpr std::size_t kNoFutureUse = std::numeric_limits<std::size_t>::max();

  std::size_t NextUse(SessionId session) const {
    const auto it = next_use_index.find(session);
    return it == next_use_index.end() ? kNoFutureUse : it->second;
  }
  bool InWindow(SessionId session) const {
    return next_use_index.find(session) != next_use_index.end();
  }
};

// Aggregate store statistics. A "lookup" is one per conversation turn; hits
// split by the tier the KV cache was found in (§4.3.3 reports DRAM vs disk
// hit rates separately).
struct StoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hbm_hits = 0;
  std::uint64_t dram_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t demotions = 0;       // moved to a slower tier
  std::uint64_t promotions = 0;      // prefetched to a faster tier
  std::uint64_t evictions_out = 0;   // dropped from the system entirely
  std::uint64_t ttl_expirations = 0;

  std::uint64_t bytes_demoted = 0;
  std::uint64_t bytes_promoted = 0;

  std::uint64_t hits() const { return hbm_hits + dram_hits + disk_hits; }
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(lookups);
  }
  double dram_hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hbm_hits + dram_hits) / static_cast<double>(lookups);
  }
  double disk_hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(disk_hits) / static_cast<double>(lookups);
  }
};

}  // namespace ca

#endif  // CA_STORE_TYPES_H_
