// Block-granular payload storage for one tier.
//
// A BlockStorage writes a record's bytes across fixed-size blocks and reads
// them back given the block list. Two implementations:
//  * MemoryBlockStorage — heap arena (the DRAM / HBM tiers).
//  * FileBlockStorage — one backing file with pread/pwrite at block offsets
//    (the disk tier of the real-execution path). The backing file is
//    unlinked in the destructor.
//
// The simulator never attaches payload storage (capacity accounting only);
// the real-execution engine always does.
//
// Thread safety: Write/Read/Free/UsedBlocks are individually thread-safe
// (one internal mutex serializes the allocator and the block I/O), so the
// asynchronous KV-save stream and IO threads may share one storage. Callers
// still coordinate *which* extents they touch: freeing an extent another
// thread is reading is a logic error the mutex cannot catch.
#ifndef CA_STORE_BLOCK_STORAGE_H_
#define CA_STORE_BLOCK_STORAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/store/block_allocator.h"

namespace ca {

// The blocks holding one record plus its exact byte length (the last block
// is generally partially filled).
struct BlockExtent {
  std::vector<BlockId> blocks;
  std::uint64_t byte_length = 0;

  bool empty() const { return blocks.empty(); }
};

class BlockStorage {
 public:
  explicit BlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
      : allocator_(capacity_bytes, block_bytes) {}
  virtual ~BlockStorage() = default;

  BlockStorage(const BlockStorage&) = delete;
  BlockStorage& operator=(const BlockStorage&) = delete;

  // Allocates blocks and writes `bytes` into them.
  Result<BlockExtent> Write(std::span<const std::uint8_t> bytes) CA_EXCLUDES(mutex_);

  // Reads a record back.
  Result<std::vector<std::uint8_t>> Read(const BlockExtent& extent) CA_EXCLUDES(mutex_);

  // Releases a record's blocks.
  void Free(BlockExtent& extent) CA_EXCLUDES(mutex_);

  // Currently allocated block count (the invariant auditor cross-checks
  // this against the live records' extents).
  std::uint64_t UsedBlocks() const CA_EXCLUDES(mutex_);

  std::uint64_t block_bytes() const CA_EXCLUDES(mutex_);

 protected:
  // Block I/O hooks; invoked with mutex_ held.
  virtual Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) = 0;
  virtual Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) = 0;

  mutable Mutex mutex_;
  BlockAllocator allocator_ CA_GUARDED_BY(mutex_);
};

class MemoryBlockStorage final : public BlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) override;

 private:
  std::vector<std::uint8_t> arena_ CA_GUARDED_BY(mutex_);
};

class FileBlockStorage final : public BlockStorage {
 public:
  // Creates/truncates `path`. Aborts if the file cannot be opened.
  FileBlockStorage(std::string path, std::uint64_t capacity_bytes, std::uint64_t block_bytes);
  ~FileBlockStorage() override;

  const std::string& path() const { return path_; }

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) override;

 private:
  const std::string path_;  // immutable after construction
  int fd_ = -1;             // immutable after construction
};

}  // namespace ca

#endif  // CA_STORE_BLOCK_STORAGE_H_
