// Block-granular payload storage for one tier.
//
// BlockStorage is the abstract interface AttentionStore drives: write a
// record's bytes across fixed-size blocks, read them back given the block
// list, free the blocks. Implementations:
//  * PooledBlockStorage — the common allocator-backed base; block I/O is a
//    set of protected hooks (per-block plus batched zero-copy variants).
//  * MemoryBlockStorage — heap arena (the DRAM / HBM tiers). Zero-copy I/O
//    fills/streams arena memory directly, no staging buffer.
//  * FileBlockStorage — one backing file (the disk tier of the
//    real-execution path). Multi-block extents are issued as one batched
//    submission: io_uring when the kernel allows it, pwritev/preadv
//    coalescing otherwise, per-block pread/pwrite as the portable floor
//    (see DiskIoMode). Opened through a fallible factory (a missing backing
//    file disables the tier, it never aborts the process); ephemeral files
//    are unlinked in the destructor, persistent ones (DiskIoOptions::persist,
//    the durable disk tier of DESIGN.md §15) carry a versioned superblock
//    and survive it.
//  * FaultInjectingBlockStorage (fault_injection.h) — decorator that injects
//    deterministic I/O faults for tests and the store hammer.
//
// Zero-copy protocol (DESIGN.md §14): WriteZeroCopy pulls the payload from a
// PayloadSource — successive Fill(dest) calls hand the producer destination
// windows that cover the record exactly once, in byte order, so a serializer
// writes straight into tier block memory (or the disk staging buffer)
// instead of a caller-side std::vector. ReadZeroCopy pushes the payload into
// a PayloadSink the same way. Both are restartable: the retry loop calls
// Reset() and replays the whole transfer.
//
// The simulator never attaches payload storage (capacity accounting only);
// the real-execution engine always does.
//
// Failure contract: Write/Read return Status for everything a caller can
// degrade gracefully — device errors (kIoError), transient unavailability
// (kUnavailable), malformed extents from corrupted metadata (kInternal) and
// pool exhaustion (kResourceExhausted). The KV cache is soft state, so
// AttentionStore turns any of these into a cache miss (DESIGN.md §10);
// aborting is reserved for in-process invariant violations.
//
// Thread safety: all public operations are individually thread-safe (one
// internal mutex serializes the allocator and the block I/O), so the
// asynchronous KV-save stream and IO threads may share one storage. Callers
// still coordinate *which* extents they touch: freeing an extent another
// thread is reading is a logic error the mutex cannot catch.
#ifndef CA_STORE_BLOCK_STORAGE_H_
#define CA_STORE_BLOCK_STORAGE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/store/block_allocator.h"
#include "src/store/types.h"

namespace ca {

// The blocks holding one record plus its exact byte length (the last block
// is generally partially filled).
struct BlockExtent {
  std::vector<BlockId> blocks;
  std::uint64_t byte_length = 0;

  bool empty() const { return blocks.empty(); }
};

// Sequential producer of a record's bytes (the zero-copy write protocol).
// The storage calls Fill with successive destination windows whose sizes
// sum to size(); the producer must fill each window completely.
class PayloadSource {
 public:
  virtual ~PayloadSource() = default;

  // Total payload bytes this source produces per pass.
  virtual std::uint64_t size() const = 0;

  // Restarts the cursor at byte 0 (bounded-retry writes replay the pass).
  virtual void Reset() = 0;

  // Produces the next dest.size() bytes into dest.
  virtual void Fill(std::span<std::uint8_t> dest) = 0;
};

// Sequential consumer of a record's bytes (the zero-copy read protocol).
// Chunks arrive in byte order and cover the record exactly once per pass.
// NOTE: chunks are streamed BEFORE the store's checksum verdict is known;
// a consumer must discard everything it built if the surrounding call
// returns non-OK (see AttentionStore::ReadPayloadInto).
class PayloadSink {
 public:
  virtual ~PayloadSink() = default;

  // Restarts the pass (bounded-retry reads replay the transfer).
  virtual void Reset() = 0;

  virtual void Consume(std::span<const std::uint8_t> chunk) = 0;
};

// PayloadSource over a contiguous caller buffer (adapts the legacy
// copy-path Write(span) onto the zero-copy spine).
class SpanSource final : public PayloadSource {
 public:
  explicit SpanSource(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t size() const override { return bytes_.size(); }
  void Reset() override { offset_ = 0; }
  void Fill(std::span<std::uint8_t> dest) override {
    std::memcpy(dest.data(), bytes_.data() + offset_, dest.size());
    offset_ += dest.size();
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

class BlockStorage {
 public:
  BlockStorage() = default;
  virtual ~BlockStorage() = default;

  BlockStorage(const BlockStorage&) = delete;
  BlockStorage& operator=(const BlockStorage&) = delete;

  // Allocates blocks and writes `bytes` into them.
  virtual Result<BlockExtent> Write(std::span<const std::uint8_t> bytes) = 0;

  // Allocates blocks and pulls the payload from `source` (zero-copy write
  // path; see file comment). On failure no blocks stay allocated, but the
  // source may have been partially consumed — retries must Reset() it.
  virtual Result<BlockExtent> WriteZeroCopy(PayloadSource& source) = 0;

  // Reads a record back. A malformed extent (block count inconsistent with
  // byte_length, or out-of-range block ids) yields kInternal, not an abort:
  // corrupted record metadata must be handleable as a miss.
  virtual Result<std::vector<std::uint8_t>> Read(const BlockExtent& extent) = 0;

  // Reads a record into a caller-owned buffer of exactly extent.byte_length
  // bytes (bounded retries reuse one allocation). Same failure contract as
  // Read; `out` contents are unspecified after a failure.
  virtual Status ReadInto(const BlockExtent& extent, std::span<std::uint8_t> out) = 0;

  // Streams a record into `sink` (zero-copy read path). Memory-backed tiers
  // pass arena spans directly — no staging copy.
  virtual Status ReadZeroCopy(const BlockExtent& extent, PayloadSink& sink) = 0;

  // Claims the exact blocks of `extent` without touching the device
  // (recovery re-attaches extents that survived a restart; DESIGN.md §15).
  // Fails with kFailedPrecondition — claiming nothing — if any block is
  // unavailable or the extent shape is inconsistent with the pool. Backends
  // without an allocator reject every extent.
  virtual Status AdoptExtent(const BlockExtent& extent);

  // Releases a record's blocks. Pure metadata: never touches the device, so
  // it stays safe on a failed tier.
  virtual void Free(BlockExtent& extent) = 0;

  // Currently allocated block count (the invariant auditor cross-checks
  // this against the live records' extents).
  virtual std::uint64_t UsedBlocks() const = 0;

  virtual std::uint64_t block_bytes() const = 0;
};

// Allocator-backed storage base: owns the block pool and serializes all
// operations behind one mutex; concrete backends supply the block I/O.
class PooledBlockStorage : public BlockStorage {
 public:
  PooledBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
      : allocator_(capacity_bytes, block_bytes) {}

  Result<BlockExtent> Write(std::span<const std::uint8_t> bytes) override CA_EXCLUDES(mutex_);
  Result<BlockExtent> WriteZeroCopy(PayloadSource& source) override CA_EXCLUDES(mutex_);
  Result<std::vector<std::uint8_t>> Read(const BlockExtent& extent) override CA_EXCLUDES(mutex_);
  Status ReadInto(const BlockExtent& extent, std::span<std::uint8_t> out) override
      CA_EXCLUDES(mutex_);
  Status ReadZeroCopy(const BlockExtent& extent, PayloadSink& sink) override CA_EXCLUDES(mutex_);
  Status AdoptExtent(const BlockExtent& extent) override CA_EXCLUDES(mutex_);
  void Free(BlockExtent& extent) override CA_EXCLUDES(mutex_);
  std::uint64_t UsedBlocks() const override CA_EXCLUDES(mutex_);
  std::uint64_t block_bytes() const override CA_EXCLUDES(mutex_);

 protected:
  // Block I/O hooks; invoked with mutex_ held. `blocks` is the in-order
  // block list of one record, `byte_length` its exact size (the last block
  // is partial). The per-block hooks are the portable floor; the batched
  // hooks default to looping over them through a staging buffer and are
  // overridden by backends that can do better (arena direct-fill, batched
  // file submission).
  virtual Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) = 0;
  virtual Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) = 0;

  virtual Status WriteBlocksBatch(std::span<const BlockId> blocks, std::uint64_t byte_length,
                                  PayloadSource& source) CA_REQUIRES(mutex_);
  virtual Status ReadBlocksBatch(std::span<const BlockId> blocks, std::span<std::uint8_t> out)
      CA_REQUIRES(mutex_);
  virtual Status ReadBlocksStream(std::span<const BlockId> blocks, std::uint64_t byte_length,
                                  PayloadSink& sink) CA_REQUIRES(mutex_);

  // Rejects extents whose shape is inconsistent with the pool (kInternal).
  Status ValidateExtent(const BlockExtent& extent) const CA_REQUIRES(mutex_);

  mutable Mutex mutex_{"store.PooledBlockStorage"};
  BlockAllocator allocator_ CA_GUARDED_BY(mutex_);
  // Staging buffer for the default batched-hook implementations (one block)
  // and for file-backed streaming reads (whole extent); grown on demand.
  std::vector<std::uint8_t> scratch_ CA_GUARDED_BY(mutex_);
  // Medium label on io.write/io.read trace spans; concrete backends override
  // at construction (immutable afterwards).
  const char* trace_medium_ = "mem";  // unguarded: set at construction only
};

class MemoryBlockStorage final : public PooledBlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) override;
  // Zero-copy overrides: the source fills / the sink reads arena memory
  // directly, block by block.
  Status WriteBlocksBatch(std::span<const BlockId> blocks, std::uint64_t byte_length,
                          PayloadSource& source) CA_REQUIRES(mutex_) override;
  Status ReadBlocksStream(std::span<const BlockId> blocks, std::uint64_t byte_length,
                          PayloadSink& sink) CA_REQUIRES(mutex_) override;

 private:
  std::uint8_t* BlockPtr(BlockId block) CA_REQUIRES(mutex_) {
    return arena_.data() + static_cast<std::uint64_t>(block) * allocator_.block_bytes();
  }

  std::vector<std::uint8_t> arena_ CA_GUARDED_BY(mutex_);
};

// Disk submission strategy for FileBlockStorage.
enum class DiskIoMode : std::uint8_t {
  kAuto = 0,     // io_uring if the kernel allows it, else batched
  kUring = 1,    // io_uring submission queue (falls back to batched if unavailable)
  kBatched = 2,  // pwritev/preadv, one syscall per contiguous block run
  kSync = 3,     // per-block pread/pwrite (the PR3 behaviour; A/B baseline)
};

struct DiskIoOptions {
  DiskIoMode mode = DiskIoMode::kAuto;
  // Open the backing file O_DIRECT and pad tail writes to the 4 KiB DMA
  // granule. Requires 4 KiB-aligned block_bytes; silently falls back to
  // buffered I/O on filesystems that reject O_DIRECT (e.g. tmpfs).
  bool direct_io = false;

  // --- durability (DESIGN.md §15) ---------------------------------------
  // Keep the backing file on destruction and stamp a versioned superblock
  // into a 4 KiB header region ahead of block 0 (all block offsets shift by
  // that region). Ephemeral stores (the default) stay headerless and are
  // unlinked in the destructor, exactly as before.
  bool persist = false;
  // Open an existing backing file instead of truncating. The superblock
  // must match (magic, format version, block_bytes, store_id) or Open fails
  // with kFailedPrecondition. Requires persist.
  bool reuse_existing = false;
  // Identity stamped into a fresh superblock / required of a reused one
  // (pairs the payload file with its metadata journal).
  std::uint64_t store_id = 0;

  // --- crash schedule (tests; DESIGN.md §15) ----------------------------
  // With a switch attached: once frozen, writes are swallowed before they
  // reach the file (the in-memory allocator and record table stay coherent
  // — recovery reconciles). When crash_after_block_writes = N > 0, the
  // batched write containing device-block write #N lands torn at that block
  // boundary and then freezes the switch.
  std::shared_ptr<CrashSwitch> crash;
  std::uint64_t crash_after_block_writes = 0;
};

class UringQueue;  // raw-syscall io_uring wrapper (uring_io.h)

class FileBlockStorage final : public PooledBlockStorage {
 public:
  // Creates/truncates `path` (or re-opens it when io.persist &&
  // io.reuse_existing). Fails with kIoError if the file cannot be opened —
  // callers (AttentionStore) disable the tier instead of crashing — and
  // with kFailedPrecondition when a reused superblock disagrees with the
  // requested identity (wrong format version, block size, or store id).
  static Result<std::unique_ptr<FileBlockStorage>> Open(std::string path,
                                                        std::uint64_t capacity_bytes,
                                                        std::uint64_t block_bytes,
                                                        DiskIoOptions io = {});
  ~FileBlockStorage() override;

  const std::string& path() const { return path_; }
  // Submission strategy actually in effect after probing (kAuto and kUring
  // resolve to kBatched when io_uring is unavailable).
  DiskIoMode io_mode() const { return io_mode_; }
  bool direct_io() const { return direct_io_; }
  bool persist() const { return persist_; }
  std::uint64_t store_id() const { return store_id_; }

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) override;
  Status WriteBlocksBatch(std::span<const BlockId> blocks, std::uint64_t byte_length,
                          PayloadSource& source) CA_REQUIRES(mutex_) override;
  Status ReadBlocksBatch(std::span<const BlockId> blocks, std::span<std::uint8_t> out)
      CA_REQUIRES(mutex_) override;

 private:
  FileBlockStorage(std::string path, int fd, std::uint64_t capacity_bytes,
                   std::uint64_t block_bytes, DiskIoMode mode, bool direct,
                   std::unique_ptr<UringQueue> uring, const DiskIoOptions& io);

  // Grows the O_DIRECT-aligned staging buffer to at least `bytes`.
  Status EnsureAligned(std::uint64_t bytes) CA_REQUIRES(mutex_);

  // Issues one batched submission (all contiguous block runs of one extent)
  // through the active backend. `is_write` selects direction; the buffer is
  // aligned_ for writes and `out` (or aligned_ under O_DIRECT) for reads.
  Status SubmitRuns(std::span<const BlockId> blocks, std::span<std::uint8_t> buffer,
                    bool is_write) CA_REQUIRES(mutex_);

  const std::string path_;          // immutable after construction
  const int fd_;                    // immutable after construction
  const bool direct_io_;            // immutable after construction
  const bool persist_;              // immutable after construction
  const std::uint64_t data_offset_; // immutable: superblock region (0 when ephemeral)
  const std::uint64_t store_id_;    // immutable after construction
  DiskIoMode io_mode_;      // unguarded: set at construction / first failed probe only
  std::unique_ptr<UringQueue> uring_ CA_GUARDED_BY(mutex_);

  // Crash schedule (tests; see DiskIoOptions). The switch itself is atomic;
  // the write counter is only touched under mutex_.
  const std::shared_ptr<CrashSwitch> crash_;  // immutable after construction
  const std::uint64_t crash_after_block_writes_;  // immutable after construction
  std::uint64_t crash_blocks_written_ CA_GUARDED_BY(mutex_) = 0;

  // 4 KiB-aligned staging area for batched writes (and O_DIRECT reads).
  struct AlignedDeleter {
    void operator()(std::uint8_t* p) const;
  };
  std::unique_ptr<std::uint8_t[], AlignedDeleter> aligned_ CA_GUARDED_BY(mutex_);
  std::uint64_t aligned_bytes_ CA_GUARDED_BY(mutex_) = 0;
};

}  // namespace ca

#endif  // CA_STORE_BLOCK_STORAGE_H_
