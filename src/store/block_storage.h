// Block-granular payload storage for one tier.
//
// BlockStorage is the abstract interface AttentionStore drives: write a
// record's bytes across fixed-size blocks, read them back given the block
// list, free the blocks. Implementations:
//  * PooledBlockStorage — the common allocator-backed base; block I/O is a
//    pair of protected hooks.
//  * MemoryBlockStorage — heap arena (the DRAM / HBM tiers).
//  * FileBlockStorage — one backing file with pread/pwrite at block offsets
//    (the disk tier of the real-execution path). Opened through a fallible
//    factory (a missing backing file disables the tier, it never aborts the
//    process); the file is unlinked in the destructor.
//  * FaultInjectingBlockStorage (fault_injection.h) — decorator that injects
//    deterministic I/O faults for tests and the store hammer.
//
// The simulator never attaches payload storage (capacity accounting only);
// the real-execution engine always does.
//
// Failure contract: Write/Read return Status for everything a caller can
// degrade gracefully — device errors (kIoError), transient unavailability
// (kUnavailable), malformed extents from corrupted metadata (kInternal) and
// pool exhaustion (kResourceExhausted). The KV cache is soft state, so
// AttentionStore turns any of these into a cache miss (DESIGN.md §10);
// aborting is reserved for in-process invariant violations.
//
// Thread safety: Write/Read/Free/UsedBlocks are individually thread-safe
// (one internal mutex serializes the allocator and the block I/O), so the
// asynchronous KV-save stream and IO threads may share one storage. Callers
// still coordinate *which* extents they touch: freeing an extent another
// thread is reading is a logic error the mutex cannot catch.
#ifndef CA_STORE_BLOCK_STORAGE_H_
#define CA_STORE_BLOCK_STORAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/store/block_allocator.h"

namespace ca {

// The blocks holding one record plus its exact byte length (the last block
// is generally partially filled).
struct BlockExtent {
  std::vector<BlockId> blocks;
  std::uint64_t byte_length = 0;

  bool empty() const { return blocks.empty(); }
};

class BlockStorage {
 public:
  BlockStorage() = default;
  virtual ~BlockStorage() = default;

  BlockStorage(const BlockStorage&) = delete;
  BlockStorage& operator=(const BlockStorage&) = delete;

  // Allocates blocks and writes `bytes` into them.
  virtual Result<BlockExtent> Write(std::span<const std::uint8_t> bytes) = 0;

  // Reads a record back. A malformed extent (block count inconsistent with
  // byte_length, or out-of-range block ids) yields kInternal, not an abort:
  // corrupted record metadata must be handleable as a miss.
  virtual Result<std::vector<std::uint8_t>> Read(const BlockExtent& extent) = 0;

  // Releases a record's blocks. Pure metadata: never touches the device, so
  // it stays safe on a failed tier.
  virtual void Free(BlockExtent& extent) = 0;

  // Currently allocated block count (the invariant auditor cross-checks
  // this against the live records' extents).
  virtual std::uint64_t UsedBlocks() const = 0;

  virtual std::uint64_t block_bytes() const = 0;
};

// Allocator-backed storage base: owns the block pool and serializes all
// operations behind one mutex; concrete backends supply the block I/O.
class PooledBlockStorage : public BlockStorage {
 public:
  PooledBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
      : allocator_(capacity_bytes, block_bytes) {}

  Result<BlockExtent> Write(std::span<const std::uint8_t> bytes) override CA_EXCLUDES(mutex_);
  Result<std::vector<std::uint8_t>> Read(const BlockExtent& extent) override CA_EXCLUDES(mutex_);
  void Free(BlockExtent& extent) override CA_EXCLUDES(mutex_);
  std::uint64_t UsedBlocks() const override CA_EXCLUDES(mutex_);
  std::uint64_t block_bytes() const override CA_EXCLUDES(mutex_);

 protected:
  // Block I/O hooks; invoked with mutex_ held.
  virtual Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) = 0;
  virtual Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) = 0;

  mutable Mutex mutex_{"store.PooledBlockStorage"};
  BlockAllocator allocator_ CA_GUARDED_BY(mutex_);
  // Medium label on io.write/io.read trace spans; concrete backends override
  // at construction (immutable afterwards).
  const char* trace_medium_ = "mem";  // unguarded: set at construction only
};

class MemoryBlockStorage final : public PooledBlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) override;

 private:
  std::vector<std::uint8_t> arena_ CA_GUARDED_BY(mutex_);
};

class FileBlockStorage final : public PooledBlockStorage {
 public:
  // Creates/truncates `path`. Fails with kIoError if the file cannot be
  // opened — callers (AttentionStore) disable the tier instead of crashing.
  static Result<std::unique_ptr<FileBlockStorage>> Open(std::string path,
                                                        std::uint64_t capacity_bytes,
                                                        std::uint64_t block_bytes);
  ~FileBlockStorage() override;

  const std::string& path() const { return path_; }

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data)
      CA_REQUIRES(mutex_) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) CA_REQUIRES(mutex_) override;

 private:
  FileBlockStorage(std::string path, int fd, std::uint64_t capacity_bytes,
                   std::uint64_t block_bytes);

  const std::string path_;  // immutable after construction
  const int fd_;            // immutable after construction
};

}  // namespace ca

#endif  // CA_STORE_BLOCK_STORAGE_H_
