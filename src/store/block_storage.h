// Block-granular payload storage for one tier.
//
// A BlockStorage writes a record's bytes across fixed-size blocks and reads
// them back given the block list. Two implementations:
//  * MemoryBlockStorage — heap arena (the DRAM / HBM tiers).
//  * FileBlockStorage — one backing file with pread/pwrite at block offsets
//    (the disk tier of the real-execution path).
//
// The simulator never attaches payload storage (capacity accounting only);
// the real-execution engine always does.
#ifndef CA_STORE_BLOCK_STORAGE_H_
#define CA_STORE_BLOCK_STORAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/store/block_allocator.h"

namespace ca {

// The blocks holding one record plus its exact byte length (the last block
// is generally partially filled).
struct BlockExtent {
  std::vector<BlockId> blocks;
  std::uint64_t byte_length = 0;

  bool empty() const { return blocks.empty(); }
};

class BlockStorage {
 public:
  explicit BlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
      : allocator_(capacity_bytes, block_bytes) {}
  virtual ~BlockStorage() = default;

  BlockStorage(const BlockStorage&) = delete;
  BlockStorage& operator=(const BlockStorage&) = delete;

  const BlockAllocator& allocator() const { return allocator_; }

  // Allocates blocks and writes `bytes` into them.
  Result<BlockExtent> Write(std::span<const std::uint8_t> bytes);

  // Reads a record back.
  Result<std::vector<std::uint8_t>> Read(const BlockExtent& extent);

  // Releases a record's blocks.
  void Free(BlockExtent& extent);

 protected:
  virtual Status WriteBlock(BlockId block, std::span<const std::uint8_t> data) = 0;
  virtual Status ReadBlock(BlockId block, std::span<std::uint8_t> out) = 0;

  BlockAllocator allocator_;
};

class MemoryBlockStorage final : public BlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes);

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) override;

 private:
  std::vector<std::uint8_t> arena_;
};

class FileBlockStorage final : public BlockStorage {
 public:
  // Creates/truncates `path`. Aborts if the file cannot be opened.
  FileBlockStorage(std::string path, std::uint64_t capacity_bytes, std::uint64_t block_bytes);
  ~FileBlockStorage() override;

  const std::string& path() const { return path_; }

 protected:
  Status WriteBlock(BlockId block, std::span<const std::uint8_t> data) override;
  Status ReadBlock(BlockId block, std::span<std::uint8_t> out) override;

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace ca

#endif  // CA_STORE_BLOCK_STORAGE_H_
