// Eviction policies for AttentionStore (§3.3.2).
//
// The scheduler-aware policy uses the job queue's look-ahead window: sessions
// with no visible future use are preferred victims (LRU among them as a
// tie-break); if every candidate has a queued job, the one whose next use is
// furthest away (the window tail) is chosen — Belady's rule restricted to
// the visible queue. LRU and FIFO are the paper's baselines.
#ifndef CA_STORE_EVICTION_POLICY_H_
#define CA_STORE_EVICTION_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "src/common/units.h"
#include "src/store/types.h"

namespace ca {

// Per-candidate metadata a policy may consult.
struct VictimView {
  SessionId session = kInvalidSession;
  SimTime last_access = 0;
  std::uint64_t insert_seq = 0;  // monotonically increasing insertion counter
  std::uint64_t bytes = 0;
  // Prefix sharing (DESIGN.md §17): number of session block tables
  // referencing this candidate. 0 for ordinary session records; > 0 marks a
  // shared chunk, whose eviction costs every referrer a future miss — its
  // eviction priority should scale with 1/shared_refs.
  std::uint32_t shared_refs = 0;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual std::string_view name() const = 0;

  // Picks a victim among `candidates` (non-empty). Returns nullopt only if
  // the policy declines every candidate (scheduler-aware policy never
  // declines; the exemption rule is expressed as preference ordering, since
  // when the whole window is resident *something* must still go — the paper
  // evicts the tail item in that case).
  virtual std::optional<SessionId> PickVictim(std::span<const VictimView> candidates,
                                              const SchedulerHints& hints) = 0;
};

class LruPolicy final : public EvictionPolicy {
 public:
  std::string_view name() const override { return "LRU"; }
  std::optional<SessionId> PickVictim(std::span<const VictimView> candidates,
                                      const SchedulerHints& hints) override;
};

class FifoPolicy final : public EvictionPolicy {
 public:
  std::string_view name() const override { return "FIFO"; }
  std::optional<SessionId> PickVictim(std::span<const VictimView> candidates,
                                      const SchedulerHints& hints) override;
};

class SchedulerAwarePolicy final : public EvictionPolicy {
 public:
  std::string_view name() const override { return "scheduler-aware"; }
  std::optional<SessionId> PickVictim(std::span<const VictimView> candidates,
                                      const SchedulerHints& hints) override;
};

// Sharing-aware refinement (DESIGN.md §17): evicting a chunk referenced by
// k sessions turns into k future misses, so candidates are ordered by
// (shared_refs, last_access) — unshared LRU victims first, then the chunk
// with the fewest referrers (eviction cost ∝ 1/refcount: cheap blocks go
// first, heavily shared blocks are the most valuable bytes in the tier).
class DedupAwarePolicy final : public EvictionPolicy {
 public:
  std::string_view name() const override { return "dedup-aware"; }
  std::optional<SessionId> PickVictim(std::span<const VictimView> candidates,
                                      const SchedulerHints& hints) override;
};

// Factory by name ("lru", "fifo", "scheduler-aware", "dedup-aware").
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(std::string_view name);

}  // namespace ca

#endif  // CA_STORE_EVICTION_POLICY_H_
