// AttentionStore: the hierarchical KV caching system of the paper (§3.3).
//
// Records are kept at *session granularity* ("one item corresponds to all KV
// caches associated with a conversation session, which is the minimal
// eviction and fetching granularity"). Three tiers — HBM (usually disabled;
// enabled only to reproduce the HBM-only baseline of §4.3.7), DRAM and disk
// — each a block-granular pool. Placement prefers the fastest enabled tier;
// making room demotes victims down the hierarchy (chosen by the configured
// EvictionPolicy, consulting scheduler hints) and finally evicts records out
// of the system.
//
// The store moves *metadata* instantaneously; actual byte movement is either
// performed eagerly through the attached BlockStorages (real-execution mode)
// or modelled by the discrete-event simulator, which charges transfer time
// before invoking the corresponding store mutation.
#ifndef CA_STORE_ATTENTION_STORE_H_
#define CA_STORE_ATTENTION_STORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/store/block_storage.h"
#include "src/store/eviction_policy.h"
#include "src/store/fault_injection.h"
#include "src/store/meta_store.h"
#include "src/store/types.h"

namespace ca {

struct StoreConfig {
  // Tier capacities. Zero disables a tier. Paper default: no HBM cache tier,
  // 128 GiB DRAM, 10 TiB disk.
  std::uint64_t hbm_capacity = 0;
  std::uint64_t dram_capacity = GiB(128);
  std::uint64_t disk_capacity = TiB(10);

  // Block size of the internal storage allocator.
  std::uint64_t block_bytes = MiB(4);

  // DRAM free-space buffer kept available for seamless disk→DRAM fetching
  // (§3.3.1). When free DRAM drops below this, MaintainDramBuffer demotes
  // records until the buffer is restored.
  std::uint64_t dram_buffer = 0;

  // Time-to-live since last access (§4.3.6). Zero disables expiration.
  SimTime ttl = 0;

  // Eviction policy: "scheduler-aware" (CachedAttention), "lru" or "fifo".
  std::string eviction_policy = "scheduler-aware";

  // When true, tiers get real payload storage (DRAM/HBM in memory, disk in
  // a backing file under disk_path) and Put/ReadPayload move actual bytes.
  // An empty disk_path expands to a process-unique temp path
  // (/tmp/ca_attention_store.<pid>.<seq>.blocks) so concurrent processes —
  // e.g. parallel ctest shards — never collide on one backing file; the
  // resolved path is visible through AttentionStore::config().
  bool real_payloads = false;
  std::string disk_path;

  // When true, CheckInvariants() runs after every mutating operation, so
  // accounting drift aborts at the mutation that introduced it instead of
  // corrupting cached attention states silently. Meant for tests and
  // debugging; each audit is O(records).
  bool audit = false;

  // --- fault tolerance (DESIGN.md §10) --------------------------------

  // Bounded retry for transient (kUnavailable) tier I/O errors. Each failed
  // attempt sleeps io_retry_backoff_us, doubling per retry; permanent
  // errors (kIoError/kInternal/kDataLoss) are never retried.
  std::uint32_t io_retries = 3;
  std::uint64_t io_retry_backoff_us = 50;

  // Consecutive *permanent* I/O failures after which a tier is quarantined:
  // it leaves placement, its records are dropped (future misses), and the
  // store keeps serving from the remaining tiers.
  std::uint32_t quarantine_after = 3;

  // Per-tier fault injection (tests and the store hammer). Only meaningful
  // with real_payloads; an all-zero config injects nothing.
  FaultConfig hbm_fault;
  FaultConfig dram_fault;
  FaultConfig disk_fault;

  // --- I/O path tuning (DESIGN.md §14) --------------------------------

  // Per-extent payload checksums (chunked parallel hash, computed while the
  // bytes stream through the write path). Off skips both the write-side
  // stamp and the read-side verification — benchmark axis, not for prod.
  bool verify_checksums = true;

  // Disk-tier submission strategy and O_DIRECT staging (real_payloads only).
  DiskIoMode disk_io_mode = DiskIoMode::kAuto;
  bool disk_direct_io = false;

  // --- durability (DESIGN.md §15) -------------------------------------

  // Journaled metadata + persistent disk tier: AttentionStore::Open() can
  // rebuild the warm disk tier after an unclean process death. Requires
  // real_payloads and an explicit, stable disk_path (the auto-unique
  // default cannot be re-found after a restart). Durable stores are
  // constructed through AttentionStore::Open, never the constructor.
  bool durable = false;

  // Journal fsync policy. The in-process kill-restart tests pass under
  // kNone (the page cache survives the simulated SIGKILL); power-loss
  // durability needs kEveryN/kAlways.
  MetaFsyncPolicy meta_fsync = MetaFsyncPolicy::kNone;
  std::uint32_t meta_fsync_every_n = 64;

  // Journal size that triggers compaction into a fresh snapshot.
  std::uint64_t meta_compact_threshold = MiB(1);

  // Verify every recovered record's payload checksum during Open (one full
  // read of the warm tier). Off, verification happens lazily on first read,
  // which catches the same corruption one access later.
  bool recover_verify_payloads = false;

  // Crash schedules (tests): the journal's fault points, plus the payload
  // device's fail-after-N block-write schedule (shares meta_fault.crash).
  MetaFaultConfig meta_fault;
  std::uint64_t disk_crash_after_block_writes = 0;

  // --- cross-session prefix sharing (DESIGN.md §17) --------------------

  // When true, PutShared is available: payloads are split at token-chunk
  // boundaries, deduplicated across sessions through a prefix index of
  // refcounted shared chunk records, and sessions keep only a block table
  // plus their private tail. Requires real_payloads.
  bool share_prefixes = false;

  // Tokens per shared chunk. Smaller chunks dedup finer but cost more
  // index probes and per-chunk extents.
  std::uint32_t share_chunk_tokens = 64;

  // Bugfix knob (durable mode): journal a coarse last_access checkpoint
  // every Nth Access of a record so post-recovery LRU order reflects real
  // recency instead of being arbitrary. 0 disables access journaling.
  std::uint32_t access_journal_every_n = 16;
};

// Public view of one record.
struct KvRecordInfo {
  SessionId session = kInvalidSession;
  Tier tier = Tier::kNone;
  std::uint64_t bytes = 0;        // bytes stored in the session's own record
  std::uint64_t token_count = 0;  // full logical token count
  SimTime last_access = 0;
  // Prefix sharing (DESIGN.md §17): true when the record was stored via
  // PutShared (token-major payload, possibly split across shared chunks).
  bool shared = false;
  // Full logical payload size: shared-chunk bytes + the record's own bytes.
  // Equals `bytes` for private records.
  std::uint64_t payload_bytes = 0;
};

// Random-access payload source for PutShared (DESIGN.md §17): the store
// pulls byte ranges aligned to token boundaries, and — crucially — skips
// ranges entirely when the prefix index already holds their chunk, so a
// dedup hit costs an index probe instead of serialization + I/O. Range()
// returns a cursor valid until the next Range() call; the store may Reset
// and replay it (write-retry loop).
class ChunkedPayloadSource {
 public:
  virtual ~ChunkedPayloadSource() = default;
  virtual std::uint64_t total_tokens() const = 0;
  virtual std::uint64_t bytes_per_token() const = 0;
  virtual PayloadSource& Range(std::uint64_t token_begin, std::uint64_t token_end) = 0;
};

// ChunkedPayloadSource over a contiguous token-major buffer (async saves,
// tests, benches).
class SpanChunkSource final : public ChunkedPayloadSource {
 public:
  SpanChunkSource(std::span<const std::uint8_t> bytes, std::uint64_t bytes_per_token)
      : bytes_(bytes), bytes_per_token_(bytes_per_token), range_(bytes) {}

  std::uint64_t total_tokens() const override { return bytes_.size() / bytes_per_token_; }
  std::uint64_t bytes_per_token() const override { return bytes_per_token_; }
  PayloadSource& Range(std::uint64_t token_begin, std::uint64_t token_end) override {
    range_ = SpanSource(bytes_.subspan(token_begin * bytes_per_token_,
                                       (token_end - token_begin) * bytes_per_token_));
    return range_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::uint64_t bytes_per_token_ = 0;
  SpanSource range_;
};

// A self-contained, transport-ready snapshot of one record for cross-store
// migration (AnyCache's ExportBlock/ImportBlock idiom; DESIGN.md §16): the
// verified payload bytes, the caller's user-meta blob, and enough metadata
// for the importing store to re-verify and re-place the record. The struct
// deliberately references nothing inside either store, so it can later be
// serialized onto a wire unchanged.
struct ExportedRecord {
  SessionId session = kInvalidSession;
  std::uint64_t bytes = 0;        // logical payload size (== payload.size() in real mode)
  std::uint64_t token_count = 0;
  std::uint64_t checksum = 0;     // Checksum64 of payload; 0 when checksums are off
  SimTime last_access = 0;
  std::vector<std::uint8_t> payload;    // empty on capacity-only stores
  std::vector<std::uint8_t> user_meta;  // opaque caller blob (serialized token history)
  // Prefix sharing (DESIGN.md §17): true when the payload is token-major
  // (stored via PutShared). Export materializes shared records into this
  // self-contained form (chunks + tail concatenated); import re-creates a
  // private record but preserves the format flag so the engine's load path
  // still parses the bytes correctly.
  bool shared_format = false;
};

class AttentionStore {
 public:
  // Direct construction is for non-durable configs only (aborts otherwise):
  // a durable open can fail (journal/payload mismatch) and must be able to
  // report it, which a constructor cannot.
  explicit AttentionStore(StoreConfig config);

  // Fallible factory. Non-durable configs behave exactly like the
  // constructor. Durable configs open (or create) the journal and payload
  // files under disk_path, replay the journal, reconcile every recovered
  // record against the on-disk extents, and serve the survivors as disk
  // hits (DESIGN.md §15). Fails with kInvalidArgument on an unusable
  // durable config, kFailedPrecondition when journal and payload disagree
  // (version, block size, store id), kIoError when the files are unusable.
  static Result<AttentionStore> Open(StoreConfig config);

  const StoreConfig& config() const { return config_; }
  const StoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StoreStats{}; }
  std::string_view policy_name() const { return policy_->name(); }

  // --- Lookup ---------------------------------------------------------------

  // Tier currently holding the session's KV (kNone if absent). Does not
  // count towards hit statistics.
  Tier Lookup(SessionId session) const;

  std::optional<KvRecordInfo> GetInfo(SessionId session) const;

  // Inference-time access: counts one lookup, a hit in the record's tier or
  // a miss. Refreshes last_access on hit.
  std::optional<KvRecordInfo> Access(SessionId session, SimTime now);

  // --- Write path -----------------------------------------------------------

  // Saves (or updates) a session's KV cache of `bytes` bytes covering
  // `token_count` tokens. Placement prefers the fastest enabled tier; makes
  // room via policy-driven demotion/eviction. If the record fits nowhere it
  // is dropped and kResourceExhausted is returned.
  //
  // `payload` must be non-empty iff real_payloads is configured.
  // `user_meta` is an opaque caller blob journaled with the record in
  // durable mode (the engine stores the serialized token history so
  // recovered sessions replay bitwise-identically); ignored otherwise.
  Status Put(SessionId session, std::uint64_t bytes, std::uint64_t token_count,
             std::span<const std::uint8_t> payload, SimTime now, const SchedulerHints& hints,
             std::span<const std::uint8_t> user_meta = {});

  // Zero-copy variant (real_payloads only): pulls the record's bytes from
  // `payload` straight into tier block memory; the checksum is folded in
  // per block while the bytes stream through (DESIGN.md §14). The source
  // may be consumed multiple times (Reset + replay) by the retry loop.
  Status Put(SessionId session, std::uint64_t token_count, PayloadSource& payload, SimTime now,
             const SchedulerHints& hints, std::span<const std::uint8_t> user_meta = {});

  // Prefix-sharing write path (DESIGN.md §17; requires config.share_prefixes
  // and real_payloads). `tokens` is the session's full token history (one
  // entry per payload token, bit-pattern of the engine's TokenId) and
  // `payload` its token-major KV bytes. The store walks the history in
  // share_chunk_tokens-sized chunks, matching each against the prefix index
  // (chain-keyed: a candidate matches only with identical parent chunk and
  // identical token contents, so a hit proves exact prefix equality):
  //  * hit  — the session references the existing chunk (refcount++), no
  //           bytes move;
  //  * miss — a new shared chunk record is written and indexed. A session
  //           that diverges mid-chunk simply stops matching there: only its
  //           divergent chunks are physically written (copy-on-write at
  //           save granularity).
  // The remainder past the last full chunk (always ≥ 1 token) is the
  // session's private tail, stored in its own record together with the
  // ordered chunk-reference table. Placement/eviction semantics per chunk
  // match Put; if the tail fits nowhere the session record is dropped
  // (kResourceExhausted) and freshly created chunks are released.
  Status PutShared(SessionId session, std::span<const std::uint32_t> tokens,
                   ChunkedPayloadSource& payload, SimTime now, const SchedulerHints& hints,
                   std::span<const std::uint8_t> user_meta = {});

  // Reads a record's payload (real-payload mode only), verifying its
  // checksum. Any failure is miss-equivalent for the caller: transient
  // exhaustion (kUnavailable) keeps the record for a later retry, while a
  // permanent error or checksum mismatch drops it so the miss is consistent
  // on every subsequent lookup.
  Result<std::vector<std::uint8_t>> ReadPayload(SessionId session);

  // Zero-copy variant: streams the payload into `sink` (memory tiers hand
  // over arena spans directly). The sink observes bytes BEFORE the checksum
  // verdict; on any non-OK return the caller must discard whatever the sink
  // built (the bytes may be torn). Failure semantics match ReadPayload.
  Status ReadPayloadInto(SessionId session, PayloadSink& sink);

  // --- Migration (DESIGN.md §16) ----------------------------------------

  // Snapshots a record for migration to another store: reads and verifies
  // the payload (real-payload mode; capacity-only stores export metadata
  // with an empty payload) and carries the user-meta blob alongside. The
  // record stays resident here — the export/import/remove sequence is the
  // caller's protocol, so the KV survives if either side fails. Read
  // failures propagate with ReadPayload's semantics (a permanent failure
  // drops the record, making the miss consistent).
  Result<ExportedRecord> ExportRecord(SessionId session);

  // Installs an exported record into this store as if Put had been called
  // with its payload and user_meta. Never overwrites: a resident record for
  // the same session returns kAlreadyExists (the router's re-pin protocol
  // guarantees a session lives in exactly one shard store at a time). In
  // real-payload mode the payload checksum is re-verified before any byte
  // is written — corruption in transit surfaces as kDataLoss, not as a
  // poisoned cache entry.
  Status ImportRecord(const ExportedRecord& record, SimTime now, const SchedulerHints& hints);

  // --- Placement management ---------------------------------------------

  // Moves a disk-resident record into DRAM (scheduler-aware fetching
  // executes these). Makes room in DRAM by demoting non-upcoming records.
  Status Promote(SessionId session, SimTime now, const SchedulerHints& hints);

  // Moves a DRAM-resident record to disk.
  Status Demote(SessionId session, SimTime now, const SchedulerHints& hints);

  // Demotes records until at least config.dram_buffer bytes of DRAM are
  // free (§3.3.1's host-memory buffer). Returns demoted count.
  std::size_t MaintainDramBuffer(SimTime now, const SchedulerHints& hints);

  // Drops a record entirely (e.g. session invalidated by coupled-PE
  // truncation in the OF baseline of §4.3.4).
  void Remove(SessionId session);

  // Expires records not accessed for config.ttl. Returns expired count.
  std::size_t ExpireTtl(SimTime now);

  // --- Introspection ----------------------------------------------------

  std::uint64_t UsedBytes(Tier tier) const;
  std::uint64_t FreeBytes(Tier tier) const;
  std::uint64_t CapacityBytes(Tier tier) const;
  // Session records only (shared chunk records are store-internal).
  std::size_t RecordCount() const { return records_.size() - chunks_.size(); }
  // Shared chunk records currently alive (0 without prefix sharing).
  std::size_t ChunkCount() const { return chunks_.size(); }
  std::vector<SessionId> SessionsInTier(Tier tier) const;
  TierHealth tier_health(Tier tier) const;

  // What the last durable Open recovered (all-zero for fresh/non-durable
  // stores). Also published as "store_recovery.*" gauges.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // The opaque blob retained with the session's record via Put(...,
  // user_meta) — null for unknown sessions. Retained in-record for every
  // store (durable stores additionally journal it so recovery can rebuild
  // it). The pointer is invalidated by any store mutation.
  const std::vector<std::uint8_t>* UserMeta(SessionId session) const;

  // Audits the store's internal consistency, aborting (CA_CHECK) on the
  // first violation. Checked invariants:
  //  * every record sits in an enabled tier, has bytes > 0, and its charged
  //    block_bytes equals its logical bytes rounded up to the block size;
  //  * per-tier used_bytes_ equals the sum of resident records' block
  //    charges and never exceeds the tier capacity;
  //  * with real payloads: every record owns a non-empty extent whose byte
  //    length matches the record and whose block count matches the block
  //    charge, and each tier's allocator has exactly the blocks of its
  //    resident records allocated (no leaks, no double-ownership);
  //  * without real payloads: no record owns an extent.
  //  * durable mode: the journal's live table mirrors records_ exactly —
  //    same sessions, and per record the same tier/bytes/token_count/
  //    insert_seq/checksum, with block lists matching for disk residents
  //    (last_access excluded: Access refreshes are journaled only as coarse
  //    checkpoints).
  //  * prefix sharing (DESIGN.md §17): chunk registry and chunk records are
  //    1:1; every chunk's refcount is > 0 and equals the number of session
  //    block tables referencing it (no block freed while referenced, no
  //    leak once the last referrer is gone); every block-table entry
  //    resolves to a live chunk; the prefix index holds each chunk exactly
  //    once under its chain key.
  // Runs automatically after every mutating operation when config.audit is
  // set.
  void CheckInvariants() const;

  // Test-only: injects accounting corruption so tests can prove the auditor
  // fires (see store_audit_test.cc). Never call outside tests.
  void CorruptUsedBytesForTesting(Tier tier, std::int64_t delta);

  // Republishes the cumulative StoreStats into the metrics registry as
  // "store_stats.*" gauges (DESIGN.md §11). The per-tier hit/miss counters
  // ("store.hits{tier=...}", "store.misses") are maintained live.
  void PublishMetrics(MetricsRegistry* registry = nullptr) const;

 private:
  struct KvRecord {
    SessionId session = kInvalidSession;
    Tier tier = Tier::kNone;
    std::uint64_t bytes = 0;         // payload bytes in THIS record's extent
    std::uint64_t block_bytes = 0;   // bytes charged against the tier (block-rounded)
    std::uint64_t token_count = 0;   // full logical tokens (chunk tokens for chunk records)
    SimTime last_access = 0;
    std::uint64_t insert_seq = 0;
    BlockExtent extent;              // valid iff real payloads attached
    std::uint64_t checksum = 0;      // Checksum64 of the payload (real mode)
    // Opaque caller blob, replaced on Put and carried through moves —
    // exactly the journal's keep/replace semantics, so durable stores can
    // cross-check the two and migration exports it without touching the
    // journal. For shared chunk records the store itself is the caller: it
    // holds the encoded chunk descriptor (chain key, parent, tokens).
    std::vector<std::uint8_t> user_meta;
    // Prefix sharing (DESIGN.md §17): true when stored via PutShared
    // (token-major payload). The block table: ordered shared-chunk record
    // ids whose payloads precede this record's own bytes. Journaled with
    // the record so recovery can rebuild tables and re-derive refcounts.
    bool shared_format = false;
    std::vector<SessionId> chunk_refs;
    // Access-journaling checkpoint counter (durable mode; not persisted).
    std::uint32_t accesses_since_journal = 0;
  };

  // Registry entry for one shared chunk record (the record itself lives in
  // records_ under a synthetic chunk SessionId). refcount is DERIVED state:
  // it equals the number of session block tables referencing the chunk, is
  // never journaled, and is recomputed from recovered tables on Open — so
  // recovery can neither double-free nor leak a shared chunk.
  struct SharedChunk {
    std::uint64_t key = 0;                // chain key (bucket in prefix_index_)
    SessionId parent = kInvalidSession;   // previous chunk in the chain, or none
    std::vector<std::uint32_t> tokens;    // exact token contents of this chunk
    std::uint32_t refcount = 0;
  };

  struct TierHealthState {
    TierHealth health = TierHealth::kHealthy;
    std::uint32_t consecutive_permanent = 0;
  };

  bool TierEnabled(Tier tier) const {
    return CapacityBytes(tier) > 0 &&
           tier_health_[static_cast<std::size_t>(tier)].health != TierHealth::kQuarantined;
  }
  // Enabled tiers in HBM→DRAM→disk order. Fixed-size value type: Put calls
  // this per placement attempt, so it must not heap-allocate.
  struct TierList {
    std::array<Tier, kNumTiers> tiers = {};
    std::size_t count = 0;

    const Tier* begin() const { return tiers.data(); }
    const Tier* end() const { return tiers.data() + count; }
    bool empty() const { return count == 0; }
  };
  TierList EnabledTiers() const;
  Tier NextSlowerTier(Tier tier) const;

  std::uint64_t RoundToBlocks(std::uint64_t bytes) const;

  // Frees `needed` bytes in `tier` by demoting/evicting victims (never
  // touching `exclude`). Returns false if impossible.
  bool EnsureRoom(Tier tier, std::uint64_t needed, SessionId exclude, SimTime now,
                  const SchedulerHints& hints);

  // Moves `record` to `target` tier (payloads copied if attached). `target`
  // may be kNone, meaning eviction out of the system (never fails).
  //
  // Transactional: on failure the record, its extent and all accounting are
  // unchanged — with ONE exception: when the source payload itself is
  // unrecoverable (permanent read failure or checksum mismatch), the record
  // is released to kNone (extent freed, accounting settled) and the caller
  // MUST erase the map entry. Callers detect that case by `record.tier ==
  // Tier::kNone` after a non-OK return.
  Status MoveRecord(KvRecord& record, Tier target);

  // Delegated ctor: defer_disk leaves the disk tier unattached so the
  // durable Open path can attach a persistent FileBlockStorage + journal
  // before any record exists.
  AttentionStore(StoreConfig config, bool defer_disk);

  // Durable-open plumbing (DESIGN.md §15): opens journal + persistent
  // payload file, then replays.
  Status OpenDurable();
  // Rebuilds records_ from the replayed journal: adopts each record's
  // extent in the payload allocator, optionally verifies payload checksums,
  // and drops anything that disagrees as a clean miss.
  Status RecoverFromJournal();

  // Journal hooks: mirror a record mutation into the MetaStore (no-ops on
  // non-durable stores). Append failures are logged and swallowed — journal
  // loss degrades the *next* recovery, it never blocks serving.
  void JournalUpsert(const KvRecord& record, std::span<const std::uint8_t> user_meta,
                     bool keep_existing_user_meta);
  void JournalErase(SessionId session);

  // Shared body of both Put overloads. `payload` is null without real
  // payloads attached and points at the caller's source otherwise.
  Status PutImpl(SessionId session, std::uint64_t bytes, std::uint64_t token_count,
                 PayloadSource* payload, SimTime now, const SchedulerHints& hints,
                 std::span<const std::uint8_t> user_meta);

  // Reads `record`'s payload from `storage` into `out` (exactly record.bytes
  // long) with bounded transient-retry and checksum verification; updates
  // tier health, fault stats and per-tier I/O throughput.
  Status ReadVerifiedInto(BlockStorage& storage, const KvRecord& record, Tier tier,
                          std::span<std::uint8_t> out);

  // Streaming flavour: the sink sees the bytes before the checksum verdict
  // (zero-copy single pass); a mismatch surfaces as kDataLoss afterwards.
  Status ReadVerifiedStream(BlockStorage& storage, const KvRecord& record, Tier tier,
                            PayloadSink& sink);

  // Writes the payload to `storage` with bounded transient-retry, folding
  // the checksum in as the bytes stream through; updates tier health, fault
  // stats and per-tier I/O throughput.
  struct WriteReceipt {
    BlockExtent extent;
    std::uint64_t checksum = 0;
  };
  Result<WriteReceipt> WriteWithRetry(BlockStorage& storage, PayloadSource& source, Tier tier);

  // Health-machine hooks: a clean op heals a degraded tier; a fault degrades
  // it and — after config.quarantine_after consecutive permanent faults —
  // marks it quarantined. Record-dropping is deferred to PurgeQuarantined()
  // so callers holding record references stay valid mid-mutation.
  void RecordTierSuccess(Tier tier);
  void RecordTierFault(Tier tier, const Status& status);
  void MarkQuarantined(Tier tier, const Status& cause);

  // Drops every record resident in a quarantined tier (allocator-only
  // frees; safe on a dead device). Runs before each mutation's MaybeAudit.
  void PurgeQuarantined();

  std::optional<SessionId> PickVictim(Tier tier, SessionId exclude, const SchedulerHints& hints);

  BlockStorage* Storage(Tier tier);
  const BlockStorage* Storage(Tier tier) const;

  void EraseRecord(SessionId session);

  // --- prefix sharing internals (DESIGN.md §17) ------------------------

  // Synthetic SessionId namespace for shared chunk records. Real sessions
  // never carry this bit (PutShared rejects them), so chunk records hide in
  // records_ without colliding and reuse placement/moves/journaling/
  // recovery unchanged.
  static constexpr SessionId kChunkSessionBit = SessionId{1} << 63;
  static bool IsChunkId(SessionId session) {
    return session != kInvalidSession && (session & kChunkSessionBit) != 0;
  }

  // refcount++ on a chunk; the inverse frees the chunk record the moment
  // the last referencing table goes away (stats_.chunks_freed).
  void RefChunk(SessionId chunk_id);
  void UnrefChunk(SessionId chunk_id);

  // Central release path for a session record: frees its extent, erases it
  // from records_ (+ journal), then drops its block-table references —
  // which may free now-unreferenced chunks. ALL session-record removals
  // funnel through here so a refcount can never be leaked.
  void DropRecord(SessionId session);

  // Evicting a shared chunk out of the system: every referencing session
  // becomes a consistent miss (dropped via DropRecord), which drives the
  // chunk's refcount to zero and frees it. Counts one eviction per dropped
  // referrer against `reason` (evictions_out or fault_evictions).
  void DropChunkReferrers(SessionId chunk_id, std::uint64_t StoreStats::* reason);

  // Places `bytes` of `source` into the fastest enabled tier that can make
  // room (the shared placement loop of PutImpl/PutShared). On success the
  // receipt's extent/checksum and the chosen tier are returned.
  struct Placement {
    Tier tier = Tier::kNone;
    BlockExtent extent;
    std::uint64_t checksum = 0;
  };
  Result<Placement> PlacePayload(std::uint64_t bytes, PayloadSource& source, SessionId exclude,
                                 SimTime now, const SchedulerHints& hints);

  // Reads one piece (a chunk record or the session's own tail) into `out`.
  // Wrapper over ReadVerifiedInto that resolves the record's storage.
  Status ReadPieceInto(const KvRecord& record, std::span<std::uint8_t> out);

  // Durable mode: journal a coarse last_access checkpoint every
  // config.access_journal_every_n accesses of a record (S1 bugfix — LRU
  // order would otherwise be arbitrary after recovery).
  void JournalAccessMaybe(KvRecord& record);

  // Post-replay pass of RecoverFromJournal: rebuilds the chunk registry and
  // prefix index from recovered chunk records, validates every session's
  // block table (a missing chunk drops the session as a clean miss),
  // re-derives refcounts from the surviving tables, and frees orphaned
  // zero-ref chunks.
  void RecoverSharedState();

  // Runs CheckInvariants() iff config_.audit is set; called on every
  // mutating-operation exit path.
  void MaybeAudit() const;

  StoreConfig config_;
  std::unique_ptr<EvictionPolicy> policy_;
  // Session records plus (with prefix sharing) hidden chunk records keyed
  // by their synthetic chunk ids.
  std::unordered_map<SessionId, KvRecord> records_;
  // Prefix sharing (DESIGN.md §17): chunk registry and the prefix index
  // (chain key -> candidate chunk ids; matches verified by parent identity
  // + token equality, so hash collisions cannot alias prefixes).
  std::unordered_map<SessionId, SharedChunk> chunks_;
  std::unordered_map<std::uint64_t, std::vector<SessionId>> prefix_index_;
  std::uint64_t next_chunk_id_ = 0;
  // Chunks referenced by an in-flight PutShared before the session's own
  // record exists; PickVictim must not offer them (their refcount can not
  // reach zero through referrer drops, so evicting one would stall
  // EnsureRoom).
  std::vector<SessionId> pinned_chunks_;
  std::array<std::uint64_t, kNumTiers> used_bytes_ = {0, 0, 0};
  std::array<std::unique_ptr<BlockStorage>, kNumTiers> storages_;  // null w/o payloads
  std::array<TierHealthState, kNumTiers> tier_health_ = {};
  bool quarantine_pending_ = false;  // set by MarkQuarantined, cleared by PurgeQuarantined
  std::uint64_t next_insert_seq_ = 0;
  StoreStats stats_;

  // Durable mode only (null otherwise). Mirrors records_: CheckInvariants
  // cross-checks the two (last_access excluded — Access refreshes are not
  // journaled, stale recency after recovery is acceptable).
  std::unique_ptr<MetaStore> meta_;
  RecoveryStats recovery_stats_;

  // Live registry handles, cached at construction (registration is a map
  // lookup; Access is the store's hottest read path).
  std::array<Counter*, kNumTiers> hit_counters_ = {nullptr, nullptr, nullptr};
  Counter* miss_counter_ = nullptr;
};

}  // namespace ca

#endif  // CA_STORE_ATTENTION_STORE_H_
