// Minimal raw-syscall io_uring wrapper for batched block I/O (DESIGN.md §14).
//
// The container toolchain ships the kernel UAPI header (<linux/io_uring.h>)
// but not liburing, so the ring is driven directly: io_uring_setup + two
// mmaps for the submission/completion rings, sqe fill, one io_uring_enter
// per batch with IORING_ENTER_GETEVENTS. One UringQueue serves one
// FileBlockStorage and is always called with that storage's mutex held, so
// it needs no internal synchronization.
//
// Availability is probed at construction: TryCreate returns nullptr when
// the kernel (or a seccomp policy — common in containers) refuses
// io_uring_setup, and FileBlockStorage falls back to pwritev/preadv
// batching. A failure *after* setup surfaces as kIoError through the normal
// Status channel so the store's retry/health machinery sees it; it is never
// CA_CHECKed.
#ifndef CA_STORE_URING_IO_H_
#define CA_STORE_URING_IO_H_

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <span>

#include "src/common/status.h"

namespace ca {

class UringQueue {
 public:
  // One batched transfer: readv/writev of `iov` at file offset `offset`.
  // The iovec array must stay alive until SubmitAndWait returns.
  struct Op {
    bool write = false;
    std::uint64_t offset = 0;
    const struct iovec* iov = nullptr;
    unsigned iov_count = 0;
    std::uint64_t expected_bytes = 0;  // completion must transfer exactly this
  };

  // nullptr when io_uring is unavailable (old kernel, seccomp, non-Linux).
  static std::unique_ptr<UringQueue> TryCreate(unsigned entries);

  ~UringQueue();
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  // Submits all ops against `fd` (splitting into ring-sized batches when
  // needed) and waits for every completion. Any failed or short completion
  // fails the whole call with kIoError — callers treat the extent transfer
  // as not-happened and may retry or fall back.
  Status SubmitAndWait(int fd, std::span<const Op> ops);

  unsigned depth() const { return sq_entries_; }

 private:
  UringQueue() = default;

  Status SubmitBatch(int fd, std::span<const Op> ops);

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;

  // Mapped ring state (byte base pointers + derived field pointers).
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;  // == sq_ring_ under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;
};

}  // namespace ca

#endif  // CA_STORE_URING_IO_H_
