#include "src/store/fault_injection.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace ca {

FaultInjectingBlockStorage::FaultInjectingBlockStorage(std::unique_ptr<BlockStorage> inner,
                                                       FaultConfig config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {
  CA_CHECK(inner_ != nullptr);
}

FaultInjectingBlockStorage::Outcome FaultInjectingBlockStorage::NextOutcome(
    bool is_read, std::uint64_t* corrupt_pos) {
  MutexLock lock(mutex_);
  std::uint64_t& ops = is_read ? stats_.reads : stats_.writes;
  ++ops;
  if (config_.crash != nullptr && config_.crash->frozen.load(std::memory_order_relaxed)) {
    // Post-crash: pass through without rolling faults (see FaultConfig::crash).
    *corrupt_pos = 0;
    return Outcome::kOk;
  }
  const std::uint64_t fail_after = is_read ? config_.fail_reads_after : config_.fail_writes_after;
  // The rng is consumed in a fixed per-op order (permanent, transient,
  // corrupt, position) regardless of which draw fires, so the fault stream
  // of op N never depends on the outcomes of ops before it.
  const bool permanent =
      rng_.NextBool(is_read ? config_.read_permanent_p : config_.write_permanent_p);
  const bool transient =
      rng_.NextBool(is_read ? config_.read_transient_p : config_.write_transient_p);
  const bool corrupt = rng_.NextBool(is_read ? config_.read_corrupt_p : config_.write_corrupt_p);
  *corrupt_pos = rng_.NextU64();
  if ((fail_after > 0 && ops >= fail_after) || permanent) {
    ++stats_.permanent_faults;
    return Outcome::kPermanent;
  }
  if (transient) {
    ++stats_.transient_faults;
    return Outcome::kTransient;
  }
  if (corrupt) {
    ++stats_.corruptions;
    return Outcome::kCorrupt;
  }
  return Outcome::kOk;
}

Result<BlockExtent> FaultInjectingBlockStorage::Write(std::span<const std::uint8_t> bytes) {
  std::uint64_t corrupt_pos = 0;
  switch (NextOutcome(/*is_read=*/false, &corrupt_pos)) {
    case Outcome::kPermanent:
      return IoError("injected permanent write fault");
    case Outcome::kTransient:
      return UnavailableError("injected transient write fault");
    case Outcome::kCorrupt: {
      if (bytes.empty()) {
        return inner_->Write(bytes);
      }
      // Torn write: the device acknowledges the write but one byte lands
      // damaged. Only a checksum on the read path can see this.
      std::vector<std::uint8_t> torn(bytes.begin(), bytes.end());
      torn[corrupt_pos % torn.size()] ^= 0xFF;
      return inner_->Write(torn);
    }
    case Outcome::kOk:
      break;
  }
  return inner_->Write(bytes);
}

namespace {

// Flips one byte of the stream as it passes from the producer to the device.
// Wrapping *outside* the store's hashing source means the recorded checksum
// covers the clean bytes while the device holds the damaged ones — exactly
// what a torn DMA write looks like to the read path.
class CorruptingSource final : public PayloadSource {
 public:
  CorruptingSource(PayloadSource& inner, std::uint64_t corrupt_pos)
      : inner_(inner), target_(inner.size() == 0 ? 0 : corrupt_pos % inner.size()) {}

  std::uint64_t size() const override { return inner_.size(); }
  void Reset() override {
    inner_.Reset();
    offset_ = 0;
  }
  void Fill(std::span<std::uint8_t> dest) override {
    inner_.Fill(dest);
    if (target_ >= offset_ && target_ < offset_ + dest.size()) {
      dest[target_ - offset_] ^= 0xFF;
    }
    offset_ += dest.size();
  }

 private:
  PayloadSource& inner_;
  const std::uint64_t target_;
  std::uint64_t offset_ = 0;
};

}  // namespace

Result<BlockExtent> FaultInjectingBlockStorage::WriteZeroCopy(PayloadSource& source) {
  std::uint64_t corrupt_pos = 0;
  switch (NextOutcome(/*is_read=*/false, &corrupt_pos)) {
    case Outcome::kPermanent:
      return IoError("injected permanent write fault");
    case Outcome::kTransient:
      return UnavailableError("injected transient write fault");
    case Outcome::kCorrupt: {
      if (source.size() == 0) {
        return inner_->WriteZeroCopy(source);
      }
      CorruptingSource torn(source, corrupt_pos);
      return inner_->WriteZeroCopy(torn);
    }
    case Outcome::kOk:
      break;
  }
  return inner_->WriteZeroCopy(source);
}

Result<std::vector<std::uint8_t>> FaultInjectingBlockStorage::Read(const BlockExtent& extent) {
  std::uint64_t corrupt_pos = 0;
  switch (NextOutcome(/*is_read=*/true, &corrupt_pos)) {
    case Outcome::kPermanent:
      return IoError("injected permanent read fault");
    case Outcome::kTransient:
      return UnavailableError("injected transient read fault");
    case Outcome::kCorrupt: {
      auto data = inner_->Read(extent);
      if (data.ok() && !data->empty()) {
        // Short read: everything from the fault position on is lost. Flip
        // the first lost byte too, so a zero-filled payload still differs.
        const std::size_t from = corrupt_pos % data->size();
        std::fill(data->begin() + static_cast<std::ptrdiff_t>(from), data->end(), 0);
        (*data)[from] ^= 0xFF;
      }
      return data;
    }
    case Outcome::kOk:
      break;
  }
  return inner_->Read(extent);
}

Status FaultInjectingBlockStorage::ReadInto(const BlockExtent& extent,
                                            std::span<std::uint8_t> out) {
  std::uint64_t corrupt_pos = 0;
  switch (NextOutcome(/*is_read=*/true, &corrupt_pos)) {
    case Outcome::kPermanent:
      return IoError("injected permanent read fault");
    case Outcome::kTransient:
      return UnavailableError("injected transient read fault");
    case Outcome::kCorrupt: {
      const Status s = inner_->ReadInto(extent, out);
      if (s.ok() && !out.empty()) {
        // Short read: everything from the fault position on is lost. Flip
        // the first lost byte too, so a zero-filled payload still differs.
        const std::size_t from = corrupt_pos % out.size();
        std::fill(out.begin() + static_cast<std::ptrdiff_t>(from), out.end(), 0);
        out[from] ^= 0xFF;
      }
      return s;
    }
    case Outcome::kOk:
      break;
  }
  return inner_->ReadInto(extent, out);
}

Status FaultInjectingBlockStorage::ReadZeroCopy(const BlockExtent& extent, PayloadSink& sink) {
  std::uint64_t corrupt_pos = 0;
  switch (NextOutcome(/*is_read=*/true, &corrupt_pos)) {
    case Outcome::kPermanent:
      return IoError("injected permanent read fault");
    case Outcome::kTransient:
      return UnavailableError("injected transient read fault");
    case Outcome::kCorrupt: {
      // Stage, damage, then stream: the sink must observe the same torn
      // bytes a direct consumer of the device would. Chunk granularity is
      // not part of the sink contract, so one whole-extent chunk is fine.
      std::vector<std::uint8_t> staged(extent.byte_length);
      CA_RETURN_IF_ERROR(inner_->ReadInto(extent, staged));
      if (!staged.empty()) {
        const std::size_t from = corrupt_pos % staged.size();
        std::fill(staged.begin() + static_cast<std::ptrdiff_t>(from), staged.end(), 0);
        staged[from] ^= 0xFF;
      }
      sink.Consume(staged);
      return Status::Ok();
    }
    case Outcome::kOk:
      break;
  }
  return inner_->ReadZeroCopy(extent, sink);
}

Status FaultInjectingBlockStorage::AdoptExtent(const BlockExtent& extent) {
  return inner_->AdoptExtent(extent);
}

void FaultInjectingBlockStorage::Free(BlockExtent& extent) { inner_->Free(extent); }

std::uint64_t FaultInjectingBlockStorage::UsedBlocks() const { return inner_->UsedBlocks(); }

std::uint64_t FaultInjectingBlockStorage::block_bytes() const { return inner_->block_bytes(); }

FaultInjectionStats FaultInjectingBlockStorage::fault_stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace ca
