#include "src/store/fault_injection.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace ca {

FaultInjectingBlockStorage::FaultInjectingBlockStorage(std::unique_ptr<BlockStorage> inner,
                                                       FaultConfig config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {
  CA_CHECK(inner_ != nullptr);
}

FaultInjectingBlockStorage::Outcome FaultInjectingBlockStorage::NextOutcome(
    bool is_read, std::uint64_t* corrupt_pos) {
  MutexLock lock(mutex_);
  std::uint64_t& ops = is_read ? stats_.reads : stats_.writes;
  ++ops;
  const std::uint64_t fail_after = is_read ? config_.fail_reads_after : config_.fail_writes_after;
  // The rng is consumed in a fixed per-op order (permanent, transient,
  // corrupt, position) regardless of which draw fires, so the fault stream
  // of op N never depends on the outcomes of ops before it.
  const bool permanent =
      rng_.NextBool(is_read ? config_.read_permanent_p : config_.write_permanent_p);
  const bool transient =
      rng_.NextBool(is_read ? config_.read_transient_p : config_.write_transient_p);
  const bool corrupt = rng_.NextBool(is_read ? config_.read_corrupt_p : config_.write_corrupt_p);
  *corrupt_pos = rng_.NextU64();
  if ((fail_after > 0 && ops >= fail_after) || permanent) {
    ++stats_.permanent_faults;
    return Outcome::kPermanent;
  }
  if (transient) {
    ++stats_.transient_faults;
    return Outcome::kTransient;
  }
  if (corrupt) {
    ++stats_.corruptions;
    return Outcome::kCorrupt;
  }
  return Outcome::kOk;
}

Result<BlockExtent> FaultInjectingBlockStorage::Write(std::span<const std::uint8_t> bytes) {
  std::uint64_t corrupt_pos = 0;
  switch (NextOutcome(/*is_read=*/false, &corrupt_pos)) {
    case Outcome::kPermanent:
      return IoError("injected permanent write fault");
    case Outcome::kTransient:
      return UnavailableError("injected transient write fault");
    case Outcome::kCorrupt: {
      if (bytes.empty()) {
        return inner_->Write(bytes);
      }
      // Torn write: the device acknowledges the write but one byte lands
      // damaged. Only a checksum on the read path can see this.
      std::vector<std::uint8_t> torn(bytes.begin(), bytes.end());
      torn[corrupt_pos % torn.size()] ^= 0xFF;
      return inner_->Write(torn);
    }
    case Outcome::kOk:
      break;
  }
  return inner_->Write(bytes);
}

Result<std::vector<std::uint8_t>> FaultInjectingBlockStorage::Read(const BlockExtent& extent) {
  std::uint64_t corrupt_pos = 0;
  switch (NextOutcome(/*is_read=*/true, &corrupt_pos)) {
    case Outcome::kPermanent:
      return IoError("injected permanent read fault");
    case Outcome::kTransient:
      return UnavailableError("injected transient read fault");
    case Outcome::kCorrupt: {
      auto data = inner_->Read(extent);
      if (data.ok() && !data->empty()) {
        // Short read: everything from the fault position on is lost. Flip
        // the first lost byte too, so a zero-filled payload still differs.
        const std::size_t from = corrupt_pos % data->size();
        std::fill(data->begin() + static_cast<std::ptrdiff_t>(from), data->end(), 0);
        (*data)[from] ^= 0xFF;
      }
      return data;
    }
    case Outcome::kOk:
      break;
  }
  return inner_->Read(extent);
}

void FaultInjectingBlockStorage::Free(BlockExtent& extent) { inner_->Free(extent); }

std::uint64_t FaultInjectingBlockStorage::UsedBlocks() const { return inner_->UsedBlocks(); }

std::uint64_t FaultInjectingBlockStorage::block_bytes() const { return inner_->block_bytes(); }

FaultInjectionStats FaultInjectingBlockStorage::fault_stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace ca
