#include "src/store/block_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace ca {

Result<BlockExtent> PooledBlockStorage::Write(std::span<const std::uint8_t> bytes) {
  CA_TRACE_SPAN("io.write", "medium", trace_medium_, "bytes", bytes.size());
  MutexLock lock(mutex_);
  const std::uint64_t n_blocks = allocator_.BlocksFor(bytes.size());
  CA_ASSIGN_OR_RETURN(std::vector<BlockId> blocks, allocator_.Allocate(n_blocks));
  const std::uint64_t block_bytes = allocator_.block_bytes();
  std::uint64_t off = 0;
  for (const BlockId block : blocks) {
    const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, bytes.size() - off);
    const Status s = WriteBlock(block, bytes.subspan(off, chunk));
    if (!s.ok()) {
      allocator_.Free(blocks);
      return s;
    }
    off += chunk;
  }
  return BlockExtent{.blocks = std::move(blocks), .byte_length = bytes.size()};
}

Result<std::vector<std::uint8_t>> PooledBlockStorage::Read(const BlockExtent& extent) {
  CA_TRACE_SPAN("io.read", "medium", trace_medium_, "bytes", extent.byte_length);
  MutexLock lock(mutex_);
  // A corrupted record can hand us an extent whose shape no longer matches
  // its byte length; that must surface as a handleable error (the store
  // degrades it to a miss), never as an abort or an out-of-bounds block read.
  if (allocator_.BlocksFor(extent.byte_length) != extent.blocks.size()) {
    return InternalError("malformed extent: " + std::to_string(extent.blocks.size()) +
                         " blocks cannot hold " + std::to_string(extent.byte_length) + " bytes");
  }
  for (const BlockId block : extent.blocks) {
    if (block >= allocator_.total_blocks()) {
      return InternalError("malformed extent: block " + std::to_string(block) +
                           " out of range (pool has " +
                           std::to_string(allocator_.total_blocks()) + ")");
    }
  }
  std::vector<std::uint8_t> out(extent.byte_length);
  const std::uint64_t block_bytes = allocator_.block_bytes();
  std::uint64_t off = 0;
  for (const BlockId block : extent.blocks) {
    const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, extent.byte_length - off);
    CA_RETURN_IF_ERROR(ReadBlock(block, std::span<std::uint8_t>(out).subspan(off, chunk)));
    off += chunk;
  }
  if (off != extent.byte_length) {
    return InternalError("malformed extent: read " + std::to_string(off) + " of " +
                         std::to_string(extent.byte_length) + " bytes");
  }
  return out;
}

void PooledBlockStorage::Free(BlockExtent& extent) {
  MutexLock lock(mutex_);
  allocator_.Free(extent.blocks);
  extent.blocks.clear();
  extent.byte_length = 0;
}

std::uint64_t PooledBlockStorage::UsedBlocks() const {
  MutexLock lock(mutex_);
  return allocator_.used_blocks();
}

std::uint64_t PooledBlockStorage::block_bytes() const {
  MutexLock lock(mutex_);
  return allocator_.block_bytes();
}

MemoryBlockStorage::MemoryBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
    : PooledBlockStorage(capacity_bytes, block_bytes) {
  arena_.resize(allocator_.capacity_bytes());
}

Status MemoryBlockStorage::WriteBlock(BlockId block, std::span<const std::uint8_t> data) {
  CA_CHECK_LE(data.size(), allocator_.block_bytes());
  std::memcpy(arena_.data() + static_cast<std::uint64_t>(block) * allocator_.block_bytes(),
              data.data(), data.size());
  return Status::Ok();
}

Status MemoryBlockStorage::ReadBlock(BlockId block, std::span<std::uint8_t> out) {
  CA_CHECK_LE(out.size(), allocator_.block_bytes());
  std::memcpy(out.data(),
              arena_.data() + static_cast<std::uint64_t>(block) * allocator_.block_bytes(),
              out.size());
  return Status::Ok();
}

Result<std::unique_ptr<FileBlockStorage>> FileBlockStorage::Open(std::string path,
                                                                 std::uint64_t capacity_bytes,
                                                                 std::uint64_t block_bytes) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return IoError("cannot open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<FileBlockStorage>(
      // NOLINT(naked-new, cppcoreguidelines-owning-memory, modernize-make-unique): private ctor
      new FileBlockStorage(std::move(path), fd, capacity_bytes, block_bytes));  // NOLINT(naked-new)
}

FileBlockStorage::FileBlockStorage(std::string path, int fd, std::uint64_t capacity_bytes,
                                   std::uint64_t block_bytes)
    : PooledBlockStorage(capacity_bytes, block_bytes), path_(std::move(path)), fd_(fd) {
  trace_medium_ = "disk";
}

FileBlockStorage::~FileBlockStorage() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

Status FileBlockStorage::WriteBlock(BlockId block, std::span<const std::uint8_t> data) {
  CA_CHECK_LE(data.size(), allocator_.block_bytes());
  const auto offset =
      static_cast<off_t>(static_cast<std::uint64_t>(block) * allocator_.block_bytes());
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + written, data.size() - written,
                               offset + static_cast<off_t>(written));
    if (n < 0) {
      return IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockStorage::ReadBlock(BlockId block, std::span<std::uint8_t> out) {
  CA_CHECK_LE(out.size(), allocator_.block_bytes());
  const auto offset =
      static_cast<off_t>(static_cast<std::uint64_t>(block) * allocator_.block_bytes());
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n =
        ::pread(fd_, out.data() + got, out.size() - got, offset + static_cast<off_t>(got));
    if (n < 0) {
      return IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return IoError("pread: unexpected EOF");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace ca
