#include "src/store/block_storage.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/obs/trace.h"
#include "src/store/uring_io.h"

namespace ca {

namespace {

// O_DIRECT DMA granule: offsets, lengths and buffer addresses must be
// multiples of this (4 KiB covers every modern logical block size).
constexpr std::uint64_t kDirectAlign = 4096;

// iovecs per batched submission run (IOV_MAX is 1024 on Linux).
constexpr std::size_t kMaxIovPerRun = 1024;

constexpr std::uint64_t RoundUpDirect(std::uint64_t n) {
  return (n + kDirectAlign - 1) / kDirectAlign * kDirectAlign;
}

// Persistent-mode superblock (DESIGN.md §15): one O_DIRECT-sized header
// region ahead of block 0. Fields are stored host-endian — the journal and
// payload file are a local pair, never shipped across architectures.
constexpr std::uint64_t kSuperblockBytes = kDirectAlign;
constexpr std::uint32_t kPayloadMagic = 0x50424143;  // "CABP"
constexpr std::uint32_t kPayloadVersion = 1;
// Byte layout: [0] magic u32, [4] version u32, [8] block_bytes u64,
// [16] capacity_bytes u64, [24] store_id u64, [32] Fnv1a64 over [0,32).
constexpr std::uint64_t kSuperblockPayloadBytes = 32;

void PutU32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void PutU64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }
std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

Status BlockStorage::AdoptExtent(const BlockExtent& extent) {
  (void)extent;
  return FailedPreconditionError("this storage backend cannot adopt extents");
}

Result<BlockExtent> PooledBlockStorage::Write(std::span<const std::uint8_t> bytes) {
  SpanSource source(bytes);
  return WriteZeroCopy(source);
}

Result<BlockExtent> PooledBlockStorage::WriteZeroCopy(PayloadSource& source) {
  const std::uint64_t byte_length = source.size();
  CA_TRACE_SPAN("io.write", "medium", trace_medium_, "bytes", byte_length);
  MutexLock lock(mutex_);
  const std::uint64_t n_blocks = allocator_.BlocksFor(byte_length);
  CA_ASSIGN_OR_RETURN(std::vector<BlockId> blocks, allocator_.Allocate(n_blocks));
  const Status s = WriteBlocksBatch(blocks, byte_length, source);
  if (!s.ok()) {
    allocator_.Free(blocks);
    return s;
  }
  return BlockExtent{.blocks = std::move(blocks), .byte_length = byte_length};
}

Result<std::vector<std::uint8_t>> PooledBlockStorage::Read(const BlockExtent& extent) {
  std::vector<std::uint8_t> out(extent.byte_length);
  CA_RETURN_IF_ERROR(ReadInto(extent, out));
  return out;
}

Status PooledBlockStorage::ReadInto(const BlockExtent& extent, std::span<std::uint8_t> out) {
  CA_TRACE_SPAN("io.read", "medium", trace_medium_, "bytes", extent.byte_length);
  MutexLock lock(mutex_);
  CA_RETURN_IF_ERROR(ValidateExtent(extent));
  if (out.size() != extent.byte_length) {
    return InvalidArgumentError("ReadInto buffer holds " + std::to_string(out.size()) +
                                " bytes, extent has " + std::to_string(extent.byte_length));
  }
  return ReadBlocksBatch(extent.blocks, out);
}

Status PooledBlockStorage::ReadZeroCopy(const BlockExtent& extent, PayloadSink& sink) {
  CA_TRACE_SPAN("io.read", "medium", trace_medium_, "bytes", extent.byte_length);
  MutexLock lock(mutex_);
  CA_RETURN_IF_ERROR(ValidateExtent(extent));
  return ReadBlocksStream(extent.blocks, extent.byte_length, sink);
}

Status PooledBlockStorage::ValidateExtent(const BlockExtent& extent) const {
  // A corrupted record can hand us an extent whose shape no longer matches
  // its byte length; that must surface as a handleable error (the store
  // degrades it to a miss), never as an abort or an out-of-bounds block read.
  if (allocator_.BlocksFor(extent.byte_length) != extent.blocks.size()) {
    return InternalError("malformed extent: " + std::to_string(extent.blocks.size()) +
                         " blocks cannot hold " + std::to_string(extent.byte_length) + " bytes");
  }
  for (const BlockId block : extent.blocks) {
    if (block >= allocator_.total_blocks()) {
      return InternalError("malformed extent: block " + std::to_string(block) +
                           " out of range (pool has " +
                           std::to_string(allocator_.total_blocks()) + ")");
    }
  }
  return Status::Ok();
}

Status PooledBlockStorage::WriteBlocksBatch(std::span<const BlockId> blocks,
                                            std::uint64_t byte_length, PayloadSource& source) {
  const std::uint64_t block_bytes = allocator_.block_bytes();
  if (scratch_.size() < block_bytes) {
    scratch_.resize(block_bytes);
  }
  std::uint64_t off = 0;
  for (const BlockId block : blocks) {
    const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, byte_length - off);
    const std::span<std::uint8_t> dest(scratch_.data(), chunk);
    source.Fill(dest);
    CA_RETURN_IF_ERROR(WriteBlock(block, dest));
    off += chunk;
  }
  return Status::Ok();
}

Status PooledBlockStorage::ReadBlocksBatch(std::span<const BlockId> blocks,
                                           std::span<std::uint8_t> out) {
  const std::uint64_t block_bytes = allocator_.block_bytes();
  std::uint64_t off = 0;
  for (const BlockId block : blocks) {
    const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, out.size() - off);
    CA_RETURN_IF_ERROR(ReadBlock(block, out.subspan(off, chunk)));
    off += chunk;
  }
  return Status::Ok();
}

Status PooledBlockStorage::ReadBlocksStream(std::span<const BlockId> blocks,
                                            std::uint64_t byte_length, PayloadSink& sink) {
  // Portable fallback: stage the whole extent, hand it over as one chunk.
  // Arena-backed tiers override this to stream block spans directly.
  if (scratch_.size() < byte_length) {
    scratch_.resize(byte_length);
  }
  const std::span<std::uint8_t> staged(scratch_.data(), byte_length);
  CA_RETURN_IF_ERROR(ReadBlocksBatch(blocks, staged));
  sink.Consume(staged);
  return Status::Ok();
}

Status PooledBlockStorage::AdoptExtent(const BlockExtent& extent) {
  MutexLock lock(mutex_);
  CA_RETURN_IF_ERROR(ValidateExtent(extent));
  return allocator_.AllocateSpecific(extent.blocks);
}

void PooledBlockStorage::Free(BlockExtent& extent) {
  MutexLock lock(mutex_);
  allocator_.Free(extent.blocks);
  extent.blocks.clear();
  extent.byte_length = 0;
}

std::uint64_t PooledBlockStorage::UsedBlocks() const {
  MutexLock lock(mutex_);
  return allocator_.used_blocks();
}

std::uint64_t PooledBlockStorage::block_bytes() const {
  MutexLock lock(mutex_);
  return allocator_.block_bytes();
}

MemoryBlockStorage::MemoryBlockStorage(std::uint64_t capacity_bytes, std::uint64_t block_bytes)
    : PooledBlockStorage(capacity_bytes, block_bytes) {
  arena_.resize(allocator_.capacity_bytes());
}

Status MemoryBlockStorage::WriteBlock(BlockId block, std::span<const std::uint8_t> data) {
  CA_CHECK_LE(data.size(), allocator_.block_bytes());
  std::memcpy(BlockPtr(block), data.data(), data.size());
  return Status::Ok();
}

Status MemoryBlockStorage::ReadBlock(BlockId block, std::span<std::uint8_t> out) {
  CA_CHECK_LE(out.size(), allocator_.block_bytes());
  std::memcpy(out.data(), BlockPtr(block), out.size());
  return Status::Ok();
}

Status MemoryBlockStorage::WriteBlocksBatch(std::span<const BlockId> blocks,
                                            std::uint64_t byte_length, PayloadSource& source) {
  // Zero-copy: the producer serializes straight into arena memory.
  const std::uint64_t block_bytes = allocator_.block_bytes();
  std::uint64_t off = 0;
  for (const BlockId block : blocks) {
    const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, byte_length - off);
    source.Fill(std::span<std::uint8_t>(BlockPtr(block), chunk));
    off += chunk;
  }
  return Status::Ok();
}

Status MemoryBlockStorage::ReadBlocksStream(std::span<const BlockId> blocks,
                                            std::uint64_t byte_length, PayloadSink& sink) {
  // Zero-copy: the consumer sees arena spans directly, block by block.
  const std::uint64_t block_bytes = allocator_.block_bytes();
  std::uint64_t off = 0;
  for (const BlockId block : blocks) {
    const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, byte_length - off);
    sink.Consume(std::span<const std::uint8_t>(BlockPtr(block), chunk));
    off += chunk;
  }
  return Status::Ok();
}

void FileBlockStorage::AlignedDeleter::operator()(std::uint8_t* p) const {
  std::free(p);  // NOLINT(cppcoreguidelines-owning-memory): posix_memalign pair
}

Result<std::unique_ptr<FileBlockStorage>> FileBlockStorage::Open(std::string path,
                                                                 std::uint64_t capacity_bytes,
                                                                 std::uint64_t block_bytes,
                                                                 DiskIoOptions io) {
  bool direct = io.direct_io && block_bytes % kDirectAlign == 0;
  const bool reuse = io.persist && io.reuse_existing;
  int flags = O_RDWR | O_CREAT;
  if (!reuse) {
    flags |= O_TRUNC;
  }
  int fd = -1;
  if (direct) {
    fd = ::open(path.c_str(), flags | O_DIRECT, 0644);
    if (fd < 0) {
      direct = false;  // tmpfs & friends reject O_DIRECT: fall back to buffered
    }
  }
  if (fd < 0) {
    fd = ::open(path.c_str(), flags, 0644);
  }
  if (fd < 0) {
    return IoError("cannot open " + path + ": " + std::strerror(errno));
  }

  if (io.persist) {
    // Validate or stamp the superblock through an O_DIRECT-compatible
    // aligned buffer.
    void* raw = nullptr;
    if (::posix_memalign(&raw, kDirectAlign, kSuperblockBytes) != 0) {
      ::close(fd);
      return ResourceExhaustedError("cannot allocate superblock buffer");
    }
    const std::unique_ptr<std::uint8_t[], AlignedDeleter> sb(static_cast<std::uint8_t*>(raw));
    const auto fail = [&](Status status) {
      ::close(fd);
      return status;
    };
    if (reuse) {
      std::size_t got = 0;
      while (got < kSuperblockBytes) {
        const ssize_t n = ::pread(fd, sb.get() + got, kSuperblockBytes - got,
                                  static_cast<off_t>(got));
        if (n < 0) {
          return fail(IoError(path + ": superblock read: " + std::strerror(errno)));
        }
        if (n == 0) {
          return fail(FailedPreconditionError(
              path + ": payload file has no superblock (truncated or never created); "
                     "remove the metadata journal to start fresh"));
        }
        got += static_cast<std::size_t>(n);
      }
      const std::span<const std::uint8_t> head(sb.get(), kSuperblockPayloadBytes);
      if (Fnv1a64(head) != GetU64(sb.get() + 32)) {
        return fail(FailedPreconditionError(path + ": payload superblock corrupt"));
      }
      if (GetU32(sb.get()) != kPayloadMagic) {
        return fail(FailedPreconditionError(path + ": not a payload file (bad magic)"));
      }
      if (GetU32(sb.get() + 4) != kPayloadVersion) {
        return fail(FailedPreconditionError(
            path + ": payload format version " + std::to_string(GetU32(sb.get() + 4)) +
            ", this build expects " + std::to_string(kPayloadVersion)));
      }
      if (GetU64(sb.get() + 8) != block_bytes) {
        return fail(FailedPreconditionError(
            path + ": payload written with block_bytes=" + std::to_string(GetU64(sb.get() + 8)) +
            ", store configured with " + std::to_string(block_bytes)));
      }
      if (GetU64(sb.get() + 24) != io.store_id) {
        return fail(FailedPreconditionError(
            path + ": payload store id does not match the metadata journal "
                   "(the pair was not created together)"));
      }
      // Stored capacity_bytes is informational: a shrunk pool simply makes
      // out-of-range recovered extents reconcile to clean misses.
    } else {
      std::memset(sb.get(), 0, kSuperblockBytes);
      PutU32(sb.get(), kPayloadMagic);
      PutU32(sb.get() + 4, kPayloadVersion);
      PutU64(sb.get() + 8, block_bytes);
      PutU64(sb.get() + 16, capacity_bytes);
      PutU64(sb.get() + 24, io.store_id);
      PutU64(sb.get() + 32, Fnv1a64(std::span<const std::uint8_t>(sb.get(),
                                                                  kSuperblockPayloadBytes)));
      std::size_t written = 0;
      while (written < kSuperblockBytes) {
        const ssize_t n = ::pwrite(fd, sb.get() + written, kSuperblockBytes - written,
                                   static_cast<off_t>(written));
        if (n < 0) {
          return fail(IoError(path + ": superblock write: " + std::strerror(errno)));
        }
        written += static_cast<std::size_t>(n);
      }
      if (::fdatasync(fd) != 0) {
        return fail(IoError(path + ": superblock fdatasync: " + std::strerror(errno)));
      }
    }
  }

  // Resolve the submission strategy. kAuto/kUring probe the kernel once at
  // open; a refused ring (old kernel, seccomp) degrades to pwritev/preadv
  // batching. O_DIRECT transfers stage through the aligned buffer, which the
  // per-block sync path cannot use, so direct I/O forces a batched mode.
  DiskIoMode mode = io.mode;
  std::unique_ptr<UringQueue> uring;
  if (mode == DiskIoMode::kAuto || mode == DiskIoMode::kUring) {
    uring = UringQueue::TryCreate(64);
    mode = uring != nullptr ? DiskIoMode::kUring : DiskIoMode::kBatched;
  }
  if (direct && mode == DiskIoMode::kSync) {
    mode = DiskIoMode::kBatched;
  }
  return std::unique_ptr<FileBlockStorage>(
      // NOLINT(naked-new, cppcoreguidelines-owning-memory, modernize-make-unique): private ctor
      new FileBlockStorage(std::move(path), fd, capacity_bytes, block_bytes,  // NOLINT(naked-new)
                           mode, direct, std::move(uring), io));
}

FileBlockStorage::FileBlockStorage(std::string path, int fd, std::uint64_t capacity_bytes,
                                   std::uint64_t block_bytes, DiskIoMode mode, bool direct,
                                   std::unique_ptr<UringQueue> uring, const DiskIoOptions& io)
    : PooledBlockStorage(capacity_bytes, block_bytes),
      path_(std::move(path)),
      fd_(fd),
      direct_io_(direct),
      persist_(io.persist),
      data_offset_(io.persist ? kSuperblockBytes : 0),
      store_id_(io.store_id),
      io_mode_(mode),
      uring_(std::move(uring)),
      crash_(io.crash),
      crash_after_block_writes_(io.crash_after_block_writes) {
  trace_medium_ = "disk";
}

FileBlockStorage::~FileBlockStorage() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (!persist_) {
      ::unlink(path_.c_str());
    }
  }
}

Status FileBlockStorage::WriteBlock(BlockId block, std::span<const std::uint8_t> data) {
  CA_CHECK_LE(data.size(), allocator_.block_bytes());
  const auto offset = static_cast<off_t>(
      data_offset_ + static_cast<std::uint64_t>(block) * allocator_.block_bytes());
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + written, data.size() - written,
                               offset + static_cast<off_t>(written));
    if (n < 0) {
      return IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockStorage::ReadBlock(BlockId block, std::span<std::uint8_t> out) {
  CA_CHECK_LE(out.size(), allocator_.block_bytes());
  const auto offset = static_cast<off_t>(
      data_offset_ + static_cast<std::uint64_t>(block) * allocator_.block_bytes());
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n =
        ::pread(fd_, out.data() + got, out.size() - got, offset + static_cast<off_t>(got));
    if (n < 0) {
      return IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return IoError("pread: unexpected EOF");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockStorage::EnsureAligned(std::uint64_t bytes) {
  if (aligned_bytes_ >= bytes) {
    return Status::Ok();
  }
  std::uint64_t grown = std::max<std::uint64_t>(aligned_bytes_ * 2, kDirectAlign);
  grown = std::max(grown, RoundUpDirect(bytes));
  void* p = nullptr;
  if (::posix_memalign(&p, kDirectAlign, grown) != 0) {
    return ResourceExhaustedError("cannot allocate " + std::to_string(grown) +
                                  " aligned staging bytes");
  }
  aligned_.reset(static_cast<std::uint8_t*>(p));
  aligned_bytes_ = grown;
  return Status::Ok();
}

Status FileBlockStorage::WriteBlocksBatch(std::span<const BlockId> blocks,
                                          std::uint64_t byte_length, PayloadSource& source) {
  if (io_mode_ == DiskIoMode::kSync && crash_ == nullptr) {
    // With a crash schedule attached even kSync stages below: the source
    // must always be consumed in full (a HashingSource folds the in-memory
    // record checksum as it fills), while only the device submission is
    // truncated or skipped.
    return PooledBlockStorage::WriteBlocksBatch(blocks, byte_length, source);
  }
  // Stage the payload contiguously in the aligned buffer (one Fill per block,
  // so a hashing source checksums each block while it is cache-hot), zero the
  // O_DIRECT tail pad, then submit every contiguous block run in one batch.
  const std::uint64_t staged = direct_io_ ? RoundUpDirect(byte_length) : byte_length;
  CA_RETURN_IF_ERROR(EnsureAligned(staged));
  const std::uint64_t block_bytes = allocator_.block_bytes();
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, byte_length - off);
    source.Fill(std::span<std::uint8_t>(aligned_.get() + off, chunk));
    off += chunk;
  }
  if (staged > byte_length) {
    std::memset(aligned_.get() + byte_length, 0, staged - byte_length);
  }
  std::span<const BlockId> submit = blocks;
  std::uint64_t submit_bytes = staged;
  if (crash_ != nullptr) {
    if (crash_->frozen.load(std::memory_order_relaxed)) {
      return Status::Ok();  // post-crash: the bytes never reach the device
    }
    if (crash_after_block_writes_ > 0) {
      const std::uint64_t before = crash_blocks_written_;
      crash_blocks_written_ += blocks.size();
      if (crash_blocks_written_ >= crash_after_block_writes_) {
        // Simulated SIGKILL mid-extent: blocks up to device write #N land,
        // the rest never reach the file, and everything after is frozen.
        const std::uint64_t allowed = crash_after_block_writes_ - before;
        crash_->frozen.store(true, std::memory_order_relaxed);
        submit = blocks.first(static_cast<std::size_t>(allowed));
        submit_bytes = std::min<std::uint64_t>(byte_length, allowed * block_bytes);
        if (direct_io_) {
          submit_bytes = RoundUpDirect(submit_bytes);
        }
      }
    }
  }
  if (submit.empty()) {
    return Status::Ok();
  }
  return SubmitRuns(submit, std::span<std::uint8_t>(aligned_.get(), submit_bytes),
                    /*is_write=*/true);
}

Status FileBlockStorage::ReadBlocksBatch(std::span<const BlockId> blocks,
                                         std::span<std::uint8_t> out) {
  if (io_mode_ == DiskIoMode::kSync) {
    return PooledBlockStorage::ReadBlocksBatch(blocks, out);
  }
  if (!direct_io_) {
    // Buffered batched read lands directly in the caller's buffer.
    return SubmitRuns(blocks, out, /*is_write=*/false);
  }
  const std::uint64_t staged = RoundUpDirect(out.size());
  CA_RETURN_IF_ERROR(EnsureAligned(staged));
  CA_RETURN_IF_ERROR(
      SubmitRuns(blocks, std::span<std::uint8_t>(aligned_.get(), staged), /*is_write=*/false));
  std::memcpy(out.data(), aligned_.get(), out.size());
  return Status::Ok();
}

namespace {

// Drives one vectored transfer to completion, advancing the iovec window
// across partial transfers (pwritev/preadv may stop at any boundary).
Status VectoredTransfer(int fd, const UringQueue::Op& op) {
  std::vector<iovec> iov(op.iov, op.iov + op.iov_count);
  std::size_t idx = 0;
  auto offset = static_cast<off_t>(op.offset);
  std::uint64_t remaining = op.expected_bytes;
  while (remaining > 0) {
    const int count = static_cast<int>(iov.size() - idx);
    const ssize_t n = op.write ? ::pwritev(fd, iov.data() + idx, count, offset)
                               : ::preadv(fd, iov.data() + idx, count, offset);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(std::string(op.write ? "pwritev: " : "preadv: ") + std::strerror(errno));
    }
    if (n == 0 && !op.write) {
      return IoError("preadv: unexpected EOF");
    }
    offset += static_cast<off_t>(n);
    remaining -= static_cast<std::uint64_t>(n);
    auto advance = static_cast<std::size_t>(n);
    while (advance > 0) {
      if (advance >= iov[idx].iov_len) {
        advance -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<std::uint8_t*>(iov[idx].iov_base) + advance;
        iov[idx].iov_len -= advance;
        advance = 0;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status FileBlockStorage::SubmitRuns(std::span<const BlockId> blocks,
                                    std::span<std::uint8_t> buffer, bool is_write) {
  const std::uint64_t block_bytes = allocator_.block_bytes();
  // One iovec per block; runs of consecutive block ids collapse into a single
  // vectored submission at the run's file offset. Reserve up front: ops keep
  // pointers into `iov`, so it must never reallocate.
  std::vector<iovec> iov;
  iov.reserve(blocks.size());
  std::vector<UringQueue::Op> ops;
  std::uint64_t mem_off = 0;
  std::size_t i = 0;
  while (i < blocks.size()) {
    std::size_t j = i;
    while (j + 1 < blocks.size() && blocks[j + 1] == blocks[j] + 1 &&
           (j + 1 - i) < kMaxIovPerRun) {
      ++j;
    }
    const std::size_t iov_begin = iov.size();
    std::uint64_t run_bytes = 0;
    for (std::size_t k = i; k <= j; ++k) {
      const std::uint64_t chunk = std::min<std::uint64_t>(block_bytes, buffer.size() - mem_off);
      iov.push_back(iovec{.iov_base = buffer.data() + mem_off, .iov_len = chunk});
      mem_off += chunk;
      run_bytes += chunk;
    }
    ops.push_back(UringQueue::Op{.write = is_write,
                                 .offset = data_offset_ +
                                           static_cast<std::uint64_t>(blocks[i]) * block_bytes,
                                 .iov = iov.data() + iov_begin,
                                 .iov_count = static_cast<unsigned>(iov.size() - iov_begin),
                                 .expected_bytes = run_bytes});
    i = j + 1;
  }
  CA_TRACE_SPAN("io.batch", "dir", is_write ? "write" : "read", "runs", ops.size(), "blocks",
                blocks.size(), "uring", io_mode_ == DiskIoMode::kUring ? 1 : 0);
  if (io_mode_ == DiskIoMode::kUring && uring_ != nullptr) {
    return uring_->SubmitAndWait(fd_, ops);
  }
  for (const UringQueue::Op& op : ops) {
    CA_RETURN_IF_ERROR(VectoredTransfer(fd_, op));
  }
  return Status::Ok();
}

}  // namespace ca
