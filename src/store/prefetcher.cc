#include "src/store/prefetcher.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace ca {

PrefetchPlan Prefetcher::Plan(std::span<const SessionId> upcoming,
                              std::uint64_t avg_session_kv_bytes) const {
  CA_TRACE_SPAN("prefetch.plan", "upcoming", upcoming.size());
  PrefetchPlan plan;
  if (avg_session_kv_bytes == 0) {
    return plan;
  }
  // L_pw = C_mem / S_kv, where C_mem is DRAM capacity available for
  // prefetching (free space plus the reserved fetch buffer).
  const std::uint64_t available = store_->FreeBytes(Tier::kDram);
  plan.window_len = static_cast<std::size_t>(available / avg_session_kv_bytes);
  const std::size_t window = std::min(plan.window_len, upcoming.size());
  std::uint64_t planned_bytes = 0;
  for (std::size_t i = 0; i < window; ++i) {
    const SessionId session = upcoming[i];
    if (store_->Lookup(session) != Tier::kDisk) {
      continue;
    }
    const auto info = store_->GetInfo(session);
    CA_CHECK(info.has_value());
    if (planned_bytes + info->bytes > available) {
      break;  // window shrinks to what actually fits
    }
    planned_bytes += info->bytes;
    plan.to_fetch.push_back(session);
  }
  return plan;
}

std::size_t Prefetcher::Execute(const PrefetchPlan& plan, SimTime now,
                                const SchedulerHints& hints) {
  std::size_t promoted = 0;
  for (const SessionId session : plan.to_fetch) {
    CA_TRACE_SPAN("prefetch.preload", "session", session);
    if (store_->Promote(session, now, hints).ok()) {
      ++promoted;
    }
  }
  return promoted;
}

SchedulerHints BuildHints(std::span<const SessionId> upcoming, std::size_t window_len) {
  SchedulerHints hints;
  const std::size_t n = std::min(window_len, upcoming.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Keep the *earliest* queue position for sessions with several waiting
    // jobs.
    hints.next_use_index.emplace(upcoming[i], i);
  }
  return hints;
}

std::size_t EvictionWindowLength(const AttentionStore& store,
                                 std::uint64_t avg_session_kv_bytes) {
  if (avg_session_kv_bytes == 0) {
    return 0;
  }
  const std::uint64_t total =
      store.CapacityBytes(Tier::kDram) + store.CapacityBytes(Tier::kDisk);
  return static_cast<std::size_t>(total / avg_session_kv_bytes);
}

}  // namespace ca
