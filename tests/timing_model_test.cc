// Timing model tests, calibrated against the constants the paper publishes
// (§2.4): LLaMA-65B prefill of 2K tokens ~= 360 ms on 4 A100s; its 5 GB KV
// cache loads over 26 GB/s PCIe in ~192 ms. Plus the layer-wise pre-loading
// overlap formulas of §3.2.
#include <gtest/gtest.h>

#include "src/sim/cost_model.h"
#include "src/sim/timing_model.h"

namespace ca {
namespace {

TimingModel Llama65() { return TimingModel(ModelDescriptor::Llama65B(), HardwareConfig()); }
TimingModel Llama13() { return TimingModel(ModelDescriptor::Llama13B(), HardwareConfig()); }

TEST(TimingModelTest, PrefillCalibration65B) {
  // Paper §2.4: "prefilling 2K tokens of a prompt consumes about 360 ms".
  const SimTime t = Llama65().PrefillTime(2048);
  EXPECT_NEAR(ToMilliseconds(t), 360.0, 40.0);
}

TEST(TimingModelTest, KvLoadCalibration65B) {
  // Paper §2.4: "loading the KV cache of the 2K tokens (5 GB) ... about
  // 192 ms" over 26 GB/s PCIe.
  const TimingModel tm = Llama65();
  const std::uint64_t bytes = tm.KvBytes(2048);
  EXPECT_NEAR(static_cast<double>(bytes) / 1e9, 5.0, 0.5);
  EXPECT_NEAR(ToMilliseconds(tm.HostToHbm(bytes)), 192.0, 25.0);
}

TEST(TimingModelTest, PrefillLinearInTokens) {
  const TimingModel tm = Llama13();
  const SimTime t1 = tm.PrefillTime(512);
  const SimTime t2 = tm.PrefillTime(1024);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.01);
  EXPECT_EQ(tm.PrefillTime(0), 0);
}

// Fig. 1b: decode iteration time is nearly flat in context length (weights
// dominate), while prefill grows linearly.
TEST(TimingModelTest, DecodeNearlyFlatVsContext) {
  const TimingModel tm(ModelDescriptor::Llama70B(), HardwareConfig());
  const SimTime short_ctx = tm.DecodeIterTime(8, 256);
  const SimTime long_ctx = tm.DecodeIterTime(8, 4096);
  EXPECT_LT(static_cast<double>(long_ctx) / static_cast<double>(short_ctx), 1.2);
  EXPECT_GT(long_ctx, short_ctx);  // but strictly increasing
}

TEST(TimingModelTest, DecodeScalesWithGpus) {
  HardwareConfig hw;
  ModelDescriptor one_gpu = ModelDescriptor::Llama13B();
  one_gpu.num_gpus = 1;
  ModelDescriptor two_gpu = ModelDescriptor::Llama13B();
  two_gpu.num_gpus = 2;
  const SimTime t1 = TimingModel(one_gpu, hw).DecodeIterTime(8, 1024);
  const SimTime t2 = TimingModel(two_gpu, hw).DecodeIterTime(8, 1024);
  EXPECT_NEAR(static_cast<double>(t1) / static_cast<double>(t2), 2.0, 0.01);
}

TEST(TimingModelTest, TransferTimesMatchBandwidths) {
  const TimingModel tm = Llama13();
  const HardwareConfig hw;
  EXPECT_NEAR(ToSeconds(tm.HostToHbm(static_cast<std::uint64_t>(hw.pcie_bandwidth))), 1.0,
              1e-6);
  EXPECT_NEAR(ToSeconds(tm.DiskToDram(static_cast<std::uint64_t>(hw.ssd_read_bandwidth))), 1.0,
              1e-6);
  EXPECT_GT(tm.DiskToDram(GiB(1)), tm.HostToHbm(GiB(1)));  // SSD slower than PCIe
}

// --- layer-wise pre-loading (§3.2.1, Figs. 6-7, 19) ---------------------

TEST(OverlapTest, NoPreloadIsLoadPlusCompute) {
  const TimingModel tm = Llama13();
  const SimTime t = tm.OverlappedPrefill(1024, 100, 0, /*preload=*/false);
  EXPECT_EQ(t, tm.HostToHbm(tm.KvBytes(1024)) + tm.PrefillTime(100));
}

TEST(OverlapTest, PreloadNeverSlowerAndNeverBeatsBothBounds) {
  const TimingModel tm = Llama13();
  const SimTime no_pl = tm.OverlappedPrefill(1024, 100, 0, false);
  const SimTime pl = tm.OverlappedPrefill(1024, 100, 0, true);
  EXPECT_LE(pl, no_pl);
  EXPECT_GE(pl, tm.PrefillTime(100));
}

// Fig. 19's shape: prefill time decreases monotonically with the read
// buffer until the loading is fully hidden.
TEST(OverlapTest, LargerReadBufferMonotonicallyHelps) {
  const TimingModel tm = Llama13();
  SimTime prev = tm.OverlappedPrefill(1024, 100, 0, true);
  bool reached_floor = false;
  for (std::size_t buf : {1UL, 2UL, 5UL, 10UL, 15UL, 20UL, 40UL}) {
    const SimTime t = tm.OverlappedPrefill(1024, 100, buf, true);
    EXPECT_LE(t, prev) << "buffer " << buf;
    prev = t;
    if (t <= tm.PrefillTime(100) + tm.PrefillTime(100) / 10) {
      reached_floor = true;
    }
  }
  EXPECT_TRUE(reached_floor) << "a large enough buffer must hide the load entirely";
}

TEST(OverlapTest, ComputeBoundCaseNeedsNoBuffer) {
  const TimingModel tm = Llama13();
  // Tiny history, large new input: T_load << T_pref, overlap is perfect
  // modulo the single-layer pipeline fill.
  const SimTime t = tm.OverlappedPrefill(16, 2048, 0, true);
  const SimTime floor = tm.PrefillTime(2048);
  EXPECT_LT(static_cast<double>(t - floor) / static_cast<double>(floor), 0.05);
}

TEST(OverlapTest, PerfectBufferFormulaMatchesPaper) {
  const TimingModel tm = Llama13();
  // S_buf = B * (T_load*L_hist - T_pref*L_new) when loading dominates.
  const std::uint64_t buf = tm.PerfectReadBufferBytes(1024, 100);
  const double expected_s =
      ToSeconds(tm.HostToHbm(tm.KvBytes(1024))) - ToSeconds(tm.PrefillTime(100));
  EXPECT_NEAR(static_cast<double>(buf) / HardwareConfig().pcie_bandwidth, expected_s, 1e-6);
  // Compute-bound direction: no buffer needed.
  EXPECT_EQ(tm.PerfectReadBufferBytes(16, 2048), 0ULL);
}

// --- asynchronous saving (§3.2.2, Fig. 20) -------------------------------

TEST(SaveStallTest, SynchronousPaysFullWrite) {
  const TimingModel tm = Llama13();
  const std::uint64_t bytes = tm.KvBytes(1200);
  EXPECT_EQ(tm.SaveStall(bytes, 0, 0), tm.HbmToHost(bytes));
}

TEST(SaveStallTest, OverlapEliminatesStall) {
  const TimingModel tm = Llama13();
  const std::uint64_t bytes = tm.KvBytes(1200);
  const SimTime write = tm.HbmToHost(bytes);
  EXPECT_EQ(tm.SaveStall(bytes, write * 2, 0), 0);        // long decode hides it
  EXPECT_EQ(tm.SaveStall(bytes, 0, bytes), 0);            // buffer absorbs it
  EXPECT_GT(tm.SaveStall(bytes, write / 2, 0), 0);        // partial overlap
  EXPECT_LT(tm.SaveStall(bytes, write / 2, 0), write);
}

// --- cost model (§4.2) ----------------------------------------------------

TEST(CostModelTest, PaperPrices) {
  PricingConfig pricing;
  // 4 GPUs busy for 2 hours: 8 GPU-hours * $5.
  const CostBreakdown cost =
      ComputeCost(pricing, 4, 2 * kHour, /*dram_bytes=*/128000000000ULL,
                  /*ssd_bytes=*/10000000000000ULL, /*wall_time=*/10 * kHour);
  EXPECT_NEAR(cost.gpu, 40.0, 1e-9);
  EXPECT_NEAR(cost.dram, 128.0 * 10 * 0.0088, 1e-6);
  EXPECT_NEAR(cost.ssd, 10000.0 * 10 * 0.000082, 1e-6);
  EXPECT_NEAR(cost.total(), cost.gpu + cost.dram + cost.ssd, 1e-12);
  EXPECT_GT(cost.storage_fraction(), 0.0);
  EXPECT_LT(cost.storage_fraction(), 0.5);
}

TEST(CostModelTest, ZeroIsZero) {
  const CostBreakdown cost = ComputeCost(PricingConfig{}, 4, 0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(cost.total(), 0.0);
  EXPECT_DOUBLE_EQ(cost.storage_fraction(), 0.0);
}

// Parameterised property: for every evaluation model, overlapped prefill is
// bounded below by the compute floor and above by the no-preload sum.
class OverlapBounds : public ::testing::TestWithParam<int> {};

TEST_P(OverlapBounds, RespectsBounds) {
  const auto models = ModelDescriptor::EvaluationSuite();
  const TimingModel tm(models[static_cast<std::size_t>(GetParam())], HardwareConfig());
  for (const std::uint64_t hist : {0ULL, 128ULL, 1024ULL, 4096ULL}) {
    for (const std::uint64_t fresh : {1ULL, 100ULL, 2048ULL}) {
      for (const std::size_t buf : {0UL, 8UL, 64UL}) {
        const SimTime t = tm.OverlappedPrefill(hist, fresh, buf, true);
        EXPECT_GE(t, tm.PrefillTime(fresh));
        EXPECT_LE(t, tm.HostToHbm(tm.KvBytes(hist)) + tm.PrefillTime(fresh));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, OverlapBounds, ::testing::Range(0, 4));

}  // namespace
}  // namespace ca
