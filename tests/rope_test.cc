// RoPE properties the decoupled-PE scheme depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/model/rope.h"
#include "src/tensor/ops.h"

namespace ca {
namespace {

std::vector<float> RandomVec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.NextGaussian());
  }
  return v;
}

float Norm(const std::vector<float>& v) {
  float s = 0.0f;
  for (const float x : v) {
    s += x * x;
  }
  return std::sqrt(s);
}

TEST(RopeTest, PositionZeroIsIdentity) {
  RopeTable rope(8, 10000.0f);
  std::vector<float> v = RandomVec(8, 1);
  const std::vector<float> orig = v;
  rope.Apply(v, 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], orig[i], 1e-6f);
  }
}

TEST(RopeTest, PreservesNorm) {
  RopeTable rope(16, 10000.0f);
  for (std::size_t pos : {1UL, 7UL, 100UL, 4096UL}) {
    std::vector<float> v = RandomVec(16, pos);
    const float before = Norm(v);
    rope.Apply(v, pos);
    EXPECT_NEAR(Norm(v), before, 1e-4f) << "pos " << pos;
  }
}

TEST(RopeTest, InverseUndoesApply) {
  RopeTable rope(32, 10000.0f);
  std::vector<float> v = RandomVec(32, 3);
  const std::vector<float> orig = v;
  rope.Apply(v, 123);
  rope.ApplyInverse(v, 123);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], orig[i], 1e-5f);
  }
}

// The core RoPE property: <rope(q, m), rope(k, n)> depends only on m - n.
// This is what makes position re-embedding after truncation sound: shifting
// all positions by the same offset leaves attention scores unchanged.
TEST(RopeTest, ScoreDependsOnlyOnRelativePosition) {
  RopeTable rope(16, 10000.0f);
  const std::vector<float> q0 = RandomVec(16, 10);
  const std::vector<float> k0 = RandomVec(16, 11);

  auto score = [&](std::size_t m, std::size_t n) {
    std::vector<float> q = q0;
    std::vector<float> k = k0;
    rope.Apply(q, m);
    rope.Apply(k, n);
    return Dot(q, k);
  };

  // Same relative distance 5 at different absolute offsets.
  const float s1 = score(5, 0);
  const float s2 = score(105, 100);
  const float s3 = score(2053, 2048);
  EXPECT_NEAR(s1, s2, 1e-3f);
  EXPECT_NEAR(s1, s3, 1e-2f);

  // Different relative distance must (generically) give a different score.
  const float s4 = score(9, 0);
  EXPECT_GT(std::fabs(s1 - s4), 1e-3f);
}

TEST(RopeTest, ApplyAllHeadsRotatesEachHead) {
  RopeTable rope(4, 10000.0f);
  std::vector<float> packed = RandomVec(12, 21);  // 3 heads x dim 4
  std::vector<float> head0(packed.begin(), packed.begin() + 4);
  std::vector<float> head2(packed.begin() + 8, packed.end());
  rope.ApplyAllHeads(packed, 9);
  rope.Apply(head0, 9);
  rope.Apply(head2, 9);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(packed[i], head0[i], 1e-6f);
    EXPECT_NEAR(packed[8 + i], head2[i], 1e-6f);
  }
}

TEST(RopeDeathTest, OddDimAborts) {
  EXPECT_DEATH(RopeTable(7, 10000.0f), "CA_CHECK failed");
}

// Parameterised sweep over head dims and thetas: norm preservation and
// relative-position invariance must hold for every configuration the model
// presets use.
class RopeSweep : public ::testing::TestWithParam<std::tuple<std::size_t, float>> {};

TEST_P(RopeSweep, RelativeInvariance) {
  const auto [dim, theta] = GetParam();
  RopeTable rope(dim, theta);
  const std::vector<float> q0 = RandomVec(dim, dim);
  const std::vector<float> k0 = RandomVec(dim, dim + 1);
  auto score = [&](std::size_t m, std::size_t n) {
    std::vector<float> q = q0;
    std::vector<float> k = k0;
    rope.Apply(q, m);
    rope.Apply(k, n);
    return Dot(q, k);
  };
  EXPECT_NEAR(score(17, 3), score(117, 103), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(DimsThetas, RopeSweep,
                         ::testing::Combine(::testing::Values(4UL, 8UL, 16UL, 64UL, 128UL),
                                            ::testing::Values(1000.0f, 10000.0f, 500000.0f)));

}  // namespace
}  // namespace ca
