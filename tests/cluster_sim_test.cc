// End-to-end discrete-event simulation tests: CA vs RE orderings, warmup
// accounting, context-overflow (OF) behaviour, policy comparisons, storage
// tier configurations, and determinism.
#include <gtest/gtest.h>

#include "src/sim/cluster_sim.h"
#include "src/workload/arrivals.h"
#include "src/workload/sharegpt.h"

namespace ca {
namespace {

std::vector<SessionTrace> MakeWorkload(std::size_t sessions, std::uint64_t seed,
                                       double arrival_rate = 1.0,
                                       double think_time_s = 20.0) {
  ShareGptConfig config;
  config.think_time_mean_s = think_time_s;
  ShareGptGenerator gen(config, seed);
  auto traces = gen.Generate(sessions);
  AssignArrivals(traces, arrival_rate, seed + 1);
  return traces;
}

SimOptions CaOptions() {
  SimOptions options;
  options.mode = EngineMode::kCachedAttention;
  options.model = ModelDescriptor::Llama13B();
  options.store.dram_capacity = GiB(128);
  options.store.disk_capacity = TiB(2);
  options.store.block_bytes = MiB(16);
  return options;
}

SimOptions ReOptions() {
  SimOptions options = CaOptions();
  options.mode = EngineMode::kRecompute;
  return options;
}

TEST(ClusterSimTest, CompletesAllTurns) {
  const auto workload = MakeWorkload(50, 1);
  std::size_t total_turns = 0;
  for (const auto& s : workload) {
    total_turns += s.turns.size();
  }
  ClusterSim sim(CaOptions(), workload);
  const SimMetrics m = sim.Run();
  EXPECT_EQ(m.turns, total_turns);
  EXPECT_GT(m.makespan, 0);
  EXPECT_GT(m.decoded_tokens, 0ULL);
  EXPECT_GT(m.prompt_tokens, 0ULL);
}

TEST(ClusterSimTest, WarmupExcludedFromMetrics) {
  const auto workload = MakeWorkload(50, 2);
  std::size_t total_turns = 0;
  for (const auto& s : workload) {
    total_turns += s.turns.size();
  }
  SimOptions options = CaOptions();
  options.warmup_turns = 100;
  ClusterSim sim(options, workload);
  const SimMetrics m = sim.Run();
  EXPECT_EQ(m.turns, total_turns - 100);
}

// The headline orderings (Figs. 14-16): with ample storage, CachedAttention
// beats recomputation on TTFT, prefill throughput and GPU time.
TEST(ClusterSimTest, CaBeatsReOnHeadlineMetrics) {
  const auto workload = MakeWorkload(120, 3);
  SimOptions ca = CaOptions();
  SimOptions re = ReOptions();
  ca.warmup_turns = 80;
  re.warmup_turns = 80;
  const SimMetrics m_ca = ClusterSim(ca, workload).Run();
  const SimMetrics m_re = ClusterSim(re, workload).Run();

  EXPECT_GT(m_ca.store.hit_rate(), 0.8);
  EXPECT_EQ(m_re.store.lookups, 0ULL);  // RE never consults the store

  EXPECT_LT(m_ca.mean_ttft_s(), m_re.mean_ttft_s());
  EXPECT_GT(m_ca.prefill_throughput(), 1.5 * m_re.prefill_throughput());
  EXPECT_LT(m_ca.gpu_time(), m_re.gpu_time());
  EXPECT_LT(m_ca.computed_tokens, m_ca.prompt_tokens);
  EXPECT_EQ(m_re.computed_tokens, m_re.prompt_tokens);

  // Cost (Fig. 17): CA cheaper despite paying for DRAM+SSD.
  EXPECT_LT(m_ca.cost.total(), m_re.cost.total());
  EXPECT_GT(m_ca.cost.storage(), 0.0);
}

TEST(ClusterSimTest, DeterministicForSameWorkload) {
  const auto workload = MakeWorkload(40, 4);
  const SimMetrics a = ClusterSim(CaOptions(), workload).Run();
  const SimMetrics b = ClusterSim(CaOptions(), workload).Run();
  EXPECT_EQ(a.gpu_time(), b.gpu_time());
  EXPECT_EQ(a.store.hits(), b.store.hits());
  EXPECT_EQ(a.makespan, b.makespan);
}

// §4.3.4: with a small context window, the OF baseline (coupled PE)
// invalidates caches on every overflow, dropping the hit rate below
// decoupled CA's.
TEST(ClusterSimTest, ContextOverflowHurtsCoupledPe) {
  auto workload = MakeWorkload(120, 5);
  SimOptions ca = CaOptions();
  // Falcon-40B: 2K window (frequent overflow) and small KV per token, so a
  // cache hit is unambiguously cheaper than recomputation.
  ca.model = ModelDescriptor::Falcon40B();
  SimOptions of = ca;
  of.decoupled_pe = false;
  const SimMetrics m_ca = ClusterSim(ca, workload).Run();
  const SimMetrics m_of = ClusterSim(of, workload).Run();
  EXPECT_GT(m_ca.truncation_events, 0ULL);
  EXPECT_LT(m_of.store.hit_rate(), m_ca.store.hit_rate());
  EXPECT_GE(m_ca.gpu_time(), 0);
  EXPECT_LE(m_ca.gpu_time(), m_of.gpu_time());
}

// §4.3.3: under storage pressure the scheduler-aware policy beats LRU and
// FIFO, mostly because prefetching turns disk hits into DRAM hits.
TEST(ClusterSimTest, SchedulerAwareBeatsLruUnderPressure) {
  // The policy regime: long reuse distances (3 min think time) so returning
  // sessions find their KV demoted, plus a loaded queue so the prefetcher
  // has lead time (see bench/fig21_eviction_policies.cc).
  const auto workload =
      MakeWorkload(300, 6, /*arrival_rate=*/2.0, /*think_time_s=*/180.0);
  SimOptions aware = CaOptions();
  aware.store.dram_capacity = GiB(8);
  aware.store.disk_capacity = GiB(64);

  SimOptions lru = aware;
  lru.store.eviction_policy = "lru";
  lru.prefetch_enabled = false;  // history-only policies cannot prefetch

  const SimMetrics m_aware = ClusterSim(aware, workload).Run();
  const SimMetrics m_lru = ClusterSim(lru, workload).Run();

  EXPECT_GE(m_aware.store.hit_rate(), m_lru.store.hit_rate());
  // The DRAM hit fraction is where scheduler-awareness shows (paper: LRU
  // ~0.5% DRAM hits vs CA >99% of hits in DRAM).
  EXPECT_GT(m_aware.store.dram_hit_rate(), m_lru.store.dram_hit_rate());
}

// §4.3.7: an HBM-only cache is far too small; adding DRAM helps a little;
// adding SSD makes hit rates high.
TEST(ClusterSimTest, StorageMediumsChangeHitRate) {
  const auto workload = MakeWorkload(100, 7);

  SimOptions hbm_only = CaOptions();
  hbm_only.store.hbm_capacity = GiB(10);
  hbm_only.store.dram_capacity = 0;
  hbm_only.store.disk_capacity = 0;

  // DRAM small enough that this workload does not fit in it entirely.
  SimOptions hbm_dram = CaOptions();
  hbm_dram.store.hbm_capacity = GiB(10);
  hbm_dram.store.dram_capacity = GiB(24);
  hbm_dram.store.disk_capacity = 0;

  SimOptions full = CaOptions();
  full.store.hbm_capacity = GiB(10);
  full.store.dram_capacity = GiB(24);

  const double hit_hbm = ClusterSim(hbm_only, workload).Run().store.hit_rate();
  const double hit_dram = ClusterSim(hbm_dram, workload).Run().store.hit_rate();
  const double hit_full = ClusterSim(full, workload).Run().store.hit_rate();
  EXPECT_LE(hit_hbm, hit_dram);
  EXPECT_LT(hit_dram, hit_full);
  EXPECT_GT(hit_full, 0.7);
}

// Fig. 25's direction: higher arrival rates -> same-or-lower hit rate.
TEST(ClusterSimTest, HigherArrivalRateDoesNotImproveHitRate) {
  SimOptions options = CaOptions();
  options.store.dram_capacity = GiB(16);
  options.store.disk_capacity = GiB(128);
  options.store.ttl = 10 * kMinute;
  const auto slow = MakeWorkload(150, 8, /*arrival_rate=*/0.5);
  const auto fast = MakeWorkload(150, 8, /*arrival_rate=*/4.0);
  const double hit_slow = ClusterSim(options, slow).Run().store.hit_rate();
  const double hit_fast = ClusterSim(options, fast).Run().store.hit_rate();
  EXPECT_GE(hit_slow + 0.03, hit_fast);  // allow small noise
}

// Preload ablation (Fig. 19 direction): disabling layer-wise pre-loading
// cannot make prefill faster.
TEST(ClusterSimTest, PreloadNeverHurts) {
  const auto workload = MakeWorkload(80, 9);
  SimOptions with_pl = CaOptions();
  SimOptions without_pl = CaOptions();
  without_pl.layerwise_preload = false;
  const SimMetrics m_with = ClusterSim(with_pl, workload).Run();
  const SimMetrics m_without = ClusterSim(without_pl, workload).Run();
  EXPECT_LE(m_with.prefill_busy, m_without.prefill_busy);
}

// Async-save ablation (Fig. 20 direction): synchronous saving adds stalls.
TEST(ClusterSimTest, AsyncSaveReducesStalls) {
  const auto workload = MakeWorkload(80, 10);
  SimOptions async_save = CaOptions();
  SimOptions sync_save = CaOptions();
  sync_save.async_save = false;
  sync_save.write_buffer_bytes = 0;
  const SimMetrics m_async = ClusterSim(async_save, workload).Run();
  const SimMetrics m_sync = ClusterSim(sync_save, workload).Run();
  EXPECT_LT(m_async.save_stall, m_sync.save_stall);
  EXPECT_LE(m_async.gpu_time(), m_sync.gpu_time());
}

// Parameterised conservation sweep: for every evaluation model and both
// engine modes, the simulation terminates, serves every turn exactly once,
// and its accounting invariants hold.
class SimConservation
    : public ::testing::TestWithParam<std::tuple<int, EngineMode, std::uint64_t>> {};

TEST_P(SimConservation, InvariantsHold) {
  const auto [model_idx, mode, seed] = GetParam();
  const auto workload = MakeWorkload(60, seed);
  std::size_t total_turns = 0;
  std::uint64_t total_decode = 0;
  for (const auto& s : workload) {
    total_turns += s.turns.size();
    for (const Turn& t : s.turns) {
      total_decode += std::max<std::uint32_t>(1, t.a_tokens);
    }
  }
  SimOptions options = CaOptions();
  options.mode = mode;
  options.model = ModelDescriptor::EvaluationSuite()[static_cast<std::size_t>(model_idx)];
  const SimMetrics m = ClusterSim(options, workload).Run();

  // Every turn served exactly once (no warmup here).
  EXPECT_EQ(m.turns, total_turns);
  // Context-window caps may shorten decodes, never lengthen them.
  EXPECT_LE(m.decoded_tokens, total_decode);
  EXPECT_GT(m.decoded_tokens, 0ULL);
  // Computed prompt tokens never exceed full prompts; equality holds in RE.
  EXPECT_LE(m.computed_tokens, m.prompt_tokens);
  if (mode == EngineMode::kRecompute) {
    EXPECT_EQ(m.computed_tokens, m.prompt_tokens);
  }
  // A single worker cannot be busy longer than the wall clock.
  EXPECT_LE(m.gpu_time(), m.makespan);
  // TTFT samples: one per turn, all non-negative.
  EXPECT_EQ(m.ttft_s.count(), total_turns);
  EXPECT_GE(m.ttft_s.min(), 0.0);
  // Store accounting: in CA mode every turn performs exactly one lookup.
  if (mode == EngineMode::kCachedAttention) {
    EXPECT_EQ(m.store.lookups, total_turns);
    EXPECT_EQ(m.store.hits() + m.store.misses, m.store.lookups);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsModesSeeds, SimConservation,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(EngineMode::kCachedAttention, EngineMode::kRecompute),
                       ::testing::Values(11ULL, 99ULL)));

}  // namespace
}  // namespace ca
