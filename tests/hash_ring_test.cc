// ConsistentHashRing tests: distribution balance over many sessions, and
// minimal key movement under shard membership changes (the property the
// router's KV locality rests on — DESIGN.md §16).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/cluster/hash_ring.h"

namespace ca {
namespace {

constexpr std::size_t kSessions = 1000;

std::unordered_map<SessionId, ShardId> Assignments(const ConsistentHashRing& ring) {
  std::unordered_map<SessionId, ShardId> out;
  for (SessionId s = 1; s <= kSessions; ++s) {
    out[s] = ring.ShardFor(s);
  }
  return out;
}

TEST(HashRingTest, DeterministicAssignment) {
  ConsistentHashRing a(64);
  ConsistentHashRing b(64);
  for (ShardId s = 0; s < 8; ++s) {
    a.AddShard(s);
    b.AddShard(s);
  }
  EXPECT_EQ(Assignments(a), Assignments(b));
}

TEST(HashRingTest, BalanceAcrossThousandSessions) {
  ConsistentHashRing ring(128);
  constexpr std::size_t kShards = 8;
  for (ShardId s = 0; s < kShards; ++s) {
    ring.AddShard(s);
  }
  std::map<ShardId, std::size_t> load;
  for (const auto& [session, shard] : Assignments(ring)) {
    load[shard] += 1;
  }
  ASSERT_EQ(load.size(), kShards) << "some shard owns no sessions at all";
  std::size_t lo = kSessions;
  std::size_t hi = 0;
  for (const auto& [shard, n] : load) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  // Perfect balance is 125 per shard; 128 vnodes keep the spread well under
  // 3x between the heaviest and lightest shard (empirically ~1.5x — the
  // bound leaves slack so a hash tweak doesn't flake the suite).
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 3.0)
      << "max=" << hi << " min=" << lo;
}

TEST(HashRingTest, ShardAdditionMovesBoundedFraction) {
  ConsistentHashRing ring(128);
  constexpr std::size_t kShards = 8;
  for (ShardId s = 0; s < kShards; ++s) {
    ring.AddShard(s);
  }
  const auto before = Assignments(ring);
  ring.AddShard(kShards);  // 9th shard
  const auto after = Assignments(ring);
  std::size_t moved = 0;
  for (const auto& [session, shard] : after) {
    if (before.at(session) != shard) {
      ++moved;
      // Consistent hashing only moves keys TO the new shard; any other
      // reassignment would be gratuitous disruption.
      EXPECT_EQ(shard, kShards) << "session " << session << " moved between old shards";
    }
  }
  // Expected movement is K/(N+1) ~ 111 of 1000; allow 2x slack.
  EXPECT_GT(moved, 0U);
  EXPECT_LT(moved, 2 * kSessions / (kShards + 1)) << "moved=" << moved;
}

TEST(HashRingTest, ShardRemovalMovesOnlyItsSessions) {
  ConsistentHashRing ring(128);
  constexpr std::size_t kShards = 8;
  for (ShardId s = 0; s < kShards; ++s) {
    ring.AddShard(s);
  }
  const auto before = Assignments(ring);
  constexpr ShardId kVictim = 3;
  ring.RemoveShard(kVictim);
  const auto after = Assignments(ring);
  std::size_t moved = 0;
  for (const auto& [session, shard] : after) {
    EXPECT_NE(shard, kVictim);
    if (before.at(session) != shard) {
      ++moved;
      // Only the removed shard's sessions change owner.
      EXPECT_EQ(before.at(session), kVictim);
    }
  }
  std::size_t victim_load = 0;
  for (const auto& [session, shard] : before) {
    victim_load += shard == kVictim ? 1 : 0;
  }
  EXPECT_EQ(moved, victim_load);
}

TEST(HashRingTest, AddAfterRemoveRestoresAssignment) {
  ConsistentHashRing ring(64);
  for (ShardId s = 0; s < 4; ++s) {
    ring.AddShard(s);
  }
  const auto before = Assignments(ring);
  ring.RemoveShard(2);
  ring.AddShard(2);
  EXPECT_EQ(Assignments(ring), before);
}

// Regression: ring points and session keys hash through the same mixer, so
// without domain separation session id r collides exactly with shard 0's
// replica-r point and ids 0..vnodes-1 all route to shard 0.
TEST(HashRingTest, SmallSessionIdsSpreadAcrossShards) {
  ConsistentHashRing ring(64);
  for (ShardId s = 0; s < 4; ++s) {
    ring.AddShard(s);
  }
  std::set<ShardId> used;
  for (SessionId id = 0; id < 64; ++id) {
    used.insert(ring.ShardFor(id));
  }
  EXPECT_GT(used.size(), 2U) << "consecutive small session ids collapsed onto "
                             << used.size() << " shard(s)";
}

TEST(HashRingTest, MembershipBookkeeping) {
  ConsistentHashRing ring(16);
  EXPECT_EQ(ring.shard_count(), 0U);
  ring.AddShard(5);
  ring.AddShard(5);  // idempotent
  EXPECT_EQ(ring.shard_count(), 1U);
  EXPECT_TRUE(ring.Contains(5));
  EXPECT_EQ(ring.ShardFor(12345), 5U);  // single shard owns everything
  ring.RemoveShard(7);  // absent: no-op
  ring.RemoveShard(5);
  EXPECT_EQ(ring.shard_count(), 0U);
}

}  // namespace
}  // namespace ca
