// Eval helper tests: continuation NLL, perplexity conversion, next-token
// prediction and argmax agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "src/model/eval.h"
#include "src/model/transformer.h"
#include "src/tensor/ops.h"

namespace ca {
namespace {

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

TEST(EvalTest, NllMatchesManualComputation) {
  const Transformer model(ModelConfig::Tiny(), 3);
  const auto tokens = MakeTokens(6, 1, model.config().vocab_size);

  // Manual: forward, accumulate log-softmax of each target.
  KvCache manual_cache = model.MakeCache(PeMode::kDecoupled);
  const Tensor logits = model.Forward(tokens, manual_cache);
  double manual = 0.0;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const std::span<const float> row{logits.row(i), model.config().vocab_size};
    manual += LogSumExp(row) - row[static_cast<std::size_t>(tokens[i + 1])];
  }
  manual /= static_cast<double>(tokens.size() - 1);

  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const double nll = ContinuationNll(model, tokens, cache);
  EXPECT_NEAR(nll, manual, 1e-6);
  EXPECT_EQ(cache.seq_len(), tokens.size());
}

TEST(EvalTest, RandomModelNllNearUniform) {
  const Transformer model(ModelConfig::Tiny(), 5);
  const auto tokens = MakeTokens(40, 2, model.config().vocab_size);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const double nll = ContinuationNll(model, tokens, cache);
  EXPECT_NEAR(nll, std::log(static_cast<double>(model.config().vocab_size)), 1.0);
  EXPECT_GT(nll, 0.0);
}

TEST(EvalTest, PerplexityIsExpOfNll) {
  EXPECT_DOUBLE_EQ(NllToPerplexity(0.0), 1.0);
  EXPECT_NEAR(NllToPerplexity(std::log(64.0)), 64.0, 1e-9);
}

TEST(EvalTest, PredictNextMatchesArgmaxOfForward) {
  const Transformer model(ModelConfig::Tiny(), 7);
  const auto probe = MakeTokens(4, 3, model.config().vocab_size);

  KvCache c1 = model.MakeCache(PeMode::kDecoupled);
  const Tensor logits = model.Forward(probe, c1);
  const TokenId expected = model.Argmax(logits, probe.size() - 1);

  KvCache c2 = model.MakeCache(PeMode::kDecoupled);
  EXPECT_EQ(PredictNext(model, probe, c2), expected);
}

TEST(EvalTest, AgreementBoundsAndIdentity) {
  const Transformer model(ModelConfig::Tiny(), 9);
  const auto tokens = MakeTokens(8, 4, model.config().vocab_size);
  KvCache c1 = model.MakeCache(PeMode::kDecoupled);
  const Tensor logits = model.Forward(tokens, c1);
  EXPECT_DOUBLE_EQ(ArgmaxAgreement(model, logits, logits), 1.0);

  // Negated logits invert the ranking; agreement should collapse.
  Tensor negated = logits.Clone();
  for (std::size_t i = 0; i < negated.numel(); ++i) {
    negated[i] = -negated[i];
  }
  EXPECT_LT(ArgmaxAgreement(model, logits, negated), 0.5);
}

TEST(EvalDeathTest, NllNeedsAtLeastTwoTokens) {
  const Transformer model(ModelConfig::Tiny(), 3);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const std::vector<TokenId> one = {1};
  EXPECT_DEATH((void)ContinuationNll(model, one, cache), "CA_CHECK failed");
}

}  // namespace
}  // namespace ca
