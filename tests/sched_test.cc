// Scheduler tests: FIFO job queue, look-ahead hints, continuous batcher.
#include <gtest/gtest.h>

#include "src/sched/batcher.h"
#include "src/sched/job.h"
#include "src/sched/job_queue.h"

namespace ca {
namespace {

Job MakeJob(JobId id, SessionId session) {
  Job j;
  j.id = id;
  j.session = session;
  j.new_tokens = 10;
  j.history_tokens = 90;
  j.decode_tokens = 5;
  return j;
}

TEST(JobTest, FullPromptIsHistoryPlusNew) {
  const Job j = MakeJob(1, 2);
  EXPECT_EQ(j.full_prompt_tokens(), 100U);
}

TEST(JobQueueTest, FifoOrder) {
  JobQueue q;
  q.Push(MakeJob(1, 10));
  q.Push(MakeJob(2, 11));
  q.Push(MakeJob(3, 12));
  EXPECT_EQ(q.size(), 3U);
  EXPECT_EQ(q.Peek()->id, 1ULL);
  EXPECT_EQ(q.Pop()->id, 1ULL);
  EXPECT_EQ(q.Pop()->id, 2ULL);
  EXPECT_EQ(q.Pop()->id, 3ULL);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.Peek(), nullptr);
}

TEST(JobQueueTest, SessionSnapshotInOrder) {
  JobQueue q;
  q.Push(MakeJob(1, 30));
  q.Push(MakeJob(2, 20));
  q.Push(MakeJob(3, 30));
  EXPECT_EQ(q.SessionSnapshot(), (std::vector<SessionId>{30, 20, 30}));
}

TEST(JobQueueTest, HintsRespectWindowAndEarliestUse) {
  JobQueue q;
  q.Push(MakeJob(1, 5));
  q.Push(MakeJob(2, 6));
  q.Push(MakeJob(3, 5));  // session 5 again, later
  q.Push(MakeJob(4, 7));
  const SchedulerHints hints = q.HintsForWindow(3);
  EXPECT_EQ(hints.NextUse(5), 0U);
  EXPECT_EQ(hints.NextUse(6), 1U);
  EXPECT_FALSE(hints.InWindow(7));  // outside window of 3
}

TEST(BatcherTest, AdmitAndCapacity) {
  ContinuousBatcher batcher(2);
  EXPECT_TRUE(batcher.HasSlot());
  batcher.Admit(MakeJob(1, 10), 3);
  batcher.Admit(MakeJob(2, 11), 1);
  EXPECT_FALSE(batcher.HasSlot());
  EXPECT_EQ(batcher.active(), 2U);
  EXPECT_EQ(batcher.free_slots(), 0U);
}

TEST(BatcherTest, StepCompletesJobsIndividually) {
  ContinuousBatcher batcher(4);
  batcher.Admit(MakeJob(1, 10), 2);
  batcher.Admit(MakeJob(2, 11), 1);
  auto done = batcher.StepIteration();
  ASSERT_EQ(done.size(), 1U);
  EXPECT_EQ(done[0].id, 2ULL);
  EXPECT_EQ(batcher.active(), 1U);
  EXPECT_TRUE(batcher.HasSlot());  // continuous batching: slot freed mid-flight
  done = batcher.StepIteration();
  ASSERT_EQ(done.size(), 1U);
  EXPECT_EQ(done[0].id, 1ULL);
  EXPECT_TRUE(batcher.empty());
}

TEST(BatcherTest, NewJobJoinsRunningBatch) {
  ContinuousBatcher batcher(4);
  batcher.Admit(MakeJob(1, 10), 3);
  (void)batcher.StepIteration();
  batcher.Admit(MakeJob(2, 11), 2);  // joins after one iteration
  auto done = batcher.StepIteration();
  EXPECT_TRUE(done.empty());  // job1 has 1 left, job2 has 1 left
  done = batcher.StepIteration();
  EXPECT_EQ(done.size(), 2U);
}

TEST(BatcherTest, ActiveJobsLists) {
  ContinuousBatcher batcher(4);
  batcher.Admit(MakeJob(7, 10), 2);
  const auto active = batcher.ActiveJobs();
  ASSERT_EQ(active.size(), 1U);
  EXPECT_EQ(active[0], 7ULL);
}

TEST(BatcherTest, TryAdmitShedsWhenFullInsteadOfAborting) {
  ContinuousBatcher batcher(1);
  EXPECT_TRUE(batcher.TryAdmit(MakeJob(1, 10), 2));
  EXPECT_FALSE(batcher.TryAdmit(MakeJob(2, 11), 1));  // full: shed, don't die
  EXPECT_EQ(batcher.active(), 1U);
  (void)batcher.StepIteration();  // job 1: 1 iteration left
  auto done = batcher.StepIteration();
  ASSERT_EQ(done.size(), 1U);
  EXPECT_EQ(done[0].id, 1ULL);
  EXPECT_TRUE(batcher.TryAdmit(MakeJob(2, 11), 1));  // slot freed
}

TEST(BatcherTest, StepCompletesInAdmissionOrder) {
  // Ids chosen to scramble under typical unordered_map hashing; the batcher
  // must return completions in admission order regardless.
  ContinuousBatcher batcher(8);
  const std::vector<JobId> admitted = {23, 7, 101, 4, 55};
  for (const JobId id : admitted) {
    batcher.Admit(MakeJob(id, 10 + id), 1);
  }
  const auto done = batcher.StepIteration();
  ASSERT_EQ(done.size(), admitted.size());
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    EXPECT_EQ(done[i].id, admitted[i]) << "completion " << i;
  }
}

TEST(BatcherTest, ActiveJobsListsInAdmissionOrder) {
  ContinuousBatcher batcher(8);
  const std::vector<JobId> admitted = {42, 3, 77, 12};
  for (const JobId id : admitted) {
    batcher.Admit(MakeJob(id, 10 + id), 2);
  }
  EXPECT_EQ(batcher.ActiveJobs(), admitted);
  // Completion frees a slot; re-admission goes to the back of the order.
  (void)batcher.StepIteration();
  (void)batcher.StepIteration();
  EXPECT_TRUE(batcher.empty());
  batcher.Admit(MakeJob(3, 13), 1);
  batcher.Admit(MakeJob(42, 52), 1);
  EXPECT_EQ(batcher.ActiveJobs(), (std::vector<JobId>{3, 42}));
}

TEST(JobQueueTest, PopFirstRunnableSkipsBlockedSessions) {
  JobQueue q;
  q.Push(MakeJob(1, 5));  // session 5, earliest
  q.Push(MakeJob(2, 6));
  q.Push(MakeJob(3, 5));  // session 5 again
  // Session 5 "in flight": the earliest runnable job is job 2.
  const auto not5 = [](const Job& j) { return j.session != 5; };
  auto job = q.PopFirstRunnable(not5);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, 2ULL);
  // Remaining jobs keep queue order, so session 5's jobs pop FIFO.
  EXPECT_FALSE(q.HasRunnable(not5));
  auto j1 = q.PopFirstRunnable([](const Job&) { return true; });
  auto j3 = q.PopFirstRunnable([](const Job&) { return true; });
  ASSERT_TRUE(j1.has_value());
  ASSERT_TRUE(j3.has_value());
  EXPECT_EQ(j1->id, 1ULL);
  EXPECT_EQ(j3->id, 3ULL);
  EXPECT_FALSE(q.PopFirstRunnable([](const Job&) { return true; }).has_value());
}

TEST(JobQueueTest, WindowSnapshotTruncatesHeadFirst) {
  JobQueue q;
  q.Push(MakeJob(1, 30));
  q.Push(MakeJob(2, 20));
  q.Push(MakeJob(3, 10));
  EXPECT_EQ(q.WindowSnapshot(2), (std::vector<SessionId>{30, 20}));
  EXPECT_EQ(q.WindowSnapshot(9), (std::vector<SessionId>{30, 20, 10}));
  EXPECT_TRUE(q.WindowSnapshot(0).empty());
}

TEST(BatcherDeathTest, OverfullAborts) {
  ContinuousBatcher batcher(1);
  batcher.Admit(MakeJob(1, 10), 1);
  EXPECT_DEATH(batcher.Admit(MakeJob(2, 11), 1), "batch full");
}

TEST(BatcherDeathTest, DuplicateJobAborts) {
  ContinuousBatcher batcher(2);
  batcher.Admit(MakeJob(1, 10), 1);
  EXPECT_DEATH(batcher.Admit(MakeJob(1, 10), 1), "already active");
}

}  // namespace
}  // namespace ca
