// Durability and crash-recovery tests (DESIGN.md §15): a durable
// AttentionStore journals every record mutation and AttentionStore::Open
// rebuilds the warm disk tier after an unclean process death.
//  * MetaStore round-trips its record table through close/reopen, truncates
//    torn journal tails, bounds the journal via compaction, resolves
//    block-reuse conflicts in journal order, and refuses journals written
//    under a different block size;
//  * a durable store requires an explicit stable disk_path and a matching
//    journal/payload pair (store id, superblocks) — mismatches fail Open
//    with kFailedPrecondition instead of serving garbage;
//  * seeded crash schedules (journal append, torn append, fsync, payload
//    block write, compaction) freeze all file writes mid-run — the
//    simulated SIGKILL — and every reopen must pass CheckInvariants and
//    serve only bitwise-faithful payloads or clean misses;
//  * a kill-restart engine soak proves recovered sessions resume with
//    bitwise-identical replies (greedy decode) or degrade to a clean
//    recompute — never a wrong token.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/store/attention_store.h"
#include "src/store/meta_store.h"

namespace ca {
namespace {

const SchedulerHints kNoHints;

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".meta").c_str());
  std::remove((path + ".meta.tmp").c_str());
}

std::string StorePath(const std::string& name) {
  const std::string path = testing::TempDir() + "/ca_recovery_" + name + ".blocks";
  RemoveStoreFiles(path);
  return path;
}

void CopyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(in.good());
  ASSERT_TRUE(out.good());
  out << in.rdbuf();
}

// Version-stamped payload: byte-for-byte reproducible from (session,
// version, size), so a recovered payload can be matched against the exact
// bytes that were put.
std::vector<std::uint8_t> SessionPayload(SessionId session, std::uint64_t version,
                                         std::size_t bytes) {
  Rng rng(session * 7919 + version);
  std::vector<std::uint8_t> out(bytes);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.NextBounded(256));
  }
  return out;
}

// --- MetaStore ------------------------------------------------------------

MetaStore::Options DefaultMetaOptions() { return MetaStore::Options{}; }

MetaRecord DiskRecord(SessionId session, std::uint64_t bytes, std::vector<BlockId> blocks,
                      std::uint64_t token_count = 0) {
  MetaRecord r;
  r.session = session;
  r.tier = Tier::kDisk;
  r.bytes = bytes;
  r.token_count = token_count;
  r.blocks = std::move(blocks);
  return r;
}

TEST(MetaStore, RoundTripsRecordsAcrossReopen) {
  const std::string path = StorePath("meta_roundtrip") + ".meta";
  std::uint64_t store_id = 0;
  {
    auto opened = MetaStore::Open(path, KiB(4), /*fresh_store_id=*/77, DefaultMetaOptions());
    ASSERT_TRUE(opened.ok()) << opened.status();
    MetaStore& meta = **opened;
    EXPECT_FALSE(meta.recovered_existing());
    store_id = meta.store_id();
    EXPECT_EQ(store_id, 77ULL);
    MetaRecord a = DiskRecord(1, KiB(8), {0, 1}, /*token_count=*/3);
    a.last_access = 10;
    a.insert_seq = 1;
    a.checksum = 0xabcd;
    a.user_meta = {1, 2, 3, 4};
    ASSERT_TRUE(meta.Upsert(a).ok());
    MetaRecord b = a;
    b.session = 2;
    b.blocks = {2, 3};
    b.insert_seq = 2;
    ASSERT_TRUE(meta.Upsert(b).ok());
    MetaRecord c = a;
    c.session = 3;
    c.blocks = {4};
    ASSERT_TRUE(meta.Upsert(c).ok());
    ASSERT_TRUE(meta.Erase(3).ok());
  }
  auto reopened = MetaStore::Open(path, KiB(4), /*fresh_store_id=*/99, DefaultMetaOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  MetaStore& meta = **reopened;
  EXPECT_TRUE(meta.recovered_existing());
  EXPECT_EQ(meta.store_id(), store_id);  // keeps the stored id, not the fresh one
  ASSERT_EQ(meta.live().size(), 2U);
  const MetaRecord& a = meta.live().at(1);
  EXPECT_EQ(a.tier, Tier::kDisk);
  EXPECT_EQ(a.bytes, KiB(8));
  EXPECT_EQ(a.token_count, 3ULL);
  EXPECT_EQ(a.checksum, 0xabcdULL);
  EXPECT_EQ(a.blocks, (std::vector<BlockId>{0, 1}));
  EXPECT_EQ(a.user_meta, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(meta.live().at(2).blocks, (std::vector<BlockId>{2, 3}));
  EXPECT_EQ(meta.recovery_stats().journal_entries_replayed, 4ULL);
}

TEST(MetaStore, MemoryTierRecordsDieWithTheProcess) {
  const std::string path = StorePath("meta_volatile") + ".meta";
  {
    auto opened = MetaStore::Open(path, KiB(4), 1, DefaultMetaOptions());
    ASSERT_TRUE(opened.ok());
    MetaRecord r = DiskRecord(9, KiB(4), {});
    r.tier = Tier::kDram;
    ASSERT_TRUE((*opened)->Upsert(r).ok());
  }
  auto reopened = MetaStore::Open(path, KiB(4), 1, DefaultMetaOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->live().empty());
  EXPECT_EQ((*reopened)->recovery_stats().records_discarded_volatile, 1ULL);
}

TEST(MetaStore, TornTailIsTruncatedNotFatal) {
  const std::string path = StorePath("meta_torn") + ".meta";
  std::uint64_t clean_bytes = 0;
  {
    auto opened = MetaStore::Open(path, KiB(4), 1, DefaultMetaOptions());
    ASSERT_TRUE(opened.ok());
    for (SessionId s = 1; s <= 3; ++s) {
      ASSERT_TRUE((*opened)->Upsert(DiskRecord(s, KiB(4), {static_cast<BlockId>(s)})).ok());
    }
    clean_bytes = (*opened)->journal_bytes();
  }
  {
    // A crash mid-append leaves a partial frame at the tail; random bytes
    // model the worst case (no recognisable header at all).
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const char junk[] = "\x13garbage-that-is-not-a-frame\xff\x00\x7f";
    f.write(junk, sizeof(junk));
  }
  auto reopened = MetaStore::Open(path, KiB(4), 1, DefaultMetaOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  MetaStore& meta = **reopened;
  EXPECT_EQ(meta.live().size(), 3U);  // every clean entry survives
  EXPECT_EQ(meta.journal_bytes(), clean_bytes);  // the torn tail is gone
  EXPECT_EQ(meta.recovery_stats().records_discarded_torn, 1ULL);
  EXPECT_GT(meta.recovery_stats().torn_tail_bytes, 0ULL);
  // A second reopen sees a clean file: the truncation actually happened.
  ASSERT_TRUE(meta.Upsert(DiskRecord(4, KiB(4), {9})).ok());
}

TEST(MetaStore, CompactionBoundsTheJournal) {
  const std::string path = StorePath("meta_compact") + ".meta";
  MetaStore::Options options;
  options.compact_threshold_bytes = KiB(1);
  {
    auto opened = MetaStore::Open(path, KiB(4), 1, options);
    ASSERT_TRUE(opened.ok());
    for (std::uint64_t v = 1; v <= 200; ++v) {
      ASSERT_TRUE((*opened)->Upsert(DiskRecord(5, KiB(4), {1}, /*token_count=*/v)).ok());
    }
    // 200 appends at >40 bytes each vastly exceed the threshold; only
    // compaction can keep the file near one live record.
    EXPECT_LT((*opened)->journal_bytes(), KiB(2));
  }
  auto reopened = MetaStore::Open(path, KiB(4), 1, options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->live().size(), 1U);
  EXPECT_EQ((*reopened)->live().at(5).token_count, 200ULL);  // last write wins
}

TEST(MetaStore, BlockReuseConflictDropsTheOlderRecord) {
  const std::string path = StorePath("meta_conflict") + ".meta";
  {
    auto opened = MetaStore::Open(path, KiB(4), 1, DefaultMetaOptions());
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE((*opened)->Upsert(DiskRecord(1, KiB(8), {1, 2})).ok());
    // In a live store an erase frame would land between these; losing it to
    // a crash window is exactly the case replay must untangle.
    ASSERT_TRUE((*opened)->Upsert(DiskRecord(2, KiB(8), {2, 3})).ok());
  }
  auto reopened = MetaStore::Open(path, KiB(4), 1, DefaultMetaOptions());
  ASSERT_TRUE(reopened.ok());
  MetaStore& meta = **reopened;
  ASSERT_EQ(meta.live().size(), 1U);  // the newer claim to block 2 wins
  EXPECT_TRUE(meta.live().contains(2));
  EXPECT_EQ(meta.recovery_stats().records_conflict_dropped, 1ULL);
}

TEST(MetaStore, BlockSizeMismatchFailsOpen) {
  const std::string path = StorePath("meta_blocksize") + ".meta";
  {
    auto opened = MetaStore::Open(path, KiB(4), 1, DefaultMetaOptions());
    ASSERT_TRUE(opened.ok());
  }
  auto reopened = MetaStore::Open(path, KiB(8), 1, DefaultMetaOptions());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MetaStore, CrashDuringCompactionKeepsTheOldJournal) {
  const std::string path = StorePath("meta_compact_crash") + ".meta";
  auto crash = std::make_shared<CrashSwitch>();
  MetaStore::Options options;
  options.fault.crash = crash;
  options.fault.crash_on_compact = 1;
  {
    auto opened = MetaStore::Open(path, KiB(4), 1, options);
    ASSERT_TRUE(opened.ok());
    MetaStore& meta = **opened;
    ASSERT_TRUE(meta.Upsert(DiskRecord(1, KiB(4), {1})).ok());
    ASSERT_TRUE(meta.Upsert(DiskRecord(2, KiB(4), {2})).ok());
    ASSERT_TRUE(meta.Compact().ok());  // dies after the snapshot, before rename
    EXPECT_TRUE(crash->frozen.load());
    // Post-crash mutations reach only the in-memory mirror, never the file.
    ASSERT_TRUE(meta.Upsert(DiskRecord(3, KiB(4), {3})).ok());
    EXPECT_EQ(meta.live().size(), 3U);
  }
  auto reopened = MetaStore::Open(path, KiB(4), 1, MetaStore::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  MetaStore& meta = **reopened;
  EXPECT_EQ(meta.live().size(), 2U);  // the pre-crash journal, bit for bit
  EXPECT_TRUE(meta.live().contains(1));
  EXPECT_TRUE(meta.live().contains(2));
}

// --- AttentionStore: durable open -----------------------------------------

StoreConfig DurableConfig(const std::string& path) {
  StoreConfig c;
  c.hbm_capacity = 0;
  c.dram_capacity = 0;  // disk-only: every record is durable state
  c.disk_capacity = MiB(2);
  c.block_bytes = KiB(4);
  c.real_payloads = true;
  c.durable = true;
  c.disk_path = path;
  c.audit = true;
  c.io_retry_backoff_us = 0;
  return c;
}

TEST(DurableStore, RequiresAnExplicitStablePath) {
  StoreConfig c = DurableConfig("");
  auto opened = AttentionStore::Open(c);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST(DurableStore, RequiresRealPayloads) {
  StoreConfig c = DurableConfig(StorePath("durable_capacity_only"));
  c.real_payloads = false;
  auto opened = AttentionStore::Open(c);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST(DurableStore, CleanReopenServesTheWarmTier) {
  const std::string path = StorePath("durable_clean_reopen");
  std::map<SessionId, std::vector<std::uint8_t>> expected;
  {
    auto opened = AttentionStore::Open(DurableConfig(path));
    ASSERT_TRUE(opened.ok()) << opened.status();
    AttentionStore store = std::move(*opened);
    for (SessionId s = 1; s <= 5; ++s) {
      auto payload = SessionPayload(s, /*version=*/1, KiB(4) * s);
      const std::vector<std::uint8_t> meta = {static_cast<std::uint8_t>(s), 0xee};
      ASSERT_TRUE(store.Put(s, payload.size(), /*token_count=*/s, payload,
                            /*now=*/static_cast<SimTime>(s), kNoHints, meta)
                      .ok());
      expected[s] = std::move(payload);
    }
    store.CheckInvariants();
  }
  auto reopened = AttentionStore::Open(DurableConfig(path));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  AttentionStore store = std::move(*reopened);
  store.CheckInvariants();
  EXPECT_EQ(store.recovery_stats().records_recovered, 5ULL);
  EXPECT_EQ(store.RecordCount(), 5U);
  for (const auto& [s, payload] : expected) {
    EXPECT_EQ(store.Lookup(s), Tier::kDisk);
    const std::vector<std::uint8_t>* meta = store.UserMeta(s);
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(*meta, (std::vector<std::uint8_t>{static_cast<std::uint8_t>(s), 0xee}));
    auto read = store.ReadPayload(s);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(*read, payload) << "session " << s;
  }
}

TEST(DurableStore, JournalPayloadStoreIdMismatchFailsOpen) {
  const std::string path_a = StorePath("durable_id_a");
  const std::string path_b = StorePath("durable_id_b");
  for (const std::string& path : {path_a, path_b}) {
    auto opened = AttentionStore::Open(DurableConfig(path));
    ASSERT_TRUE(opened.ok()) << opened.status();
    AttentionStore store = std::move(*opened);
    auto payload = SessionPayload(1, 1, KiB(4));
    ASSERT_TRUE(store.Put(1, payload.size(), 1, payload, 1, kNoHints).ok());
  }
  // A's journal over B's payload file: two different stores glued together.
  CopyFile(path_a + ".meta", path_b + ".meta");
  auto opened = AttentionStore::Open(DurableConfig(path_b));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DurableStore, MissingPayloadSuperblockFailsOpen) {
  const std::string path = StorePath("durable_no_superblock");
  {
    auto opened = AttentionStore::Open(DurableConfig(path));
    ASSERT_TRUE(opened.ok()) << opened.status();
    AttentionStore store = std::move(*opened);
    auto payload = SessionPayload(1, 1, KiB(4));
    ASSERT_TRUE(store.Put(1, payload.size(), 1, payload, 1, kNoHints).ok());
  }
  // Journal present but the payload file is gone/empty: refusing is the
  // only honest answer (the journal promises records the device lost).
  std::ofstream(path, std::ios::binary | std::ios::trunc).close();
  auto opened = AttentionStore::Open(DurableConfig(path));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DurableStore, RecoverVerifyPayloadsDropsCorruptedRecords) {
  const std::string path = StorePath("durable_verify");
  std::vector<std::uint8_t> expected_keep;
  {
    auto opened = AttentionStore::Open(DurableConfig(path));
    ASSERT_TRUE(opened.ok()) << opened.status();
    AttentionStore store = std::move(*opened);
    auto victim = SessionPayload(1, 1, KiB(8));
    expected_keep = SessionPayload(2, 1, KiB(8));
    ASSERT_TRUE(store.Put(1, victim.size(), 1, victim, 1, kNoHints).ok());
    ASSERT_TRUE(store.Put(2, expected_keep.size(), 1, expected_keep, 2, kNoHints).ok());
  }
  {
    // Flip one byte of session 1's first block (the first data block: puts
    // allocate front-to-back on a fresh store; data starts after the 4 KiB
    // superblock).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(KiB(4)) + 17);
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(KiB(4)) + 17);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(KiB(4)) + 17);
    f.write(&byte, 1);
  }
  StoreConfig c = DurableConfig(path);
  c.recover_verify_payloads = true;
  auto reopened = AttentionStore::Open(c);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  AttentionStore store = std::move(*reopened);
  store.CheckInvariants();
  EXPECT_EQ(store.Lookup(1), Tier::kNone);  // corruption → clean miss
  EXPECT_EQ(store.recovery_stats().records_reconciled_missing, 1ULL);
  ASSERT_EQ(store.Lookup(2), Tier::kDisk);
  auto read = store.ReadPayload(2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, expected_keep);
}

// --- kill-restart crash schedules -----------------------------------------

// Drives a durable store through a deterministic put/remove mix until the
// armed crash schedule freezes all file writes (the simulated SIGKILL),
// keeps going (post-crash mutations must not reach the files), abandons the
// store, reopens, and verifies the recovered state is internally consistent
// and every payload is bitwise one of the versions actually put.
void RunCrashPointSoak(const std::string& name,
                       const std::function<void(StoreConfig&)>& arm_schedule) {
  SCOPED_TRACE(name);
  const std::string path = StorePath("crash_" + name);
  auto crash = std::make_shared<CrashSwitch>();
  // (session, version) → the exact bytes handed to Put.
  std::map<std::pair<SessionId, std::uint64_t>, std::vector<std::uint8_t>> put_log;
  {
    StoreConfig c = DurableConfig(path);
    c.meta_fault.crash = crash;
    arm_schedule(c);
    auto opened = AttentionStore::Open(c);
    ASSERT_TRUE(opened.ok()) << opened.status();
    AttentionStore store = std::move(*opened);
    Rng rng(1234);
    std::unordered_map<SessionId, std::uint64_t> version;
    for (int step = 0; step < 120; ++step) {
      const SessionId s = 1 + static_cast<SessionId>(rng.NextBounded(8));
      const std::uint64_t roll = rng.NextBounded(10);
      if (roll < 8) {
        const std::uint64_t v = ++version[s];
        auto payload = SessionPayload(s, v, KiB(4) * (1 + rng.NextBounded(4)));
        if (store.Put(s, payload.size(), v, payload, static_cast<SimTime>(step + 1), kNoHints)
                .ok()) {
          put_log[{s, v}] = std::move(payload);
        }
      } else if (roll == 8) {
        store.Remove(s);
      } else if (store.Lookup(s) != Tier::kNone) {
        (void)store.ReadPayload(s);
      }
    }
    store.CheckInvariants();  // the live store never corrupts, crash or not
    EXPECT_TRUE(crash->frozen.load()) << "crash schedule never fired";
  }  // abandoned: frozen writes mean the files look SIGKILLed

  auto reopened = AttentionStore::Open(DurableConfig(path));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  AttentionStore store = std::move(*reopened);
  store.CheckInvariants();
  for (const SessionId s : store.SessionsInTier(Tier::kDisk)) {
    const auto info = store.GetInfo(s);
    ASSERT_TRUE(info.has_value());
    auto read = store.ReadPayload(s);
    if (!read.ok()) {
      // Reconciliation could not vouch for the bytes: a clean miss. The
      // store drops the record so the miss is permanent.
      EXPECT_EQ(store.Lookup(s), Tier::kNone);
      continue;
    }
    // token_count doubles as the version stamp, so the recovered record
    // names exactly which put it claims to be — and the bytes must match
    // that put bit for bit.
    const auto it = put_log.find({s, info->token_count});
    ASSERT_NE(it, put_log.end())
        << "session " << s << " recovered a version that was never put";
    EXPECT_EQ(*read, it->second) << "session " << s << " version " << info->token_count;
  }
  store.CheckInvariants();
}

TEST(CrashRecovery, CrashAtJournalAppend) {
  RunCrashPointSoak("journal_append",
                    [](StoreConfig& c) { c.meta_fault.crash_after_appends = 40; });
}

TEST(CrashRecovery, CrashWithTornJournalAppend) {
  RunCrashPointSoak("journal_torn", [](StoreConfig& c) {
    c.meta_fault.crash_after_appends = 40;
    c.meta_fault.torn_append_bytes = 7;  // the frame header lands cut short
  });
}

TEST(CrashRecovery, CrashAtJournalFsync) {
  RunCrashPointSoak("journal_fsync", [](StoreConfig& c) {
    c.meta_fsync = MetaFsyncPolicy::kAlways;
    c.meta_fault.crash_after_fsyncs = 40;
  });
}

TEST(CrashRecovery, CrashDuringPayloadBlockWrite) {
  RunCrashPointSoak("payload_write",
                    [](StoreConfig& c) { c.disk_crash_after_block_writes = 60; });
}

TEST(CrashRecovery, CrashDuringCompaction) {
  RunCrashPointSoak("compaction", [](StoreConfig& c) {
    c.meta_compact_threshold = KiB(4);
    c.meta_fault.crash_on_compact = 1;
  });
}

// --- engine kill-restart ---------------------------------------------------

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

EngineOptions DurableEngineOptions(const std::string& path) {
  EngineOptions options;
  options.store = DurableConfig(path);
  options.store.disk_capacity = MiB(32);
  options.store.block_bytes = KiB(16);
  return options;
}

// A serving process dies mid-save (simulated SIGKILL) and restarts against
// the same durable store. Every recovered session must resume from a state
// the reference run actually passed through, and replaying the remaining
// turns must reproduce the reference replies token for token — recovery is
// allowed to lose turns (clean misses, recomputed), never to change them.
TEST(CrashRecovery, EngineKillRestartServesBitwiseIdenticalReplies) {
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kTurns = 3;
  constexpr std::size_t kReplyBudget = 5;
  Transformer model(ModelConfig::Mini(), 51);

  const auto turn_input = [&](std::size_t turn) {
    return MakeTokens(6 + turn, 100 + turn, model.config().vocab_size);
  };

  // Reference run: same durable configuration, no crash.
  const std::string ref_path = StorePath("engine_reference");
  // replies[t][s], histories[t][s] = state after turn t (0-based).
  std::vector<std::unordered_map<SessionId, std::vector<TokenId>>> replies(kTurns);
  std::vector<std::unordered_map<SessionId, std::vector<TokenId>>> histories(kTurns);
  {
    auto engine = CachedAttentionEngine::Create(&model, DurableEngineOptions(ref_path));
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (std::size_t t = 0; t < kTurns; ++t) {
      for (SessionId s = 1; s <= kSessions; ++s) {
        auto r = (*engine)->Converse(s, turn_input(t), kReplyBudget);
        ASSERT_TRUE(r.ok()) << r.status();
        replies[t][s] = r->reply;
        histories[t][s] = (*engine)->SessionHistory(s);
      }
    }
  }

  // Crash run: the payload-write schedule fires partway through the saves.
  const std::string crash_path = StorePath("engine_crash");
  auto crash = std::make_shared<CrashSwitch>();
  {
    EngineOptions options = DurableEngineOptions(crash_path);
    options.store.meta_fault.crash = crash;
    options.store.disk_crash_after_block_writes = 30;
    auto engine = CachedAttentionEngine::Create(&model, options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (std::size_t t = 0; t < kTurns; ++t) {
      for (SessionId s = 1; s <= kSessions; ++s) {
        // The live process never notices the dying device: replies stay
        // identical even while saves silently stop landing.
        auto r = (*engine)->Converse(s, turn_input(t), kReplyBudget);
        ASSERT_TRUE(r.ok()) << r.status();
        EXPECT_EQ(r->reply, replies[t][s]) << "live turn " << t << " session " << s;
      }
    }
    EXPECT_TRUE(crash->frozen.load()) << "crash schedule never fired";
  }  // abandoned mid-flight: on-disk state is whatever landed before the freeze

  // Restart against the same files.
  auto restarted = CachedAttentionEngine::Create(&model, DurableEngineOptions(crash_path));
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  CachedAttentionEngine& engine = **restarted;
  for (SessionId s = 1; s <= kSessions; ++s) {
    const std::vector<TokenId> recovered = engine.SessionHistory(s);
    // The recovered state must be one the reference run passed through:
    // empty (clean miss) or the exact history after some completed turn.
    std::size_t resume_turn = kTurns + 1;
    if (recovered.empty()) {
      resume_turn = 0;
    } else {
      for (std::size_t t = 0; t < kTurns; ++t) {
        if (recovered == histories[t][s]) {
          resume_turn = t + 1;
          break;
        }
      }
    }
    ASSERT_LE(resume_turn, kTurns)
        << "session " << s << " recovered a history the reference never produced";
    // Replay the lost turns: greedy decode over identical state must
    // reproduce the reference replies bit for bit, whether the KV cache was
    // recovered (reuse) or recomputed from the restored history (miss).
    for (std::size_t t = resume_turn; t < kTurns; ++t) {
      auto r = engine.Converse(s, turn_input(t), kReplyBudget);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->reply, replies[t][s]) << "replayed turn " << t << " session " << s;
    }
    EXPECT_EQ(engine.SessionHistory(s), histories[kTurns - 1][s]) << "session " << s;
  }
}

}  // namespace
}  // namespace ca
