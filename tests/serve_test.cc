// ServingLoop tests: the JobQueue → ContinuousBatcher → engine runtime.
//
//   * per-session ordering under contention (turns of one conversation are
//     served in submission order even with more workers than sessions);
//   * graceful drain with a non-empty queue (accepted work is never lost);
//   * backpressure (TrySubmit sheds, Submit grows the queue, nothing aborts);
//   * bitwise-identical per-session replies for 1-worker vs N-worker runs
//     while the background prefetcher promotes disk-resident KV caches;
//   * a seeded fault-injection serving soak over FaultInjectingBlockStorage.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/serve/serving_loop.h"

namespace ca {
namespace {

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

EngineOptions DefaultEngineOptions() {
  EngineOptions options;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(256);
  options.store.block_bytes = KiB(64);
  options.store.audit = true;  // abort at the mutation that corrupts accounting
  return options;
}

// A deterministic workload: `turns` waves over `sessions` conversations,
// submitted wave-interleaved (s0t1, s1t1, ..., s0t2, s1t2, ...).
std::vector<ServeRequest> BuildWorkload(std::size_t sessions, std::size_t turns,
                                        std::size_t vocab,
                                        std::size_t max_reply_tokens = 4) {
  std::vector<ServeRequest> out;
  out.reserve(sessions * turns);
  for (std::size_t t = 0; t < turns; ++t) {
    for (std::size_t s = 0; s < sessions; ++s) {
      ServeRequest req;
      req.session = static_cast<SessionId>(s);
      req.input = MakeTokens(6 + (s + t) % 5, 1000 + s * 100 + t, vocab);
      req.max_reply_tokens = max_reply_tokens;
      out.push_back(std::move(req));
    }
  }
  return out;
}

// (session, turn_index) -> reply tokens.
using ReplyMap = std::map<std::pair<SessionId, std::uint32_t>, std::vector<TokenId>>;

ReplyMap ToReplyMap(const std::vector<ServeReply>& replies) {
  ReplyMap out;
  for (const ServeReply& r : replies) {
    EXPECT_TRUE(r.status.ok()) << "job " << r.job << ": " << r.status;
    const bool inserted =
        out.emplace(std::make_pair(r.session, r.turn_index), r.turn.reply).second;
    EXPECT_TRUE(inserted) << "duplicate (session " << r.session << ", turn "
                          << r.turn_index << ")";
  }
  return out;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : model_(ModelConfig::Mini(), 51) {}
  Transformer model_;
};

TEST_F(ServeTest, PerSessionOrderingUnderContention) {
  CachedAttentionEngine engine(&model_, DefaultEngineOptions());
  ServerOptions sopts;
  sopts.num_workers = 4;
  sopts.max_batch_per_worker = 2;
  ServingLoop loop(&engine, sopts);
  // 3 sessions, 6 turns each, 4 workers: more workers than sessions forces
  // contention — a session's next turn must still wait for its previous one.
  const std::size_t kSessions = 3, kTurns = 6;
  for (const ServeRequest& req : BuildWorkload(kSessions, kTurns, model_.config().vocab_size)) {
    loop.Submit(req);
  }
  loop.WaitIdle();
  const auto replies = loop.TakeReplies();
  ASSERT_EQ(replies.size(), kSessions * kTurns);
  // Replies in JobId order: per session, turn_index counts 1..kTurns and the
  // engine-visible prompt grows monotonically (each turn really saw its
  // predecessor's history — ordering held at the engine, not just the queue).
  std::map<SessionId, std::uint32_t> last_turn;
  std::map<SessionId, std::uint64_t> last_prompt;
  for (const ServeReply& r : replies) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.turn_index, last_turn[r.session] + 1)
        << "session " << r.session << " served out of order";
    last_turn[r.session] = r.turn_index;
    EXPECT_GT(r.turn.prompt_tokens, last_prompt[r.session]);
    last_prompt[r.session] = r.turn.prompt_tokens;
  }
  for (const auto& [session, turns] : last_turn) {
    EXPECT_EQ(turns, kTurns) << "session " << session;
  }
  loop.Shutdown();
  EXPECT_EQ(engine.stats().turns, kSessions * kTurns);
}

TEST_F(ServeTest, DrainWithNonEmptyQueueServesEverythingAccepted) {
  CachedAttentionEngine engine(&model_, DefaultEngineOptions());
  ServerOptions sopts;
  sopts.num_workers = 2;
  ServingLoop loop(&engine, sopts);
  const std::size_t kSessions = 5, kTurns = 4;
  for (const ServeRequest& req : BuildWorkload(kSessions, kTurns, model_.config().vocab_size)) {
    loop.Submit(req);
  }
  // Shutdown immediately: the queue is still deep. Graceful drain must close
  // intake but serve every accepted job before returning.
  loop.Shutdown();
  EXPECT_FALSE(loop.accepting());
  EXPECT_EQ(loop.queue_depth(), 0U);
  const auto replies = loop.TakeReplies();
  ASSERT_EQ(replies.size(), kSessions * kTurns);
  for (const ServeReply& r : replies) {
    EXPECT_TRUE(r.status.ok()) << "job " << r.job;
  }
  // Intake is closed: post-drain submissions shed instead of enqueueing.
  ServeRequest late;
  late.session = 99;
  late.input = MakeTokens(4, 9, model_.config().vocab_size);
  EXPECT_FALSE(loop.TrySubmit(late).has_value());
}

TEST_F(ServeTest, BackpressureShedsAtIntakeAndNeverAborts) {
  CachedAttentionEngine engine(&model_, DefaultEngineOptions());
  ServerOptions sopts;
  sopts.num_workers = 1;
  sopts.max_batch_per_worker = 1;
  sopts.max_queue_depth = 2;
  ServingLoop loop(&engine, sopts);
  const std::size_t vocab = model_.config().vocab_size;
  // Burst 40 TrySubmits with a single slow worker: the queue cap must shed
  // some of them (submission is orders of magnitude faster than a turn).
  std::size_t accepted = 0, rejected = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    ServeRequest req;
    req.session = static_cast<SessionId>(i % 8);
    req.input = MakeTokens(6, 2000 + i, vocab);
    req.max_reply_tokens = 3;
    if (loop.TrySubmit(std::move(req)).has_value()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0U) << "queue cap 2 never sheds across a 40-job burst?";
  // Submit() ignores the cap: the queue grows instead of anything aborting.
  for (std::size_t i = 0; i < 10; ++i) {
    ServeRequest req;
    req.session = static_cast<SessionId>(100 + i);
    req.input = MakeTokens(6, 3000 + i, vocab);
    req.max_reply_tokens = 3;
    loop.Submit(std::move(req));
  }
  loop.WaitIdle();
  const auto replies = loop.TakeReplies();
  EXPECT_EQ(replies.size(), accepted + 10);
  for (const ServeReply& r : replies) {
    EXPECT_TRUE(r.status.ok());
  }
}

// The acceptance-criteria soak: ≥4 workers over ≥32 sessions, replies
// bitwise identical to a 1-worker run of the same workload, with the
// background prefetcher promoting disk-resident KV caches (store promotions
// and DRAM hits both observed) while workers serve turns.
TEST_F(ServeTest, FourWorkersMatchOneWorkerBitwiseWithPrefetch) {
  const std::size_t kSessions = 32, kTurns = 2;
  const std::size_t vocab = model_.config().vocab_size;
  const auto workload = BuildWorkload(kSessions, kTurns, vocab);

  // DRAM deliberately holds only a few sessions (with a §3.3.1 fetch buffer
  // reserved) so turn-1 saves spill to disk and the prefetcher has real
  // promotion work while the turn-2 wave queues.
  const auto tiered_options = [] {
    EngineOptions options = DefaultEngineOptions();
    options.store.dram_capacity = KiB(256);
    options.store.dram_buffer = KiB(64);
    options.store.block_bytes = KiB(32);
    options.store.disk_capacity = MiB(64);
    options.async_save = true;
    return options;
  };

  const auto run = [&](std::size_t workers, StoreStats* store_stats) {
    CachedAttentionEngine engine(&model_, tiered_options());
    ServerOptions sopts;
    sopts.num_workers = workers;
    sopts.max_batch_per_worker = 2;
    sopts.refresh_interval_us = 50;
    ServingLoop loop(&engine, sopts);
    // Wave 1: populate every session's KV cache.
    for (std::size_t i = 0; i < kSessions; ++i) {
      loop.Submit(workload[i]);
    }
    loop.WaitIdle();
    // Wave 2: a deep queue of returning sessions — the refresh thread
    // promotes the disk-resident ones ahead of the workers.
    for (std::size_t i = kSessions; i < workload.size(); ++i) {
      loop.Submit(workload[i]);
    }
    loop.Shutdown();
    if (store_stats != nullptr) {
      *store_stats = engine.store().stats();  // quiescent: loop is shut down
    }
    return loop.TakeReplies();
  };

  const ReplyMap serial = ToReplyMap(run(1, nullptr));
  StoreStats store_stats;
  const ReplyMap parallel = ToReplyMap(run(4, &store_stats));
  ASSERT_EQ(serial.size(), kSessions * kTurns);
  ASSERT_EQ(parallel.size(), kSessions * kTurns);
  for (const auto& [key, reply] : serial) {
    const auto it = parallel.find(key);
    ASSERT_NE(it, parallel.end());
    EXPECT_EQ(it->second, reply) << "session " << key.first << " turn " << key.second
                                 << " diverged across worker counts";
  }
  // The background prefetcher must have promoted disk-resident caches into
  // DRAM while workers served (§3.3.1), and returning sessions must have hit
  // them there.
  EXPECT_GT(store_stats.promotions, 0ULL);
  EXPECT_GT(store_stats.dram_hits, 0ULL);
}

// Seeded fault-injection serving soak: a flaky disk under the serving loop
// (transient errors, torn writes) degrades individual loads to recomputes —
// every reply still matches a clean engine's, and nothing aborts.
TEST_F(ServeTest, FaultInjectionSoakMatchesCleanReplies) {
  const std::size_t kSessions = 8, kTurns = 3;
  const std::size_t vocab = model_.config().vocab_size;
  const auto workload = BuildWorkload(kSessions, kTurns, vocab);

  // Clean serial reference.
  CachedAttentionEngine clean(&model_, DefaultEngineOptions());
  ReplyMap expected;
  {
    std::map<SessionId, std::uint32_t> turn_counter;
    for (const ServeRequest& req : workload) {
      auto r = clean.Converse(req.session, req.input, req.max_reply_tokens);
      ASSERT_TRUE(r.ok());
      expected[{req.session, ++turn_counter[req.session]}] = r->reply;
    }
  }

  EngineOptions faulty = DefaultEngineOptions();
  // Force disk traffic so the injector actually sees I/O.
  faulty.store.dram_capacity = KiB(128);
  faulty.store.block_bytes = KiB(32);
  faulty.store.disk_fault.seed = 77;
  faulty.store.disk_fault.read_transient_p = 0.10;
  faulty.store.disk_fault.write_transient_p = 0.10;
  faulty.store.disk_fault.write_corrupt_p = 0.05;
  CachedAttentionEngine engine(&model_, faulty);
  ServerOptions sopts;
  sopts.num_workers = 4;
  ServingLoop loop(&engine, sopts);
  for (const ServeRequest& req : workload) {
    loop.Submit(req);
  }
  loop.Shutdown();
  const ReplyMap served = ToReplyMap(loop.TakeReplies());
  ASSERT_EQ(served.size(), expected.size());
  for (const auto& [key, reply] : expected) {
    const auto it = served.find(key);
    ASSERT_NE(it, served.end());
    EXPECT_EQ(it->second, reply) << "session " << key.first << " turn " << key.second
                                 << " diverged under injected faults";
  }
}

TEST_F(ServeTest, RepeatedShutdownIsIdempotent) {
  CachedAttentionEngine engine(&model_, DefaultEngineOptions());
  ServingLoop loop(&engine, ServerOptions{});
  ServeRequest req;
  req.session = 1;
  req.input = MakeTokens(6, 1, model_.config().vocab_size);
  loop.Submit(req);
  loop.Shutdown();
  loop.Shutdown();  // no-op, no deadlock, no double-join
  EXPECT_EQ(loop.TakeReplies().size(), 1U);
}

}  // namespace
}  // namespace ca
