// Runtime lock-order (deadlock) detector tests (DESIGN.md §13):
//
//   * an ABBA acquisition pattern reliably aborts with the cycle report —
//     even single-threaded, because the detector checks lock *order*, not
//     an actual hang, which is what makes the bug reproducible in a test;
//   * consistent nesting (the canonical order), lock reuse across threads,
//     and mutex destruction/re-creation raise no report;
//   * the 4-worker serving soak — workers, async save stream, refresh
//     thread, store tiers, tracer and metrics registry all live — runs
//     detection-enabled without a false positive, pinning down that the
//     canonical order in src/common/mutex.h is the order the system uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/serving_loop.h"

namespace ca {
namespace {

// Every test that enables detection restores the disabled state so later
// tests in this binary measure/behave as configured.
class ScopedDeadlockDetect {
 public:
  ScopedDeadlockDetect() { SetDeadlockDetectEnabled(true); }
  ~ScopedDeadlockDetect() { SetDeadlockDetectEnabled(false); }
};

TEST(DeadlockDetectDeathTest, AbbaCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // No acquisition in this sequence ever blocks (all locks are free when
  // taken), so the test is deterministic: the report fires on the *order*
  // inversion itself, on the final a.Lock below.
  EXPECT_DEATH(
      {
        SetDeadlockDetectEnabled(true);
        Mutex a("test.A");
        Mutex b("test.B");
        {
          MutexLock hold_a(a);
          MutexLock then_b(b);
        }
        {
          MutexLock hold_b(b);
          MutexLock then_a(a);  // B→A closes the A→B cycle
        }
      },
      "lock-order cycle");
}

TEST(DeadlockDetectDeathTest, ThreeLockCycleAbortsWithBothSites) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectEnabled(true);
        Mutex a("test.A");
        Mutex b("test.B");
        Mutex c("test.C");
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);
        }
        {
          MutexLock lc(c);
          MutexLock la(a);  // C→A closes A→B→C
        }
      },
      "deadlock detector");
}

TEST(DeadlockDetectTest, ConsistentOrderIsClean) {
  ScopedDeadlockDetect detect;
  Mutex outer("test.outer");
  Mutex inner("test.inner");
  // Same nesting repeated, including from a second thread: no cycle, no
  // report (an abort here fails the test by killing the process).
  for (int i = 0; i < 100; ++i) {
    MutexLock lo(outer);
    MutexLock li(inner);
  }
  std::thread other([&] {
    for (int i = 0; i < 100; ++i) {
      MutexLock lo(outer);
      MutexLock li(inner);
    }
  });
  other.join();
}

TEST(DeadlockDetectTest, DestroyedMutexLeavesNoStaleEdges) {
  ScopedDeadlockDetect detect;
  Mutex anchor("test.anchor");
  // A→B recorded, then B destroyed. A fresh mutex (plausibly at the same
  // address) locked in the reverse direction must NOT inherit B's edges.
  auto first = std::make_unique<Mutex>("test.first");
  {
    MutexLock la(anchor);
    MutexLock lb(*first);
  }
  first.reset();
  Mutex second("test.second");
  {
    MutexLock lb(second);
    MutexLock la(anchor);  // would be a cycle iff `second` aliased `first`'s node
  }
}

TEST(DeadlockDetectTest, DisabledPathRecordsNothing) {
  SetDeadlockDetectEnabled(false);
  Mutex a("test.A2");
  Mutex b("test.B2");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // inversion, but detection is off: must not abort
  }
}

// The no-false-positive soak: the full concurrent runtime under detection.
// Workers hold ServingLoop::mutex_ → engine mutex_ → storage mutex_ /
// registry mu_ / tracer buffer locks; the refresh thread prefetches; the
// async save stream writes back; tiny DRAM forces demote/promote traffic
// through both tier storages. Any lock-order inconsistency anywhere in that
// stack aborts the process and fails this test.
TEST(DeadlockDetectTest, ServeSoakFourWorkersNoFalsePositive) {
  ScopedDeadlockDetect detect;
  Tracer::Get().Enable();  // exercise tracer buffer locks under detection
  Transformer model(ModelConfig::Mini(), 51);

  EngineOptions eopts;
  eopts.store.dram_capacity = KiB(512);  // tight: forces demotions to disk
  eopts.store.disk_capacity = MiB(256);
  eopts.store.block_bytes = KiB(64);
  eopts.store.dram_buffer = KiB(128);
  eopts.store.audit = true;
  eopts.async_save = true;
  CachedAttentionEngine engine(&model, eopts);

  ServerOptions sopts;
  sopts.num_workers = 4;
  sopts.max_batch_per_worker = 2;
  sopts.prefetch = true;
  sopts.refresh_interval_us = 50;
  {
    ServingLoop loop(&engine, sopts);
    const std::size_t vocab = model.config().vocab_size;
    Rng rng(7);
    for (std::uint32_t turn = 0; turn < 3; ++turn) {
      for (SessionId s = 0; s < 12; ++s) {
        ServeRequest req;
        req.session = s;
        req.input.resize(5 + (s + turn) % 4);
        for (auto& t : req.input) {
          t = static_cast<TokenId>(rng.NextBounded(vocab));
        }
        req.max_reply_tokens = 3;
        loop.Submit(std::move(req));
      }
    }
    loop.WaitIdle();
    engine.PublishMetrics();  // engine mutex_ → registry mu_ under detection
    const auto replies = loop.TakeReplies();
    EXPECT_EQ(replies.size(), 36U);
    for (const auto& r : replies) {
      EXPECT_TRUE(r.status.ok()) << r.status;
    }
  }
  (void)MetricsRegistry::Global().Snapshot();  // registry mu_ → histogram mu_
  (void)Tracer::Get().ExportChromeJson();      // tracer mu_ → buffer mu
  Tracer::Get().Disable();
  Tracer::Get().Clear();
}

}  // namespace
}  // namespace ca
