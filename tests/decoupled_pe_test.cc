// Numerical validation of §3.4: KV-cache truncation under decoupled
// positional encoding stays valid, while truncating a coupled-PE cache
// (NKVT) scrambles attention.
//
// Note on exactness: truncating a KV cache is *not* bit-identical to
// recomputing from truncated text in a multi-layer model — retained tokens'
// deep-layer KV still embeds attention over the dropped prefix (that is
// precisely why the paper reports CA's perplexity as "comparable" to TT,
// 5.47 vs 5.48, not equal). For a single-layer model K/V are
// context-independent, so there equivalence is exact; for deeper models we
// assert CA stays close to TT while NKVT diverges by an order of magnitude.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/model/eval.h"
#include "src/model/kv_cache.h"
#include "src/model/transformer.h"
#include "src/train/trained_lm.h"

namespace ca {
namespace {

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

struct TruncationSetup {
  std::vector<TokenId> history;
  std::vector<TokenId> truncated_history;  // history[drop:]
  std::vector<TokenId> probe;
  std::size_t drop = 0;
};

TruncationSetup MakeSetup(const ModelConfig& config, std::size_t hist, std::size_t drop,
                          std::size_t probe, std::uint64_t seed) {
  TruncationSetup s;
  s.history = MakeTokens(hist, seed, config.vocab_size);
  s.truncated_history.assign(s.history.begin() + static_cast<std::ptrdiff_t>(drop),
                             s.history.end());
  s.probe = MakeTokens(probe, seed + 1, config.vocab_size);
  s.drop = drop;
  return s;
}

// Reference: token truncation + full recompute (TT).
Tensor TtLogits(const Transformer& model, const TruncationSetup& s) {
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  (void)model.Forward(s.truncated_history, cache);
  return model.Forward(s.probe, cache);
}

// CachedAttention: truncate the decoupled-PE cache, reuse it.
Tensor CaLogits(const Transformer& model, const TruncationSetup& s) {
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  (void)model.Forward(s.history, cache);
  cache.TruncateFront(s.drop);
  return model.Forward(s.probe, cache);
}

// NKVT: truncate a coupled-PE cache; stale rotations corrupt attention.
Tensor NkvtLogits(const Transformer& model, const TruncationSetup& s) {
  KvCache cache = model.MakeCache(PeMode::kCoupled);
  (void)model.Forward(s.history, cache);
  cache.TruncateFront(s.drop);
  return model.Forward(s.probe, cache);
}

// With one transformer layer, K/V rows are functions of the token alone, so
// KV truncation is *exactly* token truncation.
TEST(DecoupledPeTest, OneLayerTruncationIsExact) {
  ModelConfig config = ModelConfig::Mini();
  config.n_layers = 1;
  const Transformer model(config, 21);
  const TruncationSetup s = MakeSetup(config, 32, 16, 8, 100);

  const Tensor tt = TtLogits(model, s);
  const Tensor ca = CaLogits(model, s);
  EXPECT_LT(MaxAbsDiff(ca, tt), 2e-4f);
}

TEST(DecoupledPeTest, OneLayerNaiveTruncationIsNotExact) {
  ModelConfig config = ModelConfig::Mini();
  config.n_layers = 1;
  const Transformer model(config, 21);
  const TruncationSetup s = MakeSetup(config, 32, 16, 8, 100);

  const Tensor tt = TtLogits(model, s);
  const Tensor nkvt = NkvtLogits(model, s);
  EXPECT_GT(MaxAbsDiff(nkvt, tt), 1e-2f);
}

// Multi-layer, *trained* model: CA tracks TT closely; NKVT diverges far
// more (the paper's Table 1 shape: PPL 5.47 vs 5.48 vs 2198.7). A trained
// model is required — with random weights, attention is diffuse and
// dropping half the context perturbs logits as much as scrambling
// positions does; training on a local-structure corpus makes attention
// recency-structured as in real LMs. See src/train/trainer.h.
TEST(DecoupledPeTest, TrainedModelCaClose_NkvtFar) {
  const TrainedLm& lm = GetTrainedLm();
  Rng rng(77);
  // One contiguous on-distribution stream: history then probe.
  const auto stream = lm.corpus.Sample(96 + 8, rng);
  TruncationSetup s;
  s.history.assign(stream.begin(), stream.begin() + 96);
  s.drop = 48;
  s.truncated_history.assign(s.history.begin() + 48, s.history.end());
  s.probe.assign(stream.begin() + 96, stream.end());

  const Tensor tt = TtLogits(lm.model, s);
  const Tensor ca = CaLogits(lm.model, s);
  const Tensor nkvt = NkvtLogits(lm.model, s);

  const float err_ca = MaxAbsDiff(ca, tt);
  const float err_nkvt = MaxAbsDiff(nkvt, tt);
  EXPECT_LT(err_ca, 0.5f * err_nkvt)
      << "CA err " << err_ca << " should be well below NKVT err " << err_nkvt;

  const double agree_ca = ArgmaxAgreement(lm.model, ca, tt);
  const double agree_nkvt = ArgmaxAgreement(lm.model, nkvt, tt);
  EXPECT_GE(agree_ca, agree_nkvt);
  EXPECT_GE(agree_ca, 0.8);
}

// The re-embedding step: shifting an entire decoupled cache (truncation)
// must preserve next-token prediction on the trained model.
TEST(DecoupledPeTest, ReEmbeddingPreservesNextTokenPrediction) {
  const TrainedLm& lm = GetTrainedLm();
  Rng rng(79);
  const auto history = lm.corpus.Sample(80, rng);
  const std::size_t drop = 40;
  const std::vector<TokenId> tt_hist(history.begin() + drop, history.end());
  // Probe continues the actual chain so the model is on-distribution.
  std::vector<TokenId> full = history;
  const auto more = lm.corpus.Sample(4, rng);
  const std::vector<TokenId> probe(more.begin(), more.end());

  KvCache tt_cache = lm.model.MakeCache(PeMode::kDecoupled);
  (void)lm.model.Forward(tt_hist, tt_cache);
  KvCache ca_cache = lm.model.MakeCache(PeMode::kDecoupled);
  (void)lm.model.Forward(history, ca_cache);
  ca_cache.TruncateFront(drop);

  const TokenId tt_next = PredictNext(lm.model, probe, tt_cache);
  const TokenId ca_next = PredictNext(lm.model, probe, ca_cache);
  EXPECT_EQ(ca_next, tt_next);
}

// Perplexity proxy (Table 1 shape) on the trained model: NLL of on-corpus
// continuations. CA within a tight band of TT; NKVT collapses towards (or
// beyond) the uniform baseline.
TEST(DecoupledPeTest, ContinuationNllOrdering) {
  const TrainedLm& lm = GetTrainedLm();
  Rng rng(83);
  const std::size_t hist = 96;
  const std::size_t drop = 48;
  // One contiguous corpus sample: history then continuation.
  const auto stream = lm.corpus.Sample(hist + 24, rng);
  const std::vector<TokenId> history(stream.begin(), stream.begin() + hist);
  const std::vector<TokenId> tt_hist(history.begin() + drop, history.end());
  const std::vector<TokenId> continuation(stream.begin() + hist, stream.end());

  KvCache tt_cache = lm.model.MakeCache(PeMode::kDecoupled);
  (void)lm.model.Forward(tt_hist, tt_cache);
  const double nll_tt = ContinuationNll(lm.model, continuation, tt_cache);

  KvCache ca_cache = lm.model.MakeCache(PeMode::kDecoupled);
  (void)lm.model.Forward(history, ca_cache);
  ca_cache.TruncateFront(drop);
  const double nll_ca = ContinuationNll(lm.model, continuation, ca_cache);

  KvCache nkvt_cache = lm.model.MakeCache(PeMode::kCoupled);
  (void)lm.model.Forward(history, nkvt_cache);
  nkvt_cache.TruncateFront(drop);
  const double nll_nkvt = ContinuationNll(lm.model, continuation, nkvt_cache);

  EXPECT_LT(std::abs(nll_ca - nll_tt), 0.25) << "CA " << nll_ca << " TT " << nll_tt;
  EXPECT_GT(nll_nkvt, nll_tt + 0.5) << "NKVT " << nll_nkvt << " TT " << nll_tt;
}

// No-truncation sanity: a reused decoupled cache gives the same logits as
// full recompute (positions unchanged, so exact up to fp noise).
TEST(DecoupledPeTest, NoTruncationReuseIsExact) {
  const ModelConfig config = ModelConfig::Mini();
  const Transformer model(config, 37);
  const auto history = MakeTokens(24, 500, config.vocab_size);
  const auto probe = MakeTokens(6, 501, config.vocab_size);

  KvCache reuse_cache = model.MakeCache(PeMode::kDecoupled);
  (void)model.Forward(history, reuse_cache);
  const auto saved = reuse_cache.Serialize();
  auto reloaded = KvCache::Deserialize(config, saved);
  ASSERT_TRUE(reloaded.ok());
  const Tensor ca = model.Forward(probe, *reloaded);

  KvCache ref_cache = model.MakeCache(PeMode::kDecoupled);
  (void)model.Forward(history, ref_cache);
  const Tensor ref = model.Forward(probe, ref_cache);
  EXPECT_EQ(MaxAbsDiff(ca, ref), 0.0f);
}

// Parameterised sweep: CA-vs-TT error stays below NKVT error across drop
// fractions and model depths.
class TruncationSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TruncationSweep, CaBeatsNkvt) {
  const auto [n_layers, drop] = GetParam();
  ModelConfig config = ModelConfig::Mini();
  config.n_layers = n_layers;
  const Transformer model(config, 41);
  const TruncationSetup s = MakeSetup(config, 48, drop, 6, 600 + drop);

  const Tensor tt = TtLogits(model, s);
  const float err_ca = MaxAbsDiff(CaLogits(model, s), tt);
  const float err_nkvt = MaxAbsDiff(NkvtLogits(model, s), tt);
  EXPECT_LT(err_ca, err_nkvt);
}

INSTANTIATE_TEST_SUITE_P(LayersAndDrops, TruncationSweep,
                         ::testing::Combine(::testing::Values(1UL, 2UL, 4UL),
                                            ::testing::Values(8UL, 16UL, 24UL, 32UL)));

}  // namespace
}  // namespace ca
