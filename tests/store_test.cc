// AttentionStore tests: block allocation, payload storage (memory and
// file-backed), tiered placement, demotion/eviction cascades, TTL, and the
// used-bytes accounting invariant.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/store/attention_store.h"
#include "src/store/block_allocator.h"
#include "src/store/block_storage.h"

namespace ca {
namespace {

// --- BlockAllocator ------------------------------------------------------

TEST(BlockAllocatorTest, CapacityArithmetic) {
  BlockAllocator alloc(MiB(10), MiB(4));
  EXPECT_EQ(alloc.total_blocks(), 2ULL);  // 10/4 rounds down
  EXPECT_EQ(alloc.capacity_bytes(), MiB(8));
  EXPECT_EQ(alloc.free_blocks(), 2ULL);
  EXPECT_EQ(alloc.BlocksFor(1), 1ULL);
  EXPECT_EQ(alloc.BlocksFor(MiB(4)), 1ULL);
  EXPECT_EQ(alloc.BlocksFor(MiB(4) + 1), 2ULL);
  EXPECT_EQ(alloc.BlocksFor(0), 0ULL);
}

TEST(BlockAllocatorTest, AllocateFreeCycle) {
  BlockAllocator alloc(MiB(16), MiB(4));
  auto blocks = alloc.Allocate(3);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 3U);
  EXPECT_EQ(alloc.free_blocks(), 1ULL);
  alloc.Free(*blocks);
  EXPECT_EQ(alloc.free_blocks(), 4ULL);
}

TEST(BlockAllocatorTest, ExhaustionFails) {
  BlockAllocator alloc(MiB(8), MiB(4));
  auto a = alloc.Allocate(2);
  ASSERT_TRUE(a.ok());
  auto b = alloc.Allocate(1);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(BlockAllocatorTest, ZeroAllocationSucceeds) {
  BlockAllocator alloc(MiB(8), MiB(4));
  auto r = alloc.Allocate(0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(BlockAllocatorDeathTest, DoubleFreeAborts) {
  BlockAllocator alloc(MiB(8), MiB(4));
  auto blocks = alloc.Allocate(1);
  ASSERT_TRUE(blocks.ok());
  alloc.Free(*blocks);
  EXPECT_DEATH(alloc.Free(*blocks), "double free");
}

// --- BlockStorage --------------------------------------------------------

std::vector<std::uint8_t> Payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.NextBounded(256));
  }
  return out;
}

class BlockStorageTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<BlockStorage> MakeStorage(std::uint64_t capacity, std::uint64_t block) {
    if (GetParam()) {
      auto opened = FileBlockStorage::Open(testing::TempDir() + "/ca_store_test.blocks",
                                           capacity, block);
      CA_CHECK(opened.ok()) << opened.status();
      return std::move(*opened);
    }
    return std::make_unique<MemoryBlockStorage>(capacity, block);
  }
};

TEST_P(BlockStorageTest, WriteReadRoundTrip) {
  auto storage = MakeStorage(KiB(64), KiB(4));
  const auto data = Payload(KiB(4) * 2 + 123, 1);  // spans 3 blocks, last partial
  auto extent = storage->Write(data);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->blocks.size(), 3U);
  EXPECT_EQ(extent->byte_length, data.size());
  auto read = storage->Read(*extent);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_P(BlockStorageTest, FreeReleasesBlocks) {
  auto storage = MakeStorage(KiB(16), KiB(4));
  auto extent = storage->Write(Payload(KiB(16), 2));
  ASSERT_TRUE(extent.ok());
  EXPECT_FALSE(storage->Write(Payload(1, 3)).ok());  // full
  storage->Free(*extent);
  EXPECT_TRUE(storage->Write(Payload(1, 3)).ok());
}

TEST_P(BlockStorageTest, ManyRecordsInterleaved) {
  auto storage = MakeStorage(KiB(256), KiB(4));
  std::vector<std::pair<BlockExtent, std::vector<std::uint8_t>>> records;
  for (std::uint64_t i = 0; i < 10; ++i) {
    auto data = Payload(1000 * (i + 1), i);
    auto extent = storage->Write(data);
    ASSERT_TRUE(extent.ok());
    records.emplace_back(std::move(*extent), std::move(data));
  }
  // Free every other record, then verify the rest still read back intact.
  for (std::size_t i = 0; i < records.size(); i += 2) {
    storage->Free(records[i].first);
  }
  for (std::size_t i = 1; i < records.size(); i += 2) {
    auto read = storage->Read(records[i].first);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, records[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(MemoryAndFile, BlockStorageTest, ::testing::Bool(),
                         [](const auto& param_info) { return param_info.param ? "File" : "Memory"; });

// --- AttentionStore ------------------------------------------------------

StoreConfig SmallConfig() {
  StoreConfig config;
  config.hbm_capacity = 0;
  config.dram_capacity = MiB(8);   // 2 blocks
  config.disk_capacity = MiB(16);  // 4 blocks
  config.block_bytes = MiB(4);
  return config;
}

const SchedulerHints kNoHints;

TEST(AttentionStoreTest, PutLandsInDram) {
  AttentionStore store(SmallConfig());
  ASSERT_TRUE(store.Put(1, MiB(4), 100, {}, 0, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDram);
  EXPECT_EQ(store.UsedBytes(Tier::kDram), MiB(4));
  EXPECT_EQ(store.RecordCount(), 1U);
}

TEST(AttentionStoreTest, AccessCountsHitsPerTier) {
  AttentionStore store(SmallConfig());
  ASSERT_TRUE(store.Put(1, MiB(2), 10, {}, 0, kNoHints).ok());
  EXPECT_TRUE(store.Access(1, 1).has_value());
  EXPECT_FALSE(store.Access(99, 2).has_value());
  EXPECT_EQ(store.stats().lookups, 2ULL);
  EXPECT_EQ(store.stats().dram_hits, 1ULL);
  EXPECT_EQ(store.stats().misses, 1ULL);
  EXPECT_DOUBLE_EQ(store.stats().hit_rate(), 0.5);
}

TEST(AttentionStoreTest, OverflowDemotesToDisk) {
  AttentionStore store(SmallConfig());
  // DRAM holds 2 blocks; third record forces a demotion.
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  ASSERT_TRUE(store.Put(2, MiB(4), 10, {}, 1, kNoHints).ok());
  ASSERT_TRUE(store.Put(3, MiB(4), 10, {}, 2, kNoHints).ok());
  EXPECT_EQ(store.Lookup(3), Tier::kDram);
  // Scheduler-aware policy with no hints: LRU fallback demotes session 1.
  EXPECT_EQ(store.Lookup(1), Tier::kDisk);
  EXPECT_EQ(store.Lookup(2), Tier::kDram);
  EXPECT_EQ(store.stats().demotions, 1ULL);
}

TEST(AttentionStoreTest, FullSystemEvictsOut) {
  AttentionStore store(SmallConfig());
  // Capacity: 2 DRAM + 4 disk blocks = 6 records of one block.
  for (SessionId s = 0; s < 7; ++s) {
    ASSERT_TRUE(store.Put(s, MiB(4), 10, {}, static_cast<SimTime>(s), kNoHints).ok());
  }
  EXPECT_EQ(store.RecordCount(), 6U);
  EXPECT_EQ(store.stats().evictions_out, 1ULL);
  EXPECT_EQ(store.Lookup(0), Tier::kNone);  // oldest evicted
}

TEST(AttentionStoreTest, RecordLargerThanEverythingIsRejected) {
  AttentionStore store(SmallConfig());
  const Status s = store.Put(1, MiB(64), 10, {}, 0, kNoHints);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store.RecordCount(), 0U);
}

TEST(AttentionStoreTest, UpdateReplacesSize) {
  AttentionStore store(SmallConfig());
  ASSERT_TRUE(store.Put(1, MiB(2), 10, {}, 0, kNoHints).ok());
  ASSERT_TRUE(store.Put(1, MiB(8), 25, {}, 1, kNoHints).ok());
  EXPECT_EQ(store.RecordCount(), 1U);
  EXPECT_EQ(store.stats().inserts, 1ULL);
  EXPECT_EQ(store.stats().updates, 1ULL);
  const auto info = store.GetInfo(1);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->bytes, MiB(8));
  EXPECT_EQ(info->token_count, 25ULL);
}

TEST(AttentionStoreTest, PromoteAndDemote) {
  AttentionStore store(SmallConfig());
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  ASSERT_TRUE(store.Demote(1, 1, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDisk);
  ASSERT_TRUE(store.Promote(1, 2, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDram);
  EXPECT_EQ(store.stats().promotions, 1ULL);
  EXPECT_EQ(store.stats().demotions, 1ULL);
}

TEST(AttentionStoreTest, PromoteErrors) {
  AttentionStore store(SmallConfig());
  EXPECT_EQ(store.Promote(9, 0, kNoHints).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  EXPECT_EQ(store.Promote(1, 1, kNoHints).code(), StatusCode::kFailedPrecondition);
}

TEST(AttentionStoreTest, RemoveForgetsRecord) {
  AttentionStore store(SmallConfig());
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  store.Remove(1);
  EXPECT_EQ(store.Lookup(1), Tier::kNone);
  EXPECT_EQ(store.UsedBytes(Tier::kDram), 0ULL);
  store.Remove(1);  // idempotent
}

TEST(AttentionStoreTest, TtlExpiresIdleRecords) {
  StoreConfig config = SmallConfig();
  config.ttl = kHour;
  AttentionStore store(config);
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  ASSERT_TRUE(store.Put(2, MiB(4), 10, {}, 30 * kMinute, kNoHints).ok());
  // Touch session 1 at t=50min so it survives the sweep at t=70min.
  EXPECT_TRUE(store.Access(1, 50 * kMinute).has_value());
  EXPECT_EQ(store.ExpireTtl(70 * kMinute), 0U);  // nothing idle > 1h yet
  EXPECT_EQ(store.ExpireTtl(95 * kMinute), 1U);  // session 2 idle 65min
  EXPECT_EQ(store.Lookup(2), Tier::kNone);
  EXPECT_EQ(store.Lookup(1), Tier::kDram);
  EXPECT_EQ(store.stats().ttl_expirations, 1ULL);
}

TEST(AttentionStoreTest, MaintainDramBufferFreesSpace) {
  StoreConfig config = SmallConfig();
  config.dram_buffer = MiB(4);  // keep one block free
  AttentionStore store(config);
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  ASSERT_TRUE(store.Put(2, MiB(4), 10, {}, 1, kNoHints).ok());
  EXPECT_EQ(store.FreeBytes(Tier::kDram), 0ULL);
  const std::size_t demoted = store.MaintainDramBuffer(2, kNoHints);
  EXPECT_EQ(demoted, 1U);
  EXPECT_GE(store.FreeBytes(Tier::kDram), MiB(4));
  EXPECT_EQ(store.Lookup(1), Tier::kDisk);  // LRU victim
}

TEST(AttentionStoreTest, SchedulerHintsProtectUpcomingSessions) {
  AttentionStore store(SmallConfig());
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  ASSERT_TRUE(store.Put(2, MiB(4), 10, {}, 1, kNoHints).ok());
  // Session 1 is the LRU victim, but it has a queued job; session 2 does
  // not, so the scheduler-aware policy demotes 2 instead.
  SchedulerHints hints;
  hints.next_use_index[1] = 0;
  ASSERT_TRUE(store.Put(3, MiB(4), 10, {}, 2, hints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDram);
  EXPECT_EQ(store.Lookup(2), Tier::kDisk);
}

TEST(AttentionStoreTest, HbmTierPreferredWhenEnabled) {
  StoreConfig config = SmallConfig();
  config.hbm_capacity = MiB(4);
  AttentionStore store(config);
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kHbm);
  // Second record: HBM full, cascades into DRAM.
  ASSERT_TRUE(store.Put(2, MiB(4), 10, {}, 1, kNoHints).ok());
  EXPECT_EQ(store.Lookup(2), Tier::kHbm);
  EXPECT_EQ(store.Lookup(1), Tier::kDram);
}

TEST(AttentionStoreTest, DiskOnlyConfigWorks) {
  StoreConfig config = SmallConfig();
  config.dram_capacity = 0;
  AttentionStore store(config);
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDisk);
  EXPECT_EQ(store.Access(1, 1)->tier, Tier::kDisk);
  EXPECT_EQ(store.stats().disk_hits, 1ULL);
}

TEST(AttentionStoreTest, RealPayloadRoundTripAcrossTiers) {
  StoreConfig config = SmallConfig();
  config.real_payloads = true;
  AttentionStore store(config);
  const auto data = Payload(MiB(3), 7);
  ASSERT_TRUE(store.Put(1, data.size(), 42, data, 0, kNoHints).ok());
  auto read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  // Demote to disk and read back through the file tier.
  ASSERT_TRUE(store.Demote(1, 1, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDisk);
  read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  // And promote back.
  ASSERT_TRUE(store.Promote(1, 2, kNoHints).ok());
  read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

// --- ExportRecord / ImportRecord (migration, DESIGN.md §16) ---------------

TEST(AttentionStoreTest, ExportImportRoundTripIsBitwise) {
  StoreConfig config = SmallConfig();
  config.real_payloads = true;
  config.audit = true;
  AttentionStore source(config);
  AttentionStore target(config);
  const auto data = Payload(MiB(3), 21);
  const std::vector<std::uint8_t> meta = {9, 8, 7, 6};
  ASSERT_TRUE(source.Put(1, data.size(), 42, data, 5, kNoHints, meta).ok());

  auto exported = source.ExportRecord(1);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported->session, 1ULL);
  EXPECT_EQ(exported->bytes, data.size());
  EXPECT_EQ(exported->token_count, 42ULL);
  EXPECT_EQ(exported->payload, data);
  EXPECT_EQ(exported->user_meta, meta);
  // Export is non-destructive: the source still serves the record.
  EXPECT_EQ(source.Lookup(1), Tier::kDram);
  EXPECT_EQ(source.stats().exports, 1ULL);

  ASSERT_TRUE(target.ImportRecord(*exported, 6, kNoHints).ok());
  EXPECT_EQ(target.stats().imports, 1ULL);
  auto read = target.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);  // bitwise across stores
  ASSERT_NE(target.UserMeta(1), nullptr);
  EXPECT_EQ(*target.UserMeta(1), meta);
  const auto info = target.GetInfo(1);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->token_count, 42ULL);
}

TEST(AttentionStoreTest, ImportIntoOccupiedSessionIsRejected) {
  StoreConfig config = SmallConfig();
  config.real_payloads = true;
  AttentionStore source(config);
  AttentionStore target(config);
  const auto data = Payload(MiB(2), 3);
  ASSERT_TRUE(source.Put(1, data.size(), 10, data, 0, kNoHints).ok());
  const auto resident = Payload(MiB(1), 4);
  ASSERT_TRUE(target.Put(1, resident.size(), 5, resident, 0, kNoHints).ok());

  auto exported = source.ExportRecord(1);
  ASSERT_TRUE(exported.ok());
  const Status imported = target.ImportRecord(*exported, 1, kNoHints);
  EXPECT_EQ(imported.code(), StatusCode::kAlreadyExists);
  // No silent overwrite: the resident payload is untouched.
  auto read = target.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, resident);
}

TEST(AttentionStoreTest, ImportReverifiesChecksum) {
  StoreConfig config = SmallConfig();
  config.real_payloads = true;
  AttentionStore source(config);
  AttentionStore target(config);
  const auto data = Payload(MiB(2), 11);
  ASSERT_TRUE(source.Put(1, data.size(), 10, data, 0, kNoHints).ok());
  auto exported = source.ExportRecord(1);
  ASSERT_TRUE(exported.ok());

  // Corruption "in transit": one flipped byte must be caught on import,
  // before anything lands in the target store.
  exported->payload[exported->payload.size() / 2] ^= 0x01;
  const Status imported = target.ImportRecord(*exported, 1, kNoHints);
  EXPECT_EQ(imported.code(), StatusCode::kDataLoss);
  EXPECT_EQ(target.RecordCount(), 0U);
  EXPECT_EQ(target.stats().corrupt_payloads, 1ULL);
  EXPECT_EQ(target.stats().imports, 0ULL);
}

TEST(AttentionStoreTest, ExportUnknownSessionIsNotFound) {
  AttentionStore store(SmallConfig());
  const auto exported = store.ExportRecord(404);
  EXPECT_EQ(exported.status().code(), StatusCode::kNotFound);
}

TEST(AttentionStoreTest, CapacityOnlyExportImportMovesAccounting) {
  AttentionStore source(SmallConfig());
  AttentionStore target(SmallConfig());
  ASSERT_TRUE(source.Put(1, MiB(4), 100, {}, 0, kNoHints).ok());
  auto exported = source.ExportRecord(1);
  ASSERT_TRUE(exported.ok());
  EXPECT_TRUE(exported->payload.empty());
  ASSERT_TRUE(target.ImportRecord(*exported, 1, kNoHints).ok());
  EXPECT_EQ(target.Lookup(1), Tier::kDram);
  EXPECT_EQ(target.UsedBytes(Tier::kDram), MiB(4));
}

TEST(AttentionStoreTest, UserMetaRetainedWithoutDurability) {
  AttentionStore store(SmallConfig());
  const std::vector<std::uint8_t> meta = {1, 2, 3};
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints, meta).ok());
  ASSERT_NE(store.UserMeta(1), nullptr);
  EXPECT_EQ(*store.UserMeta(1), meta);
  // Moves keep the blob; a fresh Put without one replaces it.
  ASSERT_TRUE(store.Demote(1, 1, kNoHints).ok());
  ASSERT_NE(store.UserMeta(1), nullptr);
  EXPECT_EQ(*store.UserMeta(1), meta);
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 2, kNoHints).ok());
  ASSERT_NE(store.UserMeta(1), nullptr);
  EXPECT_TRUE(store.UserMeta(1)->empty());
}

TEST(AttentionStoreTest, ResetStatsClearsCounters) {
  AttentionStore store(SmallConfig());
  ASSERT_TRUE(store.Put(1, MiB(4), 10, {}, 0, kNoHints).ok());
  (void)store.Access(1, 1);
  store.ResetStats();
  EXPECT_EQ(store.stats().lookups, 0ULL);
  EXPECT_EQ(store.stats().inserts, 0ULL);
}

// Property test: after a random sequence of puts/accesses/demotes/removes,
// per-tier used bytes equal the block-rounded sum of resident records, and
// never exceed capacity.
class StoreAccountingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreAccountingProperty, UsedBytesInvariant) {
  StoreConfig config = SmallConfig();
  config.dram_capacity = MiB(24);
  config.disk_capacity = MiB(48);
  AttentionStore store(config);
  Rng rng(GetParam());
  for (int op = 0; op < 400; ++op) {
    const SessionId s = rng.NextBounded(20);
    const SimTime now = op;
    switch (rng.NextBounded(5)) {
      case 0:
      case 1: {
        const std::uint64_t bytes = MiB(1) + rng.NextBounded(MiB(9));
        (void)store.Put(s, bytes, bytes / 1000, {}, now, kNoHints);
        break;
      }
      case 2:
        (void)store.Access(s, now);
        break;
      case 3:
        (void)store.Demote(s, now, kNoHints);
        break;
      case 4:
        store.Remove(s);
        break;
    }
    // Invariant: per-tier accounting matches resident records.
    for (const Tier tier : {Tier::kDram, Tier::kDisk}) {
      std::uint64_t expected = 0;
      for (const SessionId id : store.SessionsInTier(tier)) {
        const auto info = store.GetInfo(id);
        ASSERT_TRUE(info.has_value());
        const std::uint64_t blocks =
            (info->bytes + config.block_bytes - 1) / config.block_bytes;
        expected += blocks * config.block_bytes;
      }
      ASSERT_EQ(store.UsedBytes(tier), expected) << "tier " << TierName(tier) << " op " << op;
      ASSERT_LE(store.UsedBytes(tier), store.CapacityBytes(tier));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreAccountingProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 7ULL, 42ULL));

}  // namespace
}  // namespace ca
