// CachedAttentionEngine (real execution path) tests: reply equivalence with
// the recompute baseline, KV reuse accounting, overflow policies, tiered
// spill with real payloads, async saving, and session lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"

namespace ca {
namespace {

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

EngineOptions DefaultOptions() {
  EngineOptions options;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(256);
  options.store.block_bytes = KiB(64);
  // Audit the store after every mutation so accounting drift on the real
  // serving path aborts in the test that introduced it.
  options.store.audit = true;
  return options;
}

EngineOptions RecomputeOptions() {
  EngineOptions options = DefaultOptions();
  options.reuse_kv = false;
  return options;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : model_(ModelConfig::Mini(), 51) {}
  Transformer model_;
};

TEST_F(EngineTest, SingleTurnProducesReply) {
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const auto input = MakeTokens(10, 1, model_.config().vocab_size);
  auto result = engine.Converse(7, input, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reply.size(), 8U);
  EXPECT_FALSE(result->cache_hit);  // first turn: nothing cached
  EXPECT_EQ(result->prompt_tokens, 10ULL);
  EXPECT_EQ(result->computed_tokens, 10ULL);
  EXPECT_EQ(engine.SessionHistory(7).size(), 18U);
}

TEST_F(EngineTest, SecondTurnHitsCache) {
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const auto turn1 = MakeTokens(10, 1, model_.config().vocab_size);
  ASSERT_TRUE(engine.Converse(7, turn1, 5).ok());
  const auto turn2 = MakeTokens(6, 2, model_.config().vocab_size);
  auto result = engine.Converse(7, turn2, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->cache_hit);
  EXPECT_EQ(result->hit_tier, Tier::kDram);
  EXPECT_EQ(result->reused_tokens, 15ULL);   // turn1 input + reply
  EXPECT_EQ(result->computed_tokens, 6ULL);  // only the new input
  EXPECT_EQ(result->prompt_tokens, 21ULL);
}

// The central correctness property: CachedAttention's replies are
// *identical* to the recompute baseline's — reuse changes cost, not output.
TEST_F(EngineTest, RepliesMatchRecomputeBaselineAcrossTurns) {
  CachedAttentionEngine ca(&model_, DefaultOptions());
  CachedAttentionEngine re(&model_, RecomputeOptions());
  for (std::uint64_t turn = 0; turn < 4; ++turn) {
    const auto input = MakeTokens(8 + turn, 100 + turn, model_.config().vocab_size);
    auto r_ca = ca.Converse(1, input, 6);
    auto r_re = re.Converse(1, input, 6);
    ASSERT_TRUE(r_ca.ok());
    ASSERT_TRUE(r_re.ok());
    EXPECT_EQ(r_ca->reply, r_re->reply) << "turn " << turn;
    EXPECT_TRUE(r_ca->cache_hit == (turn > 0));
    EXPECT_FALSE(r_re->cache_hit);
  }
  // And the engines agree on the visible history.
  EXPECT_EQ(ca.SessionHistory(1), re.SessionHistory(1));
  EXPECT_GT(ca.stats().reuse_fraction(), 0.4);
  EXPECT_DOUBLE_EQ(re.stats().reuse_fraction(), 0.0);
}

TEST_F(EngineTest, IndependentSessionsDontInterfere) {
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const auto a1 = MakeTokens(10, 5, model_.config().vocab_size);
  const auto b1 = MakeTokens(12, 6, model_.config().vocab_size);
  ASSERT_TRUE(engine.Converse(1, a1, 4).ok());
  ASSERT_TRUE(engine.Converse(2, b1, 4).ok());
  EXPECT_EQ(engine.SessionHistory(1).size(), 14U);
  EXPECT_EQ(engine.SessionHistory(2).size(), 16U);
  // Session 2's turn must not evict session 1 in this large store.
  auto r = engine.Converse(1, MakeTokens(5, 7, model_.config().vocab_size), 4);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
}

TEST_F(EngineTest, OverflowKvTruncationKeepsCacheValid) {
  // Window 256 (Mini). Long turns force overflow.
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const std::size_t vocab = model_.config().vocab_size;
  ASSERT_TRUE(engine.Converse(3, MakeTokens(120, 8, vocab), 60).ok());   // hist 180
  auto r2 = engine.Converse(3, MakeTokens(100, 9, vocab), 30);           // 180+100 > 256
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->truncated);
  EXPECT_TRUE(r2->cache_hit);  // decoupled PE: cache survives truncation
  EXPECT_GT(r2->reused_tokens, 0ULL);
  EXPECT_LE(engine.SessionHistory(3).size(), model_.config().context_window);
  EXPECT_EQ(engine.stats().truncations, 1ULL);
}

TEST_F(EngineTest, OverflowInvalidatePolicyMisses) {
  EngineOptions options = DefaultOptions();
  options.overflow_policy = OverflowPolicy::kInvalidate;
  CachedAttentionEngine engine(&model_, options);
  const std::size_t vocab = model_.config().vocab_size;
  ASSERT_TRUE(engine.Converse(3, MakeTokens(120, 8, vocab), 60).ok());
  auto r2 = engine.Converse(3, MakeTokens(100, 9, vocab), 30);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->truncated);
  EXPECT_FALSE(r2->cache_hit);  // OF: overflow invalidated the cache
}

TEST_F(EngineTest, OverflowTokenTruncatePolicyRecomputes) {
  EngineOptions options = DefaultOptions();
  options.overflow_policy = OverflowPolicy::kTokenTruncate;
  CachedAttentionEngine engine(&model_, options);
  const std::size_t vocab = model_.config().vocab_size;
  ASSERT_TRUE(engine.Converse(3, MakeTokens(120, 8, vocab), 60).ok());
  auto r2 = engine.Converse(3, MakeTokens(100, 9, vocab), 30);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->truncated);
  EXPECT_FALSE(r2->cache_hit);
  EXPECT_EQ(r2->computed_tokens, r2->prompt_tokens);  // full recompute
}

// TT and CA (kKvTruncate) produce *similar* but not identical results after
// overflow (see decoupled_pe_test.cc); the engine-level check here is that
// both respect the window and both keep serving the session.
TEST_F(EngineTest, OverflowPoliciesKeepServing) {
  for (const OverflowPolicy policy :
       {OverflowPolicy::kKvTruncate, OverflowPolicy::kTokenTruncate, OverflowPolicy::kInvalidate,
        OverflowPolicy::kNaiveKvTruncate}) {
    EngineOptions options = DefaultOptions();
    options.overflow_policy = policy;
    CachedAttentionEngine engine(&model_, options);
    const std::size_t vocab = model_.config().vocab_size;
    for (int turn = 0; turn < 5; ++turn) {
      auto r = engine.Converse(1, MakeTokens(90, 20 + turn, vocab), 20);
      ASSERT_TRUE(r.ok()) << "policy " << static_cast<int>(policy) << " turn " << turn;
      EXPECT_LE(engine.SessionHistory(1).size(), model_.config().context_window);
    }
  }
}

TEST_F(EngineTest, TinyDramSpillsToDiskAndStillHits) {
  EngineOptions options = DefaultOptions();
  // One turn's KV (125 tokens * 2 KiB/token ~ 250 KiB) exceeds DRAM; the
  // store must spill to disk and serve hits from there.
  options.store.dram_capacity = KiB(128);
  options.store.disk_capacity = MiB(256);
  CachedAttentionEngine engine(&model_, options);
  const std::size_t vocab = model_.config().vocab_size;
  ASSERT_TRUE(engine.Converse(1, MakeTokens(120, 1, vocab), 5).ok());
  auto r = engine.Converse(1, MakeTokens(8, 2, vocab), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->hit_tier, Tier::kDisk);
}

TEST_F(EngineTest, AsyncSaveFlushesAndHits) {
  EngineOptions options = DefaultOptions();
  options.async_save = true;
  CachedAttentionEngine engine(&model_, options);
  const std::size_t vocab = model_.config().vocab_size;
  ASSERT_TRUE(engine.Converse(1, MakeTokens(10, 1, vocab), 5).ok());
  // Immediately converse again: the engine must wait for the pending save,
  // not miss.
  auto r = engine.Converse(1, MakeTokens(5, 2, vocab), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  engine.Flush();
}

TEST_F(EngineTest, AsyncMatchesSyncReplies) {
  EngineOptions sync_opts = DefaultOptions();
  EngineOptions async_opts = DefaultOptions();
  async_opts.async_save = true;
  CachedAttentionEngine sync_engine(&model_, sync_opts);
  CachedAttentionEngine async_engine(&model_, async_opts);
  const std::size_t vocab = model_.config().vocab_size;
  for (int turn = 0; turn < 3; ++turn) {
    const auto input = MakeTokens(10, 30 + turn, vocab);
    auto a = sync_engine.Converse(1, input, 6);
    auto b = async_engine.Converse(1, input, 6);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->reply, b->reply);
  }
}

TEST_F(EngineTest, EndSessionForgets) {
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const std::size_t vocab = model_.config().vocab_size;
  ASSERT_TRUE(engine.Converse(1, MakeTokens(10, 1, vocab), 5).ok());
  engine.EndSession(1);
  EXPECT_TRUE(engine.SessionHistory(1).empty());
  auto r = engine.Converse(1, MakeTokens(5, 2, vocab), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
}

TEST_F(EngineTest, ForwardTurnReturnsLogitsAndAdvances) {
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const std::size_t vocab = model_.config().vocab_size;
  const auto tokens = MakeTokens(12, 3, vocab);
  auto logits = engine.ForwardTurn(5, tokens);
  ASSERT_TRUE(logits.ok());
  EXPECT_EQ(logits->dim(0), 12U);
  EXPECT_EQ(logits->dim(1), vocab);
  EXPECT_EQ(engine.SessionHistory(5).size(), 12U);
  // Second ForwardTurn reuses the cache.
  auto logits2 = engine.ForwardTurn(5, MakeTokens(4, 4, vocab));
  ASSERT_TRUE(logits2.ok());
  EXPECT_EQ(engine.SessionHistory(5).size(), 16U);
  EXPECT_GT(engine.stats().reused_tokens, 0ULL);
}

TEST_F(EngineTest, TurnLargerThanWindowRejected) {
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const auto huge = MakeTokens(model_.config().context_window, 1, model_.config().vocab_size);
  auto r = engine.Converse(1, huge, 5);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, StatsAccumulate) {
  CachedAttentionEngine engine(&model_, DefaultOptions());
  const std::size_t vocab = model_.config().vocab_size;
  ASSERT_TRUE(engine.Converse(1, MakeTokens(10, 1, vocab), 5).ok());
  ASSERT_TRUE(engine.Converse(1, MakeTokens(10, 2, vocab), 5).ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.turns, 2ULL);
  EXPECT_GT(stats.prefill_seconds, 0.0);
  EXPECT_EQ(stats.prompt_tokens, 10ULL + 25ULL);
  EXPECT_EQ(stats.reused_tokens, 15ULL);
}

TEST_F(EngineTest, QueueHintProtectsUpcomingSession) {
  EngineOptions options = DefaultOptions();
  // DRAM holds two session caches (each turn's KV is ~45 tok * 2 KiB =
  // 90 KiB; blocks are 128 KiB); a third session forces a demotion.
  options.store.dram_capacity = KiB(256);
  options.store.block_bytes = KiB(128);
  options.store.disk_capacity = MiB(64);
  CachedAttentionEngine engine(&model_, options);
  const std::size_t vocab = model_.config().vocab_size;

  ASSERT_TRUE(engine.Converse(1, MakeTokens(40, 1, vocab), 5).ok());
  ASSERT_TRUE(engine.Converse(2, MakeTokens(40, 2, vocab), 5).ok());
  // Announce that session 1 will be used next; saving session 3 must demote
  // session 2 (unhinted) instead of the older session 1.
  engine.SetQueueHint({1});
  ASSERT_TRUE(engine.Converse(3, MakeTokens(40, 4, vocab), 5).ok());
  // Session 1's KV must still be the DRAM resident.
  auto r = engine.Converse(1, MakeTokens(8, 3, vocab), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->hit_tier, Tier::kDram);
}

// TSan regression for the stats_ data race: N threads conversing on N
// *distinct* sessions is the documented concurrency contract, and before
// the AccumulateTurnStats fix every one of them bumped the unguarded
// EngineStats counters. Replies must also match a serial engine's (the
// sessions are independent, so interleaving changes nothing).
TEST_F(EngineTest, ConcurrentConverseOnDistinctSessions) {
  EngineOptions options = DefaultOptions();
  options.async_save = true;  // exercise the write stream too
  CachedAttentionEngine engine(&model_, options);
  constexpr int kThreads = 4;
  constexpr int kTurns = 3;
  const std::size_t vocab = model_.config().vocab_size;
  std::atomic<int> failures{0};
  std::vector<std::vector<std::vector<TokenId>>> replies(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int turn = 0; turn < kTurns; ++turn) {
        const auto input = MakeTokens(8, 1000 + t * 100 + turn, vocab);
        auto r = engine.Converse(static_cast<SessionId>(500 + t), input, 4);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        replies[t].push_back(r->reply);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  engine.Flush();
  ASSERT_EQ(failures.load(), 0);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.turns, static_cast<std::uint64_t>(kThreads * kTurns));
  EXPECT_GT(stats.reused_tokens, 0ULL);

  // Serial reference: same per-session inputs, one thread.
  CachedAttentionEngine serial(&model_, DefaultOptions());
  for (int t = 0; t < kThreads; ++t) {
    for (int turn = 0; turn < kTurns; ++turn) {
      const auto input = MakeTokens(8, 1000 + t * 100 + turn, vocab);
      auto r = serial.Converse(static_cast<SessionId>(500 + t), input, 4);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->reply, replies[t][static_cast<std::size_t>(turn)])
          << "thread " << t << " turn " << turn;
    }
  }
}

TEST_F(EngineTest, CompressionAndTruncationCompose) {
  EngineOptions options = DefaultOptions();
  options.compression.policy = CompressionPolicy::kAttentionSink;
  options.compression.sink_tokens = 2;
  options.compression.recent_tokens = 100;
  CachedAttentionEngine engine(&model_, options);
  const std::size_t vocab = model_.config().vocab_size;
  // Long turns: compression bounds growth, truncation handles the rest.
  for (int turn = 0; turn < 8; ++turn) {
    auto r = engine.Converse(1, MakeTokens(80, 300 + turn, vocab), 30);
    ASSERT_TRUE(r.ok()) << "turn " << turn;
    EXPECT_LE(engine.SessionHistory(1).size(), model_.config().context_window);
    if (turn > 0) {
      EXPECT_TRUE(r->cache_hit) << "turn " << turn;
    }
  }
  EXPECT_GT(engine.stats().compressed_tokens, 0ULL);
}

}  // namespace
}  // namespace ca
