// Exercises the store's invariant auditor (StoreConfig::audit +
// AttentionStore::CheckInvariants):
//  * a randomized stress test hammers Put / Promote / Demote / Remove /
//    ExpireTtl / MaintainDramBuffer interleavings with the audit running
//    after every mutation, in both capacity-only and real-payload modes —
//    any byte-accounting drift, leaked extent or tier-capacity breach
//    aborts at the mutation that introduced it;
//  * death tests prove the auditor actually fires on injected corruption
//    (the audit path is verified, not decorative);
//  * a multi-threaded BlockStorage test drives the tier storage mutex that
//    the asynchronous KV-save stream and IO threads rely on (the TSan
//    preset runs this suite).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/store/attention_store.h"
#include "src/store/block_storage.h"

namespace ca {
namespace {

const SchedulerHints kNoHints;

StoreConfig AuditedConfig() {
  StoreConfig config;
  config.hbm_capacity = 0;
  config.dram_capacity = KiB(64);   // 16 blocks
  config.disk_capacity = KiB(128);  // 32 blocks
  config.block_bytes = KiB(4);
  config.audit = true;
  return config;
}

std::vector<std::uint8_t> Payload(std::size_t bytes, std::uint8_t fill) {
  return std::vector<std::uint8_t>(bytes, fill);
}

// One randomized stress round. Every mutation re-runs CheckInvariants via
// the audit flag, so a failure pinpoints the operation that corrupted the
// accounting.
void StressRound(StoreConfig config, std::uint64_t seed) {
  AttentionStore store(std::move(config));
  Rng rng(seed);
  const bool real = store.config().real_payloads;
  SimTime now = 0;
  constexpr SessionId kSessions = 24;

  SchedulerHints hints;
  for (SessionId s = 0; s < kSessions; s += 2) {
    hints.next_use_index.emplace(s, s);
  }

  for (int step = 0; step < 2000; ++step) {
    now += 1 + static_cast<SimTime>(rng.NextBounded(5));
    const SessionId session = rng.NextBounded(kSessions);
    const auto& h = rng.NextBool(0.5) ? hints : kNoHints;
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2: {  // Put (fresh insert or update), 1..4 blocks, odd sizes
        const std::uint64_t bytes = 1 + rng.NextBounded(4 * KiB(4));
        const auto payload = real ? Payload(bytes, static_cast<std::uint8_t>(session)) :
                                    std::vector<std::uint8_t>{};
        (void)store.Put(session, bytes, bytes / 16, payload, now, h);
        break;
      }
      case 3:
        (void)store.Promote(session, now, h);
        break;
      case 4:
        (void)store.Demote(session, now, h);
        break;
      case 5:
        store.Remove(session);
        break;
      case 6:
        (void)store.ExpireTtl(now);
        break;
      case 7:
        (void)store.MaintainDramBuffer(now, h);
        break;
    }
    // Payload integrity spot check: a resident record must read back the
    // fill byte its payload was written with.
    if (real && step % 97 == 0) {
      const Tier tier = store.Lookup(session);
      if (tier != Tier::kNone) {
        auto read = store.ReadPayload(session);
        ASSERT_TRUE(read.ok()) << read.status();
        ASSERT_FALSE(read->empty());
        EXPECT_EQ(read->front(), static_cast<std::uint8_t>(session));
        EXPECT_EQ(read->back(), static_cast<std::uint8_t>(session));
      }
    }
  }
  // Final explicit audit (also covers the audit-off configurations below).
  store.CheckInvariants();
}

TEST(StoreAuditStress, CapacityOnlyInterleavings) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    StressRound(AuditedConfig(), seed);
  }
}

TEST(StoreAuditStress, RealPayloadInterleavings) {
  StoreConfig config = AuditedConfig();
  config.real_payloads = true;  // disk_path auto-uniqued per process
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    StressRound(config, seed);
  }
}

TEST(StoreAuditStress, DramBufferMaintenanceUnderTtl) {
  StoreConfig config = AuditedConfig();
  config.dram_buffer = KiB(16);  // keep 4 blocks free for disk->DRAM fetches
  config.ttl = 50;
  StressRound(config, 99);
}

TEST(StoreAuditStress, HbmTierEnabled) {
  StoreConfig config = AuditedConfig();
  config.hbm_capacity = KiB(16);
  config.real_payloads = true;
  StressRound(config, 7);
}

// The auditor must fire on real corruption — otherwise the audit flag is
// decorative. Inject accounting drift through the test-only hook and expect
// the CA_CHECK abort.
using StoreAuditDeathTest = ::testing::Test;

TEST(StoreAuditDeathTest, FiresOnUsedBytesDrift) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AttentionStore store(AuditedConfig());
  ASSERT_TRUE(store.Put(1, KiB(4), 10, {}, 0, kNoHints).ok());
  store.CheckInvariants();  // clean before the injection
  store.CorruptUsedBytesForTesting(Tier::kDram, static_cast<std::int64_t>(KiB(4)));
  EXPECT_DEATH(store.CheckInvariants(), "used_bytes drifted");
}

TEST(StoreAuditDeathTest, FiresOnCapacityBreach) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AttentionStore store(AuditedConfig());
  store.CorruptUsedBytesForTesting(Tier::kDisk,
                                   static_cast<std::int64_t>(store.CapacityBytes(Tier::kDisk)) +
                                       static_cast<std::int64_t>(KiB(4)));
  EXPECT_DEATH(store.CheckInvariants(), "more than its capacity");
}

TEST(StoreAuditDeathTest, AuditFlagTripsOnNextMutation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AttentionStore store(AuditedConfig());
  ASSERT_TRUE(store.Put(1, KiB(4), 10, {}, 0, kNoHints).ok());
  store.CorruptUsedBytesForTesting(Tier::kDram, -static_cast<std::int64_t>(KiB(4)));
  // The corruption is caught by the *next* mutating operation, not only by
  // an explicit CheckInvariants call. (Remove's own accounting update makes
  // the injected deficit surface as either drift or a capacity breach.)
  EXPECT_DEATH(store.Remove(1), "CA_CHECK failed at");
}

// --- BlockStorage thread-safety ------------------------------------------
//
// The async save stream (and future parallel IO threads) share one
// BlockStorage per tier; Write/Read/Free/UsedBlocks must be individually
// thread-safe. TSan verifies the mutex discipline when this suite runs
// under the tsan preset.
void HammerStorage(BlockStorage& storage) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&storage, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t bytes = 1 + rng.NextBounded(2 * KiB(4));
        const auto fill = static_cast<std::uint8_t>(t * 16 + 1);
        auto extent = storage.Write(Payload(bytes, fill));
        if (!extent.ok()) {
          continue;  // pool momentarily exhausted by the other threads
        }
        auto read = storage.Read(*extent);
        ASSERT_TRUE(read.ok()) << read.status();
        ASSERT_EQ(read->size(), bytes);
        EXPECT_EQ(read->front(), fill);
        EXPECT_EQ(read->back(), fill);
        (void)storage.UsedBlocks();
        storage.Free(*extent);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(storage.UsedBlocks(), 0ULL);
}

TEST(BlockStorageThreadSafety, MemoryStorageParallelWriteReadFree) {
  MemoryBlockStorage storage(KiB(64), KiB(4));
  HammerStorage(storage);
}

TEST(BlockStorageThreadSafety, FileStorageParallelWriteReadFree) {
  auto storage = FileBlockStorage::Open(testing::TempDir() + "/ca_audit_hammer." +
                                            std::to_string(::getpid()) + ".blocks",
                                        KiB(64), KiB(4));
  ASSERT_TRUE(storage.ok()) << storage.status();
  HammerStorage(**storage);
}

}  // namespace
}  // namespace ca
