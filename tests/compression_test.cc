// KV compression (token-discarding list) tests: TDL construction rules,
// attention-mass accumulation, cache application, and engine integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/cached_attention.h"
#include "src/model/compression.h"
#include "src/model/transformer.h"

namespace ca {
namespace {

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

CompressionConfig SinkConfig() {
  CompressionConfig c;
  c.policy = CompressionPolicy::kAttentionSink;
  c.sink_tokens = 4;
  c.recent_tokens = 8;
  return c;
}

TEST(TdlTest, NonePolicyDiscardsNothing) {
  CompressionConfig c;
  c.policy = CompressionPolicy::kNone;
  EXPECT_TRUE(BuildTokenDiscardList(c, 100, {}).empty());
}

TEST(TdlTest, SinkPolicyKeepsSinksAndRecents) {
  const auto discard = BuildTokenDiscardList(SinkConfig(), 20, {});
  // Middle = positions 4..11 (20 - 8 recents = 12 exclusive end).
  ASSERT_EQ(discard.size(), 8U);
  EXPECT_EQ(discard.front(), 4U);
  EXPECT_EQ(discard.back(), 11U);
  for (const std::size_t i : discard) {
    EXPECT_GE(i, 4U);
    EXPECT_LT(i, 12U);
  }
}

TEST(TdlTest, ShortSequenceUntouched) {
  // seq_len <= sinks + recents: nothing to discard.
  EXPECT_TRUE(BuildTokenDiscardList(SinkConfig(), 12, {}).empty());
  EXPECT_TRUE(BuildTokenDiscardList(SinkConfig(), 3, {}).empty());
}

TEST(TdlTest, ImportanceKeepsHeavyHitters) {
  CompressionConfig c = SinkConfig();
  c.policy = CompressionPolicy::kImportance;
  c.middle_keep_ratio = 0.25;  // keep 2 of the 8 middle tokens
  std::vector<float> mass(20, 0.0f);
  mass[6] = 10.0f;  // heavy hitters in the middle
  mass[9] = 8.0f;
  const auto discard = BuildTokenDiscardList(c, 20, mass);
  ASSERT_EQ(discard.size(), 6U);
  EXPECT_EQ(std::count(discard.begin(), discard.end(), 6U), 0);
  EXPECT_EQ(std::count(discard.begin(), discard.end(), 9U), 0);
  EXPECT_TRUE(std::is_sorted(discard.begin(), discard.end()));
}

TEST(TdlTest, ImportanceToleratesShortMassVector) {
  CompressionConfig c = SinkConfig();
  c.policy = CompressionPolicy::kImportance;
  c.middle_keep_ratio = 0.5;
  const std::vector<float> mass = {1.0f, 2.0f};  // shorter than seq_len
  const auto discard = BuildTokenDiscardList(c, 20, mass);
  EXPECT_EQ(discard.size(), 4U);  // half of the 8 middle tokens go
}

TEST(TdlTest, RandomIsDeterministicPerSeedAndRespectsBounds) {
  CompressionConfig c = SinkConfig();
  c.policy = CompressionPolicy::kRandom;
  c.middle_keep_ratio = 0.5;
  c.seed = 7;
  const auto a = BuildTokenDiscardList(c, 40, {});
  const auto b = BuildTokenDiscardList(c, 40, {});
  EXPECT_EQ(a, b);
  c.seed = 8;
  const auto d = BuildTokenDiscardList(c, 40, {});
  EXPECT_NE(a, d);
  for (const std::size_t i : a) {
    EXPECT_GE(i, c.sink_tokens);
    EXPECT_LT(i, 40U - c.recent_tokens);
  }
}

TEST(AttentionMassTest, AccumulatesPerPosition) {
  const Transformer model(ModelConfig::Tiny(), 5);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(10, 2, model.config().vocab_size);
  AttentionMassAccumulator acc;
  (void)model.Forward(tokens, cache, &acc);
  ASSERT_EQ(acc.mass().size(), 10U);
  // Each (layer, head, query t) row sums to 1 over positions 0..t, so the
  // total mass equals layers * heads * tokens.
  double total = 0.0;
  for (const float m : acc.mass()) {
    EXPECT_GE(m, 0.0f);
    total += m;
  }
  const auto& c = model.config();
  EXPECT_NEAR(total, static_cast<double>(c.n_layers * c.n_heads * tokens.size()), 1e-2);
}

TEST(CompressCacheTest, RemovesTokensFromCache) {
  const Transformer model(ModelConfig::Mini(), 9);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(30, 3, model.config().vocab_size);
  (void)model.Forward(tokens, cache);
  const std::size_t removed = CompressCache(SinkConfig(), cache, {});
  EXPECT_EQ(removed, 30U - 4 - 8);
  EXPECT_EQ(cache.seq_len(), 12U);
}

TEST(CompressCacheDeathTest, CoupledPeAborts) {
  const Transformer model(ModelConfig::Mini(), 9);
  KvCache cache = model.MakeCache(PeMode::kCoupled);
  const auto tokens = MakeTokens(30, 3, model.config().vocab_size);
  (void)model.Forward(tokens, cache);
  EXPECT_DEATH((void)CompressCache(SinkConfig(), cache, {}), "decoupled");
}

// A compressed cache stays *valid*: forwarding a probe over it equals
// forwarding the probe over a fresh cache built from the kept token text.
TEST(CompressCacheTest, CompressedCacheMatchesRebuiltOneLayer) {
  ModelConfig config = ModelConfig::Mini();
  config.n_layers = 1;  // K/V context-free: exact equivalence (see
                        // decoupled_pe_test.cc for the multi-layer story)
  const Transformer model(config, 11);
  const auto tokens = MakeTokens(30, 4, config.vocab_size);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  (void)model.Forward(tokens, cache);
  const auto discard = BuildTokenDiscardList(SinkConfig(), 30, {});
  cache.DiscardTokens(discard);

  std::vector<TokenId> kept;
  std::set<std::size_t> dropped(discard.begin(), discard.end());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (dropped.count(i) == 0) {
      kept.push_back(tokens[i]);
    }
  }
  KvCache rebuilt = model.MakeCache(PeMode::kDecoupled);
  (void)model.Forward(kept, rebuilt);

  const auto probe = MakeTokens(5, 6, config.vocab_size);
  KvCache c1 = cache.Clone();
  KvCache c2 = rebuilt.Clone();
  const Tensor l1 = model.Forward(probe, c1);
  const Tensor l2 = model.Forward(probe, c2);
  EXPECT_LT(MaxAbsDiff(l1, l2), 2e-4f);
}

TEST(EngineCompressionTest, LongSessionStaysBounded) {
  const Transformer model(ModelConfig::Mini(), 13);
  EngineOptions options;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(256);
  options.store.block_bytes = KiB(64);
  options.compression.policy = CompressionPolicy::kAttentionSink;
  options.compression.sink_tokens = 4;
  options.compression.recent_tokens = 64;
  CachedAttentionEngine engine(&model, options);

  const std::size_t vocab = model.config().vocab_size;
  for (int turn = 0; turn < 6; ++turn) {
    const auto result =
        engine.Converse(1, MakeTokens(40, 100 + turn, vocab), 10);
    ASSERT_TRUE(result.ok());
    if (turn > 0) {
      EXPECT_TRUE(result->cache_hit);
    }
    // Sinks + recents bound the carried history.
    EXPECT_LE(engine.SessionHistory(1).size(), 4U + 64U + 50U);
  }
  EXPECT_GT(engine.stats().compressed_tokens, 0ULL);
}

TEST(EngineCompressionTest, ImportancePolicyRunsAndAccumulates) {
  const Transformer model(ModelConfig::Mini(), 13);
  EngineOptions options;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(256);
  options.store.block_bytes = KiB(64);
  options.compression.policy = CompressionPolicy::kImportance;
  options.compression.sink_tokens = 2;
  options.compression.recent_tokens = 16;
  options.compression.middle_keep_ratio = 0.5;
  CachedAttentionEngine engine(&model, options);

  const std::size_t vocab = model.config().vocab_size;
  for (int turn = 0; turn < 4; ++turn) {
    ASSERT_TRUE(engine.Converse(1, MakeTokens(30, 200 + turn, vocab), 8).ok());
  }
  EXPECT_GT(engine.stats().compressed_tokens, 0ULL);
  EXPECT_LT(engine.SessionHistory(1).size(), 4U * 38U);  // well below uncompressed
}

}  // namespace
}  // namespace ca
