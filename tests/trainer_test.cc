// Training substrate tests: Markov corpus statistics, exact gradients
// (checked against central finite differences), and end-to-end learning.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/model/transformer.h"
#include "src/train/markov_data.h"
#include "src/train/trainer.h"

namespace ca {
namespace {

TEST(MarkovCorpusTest, SamplesValidTokens) {
  MarkovCorpus corpus(16, 3, 1);
  Rng rng(2);
  const auto seq = corpus.Sample(500, rng);
  ASSERT_EQ(seq.size(), 500U);
  for (const TokenId t : seq) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 16);
  }
}

TEST(MarkovCorpusTest, TransitionProbsSumToOne) {
  MarkovCorpus corpus(8, 4, 3);
  for (TokenId a = 0; a < 8; ++a) {
    for (TokenId b = 0; b < 8; ++b) {
      double sum = 0.0;
      for (TokenId c = 0; c < 8; ++c) {
        sum += corpus.TransitionProb(a, b, c);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(MarkovCorpusTest, SampledTokensFollowTransitions) {
  MarkovCorpus corpus(8, 2, 5);
  Rng rng(6);
  const auto seq = corpus.Sample(2000, rng);
  for (std::size_t i = 2; i < seq.size(); ++i) {
    EXPECT_GT(corpus.TransitionProb(seq[i - 2], seq[i - 1], seq[i]), 0.0);
  }
}

TEST(MarkovCorpusTest, EntropyBelowUniform) {
  MarkovCorpus corpus(32, 4, 7);
  Rng rng(8);
  const double entropy = corpus.EstimateEntropy(5000, rng);
  EXPECT_GT(entropy, 0.0);
  EXPECT_LT(entropy, std::log(32.0));  // structured => below uniform
  EXPECT_LT(entropy, 1.6);             // branching-4 Zipf chain: ~1.24 nats
}

TEST(MarkovCorpusTest, BestNextIsModalSuccessor) {
  MarkovCorpus corpus(8, 3, 9);
  for (TokenId a = 0; a < 8; ++a) {
    for (TokenId b = 0; b < 8; ++b) {
      const TokenId best = corpus.BestNext(a, b);
      const double p_best = corpus.TransitionProb(a, b, best);
      for (TokenId c = 0; c < 8; ++c) {
        EXPECT_LE(corpus.TransitionProb(a, b, c), p_best + 1e-12);
      }
    }
  }
}

// --- gradient check ------------------------------------------------------

// Central finite differences on every parameter of a micro model must match
// the analytic gradients. This validates the rmsnorm / RoPE / GQA
// attention / SwiGLU backward passes end to end.
TEST(TrainerTest, GradientsMatchFiniteDifferences) {
  ModelConfig config;
  config.name = "grad-check";
  config.vocab_size = 11;
  config.d_model = 8;
  config.n_layers = 2;
  config.n_heads = 2;
  config.n_kv_heads = 1;  // exercise GQA accumulation
  config.d_ff = 12;
  config.context_window = 16;
  Transformer model(config, 99);
  Trainer trainer(&model, TrainConfig{});

  const std::vector<TokenId> seq = {1, 4, 7, 2, 9, 3, 5};

  trainer.ZeroGrads();
  (void)trainer.ForwardBackward(seq);

  const auto params = trainer.Parameters();
  const auto grads = trainer.Gradients();
  const float h = 1e-3f;
  std::size_t checked = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    const Tensor& g = *grads[p];
    // Probe a deterministic subset of entries per tensor (full sweep is
    // O(params * forward) — too slow for the larger matrices).
    const std::size_t stride = std::max<std::size_t>(1, w.numel() / 7);
    for (std::size_t i = 0; i < w.numel(); i += stride) {
      const float orig = w[i];
      w[i] = orig + h;
      Trainer probe_hi(&model, TrainConfig{});
      const double hi = probe_hi.ForwardBackward(seq);
      w[i] = orig - h;
      Trainer probe_lo(&model, TrainConfig{});
      const double lo = probe_lo.ForwardBackward(seq);
      w[i] = orig;
      const double fd = (hi - lo) / (2.0 * h);
      const double analytic = g[i];
      const double denom = std::max(1.0, std::max(std::fabs(fd), std::fabs(analytic)));
      EXPECT_NEAR(analytic / denom, fd / denom, 2e-2)
          << "param tensor " << p << " index " << i << " fd=" << fd << " an=" << analytic;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50U);
}

TEST(TrainerTest, StepReducesLoss) {
  const ModelConfig config = [] {
    ModelConfig c;
    c.vocab_size = 16;
    c.d_model = 32;
    c.n_layers = 2;
    c.n_heads = 4;
    c.n_kv_heads = 2;
    c.d_ff = 64;
    c.context_window = 64;
    return c;
  }();
  Transformer model(config, 7);
  TrainConfig tc;
  tc.batch_size = 4;
  tc.seq_len = 24;
  Trainer trainer(&model, tc);
  MarkovCorpus corpus(config.vocab_size, 3, 11);
  Rng rng(12);

  std::vector<std::vector<TokenId>> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    batch.push_back(corpus.Sample(25, rng));
  }
  const double before = trainer.EvalLoss(batch);
  double last = before;
  for (int step = 0; step < 30; ++step) {
    last = trainer.Step(batch);  // overfit a fixed batch
  }
  EXPECT_LT(last, before * 0.8) << "loss " << before << " -> " << last;
}

TEST(TrainerTest, TrainApproachesCorpusEntropy) {
  ModelConfig config;
  config.vocab_size = 16;
  config.d_model = 64;
  config.n_layers = 2;
  config.n_heads = 4;
  config.n_kv_heads = 2;
  config.d_ff = 128;
  config.context_window = 128;

  MarkovCorpus corpus(config.vocab_size, 4, 21);
  TrainConfig tc;
  tc.steps = 350;
  tc.batch_size = 8;
  tc.seq_len = 48;
  tc.lr = 3e-3f;
  Transformer model = TrainMiniLm(config, corpus, tc, 31);

  // Evaluate on held-out data.
  Trainer eval(&model, tc);
  Rng rng(99);
  std::vector<std::vector<TokenId>> held_out;
  for (int i = 0; i < 8; ++i) {
    held_out.push_back(corpus.Sample(49, rng));
  }
  const double loss = eval.EvalLoss(held_out);
  const double uniform = std::log(static_cast<double>(config.vocab_size));
  Rng erng(100);
  const double entropy = corpus.EstimateEntropy(4000, erng);
  // Model must have learned real structure: much closer to the chain's
  // entropy than to the uniform baseline.
  EXPECT_LT(loss, 0.65 * uniform) << "loss " << loss << " uniform " << uniform;
  EXPECT_GT(loss, entropy - 0.05);  // cannot beat the source entropy
}

TEST(TrainerTest, EvalLossMatchesForwardPath) {
  // EvalLoss runs through Transformer::Forward (the inference path); a
  // freshly initialised model must score ~uniform on random tokens.
  ModelConfig config = ModelConfig::Tiny();
  Transformer model(config, 3);
  Trainer trainer(&model, TrainConfig{});
  Rng rng(5);
  std::vector<std::vector<TokenId>> batch(2);
  for (auto& seq : batch) {
    for (int i = 0; i < 20; ++i) {
      seq.push_back(static_cast<TokenId>(rng.NextBounded(config.vocab_size)));
    }
  }
  const double loss = trainer.EvalLoss(batch);
  EXPECT_NEAR(loss, std::log(static_cast<double>(config.vocab_size)), 1.0);
}

}  // namespace
}  // namespace ca
