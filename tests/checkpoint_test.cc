// Checkpoint save/load round trips, corruption detection, architecture
// validation, and the CRC-32C primitive.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/model/checkpoint.h"
#include "src/model/transformer.h"

namespace ca {
namespace {

std::string TempPath(const char* name) { return testing::TempDir() + "/" + name; }

TEST(Crc32cTest, KnownVector) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283U);
}

TEST(Crc32cTest, EmptyAndSensitivity) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0x00000000U);
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_NE(Crc32c(a, 5), Crc32c(b, 5));
}

TEST(CheckpointTest, RoundTripRestoresForward) {
  const ModelConfig config = ModelConfig::Tiny();
  Transformer original(config, 7);
  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveCheckpoint(original, path).ok());

  Transformer restored(config, 999);  // different random init
  ASSERT_TRUE(LoadCheckpoint(restored, path).ok());

  const std::vector<TokenId> tokens = {1, 5, 9, 3};
  KvCache c1 = original.MakeCache(PeMode::kDecoupled);
  KvCache c2 = restored.MakeCache(PeMode::kDecoupled);
  const Tensor l1 = original.Forward(tokens, c1);
  const Tensor l2 = restored.Forward(tokens, c2);
  EXPECT_EQ(MaxAbsDiff(l1, l2), 0.0f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsWrongArchitecture) {
  Transformer model(ModelConfig::Tiny(), 7);
  const std::string path = TempPath("ckpt_arch.bin");
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  Transformer other(ModelConfig::Mini(), 7);
  const Status s = LoadCheckpoint(other, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsCorruptPayload) {
  Transformer model(ModelConfig::Tiny(), 7);
  const std::string path = TempPath("ckpt_corrupt.bin");
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  // Flip one byte in the middle of the payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(256);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(256);
  byte = static_cast<char>(byte ^ 0xFF);
  f.write(&byte, 1);
  f.close();

  const Status s = LoadCheckpoint(model, path);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  const std::string path = TempPath("ckpt_garbage.bin");
  std::ofstream(path) << "not a checkpoint at all";
  Transformer model(ModelConfig::Tiny(), 7);
  EXPECT_FALSE(LoadCheckpoint(model, path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  Transformer model(ModelConfig::Tiny(), 7);
  EXPECT_EQ(LoadCheckpoint(model, "/nonexistent/dir/ckpt.bin").code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ca
