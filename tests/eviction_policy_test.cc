// Eviction policy unit tests: LRU, FIFO, and the scheduler-aware policy's
// window exemption + tail-priority rules (§3.3.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/store/eviction_policy.h"

namespace ca {
namespace {

std::vector<VictimView> Candidates() {
  // session, last_access, insert_seq.
  return {
      {.session = 10, .last_access = 30, .insert_seq = 0, .bytes = 1},
      {.session = 11, .last_access = 10, .insert_seq = 1, .bytes = 1},
      {.session = 12, .last_access = 20, .insert_seq = 2, .bytes = 1},
  };
}

TEST(LruPolicyTest, PicksLeastRecentlyUsed) {
  LruPolicy policy;
  const auto victim = policy.PickVictim(Candidates(), SchedulerHints{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 11U);  // last_access 10
}

TEST(LruPolicyTest, IgnoresHints) {
  LruPolicy policy;
  SchedulerHints hints;
  hints.next_use_index[11] = 0;  // LRU doesn't care that 11 is needed next
  const auto victim = policy.PickVictim(Candidates(), hints);
  EXPECT_EQ(*victim, 11U);
}

TEST(FifoPolicyTest, PicksFirstInserted) {
  FifoPolicy policy;
  const auto victim = policy.PickVictim(Candidates(), SchedulerHints{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 10U);  // insert_seq 0
}

TEST(SchedulerAwarePolicyTest, PrefersSessionsWithoutQueuedJobs) {
  SchedulerAwarePolicy policy;
  SchedulerHints hints;
  hints.next_use_index[11] = 0;  // 11 is needed next: exempt
  const auto victim = policy.PickVictim(Candidates(), hints);
  ASSERT_TRUE(victim.has_value());
  // Among the unqueued (10, 12), LRU tie-break picks 12 (access 20 < 30).
  EXPECT_EQ(*victim, 12U);
}

TEST(SchedulerAwarePolicyTest, AllQueuedPicksWindowTail) {
  SchedulerAwarePolicy policy;
  SchedulerHints hints;
  hints.next_use_index[10] = 3;
  hints.next_use_index[11] = 8;  // furthest next use: the tail
  hints.next_use_index[12] = 1;
  const auto victim = policy.PickVictim(Candidates(), hints);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 11U);
}

TEST(SchedulerAwarePolicyTest, NoHintsFallsBackToLru) {
  SchedulerAwarePolicy policy;
  const auto victim = policy.PickVictim(Candidates(), SchedulerHints{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 11U);
}

TEST(SchedulerAwarePolicyTest, SingleCandidateAlwaysChosen) {
  SchedulerAwarePolicy policy;
  std::vector<VictimView> one = {{.session = 5, .last_access = 1, .insert_seq = 0, .bytes = 1}};
  SchedulerHints hints;
  hints.next_use_index[5] = 0;  // even though it is needed next
  const auto victim = policy.PickVictim(one, hints);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 5U);
}

TEST(DedupAwarePolicyTest, UnsharedVictimsGoFirst) {
  DedupAwarePolicy policy;
  // A shared chunk (2 referrers) is LRU-coldest, but evicting it costs two
  // sessions a miss; the unshared records must go first, LRU among them.
  const std::vector<VictimView> cands = {
      {.session = 10, .last_access = 1, .insert_seq = 0, .bytes = 1, .shared_refs = 2},
      {.session = 11, .last_access = 30, .insert_seq = 1, .bytes = 1, .shared_refs = 0},
      {.session = 12, .last_access = 20, .insert_seq = 2, .bytes = 1, .shared_refs = 0},
  };
  const auto victim = policy.PickVictim(cands, SchedulerHints{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 12U);
}

TEST(DedupAwarePolicyTest, AmongChunksFewestReferrersGoesFirst) {
  DedupAwarePolicy policy;
  // All candidates are shared chunks: eviction cost scales with refcount,
  // so the 1-referrer chunk loses to nothing else despite being hottest.
  const std::vector<VictimView> cands = {
      {.session = 20, .last_access = 1, .insert_seq = 0, .bytes = 1, .shared_refs = 5},
      {.session = 21, .last_access = 99, .insert_seq = 1, .bytes = 1, .shared_refs = 1},
      {.session = 22, .last_access = 2, .insert_seq = 2, .bytes = 1, .shared_refs = 3},
  };
  const auto victim = policy.PickVictim(cands, SchedulerHints{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 21U);
}

TEST(DedupAwarePolicyTest, EqualRefsFallBackToLru) {
  DedupAwarePolicy policy;
  const auto victim = policy.PickVictim(Candidates(), SchedulerHints{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 11U);  // all shared_refs 0: plain LRU
}

TEST(PolicyFactoryTest, MakesAllPolicies) {
  EXPECT_EQ(MakeEvictionPolicy("lru")->name(), "LRU");
  EXPECT_EQ(MakeEvictionPolicy("LRU")->name(), "LRU");
  EXPECT_EQ(MakeEvictionPolicy("fifo")->name(), "FIFO");
  EXPECT_EQ(MakeEvictionPolicy("scheduler-aware")->name(), "scheduler-aware");
  EXPECT_EQ(MakeEvictionPolicy("CA")->name(), "scheduler-aware");
  EXPECT_EQ(MakeEvictionPolicy("dedup-aware")->name(), "dedup-aware");
}

TEST(PolicyFactoryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)MakeEvictionPolicy("belady"), "unknown eviction policy");
}

TEST(SchedulerHintsTest, NextUseAndWindow) {
  SchedulerHints hints;
  hints.next_use_index[7] = 4;
  EXPECT_TRUE(hints.InWindow(7));
  EXPECT_FALSE(hints.InWindow(8));
  EXPECT_EQ(hints.NextUse(7), 4U);
  EXPECT_EQ(hints.NextUse(8), SchedulerHints::kNoFutureUse);
}

// The scheduler-aware policy approximates Belady: on a synthetic access
// trace with a known future, it must achieve at least the hit rate of LRU.
TEST(SchedulerAwarePolicyTest, BeatsLruOnAdversarialTrace) {
  // Cache of 2 slots; cyclic access pattern A B C A B C... LRU hits 0%.
  // With full future knowledge the best achievable is ~1/3.
  auto run = [](EvictionPolicy& policy, bool give_hints) {
    std::vector<SessionId> cache;
    const std::vector<SessionId> trace = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
    int hits = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const SessionId s = trace[i];
      if (std::find(cache.begin(), cache.end(), s) != cache.end()) {
        ++hits;
        continue;
      }
      if (cache.size() >= 2) {
        std::vector<VictimView> cands;
        for (const SessionId c : cache) {
          cands.push_back({.session = c, .last_access = 0, .insert_seq = c, .bytes = 1});
        }
        SchedulerHints hints;
        if (give_hints) {
          for (std::size_t j = i + 1; j < trace.size(); ++j) {
            hints.next_use_index.emplace(trace[j], j - i - 1);
          }
        }
        const auto victim = policy.PickVictim(cands, hints);
        cache.erase(std::find(cache.begin(), cache.end(), victim.value()));
      }
      cache.push_back(s);
    }
    return hits;
  };

  LruPolicy lru;
  SchedulerAwarePolicy aware;
  const int lru_hits = run(lru, false);
  int aware_hits = 0;
  run(aware, true);  // warm-up call for symmetric usage (ignored)
  aware_hits = run(aware, true);
  EXPECT_GT(aware_hits, lru_hits);
}

}  // namespace
}  // namespace ca
