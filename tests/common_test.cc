// Tests for src/common: Status/Result, units, RNG, statistics, table,
// thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/parallel_for.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace ca {
namespace {

// --- Status / Result ---------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = NotFoundError("session 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "session 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: session 7");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("").code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  CA_ASSIGN_OR_RETURN(const int h, Half(x));
  CA_ASSIGN_OR_RETURN(const int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return Status::Ok();
}

Status Chain(int x) {
  CA_RETURN_IF_ERROR(FailIfNegative(x));
  CA_RETURN_IF_ERROR(FailIfNegative(x - 10));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(15).ok());
  EXPECT_FALSE(Chain(5).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

TEST(CheckDeathTest, ChecksAbort) {
  EXPECT_DEATH(CA_CHECK(false) << "boom", "boom");
  EXPECT_DEATH(CA_CHECK_EQ(1, 2), "CA_CHECK failed");
  EXPECT_DEATH(CA_CHECK_LT(3, 2), "CA_CHECK failed");
}

// --- Units -------------------------------------------------------------

TEST(UnitsTest, ByteHelpers) {
  EXPECT_EQ(KiB(1), 1024ULL);
  EXPECT_EQ(MiB(2), 2ULL * 1024 * 1024);
  EXPECT_EQ(GiB(1), 1024ULL * 1024 * 1024);
  EXPECT_EQ(TiB(1), 1024ULL * GiB(1));
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(MiB(5)), "5.00 MiB");
  EXPECT_EQ(FormatBytes(GiB(2) + GiB(1) / 2), "2.50 GiB");
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_EQ(FromSeconds(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(ToSeconds(250 * kMillisecond), 0.25);
  EXPECT_DOUBLE_EQ(ToMilliseconds(kSecond), 1000.0);
}

TEST(UnitsTest, TransferTime) {
  // 26 GB over a 26 GB/s link takes one second.
  EXPECT_NEAR(ToSeconds(TransferTime(26'000'000'000ULL, 26e9)), 1.0, 1e-9);
  EXPECT_EQ(TransferTime(0, 26e9), 0);
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(FromMilliseconds(361.2)), "361.20 ms");
  EXPECT_EQ(FormatDuration(90 * kMinute), "1.50 h");
}

// --- Rng -----------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17ULL);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);  // all 5 values hit in 1000 draws
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.NextExponential(2.0));
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.02);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

// --- Stats ---------------------------------------------------------------

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatTest, MergeEqualsCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.NextGaussian();
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SamplesTest, Quantiles) {
  Samples s;
  for (int i = 100; i >= 1; --i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.1);
}

TEST(SamplesTest, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
}

TEST(RunningStatTest, MergeEmptyIntoEmpty) {
  RunningStat a;
  RunningStat b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0U);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(RunningStatTest, MergeEmptyRhsIsNoOp) {
  RunningStat a;
  a.Add(3.0);
  a.Add(5.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(RunningStatTest, MergeIntoEmptyLhsCopiesRhs) {
  RunningStat rhs;
  rhs.Add(3.0);
  rhs.Add(5.0);
  RunningStat lhs;
  lhs.Merge(rhs);
  EXPECT_EQ(lhs.count(), 2U);
  EXPECT_DOUBLE_EQ(lhs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(lhs.sum(), 8.0);
  EXPECT_DOUBLE_EQ(lhs.min(), 3.0);
  EXPECT_DOUBLE_EQ(lhs.max(), 5.0);
  EXPECT_NEAR(lhs.variance(), rhs.variance(), 1e-12);
}

TEST(SamplesTest, QuantileOnEmptySetIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 0.0);
}

TEST(SamplesTest, QuantileOnSingleElementIsThatElement) {
  Samples s;
  s.Add(42.0);
  // Every quantile of a one-element set is the element itself, including the
  // q=0 / q=1 edges (pos == 0, lo == hi == 0).
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 42.0);
}

TEST(SamplesTest, QuantileEdgesAreExactOrderStatistics) {
  Samples s;
  s.Add(7.0);
  s.Add(-1.0);
  // q=1 must hit the max exactly (pos == size-1, frac == 0 — no
  // interpolation past the last order statistic).
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), -1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 3.0);
}

// --- Logging -------------------------------------------------------------

// Regression test for the data race on Logger's level: set_min_level used to
// be a plain (non-atomic) store racing every CA_LOG filter check from worker
// threads. Runs under the `concurrency` label, so the TSan suite proves the
// atomic accessors fixed it.
TEST(LoggerTest, SetMinLevelRacesLoggingThreads) {
  Logger& logger = Logger::Get();
  const LogLevel before = logger.min_level();
  std::atomic<bool> stop{false};
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Filtered out at every level this test cycles through: exercises
        // the min_level() load without spamming test output.
        CA_LOG(Debug) << "level probe";
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    logger.set_min_level(i % 2 == 0 ? LogLevel::kWarn : LogLevel::kError);
  }
  stop.store(true);
  pool.Wait();
  logger.set_min_level(before);
  SUCCEED();
}

TEST(HistogramTest, BucketsAndCdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_EQ(h.total(), 10U);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.bucket_count(i), 1U);
  }
  EXPECT_DOUBLE_EQ(h.CdfAt(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.CdfAt(10.0), 1.0);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(1e9);
  EXPECT_EQ(h.bucket_count(0), 1U);
  EXPECT_EQ(h.bucket_count(4), 1U);
}

// --- Table ---------------------------------------------------------------

TEST(TableTest, FormatsAligned) {
  Table t({"model", "hit rate"});
  t.AddRow({"LLaMA-13B", Table::Percent(0.86)});
  t.AddRow({"Falcon-40B", Table::Percent(0.9)});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("LLaMA-13B"), std::string::npos);
  EXPECT_NE(s.find("86.0%"), std::string::npos);
  EXPECT_NE(s.find("| model"), std::string::npos);
}

TEST(TableTest, Csv) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, Helpers) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Percent(0.123, 1), "12.3%");
  EXPECT_EQ(Table::Speedup(7.8), "7.8x");
}

TEST(TableDeathTest, RowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only one"}), "CA_CHECK failed");
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  // Wait drains both generations because in_flight covers the parent while
  // it enqueues the child.
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// --- ParallelFor ----------------------------------------------------------

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, 0, 4, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 7, 7, 4, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  ParallelFor(nullptr, 3, 3, 1, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneInlineChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::size_t seen_begin = 99;
  std::size_t seen_end = 0;
  ParallelFor(&pool, 2, 5, 100, [&](std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2U);
  EXPECT_EQ(seen_end, 5U);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, 0, kN, 7, [&](std::size_t b, std::size_t e) {
    ASSERT_LT(b, e);
    ASSERT_LE(e, kN);
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsSerialInOrder) {
  std::vector<std::size_t> order;
  ParallelFor(nullptr, 0, 10, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      order.push_back(i);
    }
  });
  ASSERT_EQ(order.size(), 10U);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelForTest, ReentrantFromPoolTasks) {
  // A ParallelFor caller must only wait on its own chunks, so two
  // concurrent ParallelFor calls sharing one pool cannot deadlock or steal
  // each other's completion signal.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  ThreadPool outer(2);
  for (int c = 0; c < 2; ++c) {
    outer.Submit([&] {
      ParallelFor(&pool, 0, 100, 5,
                  [&](std::size_t b, std::size_t e) { total.fetch_add(static_cast<int>(e - b)); });
    });
  }
  outer.Wait();
  EXPECT_EQ(total.load(), 200);
}

// --- ChunkedHash64 / Checksum64 ----------------------------------------

std::vector<std::uint8_t> HashTestBytes(std::size_t n) {
  Rng rng(29);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.NextBounded(256));
  }
  return out;
}

TEST(ChunkedHashTest, ChunkBoundaryInvariance) {
  // Splitting the input into any Update() sequence must digest identically
  // to one-shot Checksum64 — the store hashes per tier block during the
  // write loop and verifies whole-payload on read.
  const auto data = HashTestBytes(4096 + 37);
  const std::uint64_t whole = Checksum64(data);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{512}, std::size_t{1000}, std::size_t{4096}}) {
    ChunkedHash64 hash;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      const std::size_t len = std::min(chunk, data.size() - off);
      hash.Update(std::span<const std::uint8_t>(data.data() + off, len));
    }
    EXPECT_EQ(hash.Finalize(), whole) << "chunk size " << chunk;
    EXPECT_EQ(hash.total_bytes(), data.size());
  }
}

TEST(ChunkedHashTest, EmptyAndTinyInputs) {
  EXPECT_EQ(Checksum64({}), Checksum64({}));
  const auto a = HashTestBytes(1);
  const auto b = HashTestBytes(63);  // below one lane group
  EXPECT_NE(Checksum64(a), Checksum64({}));
  EXPECT_NE(Checksum64(a), Checksum64(b));
}

TEST(ChunkedHashTest, TrailingZerosChangeDigest) {
  // Length is folded in, so "same bytes plus trailing zeros" must differ.
  std::vector<std::uint8_t> data = HashTestBytes(128);
  const std::uint64_t before = Checksum64(data);
  data.push_back(0);
  EXPECT_NE(Checksum64(data), before);
}

TEST(ChunkedHashTest, SingleBitFlipChangesDigest) {
  std::vector<std::uint8_t> data = HashTestBytes(1 << 16);
  const std::uint64_t before = Checksum64(data);
  data[data.size() / 2] ^= 0x01;
  EXPECT_NE(Checksum64(data), before);
}

TEST(ChunkedHashTest, ScalarAndAvx2KernelsAgree) {
  // The runtime-dispatched kernels must be digest-identical; sizes straddle
  // the group boundary to exercise the bulk loop plus the serial tail.
  if (!ChunkedHashAvx2Available()) {
    GTEST_SKIP() << "no AVX2 on this CPU";
  }
  for (const std::size_t n : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{4096}, std::size_t{100003}}) {
    const auto data = HashTestBytes(n);
    EXPECT_EQ(internal::ChecksumWithKernel(data, /*use_avx2=*/false),
              internal::ChecksumWithKernel(data, /*use_avx2=*/true))
        << "size " << n;
  }
}

TEST(ChunkedHashTest, DispatchedKernelMatchesScalar) {
  // Whatever the boot-time shootout picked, public digests must equal the
  // scalar reference.
  const auto data = HashTestBytes(1 << 15);
  EXPECT_EQ(Checksum64(data), internal::ChecksumWithKernel(data, /*use_avx2=*/false));
}

TEST(ChunkedHashTest, FinalizeIsIdempotent) {
  ChunkedHash64 hash;
  const auto data = HashTestBytes(777);
  hash.Update(data);
  const std::uint64_t first = hash.Finalize();
  EXPECT_EQ(hash.Finalize(), first);
  hash.Update(data);  // more input after a Finalize is allowed
  EXPECT_NE(hash.Finalize(), first);
}

}  // namespace
}  // namespace ca
