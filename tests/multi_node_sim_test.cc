// Multi-node fleet simulation tests (DESIGN.md §16): the router's routing /
// backpressure / drain policies reproduced qualitatively at 16-node scale.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/sim/multi_node.h"
#include "src/workload/arrivals.h"
#include "src/workload/sharegpt.h"

namespace ca {
namespace {

std::vector<SessionTrace> MakeWorkload(std::size_t sessions, std::uint64_t seed,
                                       double arrival_rate = 2.0,
                                       double think_time_s = 20.0) {
  ShareGptConfig config;
  config.think_time_mean_s = think_time_s;
  ShareGptGenerator gen(config, seed);
  auto traces = gen.Generate(sessions);
  AssignArrivals(traces, arrival_rate, seed + 1);
  return traces;
}

std::size_t TotalTurns(const std::vector<SessionTrace>& workload) {
  std::size_t total = 0;
  for (const auto& s : workload) {
    total += s.turns.size();
  }
  return total;
}

MultiNodeOptions FleetOptions() {
  MultiNodeOptions options;
  options.nodes = 16;
  return options;  // per-node stores at their ample paper defaults
}

// The acceptance-criteria fleet: 16 nodes serve every turn exactly once, the
// ring keeps per-node load within a sane band, and returning sessions hit
// their node-local KV caches (the locality the pinning policy exists for).
TEST(MultiNodeSimTest, SixteenNodeFleetServesEveryTurnWithBalancedLoad) {
  const auto workload = MakeWorkload(400, 21);
  MultiNodeSim sim(FleetOptions(), workload);
  const MultiNodeMetrics m = sim.Run();

  EXPECT_EQ(m.turns, TotalTurns(workload));
  EXPECT_EQ(m.shed, 0ULL);  // unbounded queues: nothing rejected
  EXPECT_EQ(m.migrations, 0ULL);
  EXPECT_GT(m.makespan, 0);
  ASSERT_EQ(m.nodes.size(), 16U);
  for (const NodePerf& n : m.nodes) {
    EXPECT_GT(n.jobs_routed, 0ULL) << "an idle node in a 400-session fleet";
  }
  EXPECT_LT(m.load_balance_ratio(), 5.0);
  // Multi-turn sessions return to their pinned node and find their KV there.
  EXPECT_GT(m.hit_rate(), 0.8);
  EXPECT_EQ(m.ttft_s.count(), m.turns);
}

TEST(MultiNodeSimTest, DeterministicForSameWorkload) {
  const auto workload = MakeWorkload(100, 22);
  const MultiNodeMetrics a = MultiNodeSim(FleetOptions(), workload).Run();
  const MultiNodeMetrics b = MultiNodeSim(FleetOptions(), workload).Run();
  EXPECT_EQ(a.turns, b.turns);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.hit_rate(), b.hit_rate());
}

// Backpressure mirror of the router: a tiny queue cap under a hot arrival
// process sheds turns, overflow places new sessions elsewhere, and the
// turns-vs-shed accounting conserves the workload.
TEST(MultiNodeSimTest, QueueCapShedsAndOverflowAbsorbsNewSessions) {
  const auto workload = MakeWorkload(300, 23, /*arrival_rate=*/50.0, /*think_time_s=*/1.0);
  MultiNodeOptions options = FleetOptions();
  options.max_queue_depth = 1;
  MultiNodeSim sim(options, workload);
  const MultiNodeMetrics m = sim.Run();

  EXPECT_GT(m.shed, 0ULL) << "queue cap 1 at 50 sessions/s never shed";
  EXPECT_EQ(m.turns + m.shed, TotalTurns(workload));
  std::uint64_t overflowed = 0;
  for (const NodePerf& n : m.nodes) {
    overflowed += n.jobs_overflowed_in;
  }
  EXPECT_GT(overflowed, 0ULL) << "no new session ever overflowed to a less-loaded node";
  EXPECT_GT(m.shed_rate(), 0.0);
  EXPECT_LT(m.shed_rate(), 1.0);
}

// The router policy distinction, observed at fleet scale: letting new
// sessions overflow to the least-loaded node cannot shed more than pinning
// them rigidly to a full ring owner.
TEST(MultiNodeSimTest, OverflowPolicyShedsNoMoreThanRigidRouting) {
  const auto workload = MakeWorkload(300, 24, /*arrival_rate=*/50.0, /*think_time_s=*/1.0);
  MultiNodeOptions overflow = FleetOptions();
  overflow.max_queue_depth = 1;
  MultiNodeOptions rigid = overflow;
  rigid.overflow_new_sessions = false;
  const MultiNodeMetrics m_overflow = MultiNodeSim(overflow, workload).Run();
  const MultiNodeMetrics m_rigid = MultiNodeSim(rigid, workload).Run();
  EXPECT_LE(m_overflow.shed, m_rigid.shed);
}

// Drain mid-run: the drained node's sessions move to their new ring owners
// over the migration channel (KV bytes cost real transfer time), nothing is
// lost, and no further turns land on the drained node afterwards.
TEST(MultiNodeSimTest, DrainMigratesSessionsAndLosesNoTurns) {
  const auto workload = MakeWorkload(200, 25, /*arrival_rate=*/2.0, /*think_time_s=*/30.0);
  MultiNodeOptions options = FleetOptions();
  options.drain_node = 3;
  options.drain_at = 40 * kSecond;  // mid-run: sessions are live and cached
  MultiNodeSim sim(options, workload);
  const MultiNodeMetrics m = sim.Run();

  EXPECT_EQ(m.turns, TotalTurns(workload)) << "the drain lost turns";
  EXPECT_GT(m.migrations, 0ULL) << "node 3 had nothing to migrate at t=40s";
  EXPECT_GT(m.migration_time, 0) << "KV payloads moved for free";
  const NodePerf& drained = m.nodes[3];
  EXPECT_EQ(drained.sessions_migrated_out, m.migrations);
  std::uint64_t migrated_in = 0;
  for (const NodePerf& n : m.nodes) {
    migrated_in += n.sessions_migrated_in;
  }
  EXPECT_EQ(migrated_in, m.migrations);
  EXPECT_EQ(drained.sessions_migrated_in, 0ULL) << "a session migrated INTO the drained node";
}

}  // namespace
}  // namespace ca
