// KvCache layout, truncation and serialization tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/model/config.h"
#include "src/model/kv_cache.h"

namespace ca {
namespace {

std::vector<float> Row(std::size_t dim, float base) {
  std::vector<float> v(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    v[i] = base + static_cast<float>(i);
  }
  return v;
}

// Appends `tokens` tokens to every layer; K rows start at 100*t, V at
// 100*t + 50.
void FillCache(KvCache& cache, std::size_t tokens) {
  const std::size_t dim = cache.kv_dim();
  for (std::size_t layer = 0; layer < cache.n_layers(); ++layer) {
    for (std::size_t t = cache.layer_len(layer); t < tokens; ++t) {
      cache.Append(layer, Row(dim, 100.0f * static_cast<float>(t)),
                   Row(dim, 100.0f * static_cast<float>(t) + 50.0f));
    }
  }
}

TEST(KvCacheTest, EmptyOnConstruction) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  EXPECT_EQ(cache.seq_len(), 0U);
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.byte_size(), 0ULL);
  EXPECT_EQ(cache.n_layers(), ModelConfig::Mini().n_layers);
  EXPECT_EQ(cache.kv_dim(), ModelConfig::Mini().kv_dim());
}

TEST(KvCacheTest, AppendAndReadBack) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 3);
  EXPECT_EQ(cache.seq_len(), 3U);
  EXPECT_EQ(cache.K(1, 2)[0], 200.0f);
  EXPECT_EQ(cache.V(1, 2)[0], 250.0f);
  EXPECT_EQ(cache.K(0, 0)[1], 1.0f);
}

TEST(KvCacheTest, ByteSizeMatchesConfigFormula) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 7);
  EXPECT_EQ(cache.byte_size(), 7 * config.kv_bytes_per_token());
}

TEST(KvCacheTest, LayerAccessorsSeeWholeHistory) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 3);
  for (std::size_t layer = 0; layer < cache.n_layers(); ++layer) {
    const auto k = cache.LayerK(layer);
    const auto v = cache.LayerV(layer);
    ASSERT_EQ(k.size(), 3 * cache.kv_dim());
    ASSERT_EQ(v.size(), 3 * cache.kv_dim());
    for (std::size_t t = 0; t < 3; ++t) {
      // Token t's row lives at [t*kv_dim, (t+1)*kv_dim) and matches K/V.
      EXPECT_EQ(k[t * cache.kv_dim()], cache.K(layer, t)[0]);
      EXPECT_EQ(v[t * cache.kv_dim() + 1], cache.V(layer, t)[1]);
    }
  }
}

TEST(KvCacheTest, ReserveKeepsLayerSpansStableAcrossAppends) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 2);
  cache.Reserve(40);
  const float* k_base = cache.LayerK(0).data();
  const float* v_base = cache.LayerV(0).data();
  FillCache(cache, 40);  // stays within the reservation: no reallocation
  EXPECT_EQ(cache.LayerK(0).data(), k_base);
  EXPECT_EQ(cache.LayerV(0).data(), v_base);
  EXPECT_EQ(cache.seq_len(), 40U);
  EXPECT_EQ(cache.K(0, 39)[0], 3900.0f);
}

TEST(KvCacheTest, ReserveDoesNotChangeLength) {
  KvCache cache(ModelConfig::Mini(), PeMode::kCoupled);
  FillCache(cache, 3);
  cache.Reserve(100);
  EXPECT_EQ(cache.seq_len(), 3U);
  EXPECT_EQ(cache.byte_size(), 3 * ModelConfig::Mini().kv_bytes_per_token());
  cache.Reserve(1);  // shrinking reservations are a no-op
  EXPECT_EQ(cache.seq_len(), 3U);
}

TEST(KvCacheTest, TruncateFrontDropsOldest) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 5);
  cache.TruncateFront(2);
  EXPECT_EQ(cache.seq_len(), 3U);
  // Old token 2 is now token 0 in every layer.
  for (std::size_t layer = 0; layer < cache.n_layers(); ++layer) {
    EXPECT_EQ(cache.K(layer, 0)[0], 200.0f);
    EXPECT_EQ(cache.V(layer, 2)[0], 450.0f);
  }
}

TEST(KvCacheTest, TruncateMoreThanLengthClears) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 2);
  cache.TruncateFront(10);
  EXPECT_EQ(cache.seq_len(), 0U);
}

TEST(KvCacheTest, DiscardTokensKeepsComplement) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 5);
  const std::vector<std::size_t> discard = {1, 3, 99};  // 99 out of range: ignored
  cache.DiscardTokens(discard);
  EXPECT_EQ(cache.seq_len(), 3U);
  EXPECT_EQ(cache.K(0, 0)[0], 0.0f);
  EXPECT_EQ(cache.K(0, 1)[0], 200.0f);
  EXPECT_EQ(cache.K(0, 2)[0], 400.0f);
}

TEST(KvCacheTest, ClearEmpties) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 4);
  cache.Clear();
  EXPECT_EQ(cache.seq_len(), 0U);
  EXPECT_EQ(cache.byte_size(), 0ULL);
}

TEST(KvCacheTest, CloneIsDeep) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 2);
  KvCache copy = cache.Clone();
  copy.TruncateFront(1);
  EXPECT_EQ(cache.seq_len(), 2U);
  EXPECT_EQ(copy.seq_len(), 1U);
}

TEST(KvCacheTest, MutableKWritesThrough) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 1);
  cache.MutableK(0, 0)[0] = -5.0f;
  EXPECT_EQ(cache.K(0, 0)[0], -5.0f);
}

TEST(KvCacheTest, SerializeRoundTrip) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 6);
  const auto bytes = cache.Serialize();
  auto restored = KvCache::Deserialize(config, bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->seq_len(), 6U);
  EXPECT_EQ(restored->pe_mode(), PeMode::kDecoupled);
  for (std::size_t layer = 0; layer < cache.n_layers(); ++layer) {
    for (std::size_t t = 0; t < 6; ++t) {
      for (std::size_t d = 0; d < cache.kv_dim(); ++d) {
        ASSERT_EQ(restored->K(layer, t)[d], cache.K(layer, t)[d]);
        ASSERT_EQ(restored->V(layer, t)[d], cache.V(layer, t)[d]);
      }
    }
  }
}

TEST(KvCacheTest, SerializePreservesPeMode) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kCoupled);
  FillCache(cache, 1);
  auto restored = KvCache::Deserialize(config, cache.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->pe_mode(), PeMode::kCoupled);
}

TEST(KvCacheTest, DeserializeRejectsGarbage) {
  const ModelConfig config = ModelConfig::Mini();
  const std::vector<std::uint8_t> junk(16, 0xAB);
  EXPECT_FALSE(KvCache::Deserialize(config, junk).ok());
  const std::vector<std::uint8_t> tiny(3, 0);
  EXPECT_FALSE(KvCache::Deserialize(config, tiny).ok());
}

TEST(KvCacheTest, DeserializeRejectsWrongConfig) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 2);
  const auto bytes = cache.Serialize();
  EXPECT_FALSE(KvCache::Deserialize(ModelConfig::Tiny(), bytes).ok());
}

TEST(KvCacheTest, DeserializeRejectsTruncatedBuffer) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 2);
  auto bytes = cache.Serialize();
  bytes.pop_back();
  EXPECT_FALSE(KvCache::Deserialize(ModelConfig::Mini(), bytes).ok());
}

// --- zero-copy serialization (DESIGN.md §14) -----------------------------

TEST(KvCacheZeroCopy, SerializerMatchesSerializeByteForByte) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 9);
  const auto expected = cache.Serialize();
  ASSERT_EQ(cache.SerializedSize(), expected.size());

  // Pull through the cursor in awkward window sizes; the concatenation must
  // be exactly the legacy buffer.
  for (const std::size_t window : {std::size_t{1}, std::size_t{13}, std::size_t{4096}}) {
    KvCache::Serializer serializer(cache);
    ASSERT_EQ(serializer.size(), expected.size());
    std::vector<std::uint8_t> got(expected.size());
    for (std::size_t off = 0; off < got.size(); off += window) {
      const std::size_t len = std::min(window, got.size() - off);
      serializer.Fill(std::span<std::uint8_t>(got.data() + off, len));
    }
    EXPECT_EQ(got, expected) << "window " << window;
    // Reset replays the pass (the store's bounded write retry).
    serializer.Reset();
    std::vector<std::uint8_t> again(expected.size());
    serializer.Fill(again);
    EXPECT_EQ(again, expected);
  }
}

TEST(KvCacheZeroCopy, SerializeIntoMatchesSerialize) {
  KvCache cache(ModelConfig::Mini(), PeMode::kCoupled);
  FillCache(cache, 5);
  const auto expected = cache.Serialize();
  std::vector<std::uint8_t> got(cache.SerializedSize());
  cache.SerializeInto(got);
  EXPECT_EQ(got, expected);
}

TEST(KvCacheZeroCopy, StreamingDeserializerAnyChunking) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 11);
  const auto bytes = cache.Serialize();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{24},
                                  std::size_t{1000}, bytes.size()}) {
    KvCache::StreamingDeserializer deserializer(config);
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
      const std::size_t len = std::min(chunk, bytes.size() - off);
      deserializer.Consume(std::span<const std::uint8_t>(bytes.data() + off, len));
    }
    auto restored = deserializer.Finish();
    ASSERT_TRUE(restored.ok()) << "chunk " << chunk << ": " << restored.status();
    EXPECT_EQ(restored->Serialize(), bytes) << "chunk " << chunk;
  }
}

TEST(KvCacheZeroCopy, StreamingDeserializerResetReplays) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 4);
  const auto bytes = cache.Serialize();
  KvCache::StreamingDeserializer deserializer(config);
  // A torn first pass (half the payload) followed by Reset and a clean
  // replay — the store's read-retry pattern.
  deserializer.Consume(std::span<const std::uint8_t>(bytes.data(), bytes.size() / 2));
  deserializer.Reset();
  deserializer.Consume(bytes);
  auto restored = deserializer.Finish();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->Serialize(), bytes);
}

TEST(KvCacheZeroCopy, StreamingDeserializerRejectsBadInput) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 3);
  const auto bytes = cache.Serialize();

  {
    // Garbage magic.
    auto junk = bytes;
    junk[0] ^= 0xFF;
    KvCache::StreamingDeserializer d(config);
    d.Consume(junk);
    EXPECT_FALSE(d.Finish().ok());
  }
  {
    // Truncated payload.
    KvCache::StreamingDeserializer d(config);
    d.Consume(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 4));
    EXPECT_FALSE(d.Finish().ok());
  }
  {
    // Overlong payload: the overshooting chunk must be swallowed, not
    // written past the tensors.
    KvCache::StreamingDeserializer d(config);
    d.Consume(bytes);
    d.Consume(std::span<const std::uint8_t>(bytes.data(), 8));
    EXPECT_FALSE(d.Finish().ok());
  }
  {
    // Wrong model config.
    KvCache::StreamingDeserializer d(ModelConfig::Tiny());
    d.Consume(bytes);
    EXPECT_FALSE(d.Finish().ok());
  }
}

TEST(KvCacheZeroCopy, EmptyCacheRoundTripsThroughStreaming) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  const auto bytes = cache.Serialize();
  EXPECT_EQ(bytes.size(), KvCache::kSerializedHeaderBytes);
  KvCache::StreamingDeserializer deserializer(config);
  deserializer.Consume(bytes);
  auto restored = deserializer.Finish();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->empty());
}

// --- token-major wire form (prefix sharing, DESIGN.md §17) ---------------

TEST(KvCacheTokenMajor, BytesPerTokenMatchesConfig) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  EXPECT_EQ(cache.token_major_bytes_per_token(), KvCache::TokenMajorBytesPerToken(config));
  EXPECT_EQ(KvCache::TokenMajorBytesPerToken(config),
            2ULL * config.n_layers * config.kv_dim() * sizeof(float));
}

TEST(KvCacheTokenMajor, RoundTripAnyChunking) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 11);
  const auto bytes = cache.SerializeTokenMajor();
  ASSERT_EQ(bytes.size(), 11 * cache.token_major_bytes_per_token());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{24},
                                  std::size_t{1000}, bytes.size()}) {
    KvCache::TokenMajorDeserializer deserializer(config, PeMode::kDecoupled, 11);
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
      const std::size_t len = std::min(chunk, bytes.size() - off);
      deserializer.Consume(std::span<const std::uint8_t>(bytes.data() + off, len));
    }
    auto restored = deserializer.Finish();
    ASSERT_TRUE(restored.ok()) << "chunk " << chunk << ": " << restored.status();
    EXPECT_EQ(restored->seq_len(), 11U);
    EXPECT_EQ(restored->pe_mode(), PeMode::kDecoupled);
    // Same tensors as the source, independent of wire layout.
    EXPECT_EQ(restored->Serialize(), cache.Serialize()) << "chunk " << chunk;
  }
}

TEST(KvCacheTokenMajor, RangeSerializersConcatenateToWholePayload) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 10);
  const auto expected = cache.SerializeTokenMajor();
  const std::uint64_t bpt = cache.token_major_bytes_per_token();
  // Split [0,10) into ranges of 3/3/3/1 tokens, pull each through its own
  // cursor in awkward windows — exactly the store's chunked write pattern.
  std::vector<std::uint8_t> got;
  for (const auto [b, e] : {std::pair<std::size_t, std::size_t>{0, 3}, {3, 6}, {6, 9}, {9, 10}}) {
    KvCache::TokenMajorSerializer serializer(cache, b, e);
    ASSERT_EQ(serializer.size(), (e - b) * bpt);
    std::vector<std::uint8_t> piece(serializer.size());
    for (std::size_t off = 0; off < piece.size(); off += 13) {
      const std::size_t len = std::min<std::size_t>(13, piece.size() - off);
      serializer.Fill(std::span<std::uint8_t>(piece.data() + off, len));
    }
    // Reset replays (the store's bounded write retry).
    serializer.Reset();
    std::vector<std::uint8_t> again(piece.size());
    serializer.Fill(again);
    ASSERT_EQ(again, piece);
    got.insert(got.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(got, expected);
}

TEST(KvCacheTokenMajor, DeserializerRejectsByteCountMismatch) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kDecoupled);
  FillCache(cache, 4);
  const auto bytes = cache.SerializeTokenMajor();
  {
    // Short payload.
    KvCache::TokenMajorDeserializer d(config, PeMode::kDecoupled, 4);
    d.Consume(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 4));
    EXPECT_FALSE(d.Finish().ok());
  }
  {
    // Overlong payload: the overshooting chunk is swallowed, not written
    // past the tensors.
    KvCache::TokenMajorDeserializer d(config, PeMode::kDecoupled, 4);
    d.Consume(bytes);
    d.Consume(std::span<const std::uint8_t>(bytes.data(), 8));
    EXPECT_FALSE(d.Finish().ok());
  }
  {
    // Reset replays a torn pass cleanly.
    KvCache::TokenMajorDeserializer d(config, PeMode::kDecoupled, 4);
    d.Consume(std::span<const std::uint8_t>(bytes.data(), bytes.size() / 2));
    d.Reset();
    d.Consume(bytes);
    auto restored = d.Finish();
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored->Serialize(), cache.Serialize());
  }
}

TEST(KvCacheTokenMajor, PreservesPeMode) {
  const ModelConfig config = ModelConfig::Mini();
  KvCache cache(config, PeMode::kCoupled);
  FillCache(cache, 2);
  KvCache::TokenMajorDeserializer d(config, PeMode::kCoupled, 2);
  d.Consume(cache.SerializeTokenMajor());
  auto restored = d.Finish();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->pe_mode(), PeMode::kCoupled);
}

TEST(KvCacheDeathTest, WrongRowSizeAborts) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  const std::vector<float> bad(3, 0.0f);
  EXPECT_DEATH(cache.Append(0, bad, bad), "CA_CHECK failed");
}

TEST(KvCacheDeathTest, OutOfRangeTokenAborts) {
  KvCache cache(ModelConfig::Mini(), PeMode::kDecoupled);
  FillCache(cache, 1);
  EXPECT_DEATH((void)cache.K(0, 5), "CA_CHECK failed");
}

// Parameterised: serialization round-trip across configs and lengths.
class KvCacheRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {
 protected:
  static ModelConfig ConfigByName(const std::string& name) {
    if (name == "mini") {
      return ModelConfig::Mini();
    }
    if (name == "mha") {
      return ModelConfig::MiniGqa1();
    }
    return ModelConfig::Tiny();
  }
};

TEST_P(KvCacheRoundTrip, SurvivesSerializeDeserialize) {
  const auto [name, tokens] = GetParam();
  const ModelConfig config = ConfigByName(name);
  KvCache cache(config, PeMode::kDecoupled);
  Rng rng(tokens);
  std::vector<float> row(config.kv_dim());
  for (std::size_t layer = 0; layer < config.n_layers; ++layer) {
    for (std::size_t t = 0; t < tokens; ++t) {
      for (auto& x : row) {
        x = rng.NextFloat();
      }
      cache.Append(layer, row, row);
    }
  }
  auto restored = KvCache::Deserialize(config, cache.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->seq_len(), tokens);
  EXPECT_EQ(restored->byte_size(), cache.byte_size());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndLengths, KvCacheRoundTrip,
    ::testing::Combine(::testing::Values("mini", "mha", "tiny"),
                       ::testing::Values(0UL, 1UL, 17UL, 128UL)));

}  // namespace
}  // namespace ca
