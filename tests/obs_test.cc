// Observability subsystem tests (DESIGN.md §11): metrics registry handles,
// labels and snapshots; span tracer recording and zero-cost-when-disabled
// gating; Chrome trace-event JSON shape (parsed and structurally verified);
// the §3.2 overlap timelines (preload spans concurrent with compute spans,
// async-save spans concurrent with decode spans); and the determinism
// contract that tracing never changes replies.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/common/thread_pool.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

// Thread-sanitizer detection (gcc defines __SANITIZE_THREAD__, clang goes
// through __has_feature). Used to relax one *timing* assertion below.
#if defined(__SANITIZE_THREAD__)
#define CA_OBS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CA_OBS_TSAN 1
#endif
#endif
#ifndef CA_OBS_TSAN
#define CA_OBS_TSAN 0
#endif

namespace ca {
namespace {

// --- minimal JSON parser ---------------------------------------------------
// Enough of RFC 8259 to structurally validate the exporter's output. Kept in
// the test (not shipped) so the shape check cannot share bugs with the
// writer it is checking.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue& out) {
    const bool ok = ParseValue(out);
    SkipWs();
    return ok && i_ == s_.size();
  }

 private:
  void SkipWs() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])) != 0) {
      ++i_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string& out) {
    SkipWs();
    if (i_ >= s_.size() || s_[i_] != '"') {
      return false;
    }
    ++i_;
    out.clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        if (i_ >= s_.size()) {
          return false;
        }
        const char esc = s_[i_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (i_ + 4 > s_.size()) {
              return false;
            }
            i_ += 4;  // control chars only in this exporter; keep placeholder
            c = '?';
            break;
          default: return false;
        }
      }
      out += c;
    }
    return i_ < s_.size() && s_[i_++] == '"';
  }

  bool ParseValue(JsonValue& out) {
    SkipWs();
    if (i_ >= s_.size()) {
      return false;
    }
    const char c = s_[i_];
    if (c == '{') {
      ++i_;
      out.kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      for (;;) {
        std::string key;
        if (!ParseString(key) || !Consume(':')) {
          return false;
        }
        JsonValue v;
        if (!ParseValue(v)) {
          return false;
        }
        out.object.emplace(std::move(key), std::move(v));
        if (Consume(',')) {
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++i_;
      out.kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!ParseValue(v)) {
          return false;
        }
        out.array.push_back(std::move(v));
        if (Consume(',')) {
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return ParseString(out.str);
    }
    if (s_.compare(i_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      i_ += 4;
      return true;
    }
    if (s_.compare(i_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      i_ += 5;
      return true;
    }
    if (s_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return true;
    }
    // number
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            std::strchr("+-.eE", s_[i_]) != nullptr)) {
      ++i_;
    }
    if (i_ == start) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::stod(s_.substr(start, i_ - start));
    return true;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// Every test runs against the process-wide tracer, so bracket carefully.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

// --- metrics registry ------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("test.counter");
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5U);
  EXPECT_EQ(&reg.GetCounter("test.counter"), &c);  // interned handle

  Gauge& g = reg.GetGauge("test.gauge");
  g.Set(2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);

  HistogramMetric& h = reg.GetHistogram("test.hist");
  for (int i = 1; i <= 100; ++i) {
    h.Observe(i);
  }
  const HistogramMetric::View v = h.Snapshot();
  EXPECT_EQ(v.count, 100U);
  EXPECT_DOUBLE_EQ(v.sum, 5050.0);
  EXPECT_DOUBLE_EQ(v.min, 1.0);
  EXPECT_DOUBLE_EQ(v.max, 100.0);
  EXPECT_NEAR(v.p50, 50.5, 1e-9);
}

TEST(MetricsTest, LabelsDistinguishAndSortIndependentOfOrder) {
  MetricsRegistry reg;
  Counter& dram = reg.GetCounter("hits", {{"tier", "dram"}});
  Counter& disk = reg.GetCounter("hits", {{"tier", "disk"}});
  EXPECT_NE(&dram, &disk);
  // Label order must not mint a new metric.
  Counter& ab = reg.GetCounter("m", {{"a", "1"}, {"b", "2"}});
  Counter& ba = reg.GetCounter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
  EXPECT_EQ(MetricsRegistry::EncodeKey("hits", {{"tier", "dram"}}), "hits{tier=dram}");
  EXPECT_EQ(MetricsRegistry::EncodeKey("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::EncodeKey("plain", {}), "plain");
}

TEST(MetricsTest, SnapshotExportsTextAndValidJson) {
  MetricsRegistry reg;
  reg.GetCounter("engine.turns").Add(3);
  reg.GetGauge("sched.queue_depth").Set(7.0);
  reg.GetHistogram("engine.prefill_seconds").Observe(0.25);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1U);
  EXPECT_EQ(snap.counters[0].key, "engine.turns");
  EXPECT_EQ(snap.counters[0].value, 3U);

  const std::string text = snap.ToText();
  EXPECT_NE(text.find("engine.turns"), std::string::npos);
  EXPECT_NE(text.find("sched.queue_depth"), std::string::npos);

  JsonValue root;
  ASSERT_TRUE(JsonParser(snap.ToJson()).Parse(root)) << snap.ToJson();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.Has("counters"));
  ASSERT_TRUE(root.Has("gauges"));
  ASSERT_TRUE(root.Has("histograms"));
  EXPECT_DOUBLE_EQ(root.At("counters").At("engine.turns").number, 3.0);
  EXPECT_DOUBLE_EQ(root.At("gauges").At("sched.queue_depth").number, 7.0);
  const JsonValue& hist = root.At("histograms").At("engine.prefill_seconds");
  EXPECT_DOUBLE_EQ(hist.At("count").number, 1.0);
  EXPECT_DOUBLE_EQ(hist.At("mean").number, 0.25);
}

// --- tracer ----------------------------------------------------------------

TEST_F(ObsTest, DisabledTracingEvaluatesNoArgumentsAndRecordsNothing) {
  int evaluations = 0;
  {
    CA_TRACE_SPAN("test.span", "cost", ++evaluations);
    CA_TRACE_INSTANT("test.instant", "cost", ++evaluations);
    CA_TRACE_COUNTER("test.counter", ++evaluations);
  }
  EXPECT_EQ(evaluations, 0);  // argument expressions sit in the untaken branch
  EXPECT_EQ(Tracer::Get().event_count(), 0U);
}

TEST_F(ObsTest, SpanInstantCounterAndFlowAreRecorded) {
  Tracer::Get().Enable();
  const std::uint64_t flow = Tracer::Get().NextFlowId();
  ASSERT_NE(flow, 0U);
  {
    CA_TRACE_SPAN("test.outer", "k", 1);
    CA_TRACE_INSTANT("test.instant");
    CA_TRACE_COUNTER("test.depth", 3);
    CA_TRACE_FLOW_BEGIN("test.flow", flow);
    CA_TRACE_FLOW_END("test.flow", flow);
  }
  Tracer::Get().Disable();
  const auto events = Tracer::Get().SnapshotEvents();
  ASSERT_EQ(events.size(), 5U);
  int spans = 0, instants = 0, counters = 0, flow_begin = 0, flow_end = 0;
  for (const TraceEvent& e : events) {
    switch (e.ph) {
      case 'X':
        ++spans;
        EXPECT_STREQ(e.name, "test.outer");
        EXPECT_EQ(e.args, "\"k\":1");
        break;
      case 'i': ++instants; break;
      case 'C': ++counters; break;
      case 's': ++flow_begin; EXPECT_EQ(e.flow_id, flow); break;
      case 'f': ++flow_end; EXPECT_EQ(e.flow_id, flow); break;
      default: FAIL() << "unexpected phase " << e.ph;
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(flow_begin, 1);
  EXPECT_EQ(flow_end, 1);
}

TEST_F(ObsTest, ClearDropsRecordedEvents) {
  Tracer::Get().Enable();
  { CA_TRACE_SPAN("test.span"); }
  EXPECT_GE(Tracer::Get().event_count(), 1U);
  Tracer::Get().Clear();
  EXPECT_EQ(Tracer::Get().event_count(), 0U);
}

// --- Chrome trace JSON shape (satellite: parse and verify structure) -------

TEST_F(ObsTest, ChromeTraceJsonShapeAndSpanNesting) {
  Tracer::Get().Enable();
  Tracer::Get().SetThreadName("shape-test-main");
  std::uint64_t flow = 0;
  {
    CA_TRACE_SPAN("outer", "turn", 1);
    {
      CA_TRACE_SPAN("inner", "phase", "decode");
      CA_TRACE_INSTANT("tick");
    }
    flow = Tracer::Get().NextFlowId();
    CA_TRACE_FLOW_BEGIN("handoff", flow);
    ThreadPool pool(1);
    pool.Submit([flow] {
      CA_TRACE_SPAN("worker.task");
      CA_TRACE_FLOW_END("handoff", flow);
    });
    pool.Wait();
  }
  Tracer::Get().Disable();

  const std::string json = Tracer::Get().ExportChromeJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(root)) << json;
  ASSERT_TRUE(root.Has("traceEvents"));
  const auto& events = root.At("traceEvents").array;
  ASSERT_GE(events.size(), 7U);  // process meta + >=2 thread meta + 5 events

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* flow_s = nullptr;
  const JsonValue* flow_f = nullptr;
  const JsonValue* instant = nullptr;
  bool process_named = false;
  bool main_thread_named = false;
  for (const JsonValue& e : events) {
    // Required Chrome trace-event fields on every event.
    ASSERT_TRUE(e.Has("name") && e.Has("ph") && e.Has("pid") && e.Has("tid")) << json;
    EXPECT_DOUBLE_EQ(e.At("pid").number, 1.0);
    const std::string& ph = e.At("ph").str;
    const std::string& name = e.At("name").str;
    if (ph == "M") {
      if (name == "process_name") {
        process_named = e.At("args").At("name").str == "cachedattention";
      }
      if (name == "thread_name" && e.At("args").At("name").str == "shape-test-main") {
        main_thread_named = true;
      }
      continue;
    }
    ASSERT_TRUE(e.Has("ts")) << json;  // all non-metadata events are stamped
    if (ph == "X") {
      ASSERT_TRUE(e.Has("dur")) << json;
      if (name == "outer") outer = &e;
      if (name == "inner") inner = &e;
    } else if (ph == "s") {
      flow_s = &e;
    } else if (ph == "f") {
      flow_f = &e;
    } else if (ph == "i") {
      instant = &e;
    }
  }
  EXPECT_TRUE(process_named);
  EXPECT_TRUE(main_thread_named);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(instant, nullptr);
  ASSERT_NE(flow_s, nullptr);
  ASSERT_NE(flow_f, nullptr);

  // Span nesting: inner lies within outer, on the same thread track.
  EXPECT_EQ(outer->At("tid").number, inner->At("tid").number);
  const double outer_ts = outer->At("ts").number;
  const double outer_end = outer_ts + outer->At("dur").number;
  const double inner_ts = inner->At("ts").number;
  const double inner_end = inner_ts + inner->At("dur").number;
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_EQ(inner->At("args").At("phase").str, "decode");
  EXPECT_DOUBLE_EQ(outer->At("args").At("turn").number, 1.0);

  // Instants are thread-scoped.
  EXPECT_EQ(instant->At("s").str, "t");

  // Flow links pair by id across threads; the finish binds to its enclosing
  // slice and sits on a different track than the start.
  EXPECT_DOUBLE_EQ(flow_s->At("id").number, static_cast<double>(flow));
  EXPECT_DOUBLE_EQ(flow_f->At("id").number, static_cast<double>(flow));
  EXPECT_EQ(flow_f->At("bp").str, "e");
  EXPECT_NE(flow_s->At("tid").number, flow_f->At("tid").number);
  EXPECT_GE(flow_f->At("ts").number, flow_s->At("ts").number);
}

// --- engine integration ----------------------------------------------------

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

EngineOptions SmallDramOptions() {
  EngineOptions options;
  // Small blocks: payloads span many blocks, and the per-block I/O loop in
  // PooledBlockStorage makes saves/promotes long enough to observe.
  options.store.block_bytes = KiB(8);
  options.store.dram_capacity = KiB(192);  // a couple of sessions resident
  // §3.3.1 fetch buffer: keeps DRAM headroom so the background
  // PrefetchSessions loop always has a window to promote into.
  options.store.dram_buffer = KiB(128);
  options.store.disk_capacity = MiB(64);
  options.store.audit = true;
  options.async_save = true;
  // Seeded transient write faults: each faulted block write sleeps through
  // the bounded retry backoff *inside* the tier Put, stretching async-save
  // (and promote) spans by milliseconds of wall time that sanitizer
  // instrumentation cannot compress. Without this, TSan slows compute so
  // much more than syscall I/O that the async save can finish before the
  // next decode span opens and the §3.2.2 overlap becomes flaky. Transient
  // faults are retried and absorbed (DESIGN.md §10), so replies stay ok().
  options.store.io_retry_backoff_us = 1500;
  options.store.dram_fault.seed = 71;
  options.store.dram_fault.write_transient_p = 0.15;
  options.store.disk_fault.seed = 72;
  options.store.disk_fault.write_transient_p = 0.15;
  return options;
}

// Determinism contract (DESIGN.md §11): tracing observes, never perturbs.
// The same conversation with tracing on and off must produce bitwise
// identical replies and logits.
TEST_F(ObsTest, RepliesBitwiseIdenticalTracingOnVsOff) {
  Transformer model(ModelConfig::Mini(), 51);
  EngineOptions options;
  options.store.dram_capacity = MiB(16);
  options.store.disk_capacity = MiB(64);
  options.store.block_bytes = KiB(64);

  CachedAttentionEngine traced(&model, options);
  CachedAttentionEngine plain(&model, options);
  for (int turn = 0; turn < 3; ++turn) {
    const auto input = MakeTokens(8, 40 + turn, model.config().vocab_size);

    Tracer::Get().Enable();
    auto r_traced = traced.Converse(1, input, 6);
    traced.Flush();
    Tracer::Get().Disable();

    auto r_plain = plain.Converse(1, input, 6);
    plain.Flush();

    ASSERT_TRUE(r_traced.ok());
    ASSERT_TRUE(r_plain.ok());
    ASSERT_EQ(r_traced->reply, r_plain->reply) << "turn " << turn;
  }

  // Logits too, byte for byte.
  const auto probe = MakeTokens(5, 99, model.config().vocab_size);
  Tracer::Get().Enable();
  auto l_traced = traced.ForwardTurn(2, probe);
  Tracer::Get().Disable();
  auto l_plain = plain.ForwardTurn(2, probe);
  ASSERT_TRUE(l_traced.ok());
  ASSERT_TRUE(l_plain.ok());
  ASSERT_EQ(l_traced->span().size(), l_plain->span().size());
  EXPECT_EQ(std::memcmp(l_traced->data(), l_plain->data(),
                        l_traced->span().size() * sizeof(float)),
            0);
  EXPECT_GT(Tracer::Get().event_count(), 0U);  // tracing did actually record
}

bool SpansOverlap(const TraceEvent& a, const TraceEvent& b) {
  return a.ts_ns < b.ts_ns + b.dur_ns && b.ts_ns < a.ts_ns + a.dur_ns;
}

// The acceptance timeline (§3.2): preload (store promotion) spans running on
// a background thread concurrently with compute spans on the serving thread,
// and async-save spans on the write stream concurrently with serving-thread
// decode spans. Timing-dependent, so the workload retries a few rounds until
// both overlaps materialize.
TEST_F(ObsTest, TraceShowsPreloadAndAsyncSaveOverlappingCompute) {
  Transformer model(ModelConfig::Mini(), 7);
  CachedAttentionEngine engine(&model, SmallDramOptions());
  const std::size_t vocab = model.config().vocab_size;

  // Seed four sessions; DRAM holds ~one, so the rest spill to disk.
  constexpr SessionId kSessions = 4;
  for (SessionId s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(engine.Converse(s, MakeTokens(12, 10 + s, vocab), 8).ok());
  }
  engine.Flush();

  // The save∥decode overlap is a wall-clock timing property, not a race
  // property: the save lambda holds the engine mutex through its tier I/O,
  // so whenever the scheduler lets it grab the mutex between the next
  // turn's short prepare-time critical sections, the save completes before
  // that turn's decode span opens. TSan's instrumentation slows compute far
  // more than syscall I/O and serializes instrumented threads, which makes
  // that ordering sticky for entire runs — so under TSan the expectation is
  // reported but not required. Release and ASan builds (both run the obs
  // label in CI) assert it strictly, and obs_inspector demonstrates it on
  // real timelines.
  constexpr bool kRequireSaveOverlap = !CA_OBS_TSAN;
  bool preload_overlaps_compute = false;
  bool save_overlaps_decode = false;
  for (int attempt = 0;
       attempt < 12 && !(preload_overlaps_compute &&
                         (save_overlaps_decode || !kRequireSaveOverlap));
       ++attempt) {
    Tracer::Get().Clear();
    Tracer::Get().Enable();

    // Background preloader: rotates promotions over the session set while
    // the serving thread computes (the engine mutex is free during compute).
    std::atomic<bool> stop{false};
    std::thread preloader([&] {
      Tracer::Get().SetThreadName("preloader");
      SessionId next = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const SessionId upcoming[] = {next, (next + 1) % kSessions};
        engine.PrefetchSessions(upcoming);
        next = (next + 1) % kSessions;
      }
    });
    // Minimal prefill, long decode: the async save of the previous turn is
    // submitted just before this turn starts, so it only has to outlast one
    // 1-token prefill (against a many-block disk Put) to still be in flight
    // when this turn's decode span opens — the §3.2.2 overlap.
    for (int round = 0; round < 2; ++round) {
      for (SessionId s = 0; s < kSessions; ++s) {
        ASSERT_TRUE(
            engine.Converse(s, MakeTokens(1, 20 + s + 8 * round, vocab), 40).ok());
      }
    }
    stop.store(true);
    preloader.join();
    engine.Flush();
    Tracer::Get().Disable();

    const auto events = Tracer::Get().SnapshotEvents();
    std::vector<const TraceEvent*> compute, promote, decode, save;
    for (const TraceEvent& e : events) {
      if (e.ph != 'X') {
        continue;
      }
      const std::string_view name = e.name;
      if (name == "model.forward") compute.push_back(&e);
      if (name == "store.promote") promote.push_back(&e);
      if (name == "engine.decode") decode.push_back(&e);
      if (name == "engine.save.async") save.push_back(&e);
    }
    EXPECT_FALSE(compute.empty());
    EXPECT_FALSE(save.empty());
    for (const TraceEvent* p : promote) {
      for (const TraceEvent* c : compute) {
        if (p->tid != c->tid && SpansOverlap(*p, *c)) {
          preload_overlaps_compute = true;
        }
      }
    }
    for (const TraceEvent* s : save) {
      for (const TraceEvent* d : decode) {
        if (s->tid != d->tid && SpansOverlap(*s, *d)) {
          save_overlaps_decode = true;
        }
      }
    }
  }
  EXPECT_TRUE(preload_overlaps_compute)
      << "no store.promote span overlapped a model.forward span on another thread";
  if (kRequireSaveOverlap) {
    EXPECT_TRUE(save_overlaps_decode)
        << "no engine.save.async span overlapped an engine.decode span on another thread";
  } else if (!save_overlaps_decode) {
    GTEST_LOG_(INFO) << "save-overlaps-decode not observed under TSan "
                        "(advisory there; asserted in release/ASan builds)";
  }
}

}  // namespace
}  // namespace ca
