// Cross-session KV prefix sharing tests (DESIGN.md §17).
//
//  * PutShared deduplicates identical token prefixes across sessions into
//    refcounted shared chunk records (the ISSUE acceptance bar: ≥ 64
//    sessions over a ≥ 512-token common prefix must shrink stored payload
//    bytes ≥ 4x vs sharing-off) while every session reads back its exact
//    payload bytes;
//  * copy-on-write at save granularity: a session diverging mid-chunk
//    writes only its divergent chunks, shared ancestors keep one copy;
//  * refcount lifecycle: no chunk is freed while referenced, none leaks
//    once the last referrer is gone (CheckInvariants audits every
//    mutation), under re-puts, eviction cascades and seeded fault
//    injection;
//  * durable stores recover shared state across kill-restart: chunk
//    registry and prefix index rebuilt, refcounts re-derived from the
//    recovered block tables — zero double-frees, zero leaks;
//  * access checkpoints (the S1 bugfix): post-recovery eviction order
//    follows real recency, not journal-upsert order;
//  * engine-level differential soak: replies are bitwise-identical with
//    sharing on vs off, caches tainted by KV truncation fall back to
//    private records, async saves are fenced by ExportSession (S2), and a
//    durable sharing engine resumes identically after a kill-restart.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/store/attention_store.h"

namespace ca {
namespace {

const SchedulerHints kNoHints;

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".meta").c_str());
  std::remove((path + ".meta.tmp").c_str());
}

std::string StorePath(const std::string& name) {
  const std::string path = testing::TempDir() + "/ca_share_" + name + ".blocks";
  RemoveStoreFiles(path);
  return path;
}

// --- store level ----------------------------------------------------------

constexpr std::uint64_t kBpt = 256;  // synthetic token-major bytes per token

// Deterministic token-major payload: token i's bytes are a pure function of
// (position, token value), mirroring the engine's determinism oracle —
// identical prefixes produce identical KV rows, so byte equality across
// sessions holds exactly on the shared prefix.
std::vector<std::uint8_t> TokenMajorPayload(std::span<const std::uint32_t> tokens) {
  std::vector<std::uint8_t> out(tokens.size() * kBpt);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    Rng rng(static_cast<std::uint64_t>(tokens[i]) * 1000003 + i);
    for (std::uint64_t b = 0; b < kBpt; ++b) {
      out[i * kBpt + b] = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
  }
  return out;
}

std::vector<std::uint32_t> TokenSeq(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> out(n);
  for (auto& t : out) {
    t = static_cast<std::uint32_t>(rng.NextBounded(50000));
  }
  return out;
}

StoreConfig ShareConfig() {
  StoreConfig c;
  c.hbm_capacity = 0;
  c.dram_capacity = MiB(64);
  c.disk_capacity = MiB(64);
  c.block_bytes = KiB(4);
  c.real_payloads = true;
  c.share_prefixes = true;
  c.share_chunk_tokens = 64;
  c.audit = true;  // CheckInvariants after every mutation
  c.io_retry_backoff_us = 0;
  return c;
}

Status PutSharedTokens(AttentionStore& store, SessionId s,
                       std::span<const std::uint32_t> tokens, SimTime now) {
  const std::vector<std::uint8_t> payload = TokenMajorPayload(tokens);
  SpanChunkSource source(payload, kBpt);
  return store.PutShared(s, tokens, source, now, kNoHints);
}

// The tentpole acceptance bar: 64 sessions sharing a 512-token prefix must
// store ≥ 4x fewer payload bytes than the sharing-off baseline, while every
// session still reads back its exact bytes.
TEST(SharedPrefix, DedupShrinksStoredBytesAtLeast4x) {
  constexpr std::size_t kSessions = 64;
  constexpr std::size_t kPrefix = 512;
  constexpr std::size_t kTail = 16;
  const std::vector<std::uint32_t> prefix = TokenSeq(kPrefix, 42);

  AttentionStore shared(ShareConfig());
  StoreConfig off = ShareConfig();
  off.share_prefixes = false;
  AttentionStore baseline(off);

  std::unordered_map<SessionId, std::vector<std::uint32_t>> token_seqs;
  for (SessionId s = 1; s <= kSessions; ++s) {
    std::vector<std::uint32_t> tokens = prefix;
    const auto tail = TokenSeq(kTail, 9000 + s);
    tokens.insert(tokens.end(), tail.begin(), tail.end());
    ASSERT_TRUE(PutSharedTokens(shared, s, tokens, static_cast<SimTime>(s)).ok());
    const std::vector<std::uint8_t> payload = TokenMajorPayload(tokens);
    ASSERT_TRUE(baseline
                    .Put(s, payload.size(), tokens.size(), payload,
                         static_cast<SimTime>(s), kNoHints)
                    .ok());
    token_seqs.emplace(s, std::move(tokens));
  }

  const std::uint64_t shared_bytes = shared.UsedBytes(Tier::kDram) + shared.UsedBytes(Tier::kDisk);
  const std::uint64_t baseline_bytes =
      baseline.UsedBytes(Tier::kDram) + baseline.UsedBytes(Tier::kDisk);
  ASSERT_GT(shared_bytes, 0ULL);
  EXPECT_GE(static_cast<double>(baseline_bytes) / static_cast<double>(shared_bytes), 4.0)
      << "baseline " << baseline_bytes << " vs shared " << shared_bytes;

  // 8 full chunks per session; session 1 creates them, 63 sessions hit.
  const StoreStats& st = shared.stats();
  EXPECT_EQ(st.shared_puts, kSessions);
  EXPECT_EQ(st.chunks_created, kPrefix / 64);
  EXPECT_EQ(st.prefix_hits, (kSessions - 1) * (kPrefix / 64));
  EXPECT_GT(st.shared_bytes_saved, (kSessions - 1) * kPrefix * kBpt / 2);
  EXPECT_GT(st.prefix_hit_rate(), 0.9);
  EXPECT_EQ(shared.RecordCount(), kSessions);
  EXPECT_EQ(shared.ChunkCount(), kPrefix / 64);

  // GetInfo reports the full logical payload; the record itself holds only
  // the private tail.
  const auto info = shared.GetInfo(1);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->shared);
  EXPECT_EQ(info->payload_bytes, (kPrefix + kTail) * kBpt);
  EXPECT_EQ(info->bytes, kTail * kBpt);
  EXPECT_EQ(info->token_count, kPrefix + kTail);

  // Bitwise read-back for every session despite the shared storage.
  for (SessionId s = 1; s <= kSessions; ++s) {
    auto read = shared.ReadPayload(s);
    ASSERT_TRUE(read.ok()) << "session " << s << ": " << read.status();
    EXPECT_EQ(*read, TokenMajorPayload(token_seqs.at(s))) << "session " << s;
  }
}

TEST(SharedPrefix, CopyOnWriteAtDivergence) {
  AttentionStore store(ShareConfig());
  // a and b agree for 2 chunks, diverge inside the 3rd, both carry a tail.
  std::vector<std::uint32_t> a = TokenSeq(208, 7);  // 3 full chunks + 16 tail
  std::vector<std::uint32_t> b = a;
  b[130] ^= 1;  // inside chunk 3 (tokens 128..191)
  for (std::size_t i = 192; i < b.size(); ++i) {
    b[i] += 17;
  }
  ASSERT_TRUE(PutSharedTokens(store, 1, a, 1).ok());
  ASSERT_TRUE(PutSharedTokens(store, 2, b, 2).ok());

  // Chunks 1, 2 shared; chunk 3 exists twice (copy-on-write).
  EXPECT_EQ(store.ChunkCount(), 4U);
  EXPECT_EQ(store.stats().prefix_hits, 2ULL);
  EXPECT_EQ(store.stats().chunks_created, 4ULL);

  auto ra = store.ReadPayload(1);
  auto rb = store.ReadPayload(2);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, TokenMajorPayload(a));
  EXPECT_EQ(*rb, TokenMajorPayload(b));
  EXPECT_NE(*ra, *rb);
}

// The chain key includes the parent chunk: equal token *contents* at a
// different position in the chain must not dedup (a hit proves exact
// whole-prefix equality, which is what makes sharing reply-preserving).
TEST(SharedPrefix, SameChunkContentsUnderDifferentParentDoesNotDedup) {
  AttentionStore store(ShareConfig());
  const auto common = TokenSeq(64, 11);
  std::vector<std::uint32_t> a = TokenSeq(64, 12);
  a.insert(a.end(), common.begin(), common.end());
  a.push_back(1);
  std::vector<std::uint32_t> b = TokenSeq(64, 13);  // different first chunk
  b.insert(b.end(), common.begin(), common.end());
  b.push_back(2);
  ASSERT_TRUE(PutSharedTokens(store, 1, a, 1).ok());
  ASSERT_TRUE(PutSharedTokens(store, 2, b, 2).ok());
  EXPECT_EQ(store.stats().prefix_hits, 0ULL);
  EXPECT_EQ(store.ChunkCount(), 4U);
  auto ra = store.ReadPayload(1);
  auto rb = store.ReadPayload(2);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, TokenMajorPayload(a));
  EXPECT_EQ(*rb, TokenMajorPayload(b));
}

// A payload of exactly N full chunks keeps its last chunk as the private
// tail (records must stay non-empty), so only N-1 chunks are shareable.
TEST(SharedPrefix, ExactChunkMultipleKeepsTailPrivate) {
  AttentionStore store(ShareConfig());
  const auto tokens = TokenSeq(128, 21);  // exactly 2 chunks
  ASSERT_TRUE(PutSharedTokens(store, 1, tokens, 1).ok());
  EXPECT_EQ(store.ChunkCount(), 1U);
  const auto info = store.GetInfo(1);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->bytes, 64 * kBpt);  // the second chunk is the tail
  EXPECT_EQ(info->payload_bytes, 128 * kBpt);
  auto read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, TokenMajorPayload(tokens));

  // Shorter than one chunk: purely private, no chunks at all.
  const auto small = TokenSeq(63, 22);
  ASSERT_TRUE(PutSharedTokens(store, 2, small, 2).ok());
  EXPECT_EQ(store.ChunkCount(), 1U);
  auto small_read = store.ReadPayload(2);
  ASSERT_TRUE(small_read.ok());
  EXPECT_EQ(*small_read, TokenMajorPayload(small));
}

TEST(SharedPrefix, RemoveFreesChunksExactlyOnce) {
  AttentionStore store(ShareConfig());
  constexpr std::size_t kSessions = 8;
  const auto prefix = TokenSeq(192, 33);
  for (SessionId s = 1; s <= kSessions; ++s) {
    std::vector<std::uint32_t> tokens = prefix;
    tokens.push_back(static_cast<std::uint32_t>(s));
    ASSERT_TRUE(PutSharedTokens(store, s, tokens, static_cast<SimTime>(s)).ok());
  }
  EXPECT_EQ(store.ChunkCount(), 3U);
  // Removing all but one referrer must keep every chunk alive (audit mode
  // verifies refcounts after each Remove).
  for (SessionId s = 1; s < kSessions; ++s) {
    store.Remove(s);
    EXPECT_EQ(store.ChunkCount(), 3U) << "after removing session " << s;
  }
  auto read = store.ReadPayload(kSessions);
  ASSERT_TRUE(read.ok());
  // The last referrer takes the chunks with it: no leak.
  store.Remove(kSessions);
  EXPECT_EQ(store.ChunkCount(), 0U);
  EXPECT_EQ(store.RecordCount(), 0U);
  EXPECT_EQ(store.UsedBytes(Tier::kDram) + store.UsedBytes(Tier::kDisk), 0ULL);
  EXPECT_EQ(store.stats().chunks_freed, store.stats().chunks_created);
  store.CheckInvariants();
}

// Re-putting a session (the per-turn update) extends its block table
// in-place: the old table's references are released, the grown prefix
// re-hits the same chunks, and refcounts end exactly where they started.
TEST(SharedPrefix, RePutUpdatesBlockTableWithoutLeaking) {
  AttentionStore store(ShareConfig());
  std::vector<std::uint32_t> tokens = TokenSeq(100, 55);
  ASSERT_TRUE(PutSharedTokens(store, 1, tokens, 1).ok());
  EXPECT_EQ(store.ChunkCount(), 1U);
  // Turn 2: history grows; the first chunk dedups against itself.
  const auto more = TokenSeq(100, 56);
  tokens.insert(tokens.end(), more.begin(), more.end());
  ASSERT_TRUE(PutSharedTokens(store, 1, tokens, 2).ok());
  EXPECT_EQ(store.ChunkCount(), 3U);
  EXPECT_EQ(store.stats().prefix_hits, 1ULL);  // chunk 1 re-hit on the re-put
  // A second session over the same history shares all three chunks.
  ASSERT_TRUE(PutSharedTokens(store, 2, tokens, 3).ok());
  EXPECT_EQ(store.ChunkCount(), 3U);
  auto r1 = store.ReadPayload(1);
  auto r2 = store.ReadPayload(2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, TokenMajorPayload(tokens));
  EXPECT_EQ(*r2, *r1);
  store.Remove(1);
  store.Remove(2);
  EXPECT_EQ(store.ChunkCount(), 0U);
}

// Capacity pressure with shared chunks: evictions (including chunk
// cascades onto every referrer) must keep the refcount invariants — audit
// mode aborts on any double-free or leak — and surviving sessions must
// still read back bitwise.
TEST(SharedPrefix, EvictionCascadeKeepsInvariants) {
  StoreConfig c = ShareConfig();
  c.dram_capacity = KiB(128);
  c.disk_capacity = KiB(128);
  c.eviction_policy = "dedup-aware";
  AttentionStore store(c);

  std::unordered_map<SessionId, std::vector<std::uint32_t>> token_seqs;
  SimTime now = 1;
  for (std::uint64_t group = 0; group < 8; ++group) {
    const auto prefix = TokenSeq(128, 700 + group);
    for (std::uint64_t member = 0; member < 2; ++member) {
      const SessionId s = static_cast<SessionId>(group * 2 + member + 1);
      std::vector<std::uint32_t> tokens = prefix;
      const auto tail = TokenSeq(16, 800 + s);
      tokens.insert(tokens.end(), tail.begin(), tail.end());
      ASSERT_TRUE(PutSharedTokens(store, s, tokens, now++).ok());
      token_seqs.emplace(s, std::move(tokens));
    }
  }
  // The working set (~320 KiB of chunk + tail payload) exceeds both tiers
  // combined (256 KiB), so something must have been evicted along the way.
  EXPECT_GT(store.stats().evictions_out, 0ULL);
  std::size_t survivors = 0;
  for (const auto& [s, tokens] : token_seqs) {
    if (!store.GetInfo(s).has_value()) {
      continue;
    }
    auto read = store.ReadPayload(s);
    ASSERT_TRUE(read.ok()) << "session " << s << ": " << read.status();
    EXPECT_EQ(*read, TokenMajorPayload(tokens)) << "session " << s;
    ++survivors;
  }
  EXPECT_GT(survivors, 0U);
  store.CheckInvariants();
}

// Seeded fault injection on the shared-block path (S4): every operation
// either succeeds bitwise or degrades to a clean miss; the refcount
// invariants hold after every mutation (audit mode) and at the end.
TEST(SharedPrefix, SeededFaultSoakKeepsRefcountInvariants) {
  StoreConfig c = ShareConfig();
  c.dram_capacity = MiB(1);
  c.disk_capacity = MiB(1);
  c.dram_fault.seed = 99;
  c.dram_fault.write_transient_p = 0.15;
  c.dram_fault.read_transient_p = 0.15;
  c.disk_fault.seed = 100;
  c.disk_fault.write_transient_p = 0.1;
  c.disk_fault.read_permanent_p = 0.05;
  c.io_retries = 1;
  AttentionStore store(c);

  Rng rng(1234);
  std::unordered_map<SessionId, std::vector<std::uint32_t>> live;
  const auto prefix_a = TokenSeq(128, 1);
  const auto prefix_b = TokenSeq(128, 2);
  SimTime now = 1;
  for (std::uint64_t round = 0; round < 200; ++round) {
    const SessionId s = static_cast<SessionId>(1 + rng.NextBounded(12));
    const std::uint64_t op = rng.NextBounded(10);
    if (op < 5) {
      std::vector<std::uint32_t> tokens = (s % 2 == 0) ? prefix_a : prefix_b;
      const auto tail = TokenSeq(1 + rng.NextBounded(80), 5000 + round);
      tokens.insert(tokens.end(), tail.begin(), tail.end());
      if (PutSharedTokens(store, s, tokens, now++).ok()) {
        live[s] = std::move(tokens);
      } else {
        live.erase(s);  // failed puts drop the record
      }
    } else if (op < 8) {
      const auto it = live.find(s);
      auto read = store.ReadPayload(s);
      if (read.ok()) {
        ASSERT_NE(it, live.end()) << "read served a session that was never stored";
        EXPECT_EQ(*read, TokenMajorPayload(it->second)) << "round " << round;
      } else if (!store.GetInfo(s).has_value()) {
        live.erase(s);  // permanent failure dropped the record: clean miss
      }
    } else {
      store.Remove(s);
      live.erase(s);
    }
  }
  store.CheckInvariants();
  // The schedule above must actually have exercised the fault paths.
  EXPECT_GT(store.stats().io_faults() + store.stats().io_retries, 0ULL);
  // Drain everything: no chunk may survive its last referrer.
  for (SessionId s = 1; s <= 12; ++s) {
    store.Remove(s);
  }
  EXPECT_EQ(store.ChunkCount(), 0U);
  EXPECT_EQ(store.RecordCount(), 0U);
  store.CheckInvariants();
}

// --- durable recovery -----------------------------------------------------

StoreConfig DurableShareConfig(const std::string& path) {
  StoreConfig c = ShareConfig();
  c.hbm_capacity = 0;
  c.dram_capacity = 0;  // disk-only: everything is durable state
  c.disk_capacity = MiB(8);
  c.durable = true;
  c.disk_path = path;
  return c;
}

// Kill-restart over shared blocks: the chunk registry, prefix index and
// refcounts are rebuilt from the journaled block tables. CheckInvariants
// (audit mode) proves zero double-frees and zero leaks; the post-recovery
// drain proves every chunk is freed exactly once.
TEST(SharedRecovery, KillRestartRecoversChunksAndRefcounts) {
  const std::string path = StorePath("recover_chunks");
  constexpr std::size_t kSessions = 6;
  const auto prefix = TokenSeq(192, 77);
  std::unordered_map<SessionId, std::vector<std::uint32_t>> token_seqs;
  {
    auto opened = AttentionStore::Open(DurableShareConfig(path));
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (SessionId s = 1; s <= kSessions; ++s) {
      std::vector<std::uint32_t> tokens = prefix;
      const auto tail = TokenSeq(8, 6000 + s);
      tokens.insert(tokens.end(), tail.begin(), tail.end());
      ASSERT_TRUE(PutSharedTokens(*opened, s, tokens, static_cast<SimTime>(s)).ok());
      token_seqs.emplace(s, std::move(tokens));
    }
    EXPECT_EQ(opened->ChunkCount(), 3U);
  }  // dropped without any shutdown handshake: the journal is all that survives

  auto reopened = AttentionStore::Open(DurableShareConfig(path));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  AttentionStore& store = *reopened;
  store.CheckInvariants();
  EXPECT_EQ(store.RecordCount(), kSessions);
  EXPECT_EQ(store.ChunkCount(), 3U);
  for (SessionId s = 1; s <= kSessions; ++s) {
    const auto info = store.GetInfo(s);
    ASSERT_TRUE(info.has_value()) << "session " << s;
    EXPECT_TRUE(info->shared);
    auto read = store.ReadPayload(s);
    ASSERT_TRUE(read.ok()) << "session " << s << ": " << read.status();
    EXPECT_EQ(*read, TokenMajorPayload(token_seqs.at(s))) << "session " << s;
  }
  // Refcounts were re-derived, not journaled: removing all but one session
  // must keep the chunks, the last removal must free them exactly once
  // (a double-free aborts in the allocator, a leak aborts in the audit).
  for (SessionId s = 1; s < kSessions; ++s) {
    store.Remove(s);
    EXPECT_EQ(store.ChunkCount(), 3U);
  }
  store.Remove(kSessions);
  EXPECT_EQ(store.ChunkCount(), 0U);
  EXPECT_EQ(store.UsedBytes(Tier::kDisk), 0ULL);
  store.CheckInvariants();
}

// Crash mid-save: whatever the journal replay resurrects must satisfy the
// sharing invariants and serve bitwise payloads or clean misses.
TEST(SharedRecovery, CrashScheduleNeverDoubleFreesSharedBlocks) {
  const std::string path = StorePath("recover_crash");
  auto crash = std::make_shared<CrashSwitch>();
  const auto prefix = TokenSeq(192, 88);
  std::unordered_map<SessionId, std::vector<std::uint32_t>> token_seqs;
  {
    StoreConfig c = DurableShareConfig(path);
    c.meta_fault.crash = crash;
    // Dedup means few writes land at all: 3 chunks (12 blocks) + 8 tails.
    // Freeze partway through so some sessions' tables survive and some die.
    c.disk_crash_after_block_writes = 14;
    auto opened = AttentionStore::Open(c);
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (SessionId s = 1; s <= 8; ++s) {
      std::vector<std::uint32_t> tokens = prefix;
      const auto tail = TokenSeq(8, 7000 + s);
      tokens.insert(tokens.end(), tail.begin(), tail.end());
      // Saves may fail once the device freezes; both outcomes are legal.
      (void)PutSharedTokens(*opened, s, tokens, static_cast<SimTime>(s));
      token_seqs.emplace(s, std::move(tokens));
    }
    EXPECT_TRUE(crash->frozen.load()) << "crash schedule never fired";
  }

  auto reopened = AttentionStore::Open(DurableShareConfig(path));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  AttentionStore& store = *reopened;
  store.CheckInvariants();
  for (SessionId s = 1; s <= 8; ++s) {
    if (!store.GetInfo(s).has_value()) {
      continue;  // lost in the crash: a clean miss
    }
    auto read = store.ReadPayload(s);
    if (read.ok()) {
      EXPECT_EQ(*read, TokenMajorPayload(token_seqs.at(s))) << "session " << s;
    }
  }
  // Full drain: every surviving chunk must free exactly once.
  for (SessionId s = 1; s <= 8; ++s) {
    store.Remove(s);
  }
  EXPECT_EQ(store.ChunkCount(), 0U);
  EXPECT_EQ(store.RecordCount(), 0U);
  store.CheckInvariants();
}

// S1 bugfix: without access checkpoints, a record's journaled last_access
// is its *put* time, so post-recovery LRU evicts by insertion order — the
// hot record dies first. With checkpoints the recovered order follows real
// recency.
TEST(SharedRecovery, AccessCheckpointsPreserveLruOrderAcrossRestart) {
  for (const bool checkpoints : {true, false}) {
    const std::string path =
        StorePath(checkpoints ? "access_journal_on" : "access_journal_off");
    StoreConfig c = DurableShareConfig(path);
    c.share_prefixes = false;  // isolate the access-journal behaviour
    c.disk_capacity = KiB(64);
    c.block_bytes = KiB(4);
    c.eviction_policy = "lru";
    c.access_journal_every_n = checkpoints ? 1 : 0;

    const std::vector<std::uint8_t> payload(KiB(24), 0x5A);
    {
      auto opened = AttentionStore::Open(c);
      ASSERT_TRUE(opened.ok()) << opened.status();
      // A inserted first (older upsert), B second — then A is touched at
      // t=100, making B the genuinely-cold record.
      ASSERT_TRUE(opened->Put(1, payload.size(), 10, payload, 1, kNoHints).ok());
      ASSERT_TRUE(opened->Put(2, payload.size(), 10, payload, 2, kNoHints).ok());
      ASSERT_TRUE(opened->Access(1, 100).has_value());
    }
    auto reopened = AttentionStore::Open(c);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    // A third record forces one eviction from the 64 KiB tier.
    ASSERT_TRUE(reopened->Put(3, payload.size(), 10, payload, 200, kNoHints).ok());
    if (checkpoints) {
      // Recovered recency is real: the LRU victim is B, the hot A survives.
      EXPECT_TRUE(reopened->GetInfo(1).has_value()) << "hot record evicted after recovery";
      EXPECT_FALSE(reopened->GetInfo(2).has_value());
    } else {
      // The pre-fix behaviour this knob exists to repair: the access never
      // reached the journal, so recovery believes A is the coldest.
      EXPECT_FALSE(reopened->GetInfo(1).has_value());
      EXPECT_TRUE(reopened->GetInfo(2).has_value());
    }
  }
}

// --- engine level ----------------------------------------------------------

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

EngineOptions ShareEngineOptions() {
  EngineOptions options;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(256);
  options.store.block_bytes = KiB(16);
  options.store.share_prefixes = true;
  options.store.share_chunk_tokens = 8;  // small chunks: short tests still share
  options.store.audit = true;
  return options;
}

// The tentpole's determinism bar (S4): with many sessions opening on a
// common prompt, replies must be bitwise-identical with sharing on vs off —
// sharing changes where bytes live, never what the model computes.
TEST(ShareEngine, RepliesBitwiseIdenticalSharingOnVsOff) {
  Transformer model(ModelConfig::Mini(), 51);
  CachedAttentionEngine on(&model, ShareEngineOptions());
  EngineOptions off_opts = ShareEngineOptions();
  off_opts.store.share_prefixes = false;
  CachedAttentionEngine off(&model, off_opts);

  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kTurns = 3;
  // Every session opens with the same system prompt (the shared prefix),
  // then diverges onto its own turns.
  const auto prompt = MakeTokens(24, 4242, model.config().vocab_size);
  for (std::size_t t = 0; t < kTurns; ++t) {
    for (SessionId s = 1; s <= kSessions; ++s) {
      const auto input =
          t == 0 ? prompt : MakeTokens(5 + t, 1000 * s + t, model.config().vocab_size);
      auto ron = on.Converse(s, input, 6);
      auto roff = off.Converse(s, input, 6);
      ASSERT_TRUE(ron.ok()) << ron.status();
      ASSERT_TRUE(roff.ok()) << roff.status();
      EXPECT_EQ(ron->reply, roff->reply) << "turn " << t << " session " << s;
      EXPECT_EQ(on.SessionHistory(s), off.SessionHistory(s));
    }
  }
  // Sharing must actually have engaged: turn-1 saves dedup the prompt.
  const StoreStats& st = on.store().stats();
  EXPECT_GT(st.shared_puts, 0ULL);
  EXPECT_GT(st.prefix_hits, 0ULL);
  EXPECT_GT(st.shared_bytes_saved, 0ULL);
  EXPECT_EQ(off.store().stats().shared_puts, 0ULL);
  on.store().CheckInvariants();

  // All sessions ending must leave no chunk behind (the refcount
  // invariant's terminal case).
  for (SessionId s = 1; s <= kSessions; ++s) {
    on.EndSession(s);
  }
  EXPECT_EQ(on.store().ChunkCount(), 0U);
  on.store().CheckInvariants();
}

// KV-truncated caches are impure: the rows kept attended over the dropped
// context, so the engine must keep them out of the prefix index and fall
// back to a private record — and recover purity on the next full recompute.
TEST(ShareEngine, TruncatedCachesFallBackToPrivateRecords) {
  Transformer model(ModelConfig::Mini(), 51);
  EngineOptions options = ShareEngineOptions();
  options.overflow_policy = OverflowPolicy::kKvTruncate;
  CachedAttentionEngine engine(&model, options);
  const std::size_t window = model.config().context_window;

  // Fill most of the window; the save is pure and shared.
  const auto big = MakeTokens(window - 40, 3, model.config().vocab_size);
  ASSERT_TRUE(engine.Converse(7, big, 4).ok());
  auto info = engine.store().GetInfo(7);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->shared);

  // Overflow: the engine truncates the loaded cache's front — tainted.
  const auto more = MakeTokens(60, 4, model.config().vocab_size);
  auto r = engine.Converse(7, more, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  info = engine.store().GetInfo(7);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->shared) << "tainted cache entered the prefix index";

  engine.store().CheckInvariants();
}

// S2 bugfix companion: ExportSession must fence the in-flight async save so
// the exported record matches the exported history (same turn), and the
// migrated session must continue bitwise-identically on the target shard.
TEST(ShareEngine, ExportDrainsAsyncSharedSaveMidFlight) {
  Transformer model(ModelConfig::Mini(), 51);
  EngineOptions async_opts = ShareEngineOptions();
  async_opts.async_save = true;
  EngineOptions ref_opts = ShareEngineOptions();

  CachedAttentionEngine source(&model, async_opts);
  CachedAttentionEngine target(&model, async_opts);
  CachedAttentionEngine reference(&model, ref_opts);

  const auto turn_input = [&](SessionId s, std::size_t t) {
    return MakeTokens(6 + t, 31 * s + t, model.config().vocab_size);
  };
  for (SessionId s = 1; s <= 3; ++s) {
    auto r = source.Converse(s, turn_input(s, 0), 5);
    auto ref = reference.Converse(s, turn_input(s, 0), 5);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(r->reply, ref->reply);
    // Export immediately, without Flush: the save for this turn is (or may
    // be) still in flight on the write stream. The export must drain it —
    // a record snapshotted from the previous turn would disagree with the
    // history and be rejected by the importer.
    auto snap = source.ExportSession(s);
    ASSERT_TRUE(snap.ok()) << snap.status();
    ASSERT_TRUE(snap->record.has_value())
        << "export raced the async save and found no record";
    EXPECT_EQ(snap->record->token_count, snap->history.size());
    EXPECT_TRUE(snap->record->shared_format);
    source.EndSession(s);
    ASSERT_TRUE(target.ImportSession(*std::move(snap)).ok());
  }
  // The migrated sessions resume on the target with reference replies, KV
  // intact (no recompute fallback: the import carried the payload).
  for (SessionId s = 1; s <= 3; ++s) {
    auto r = target.Converse(s, turn_input(s, 1), 5);
    auto ref = reference.Converse(s, turn_input(s, 1), 5);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(r->reply, ref->reply) << "session " << s;
    EXPECT_TRUE(r->cache_hit);
  }
  target.Flush();
  target.store().CheckInvariants();
}

EngineOptions DurableShareEngineOptions(const std::string& path) {
  EngineOptions options;
  options.store = DurableShareConfig(path);
  options.store.disk_capacity = MiB(32);
  options.store.block_bytes = KiB(16);
  options.store.share_chunk_tokens = 8;
  return options;
}

// A durable sharing engine killed without a shutdown handshake must come
// back serving bitwise-identical replies over the recovered shared blocks
// (the v2 user-meta blob restores history + purity).
TEST(ShareEngine, DurableKillRestartResumesBitwiseIdentical) {
  Transformer model(ModelConfig::Mini(), 51);
  const std::string ref_path = StorePath("engine_ref");
  const std::string kill_path = StorePath("engine_kill");
  const auto turn_input = [&](std::size_t t) {
    return MakeTokens(7 + t, 500 + t, model.config().vocab_size);
  };
  constexpr std::size_t kSessions = 3;

  std::unordered_map<SessionId, std::vector<TokenId>> turn3_replies;
  {
    auto ref = CachedAttentionEngine::Create(&model, DurableShareEngineOptions(ref_path));
    ASSERT_TRUE(ref.ok()) << ref.status();
    auto killed = CachedAttentionEngine::Create(&model, DurableShareEngineOptions(kill_path));
    ASSERT_TRUE(killed.ok()) << killed.status();
    for (std::size_t t = 0; t < 2; ++t) {
      for (SessionId s = 1; s <= kSessions; ++s) {
        auto a = (*ref)->Converse(s, turn_input(t), 5);
        auto b = (*killed)->Converse(s, turn_input(t), 5);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        ASSERT_EQ(a->reply, b->reply);
      }
    }
    for (SessionId s = 1; s <= kSessions; ++s) {
      auto a = (*ref)->Converse(s, turn_input(2), 5);
      ASSERT_TRUE(a.ok());
      turn3_replies[s] = a->reply;
    }
    // `killed` is dropped here without EndSession: a simulated SIGKILL as
    // far as the journal is concerned (the page cache survives).
  }

  auto restarted = CachedAttentionEngine::Create(&model, DurableShareEngineOptions(kill_path));
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  CachedAttentionEngine& engine = **restarted;
  engine.store().CheckInvariants();
  for (SessionId s = 1; s <= kSessions; ++s) {
    ASSERT_FALSE(engine.SessionHistory(s).empty()) << "session " << s << " not restored";
    auto r = engine.Converse(s, turn_input(2), 5);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->reply, turn3_replies.at(s)) << "session " << s;
  }
  engine.store().CheckInvariants();
}

// v1 compatibility: histories saved by a pre-sharing engine (raw TokenId
// blobs) restore under a sharing engine, conservatively marked impure —
// replies stay identical, and purity (hence sharing) returns with the next
// full recompute.
TEST(ShareEngine, RestoresV1HistoriesFromPreSharingEngine) {
  Transformer model(ModelConfig::Mini(), 51);
  const std::string path = StorePath("v1_compat");
  const auto input = MakeTokens(20, 9, model.config().vocab_size);
  std::vector<TokenId> reply2;
  {
    EngineOptions v1 = DurableShareEngineOptions(path);
    v1.store.share_prefixes = false;  // pre-sharing engine: raw v1 blobs
    auto engine = CachedAttentionEngine::Create(&model, v1);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE((*engine)->Converse(1, input, 5).ok());
  }
  {
    // Reference for the second turn, no restarts involved.
    EngineOptions v1 = DurableShareEngineOptions(StorePath("v1_compat_ref"));
    v1.store.share_prefixes = false;
    auto engine = CachedAttentionEngine::Create(&model, v1);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Converse(1, input, 5).ok());
    auto r = (*engine)->Converse(1, MakeTokens(6, 10, model.config().vocab_size), 5);
    ASSERT_TRUE(r.ok());
    reply2 = r->reply;
  }
  auto upgraded = CachedAttentionEngine::Create(&model, DurableShareEngineOptions(path));
  ASSERT_TRUE(upgraded.ok()) << upgraded.status();
  ASSERT_FALSE((*upgraded)->SessionHistory(1).empty());
  auto r = (*upgraded)->Converse(1, MakeTokens(6, 10, model.config().vocab_size), 5);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->reply, reply2);
  (*upgraded)->store().CheckInvariants();
}

}  // namespace
}  // namespace ca
