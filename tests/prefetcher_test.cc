// Scheduler-aware fetching tests (§3.3.1): look-ahead window sizing,
// prefetch planning, execution, and hint construction.
#include <gtest/gtest.h>

#include "src/store/attention_store.h"
#include "src/store/prefetcher.h"

namespace ca {
namespace {

const SchedulerHints kNoHints;

StoreConfig Config() {
  StoreConfig config;
  config.dram_capacity = MiB(16);  // 4 blocks
  config.disk_capacity = MiB(64);
  config.block_bytes = MiB(4);
  return config;
}

// Puts `n` sessions (ids 0..n-1) of one block each directly onto disk.
AttentionStore MakeStoreWithDiskSessions(std::size_t n) {
  AttentionStore store(Config());
  for (SessionId s = 0; s < n; ++s) {
    EXPECT_TRUE(store.Put(s, MiB(4), 100, {}, static_cast<SimTime>(s), kNoHints).ok());
    EXPECT_TRUE(store.Demote(s, static_cast<SimTime>(s), kNoHints).ok());
  }
  return store;
}

TEST(PrefetcherTest, PlansDiskResidentUpcomingSessions) {
  AttentionStore store = MakeStoreWithDiskSessions(3);
  Prefetcher prefetcher(&store);
  const std::vector<SessionId> upcoming = {0, 2, 99};  // 99 not cached
  const PrefetchPlan plan = prefetcher.Plan(upcoming, MiB(4));
  // Window = 16 MiB free DRAM / 4 MiB = 4 jobs; all of 0 and 2 planned.
  EXPECT_EQ(plan.window_len, 4U);
  EXPECT_EQ(plan.to_fetch, (std::vector<SessionId>{0, 2}));
}

TEST(PrefetcherTest, SkipsDramResidentSessions) {
  AttentionStore store = MakeStoreWithDiskSessions(2);
  ASSERT_TRUE(store.Promote(0, 10, kNoHints).ok());
  Prefetcher prefetcher(&store);
  const std::vector<SessionId> upcoming = {0, 1};
  const PrefetchPlan plan = prefetcher.Plan(upcoming, MiB(4));
  EXPECT_EQ(plan.to_fetch, (std::vector<SessionId>{1}));
}

TEST(PrefetcherTest, WindowLimitedByAvgKvSize) {
  AttentionStore store = MakeStoreWithDiskSessions(6);
  Prefetcher prefetcher(&store);
  const std::vector<SessionId> upcoming = {0, 1, 2, 3, 4, 5};
  // Avg session KV = 8 MiB -> window = 16/8 = 2 jobs.
  const PrefetchPlan plan = prefetcher.Plan(upcoming, MiB(8));
  EXPECT_EQ(plan.window_len, 2U);
  EXPECT_EQ(plan.to_fetch, (std::vector<SessionId>{0, 1}));
}

TEST(PrefetcherTest, PlannedBytesRespectFreeDram) {
  // Sessions of 2 blocks each; free DRAM = 4 blocks -> only 2 fit even
  // though the window admits more by count.
  AttentionStore store(Config());
  for (SessionId s = 0; s < 3; ++s) {
    ASSERT_TRUE(store.Put(s, MiB(8), 100, {}, static_cast<SimTime>(s), kNoHints).ok());
    ASSERT_TRUE(store.Demote(s, static_cast<SimTime>(s), kNoHints).ok());
  }
  Prefetcher prefetcher(&store);
  const std::vector<SessionId> upcoming = {0, 1, 2};
  const PrefetchPlan plan = prefetcher.Plan(upcoming, MiB(4));
  EXPECT_EQ(plan.to_fetch, (std::vector<SessionId>{0, 1}));
}

TEST(PrefetcherTest, ZeroAvgSizeYieldsEmptyPlan) {
  AttentionStore store = MakeStoreWithDiskSessions(1);
  Prefetcher prefetcher(&store);
  const std::vector<SessionId> upcoming = {0};
  EXPECT_TRUE(prefetcher.Plan(upcoming, 0).to_fetch.empty());
}

TEST(PrefetcherTest, ExecutePromotesPlannedSessions) {
  AttentionStore store = MakeStoreWithDiskSessions(2);
  Prefetcher prefetcher(&store);
  const std::vector<SessionId> upcoming = {0, 1};
  const PrefetchPlan plan = prefetcher.Plan(upcoming, MiB(4));
  const std::size_t promoted = prefetcher.Execute(plan, 100, kNoHints);
  EXPECT_EQ(promoted, 2U);
  EXPECT_EQ(store.Lookup(0), Tier::kDram);
  EXPECT_EQ(store.Lookup(1), Tier::kDram);
  EXPECT_EQ(store.stats().promotions, 2ULL);
}

TEST(BuildHintsTest, KeepsEarliestPosition) {
  const std::vector<SessionId> upcoming = {5, 7, 5, 9};
  const SchedulerHints hints = BuildHints(upcoming, 10);
  EXPECT_EQ(hints.NextUse(5), 0U);  // first occurrence wins
  EXPECT_EQ(hints.NextUse(7), 1U);
  EXPECT_EQ(hints.NextUse(9), 3U);
}

TEST(BuildHintsTest, TruncatesToWindow) {
  const std::vector<SessionId> upcoming = {1, 2, 3, 4};
  const SchedulerHints hints = BuildHints(upcoming, 2);
  EXPECT_TRUE(hints.InWindow(1));
  EXPECT_TRUE(hints.InWindow(2));
  EXPECT_FALSE(hints.InWindow(3));
}

TEST(EvictionWindowTest, PaperFormula) {
  AttentionStore store(Config());  // 16 MiB DRAM + 64 MiB disk (block-rounded)
  // (C_mem + C_disk) / S_kv = 80 MiB / 8 MiB = 10.
  EXPECT_EQ(EvictionWindowLength(store, MiB(8)), 10U);
  EXPECT_EQ(EvictionWindowLength(store, 0), 0U);
}

}  // namespace
}  // namespace ca
