// Discrete-event queue core: time ordering, deterministic FIFO tie-breaks,
// scheduling from inside callbacks, and monotonic time.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_queue.h"

namespace ca {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3U);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(7, [&order, i] { order.push_back(i); });
  }
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbacksCanScheduleMore) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  // A self-rescheduling event chain: 0, 5, 10, 15.
  std::function<void()> tick = [&] {
    fire_times.push_back(q.now());
    if (q.now() < 15) {
      q.ScheduleAfter(5, tick);
    }
  };
  q.ScheduleAt(0, tick);
  q.Run();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{0, 5, 10, 15}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime inner_fire = -1;
  q.ScheduleAt(100, [&] { q.ScheduleAfter(50, [&] { inner_fire = q.now(); }); });
  q.Run();
  EXPECT_EQ(inner_fire, 150);
}

TEST(EventQueueTest, MaxEventsLimitsExecution) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(i, [&] { ++fired; });
  }
  EXPECT_EQ(q.Run(4), 4U);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(q.size(), 6U);
  q.Run();
  EXPECT_EQ(fired, 10);
}

TEST(EventQueueTest, EmptyQueueNoop) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.Run(), 0U);
  EXPECT_EQ(q.now(), 0);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.Run();
  EXPECT_DEATH(q.ScheduleAt(50, [] {}), "CA_CHECK failed");
}

TEST(EventQueueTest, MonotonicTimeAcrossManyRandomEvents) {
  EventQueue q;
  Rng rng(5);
  SimTime last_seen = -1;
  bool monotone = true;
  for (int i = 0; i < 1000; ++i) {
    q.ScheduleAt(static_cast<SimTime>(rng.NextBounded(100000)), [&] {
      if (q.now() < last_seen) {
        monotone = false;
      }
      last_seen = q.now();
    });
  }
  q.Run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace ca
