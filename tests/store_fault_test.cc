// Fault-tolerance tests (DESIGN.md §10): the KV cache is soft state, so
// every injected storage fault must cost at most a miss — never an abort,
// never a wrong byte reaching attention.
//  * FaultInjectingBlockStorage is deterministic per seed and honours its
//    fail-after-N death schedule;
//  * transient faults are retried with bounded backoff and permanent ones
//    quarantine a tier after repeated failures, dropping its residents;
//  * torn writes are caught by the per-extent checksum and surface as
//    kDataLoss misses;
//  * an unopenable disk tier disables itself instead of crashing the store;
//  * a randomized soak drives the full mutation mix at ~10% fault rate with
//    the invariant auditor on after every mutation;
//  * the engine serves bitwise-identical replies with and without faults —
//    degradation is recompute, not corruption.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/store/attention_store.h"
#include "src/store/block_storage.h"
#include "src/store/fault_injection.h"

namespace ca {
namespace {

const SchedulerHints kNoHints;

std::vector<std::uint8_t> Payload(std::size_t bytes, std::uint8_t fill) {
  return std::vector<std::uint8_t>(bytes, fill);
}

// --- FaultInjectingBlockStorage ------------------------------------------

struct OpLog {
  std::vector<int> outcomes;  // 0 = ok, else the StatusCode
  FaultInjectionStats stats;
};

OpLog RunSequence(std::uint64_t seed) {
  FaultConfig fc;
  fc.seed = seed;
  fc.write_transient_p = 0.2;
  fc.write_permanent_p = 0.05;
  fc.write_corrupt_p = 0.1;
  fc.read_transient_p = 0.2;
  fc.read_permanent_p = 0.05;
  fc.read_corrupt_p = 0.1;
  FaultInjectingBlockStorage storage(std::make_unique<MemoryBlockStorage>(KiB(64), KiB(4)), fc);
  OpLog log;
  for (int i = 0; i < 50; ++i) {
    auto w = storage.Write(Payload(KiB(4), 7));
    log.outcomes.push_back(w.ok() ? 0 : static_cast<int>(w.status().code()));
    if (w.ok()) {
      auto r = storage.Read(*w);
      log.outcomes.push_back(r.ok() ? 0 : static_cast<int>(r.status().code()));
      storage.Free(*w);
    }
  }
  log.stats = storage.fault_stats();
  return log;
}

TEST(FaultInjection, DeterministicPerSeed) {
  const OpLog a = RunSequence(42);
  const OpLog b = RunSequence(42);
  const OpLog c = RunSequence(43);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.stats.transient_faults, b.stats.transient_faults);
  EXPECT_EQ(a.stats.permanent_faults, b.stats.permanent_faults);
  EXPECT_EQ(a.stats.corruptions, b.stats.corruptions);
  EXPECT_GT(a.stats.faults(), 0ULL);  // the injector actually injects
  EXPECT_NE(a.outcomes, c.outcomes);  // and the seed matters
}

TEST(FaultInjection, FailAfterScheduleKillsDevice) {
  FaultConfig fc;
  fc.fail_writes_after = 3;  // write #3 and on fail: the device dies mid-run
  FaultInjectingBlockStorage storage(std::make_unique<MemoryBlockStorage>(KiB(64), KiB(4)), fc);
  auto w1 = storage.Write(Payload(16, 1));
  auto w2 = storage.Write(Payload(16, 2));
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  auto w3 = storage.Write(Payload(16, 3));
  auto w4 = storage.Write(Payload(16, 4));
  EXPECT_EQ(w3.status().code(), StatusCode::kIoError);
  EXPECT_EQ(w4.status().code(), StatusCode::kIoError);
  // Reads and frees survive the dead write path.
  auto r1 = storage.Read(*w1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->front(), 1);
  storage.Free(*w1);
  storage.Free(*w2);
  EXPECT_EQ(storage.UsedBlocks(), 0ULL);
}

TEST(FaultInjection, MalformedExtentReadsAsInternalNotAbort) {
  MemoryBlockStorage storage(KiB(64), KiB(4));
  auto extent = storage.Write(Payload(KiB(4) + 5, 9));
  ASSERT_TRUE(extent.ok());

  BlockExtent wrong_length = *extent;
  wrong_length.byte_length += KiB(4);  // block count no longer matches
  EXPECT_EQ(storage.Read(wrong_length).status().code(), StatusCode::kInternal);

  BlockExtent wrong_block = *extent;
  wrong_block.blocks[0] = 9999;  // out-of-range block id
  EXPECT_EQ(storage.Read(wrong_block).status().code(), StatusCode::kInternal);

  // The intact extent still reads fine afterwards.
  auto good = storage.Read(*extent);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), KiB(4) + 5);
  storage.Free(*extent);
}

TEST(FaultInjectionThreadSafety, ParallelFaultyWriteReadFree) {
  FaultConfig fc;
  fc.seed = 9;
  fc.write_transient_p = 0.1;
  fc.read_transient_p = 0.1;
  fc.write_permanent_p = 0.02;
  fc.read_permanent_p = 0.02;
  // No corruption here: without a store-level checksum a damaged payload
  // would fail the content assertions below by design.
  FaultInjectingBlockStorage storage(std::make_unique<MemoryBlockStorage>(KiB(64), KiB(4)), fc);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&storage, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t bytes = 1 + rng.NextBounded(2 * KiB(4));
        const auto fill = static_cast<std::uint8_t>(t * 16 + 1);
        auto extent = storage.Write(Payload(bytes, fill));
        if (!extent.ok()) {
          continue;  // injected fault or pool momentarily exhausted
        }
        auto read = storage.Read(*extent);
        if (read.ok()) {
          ASSERT_EQ(read->size(), bytes);
          EXPECT_EQ(read->front(), fill);
          EXPECT_EQ(read->back(), fill);
        }
        storage.Free(*extent);  // blocks must be released even on failed reads
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(storage.UsedBlocks(), 0ULL);  // no fault may leak a block
  EXPECT_GT(storage.fault_stats().faults(), 0ULL);
}

// --- zero-copy paths under faults (DESIGN.md §14) ------------------------

TEST(FaultInjection, ZeroCopyWriteFaultsLeakNoBlocks) {
  FaultConfig fc;
  fc.seed = 21;
  fc.write_transient_p = 0.3;
  fc.write_permanent_p = 0.1;
  FaultInjectingBlockStorage storage(std::make_unique<MemoryBlockStorage>(KiB(64), KiB(4)), fc);
  const auto payload = Payload(KiB(4) + 50, 6);
  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    SpanSource source(payload);
    auto w = storage.WriteZeroCopy(source);
    if (!w.ok()) {
      ++failures;
      continue;
    }
    auto r = storage.Read(*w);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, payload);
    storage.Free(*w);
  }
  EXPECT_GT(failures, 0);                  // the injector hit the new path
  EXPECT_EQ(storage.UsedBlocks(), 0ULL);   // failed writes rolled back fully
}

TEST(FaultInjection, CorruptZeroCopyWriteIsSilentAtTheDevice) {
  // Write-path corruption mimics a torn write: the operation reports
  // success and only the stored bytes differ. The store's checksum — not
  // the storage layer — is what must catch it.
  FaultConfig fc;
  fc.write_corrupt_p = 1.0;
  FaultInjectingBlockStorage storage(std::make_unique<MemoryBlockStorage>(KiB(64), KiB(4)), fc);
  const auto payload = Payload(KiB(4), 9);
  SpanSource source(payload);
  auto w = storage.WriteZeroCopy(source);
  ASSERT_TRUE(w.ok());
  auto r = storage.Read(*w);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(*r, payload);                  // damaged on the device
  EXPECT_EQ(r->size(), payload.size());
  storage.Free(*w);
}

TEST(FaultInjection, ShortReadIntoCallerBufferDamagesTail) {
  // Read-path corruption models a short read: the tail of the caller's
  // buffer is lost. The Status is still OK — detection is the checksum's
  // job one layer up.
  FaultConfig fc;
  fc.read_corrupt_p = 1.0;
  FaultInjectingBlockStorage storage(std::make_unique<MemoryBlockStorage>(KiB(64), KiB(4)), fc);
  const auto payload = Payload(KiB(4) + 200, 3);
  auto w = storage.Write(payload);
  ASSERT_TRUE(w.ok());
  std::vector<std::uint8_t> out(payload.size());
  ASSERT_TRUE(storage.ReadInto(*w, out).ok());
  EXPECT_NE(out, payload);
  EXPECT_EQ(out.size(), payload.size());
  storage.Free(*w);
}

// --- AttentionStore under faults -----------------------------------------

StoreConfig FaultedConfig() {
  StoreConfig config;
  config.hbm_capacity = 0;
  config.dram_capacity = KiB(64);
  config.disk_capacity = KiB(128);
  config.block_bytes = KiB(4);
  config.real_payloads = true;
  config.audit = true;
  config.io_retry_backoff_us = 0;  // keep the suite fast
  return config;
}

TEST(StoreFault, TransientFaultsAreRetriedToSuccess) {
  StoreConfig config = FaultedConfig();
  config.disk_capacity = 0;  // DRAM only
  config.io_retries = 16;    // enough that no op exhausts its retries
  config.dram_fault.seed = 5;
  config.dram_fault.write_transient_p = 0.4;
  config.dram_fault.read_transient_p = 0.4;
  AttentionStore store(config);
  for (SessionId s = 0; s < 8; ++s) {
    const auto payload = Payload(KiB(4) + 100, static_cast<std::uint8_t>(s));
    ASSERT_TRUE(store.Put(s, payload.size(), 10, payload, 0, kNoHints).ok());
  }
  for (SessionId s = 0; s < 8; ++s) {
    auto read = store.ReadPayload(s);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(read->front(), static_cast<std::uint8_t>(s));
  }
  EXPECT_GT(store.stats().io_retries, 0ULL);       // the retry loop ran
  EXPECT_EQ(store.stats().io_faults(), 0ULL);      // and always recovered
  EXPECT_EQ(store.tier_health(Tier::kDram), TierHealth::kHealthy);
  store.CheckInvariants();
}

TEST(StoreFault, RepeatedPermanentFaultsQuarantineTier) {
  StoreConfig config = FaultedConfig();
  config.quarantine_after = 2;
  config.disk_fault.write_permanent_p = 1.0;  // disk accepts nothing
  AttentionStore store(config);
  const auto payload = Payload(KiB(8), 1);
  ASSERT_TRUE(store.Put(1, payload.size(), 10, payload, 0, kNoHints).ok());
  ASSERT_EQ(store.Lookup(1), Tier::kDram);

  // First failed demotion: rolled back, tier degraded.
  EXPECT_FALSE(store.Demote(1, 1, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDram);  // transactional rollback
  EXPECT_EQ(store.tier_health(Tier::kDisk), TierHealth::kDegraded);
  EXPECT_EQ(store.stats().failed_moves, 1ULL);

  // Second consecutive permanent fault crosses quarantine_after.
  EXPECT_FALSE(store.Demote(1, 2, kNoHints).ok());
  EXPECT_EQ(store.tier_health(Tier::kDisk), TierHealth::kQuarantined);
  EXPECT_EQ(store.stats().tiers_quarantined, 1ULL);
  EXPECT_EQ(store.stats().permanent_io_faults, 2ULL);

  // The quarantined tier has left placement entirely.
  EXPECT_EQ(store.Demote(1, 3, kNoHints).code(), StatusCode::kFailedPrecondition);

  // The record itself is untouched and still serves from DRAM.
  auto read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  store.CheckInvariants();
}

TEST(StoreFault, QuarantineDropsResidentRecordsAsMisses) {
  StoreConfig config = FaultedConfig();
  config.dram_capacity = KiB(16);  // 4 blocks: two 8 KiB records fill it
  config.quarantine_after = 1;
  config.disk_fault.fail_reads_after = 1;  // every disk read fails permanently
  AttentionStore store(config);
  SimTime now = 0;
  for (SessionId s = 0; s < 4; ++s) {
    const auto payload = Payload(KiB(8), static_cast<std::uint8_t>(s));
    ASSERT_TRUE(store.Put(s, payload.size(), 10, payload, ++now, kNoHints).ok());
  }
  // LRU pressure demoted the two oldest records to disk.
  ASSERT_EQ(store.Lookup(0), Tier::kDisk);
  ASSERT_EQ(store.Lookup(1), Tier::kDisk);
  ASSERT_EQ(store.Lookup(2), Tier::kDram);
  ASSERT_EQ(store.Lookup(3), Tier::kDram);

  // The first disk read quarantines the tier; its *other* resident is
  // dropped too (a future miss), not left pointing at a dead device.
  EXPECT_FALSE(store.ReadPayload(0).ok());
  EXPECT_EQ(store.tier_health(Tier::kDisk), TierHealth::kQuarantined);
  EXPECT_EQ(store.Lookup(0), Tier::kNone);
  EXPECT_EQ(store.Lookup(1), Tier::kNone);
  EXPECT_EQ(store.stats().fault_evictions, 2ULL);
  EXPECT_EQ(store.stats().failed_reads, 1ULL);

  // DRAM residents are unaffected.
  auto read = store.ReadPayload(3);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->front(), 3);
  store.CheckInvariants();
}

TEST(StoreFault, TornWriteDetectedByChecksumAndDropped) {
  StoreConfig config = FaultedConfig();
  config.disk_capacity = 0;  // DRAM only
  config.dram_fault.write_corrupt_p = 1.0;  // every write lands damaged
  AttentionStore store(config);
  const auto payload = Payload(KiB(8), 42);
  // The torn write "succeeds": only the read-path checksum can see it.
  ASSERT_TRUE(store.Put(1, payload.size(), 10, payload, 0, kNoHints).ok());
  auto read = store.ReadPayload(1);
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.stats().corrupt_payloads, 1ULL);
  EXPECT_EQ(store.stats().failed_reads, 1ULL);
  // The poisoned record is gone, so the miss is consistent from now on.
  EXPECT_EQ(store.Lookup(1), Tier::kNone);
  EXPECT_EQ(store.stats().fault_evictions, 1ULL);
  store.CheckInvariants();
}

TEST(StoreFault, ZeroCopyTornWriteDetectedByChecksum) {
  // The zero-copy write hashes bytes as the engine's source produces them —
  // BEFORE the device can tear them — so a corrupting device still yields a
  // checksum of the clean bytes and the read path catches the damage.
  StoreConfig config = FaultedConfig();
  config.disk_capacity = 0;  // DRAM only
  config.dram_fault.write_corrupt_p = 1.0;
  AttentionStore store(config);
  const auto payload = Payload(KiB(8), 42);
  SpanSource source(payload);
  ASSERT_TRUE(store.Put(1, 10, source, 0, kNoHints).ok());
  auto read = store.ReadPayload(1);
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.stats().corrupt_payloads, 1ULL);
  EXPECT_EQ(store.Lookup(1), Tier::kNone);
  store.CheckInvariants();
}

TEST(StoreFault, TornBatchedDiskWriteDetectedByChecksum) {
  // Same contract on the disk tier's batched (pwritev/io_uring) submission
  // path: a write that lands damaged is a clean kDataLoss miss on read.
  StoreConfig config = FaultedConfig();
  config.disk_io_mode = DiskIoMode::kBatched;
  config.quarantine_after = 1000;
  config.disk_fault.write_corrupt_p = 1.0;
  AttentionStore store(config);
  const auto payload = Payload(KiB(8), 11);
  ASSERT_TRUE(store.Put(1, payload.size(), 10, payload, 0, kNoHints).ok());
  ASSERT_EQ(store.Lookup(1), Tier::kDram);
  // The demotion's disk write tears silently; the record lands on disk.
  ASSERT_TRUE(store.Demote(1, 1, kNoHints).ok());
  ASSERT_EQ(store.Lookup(1), Tier::kDisk);
  auto read = store.ReadPayload(1);
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.stats().corrupt_payloads, 1ULL);
  EXPECT_EQ(store.Lookup(1), Tier::kNone);
  store.CheckInvariants();
}

TEST(StoreFault, ShortReadDetectedByChecksumAndDropped) {
  StoreConfig config = FaultedConfig();
  config.disk_capacity = 0;
  config.dram_fault.read_corrupt_p = 1.0;  // every read comes back short
  AttentionStore store(config);
  const auto payload = Payload(KiB(8) + 77, 8);
  ASSERT_TRUE(store.Put(1, payload.size(), 10, payload, 0, kNoHints).ok());
  auto read = store.ReadPayload(1);
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.stats().corrupt_payloads, 1ULL);
  EXPECT_EQ(store.Lookup(1), Tier::kNone);  // consistent miss from now on
  store.CheckInvariants();
}

TEST(StoreFault, StreamingReadReportsCorruptionAfterSinkSawBytes) {
  // ReadPayloadInto streams chunks before the verdict; the contract is that
  // the non-OK Status tells the caller to discard what the sink consumed.
  StoreConfig config = FaultedConfig();
  config.disk_capacity = 0;
  config.dram_fault.read_corrupt_p = 1.0;
  AttentionStore store(config);
  const auto payload = Payload(KiB(8), 4);
  ASSERT_TRUE(store.Put(1, payload.size(), 10, payload, 0, kNoHints).ok());
  struct CollectSink final : PayloadSink {
    std::vector<std::uint8_t> data;
    void Reset() override { data.clear(); }
    void Consume(std::span<const std::uint8_t> chunk) override {
      data.insert(data.end(), chunk.begin(), chunk.end());
    }
  };
  CollectSink sink;
  const Status read = store.ReadPayloadInto(1, sink);
  EXPECT_EQ(read.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(sink.data.empty());  // the sink did see (damaged) bytes
  EXPECT_EQ(store.Lookup(1), Tier::kNone);
  store.CheckInvariants();
}

TEST(FileBlockStorageFault, OpenFailsOnUnwritablePath) {
  auto r = FileBlockStorage::Open("/nonexistent-ca-dir/file.blocks", KiB(64), KiB(4));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(StoreFault, UnopenableDiskTierIsDisabledNotFatal) {
  StoreConfig config = FaultedConfig();
  config.disk_path = "/nonexistent-ca-dir/file.blocks";
  AttentionStore store(config);  // must not abort
  EXPECT_EQ(store.stats().tiers_disabled, 1ULL);
  EXPECT_EQ(store.tier_health(Tier::kDisk), TierHealth::kQuarantined);
  // The store keeps serving from DRAM.
  const auto payload = Payload(KiB(8), 5);
  ASSERT_TRUE(store.Put(1, payload.size(), 10, payload, 0, kNoHints).ok());
  EXPECT_EQ(store.Lookup(1), Tier::kDram);
  EXPECT_EQ(store.Demote(1, 1, kNoHints).code(), StatusCode::kFailedPrecondition);
  auto read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  store.CheckInvariants();
}

// Randomized soak: the full mutation mix at ~10% per-op fault rate (mixed
// transient / permanent / corrupt on both tiers) with the invariant auditor
// running after every mutation. Every ReadPayload either fails (counted in
// the fault stats) or returns exactly the bytes that were put — a fault is
// never allowed to surface as silently wrong data.
TEST(StoreFaultSoak, RandomOpsUnderInjectedFaultsKeepInvariants) {
  StoreConfig config = FaultedConfig();
  config.io_retries = 2;
  config.quarantine_after = 1000;  // keep both tiers in play for the whole run
  for (FaultConfig* fc : {&config.dram_fault, &config.disk_fault}) {
    fc->seed = 77;
    fc->write_transient_p = 0.05;
    fc->read_transient_p = 0.05;
    fc->write_permanent_p = 0.03;
    fc->read_permanent_p = 0.03;
    fc->write_corrupt_p = 0.02;
    fc->read_corrupt_p = 0.02;
  }
  AttentionStore store(config);
  Rng rng(1234);
  SimTime now = 0;
  constexpr SessionId kSessions = 24;

  SchedulerHints hints;
  for (SessionId s = 0; s < kSessions; s += 2) {
    hints.next_use_index.emplace(s, s);
  }

  for (int step = 0; step < 2000; ++step) {
    now += 1 + static_cast<SimTime>(rng.NextBounded(5));
    const SessionId session = rng.NextBounded(kSessions);
    const auto& h = rng.NextBool(0.5) ? hints : kNoHints;
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2: {
        const std::uint64_t bytes = 1 + rng.NextBounded(4 * KiB(4));
        const auto payload = Payload(bytes, static_cast<std::uint8_t>(session));
        (void)store.Put(session, bytes, bytes / 16, payload, now, h);
        break;
      }
      case 3:
        (void)store.Promote(session, now, h);
        break;
      case 4:
        (void)store.Demote(session, now, h);
        break;
      case 5:
        store.Remove(session);
        break;
      case 6:
        (void)store.ExpireTtl(now);
        break;
      case 7:
        (void)store.MaintainDramBuffer(now, h);
        break;
    }
    if (step % 29 == 0 && store.Lookup(session) != Tier::kNone) {
      auto read = store.ReadPayload(session);
      if (read.ok()) {
        ASSERT_FALSE(read->empty());
        EXPECT_EQ(read->front(), static_cast<std::uint8_t>(session));
        EXPECT_EQ(read->back(), static_cast<std::uint8_t>(session));
      }
    }
  }
  store.CheckInvariants();
  const StoreStats& stats = store.stats();
  EXPECT_GT(stats.io_faults(), 0ULL);  // the run actually saw faults
  EXPECT_GT(stats.failed_puts + stats.failed_reads + stats.failed_moves, 0ULL);
}

// --- engine: miss-equivalent degradation ---------------------------------

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

EngineOptions CleanEngineOptions() {
  EngineOptions options;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(256);
  options.store.block_bytes = KiB(64);
  options.store.audit = true;
  options.store.io_retry_backoff_us = 0;
  return options;
}

// A faulty store must change cost, never output: replies are bitwise
// identical to a fault-free engine's, and every failed load shows up in the
// fault counters as a recompute.
void ExpectFaultyEngineMatchesClean(const EngineOptions& faulty_options,
                                    std::uint64_t expected_load_faults) {
  Transformer model(ModelConfig::Mini(), 51);
  CachedAttentionEngine clean(&model, CleanEngineOptions());
  CachedAttentionEngine faulty(&model, faulty_options);
  constexpr std::uint64_t kTurns = 4;
  for (std::uint64_t turn = 0; turn < kTurns; ++turn) {
    const auto input = MakeTokens(8 + turn, 100 + turn, model.config().vocab_size);
    auto r_clean = clean.Converse(1, input, 6);
    auto r_faulty = faulty.Converse(1, input, 6);
    ASSERT_TRUE(r_clean.ok());
    ASSERT_TRUE(r_faulty.ok());
    EXPECT_EQ(r_clean->reply, r_faulty->reply) << "turn " << turn;
  }
  EXPECT_EQ(clean.SessionHistory(1), faulty.SessionHistory(1));
  // Every turn after the first found a record, failed to load it, and fell
  // through to recompute.
  EXPECT_EQ(faulty.stats().cache_load_faults, expected_load_faults);
  EXPECT_EQ(faulty.stats().reused_tokens, 0ULL);
  EXPECT_GT(clean.stats().reused_tokens, 0ULL);
  faulty.Flush();
  EXPECT_GT(faulty.store().stats().failed_reads, 0ULL);
  EXPECT_EQ(faulty.store().stats().fault_evictions, faulty.store().stats().failed_reads);
}

TEST(EngineFault, DeadReadPathDegradesToRecompute) {
  EngineOptions faulty = CleanEngineOptions();
  faulty.store.quarantine_after = 1000;          // DRAM stays in placement
  faulty.store.dram_fault.read_permanent_p = 1.0;  // every load fails
  ExpectFaultyEngineMatchesClean(faulty, /*expected_load_faults=*/3);
}

TEST(EngineFault, TornWritesDegradeToRecompute) {
  EngineOptions faulty = CleanEngineOptions();
  faulty.store.quarantine_after = 1000;
  faulty.store.dram_fault.write_corrupt_p = 1.0;  // every save lands damaged
  ExpectFaultyEngineMatchesClean(faulty, /*expected_load_faults=*/3);
  // (The checksum — not luck — catches these: see
  // StoreFault.TornWriteDetectedByChecksumAndDropped.)
}

}  // namespace
}  // namespace ca
