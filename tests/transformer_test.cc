// Mini-transformer forward-pass tests: determinism, incremental-decode
// consistency, GQA variants, CachedAttention partial prefill equivalence.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/model/sampler.h"
#include "src/model/tokenizer.h"
#include "src/model/transformer.h"
#include "src/tensor/tensor.h"

namespace ca {
namespace {

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

TEST(TransformerTest, ForwardShape) {
  const Transformer model(ModelConfig::Tiny(), 1);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(5, 2, model.config().vocab_size);
  const Tensor logits = model.Forward(tokens, cache);
  EXPECT_EQ(logits.dim(0), 5U);
  EXPECT_EQ(logits.dim(1), model.config().vocab_size);
  EXPECT_EQ(cache.seq_len(), 5U);
}

TEST(TransformerTest, DeterministicAcrossInstances) {
  const Transformer a(ModelConfig::Tiny(), 42);
  const Transformer b(ModelConfig::Tiny(), 42);
  KvCache ca_ = a.MakeCache(PeMode::kDecoupled);
  KvCache cb = b.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(8, 3, a.config().vocab_size);
  const Tensor la = a.Forward(tokens, ca_);
  const Tensor lb = b.Forward(tokens, cb);
  EXPECT_EQ(MaxAbsDiff(la, lb), 0.0f);
}

TEST(TransformerTest, DifferentSeedsDifferentWeights) {
  const Transformer a(ModelConfig::Tiny(), 1);
  const Transformer b(ModelConfig::Tiny(), 2);
  KvCache ca_ = a.MakeCache(PeMode::kDecoupled);
  KvCache cb = b.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(4, 3, a.config().vocab_size);
  EXPECT_GT(MaxAbsDiff(a.Forward(tokens, ca_), b.Forward(tokens, cb)), 1e-3f);
}

// Prefilling token-by-token must equal prefilling the whole prompt at once:
// the KV cache makes incremental attention exact, not approximate.
TEST(TransformerTest, IncrementalMatchesBatchPrefill) {
  const Transformer model(ModelConfig::Mini(), 7);
  const auto tokens = MakeTokens(12, 5, model.config().vocab_size);

  KvCache batch_cache = model.MakeCache(PeMode::kDecoupled);
  const Tensor batch_logits = model.Forward(tokens, batch_cache);

  KvCache inc_cache = model.MakeCache(PeMode::kDecoupled);
  Tensor last;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const TokenId tok[] = {tokens[i]};
    last = model.Forward(tok, inc_cache);
  }
  EXPECT_EQ(inc_cache.seq_len(), batch_cache.seq_len());
  // Compare last-position logits.
  const Tensor batch_last =
      Tensor::ConstView(batch_logits.row(tokens.size() - 1), {1, model.config().vocab_size});
  EXPECT_LT(MaxAbsDiff(last, batch_last), 2e-4f);
}

// The CachedAttention property on the happy path: prefilling new tokens on
// top of a cached history gives the same logits as prefilling the full
// prompt.
TEST(TransformerTest, PartialPrefillMatchesFullPrefill) {
  const Transformer model(ModelConfig::Mini(), 11);
  const auto history = MakeTokens(20, 6, model.config().vocab_size);
  const auto fresh = MakeTokens(5, 7, model.config().vocab_size);

  // Full prompt in one go.
  std::vector<TokenId> full = history;
  full.insert(full.end(), fresh.begin(), fresh.end());
  KvCache full_cache = model.MakeCache(PeMode::kDecoupled);
  const Tensor full_logits = model.Forward(full, full_cache);

  // History first (as a previous turn would), then only the new tokens.
  KvCache part_cache = model.MakeCache(PeMode::kDecoupled);
  (void)model.Forward(history, part_cache);
  const Tensor part_logits = model.Forward(fresh, part_cache);

  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const Tensor full_row = Tensor::ConstView(full_logits.row(history.size() + i),
                                              {1, model.config().vocab_size});
    const Tensor part_row =
        Tensor::ConstView(part_logits.row(i), {1, model.config().vocab_size});
    EXPECT_LT(MaxAbsDiff(full_row, part_row), 2e-4f) << "new token " << i;
  }
}

// Without truncation, coupled and decoupled PE caches are numerically
// equivalent — decoupling only changes *when* RoPE is applied.
TEST(TransformerTest, CoupledAndDecoupledAgreeWithoutTruncation) {
  const Transformer model(ModelConfig::Mini(), 13);
  const auto tokens = MakeTokens(16, 8, model.config().vocab_size);
  KvCache dec = model.MakeCache(PeMode::kDecoupled);
  KvCache cpl = model.MakeCache(PeMode::kCoupled);
  const Tensor ld = model.Forward(tokens, dec);
  const Tensor lc = model.Forward(tokens, cpl);
  EXPECT_LT(MaxAbsDiff(ld, lc), 2e-4f);
}

// The parallel determinism contract (DESIGN.md §9): any num_threads gives
// logits AND cache contents bitwise-identical to the serial reference, in
// both PE modes, for prefill and for a decode step on warm history.
TEST(TransformerTest, ThreadedForwardBitwiseMatchesSerial) {
  const ModelConfig serial_config = ModelConfig::Mini();
  const Transformer serial(serial_config, 21);
  const Transformer threaded(serial_config.WithThreads(4), 21);
  const auto prompt = MakeTokens(24, 9, serial_config.vocab_size);

  for (const PeMode mode : {PeMode::kDecoupled, PeMode::kCoupled}) {
    KvCache scache = serial.MakeCache(mode);
    KvCache tcache = threaded.MakeCache(mode);

    const Tensor sl = serial.Forward(prompt, scache);
    const Tensor tl = threaded.Forward(prompt, tcache);
    ASSERT_EQ(sl.numel(), tl.numel());
    EXPECT_EQ(std::memcmp(sl.data(), tl.data(), sl.numel() * sizeof(float)), 0)
        << "prefill logits diverge, mode " << static_cast<int>(mode);

    const auto sbytes = scache.Serialize();
    const auto tbytes = tcache.Serialize();
    EXPECT_EQ(sbytes, tbytes) << "cache contents diverge, mode " << static_cast<int>(mode);

    const TokenId tok[] = {3};
    const Tensor sd = serial.Forward(tok, scache);
    const Tensor td = threaded.Forward(tok, tcache);
    EXPECT_EQ(std::memcmp(sd.data(), td.data(), sd.numel() * sizeof(float)), 0)
        << "decode-step logits diverge, mode " << static_cast<int>(mode);
  }
}

TEST(TransformerTest, GqaAndMhaConfigsRun) {
  for (const ModelConfig& config : {ModelConfig::Mini(), ModelConfig::MiniGqa1()}) {
    const Transformer model(config, 3);
    KvCache cache = model.MakeCache(PeMode::kDecoupled);
    const auto tokens = MakeTokens(6, 9, config.vocab_size);
    const Tensor logits = model.Forward(tokens, cache);
    EXPECT_EQ(logits.dim(0), 6U);
  }
}

TEST(TransformerTest, GenerateProducesRequestedTokens) {
  const Transformer model(ModelConfig::Tiny(), 17);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto prompt = MakeTokens(4, 10, model.config().vocab_size);
  const auto reply = model.Generate(prompt, 10, cache);
  EXPECT_EQ(reply.size(), 10U);
  for (const TokenId t : reply) {
    EXPECT_GE(t, 0);
    EXPECT_LT(static_cast<std::size_t>(t), model.config().vocab_size);
  }
}

TEST(TransformerTest, GenerateIsDeterministic) {
  const Transformer model(ModelConfig::Tiny(), 17);
  KvCache c1 = model.MakeCache(PeMode::kDecoupled);
  KvCache c2 = model.MakeCache(PeMode::kDecoupled);
  const auto prompt = MakeTokens(4, 10, model.config().vocab_size);
  EXPECT_EQ(model.Generate(prompt, 8, c1), model.Generate(prompt, 8, c2));
}

TEST(TransformerDeathTest, ContextOverflowAborts) {
  const Transformer model(ModelConfig::Tiny(), 1);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto tokens =
      MakeTokens(model.config().context_window + 1, 2, model.config().vocab_size);
  EXPECT_DEATH((void)model.Forward(tokens, cache), "context overflow");
}

TEST(TransformerDeathTest, BadTokenAborts) {
  const Transformer model(ModelConfig::Tiny(), 1);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const std::vector<TokenId> bad = {static_cast<TokenId>(model.config().vocab_size)};
  EXPECT_DEATH((void)model.Forward(bad, cache), "CA_CHECK failed");
}

TEST(SamplerTest, ZeroTemperatureIsArgmax) {
  const Transformer model(ModelConfig::Tiny(), 5);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(3, 1, model.config().vocab_size);
  const Tensor logits = model.Forward(tokens, cache);
  Sampler sampler(0.0f, 0, 1);
  EXPECT_EQ(sampler.Sample(logits, 2), model.Argmax(logits, 2));
}

TEST(SamplerTest, TopOneEqualsArgmax) {
  const Transformer model(ModelConfig::Tiny(), 5);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(3, 1, model.config().vocab_size);
  const Tensor logits = model.Forward(tokens, cache);
  Sampler sampler(1.0f, 1, 7);
  EXPECT_EQ(sampler.Sample(logits, 0), model.Argmax(logits, 0));
}

TEST(SamplerTest, SamplesWithinVocab) {
  const Transformer model(ModelConfig::Tiny(), 5);
  KvCache cache = model.MakeCache(PeMode::kDecoupled);
  const auto tokens = MakeTokens(3, 1, model.config().vocab_size);
  const Tensor logits = model.Forward(tokens, cache);
  Sampler sampler(1.2f, 16, 7);
  for (int i = 0; i < 50; ++i) {
    const TokenId t = sampler.Sample(logits, 1);
    EXPECT_GE(t, 0);
    EXPECT_LT(static_cast<std::size_t>(t), model.config().vocab_size);
  }
}

TEST(TokenizerTest, RoundTrip) {
  const ByteTokenizer tok;
  const std::string text = "Hello, CachedAttention! \xc3\xa9";
  const auto ids = tok.Encode(text);
  EXPECT_EQ(ids.size(), text.size());
  EXPECT_EQ(tok.Decode(ids), text);
}

TEST(ConfigTest, KvBytesFormula) {
  const ModelConfig c = ModelConfig::Mini();
  // 2 tensors * layers * kv_dim * 4 bytes.
  EXPECT_EQ(c.kv_bytes_per_token(), 2ULL * c.n_layers * c.kv_dim() * 4);
}

TEST(ConfigTest, PaperDescriptorsMatchPublishedKvSizes) {
  // §4.2: 2.5 MB (65B), 0.78 MB (13B), 0.31 MB (70B), 0.12 MB (Falcon-40B).
  EXPECT_NEAR(static_cast<double>(ModelDescriptor::Llama65B().kv_bytes_per_token) / 1048576.0,
              2.5, 0.05);
  EXPECT_NEAR(static_cast<double>(ModelDescriptor::Llama13B().kv_bytes_per_token) / 1048576.0,
              0.78, 0.01);
  EXPECT_NEAR(static_cast<double>(ModelDescriptor::Llama70B().kv_bytes_per_token) / 1048576.0,
              0.31, 0.01);
  EXPECT_NEAR(static_cast<double>(ModelDescriptor::Falcon40B().kv_bytes_per_token) / 1048576.0,
              0.12, 0.01);
}

TEST(ConfigDeathTest, InvalidConfigsAbort) {
  ModelConfig c = ModelConfig::Mini();
  c.n_kv_heads = 3;  // does not divide 8 heads
  EXPECT_DEATH(c.Validate(), "GQA");
  ModelConfig d = ModelConfig::Mini();
  d.d_model = 130;  // not divisible by heads
  EXPECT_DEATH(d.Validate(), "CA_CHECK failed");
}

}  // namespace
}  // namespace ca
