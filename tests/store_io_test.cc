// I/O-path tests for the block storage backends (DESIGN.md §14): the
// zero-copy write/read protocol must be byte-for-byte equivalent to the
// legacy copy path on every backend, and FileBlockStorage must round-trip
// identically under each DiskIoMode (io_uring, batched pwritev/preadv,
// per-block sync) with and without O_DIRECT staging.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/store/attention_store.h"
#include "src/store/block_storage.h"

namespace ca {
namespace {

std::vector<std::uint8_t> Payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.NextBounded(256));
  }
  return out;
}

// PayloadSink that appends every chunk (the read-side collector used to
// compare streamed bytes against the legacy Read vector).
struct CollectSink final : PayloadSink {
  std::vector<std::uint8_t> data;
  std::size_t chunks = 0;
  void Reset() override {
    data.clear();
    chunks = 0;
  }
  void Consume(std::span<const std::uint8_t> chunk) override {
    data.insert(data.end(), chunk.begin(), chunk.end());
    ++chunks;
  }
};

// PayloadSource that produces a deterministic pattern without a backing
// buffer, counting Fill calls (proves the storage pulls rather than stages).
class PatternSource final : public PayloadSource {
 public:
  explicit PatternSource(std::uint64_t n) : n_(n) {}

  std::uint64_t size() const override { return n_; }
  void Reset() override { pos_ = 0; }
  void Fill(std::span<std::uint8_t> dest) override {
    ++fills_;
    for (auto& b : dest) {
      b = static_cast<std::uint8_t>((pos_++ * 131U) & 0xFFU);
    }
  }
  std::size_t fills() const { return fills_; }

  static std::vector<std::uint8_t> Expected(std::uint64_t n) {
    std::vector<std::uint8_t> out(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>((i * 131U) & 0xFFU);
    }
    return out;
  }

 private:
  std::uint64_t n_;
  std::uint64_t pos_ = 0;
  std::size_t fills_ = 0;
};

struct BackendParam {
  const char* name;
  bool file;
  DiskIoMode mode;
  bool direct;
};

class IoBackendTest : public ::testing::TestWithParam<BackendParam> {
 protected:
  std::unique_ptr<BlockStorage> MakeStorage(std::uint64_t capacity, std::uint64_t block) {
    const BackendParam& p = GetParam();
    if (!p.file) {
      return std::make_unique<MemoryBlockStorage>(capacity, block);
    }
    DiskIoOptions io;
    io.mode = p.mode;
    io.direct_io = p.direct;
    auto opened = FileBlockStorage::Open(
        testing::TempDir() + "/ca_store_io_" + p.name + ".blocks", capacity, block, io);
    CA_CHECK(opened.ok()) << opened.status();
    return std::move(*opened);
  }
};

TEST_P(IoBackendTest, ZeroCopyWriteMatchesLegacyRead) {
  auto storage = MakeStorage(KiB(256), KiB(4));
  const std::uint64_t n = KiB(4) * 5 + 321;  // 6 blocks, partial tail
  PatternSource source(n);
  auto extent = storage->WriteZeroCopy(source);
  ASSERT_TRUE(extent.ok()) << extent.status();
  EXPECT_EQ(extent->byte_length, n);
  EXPECT_GE(source.fills(), 1U);
  auto read = storage->Read(*extent);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, PatternSource::Expected(n));
  storage->Free(*extent);
  EXPECT_EQ(storage->UsedBlocks(), 0U);
}

TEST_P(IoBackendTest, LegacyWriteMatchesZeroCopyRead) {
  auto storage = MakeStorage(KiB(256), KiB(4));
  const auto data = Payload(KiB(4) * 3 + 17, 5);
  auto extent = storage->Write(data);
  ASSERT_TRUE(extent.ok()) << extent.status();
  CollectSink sink;
  ASSERT_TRUE(storage->ReadZeroCopy(*extent, sink).ok());
  EXPECT_EQ(sink.data, data);
}

TEST_P(IoBackendTest, ReadIntoCallerBuffer) {
  auto storage = MakeStorage(KiB(64), KiB(4));
  const auto data = Payload(KiB(4) + 99, 7);
  auto extent = storage->Write(data);
  ASSERT_TRUE(extent.ok());
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(storage->ReadInto(*extent, out).ok());
  EXPECT_EQ(out, data);
  // A buffer of the wrong size is a caller bug surfaced as a Status.
  std::vector<std::uint8_t> wrong(data.size() - 1);
  const Status bad = storage->ReadInto(*extent, wrong);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST_P(IoBackendTest, MalformedExtentIsInternalNotAbort) {
  auto storage = MakeStorage(KiB(64), KiB(4));
  BlockExtent bogus;
  bogus.blocks = {0, 1};
  bogus.byte_length = KiB(4) * 3;  // 3 blocks of bytes, 2 block ids
  std::vector<std::uint8_t> out(bogus.byte_length);
  EXPECT_EQ(storage->ReadInto(bogus, out).code(), StatusCode::kInternal);
  CollectSink sink;
  EXPECT_EQ(storage->ReadZeroCopy(bogus, sink).code(), StatusCode::kInternal);
}

TEST_P(IoBackendTest, SingleByteAndFullBlockEdges) {
  auto storage = MakeStorage(KiB(64), KiB(4));
  for (const std::uint64_t n : {std::uint64_t{1}, KiB(4), KiB(4) * 2}) {
    PatternSource source(n);
    auto extent = storage->WriteZeroCopy(source);
    ASSERT_TRUE(extent.ok()) << "n=" << n << ": " << extent.status();
    auto read = storage->Read(*extent);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, PatternSource::Expected(n)) << "n=" << n;
    storage->Free(*extent);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, IoBackendTest,
    ::testing::Values(BackendParam{"mem", false, DiskIoMode::kAuto, false},
                      BackendParam{"auto", true, DiskIoMode::kAuto, false},
                      BackendParam{"uring", true, DiskIoMode::kUring, false},
                      BackendParam{"batched", true, DiskIoMode::kBatched, false},
                      BackendParam{"sync", true, DiskIoMode::kSync, false},
                      BackendParam{"direct", true, DiskIoMode::kAuto, true}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// --- FileBlockStorage mode resolution ------------------------------------

TEST(FileIoModeTest, AutoResolvesToUringOrBatched) {
  auto opened = FileBlockStorage::Open(testing::TempDir() + "/ca_io_mode_auto.blocks", KiB(64),
                                       KiB(4), DiskIoOptions{});
  ASSERT_TRUE(opened.ok());
  const DiskIoMode mode = (*opened)->io_mode();
  EXPECT_TRUE(mode == DiskIoMode::kUring || mode == DiskIoMode::kBatched)
      << static_cast<int>(mode);
}

TEST(FileIoModeTest, UringRequestFallsBackCleanly) {
  DiskIoOptions io;
  io.mode = DiskIoMode::kUring;
  auto opened =
      FileBlockStorage::Open(testing::TempDir() + "/ca_io_mode_uring.blocks", KiB(64), KiB(4), io);
  ASSERT_TRUE(opened.ok());
  // Sandboxed kernels refuse io_uring_setup; either outcome must round-trip.
  const DiskIoMode mode = (*opened)->io_mode();
  EXPECT_TRUE(mode == DiskIoMode::kUring || mode == DiskIoMode::kBatched);
  const auto data = Payload(KiB(4) * 2 + 5, 11);
  auto extent = (*opened)->Write(data);
  ASSERT_TRUE(extent.ok());
  auto read = (*opened)->Read(*extent);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(FileIoModeTest, DirectIoUnalignedBlockFallsBackToBuffered) {
  DiskIoOptions io;
  io.direct_io = true;
  auto opened = FileBlockStorage::Open(testing::TempDir() + "/ca_io_mode_direct.blocks", 10000,
                                       1000, io);  // block size not 4 KiB aligned
  ASSERT_TRUE(opened.ok());
  EXPECT_FALSE((*opened)->direct_io());
  const auto data = Payload(2500, 13);
  auto extent = (*opened)->Write(data);
  ASSERT_TRUE(extent.ok());
  auto read = (*opened)->Read(*extent);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(FileIoModeTest, CrossModeReadback) {
  // Bytes written under one submission strategy must read back under
  // another: the wire layout (block placement) is mode-invariant.
  const std::string path = testing::TempDir() + "/ca_io_cross_mode.blocks";
  const auto data = Payload(KiB(4) * 3 + 77, 17);
  BlockExtent extent;
  {
    DiskIoOptions io;
    io.mode = DiskIoMode::kBatched;
    auto writer = FileBlockStorage::Open(path + ".w", KiB(64), KiB(4), io);
    ASSERT_TRUE(writer.ok());
    auto written = (*writer)->Write(data);
    ASSERT_TRUE(written.ok());
    auto read = (*writer)->Read(*written);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, data);
  }
  {
    DiskIoOptions io;
    io.mode = DiskIoMode::kSync;
    auto writer = FileBlockStorage::Open(path + ".s", KiB(64), KiB(4), io);
    ASSERT_TRUE(writer.ok());
    auto written = (*writer)->Write(data);
    ASSERT_TRUE(written.ok());
    CollectSink sink;
    ASSERT_TRUE((*writer)->ReadZeroCopy(*written, sink).ok());
    EXPECT_EQ(sink.data, data);
  }
}

// --- AttentionStore zero-copy spine --------------------------------------

StoreConfig PayloadConfig() {
  StoreConfig config;
  config.dram_capacity = MiB(64);
  config.disk_capacity = MiB(64);
  config.block_bytes = KiB(64);
  config.real_payloads = true;
  config.audit = true;
  return config;
}

TEST(StoreZeroCopyTest, SourcePutMatchesSpanPut) {
  const auto data = Payload(KiB(64) * 2 + 9, 23);
  AttentionStore span_store(PayloadConfig());
  AttentionStore source_store(PayloadConfig());
  const SchedulerHints hints;
  ASSERT_TRUE(span_store.Put(1, data.size(), 10, data, 1, hints).ok());
  SpanSource source(data);
  ASSERT_TRUE(source_store.Put(1, 10, source, 1, hints).ok());

  auto via_span = span_store.ReadPayload(1);
  ASSERT_TRUE(via_span.ok());
  CollectSink sink;
  ASSERT_TRUE(source_store.ReadPayloadInto(1, sink).ok());
  EXPECT_EQ(*via_span, data);
  EXPECT_EQ(sink.data, data);
}

TEST(StoreZeroCopyTest, ChecksumVerifiesAcrossPaths) {
  // A payload stored through the zero-copy path must verify (same
  // checksum) when read through the legacy path and vice versa.
  const auto data = Payload(KiB(64) + 1234, 29);
  AttentionStore store(PayloadConfig());
  const SchedulerHints hints;
  SpanSource source(data);
  ASSERT_TRUE(store.Put(7, 10, source, 1, hints).ok());
  auto read = store.ReadPayload(7);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(store.stats().corrupt_payloads, 0U);
}

TEST(StoreZeroCopyTest, TierIoCountersAccumulate) {
  const auto data = Payload(KiB(64) * 2, 31);
  AttentionStore store(PayloadConfig());
  const SchedulerHints hints;
  ASSERT_TRUE(store.Put(1, data.size(), 10, data, 1, hints).ok());
  auto read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  const auto& io = store.stats().tier_io[static_cast<std::size_t>(Tier::kDram)];
  EXPECT_EQ(io.write_bytes, data.size());
  EXPECT_EQ(io.read_bytes, data.size());
  EXPECT_GT(io.write_ns, 0U);
  EXPECT_GT(io.read_ns, 0U);
  EXPECT_GT(io.write_bytes_per_sec(), 0.0);
}

TEST(StoreZeroCopyTest, ReadPayloadIntoMissingSessionIsNotFound) {
  AttentionStore store(PayloadConfig());
  CollectSink sink;
  EXPECT_EQ(store.ReadPayloadInto(99, sink).code(), StatusCode::kNotFound);
  EXPECT_TRUE(sink.data.empty());
}

TEST(StoreZeroCopyTest, ChecksumsOffStillRoundTrips) {
  StoreConfig config = PayloadConfig();
  config.verify_checksums = false;
  const auto data = Payload(KiB(64) + 5, 37);
  AttentionStore store(config);
  const SchedulerHints hints;
  ASSERT_TRUE(store.Put(1, data.size(), 10, data, 1, hints).ok());
  auto read = store.ReadPayload(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

}  // namespace
}  // namespace ca
